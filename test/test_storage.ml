(* Tests for geometry, content tags, the virtual disk, the mechanical
   disk model (including the write-back cache), and the cluster-based
   swap-slot allocator. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck

(* ------------------------------------------------------------------ *)
(* Geom / Content                                                      *)
(* ------------------------------------------------------------------ *)

let geom_units () =
  check Alcotest.int "sectors per page" 8 Storage.Geom.sectors_per_page;
  check Alcotest.int "pages of mb" 256 (Storage.Geom.pages_of_mb 1);
  check Alcotest.int "sectors of pages" 80 (Storage.Geom.sectors_of_pages 10);
  check Alcotest.int "mb of pages" 2 (Storage.Geom.mb_of_pages 512)

let content_equality () =
  let open Storage.Content in
  Alcotest.(check bool) "zero" true (equal Zero Zero);
  Alcotest.(check bool) "anon same" true (equal (Anon 3) (Anon 3));
  Alcotest.(check bool) "anon diff" false (equal (Anon 3) (Anon 4));
  let b v = Block { disk = 1; block = 2; version = v } in
  Alcotest.(check bool) "block same" true (equal (b 0) (b 0));
  Alcotest.(check bool) "block version" false (equal (b 0) (b 1));
  Alcotest.(check bool) "cross kind" false (equal Zero (Anon 0))

let content_fresh_unique () =
  let a = Storage.Content.fresh_anon () in
  let b = Storage.Content.fresh_anon () in
  Alcotest.(check bool) "unique" false (Storage.Content.equal a b)

let content_combine_deterministic () =
  let open Storage.Content in
  let base = Block { disk = 0; block = 7; version = 2 } in
  Alcotest.(check bool) "same inputs same tag" true
    (equal (combine base 5) (combine base 5));
  Alcotest.(check bool) "different base differs" false
    (equal (combine base 5) (combine Zero 5));
  Alcotest.(check bool) "different gen differs" false
    (equal (combine base 5) (combine base 6))

(* ------------------------------------------------------------------ *)
(* Vdisk                                                               *)
(* ------------------------------------------------------------------ *)

let vdisk_pristine_and_write () =
  let vd = Storage.Vdisk.create ~id:3 ~base_sector:1000 ~nblocks:16 in
  check Alcotest.int "sector of block" (1000 + 40) (Storage.Vdisk.sector_of_block vd 5);
  (match Storage.Vdisk.content vd 5 with
  | Storage.Content.Block { disk = 3; block = 5; version = 0 } -> ()
  | c -> Alcotest.failf "pristine content: %s" (Storage.Content.to_string c));
  let v1 = Storage.Vdisk.write vd 5 (Storage.Content.Anon 99) in
  check Alcotest.int "version bumps" 1 v1;
  Alcotest.(check bool) "reads back what was written" true
    (Storage.Content.equal (Storage.Vdisk.content vd 5) (Storage.Content.Anon 99));
  check Alcotest.int "other block untouched" 0 (Storage.Vdisk.version vd 6)

let vdisk_bounds () =
  let vd = Storage.Vdisk.create ~id:0 ~base_sector:0 ~nblocks:4 in
  Alcotest.check_raises "oob" (Invalid_argument "Vdisk 0: block 4 out of range")
    (fun () -> ignore (Storage.Vdisk.content vd 4))

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let mk_disk () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk = Storage.Disk.create ~engine ~stats Storage.Disk.default_config in
  (engine, stats, disk)

let disk_sequential_cheaper_than_random () =
  let _, _, disk = mk_disk () in
  (* Head starts at 0; reading at 0 is sequential. *)
  let seq = Storage.Disk.service_time disk ~sector:0 ~nsectors:8 in
  let rnd = Storage.Disk.service_time disk ~sector:50_000_000 ~nsectors:8 in
  Alcotest.(check bool) "big asymmetry" true (rnd > 50 * seq)

let disk_forward_skip_cheap () =
  let _, _, disk = mk_disk () in
  let skip = Storage.Disk.service_time disk ~sector:100 ~nsectors:8 in
  let back = Storage.Disk.service_time disk ~sector:(-100) ~nsectors:8 in
  ignore back;
  (* A 100-sector forward gap costs about the gap's transfer time. *)
  Alcotest.(check bool) "forward skip < 1ms" true (Sim.Time.to_us skip < 1_000)

let disk_backward_expensive () =
  let engine, _, disk = mk_disk () in
  (* Park the head at sector 1008 by serving one read. *)
  Storage.Disk.submit disk ~sector:1000 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun _ -> ());
  Test_util.drain engine;
  let back = Storage.Disk.service_time disk ~sector:900 ~nsectors:8 in
  let fwd = Storage.Disk.service_time disk ~sector:1100 ~nsectors:8 in
  (* A short backward jump pays seek + rotation; forward does not. *)
  Alcotest.(check bool) "backward >> forward" true
    (Sim.Time.to_us back > 4 * Sim.Time.to_us fwd)

let disk_read_completion_ordering () =
  let engine, stats, disk = mk_disk () in
  let log = ref [] in
  Storage.Disk.submit disk ~sector:0 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun _ -> log := "a" :: !log);
  Storage.Disk.submit disk ~sector:8 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun _ -> log := "b" :: !log);
  Test_util.drain engine;
  Alcotest.(check (list string)) "FIFO reads" [ "a"; "b" ] (List.rev !log);
  check Alcotest.int "two media reads" 2 stats.Metrics.Stats.disk_ops;
  check Alcotest.int "sectors" 16 stats.Metrics.Stats.disk_sectors_read;
  check Alcotest.int "second was sequential" 2 stats.Metrics.Stats.disk_seq_reads

let disk_write_acks_fast () =
  let engine, _, disk = mk_disk () in
  let acked_at = ref (-1) in
  Storage.Disk.submit disk ~sector:1_000_000 ~nsectors:8 ~kind:Storage.Disk.Write
    (fun _ -> acked_at := Sim.Engine.now engine);
  Test_util.drain engine;
  (* Buffered ack is orders of magnitude below a random-seek time. *)
  Alcotest.(check bool) "fast ack" true (!acked_at >= 0 && !acked_at < 1_000)

let disk_read_served_from_write_buffer () =
  let engine, stats, disk = mk_disk () in
  Storage.Disk.submit disk ~sector:500_000 ~nsectors:8 ~kind:Storage.Disk.Write
    (fun _ -> ());
  let done_at = ref (-1) in
  Storage.Disk.submit disk ~sector:500_000 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun _ -> done_at := Sim.Engine.now engine);
  Test_util.drain_until engine (fun () -> !done_at >= 0);
  Alcotest.(check bool) "RAM-speed read" true (!done_at < 1_000);
  check Alcotest.int "no media read" 0 stats.Metrics.Stats.disk_sectors_read

let disk_flushes_when_idle () =
  let engine, stats, disk = mk_disk () in
  Storage.Disk.submit disk ~sector:100 ~nsectors:16 ~kind:Storage.Disk.Write
    (fun _ -> ());
  Storage.Disk.submit disk ~sector:116 ~nsectors:16 ~kind:Storage.Disk.Write
    (fun _ -> ());
  check Alcotest.int "buffered" 32 (Storage.Disk.buffered_write_sectors disk);
  Test_util.drain engine;
  check Alcotest.int "flushed" 0 (Storage.Disk.buffered_write_sectors disk);
  (* Adjacent runs merged into one media write. *)
  check Alcotest.int "one flush op" 1 stats.Metrics.Stats.disk_ops;
  check Alcotest.int "sectors written" 32 stats.Metrics.Stats.disk_sectors_written

(* Reads queued while the disk is busy coalesce: three nearby requests
   become one seek + one transfer, with every completion dispatched from
   the single batch event. *)
let disk_coalesces_queued_reads () =
  let engine, stats, disk = mk_disk () in
  let log = ref [] in
  let r name sector =
    Storage.Disk.submit disk ~sector ~nsectors:8 ~kind:Storage.Disk.Read
      (fun _ -> log := name :: !log)
  in
  (* The first submit dispatches immediately (batch of one)... *)
  r "busy" 1_000_000;
  (* ...so these three queue during its service and coalesce. *)
  r "a" 2_000_000;
  r "b" 2_000_008;
  r "c" 2_000_100;
  Test_util.drain engine;
  Alcotest.(check (list string)) "ascending-sector completion order"
    [ "busy"; "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "two media accesses" 2 stats.Metrics.Stats.disk_ops;
  check Alcotest.int "two batches" 2 stats.Metrics.Stats.disk_read_batches;
  check Alcotest.int "four batched reads" 4
    stats.Metrics.Stats.disk_batched_reads;
  (* batches < requests: the queue actually merged something. *)
  Alcotest.(check bool) "coalescing happened" true
    (stats.Metrics.Stats.disk_read_batches
    < stats.Metrics.Stats.disk_batched_reads);
  (* Second batch spans 2_000_000..2_000_108 (gaps included). *)
  check Alcotest.int "sectors include span gaps" (8 + 108)
    stats.Metrics.Stats.disk_sectors_read

(* A batch's media span never exceeds max_batch_sectors. *)
let disk_batch_cap () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let cfg = { Storage.Disk.default_config with max_batch_sectors = 16 } in
  let disk = Storage.Disk.create ~engine ~stats cfg in
  Storage.Disk.submit disk ~sector:5_000_000 ~nsectors:8
    ~kind:Storage.Disk.Read (fun _ -> ());
  List.iter
    (fun s ->
      Storage.Disk.submit disk ~sector:s ~nsectors:8 ~kind:Storage.Disk.Read
        (fun _ -> ()))
    [ 6_000_000; 6_000_008; 6_000_016 ];
  Test_util.drain engine;
  (* 24 adjacent sectors under a 16-sector cap: the pair batches, the
     third goes alone. *)
  check Alcotest.int "three batches" 3 stats.Metrics.Stats.disk_read_batches;
  check Alcotest.int "four reads" 4 stats.Metrics.Stats.disk_batched_reads

(* covered_by_buffer semantics: only a read wholly inside a buffered
   write run is served at RAM speed; partial overlap goes to the media. *)
let disk_read_after_write_partial_overlap () =
  let engine, stats, disk = mk_disk () in
  Storage.Disk.submit disk ~sector:1_000 ~nsectors:16 ~kind:Storage.Disk.Write
    (fun _ -> ());
  let inside = ref false and partial = ref false in
  Storage.Disk.submit disk ~sector:1_004 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun _ -> inside := true);
  Storage.Disk.submit disk ~sector:1_008 ~nsectors:16 ~kind:Storage.Disk.Read
    (fun _ -> partial := true);
  Test_util.drain_until engine (fun () -> !inside && !partial);
  (* Only the straddling read touched the media. *)
  check Alcotest.int "one media read" 16 stats.Metrics.Stats.disk_sectors_read

(* queue_depth counts waiting reads + buffered write runs + the access
   in flight, and returns to zero once everything drains. *)
let disk_queue_depth_consistency () =
  let engine, _, disk = mk_disk () in
  check Alcotest.int "idle" 0 (Storage.Disk.queue_depth disk);
  Storage.Disk.submit disk ~sector:3_000_000 ~nsectors:8
    ~kind:Storage.Disk.Read (fun _ -> ());
  check Alcotest.int "one in service" 1 (Storage.Disk.queue_depth disk);
  List.iter
    (fun s ->
      Storage.Disk.submit disk ~sector:s ~nsectors:8 ~kind:Storage.Disk.Read
        (fun _ -> ()))
    [ 4_000_000; 4_000_008; 4_000_016 ];
  Storage.Disk.write_buffered disk ~sector:9_000_000 ~nsectors:8;
  check Alcotest.int "3 reads + 1 run + 1 in service" 5
    (Storage.Disk.queue_depth disk);
  Test_util.drain engine;
  check Alcotest.int "drained" 0 (Storage.Disk.queue_depth disk)

(* Property: under arbitrary interleavings, every submitted read
   completes exactly once, and same-sector reads complete in submission
   order even when coalesced into different positions of a batch. *)
let disk_every_read_completes_once =
  QCheck.Test.make
    ~name:"disk: reads complete exactly once, same-sector in order"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 40))
    (fun picks ->
      let engine, _, disk = mk_disk () in
      (* A small sector universe (spread out to force seeks) so distinct
         submissions frequently hit the same sector. *)
      let completed = ref [] in
      List.iteri
        (fun i p ->
          let sector = p * 10_000 in
          Storage.Disk.submit disk ~sector ~nsectors:8
            ~kind:Storage.Disk.Read (fun _ ->
              completed := (sector, i) :: !completed))
        picks;
      Test_util.drain engine;
      let completed = List.rev !completed in
      let ids = List.map snd completed in
      let n = List.length picks in
      List.sort compare ids = List.init n Fun.id
      && (* per sector, completion ids appear in submission order *)
      List.for_all
        (fun p ->
          let sector = p * 10_000 in
          let mine =
            List.filter_map
              (fun (s, i) -> if s = sector then Some i else None)
              completed
          in
          mine = List.sort compare mine)
        picks)

let disk_rejects_empty () =
  let _, _, disk = mk_disk () in
  Alcotest.check_raises "zero sectors"
    (Invalid_argument "Disk.submit: nsectors must be positive") (fun () ->
      Storage.Disk.submit disk ~sector:0 ~nsectors:0 ~kind:Storage.Disk.Read
        (fun _ -> ()))

(* Regression: submit/write_buffered accepted negative sectors and
   requests past the end of the media; they now validate bounds. *)
let disk_rejects_out_of_bounds () =
  let _, _, disk = mk_disk () in
  Alcotest.check_raises "negative sector"
    (Invalid_argument "Disk.submit: negative sector -8") (fun () ->
      Storage.Disk.submit disk ~sector:(-8) ~nsectors:8
        ~kind:Storage.Disk.Read (fun _ -> ()));
  let cap = Storage.Disk.default_config.Storage.Disk.capacity_sectors in
  Alcotest.check_raises "past capacity"
    (Invalid_argument
       (Printf.sprintf "Disk.submit: [%d, %d) past capacity %d" (cap - 4)
          (cap + 4) cap)) (fun () ->
      Storage.Disk.submit disk ~sector:(cap - 4) ~nsectors:8
        ~kind:Storage.Disk.Write (fun _ -> ()));
  Alcotest.check_raises "write_buffered checked too"
    (Invalid_argument "Disk.write_buffered: negative sector -1") (fun () ->
      Storage.Disk.write_buffered disk ~sector:(-1) ~nsectors:1);
  (* The very last sectors are still valid. *)
  Storage.Disk.submit disk ~sector:(cap - 8) ~nsectors:8
    ~kind:Storage.Disk.Write (fun _ -> ())

let disk_injects_typed_errors () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let faults =
    Faults.Plan.create (Faults.Config.make ~seed:5 ~media_rate:1.0 ())
  in
  let disk =
    Storage.Disk.create ~engine ~stats ~faults Storage.Disk.default_config
  in
  let got = ref None in
  Storage.Disk.submit disk ~sector:0 ~nsectors:8 ~kind:Storage.Disk.Read
    (fun reply ->
      got := Some reply.Storage.Disk.result;
      Alcotest.(check bool) "service time positive" true
        (Sim.Time.to_us reply.Storage.Disk.service > 0));
  Test_util.drain engine;
  (match !got with
  | Some (Error Storage.Disk.Media) -> ()
  | Some (Error Storage.Disk.Transient) -> Alcotest.fail "expected media"
  | Some (Ok ()) -> Alcotest.fail "expected an injected error"
  | None -> Alcotest.fail "read never completed");
  check Alcotest.int "counted" 1 stats.Metrics.Stats.faults_injected_media;
  (* Writes are absorbed by the write-back cache: always Ok. *)
  let wrote = ref false in
  Storage.Disk.submit disk ~sector:64 ~nsectors:8 ~kind:Storage.Disk.Write
    (fun reply ->
      wrote := reply.Storage.Disk.result = Ok ());
  Test_util.drain engine;
  Alcotest.(check bool) "write ok under faults" true !wrote

let disk_degraded_latency () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let mk faults =
    Storage.Disk.create ~engine ~stats ~faults Storage.Disk.default_config
  in
  let slow =
    mk
      (Faults.Plan.create
         (Faults.Config.make ~seed:5 ~degraded_rate:1.0 ~degraded_mult:4.0 ()))
  in
  let fast = mk Faults.Plan.none in
  let time disk =
    let t = ref Sim.Time.zero in
    Storage.Disk.submit disk ~sector:10_000 ~nsectors:8 ~kind:Storage.Disk.Read
      (fun reply -> t := reply.Storage.Disk.service);
    Test_util.drain engine;
    Sim.Time.to_us !t
  in
  let fast_us = time fast and slow_us = time slow in
  Alcotest.(check bool) "~4x slower" true
    (slow_us > 3 * fast_us && slow_us < 6 * fast_us);
  check Alcotest.int "degraded batches counted" 1
    stats.Metrics.Stats.faults_degraded_batches

(* ------------------------------------------------------------------ *)
(* Swap area                                                           *)
(* ------------------------------------------------------------------ *)

let swap_cluster_sequential () =
  let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:1024 in
  let slots =
    List.init 300 (fun i ->
        Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon i)))
  in
  (* Consecutive allocations fill clusters sequentially. *)
  let consecutive =
    List.for_all2 (fun a b -> b = a + 1)
      (List.filteri (fun i _ -> i < 299) slots)
      (List.tl slots)
  in
  Alcotest.(check bool) "sequential runs" true consecutive;
  check Alcotest.int "in use" 300 (Storage.Swap_area.in_use sa)

(* Regression: create used truncating division, silently resizing the
   area (300 -> 256 slots, 100 -> 256).  The cluster count now rounds
   up and the exact requested nslots is kept. *)
let swap_cluster_rounding () =
  check Alcotest.int "cluster size" 256 Storage.Swap_area.cluster_slots;
  let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:300 in
  check Alcotest.int "exact nslots kept" 300 (Storage.Swap_area.nslots sa);
  check Alcotest.int "partial cluster counts as free" 2
    (Storage.Swap_area.free_clusters sa);
  let sa2 = Storage.Swap_area.create ~base_sector:0 ~nslots:100 in
  check Alcotest.int "sub-cluster area keeps size" 100
    (Storage.Swap_area.nslots sa2);
  (* Every requested slot is allocatable, and exhaustion happens at
     exactly the requested count, not at a cluster boundary. *)
  let slots =
    List.init 300 (fun i -> Storage.Swap_area.alloc sa (Storage.Content.Anon i))
  in
  Alcotest.(check bool) "all 300 allocate" true
    (List.for_all Option.is_some slots);
  Alcotest.(check (option int)) "301st fails" None
    (Storage.Swap_area.alloc sa Storage.Content.Zero);
  check Alcotest.int "in use" 300 (Storage.Swap_area.in_use sa);
  (* Freeing the partial cluster's slots makes it wholly free again. *)
  List.iter
    (fun s -> if Option.get s >= 256 then Storage.Swap_area.free sa (Option.get s))
    slots;
  check Alcotest.int "partial cluster free again" 1
    (Storage.Swap_area.free_clusters sa)

let swap_roundtrip () =
  let sa = Storage.Swap_area.create ~base_sector:800 ~nslots:256 in
  let c = Storage.Content.Anon 7 in
  let s = Option.get (Storage.Swap_area.alloc sa c) in
  Alcotest.(check bool) "allocated" true (Storage.Swap_area.is_allocated sa s);
  Alcotest.(check bool) "content" true
    (Storage.Content.equal c (Storage.Swap_area.content sa s));
  check Alcotest.int "sector" (800 + (s * 8)) (Storage.Swap_area.sector_of_slot sa s);
  Storage.Swap_area.free sa s;
  Alcotest.(check bool) "freed" false (Storage.Swap_area.is_allocated sa s);
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Swap_area.free: slot %d is free" s))
    (fun () -> Storage.Swap_area.free sa s)

let swap_fragmentation_fallback () =
  let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:512 in
  (* Fill both clusters entirely. *)
  let slots =
    List.init 512 (fun i ->
        Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon i)))
  in
  check Alcotest.int "full" 512 (Storage.Swap_area.in_use sa);
  Alcotest.(check (option int)) "exhausted" None
    (Storage.Swap_area.alloc sa Storage.Content.Zero);
  (* Free every other slot: no cluster becomes wholly free. *)
  List.iteri (fun i s -> if i mod 2 = 0 then Storage.Swap_area.free sa s) slots;
  check Alcotest.int "half free" 256 (Storage.Swap_area.in_use sa);
  check Alcotest.int "no free clusters" 0 (Storage.Swap_area.free_clusters sa);
  let before = Storage.Swap_area.fragmented_allocs sa in
  let s = Option.get (Storage.Swap_area.alloc sa Storage.Content.Zero) in
  Alcotest.(check bool) "allocated a hole" true (Storage.Swap_area.is_allocated sa s);
  Alcotest.(check bool) "fell back to scanning" true
    (Storage.Swap_area.fragmented_allocs sa > before)

let swap_free_cluster_reuse () =
  let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:512 in
  let slots =
    List.init 512 (fun i ->
        Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon i)))
  in
  (* Free the whole first cluster; it becomes allocatable again. *)
  List.iteri (fun i s -> if i < 256 then Storage.Swap_area.free sa s) slots;
  check Alcotest.int "one free cluster" 1 (Storage.Swap_area.free_clusters sa);
  let s = Option.get (Storage.Swap_area.alloc sa Storage.Content.Zero) in
  Alcotest.(check bool) "reused cluster 0" true (s < 256)

let swap_model =
  QCheck.Test.make ~name:"swap_area: random alloc/free keeps books" ~count:100
    QCheck.(list (int_range 0 99))
    (fun ops ->
      let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:256 in
      let live = Hashtbl.create 16 in
      List.iter
        (fun op ->
          if op < 60 || Hashtbl.length live = 0 then (
            match Storage.Swap_area.alloc sa (Storage.Content.Anon op) with
            | Some s ->
                if Hashtbl.mem live s then failwith "double alloc";
                Hashtbl.replace live s op
            | None ->
                if Hashtbl.length live <> 256 then failwith "early exhaustion")
          else begin
            (* free a pseudo-random live slot *)
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            let s = List.nth keys (op mod List.length keys) in
            Storage.Swap_area.free sa s;
            Hashtbl.remove live s
          end)
        ops;
      Storage.Swap_area.in_use sa = Hashtbl.length live
      && Hashtbl.fold
           (fun s v acc ->
             acc
             && Storage.Content.equal
                  (Storage.Swap_area.content sa s)
                  (Storage.Content.Anon v))
           live true)

let disk_service_monotone =
  QCheck.Test.make ~name:"disk: service time monotone in transfer size"
    ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 512))
    (fun (sector, n) ->
      let _, _, disk = mk_disk () in
      let a = Storage.Disk.service_time disk ~sector ~nsectors:n in
      let b = Storage.Disk.service_time disk ~sector ~nsectors:(n + 8) in
      b >= a)

let vdisk_version_counts_writes =
  QCheck.Test.make ~name:"vdisk: version equals number of writes" ~count:200
    QCheck.(list (int_range 0 15))
    (fun writes ->
      let vd = Storage.Vdisk.create ~id:0 ~base_sector:0 ~nblocks:16 in
      let counts = Array.make 16 0 in
      List.iter
        (fun b ->
          counts.(b) <- counts.(b) + 1;
          let v = Storage.Vdisk.write vd b (Storage.Content.Anon counts.(b)) in
          if v <> counts.(b) then failwith "version mismatch")
        writes;
      Array.to_list counts
      = List.init 16 (fun b -> Storage.Vdisk.version vd b))

(* ------------------------------------------------------------------ *)
(* Multi-queue (NVMe-style) disk                                       *)
(* ------------------------------------------------------------------ *)

let mk_mq_disk ~num_queues ~per_queue_depth =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk =
    Storage.Disk.create ~engine ~stats
      { Storage.Disk.default_config with num_queues; per_queue_depth }
  in
  (engine, stats, disk)

(* The same far-apart read set finishes sooner when its requests land on
   two queues served in parallel than when they serialize behind one
   elevator head. *)
let mq_parallel_service_faster () =
  let run ~num_queues ~spread =
    let engine, _, disk = mk_mq_disk ~num_queues ~per_queue_depth:1 in
    let pending = ref 0 in
    List.iteri
      (fun i s ->
        incr pending;
        Storage.Disk.submit disk ~sector:s ~nsectors:8
          ~kind:Storage.Disk.Read
          ~queue:(if spread then i else 0)
          (fun _ -> decr pending))
      [ 1_000_000; 200_000_000; 50_000_000; 400_000_000 ];
    Test_util.drain engine;
    check Alcotest.int "all completed" 0 !pending;
    Sim.Time.to_us (Sim.Engine.now engine)
  in
  let serial = run ~num_queues:1 ~spread:false in
  let parallel = run ~num_queues:4 ~spread:true in
  Alcotest.(check bool)
    (Printf.sprintf "4 queues (%d us) beat 1 (%d us)" parallel serial)
    true
    (parallel < serial)

(* Queue steering reduces mod num_queues, and per-queue counters track
   where batches were actually served. *)
let mq_queue_reduction_and_stats () =
  let engine, stats, disk = mk_mq_disk ~num_queues:2 ~per_queue_depth:1 in
  check Alcotest.int "clamped queue count" 2 (Storage.Disk.num_queues disk);
  (* queue 5 mod 2 = 1; queue 2 mod 2 = 0. *)
  Storage.Disk.submit disk ~sector:1_000_000 ~nsectors:8
    ~kind:Storage.Disk.Read ~queue:5 (fun _ -> ());
  Storage.Disk.submit disk ~sector:2_000_000 ~nsectors:8
    ~kind:Storage.Disk.Read ~queue:2 (fun _ -> ());
  Test_util.drain engine;
  let qs = Storage.Disk.queue_stats disk in
  check Alcotest.int "two queues reported" 2 (Array.length qs);
  check Alcotest.int "queue 0 served one batch" 1
    qs.(0).Storage.Disk.q_batches;
  check Alcotest.int "queue 1 served one batch" 1
    qs.(1).Storage.Disk.q_batches;
  check Alcotest.int "mq stat counts non-zero queues only" 1
    stats.Metrics.Stats.disk_mq_batches;
  Alcotest.(check bool) "depth highwater >= 2 with both on the media" true
    (stats.Metrics.Stats.disk_queue_depth_highwater >= 2)

(* per_queue_depth > 1 admits concurrent batches on one queue; the
   queue's own highwater proves they overlapped. *)
let mq_depth_admits_concurrent_batches () =
  let engine, _, disk = mk_mq_disk ~num_queues:1 ~per_queue_depth:2 in
  List.iter
    (fun s ->
      Storage.Disk.submit disk ~sector:s ~nsectors:8 ~kind:Storage.Disk.Read
        (fun _ -> ()))
    [ 1_000_000; 300_000_000 ];
  Test_util.drain engine;
  let qs = Storage.Disk.queue_stats disk in
  check Alcotest.int "both batches overlapped" 2
    qs.(0).Storage.Disk.q_depth_highwater

(* Every read completes exactly once no matter which queue it is steered
   to — the multi-queue generalization of the single-queue property. *)
let mq_every_read_completes_once =
  QCheck.Test.make ~name:"disk: mq reads complete exactly once" ~count:100
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 1 30) (pair (int_range 0 40) (int_range 0 7))))
    (fun (nq, picks) ->
      let engine, _, disk = mk_mq_disk ~num_queues:nq ~per_queue_depth:2 in
      let completions = Hashtbl.create 64 in
      List.iteri
        (fun i (slot, q) ->
          Storage.Disk.submit disk ~sector:(slot * 1_000_000) ~nsectors:8
            ~kind:Storage.Disk.Read ~queue:q (fun _ ->
              Hashtbl.replace completions i
                (1 + Option.value ~default:0 (Hashtbl.find_opt completions i))))
        picks;
      Test_util.drain engine;
      List.for_all
        (fun i -> Hashtbl.find_opt completions i = Some 1)
        (List.init (List.length picks) Fun.id))

(* ------------------------------------------------------------------ *)
(* Destage-path fault injection                                        *)
(* ------------------------------------------------------------------ *)

let mk_faulty_disk ?(config = Storage.Disk.default_config) fcfg =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let faults = Faults.Plan.create fcfg in
  let disk = Storage.Disk.create ~engine ~stats ~faults config in
  (engine, stats, disk)

(* A media error on a destaged sector is counted instead of silently
   dropped: the destage path consults the same fault plan as reads. *)
let destage_media_fault_counted () =
  let engine, stats, disk =
    mk_faulty_disk (Faults.Config.make ~seed:11 ~media_rate:0.5 ())
  in
  Storage.Disk.write_buffered disk ~sector:0 ~nsectors:512;
  Test_util.drain engine;
  check Alcotest.int "buffer drained" 0
    (Storage.Disk.buffered_write_sectors disk);
  Alcotest.(check bool) "media errors surfaced" true
    (stats.Metrics.Stats.destage_media_errors > 0);
  (* Rate 0.5 over 512 sectors: the count is a per-sector decision, not
     an all-or-nothing one. *)
  Alcotest.(check bool) "per-sector, not per-chunk" true
    (stats.Metrics.Stats.destage_media_errors < 512)

(* Transient destage errors re-queue the sector and eventually succeed:
   the retry counter moves, and the buffer still drains to empty. *)
let destage_transient_retries_then_succeeds () =
  let engine, stats, disk =
    mk_faulty_disk (Faults.Config.make ~seed:7 ~transient_rate:0.3 ())
  in
  Storage.Disk.write_buffered disk ~sector:0 ~nsectors:512;
  Test_util.drain engine;
  check Alcotest.int "buffer drained despite transients" 0
    (Storage.Disk.buffered_write_sectors disk);
  Alcotest.(check bool) "retries counted" true
    (stats.Metrics.Stats.destage_transient_retries > 0)

(* transient_rate 1.0 must not livelock: the per-sector retry budget
   converts exhausted sectors into counted losses and the drain ends. *)
let destage_retry_budget_bounds_livelock () =
  let engine, stats, disk =
    mk_faulty_disk (Faults.Config.make ~seed:3 ~transient_rate:1.0 ())
  in
  Storage.Disk.write_buffered disk ~sector:0 ~nsectors:64;
  Test_util.drain engine;
  check Alcotest.int "buffer drained" 0
    (Storage.Disk.buffered_write_sectors disk);
  check Alcotest.int "every sector exhausted its budget" 64
    stats.Metrics.Stats.destage_media_errors;
  Alcotest.(check bool) "retries happened first" true
    (stats.Metrics.Stats.destage_transient_retries >= 64)

(* With destage_queues = 2, two distant dirty runs destage on separate
   queues concurrently, so the drain finishes sooner than the global
   single-channel destage. *)
let destage_parallel_queues_faster () =
  let run destage_queues =
    let engine = Sim.Engine.create () in
    let stats = Metrics.Stats.create () in
    let disk =
      Storage.Disk.create ~engine ~stats
        { Storage.Disk.default_config with num_queues = 2; destage_queues }
    in
    Storage.Disk.write_buffered ~queue:0 disk ~sector:100_000_000
      ~nsectors:256;
    Storage.Disk.write_buffered ~queue:1 disk ~sector:400_000_000
      ~nsectors:256;
    Test_util.drain engine;
    check Alcotest.int "drained" 0 (Storage.Disk.buffered_write_sectors disk);
    Sim.Time.to_us (Sim.Engine.now engine)
  in
  let serial = run 1 in
  let parallel = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 destage queues (%d us) beat 1 (%d us)" parallel serial)
    true (parallel < serial)

(* ------------------------------------------------------------------ *)
(* Swap-backend implementations                                        *)
(* ------------------------------------------------------------------ *)

let czram_admission_latency_serialization () =
  let engine = Sim.Engine.create () in
  let b =
    Storage.Backend.czram ~engine ~seed:0 ~admit_ratio:0.6
      ~pool_bytes:(1 lsl 30) ~compress_us:10 ~decompress_us:5 ()
  in
  (* Admission is a pure per-page property: some pages compress well
     enough, others are rejected as incompressible. *)
  let admitted =
    List.filter
      (fun p -> Storage.Backend.admit b ~sector:(p * 8))
      (List.init 100 Fun.id)
  in
  let n = List.length admitted in
  Alcotest.(check bool) "some admitted, some rejected" true (n > 0 && n < 100);
  (* A lone page-in costs exactly the decompression time... *)
  let s1 = ref 0 and s2 = ref 0 in
  Storage.Backend.read b ~sector:0 ~nsectors:8 ~queue:0 ~attempt:0 (fun r ->
      s1 := Sim.Time.to_us r.Storage.Backend.service);
  (* ...and a concurrent one queues on the single compressor CPU. *)
  Storage.Backend.read b ~sector:8 ~nsectors:8 ~queue:1 ~attempt:0 (fun r ->
      s2 := Sim.Time.to_us r.Storage.Backend.service);
  Test_util.drain engine;
  check Alcotest.int "first read = decompress cost" 5 !s1;
  check Alcotest.int "second serialized behind it" 10 !s2;
  (* Pool accounting: writes grow the pool by the compressed size,
     release returns exactly that size. *)
  check Alcotest.int "empty pool" 0 (Storage.Backend.used_bytes b);
  Storage.Backend.write b ~queue:0 ~sector:0 ~nsectors:8;
  let used = Storage.Backend.used_bytes b in
  Alcotest.(check bool) "compressed: between 0 and a page" true
    (used > 0 && used < Storage.Geom.page_bytes);
  Storage.Backend.release b ~sector:0 ~nsectors:8;
  check Alcotest.int "release returns the same size" 0
    (Storage.Backend.used_bytes b)

let czram_pool_cap_rejects () =
  let engine = Sim.Engine.create () in
  (* Pool of one page: the second write cannot be admitted. *)
  let b =
    Storage.Backend.czram ~engine ~seed:0 ~admit_ratio:1.25
      ~pool_bytes:Storage.Geom.page_bytes ~compress_us:10 ~decompress_us:5 ()
  in
  Alcotest.(check bool) "first fits" true (Storage.Backend.admit b ~sector:0);
  Storage.Backend.write b ~queue:0 ~sector:0 ~nsectors:8;
  Alcotest.(check bool) "overflow rejected" false
    (Storage.Backend.admit b ~sector:800)

let remote_rtt_and_link_queueing () =
  let engine = Sim.Engine.create () in
  (* 4 bytes/us: a 4 KiB page takes 1024 us on the link; RTT 100 us. *)
  let b = Storage.Backend.remote ~engine ~rtt_us:100 ~bytes_per_us:4.0 () in
  let s1 = ref 0 and s2 = ref 0 in
  Storage.Backend.read b ~sector:0 ~nsectors:8 ~queue:0 ~attempt:0 (fun r ->
      s1 := Sim.Time.to_us r.Storage.Backend.service);
  Storage.Backend.read b ~sector:8 ~nsectors:8 ~queue:1 ~attempt:0 (fun r ->
      s2 := Sim.Time.to_us r.Storage.Backend.service);
  Test_util.drain engine;
  check Alcotest.int "transfer + rtt" (1024 + 100) !s1;
  check Alcotest.int "second queues on the link, rtt in parallel"
    (2048 + 100) !s2

(* ------------------------------------------------------------------ *)
(* Tiered composite                                                    *)
(* ------------------------------------------------------------------ *)

let swap_area_tier_metadata () =
  let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:16 in
  let s = Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon 1)) in
  check Alcotest.int "fresh slot on tier 0" 0 (Storage.Swap_area.tier sa s);
  Storage.Swap_area.set_tier sa s 1;
  check Alcotest.int "tier sticks" 1 (Storage.Swap_area.tier sa s);
  let freed = ref None in
  Storage.Swap_area.set_on_free sa
    (Some (fun ~slot ~tier -> freed := Some (slot, tier)));
  Storage.Swap_area.free sa s;
  Alcotest.(check (option (pair int int))) "hook sees slot and tier"
    (Some (s, 1)) !freed;
  let s2 = Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon 2)) in
  check Alcotest.int "tier reset on reuse" 0 (Storage.Swap_area.tier sa s2)

let mk_tiers ?faults cfg =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk = Storage.Disk.create ~engine ~stats Storage.Disk.default_config in
  let swap = Storage.Swap_area.create ~base_sector:0 ~nslots:256 in
  let t = Storage.Tiers.create ?faults ~engine ~stats ~disk ~swap cfg in
  (engine, stats, swap, t)

let tiers_routing_promotion_demotion () =
  let cfg =
    {
      Storage.Tiers.disk_only with
      Storage.Tiers.fast = Storage.Tiers.Remote;
      (* remote admits everything (no compressibility, no pool), so the
         slot-share cap is the only admission gate — which is exactly
         what this test pins down. *)
      slow = Storage.Tiers.Disk_tier;
      fast_share_percent = 25;
      writeback_idle_us = 1_000;
      writeback_batch = 256;
    }
  in
  let engine, stats, swap, t = mk_tiers cfg in
  Alcotest.(check bool) "not passthrough" false
    (Storage.Tiers.is_passthrough t);
  check Alcotest.int "fast cap is the share" 64 (Storage.Tiers.fast_capacity t);
  (* 80 swap-outs against a 64-slot fast tier: the cap binds (nothing is
     demotion-cold yet, all pages were written just now). *)
  let slots =
    List.init 80 (fun i ->
        Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon i)))
  in
  List.iter (fun slot -> Storage.Tiers.swap_out t ~slot ~queue:0) slots;
  Test_util.drain engine;
  check Alcotest.int "first 64 admitted fast" 64
    stats.Metrics.Stats.tier_admissions;
  check Alcotest.int "overflow routed slow" 16 stats.Metrics.Stats.tier_rejects;
  check Alcotest.int "fast tier at cap" 64 (Storage.Tiers.fast_slots t);
  check Alcotest.int "slot 0 on fast tier" 0
    (Storage.Swap_area.tier swap (List.nth slots 0));
  check Alcotest.int "slot 70 on slow tier" 1
    (Storage.Swap_area.tier swap (List.nth slots 70));
  (* Freeing a fast slot runs the on_free hook and makes room... *)
  Storage.Swap_area.free swap (List.nth slots 0);
  check Alcotest.int "hook released the fast slot" 63
    (Storage.Tiers.fast_slots t);
  (* ...so a slow-tier target swap-in promotes. *)
  let slow_slot = List.nth slots 70 in
  let done_ = ref false in
  Storage.Tiers.swap_in t ~slot:slow_slot
    ~sector:(Storage.Swap_area.sector_of_slot swap slow_slot)
    ~nsectors:8 ~queue:0 ~attempt:0 (fun _ -> done_ := true);
  Test_util.drain engine;
  Alcotest.(check bool) "swap-in completed" true !done_;
  check Alcotest.int "promoted to fast" 1 stats.Metrics.Stats.tier_promotions;
  check Alcotest.int "slot now on tier 0" 0
    (Storage.Swap_area.tier swap slow_slot);
  check Alcotest.int "fast back at cap" 64 (Storage.Tiers.fast_slots t);
  check Alcotest.int "slow swap-in accounted" 1
    stats.Metrics.Stats.tier_slow_swapins;
  (* Let every fast page go cold, then swap out under a full fast tier:
     capacity pressure sweeps the clock hand and demotes. *)
  Sim.Engine.run_after engine (Sim.Time.us 5_000) (fun () ->
      let s =
        Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon 99))
      in
      Storage.Tiers.swap_out t ~slot:s ~queue:0);
  Test_util.drain engine;
  Alcotest.(check bool) "cold slots demoted under pressure" true
    (stats.Metrics.Stats.tier_demotions > 0);
  check Alcotest.int "writeback sectors match demotions"
    (8 * stats.Metrics.Stats.tier_demotions)
    stats.Metrics.Stats.tier_writeback_sectors;
  Alcotest.(check bool) "demotion made room for the admission" true
    (stats.Metrics.Stats.tier_admissions > 64)

(* Failover lifecycle on a czram fast tier: pool corruption burns the
   error budget, the tier trips, new admissions route slow, the drain
   evacuates residents, and the first probe brings a reinitialized pool
   back healthy. *)
let tiers_failover_trip_drain_recover () =
  let cfg =
    {
      Storage.Tiers.disk_only with
      Storage.Tiers.fast = Storage.Tiers.Czram;
      (* admit everything the pool can hold: compressibility must not
         decide which slots participate in the failover drill *)
      czram_admit_ratio = 1.25;
      fast_share_percent = 50;
      writeback_batch = 64;
      tier_error_budget = 2;
      tier_probe_us = 50_000;
    }
  in
  (* media_rate 1.0 corrupts every pool page: each fast-tier read is a
     budget hit, so the trip point is exactly [tier_error_budget]. *)
  let faults =
    Faults.Plan.create (Faults.Config.make ~seed:11 ~media_rate:1.0 ())
  in
  let engine, stats, swap, t = mk_tiers ~faults cfg in
  let slots =
    List.init 16 (fun i ->
        Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon i)))
  in
  List.iter (fun slot -> Storage.Tiers.swap_out t ~slot ~queue:0) slots;
  Test_util.drain engine;
  let resident = Storage.Tiers.fast_slots t in
  Alcotest.(check bool) "some pages admitted fast" true (resident > 0);
  Alcotest.(check bool) "healthy to start" false
    (Storage.Tiers.fast_degraded t);
  (* Two corrupt reads of a fast slot trip the budget.  Stop the engine
     at the trip, not at quiescence: the probe timer armed by the trip
     would otherwise recover the tier before we can observe it. *)
  let fast_slot =
    List.find (fun s -> Storage.Swap_area.tier swap s = 0) slots
  in
  for _ = 1 to cfg.Storage.Tiers.tier_error_budget do
    Storage.Tiers.swap_in t ~slot:fast_slot
      ~sector:(Storage.Swap_area.sector_of_slot swap fast_slot)
      ~nsectors:8 ~queue:0 ~attempt:0 (fun _ -> ())
  done;
  Test_util.drain_until engine (fun () -> Storage.Tiers.fast_degraded t);
  check Alcotest.int "one degraded event" 1
    stats.Metrics.Stats.tier_degraded_events;
  Alcotest.(check bool) "pool corruption counted as injected media" true
    (stats.Metrics.Stats.faults_injected_media
    >= cfg.Storage.Tiers.tier_error_budget);
  (* An admission while degraded routes straight to the slow tier. *)
  let routes0 = stats.Metrics.Stats.tier_failover_routes in
  let s =
    Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon 99))
  in
  Storage.Tiers.swap_out t ~slot:s ~queue:0;
  check Alcotest.int "degraded admission rerouted" (routes0 + 1)
    stats.Metrics.Stats.tier_failover_routes;
  check Alcotest.int "rerouted slot lands on tier 1" 1
    (Storage.Swap_area.tier swap s);
  (* Quiescence: the drain evacuates every resident fast slot, then the
     probe finds the reinitialized pool healthy and stops both timers. *)
  Test_util.drain engine;
  check Alcotest.int "fast tier fully drained" 0 (Storage.Tiers.fast_slots t);
  Alcotest.(check bool) "drain went through writeback" true
    (stats.Metrics.Stats.tier_demotions >= resident);
  Alcotest.(check bool) "recovered after probe" false
    (Storage.Tiers.fast_degraded t);
  check Alcotest.int "one recovery event" 1
    stats.Metrics.Stats.tier_recovered_events;
  (* A healthy tier admits again. *)
  let s2 =
    Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon 123))
  in
  let adm0 = stats.Metrics.Stats.tier_admissions in
  Storage.Tiers.swap_out t ~slot:s2 ~queue:0;
  Test_util.drain engine;
  check Alcotest.int "admission reopened" (adm0 + 1)
    stats.Metrics.Stats.tier_admissions

(* A flapping remote fast tier: link timeouts are transient (retry can
   clear them) but still burn the failover budget, and the probe
   re-hashes its attempt number until the flap clears. *)
let tiers_remote_flap_degrades_and_recovers () =
  let cfg =
    {
      Storage.Tiers.disk_only with
      Storage.Tiers.fast = Storage.Tiers.Remote;
      fast_share_percent = 25;
      tier_error_budget = 1;
      tier_probe_us = 10_000;
    }
  in
  let faults =
    Faults.Plan.create (Faults.Config.make ~seed:5 ~transient_rate:0.6 ())
  in
  let engine, stats, swap, t = mk_tiers ~faults cfg in
  let slots =
    List.init 8 (fun i ->
        Option.get (Storage.Swap_area.alloc swap (Storage.Content.Anon i)))
  in
  List.iter (fun slot -> Storage.Tiers.swap_out t ~slot ~queue:0) slots;
  Test_util.drain engine;
  Alcotest.(check bool) "remote admits everything" true
    (Storage.Tiers.fast_slots t = 8);
  (* At 60% flap rate, hammering one slot with fresh attempts soon finds
     a timeout; budget 1 trips the tier on the first one. *)
  let attempt = ref 0 and completed = ref 0 in
  while (not (Storage.Tiers.fast_degraded t)) && !attempt < 64 do
    Storage.Tiers.swap_in t ~slot:(List.hd slots)
      ~sector:(Storage.Swap_area.sector_of_slot swap (List.hd slots))
      ~nsectors:8 ~queue:0 ~attempt:!attempt (fun _ -> incr completed);
    incr attempt;
    Test_util.drain_until engine (fun () -> !completed = !attempt)
  done;
  Alcotest.(check bool) "a timeout landed within 64 attempts" true
    (Storage.Tiers.fast_degraded t);
  check Alcotest.int "flap tripped the tier" 1
    stats.Metrics.Stats.tier_degraded_events;
  Alcotest.(check bool) "timeouts counted as injected transients" true
    (stats.Metrics.Stats.faults_injected_transient >= 1);
  (* The probe re-hashes (seed, sector 0, attempt): at 60% it clears
     within a handful of intervals, recovering the tier; the drain has
     meanwhile pushed every resident slot back to the disk. *)
  Test_util.drain engine;
  Alcotest.(check bool) "link came back" false
    (Storage.Tiers.fast_degraded t);
  check Alcotest.int "one recovery event" 1
    stats.Metrics.Stats.tier_recovered_events;
  check Alcotest.int "drained while degraded" 0 (Storage.Tiers.fast_slots t)

(* Property: the disk-only composite is call-for-call identical to the
   bare disk — same completion times, same media traffic — over random
   swap-out/swap-in interleavings. *)
let tiers_passthrough_differential =
  QCheck.Test.make
    ~name:"tiers: disk-only composite identical to bare disk" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (int_range 0 199) bool))
    (fun ops ->
      let run_bare () =
        let engine = Sim.Engine.create () in
        let stats = Metrics.Stats.create () in
        let disk =
          Storage.Disk.create ~engine ~stats Storage.Disk.default_config
        in
        let log = ref [] in
        List.iter
          (fun (slot, out) ->
            let sector = slot * 8 in
            if out then
              Storage.Disk.write_buffered ~queue:(slot mod 4) disk ~sector
                ~nsectors:8
            else
              Storage.Disk.submit disk ~sector ~nsectors:8
                ~kind:Storage.Disk.Read ~queue:(slot mod 4) (fun _ ->
                  log := (slot, Sim.Engine.now engine) :: !log))
          ops;
        Test_util.drain engine;
        (List.rev !log, stats)
      in
      let run_tiered () =
        let engine = Sim.Engine.create () in
        let stats = Metrics.Stats.create () in
        let disk =
          Storage.Disk.create ~engine ~stats Storage.Disk.default_config
        in
        let swap = Storage.Swap_area.create ~base_sector:0 ~nslots:256 in
        for i = 0 to 199 do
          ignore (Storage.Swap_area.alloc swap (Storage.Content.Anon i))
        done;
        let t =
          Storage.Tiers.create ~engine ~stats ~disk ~swap
            Storage.Tiers.disk_only
        in
        let log = ref [] in
        List.iter
          (fun (slot, out) ->
            if out then Storage.Tiers.swap_out t ~slot ~queue:(slot mod 4)
            else
              Storage.Tiers.swap_in t ~slot ~sector:(slot * 8) ~nsectors:8
                ~queue:(slot mod 4) ~attempt:0 (fun _ ->
                  log := (slot, Sim.Engine.now engine) :: !log))
          ops;
        Test_util.drain engine;
        (List.rev !log, stats)
      in
      let log_b, st_b = run_bare () in
      let log_t, st_t = run_tiered () in
      log_b = log_t
      && st_b.Metrics.Stats.disk_ops = st_t.Metrics.Stats.disk_ops
      && st_b.Metrics.Stats.disk_sectors_read
         = st_t.Metrics.Stats.disk_sectors_read
      && st_b.Metrics.Stats.disk_sectors_written
         = st_t.Metrics.Stats.disk_sectors_written
      && st_t.Metrics.Stats.tier_admissions = 0
      && st_t.Metrics.Stats.tier_rejects = 0)

let tests =
  [
    ( "storage:geom+content",
      [
        Alcotest.test_case "geometry" `Quick geom_units;
        Alcotest.test_case "content equality" `Quick content_equality;
        Alcotest.test_case "fresh anon unique" `Quick content_fresh_unique;
        Alcotest.test_case "combine deterministic" `Quick content_combine_deterministic;
      ] );
    ( "storage:vdisk",
      [
        Alcotest.test_case "pristine and write" `Quick vdisk_pristine_and_write;
        Alcotest.test_case "bounds" `Quick vdisk_bounds;
        qcheck vdisk_version_counts_writes;
      ] );
    ( "storage:disk",
      [
        Alcotest.test_case "seq vs random" `Quick disk_sequential_cheaper_than_random;
        Alcotest.test_case "backward expensive" `Quick disk_backward_expensive;
        Alcotest.test_case "forward skip" `Quick disk_forward_skip_cheap;
        Alcotest.test_case "read ordering" `Quick disk_read_completion_ordering;
        Alcotest.test_case "write ack" `Quick disk_write_acks_fast;
        Alcotest.test_case "read from buffer" `Quick disk_read_served_from_write_buffer;
        Alcotest.test_case "idle flush + merge" `Quick disk_flushes_when_idle;
        Alcotest.test_case "coalesces queued reads" `Quick
          disk_coalesces_queued_reads;
        Alcotest.test_case "batch span cap" `Quick disk_batch_cap;
        Alcotest.test_case "partial overlap goes to media" `Quick
          disk_read_after_write_partial_overlap;
        Alcotest.test_case "queue depth consistency" `Quick
          disk_queue_depth_consistency;
        Alcotest.test_case "rejects empty" `Quick disk_rejects_empty;
        Alcotest.test_case "rejects out of bounds" `Quick
          disk_rejects_out_of_bounds;
        Alcotest.test_case "typed error injection" `Quick
          disk_injects_typed_errors;
        Alcotest.test_case "degraded latency" `Quick disk_degraded_latency;
        qcheck disk_service_monotone;
        qcheck disk_every_read_completes_once;
      ] );
    ( "storage:multiqueue",
      [
        Alcotest.test_case "parallel service faster" `Quick
          mq_parallel_service_faster;
        Alcotest.test_case "queue reduction and stats" `Quick
          mq_queue_reduction_and_stats;
        Alcotest.test_case "depth admits concurrency" `Quick
          mq_depth_admits_concurrent_batches;
        qcheck mq_every_read_completes_once;
      ] );
    ( "storage:swap_area",
      [
        Alcotest.test_case "cluster sequential" `Quick swap_cluster_sequential;
        Alcotest.test_case "cluster rounding" `Quick swap_cluster_rounding;
        Alcotest.test_case "roundtrip" `Quick swap_roundtrip;
        Alcotest.test_case "fragmentation fallback" `Quick swap_fragmentation_fallback;
        Alcotest.test_case "free cluster reuse" `Quick swap_free_cluster_reuse;
        Alcotest.test_case "tier metadata + on_free hook" `Quick
          swap_area_tier_metadata;
        qcheck swap_model;
      ] );
    ( "storage:destage",
      [
        Alcotest.test_case "media fault counted" `Quick
          destage_media_fault_counted;
        Alcotest.test_case "transient retries then succeeds" `Quick
          destage_transient_retries_then_succeeds;
        Alcotest.test_case "retry budget bounds livelock" `Quick
          destage_retry_budget_bounds_livelock;
        Alcotest.test_case "parallel destage queues faster" `Quick
          destage_parallel_queues_faster;
      ] );
    ( "storage:backend",
      [
        Alcotest.test_case "czram admission/latency/serialization" `Quick
          czram_admission_latency_serialization;
        Alcotest.test_case "czram pool cap rejects" `Quick
          czram_pool_cap_rejects;
        Alcotest.test_case "remote rtt + link queueing" `Quick
          remote_rtt_and_link_queueing;
      ] );
    ( "storage:tiers",
      [
        Alcotest.test_case "routing, promotion, demotion" `Quick
          tiers_routing_promotion_demotion;
        Alcotest.test_case "failover trip, drain, recover" `Quick
          tiers_failover_trip_drain_recover;
        Alcotest.test_case "remote flap degrades and recovers" `Quick
          tiers_remote_flap_degrades_and_recovers;
        qcheck tiers_passthrough_differential;
      ] );
  ]
