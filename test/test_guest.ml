(* Tests for the guest OS model: page cache with readahead, dirty
   write-back, anonymous memory with guest-level swap, the balloon
   driver, OOM behaviour and bookkeeping invariants. *)

let check = Alcotest.check
module G = Guest.Guestos
module H = Host.Hostmm
module C = Storage.Content

type rig = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  host : H.t;
  os : G.t;
}

(* Guest with 16 MiB of believed memory on a roomy host (the host only
   pressures the guest when a test sets a resident limit). *)
let mk_rig ?(mem_mb = 16) ?resident_limit_mb () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk = Storage.Disk.create ~engine ~stats Storage.Disk.default_config in
  let gcfg =
    { (Guest.Gconfig.default ~mem_mb) with swap_blocks = 2048 }
  in
  let nblocks = gcfg.Guest.Gconfig.swap_blocks + Storage.Geom.pages_of_mb 32 in
  let vdisk = Storage.Vdisk.create ~id:0 ~base_sector:10_000 ~nblocks in
  let swap = Storage.Swap_area.create ~base_sector:10_000_000 ~nslots:16_384 in
  let hconfig = Host.Hconfig.with_memory_mb Host.Hconfig.default 128 in
  let host =
    H.create ~engine ~disk ~stats ~config:hconfig
      ~vsconfig:Vswapper.Vsconfig.baseline ~swap ~hv_base_sector:0 ()
  in
  let gid =
    H.register_guest host ~vdisk ~gpa_pages:gcfg.Guest.Gconfig.mem_pages
      ~resident_limit:(Option.map Storage.Geom.pages_of_mb resident_limit_mb)
  in
  let os = G.create ~engine ~host ~gid ~stats ~config:gcfg in
  let booted = ref false in
  G.boot os (fun () -> booted := true);
  Test_util.drain_until engine (fun () -> !booted);
  { engine; stats; host; os }

let sync rig f =
  let done_ = ref false in
  f (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_)

(* ------------------------------------------------------------------ *)
(* Page cache                                                          *)
(* ------------------------------------------------------------------ *)

let read_caches_and_readahead () =
  let rig = mk_rig () in
  let f = G.create_file rig.os ~blocks:256 in
  sync rig (G.read_file rig.os f ~idx:0);
  let cached = G.cache_pages rig.os in
  Alcotest.(check bool) "readahead brought more than one block" true (cached > 1);
  let ops_before = rig.stats.Metrics.Stats.disk_ops in
  sync rig (G.read_file rig.os f ~idx:0);
  check Alcotest.int "cache hit: no new I/O" ops_before
    rig.stats.Metrics.Stats.disk_ops;
  G.check_invariants rig.os

let sequential_reads_grow_window () =
  let rig = mk_rig () in
  let f = G.create_file rig.os ~blocks:512 in
  for idx = 0 to 255 do
    sync rig (G.read_file rig.os f ~idx)
  done;
  (* With a growing window, far fewer I/O requests than blocks. *)
  Alcotest.(check bool) "few requests" true
    (rig.stats.Metrics.Stats.disk_ops < 64);
  (* The final window may prefetch past block 255 (the file has 512). *)
  Alcotest.(check bool) "everything cached" true (G.cache_pages rig.os >= 256);
  G.check_invariants rig.os

let write_file_dirties_and_fsync_cleans () =
  let rig = mk_rig () in
  let f = G.create_file rig.os ~blocks:16 in
  sync rig (G.write_file rig.os f ~idx:3);
  check Alcotest.int "one dirty page" 1 (G.dirty_cache_pages rig.os);
  sync rig (G.fsync_file rig.os f);
  check Alcotest.int "clean after fsync" 0 (G.dirty_cache_pages rig.os);
  G.check_invariants rig.os

let written_data_survives_cache_drop () =
  let rig = mk_rig ~mem_mb:16 () in
  let f = G.create_file rig.os ~blocks:16 in
  sync rig (G.write_file rig.os f ~idx:0);
  sync rig (G.fsync_file rig.os f);
  (* Chew through all guest memory so the cached page gets evicted. *)
  let big = G.alloc_region rig.os ~pages:(Storage.Geom.pages_of_mb 14) in
  for i = 0 to G.region_pages big - 1 do
    sync rig (fun k -> G.overwrite_page rig.os big ~idx:i k)
  done;
  G.free_region rig.os big;
  (* Re-read: must come back from the virtual disk. *)
  sync rig (G.read_file rig.os f ~idx:0);
  G.check_invariants rig.os

let random_reads_keep_window_small () =
  (* Two guests read the same number of blocks; the random reader must
     issue far more I/O requests than the sequential one. *)
  let sequential =
    let rig = mk_rig () in
    let f = G.create_file rig.os ~blocks:512 in
    for idx = 0 to 127 do
      sync rig (G.read_file rig.os f ~idx)
    done;
    rig.stats.Metrics.Stats.disk_ops
  in
  let strided =
    let rig = mk_rig () in
    let f = G.create_file rig.os ~blocks:512 in
    for i = 0 to 127 do
      sync rig (G.read_file rig.os f ~idx:(i * 97 mod 512))
    done;
    rig.stats.Metrics.Stats.disk_ops
  in
  Alcotest.(check bool)
    (Printf.sprintf "random (%d) needs more requests than sequential (%d)"
       strided sequential)
    true
    (strided > 2 * sequential)

let file_bounds_checked () =
  let rig = mk_rig () in
  let f = G.create_file rig.os ~blocks:4 in
  Alcotest.check_raises "read oob" (Invalid_argument "Guestos.read_file: idx")
    (fun () -> G.read_file rig.os f ~idx:4 (fun () -> ()));
  Alcotest.check_raises "write oob" (Invalid_argument "Guestos.write_file: idx")
    (fun () -> G.write_file rig.os f ~idx:(-1) (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Anonymous memory and guest swap                                     *)
(* ------------------------------------------------------------------ *)

let anon_touch_and_guest_swap_roundtrip () =
  let rig = mk_rig ~mem_mb:16 () in
  let r = G.alloc_region rig.os ~pages:64 in
  for i = 0 to 63 do
    sync rig (fun k -> G.touch rig.os r ~idx:i ~write:true k)
  done;
  (* Pressure the guest into swapping region pages to its own disk. *)
  let big = G.alloc_region rig.os ~pages:(Storage.Geom.pages_of_mb 14) in
  for i = 0 to G.region_pages big - 1 do
    sync rig (fun k -> G.overwrite_page rig.os big ~idx:i k)
  done;
  Alcotest.(check bool) "guest swapped something out" true
    (rig.stats.Metrics.Stats.guest_swapouts > 0);
  G.free_region rig.os big;
  (* Touch the region again: pages come back via guest swap-in. *)
  for i = 0 to 63 do
    sync rig (fun k -> G.touch rig.os r ~idx:i ~write:false k)
  done;
  Alcotest.(check bool) "guest swapins happened" true
    (rig.stats.Metrics.Stats.guest_swapins > 0);
  Alcotest.(check bool) "major faults counted" true
    (rig.stats.Metrics.Stats.guest_major_faults > 0);
  G.free_region rig.os r;
  G.check_invariants rig.os

let free_region_releases_pages () =
  let rig = mk_rig () in
  let free_before = G.free_pages rig.os in
  let r = G.alloc_region rig.os ~pages:32 in
  for i = 0 to 31 do
    sync rig (fun k -> G.touch rig.os r ~idx:i ~write:true k)
  done;
  check Alcotest.int "pages consumed" (free_before - 32) (G.free_pages rig.os);
  G.free_region rig.os r;
  check Alcotest.int "pages back" free_before (G.free_pages rig.os);
  (* Double free is a no-op. *)
  G.free_region rig.os r;
  check Alcotest.int "still back" free_before (G.free_pages rig.os);
  G.check_invariants rig.os

let memcpy_page_works () =
  let rig = mk_rig () in
  let r = G.alloc_region rig.os ~pages:4 in
  sync rig (fun k -> G.memcpy_page rig.os r ~idx:2 k);
  G.free_region rig.os r;
  G.check_invariants rig.os

(* ------------------------------------------------------------------ *)
(* Balloon driver                                                      *)
(* ------------------------------------------------------------------ *)

let balloon_converges () =
  let rig = mk_rig () in
  G.start_services rig.os;
  let target = Storage.Geom.pages_of_mb 4 in
  G.set_balloon_target rig.os ~pages:target;
  Test_util.drain_until rig.engine (fun () -> G.balloon_size rig.os >= target);
  check Alcotest.int "target reached" target (G.balloon_size rig.os);
  Alcotest.(check bool) "host saw inflation" true
    (rig.stats.Metrics.Stats.balloon_inflated_pages >= target);
  (* Deflate. *)
  G.set_balloon_target rig.os ~pages:0;
  Test_util.drain_until rig.engine (fun () -> G.balloon_size rig.os = 0);
  Alcotest.(check bool) "deflations counted" true
    (rig.stats.Metrics.Stats.balloon_deflated_pages >= target);
  G.check_invariants rig.os

let oom_fires_when_starved () =
  let rig = mk_rig ~mem_mb:16 () in
  G.start_services rig.os;
  let killed = ref false in
  let region = ref None in
  G.set_oom_handler rig.os (fun () ->
      killed := true;
      match !region with
      | Some r -> G.free_region rig.os r
      | None -> ());
  (* Balloon away almost everything, then demand more than remains. *)
  G.set_balloon_target rig.os ~pages:(Storage.Geom.pages_of_mb 12);
  Test_util.drain_until rig.engine (fun () ->
      G.balloon_size rig.os >= Storage.Geom.pages_of_mb 12);
  let r = G.alloc_region rig.os ~pages:(Storage.Geom.pages_of_mb 8) in
  region := Some r;
  (* Cycle through the region repeatedly: sustained thrash against the
     tiny usable memory must eventually trip the killer. *)
  let i = ref 0 and pass = ref 0 in
  let finished = ref false in
  let rec touch_loop () =
    if !killed then ()
    else if !i >= G.region_pages r then begin
      i := 0;
      incr pass;
      if !pass >= 40 then finished := true else touch_loop ()
    end
    else begin
      let idx = !i in
      incr i;
      G.overwrite_page rig.os r ~idx (fun () -> touch_loop ())
    end
  in
  touch_loop ();
  (try
     Test_util.drain_until rig.engine (fun () -> !killed || !finished)
   with Failure _ -> ());
  Alcotest.(check bool) "OOM killer fired" true (G.oomed rig.os);
  Alcotest.(check bool) "kill counted" true
    (rig.stats.Metrics.Stats.oom_kills > 0)

let tests =
  [
    ( "guest:page-cache",
      [
        Alcotest.test_case "read caches + readahead" `Quick read_caches_and_readahead;
        Alcotest.test_case "window growth" `Quick sequential_reads_grow_window;
        Alcotest.test_case "dirty + fsync" `Quick write_file_dirties_and_fsync_cleans;
        Alcotest.test_case "writeback survives drop" `Quick written_data_survives_cache_drop;
        Alcotest.test_case "random window reset" `Quick random_reads_keep_window_small;
        Alcotest.test_case "file bounds" `Quick file_bounds_checked;
      ] );
    ( "guest:anon",
      [
        Alcotest.test_case "guest swap roundtrip" `Quick anon_touch_and_guest_swap_roundtrip;
        Alcotest.test_case "free region" `Quick free_region_releases_pages;
        Alcotest.test_case "memcpy page" `Quick memcpy_page_works;
      ] );
    ( "guest:balloon+oom",
      [
        Alcotest.test_case "balloon converges" `Quick balloon_converges;
        Alcotest.test_case "OOM fires" `Quick oom_fires_when_starved;
      ] );
  ]
