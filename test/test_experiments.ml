(* Smoke and shape tests for the experiment harness.  Full-scale shape
   checks live in the benchmark; here we run tiny scales and verify the
   harness plumbing plus the headline ordering on one experiment. *)

let check = Alcotest.check

let registry_complete () =
  let ids = Experiments.Registry.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "fig3"; "fig4"; "fig5"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
      "fig14"; "fig15"; "tab1"; "tab2" ];
  check Alcotest.int "twelve paper artifacts + extensions" 21
    (List.length ids);
  Alcotest.(check bool) "fleet registered" true (List.mem "fleet" ids);
  Alcotest.(check bool) "degradation registered" true
    (List.mem "degradation" ids);
  Alcotest.(check bool) "scalability registered" true
    (List.mem "scalability" ids);
  Alcotest.(check bool) "memscale registered" true (List.mem "memscale" ids);
  Alcotest.(check bool) "tiering registered" true (List.mem "tiering" ids);
  Alcotest.(check bool) "migration registered" true (List.mem "mig" ids);
  Alcotest.(check bool) "resilience registered" true
    (List.mem "resilience" ids);
  Alcotest.(check bool) "ablations registered" true (List.mem "abl" ids);
  Alcotest.(check bool) "windows registered" true (List.mem "win" ids);
  Alcotest.(check bool) "find works" true
    (Experiments.Registry.find "fig9" <> None);
  Alcotest.(check bool) "unknown is None" true
    (Experiments.Registry.find "fig99" = None)

let scaling_helpers () =
  check Alcotest.int "mb floor" 16 (Experiments.Exp.mb 0.01 200);
  check Alcotest.int "mb scale" 100 (Experiments.Exp.mb 0.5 200);
  check Alcotest.int "int floor" 5 (Experiments.Exp.scaled_int 0.001 100 ~min:5);
  check Alcotest.int "int scale" 50 (Experiments.Exp.scaled_int 0.5 100 ~min:5)

let config_kinds () =
  let open Experiments.Exp in
  check Alcotest.int "five configs" 5 (List.length all_configs);
  Alcotest.(check bool) "balloon flags" true
    (ballooned Balloon_baseline && ballooned Balloon_vswapper
    && (not (ballooned Baseline))
    && not (ballooned Vswapper_full));
  Alcotest.(check bool) "vs of mapper" true
    (vs_of Mapper_only).Vswapper.Vsconfig.mapper;
  Alcotest.(check bool) "vs of mapper w/o preventer" false
    (vs_of Mapper_only).Vswapper.Vsconfig.preventer

let fig3_headline_ordering () =
  (* At 1/8 scale, the defining result must hold: baseline is several
     times slower than vswapper, which beats nothing but the baseline. *)
  let out = Experiments.Fig03.exp.Experiments.Exp.run ~scale:0.125 in
  Alcotest.(check bool) "has header" true (Test_util.contains out "FIG3");
  Alcotest.(check bool) "mentions configs" true
    (Test_util.contains out "vswapper" && Test_util.contains out "baseline")

let tab1_reports_loc () =
  let out = Experiments.Tab01.exp.Experiments.Exp.run ~scale:1.0 in
  Alcotest.(check bool) "has mapper row" true
    (Test_util.contains out "Swap Mapper");
  Alcotest.(check bool) "has paper numbers" true (Test_util.contains out "1974")

let run_all_isolates_failures () =
  (* A raising experiment must not abort the sweep: it comes back as an
     [Error] outcome and the experiments after it still run. *)
  let mk id run =
    { Experiments.Exp.id; title = id; paper_claim = ""; run }
  in
  let boom = mk "boom" (fun ~scale:_ -> failwith "injected failure") in
  let fine = mk "fine" (fun ~scale:_ -> "ran fine") in
  match Experiments.Registry.run_all ~scale:1.0 [ boom; fine ] with
  | [ a; b ] ->
      Alcotest.(check string) "order kept" "boom" a.Experiments.Registry.exp.id;
      Alcotest.(check bool) "failure captured" true
        (Result.is_error a.Experiments.Registry.output);
      Alcotest.(check bool) "later experiment still ran" true
        (b.Experiments.Registry.output = Ok "ran fine")
  | outs ->
      Alcotest.failf "expected 2 outcomes, got %d" (List.length outs)

let mark_collector_works () =
  let mref = ref None in
  let on_mark, get = Experiments.Exp.mark_collector mref in
  (* without a machine, marks are dropped silently *)
  on_mark 0;
  check Alcotest.int "dropped" 0 (List.length (get ()))

let tests =
  [
    ( "experiments:harness",
      [
        Alcotest.test_case "registry" `Quick registry_complete;
        Alcotest.test_case "scaling" `Quick scaling_helpers;
        Alcotest.test_case "config kinds" `Quick config_kinds;
        Alcotest.test_case "mark collector" `Quick mark_collector_works;
        Alcotest.test_case "failure isolation" `Quick run_all_isolates_failures;
        Alcotest.test_case "tab1 loc" `Quick tab1_reports_loc;
      ] );
    ( "experiments:shape",
      [ Alcotest.test_case "fig3 runs end-to-end" `Slow fig3_headline_ordering ] );
  ]
