(* Lint files with the strict Metrics.Json parser; exit 1 naming the
   first offence.  The async-smoke alias runs this over every summary
   `bench --json` emits, so an invalid byte (like the old `+2.943`
   delta) fails `dune runtest` instead of the next consumer. *)
let () =
  let ok = ref true in
  Array.iteri
    (fun i file ->
      if i > 0 then begin
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Metrics.Json.validate s with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "%s: invalid JSON: %s\n" file msg;
            ok := false
      end)
    Sys.argv;
  if not !ok then exit 1
