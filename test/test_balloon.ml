(* Tests for the MOM-like balloon manager policy. *)

let check = Alcotest.check
module M = Balloon.Manager

(* An idle-ish guest with lots of slack inside a machine whose host is
   under memory pressure: the manager should inflate its balloon. *)
let manager_inflates_under_pressure () =
  (* The guest touches 32 MB once, then idles: the host is pressured,
     the guest has slack -> a perfect inflation donor. *)
  let touch_then_idle =
    {
      Vmm.Workload.name = "touch-then-idle";
      setup =
        (fun os _rng ->
          let r =
            Guest.Guestos.alloc_region os ~pages:(Storage.Geom.pages_of_mb 32)
          in
          let ops =
            List.init (Guest.Guestos.region_pages r) (fun i ->
                Vmm.Workload.Overwrite (r, i))
            @ List.init 40 (fun _ -> Vmm.Workload.Compute 200_000)
          in
          {
            Vmm.Workload.threads = [ Vmm.Workload.of_list ops ];
            cleanup = (fun () -> Guest.Guestos.free_region os r);
          });
    }
  in
  let guest =
    { (Vmm.Config.default_guest ~workload:touch_then_idle) with mem_mb = 64; data_mb = 16 }
  in
  let policy =
    {
      M.default_policy with
      M.period = Sim.Time.ms 200;
      host_reserve_frames = Storage.Geom.pages_of_mb 48;
      guest_min_pages = Storage.Geom.pages_of_mb 16;
      guest_free_high = 0.1;
      step_pages = Storage.Geom.pages_of_mb 4;
    }
  in
  (* Host 64MB: after the guest boots, free frames < 48MB reserve. *)
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 64;
      manager = Some policy;
    }
  in
  let machine = Vmm.Machine.build cfg in
  let result = Vmm.Machine.run machine in
  ignore result;
  let os = Vmm.Machine.os machine 0 in
  Alcotest.(check bool) "balloon target grew" true
    (Guest.Guestos.balloon_target os > 0);
  Alcotest.(check bool) "balloon actually inflated" true
    (Guest.Guestos.balloon_size os > 0)

let manager_respects_guest_min () =
  let policy = M.default_policy in
  (* guest_min_pages bounds inflation: with a 64MB guest and min=96MB,
     no inflation should ever be requested. *)
  let idle_workload =
    {
      Vmm.Workload.name = "idle";
      setup =
        (fun _os _rng ->
          {
            Vmm.Workload.threads =
              [ Vmm.Workload.of_list (List.init 20 (fun _ -> Vmm.Workload.Compute 200_000)) ];
            cleanup = (fun () -> ());
          });
    }
  in
  let guest =
    { (Vmm.Config.default_guest ~workload:idle_workload) with mem_mb = 64; data_mb = 16 }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 64;
      manager = Some { policy with M.period = Sim.Time.ms 200 };
    }
  in
  let machine = Vmm.Machine.build cfg in
  ignore (Vmm.Machine.run machine);
  let os = Vmm.Machine.os machine 0 in
  check Alcotest.int "no inflation below guest_min" 0
    (Guest.Guestos.balloon_target os)

let manager_stop_freezes_targets () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk = Storage.Disk.create ~engine ~stats Storage.Disk.default_config in
  let vdisk = Storage.Vdisk.create ~id:0 ~base_sector:0 ~nblocks:1024 in
  let swap = Storage.Swap_area.create ~base_sector:100_000 ~nslots:4096 in
  let host =
    Host.Hostmm.create ~engine ~disk ~stats
      ~config:(Host.Hconfig.with_memory_mb Host.Hconfig.default 16)
      ~vsconfig:Vswapper.Vsconfig.baseline ~swap ~hv_base_sector:0 ()
  in
  let gid = Host.Hostmm.register_guest host ~vdisk ~gpa_pages:4096 ~resident_limit:None in
  let os =
    Guest.Guestos.create ~engine ~host ~gid ~stats
      ~config:(Guest.Gconfig.default ~mem_mb:16)
  in
  let m = M.create ~engine ~host ~guests:[ os ] M.default_policy in
  M.start m;
  M.stop m;
  (* A stopped manager schedules nothing further; the engine drains. *)
  Test_util.drain engine;
  check Alcotest.int "no target set" 0 (Guest.Guestos.balloon_target os)

let manager_deflates_squeezed_guest () =
  (* A guest whose balloon was inflated and that then comes under
     pressure gets memory back when the host has surplus. *)
  let touch_late =
    {
      Vmm.Workload.name = "late-demand";
      setup =
        (fun os _rng ->
          let r =
            Guest.Guestos.alloc_region os ~pages:(Storage.Geom.pages_of_mb 40)
          in
          (* Idle for a while (manager balloons the free guest), then
             demand memory. *)
          let ops =
            List.init 10 (fun _ -> Vmm.Workload.Compute 500_000)
            @ List.init (Guest.Guestos.region_pages r) (fun i ->
                  Vmm.Workload.Overwrite (r, i))
          in
          {
            Vmm.Workload.threads = [ Vmm.Workload.of_list ops ];
            cleanup = (fun () -> Guest.Guestos.free_region os r);
          });
    }
  in
  let guest =
    { (Vmm.Config.default_guest ~workload:touch_late) with mem_mb = 64; data_mb = 16 }
  in
  let policy =
    {
      M.default_policy with
      M.period = Sim.Time.ms 200;
      host_reserve_frames = Storage.Geom.pages_of_mb 40;
      guest_min_pages = Storage.Geom.pages_of_mb 8;
      guest_free_high = 0.3;
      step_pages = Storage.Geom.pages_of_mb 8;
    }
  in
  (* A roomy host: surplus exists, so deflation is permitted. *)
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 256;
      manager = Some policy;
    }
  in
  let machine = Vmm.Machine.build cfg in
  let result = Vmm.Machine.run machine in
  (* The workload must finish despite having been ballooned. *)
  Alcotest.(check bool) "finished" true
    (result.Vmm.Machine.guests.(0).Vmm.Machine.runtime <> None)

let tests =
  [
    ( "balloon:manager",
      [
        Alcotest.test_case "inflates under pressure" `Quick manager_inflates_under_pressure;
        Alcotest.test_case "respects guest min" `Quick manager_respects_guest_min;
        Alcotest.test_case "stop freezes" `Quick manager_stop_freezes_targets;
        Alcotest.test_case "deflates squeezed guest" `Quick manager_deflates_squeezed_guest;
      ] );
  ]
