(* Fault-plan semantics: decisions are pure hashes of
   (seed, sector, attempt), so they must be reproducible across plans
   with the same seed, independent of query order, persistent for media
   errors and attempt-varying for transient ones. *)

let check = Alcotest.check

let plan ?(seed = 42) ?(media = 0.0) ?(transient = 0.0) ?(degraded = 0.0)
    ?(mult = 4.0) () =
  Faults.Plan.create
    (Faults.Config.make ~seed ~media_rate:media ~transient_rate:transient
       ~degraded_rate:degraded ~degraded_mult:mult ())

let none_injects_nothing () =
  let p = Faults.Plan.none in
  Alcotest.(check bool) "is none" true (Faults.Plan.is_none p);
  for sector = 0 to 999 do
    Alcotest.(check bool) "no error" true
      (Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt:0 = None);
    Alcotest.(check bool) "no degrade" true
      (Faults.Plan.degraded_mult p ~sector = None)
  done

let zero_rates_inject_nothing () =
  let p = plan () in
  for sector = 0 to 999 do
    Alcotest.(check bool) "no error at rate 0" true
      (Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt:0 = None)
  done

let rate_one_always_injects () =
  let p = plan ~media:1.0 () in
  for sector = 0 to 99 do
    check
      Alcotest.(option string)
      "media everywhere" (Some "media")
      (Option.map Faults.Error.to_string
         (Faults.Plan.read_error p ~sector:(sector * 8) ~nsectors:8 ~attempt:3))
  done

let same_seed_same_decisions () =
  let q sector attempt p =
    Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt
  in
  let a = plan ~seed:7 ~media:0.01 ~transient:0.05 ()
  and b = plan ~seed:7 ~media:0.01 ~transient:0.05 () in
  (* Query [b] in reverse order: decisions must not depend on draw
     order, which is what makes parallel sweeps byte-reproducible. *)
  let decisions_a =
    List.init 500 (fun i -> q (i * 8) (i mod 3) a)
  in
  let decisions_b =
    List.rev (List.init 500 (fun i -> q ((499 - i) * 8) ((499 - i) mod 3) b))
  in
  Alcotest.(check bool) "order-independent and seed-stable" true
    (decisions_a = decisions_b);
  let c = plan ~seed:8 ~media:0.01 ~transient:0.05 () in
  let decisions_c = List.init 500 (fun i -> q (i * 8) (i mod 3) c) in
  Alcotest.(check bool) "different seed differs somewhere" true
    (decisions_a <> decisions_c)

let media_errors_persist_across_attempts () =
  (* A media error is a property of the sector: retrying must find it
     again on every attempt. *)
  let p = plan ~media:0.05 () in
  let faulty = ref [] in
  for i = 0 to 999 do
    let sector = i * 8 in
    if Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt:0 <> None then
      faulty := sector :: !faulty
  done;
  Alcotest.(check bool) "found some media errors" true (!faulty <> []);
  List.iter
    (fun sector ->
      for attempt = 0 to 5 do
        check
          Alcotest.(option string)
          "persists" (Some "media")
          (Option.map Faults.Error.to_string
             (Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt))
      done)
    !faulty

let transient_errors_vary_by_attempt () =
  (* Transient decisions re-hash with the attempt number, so at a
     moderate rate a retried read eventually succeeds. *)
  let p = plan ~transient:0.2 () in
  let recovered = ref 0 and hit = ref 0 in
  for i = 0 to 499 do
    let sector = i * 8 in
    if Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt:0 <> None then begin
      incr hit;
      let rec retry attempt =
        if attempt > 8 then ()
        else if Faults.Plan.read_error p ~sector ~nsectors:8 ~attempt = None
        then incr recovered
        else retry (attempt + 1)
      in
      retry 1
    end
  done;
  Alcotest.(check bool) "some transient errors hit" true (!hit > 0);
  Alcotest.(check bool) "retries recover most of them" true
    (!recovered > !hit / 2)

let media_beats_transient () =
  (* When both rates are 1 every read fails, and the hard error wins. *)
  let p = plan ~media:1.0 ~transient:1.0 () in
  check
    Alcotest.(option string)
    "media precedence" (Some "media")
    (Option.map Faults.Error.to_string
       (Faults.Plan.read_error p ~sector:0 ~nsectors:64 ~attempt:0))

let degraded_mult_applies () =
  let p = plan ~degraded:1.0 ~mult:3.5 () in
  (match Faults.Plan.degraded_mult p ~sector:123 with
  | Some m -> check (Alcotest.float 1e-9) "mult" 3.5 m
  | None -> Alcotest.fail "expected degraded latency at rate 1");
  let q = plan ~degraded:0.0 ~mult:3.5 () in
  Alcotest.(check bool) "rate 0 never degrades" true
    (Faults.Plan.degraded_mult q ~sector:123 = None)

let czram_stream_independent_and_persistent () =
  (* The czram pool-corruption stream draws from its own key: enabling
     it must not move where disk read faults land, and a corrupt page
     stays corrupt (no attempt in the key). *)
  let p = plan ~media:0.05 () in
  let disk_faults =
    List.init 500 (fun i ->
        Faults.Plan.read_error p ~sector:(i * 8) ~nsectors:8 ~attempt:0)
  in
  let q = plan ~media:0.05 () in
  let czram_faults = List.init 500 (fun page -> Faults.Plan.czram_error q ~page) in
  let disk_faults' =
    List.init 500 (fun i ->
        Faults.Plan.read_error q ~sector:(i * 8) ~nsectors:8 ~attempt:0)
  in
  Alcotest.(check bool) "disk stream unmoved by czram draws" true
    (disk_faults = disk_faults');
  Alcotest.(check bool) "some pool corruption at 5%" true
    (List.exists (fun e -> e <> None) czram_faults);
  Alcotest.(check bool) "czram pattern differs from the disk's" true
    (czram_faults <> disk_faults);
  List.iteri
    (fun page e ->
      (match e with
      | Some err ->
          check Alcotest.string "corruption is a media error" "media"
            (Faults.Error.to_string err)
      | None -> ());
      Alcotest.(check bool) "re-reading the pool re-finds it" true
        (Faults.Plan.czram_error q ~page = e))
    czram_faults;
  Alcotest.(check bool) "none plan never corrupts" true
    (List.for_all
       (fun page -> Faults.Plan.czram_error Faults.Plan.none ~page = None)
       (List.init 100 Fun.id))

let remote_stream_transient_retryable () =
  (* Link timeouts re-hash the attempt, so a retry can succeed; the
     stream is independent of the disk's transient stream. *)
  let p = plan ~transient:0.3 () in
  let hit = ref 0 and recovered = ref 0 in
  for sector = 0 to 499 do
    match Faults.Plan.remote_error p ~sector ~attempt:0 with
    | Some err ->
        incr hit;
        check Alcotest.string "timeouts are transient" "transient"
          (Faults.Error.to_string err);
        let rec retry attempt =
          if attempt > 8 then ()
          else if Faults.Plan.remote_error p ~sector ~attempt = None then
            incr recovered
          else retry (attempt + 1)
        in
        retry 1
    | None -> ()
  done;
  Alcotest.(check bool) "some link timeouts at 30%" true (!hit > 0);
  Alcotest.(check bool) "retries clear most flaps" true
    (!recovered > !hit / 2);
  let disk =
    List.init 500 (fun s ->
        Faults.Plan.read_error p ~sector:s ~nsectors:8 ~attempt:0)
  in
  let remote =
    List.init 500 (fun s -> Faults.Plan.remote_error p ~sector:s ~attempt:0)
  in
  Alcotest.(check bool) "remote pattern differs from the disk's" true
    (disk <> remote)

let tests =
  [
    ( "faults:plan",
      [
        Alcotest.test_case "none injects nothing" `Quick none_injects_nothing;
        Alcotest.test_case "zero rates" `Quick zero_rates_inject_nothing;
        Alcotest.test_case "rate one" `Quick rate_one_always_injects;
        Alcotest.test_case "seeded determinism" `Quick same_seed_same_decisions;
        Alcotest.test_case "media persists" `Quick
          media_errors_persist_across_attempts;
        Alcotest.test_case "transient varies" `Quick
          transient_errors_vary_by_attempt;
        Alcotest.test_case "media precedence" `Quick media_beats_transient;
        Alcotest.test_case "degraded mult" `Quick degraded_mult_applies;
        Alcotest.test_case "czram stream" `Quick
          czram_stream_independent_and_persistent;
        Alcotest.test_case "remote stream" `Quick
          remote_stream_transient_retryable;
      ] );
  ]
