(* Tests for counters, time series and table rendering. *)

let check = Alcotest.check

let stats_copy_and_diff () =
  let s = Metrics.Stats.create () in
  s.Metrics.Stats.disk_ops <- 10;
  s.Metrics.Stats.stale_reads <- 3;
  let snap = Metrics.Stats.copy s in
  s.Metrics.Stats.disk_ops <- 25;
  s.Metrics.Stats.stale_reads <- 7;
  check Alcotest.int "copy is frozen" 10 snap.Metrics.Stats.disk_ops;
  let d = Metrics.Stats.diff s snap in
  check Alcotest.int "diff disk_ops" 15 d.Metrics.Stats.disk_ops;
  check Alcotest.int "diff stale" 4 d.Metrics.Stats.stale_reads;
  check Alcotest.int "diff untouched" 0 d.Metrics.Stats.false_reads

let stats_pp_nonzero_only () =
  let s = Metrics.Stats.create () in
  s.Metrics.Stats.silent_swap_writes <- 5;
  let out = Format.asprintf "%a" Metrics.Stats.pp s in
  Alcotest.(check bool) "mentions nonzero" true
    (Test_util.contains out "silent_swap_writes");
  Alcotest.(check bool) "omits zero" false
    (Test_util.contains out "false_reads")

let table_render () =
  let out =
    Metrics.Table.render ~title:"t" ~headers:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has title" true (Test_util.contains out "t\n");
  Alcotest.(check bool) "has cell" true (Test_util.contains out "333")

let table_series () =
  let out =
    Metrics.Table.render_series ~title:"s" ~x_label:"x" ~x:[ "1"; "2" ]
      ~cols:[ ("c", [ Some 1.0; None ]) ]
  in
  Alcotest.(check bool) "crash cell" true (Test_util.contains out "-")

let table_series_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Table.render_series: column \"c\" has 1 values, expected 2")
    (fun () ->
      ignore
        (Metrics.Table.render_series ~title:"s" ~x_label:"x" ~x:[ "1"; "2" ]
           ~cols:[ ("c", [ Some 1.0 ]) ]))

let fmt_float_cases () =
  check Alcotest.string "int-like" "3" (Metrics.Table.fmt_float 3.0);
  check Alcotest.string "large" "123" (Metrics.Table.fmt_float 123.4);
  check Alcotest.string "mid" "12.3" (Metrics.Table.fmt_float 12.34);
  check Alcotest.string "small" "1.23" (Metrics.Table.fmt_float 1.234)

let spark_cases () =
  check Alcotest.string "empty" "" (Metrics.Table.spark []);
  let s = Metrics.Table.spark [ 0.0; 1.0 ] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let series_sampling () =
  let engine = Sim.Engine.create () in
  let v = ref 0.0 in
  let series =
    Metrics.Series.create ~engine ~period:(Sim.Time.us 10)
      [ ("probe", fun () -> !v) ]
  in
  (* something to keep the engine alive for 35us *)
  ignore (Sim.Engine.schedule_at engine (Sim.Time.us 15) (fun () -> v := 5.0));
  ignore (Sim.Engine.schedule_at engine (Sim.Time.us 35) (fun () -> Metrics.Series.stop series));
  Sim.Engine.run engine;
  let pts = Metrics.Series.points series "probe" in
  check Alcotest.int "three samples" 3 (List.length pts);
  let values = List.map snd pts in
  Alcotest.(check (list (float 1e-9))) "values" [ 0.0; 5.0; 5.0 ] values;
  Alcotest.(check (list string)) "names" [ "probe" ] (Metrics.Series.names series)

(* A faithful miniature of the bench writer's record format, including a
   delta line: this exact shape must parse. *)
let json_bench_roundtrip () =
  let doc =
    "{\n  \"date\": \"2026-08-08\",\n  \"scale\": 0.05,\n  \"jobs\": 4,\n\
    \  \"async\": {\"waiter_merges\": 12, \"faults_deferred\": 0, \
     \"inflight_highwater\": 3},\n\
    \  \"queues\": {\"mq_batches\": 812, \"depth_highwater\": 6},\n\
    \  \"experiments\": [\n\
    \    {\"id\": \"fig3\", \"wall_s\": 0.112, \"delta_s\": 0.004, \
     \"history\": [0.108, 0.110], \"ok\": true},\n\
    \    {\"id\": \"fig9\", \"wall_s\": 0.093, \"delta_s\": -0.002, \
     \"ok\": true}\n  ]\n}\n"
  in
  (match Metrics.Json.parse doc with
  | Error e -> Alcotest.failf "writer format rejected: %s" e
  | Ok v -> (
      match Metrics.Json.member "queues" v with
      | Some (Metrics.Json.Obj fields) ->
          Alcotest.(check bool)
            "mq_batches present" true
            (List.mem_assoc "mq_batches" fields)
      | _ -> Alcotest.fail "queues section missing"));
  (* The historical bug: %+.3f put a '+' on positive deltas.  Strict
     JSON must reject it, or the linter is not doing its job. *)
  let buggy = "{\"id\": \"fig3\", \"wall_s\": 0.112, \"delta_s\": +2.943}" in
  Alcotest.(check bool)
    "leading + rejected" true
    (Result.is_error (Metrics.Json.validate buggy))

let json_strictness () =
  let ok s = Alcotest.(check bool) s true (Result.is_ok (Metrics.Json.validate s))
  and bad s =
    Alcotest.(check bool) s false (Result.is_ok (Metrics.Json.validate s))
  in
  ok "{}";
  ok "[]";
  ok "-0.5";
  ok "[1, 2.5, -3e2, 0.125e+2]";
  ok "{\"a\": [true, false, null], \"b\": \"x\\n\\u00e9\"}";
  bad "+1";
  bad "01";
  bad ".5";
  bad "1.";
  bad "1.e3";
  bad "[1,]";
  bad "{\"a\": 1,}";
  bad "{'a': 1}";
  bad "{\"a\": 1} {\"b\": 2}";
  bad "\"unterminated";
  bad "nul"

let tests =
    [
      ( "metrics:stats",
        [
          Alcotest.test_case "copy and diff" `Quick stats_copy_and_diff;
          Alcotest.test_case "pp nonzero only" `Quick stats_pp_nonzero_only;
        ] );
      ( "metrics:table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "series" `Quick table_series;
          Alcotest.test_case "series mismatch" `Quick table_series_mismatch;
          Alcotest.test_case "fmt_float" `Quick fmt_float_cases;
          Alcotest.test_case "spark" `Quick spark_cases;
        ] );
      ( "metrics:series", [ Alcotest.test_case "sampling" `Quick series_sampling ]);
      ( "metrics:json",
        [
          Alcotest.test_case "bench format round-trips" `Quick
            json_bench_roundtrip;
          Alcotest.test_case "strictness" `Quick json_strictness;
        ] );
    ]
