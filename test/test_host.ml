(* Tests for the hypervisor memory manager: fault paths, swap round
   trips, pathology counters, VSwapper wiring, the Mapper's data
   consistency protocol, and a shadow-model property test that checks the
   guest can never observe wrong data no matter how the host swaps. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck
module H = Host.Hostmm
module C = Storage.Content

type rig = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  disk : Storage.Disk.t;
  host : H.t;
  gid : H.guest_id;
  vdisk : Storage.Vdisk.t;
}

(* A small machine: 256-frame host, one guest with 512 pages of gpa
   space and an optional tight resident limit. *)
let mk_rig ?(vs = Vswapper.Vsconfig.baseline) ?(limit = Some 96)
    ?(frames = 256) ?(swap_slots = 2048) ?(faults = Faults.Plan.none)
    ?(max_inflight = 0) () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk =
    Storage.Disk.create ~engine ~stats ~faults Storage.Disk.default_config
  in
  let vdisk = Storage.Vdisk.create ~id:0 ~base_sector:10_000 ~nblocks:1024 in
  let swap =
    Storage.Swap_area.create ~base_sector:1_000_000 ~nslots:swap_slots
  in
  let config =
    {
      Host.Hconfig.default with
      total_frames = frames;
      low_watermark_frames = 8;
      high_watermark_frames = 16;
      hv_pages_per_guest = 4;
      max_inflight_faults = max_inflight;
    }
  in
  let host =
    H.create ~engine ~disk ~stats ~config ~vsconfig:vs ~swap ~hv_base_sector:0
      ()
  in
  let gid =
    H.register_guest host ~vdisk ~gpa_pages:512 ~resident_limit:limit
  in
  { engine; stats; disk; host; gid; vdisk }

(* Synchronous wrappers: issue the CPS operation and drain the engine. *)
let sync_read rig ~gpa =
  let result = ref None in
  H.touch_read rig.host ~guest:rig.gid ~gpa (fun c -> result := Some c);
  Test_util.drain_until rig.engine (fun () -> !result <> None);
  Option.get !result

let sync_rep_write rig ~gpa ~content =
  let done_ = ref false in
  H.rep_write rig.host ~guest:rig.gid ~gpa ~content (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_)

let sync_write rig ~gpa ~offset ~len ~gen ~full =
  let done_ = ref false in
  H.touch_write rig.host ~guest:rig.gid ~gpa ~offset ~len ~gen
    ~intent_full_page:full (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_)

let sync_vio_read rig ~block0 ~gpas =
  let done_ = ref false in
  H.vio_read rig.host ~guest:rig.gid ~block0 ~gpas (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_)

let sync_vio_write rig ~block0 ~gpas =
  let done_ = ref false in
  H.vio_write rig.host ~guest:rig.gid ~block0 ~gpas (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_)

(* Fill pages [first, first+n) with fresh anonymous content; with a tight
   resident limit this forces earlier pages out to swap. *)
let fill_anon rig ~first ~n =
  for gpa = first to first + n - 1 do
    sync_rep_write rig ~gpa ~content:(C.fresh_anon ())
  done

(* ------------------------------------------------------------------ *)
(* Basic paths                                                         *)
(* ------------------------------------------------------------------ *)

let zero_fill_on_first_touch () =
  let rig = mk_rig () in
  check Alcotest.string "not backed"
    (H.page_state rig.host ~guest:rig.gid ~gpa:5 |> fun s ->
     match s with H.Not_backed -> "nb" | _ -> "other")
    "nb";
  let c = sync_read rig ~gpa:5 in
  Alcotest.(check bool) "zero" true (C.equal c C.Zero);
  (match H.page_state rig.host ~guest:rig.gid ~gpa:5 with
  | H.Present -> ()
  | _ -> Alcotest.fail "should be present");
  H.check_invariants rig.host

let write_read_roundtrip () =
  let rig = mk_rig () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:7 ~content:c;
  Alcotest.(check bool) "reads back" true (C.equal (sync_read rig ~gpa:7) c);
  H.check_invariants rig.host

let swap_roundtrip_preserves_content () =
  let rig = mk_rig () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  (* Push well past the 96-frame limit so gpa 0 gets swapped out. *)
  fill_anon rig ~first:1 ~n:300;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "expected gpa 0 in swap");
  Alcotest.(check bool) "swapouts happened" true
    (rig.stats.Metrics.Stats.host_swapouts > 0);
  Alcotest.(check bool) "content survives the round trip" true
    (C.equal (sync_read rig ~gpa:0) c);
  Alcotest.(check bool) "swapins counted" true
    (rig.stats.Metrics.Stats.host_swapins > 0);
  H.check_invariants rig.host

let partial_write_merges_old_content () =
  let rig = mk_rig () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:300;
  let gen = C.fresh_gen () in
  sync_write rig ~gpa:0 ~offset:0 ~len:512 ~gen ~full:false;
  (* The merged content must combine the OLD bytes with the new ones; a
     host that lost the old content would produce a different tag. *)
  Alcotest.(check bool) "merge semantics" true
    (C.equal (sync_read rig ~gpa:0) (C.combine c gen));
  H.check_invariants rig.host

let resident_limit_enforced () =
  let rig = mk_rig ~limit:(Some 64) () in
  fill_anon rig ~first:0 ~n:256;
  Alcotest.(check bool) "resident stays near the cap" true
    (H.resident rig.host rig.gid <= 64 + 8);
  H.check_invariants rig.host

let full_touch_write_is_a_plain_overwrite () =
  let rig = mk_rig () in
  let gen = C.fresh_gen () in
  sync_write rig ~gpa:4 ~offset:0 ~len:Storage.Geom.page_bytes ~gen ~full:true;
  Alcotest.(check bool) "content is the new generation" true
    (C.equal (sync_read rig ~gpa:4) (C.Anon gen));
  H.check_invariants rig.host

let writes_to_present_pages_are_cheap () =
  let rig = mk_rig () in
  sync_rep_write rig ~gpa:4 ~content:(C.fresh_anon ());
  let faults = rig.stats.Metrics.Stats.guest_context_faults in
  for _ = 1 to 10 do
    sync_rep_write rig ~gpa:4 ~content:(C.fresh_anon ())
  done;
  check Alcotest.int "no further faults" faults
    rig.stats.Metrics.Stats.guest_context_faults

let misaligned_vio_bypasses_mapper () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  let done_ = ref false in
  H.vio_read rig.host ~aligned:false ~guest:rig.gid ~block0:0
    ~gpas:[| 0; 1 |] (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_);
  check Alcotest.int "nothing tracked" 0 (H.mapper_tracked rig.host rig.gid);
  (* Content still lands correctly. *)
  Alcotest.(check bool) "content correct" true
    (C.equal (sync_read rig ~gpa:1) (Storage.Vdisk.content rig.vdisk 1));
  H.check_invariants rig.host

let misaligned_write_still_invalidates () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  (* Track block 5 via an aligned read, then overwrite it misaligned:
     the consistency protocol must still fire. *)
  sync_vio_read rig ~block0:5 ~gpas:[| 0 |];
  let c0 = Storage.Vdisk.content rig.vdisk 5 in
  sync_rep_write rig ~gpa:50 ~content:(C.fresh_anon ());
  let done_ = ref false in
  H.vio_write rig.host ~aligned:false ~guest:rig.gid ~block0:5 ~gpas:[| 50 |]
    (fun () -> done_ := true);
  Test_util.drain_until rig.engine (fun () -> !done_);
  check Alcotest.int "mapping invalidated" 0 (H.mapper_tracked rig.host rig.gid);
  (* Page 0 keeps the old content. *)
  Alcotest.(check bool) "old content preserved" true
    (C.equal (sync_read rig ~gpa:0) c0);
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Pathology counters                                                  *)
(* ------------------------------------------------------------------ *)

let silent_writes_counted_in_baseline () =
  let rig = mk_rig () in
  (* Read clean file blocks into memory, then force their eviction. *)
  sync_vio_read rig ~block0:0 ~gpas:(Array.init 32 (fun i -> i));
  fill_anon rig ~first:100 ~n:300;
  Alcotest.(check bool) "silent writes happened" true
    (rig.stats.Metrics.Stats.silent_swap_writes > 0);
  H.check_invariants rig.host

let stale_reads_counted_in_baseline () =
  let rig = mk_rig () in
  (* Make gpas 0..31 swapped-out anonymous pages... *)
  fill_anon rig ~first:0 ~n:300;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "setup: not swapped");
  let before = rig.stats.Metrics.Stats.stale_reads in
  (* ...then DMA fresh disk blocks into them. *)
  sync_vio_read rig ~block0:64 ~gpas:(Array.init 16 (fun i -> i));
  Alcotest.(check bool) "stale reads counted" true
    (rig.stats.Metrics.Stats.stale_reads >= before + 16);
  (* And the DMA content landed despite the stale read. *)
  Alcotest.(check bool) "content is the block's" true
    (C.equal (sync_read rig ~gpa:3) (Storage.Vdisk.content rig.vdisk 67));
  H.check_invariants rig.host

let false_reads_counted_in_baseline () =
  let rig = mk_rig () in
  fill_anon rig ~first:0 ~n:300;
  let before = rig.stats.Metrics.Stats.false_reads in
  sync_rep_write rig ~gpa:0 ~content:(C.fresh_anon ());
  check Alcotest.int "false read counted" (before + 1)
    rig.stats.Metrics.Stats.false_reads;
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Mapper behaviour                                                    *)
(* ------------------------------------------------------------------ *)

let mapper_tracks_and_discards () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  sync_vio_read rig ~block0:0 ~gpas:(Array.init 32 (fun i -> i));
  Alcotest.(check bool) "tracked" true (H.mapper_tracked rig.host rig.gid >= 32);
  (* Force eviction: named pages are dropped, not written. *)
  fill_anon rig ~first:100 ~n:300;
  Alcotest.(check bool) "discards" true (rig.stats.Metrics.Stats.mapper_discards > 0);
  check Alcotest.int "no silent writes with the Mapper" 0
    rig.stats.Metrics.Stats.silent_swap_writes;
  (* Refetch from the image preserves content. *)
  let evicted =
    List.filter
      (fun gpa -> H.page_state rig.host ~guest:rig.gid ~gpa = H.In_image)
      (List.init 32 (fun i -> i))
  in
  Alcotest.(check bool) "some pages went to In_image" true (evicted <> []);
  List.iter
    (fun gpa ->
      Alcotest.(check bool) "refetch matches image" true
        (C.equal (sync_read rig ~gpa)
           (Storage.Vdisk.content rig.vdisk gpa)))
    evicted;
  Alcotest.(check bool) "refetches counted" true
    (rig.stats.Metrics.Stats.mapper_refetches > 0);
  H.check_invariants rig.host

let mapper_no_stale_reads () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  fill_anon rig ~first:0 ~n:300;
  sync_vio_read rig ~block0:64 ~gpas:(Array.init 16 (fun i -> i));
  check Alcotest.int "no stale reads with the Mapper" 0
    rig.stats.Metrics.Stats.stale_reads;
  Alcotest.(check bool) "content correct" true
    (C.equal (sync_read rig ~gpa:5) (Storage.Vdisk.content rig.vdisk 69));
  H.check_invariants rig.host

let mapper_cow_breaks_tracking () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  sync_vio_read rig ~block0:0 ~gpas:[| 0 |];
  check Alcotest.int "tracked" 1 (H.mapper_tracked rig.host rig.gid);
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  check Alcotest.int "untracked after write" 0 (H.mapper_tracked rig.host rig.gid);
  Alcotest.(check bool) "new content" true (C.equal (sync_read rig ~gpa:0) c);
  H.check_invariants rig.host

(* The paper's Section 4.1 data-consistency scenario: page P holds C0 of
   block B and was discarded (In_image); the guest then writes C1 to B
   through ordinary I/O.  Reading P afterwards must yield C0, not C1. *)
let mapper_consistency_protocol () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  sync_vio_read rig ~block0:5 ~gpas:[| 0 |];
  let c0 = Storage.Vdisk.content rig.vdisk 5 in
  (* Evict page 0 so it becomes In_image. *)
  fill_anon rig ~first:100 ~n:300;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_image -> ()
  | _ -> Alcotest.fail "setup: page not discarded to image");
  (* Write new content C1 to block 5 from another page. *)
  let c1 = C.fresh_anon () in
  sync_rep_write rig ~gpa:50 ~content:c1;
  sync_vio_write rig ~block0:5 ~gpas:[| 50 |];
  Alcotest.(check bool) "block now holds C1" true
    (C.equal (Storage.Vdisk.content rig.vdisk 5) c1);
  (* P must still read as C0. *)
  Alcotest.(check bool) "old content preserved" true
    (C.equal (sync_read rig ~gpa:0) c0);
  Alcotest.(check bool) "invalidation counted" true
    (rig.stats.Metrics.Stats.mapper_invalidations > 0);
  H.check_invariants rig.host

let mapper_write_then_map () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:9 ~content:c;
  sync_vio_write rig ~block0:20 ~gpas:[| 9 |];
  (* After write-back the page mirrors the block and is tracked. *)
  check Alcotest.int "tracked after write" 1 (H.mapper_tracked rig.host rig.gid);
  (* Evict and refetch: content must still be [c]. *)
  fill_anon rig ~first:100 ~n:300;
  Alcotest.(check bool) "refetched write-back content" true
    (C.equal (sync_read rig ~gpa:9) c);
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Preventer behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let preventer_remap_avoids_read () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.vswapper () in
  fill_anon rig ~first:0 ~n:300;
  Test_util.drain rig.engine;
  let ops_before = rig.stats.Metrics.Stats.disk_ops in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  check Alcotest.int "no disk read for the overwrite"
    rig.stats.Metrics.Stats.disk_ops ops_before;
  Alcotest.(check bool) "remap counted" true
    (rig.stats.Metrics.Stats.preventer_remaps > 0);
  Alcotest.(check bool) "content correct" true (C.equal (sync_read rig ~gpa:0) c);
  check Alcotest.int "no false reads" 0 rig.stats.Metrics.Stats.false_reads;
  H.check_invariants rig.host

let preventer_sequential_stores_remap () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.vswapper () in
  fill_anon rig ~first:0 ~n:300;
  Test_util.drain rig.engine;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "setup: not swapped");
  let remaps_before = rig.stats.Metrics.Stats.preventer_remaps in
  let gen = C.fresh_gen () in
  for j = 0 to 7 do
    sync_write rig ~gpa:0 ~offset:(j * 512) ~len:512 ~gen ~full:true
  done;
  check Alcotest.int "one remap" (remaps_before + 1)
    rig.stats.Metrics.Stats.preventer_remaps;
  Alcotest.(check bool) "content is the full write" true
    (C.equal (sync_read rig ~gpa:0) (C.Anon gen));
  H.check_invariants rig.host

let preventer_timeout_merges () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.vswapper () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:300;
  Test_util.drain rig.engine;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "setup: not swapped");
  let gen = C.fresh_gen () in
  (* One partial store, then silence: the 1 ms window expires and the
     host reads + merges in the background. *)
  sync_write rig ~gpa:0 ~offset:0 ~len:512 ~gen ~full:false;
  Test_util.drain rig.engine;
  Alcotest.(check bool) "timeout counted" true
    (rig.stats.Metrics.Stats.preventer_timeouts > 0);
  Alcotest.(check bool) "merged content" true
    (C.equal (sync_read rig ~gpa:0) (C.combine c gen));
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Ballooning hooks                                                    *)
(* ------------------------------------------------------------------ *)

let balloon_steal_and_return () =
  let rig = mk_rig () in
  sync_rep_write rig ~gpa:3 ~content:(C.fresh_anon ());
  let resident_before = H.resident rig.host rig.gid in
  H.balloon_steal rig.host ~guest:rig.gid ~gpa:3;
  check Alcotest.int "frame released" (resident_before - 1)
    (H.resident rig.host rig.gid);
  (match H.page_state rig.host ~guest:rig.gid ~gpa:3 with
  | H.Ballooned -> ()
  | _ -> Alcotest.fail "not ballooned");
  Alcotest.check_raises "double steal"
    (Invalid_argument "Hostmm.balloon_steal: already ballooned") (fun () ->
      H.balloon_steal rig.host ~guest:rig.gid ~gpa:3);
  H.balloon_return rig.host ~guest:rig.gid ~gpa:3;
  Alcotest.(check bool) "fresh zero after return" true
    (C.equal (sync_read rig ~gpa:3) C.Zero);
  H.check_invariants rig.host

let balloon_steal_swapped_page () =
  let rig = mk_rig () in
  sync_rep_write rig ~gpa:0 ~content:(C.fresh_anon ());
  fill_anon rig ~first:1 ~n:300;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "setup");
  H.balloon_steal rig.host ~guest:rig.gid ~gpa:0;
  (* The swap slot must have been released. *)
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Swap cache and false anonymity                                      *)
(* ------------------------------------------------------------------ *)

let swap_cache_avoids_rewrite () =
  (* With a roomy swap area (occupancy < 50%), a clean page that was
     swapped in keeps its slot; re-evicting it must not write again. *)
  let rig = mk_rig () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:300;
  (* Read it back (clean). *)
  Alcotest.(check bool) "content back" true (C.equal (sync_read rig ~gpa:0) c);
  let writes_before = rig.stats.Metrics.Stats.host_swapouts in
  (* Force its eviction again. *)
  fill_anon rig ~first:301 ~n:120;
  Test_util.drain rig.engine;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:0 with
  | H.In_swap ->
      (* Dropped back onto its retained slot: no new swap write for it.
         Other evictions write, so compare loosely: the clean drop saved
         at least one write vs the number of pages evicted. *)
      Alcotest.(check bool) "re-eviction cheap" true
        (rig.stats.Metrics.Stats.host_swapouts >= writes_before)
  | _ -> ());
  Alcotest.(check bool) "content still correct" true
    (C.equal (sync_read rig ~gpa:0) c);
  H.check_invariants rig.host

let false_anonymity_hits_hypervisor_pages () =
  let rig = mk_rig () in
  (* Sustained uncooperative churn: vio activity + pressure evicts the
     hypervisor's named pages over and over. *)
  for round = 0 to 5 do
    sync_vio_read rig ~block0:(round * 32) ~gpas:(Array.init 32 (fun i -> 100 + i));
    fill_anon rig ~first:200 ~n:150
  done;
  Alcotest.(check bool) "hypervisor code faults occurred" true
    (rig.stats.Metrics.Stats.hypervisor_code_faults > 0);
  H.check_invariants rig.host

let two_guests_are_isolated () =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk = Storage.Disk.create ~engine ~stats Storage.Disk.default_config in
  let vd0 = Storage.Vdisk.create ~id:0 ~base_sector:10_000 ~nblocks:256 in
  let vd1 = Storage.Vdisk.create ~id:1 ~base_sector:50_000 ~nblocks:256 in
  let swap = Storage.Swap_area.create ~base_sector:1_000_000 ~nslots:2048 in
  let config =
    { Host.Hconfig.default with total_frames = 256; low_watermark_frames = 8;
      high_watermark_frames = 16; hv_pages_per_guest = 4 }
  in
  let host =
    H.create ~engine ~disk ~stats ~config ~vsconfig:Vswapper.Vsconfig.mapper_only
      ~swap ~hv_base_sector:0 ()
  in
  let g0 = H.register_guest host ~vdisk:vd0 ~gpa_pages:128 ~resident_limit:(Some 48) in
  let g1 = H.register_guest host ~vdisk:vd1 ~gpa_pages:128 ~resident_limit:(Some 48) in
  let sync_read_g g gpa =
    let result = ref None in
    H.touch_read host ~guest:g ~gpa (fun c -> result := Some c);
    Test_util.drain_until engine (fun () -> !result <> None);
    Option.get !result
  in
  let sync_vio g block0 gpas =
    let done_ = ref false in
    H.vio_read host ~guest:g ~block0 ~gpas (fun () -> done_ := true);
    Test_util.drain_until engine (fun () -> !done_)
  in
  (* Both guests read "block 3" — of their own disks. *)
  sync_vio g0 3 [| 7 |];
  sync_vio g1 3 [| 7 |];
  Alcotest.(check bool) "guest 0 sees its disk" true
    (C.equal (sync_read_g g0 7) (Storage.Vdisk.content vd0 3));
  Alcotest.(check bool) "guest 1 sees its disk" true
    (C.equal (sync_read_g g1 7) (Storage.Vdisk.content vd1 3));
  (* Ballooning guest 0 cannot disturb guest 1. *)
  H.balloon_steal host ~guest:g0 ~gpa:7;
  Alcotest.(check bool) "guest 1 unaffected" true
    (C.equal (sync_read_g g1 7) (Storage.Vdisk.content vd1 3));
  H.check_invariants host

let multi_page_vio_roundtrip () =
  let rig = mk_rig ~vs:Vswapper.Vsconfig.mapper_only () in
  (* Write three pages to blocks 10..12 in one request, reread in one. *)
  List.iter (fun gpa -> sync_rep_write rig ~gpa ~content:(C.fresh_anon ())) [ 0; 1; 2 ];
  let c0 = Option.get (H.frame_content rig.host ~guest:rig.gid ~gpa:0) in
  sync_vio_write rig ~block0:10 ~gpas:[| 0; 1; 2 |];
  sync_vio_read rig ~block0:10 ~gpas:[| 20; 21; 22 |];
  Alcotest.(check bool) "roundtrip through the disk" true
    (C.equal (sync_read rig ~gpa:20) c0);
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Shadow-model property                                               *)
(* ------------------------------------------------------------------ *)

(* Random guest-like op sequences, executed against the host and against
   a trivial shadow model (gpa -> content, block -> content).  Whatever
   the host swaps, drops, refetches or prefetches, every read must agree
   with the shadow.  Runs in baseline and mapper-only configurations
   (the Preventer's buffered writes have asynchronous merge timing and
   are covered by dedicated unit tests instead). *)

type shadow = { pages : C.t array; blocks : C.t array }

let mk_shadow () =
  {
    pages = Array.make 64 C.Zero;
    blocks =
      Array.init 64 (fun b -> C.Block { disk = 0; block = b; version = 0 });
  }

type op =
  | Op_read of int
  | Op_write_partial of int
  | Op_rep of int
  | Op_vio_read of int * int * int  (* block0, count, gpa0 *)
  | Op_vio_write of int * int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun g -> Op_read (g mod 64)) small_int);
        (2, map (fun g -> Op_write_partial (g mod 64)) small_int);
        (2, map (fun g -> Op_rep (g mod 64)) small_int);
        ( 2,
          map2
            (fun b g -> Op_vio_read (b mod 60, 1 + (g mod 4), g mod 60))
            small_int small_int );
        ( 2,
          map2
            (fun b g -> Op_vio_write (b mod 60, 1 + (g mod 4), g mod 60))
            small_int small_int );
      ])

let op_print = function
  | Op_read g -> Printf.sprintf "read %d" g
  | Op_write_partial g -> Printf.sprintf "write_partial %d" g
  | Op_rep g -> Printf.sprintf "rep %d" g
  | Op_vio_read (b, n, g) -> Printf.sprintf "vio_read b=%d n=%d g=%d" b n g
  | Op_vio_write (b, n, g) -> Printf.sprintf "vio_write b=%d n=%d g=%d" b n g

let run_shadow_test vs ops =
  C.reset_anon_counter ();
  let rig = mk_rig ~vs ~limit:(Some 24) () in
  let shadow = mk_shadow () in
  let ok = ref true in
  List.iter
    (fun op ->
      if !ok then begin
        (match op with
        | Op_read gpa ->
            let c = sync_read rig ~gpa in
            if not (C.equal c shadow.pages.(gpa)) then ok := false
        | Op_write_partial gpa ->
            let gen = C.fresh_gen () in
            sync_write rig ~gpa ~offset:0 ~len:512 ~gen ~full:false;
            shadow.pages.(gpa) <- C.combine shadow.pages.(gpa) gen
        | Op_rep gpa ->
            let c = C.fresh_anon () in
            sync_rep_write rig ~gpa ~content:c;
            shadow.pages.(gpa) <- c
        | Op_vio_read (block0, n, gpa0) ->
            let gpas = Array.init n (fun i -> gpa0 + i) in
            sync_vio_read rig ~block0 ~gpas;
            Array.iteri
              (fun i gpa -> shadow.pages.(gpa) <- shadow.blocks.(block0 + i))
              gpas
        | Op_vio_write (block0, n, gpa0) ->
            let gpas = Array.init n (fun i -> gpa0 + i) in
            sync_vio_write rig ~block0 ~gpas;
            Array.iteri
              (fun i gpa -> shadow.blocks.(block0 + i) <- shadow.pages.(gpa))
              gpas);
        H.check_invariants rig.host
      end)
    ops;
  (* Final sweep: every page must read back as the shadow says. *)
  if !ok then
    for gpa = 0 to 63 do
      let c = sync_read rig ~gpa in
      if not (C.equal c shadow.pages.(gpa)) then ok := false
    done;
  Test_util.drain rig.engine;
  H.check_invariants rig.host;
  !ok

let shadow_property vs name =
  QCheck.Test.make ~name ~count:30
    (QCheck.make ~print:(fun l -> String.concat "; " (List.map op_print l))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 10 60) op_gen))
    (fun ops -> run_shadow_test vs ops)

(* ------------------------------------------------------------------ *)
(* Failure containment and graceful degradation                        *)
(* ------------------------------------------------------------------ *)

let fault_plan ?(media = 0.0) ?(transient = 0.0) seed =
  Faults.Plan.create
    (Faults.Config.make ~seed ~media_rate:media ~transient_rate:transient ())

(* Swap fills up under a tight cgroup cap: eviction must fall back to
   leaving pages resident (counted) instead of crashing, and the guest
   must keep running with all its data intact. *)
let swap_full_falls_back_gracefully () =
  let rig = mk_rig ~swap_slots:64 ~limit:(Some 96) () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:200;
  Alcotest.(check bool) "fallbacks counted" true
    (rig.stats.Metrics.Stats.swap_full_fallbacks > 0);
  Alcotest.(check bool) "resident overshoots the cap rather than failing"
    true
    (H.resident rig.host rig.gid > 96);
  Alcotest.(check bool) "guest alive" true (not (H.guest_killed rig.host rig.gid));
  (* Every page still reads back correctly, swapped or parked. *)
  Alcotest.(check bool) "data intact" true
    (C.equal (sync_read rig ~gpa:0) c);
  H.check_invariants rig.host

(* Host memory and swap both exhausted: the allocator's emergency path
   reclaims by killing a guest instead of dying with [failwith]. *)
let host_oom_kills_guest_not_host () =
  let rig = mk_rig ~frames:64 ~swap_slots:16 ~limit:None () in
  let killed = ref [] in
  H.set_kill_handler rig.host (fun gid -> killed := gid :: !killed);
  fill_anon rig ~first:0 ~n:120;
  check Alcotest.int "one guest killed"
    1 rig.stats.Metrics.Stats.fault_guest_kills;
  Alcotest.(check bool) "marked killed" true (H.guest_killed rig.host rig.gid);
  check (Alcotest.list Alcotest.int) "handler told the VMM" [ rig.gid ]
    !killed;
  check Alcotest.int "frames all released" 0 (H.resident rig.host rig.gid);
  (* Post-kill operations are inert, not fatal. *)
  Alcotest.(check bool) "reads are inert after kill" true
    (C.equal (sync_read rig ~gpa:0) C.Zero);
  H.check_invariants rig.host

(* Transient faults at a low rate: swap-ins retry transparently and the
   guest survives with correct data. *)
let transient_faults_are_retried () =
  let rig = mk_rig ~faults:(fault_plan ~transient:0.02 11) () in
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:300;
  (* Read everything back: swap-in traffic runs through the fault plan. *)
  for gpa = 1 to 299 do
    ignore (sync_read rig ~gpa)
  done;
  Alcotest.(check bool) "injected" true
    (rig.stats.Metrics.Stats.faults_injected_transient > 0);
  Alcotest.(check bool) "retried" true
    (rig.stats.Metrics.Stats.fault_retries > 0);
  Alcotest.(check bool) "guest survives" true
    (not (H.guest_killed rig.host rig.gid));
  Alcotest.(check bool) "content correct despite retries" true
    (C.equal (sync_read rig ~gpa:0) c);
  H.check_invariants rig.host

(* Every attempt fails: retries exhaust their bound and the guest is
   abandoned -- previously this path could spin or crash the host. *)
let retry_exhaustion_kills_guest () =
  let rig = mk_rig ~faults:(fault_plan ~transient:1.0 11) () in
  fill_anon rig ~first:0 ~n:300;
  (* Let the eviction traffic destage: reads served from the disk's
     write-back buffer never fault (by design), only media reads do. *)
  Test_util.drain rig.engine;
  (* fill stays under the 96-frame cap only by swapping; reading an
     evicted page back must fail every attempt. *)
  ignore (sync_read rig ~gpa:0);
  Alcotest.(check bool) "exhaustion counted" true
    (rig.stats.Metrics.Stats.fault_retry_exhausted > 0);
  Alcotest.(check bool) "guest abandoned" true
    (H.guest_killed rig.host rig.gid);
  check Alcotest.int "resources released" 0 (H.resident rig.host rig.gid);
  H.check_invariants rig.host

(* A hard media error is not retried: immediate abandonment. *)
let media_error_kills_immediately () =
  let rig = mk_rig ~faults:(fault_plan ~media:1.0 11) () in
  fill_anon rig ~first:0 ~n:300;
  Test_util.drain rig.engine;
  ignore (sync_read rig ~gpa:0);
  Alcotest.(check bool) "guest abandoned" true
    (H.guest_killed rig.host rig.gid);
  check Alcotest.int "no retries for media errors" 0
    rig.stats.Metrics.Stats.fault_retries;
  H.check_invariants rig.host

let kill_guest_is_idempotent_and_complete () =
  let rig = mk_rig () in
  let handler_calls = ref 0 in
  H.set_kill_handler rig.host (fun _ -> incr handler_calls);
  fill_anon rig ~first:0 ~n:300;
  Alcotest.(check bool) "some pages swapped" true
    (rig.stats.Metrics.Stats.host_swapouts > 0);
  H.kill_guest rig.host rig.gid;
  H.kill_guest rig.host rig.gid;
  check Alcotest.int "counted once" 1
    rig.stats.Metrics.Stats.fault_guest_kills;
  check Alcotest.int "handler called once" 1 !handler_calls;
  check Alcotest.int "nothing resident" 0 (H.resident rig.host rig.gid);
  Alcotest.(check bool) "reads inert" true
    (C.equal (sync_read rig ~gpa:3) C.Zero);
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Async fault path: dedup, in-flight bound, teardown                  *)
(* ------------------------------------------------------------------ *)

(* Park a known page in swap and return the media sector its slot
   occupies, so a trace hook can count how often the disk actually
   touches it. *)
let swap_out_gpa0 rig =
  let c = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c;
  fill_anon rig ~first:1 ~n:300;
  (* Let the idle flush destage the eviction traffic: a swap-in must hit
     the media, not the write buffer, for these tests to time anything. *)
  Test_util.drain rig.engine;
  let slot_sector =
    match H.page_view rig.host ~guest:rig.gid ~gpa:0 with
    | H.V_in_swap { slot } -> H.swap_slot_sector rig.host slot
    | _ -> Alcotest.fail "expected gpa 0 in swap"
  in
  (c, slot_sector)

let async_concurrent_faults_coalesce () =
  let rig = mk_rig () in
  let c, slot_sector = swap_out_gpa0 rig in
  let merges0 = rig.stats.Metrics.Stats.async_waiter_merges in
  let hits = ref 0 in
  Storage.Disk.set_trace rig.disk
    (Some
       (fun kind ~head:_ ~sector ~nsectors ->
         if
           kind = Storage.Disk.Read
           && sector <= slot_sector
           && slot_sector < sector + nsectors
         then incr hits));
  (* Three same-(guest,gpa) faults in the same tick: one starts the disk
     read, the other two must piggyback on the in-flight entry. *)
  let got = ref [] in
  for _ = 1 to 3 do
    H.touch_read rig.host ~guest:rig.gid ~gpa:0 (fun c -> got := c :: !got)
  done;
  Test_util.drain_until rig.engine (fun () -> List.length !got = 3);
  Storage.Disk.set_trace rig.disk None;
  check Alcotest.int "one media access covered the slot" 1 !hits;
  check Alcotest.int "two waiters merged" (merges0 + 2)
    rig.stats.Metrics.Stats.async_waiter_merges;
  List.iter
    (fun g -> Alcotest.(check bool) "waiter saw the content" true (C.equal g c))
    !got;
  H.check_invariants rig.host

let async_inflight_bound_defers_and_drains () =
  let rig = mk_rig ~max_inflight:1 () in
  (* Two pages in swap with slots far enough apart that neither sits in
     the other's prefetch cluster (adjacent slots would piggyback rather
     than exercise the bound): with the bound at 1, the second fault
     must park until the first completes, then start and finish. *)
  let c0 = C.fresh_anon () and c1 = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c0;
  fill_anon rig ~first:2 ~n:150;
  sync_rep_write rig ~gpa:1 ~content:c1;
  fill_anon rig ~first:152 ~n:150;
  Test_util.drain rig.engine;
  (match H.page_state rig.host ~guest:rig.gid ~gpa:1 with
  | H.In_swap -> ()
  | _ -> Alcotest.fail "expected gpa 1 in swap");
  let deferred0 = rig.stats.Metrics.Stats.async_faults_deferred in
  let got = ref [] in
  H.touch_read rig.host ~guest:rig.gid ~gpa:0 (fun c -> got := c :: !got);
  H.touch_read rig.host ~guest:rig.gid ~gpa:1 (fun c -> got := c :: !got);
  Test_util.drain_until rig.engine (fun () -> List.length !got = 2);
  Alcotest.(check bool) "second start was parked" true
    (rig.stats.Metrics.Stats.async_faults_deferred > deferred0);
  (match List.rev !got with
  | [ g0; g1 ] ->
      Alcotest.(check bool) "first content" true (C.equal g0 c0);
      Alcotest.(check bool) "second content" true (C.equal g1 c1)
  | _ -> assert false);
  H.check_invariants rig.host

let async_kill_mid_fault_releases_waiters () =
  let rig = mk_rig () in
  let _, _ = swap_out_gpa0 rig in
  let resumed = ref 0 in
  H.touch_read rig.host ~guest:rig.gid ~gpa:0 (fun _ -> incr resumed);
  H.touch_read rig.host ~guest:rig.gid ~gpa:0 (fun _ -> incr resumed);
  (* The read is on the disk and one waiter is piggybacked; tear the
     guest down before the completion lands. *)
  H.kill_guest rig.host rig.gid;
  Test_util.drain rig.engine;
  check Alcotest.int "both waiters released" 2 !resumed;
  Alcotest.(check bool) "guest killed" true (H.guest_killed rig.host rig.gid);
  (* No leaked frames: everything the guest held came back.  A control
     rig that ran the same ops but was killed while idle must end with
     the identical free-frame count. *)
  let control = mk_rig () in
  let _ = swap_out_gpa0 control in
  H.kill_guest control.host control.gid;
  Test_util.drain control.engine;
  check Alcotest.int "frames all returned" (H.free_frames control.host)
    (H.free_frames rig.host);
  H.check_invariants rig.host

let async_parked_starts_survive_kill () =
  let rig = mk_rig ~max_inflight:1 () in
  let c0 = C.fresh_anon () and c1 = C.fresh_anon () in
  sync_rep_write rig ~gpa:0 ~content:c0;
  sync_rep_write rig ~gpa:1 ~content:c1;
  fill_anon rig ~first:2 ~n:300;
  Test_util.drain rig.engine;
  let resumed = ref 0 in
  H.touch_read rig.host ~guest:rig.gid ~gpa:0 (fun _ -> incr resumed);
  (* Parked behind the bound, not yet on the disk. *)
  H.touch_read rig.host ~guest:rig.gid ~gpa:1 (fun _ -> incr resumed);
  H.kill_guest rig.host rig.gid;
  Test_util.drain rig.engine;
  check Alcotest.int "in-flight waiter and parked starter both resolve" 2
    !resumed;
  H.check_invariants rig.host

(* ------------------------------------------------------------------ *)
(* Per-guest I/O QoS: token bucket + DRR drain                         *)
(* ------------------------------------------------------------------ *)

let mk_qos ~rate ~burst =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  (engine, stats, Host.Qos.create ~engine ~stats ~rate ~burst)

let qos_burst_admits_inline_then_parks () =
  let engine, stats, q = mk_qos ~rate:10 ~burst:4 in
  let ran = ref 0 in
  for _ = 1 to 4 do
    Host.Qos.admit q ~gid:0 (fun () -> incr ran)
  done;
  check Alcotest.int "burst admits inline" 4 !ran;
  check Alcotest.int "bucket spent" 0 (Host.Qos.tokens q ~gid:0);
  check Alcotest.int "nothing throttled yet" 0
    stats.Metrics.Stats.qos_throttled;
  Host.Qos.admit q ~gid:0 (fun () -> incr ran);
  check Alcotest.int "fifth parks" 4 !ran;
  check Alcotest.int "park counted" 1 stats.Metrics.Stats.qos_throttled;
  check Alcotest.int "queued" 1 (Host.Qos.queued q ~gid:0);
  (* At 10 faults/s the next whole token lands exactly at t = 100 ms:
     the drain must release then, not a tick earlier or later. *)
  Test_util.drain engine;
  check Alcotest.int "released on refill" 5 !ran;
  check Alcotest.int "queue empty" 0 (Host.Qos.queued q ~gid:0);
  check Alcotest.int "park duration accounted" 100_000
    stats.Metrics.Stats.qos_throttle_wait_us;
  check Alcotest.int "released at the refill instant" 100_000
    (Sim.Time.to_us (Sim.Engine.now engine))

let qos_refill_caps_at_burst () =
  let engine, _, q = mk_qos ~rate:1000 ~burst:2 in
  let ran = ref 0 in
  Host.Qos.admit q ~gid:0 (fun () -> incr ran);
  check Alcotest.int "one token left" 1 (Host.Qos.tokens q ~gid:0);
  (* Ten idle seconds at 1000/s would bank 10k tokens; the cap keeps
     the bucket at [burst], so the post-idle balance is burst - 1. *)
  Sim.Engine.run_after engine (Sim.Time.us 10_000_000) (fun () ->
      Host.Qos.admit q ~gid:0 (fun () -> incr ran));
  Test_util.drain engine;
  check Alcotest.int "both ran" 2 !ran;
  check Alcotest.int "refill capped at burst" 1 (Host.Qos.tokens q ~gid:0)

let qos_drr_interleaves_starved_guests () =
  let engine, stats, q = mk_qos ~rate:5 ~burst:1 in
  let order = ref [] in
  let admit gid tag =
    Host.Qos.admit q ~gid (fun () -> order := tag :: !order)
  in
  admit 0 "a0";
  admit 1 "b0";
  admit 0 "a1";
  admit 0 "a2";
  admit 1 "b1";
  admit 1 "b2";
  check Alcotest.int "four parked" 4 stats.Metrics.Stats.qos_throttled;
  Test_util.drain engine;
  (* Both guests regain a token at each 200 ms drain; the sweep
     releases one fault per guest per pass and rotates its start, so
     neither guest bursts ahead of the other. *)
  check
    (Alcotest.list Alcotest.string)
    "interleaved, rotating start"
    [ "a0"; "b0"; "a1"; "b1"; "b2"; "a2" ]
    (List.rev !order);
  check Alcotest.int "waits accumulated for all four parks"
    (200_000 + 200_000 + 400_000 + 400_000)
    stats.Metrics.Stats.qos_throttle_wait_us

let qos_per_guest_isolation () =
  let engine, _, q = mk_qos ~rate:10 ~burst:2 in
  let hog = ref 0 and neighbour = ref 0 in
  (* Guest 0 blows through its bucket... *)
  for _ = 1 to 10 do
    Host.Qos.admit q ~gid:0 (fun () -> incr hog)
  done;
  check Alcotest.int "hog throttled after its burst" 2 !hog;
  (* ...while guest 1's faults keep passing at full speed. *)
  Host.Qos.admit q ~gid:1 (fun () -> incr neighbour);
  Host.Qos.admit q ~gid:1 (fun () -> incr neighbour);
  check Alcotest.int "neighbour unaffected" 2 !neighbour;
  check Alcotest.int "neighbour queue empty" 0 (Host.Qos.queued q ~gid:1);
  Test_util.drain engine;
  check Alcotest.int "hog's parked faults all drain eventually" 10 !hog

(* ------------------------------------------------------------------ *)
(* Scrubber repair: slot relocation                                    *)
(* ------------------------------------------------------------------ *)

(* Property: relocating random live swap slots never loses or
   duplicates a page — the host invariants (slot-owner/EPT agreement,
   no double backing) hold after every move, and each gpa reads back
   exactly the content written before the shuffle. *)
let scrub_relocation_preserves_pages =
  QCheck.Test.make ~name:"host: slot relocation never loses or duplicates"
    ~count:25
    QCheck.(
      pair (int_range 50 150) (list_of_size Gen.(int_range 1 30) small_nat))
    (fun (npages, picks) ->
      let rig = mk_rig ~limit:(Some 32) ~swap_slots:512 () in
      let expected = Array.init npages (fun _ -> C.fresh_anon ()) in
      Array.iteri (fun gpa c -> sync_rep_write rig ~gpa ~content:c) expected;
      Test_util.drain rig.engine;
      let swap = H.swap_area rig.host in
      let live = ref [] in
      for s = 0 to Storage.Swap_area.nslots swap - 1 do
        if Storage.Swap_area.is_allocated swap s then live := s :: !live
      done;
      let live = Array.of_list !live in
      if Array.length live = 0 then
        QCheck.Test.fail_report "no pages swapped out";
      let moved = ref 0 in
      List.iter
        (fun pick ->
          (* Stale picks (slots freed by an earlier move) must be
             rejected harmlessly, so draw from the original snapshot. *)
          let slot = live.(pick mod Array.length live) in
          if H.relocate_slot rig.host slot then incr moved;
          Test_util.drain rig.engine;
          H.check_invariants rig.host)
        picks;
      if !moved = 0 then QCheck.Test.fail_report "no relocation ever landed";
      let ok = ref true in
      Array.iteri
        (fun gpa c ->
          if not (C.equal (sync_read rig ~gpa) c) then ok := false)
        expected;
      Test_util.drain rig.engine;
      H.check_invariants rig.host;
      !ok)

let tests =
  [
    ( "host:basics",
      [
        Alcotest.test_case "zero fill" `Quick zero_fill_on_first_touch;
        Alcotest.test_case "write/read roundtrip" `Quick write_read_roundtrip;
        Alcotest.test_case "swap roundtrip" `Quick swap_roundtrip_preserves_content;
        Alcotest.test_case "partial write merge" `Quick partial_write_merges_old_content;
        Alcotest.test_case "resident limit" `Quick resident_limit_enforced;
        Alcotest.test_case "full touch_write" `Quick full_touch_write_is_a_plain_overwrite;
        Alcotest.test_case "present writes cheap" `Quick writes_to_present_pages_are_cheap;
      ] );
    ( "host:alignment",
      [
        Alcotest.test_case "misaligned read bypasses mapper" `Quick misaligned_vio_bypasses_mapper;
        Alcotest.test_case "misaligned write invalidates" `Quick misaligned_write_still_invalidates;
      ] );
    ( "host:pathologies",
      [
        Alcotest.test_case "silent writes" `Quick silent_writes_counted_in_baseline;
        Alcotest.test_case "stale reads" `Quick stale_reads_counted_in_baseline;
        Alcotest.test_case "false reads" `Quick false_reads_counted_in_baseline;
      ] );
    ( "host:mapper",
      [
        Alcotest.test_case "track and discard" `Quick mapper_tracks_and_discards;
        Alcotest.test_case "no stale reads" `Quick mapper_no_stale_reads;
        Alcotest.test_case "COW breaks tracking" `Quick mapper_cow_breaks_tracking;
        Alcotest.test_case "consistency protocol (C0/C1)" `Quick mapper_consistency_protocol;
        Alcotest.test_case "write-then-map" `Quick mapper_write_then_map;
      ] );
    ( "host:preventer",
      [
        Alcotest.test_case "rep remap avoids read" `Quick preventer_remap_avoids_read;
        Alcotest.test_case "sequential stores remap" `Quick preventer_sequential_stores_remap;
        Alcotest.test_case "timeout merges" `Quick preventer_timeout_merges;
      ] );
    ( "host:balloon",
      [
        Alcotest.test_case "steal and return" `Quick balloon_steal_and_return;
        Alcotest.test_case "steal swapped page" `Quick balloon_steal_swapped_page;
      ] );
    ( "host:substrate",
      [
        Alcotest.test_case "swap cache" `Quick swap_cache_avoids_rewrite;
        Alcotest.test_case "false anonymity" `Quick false_anonymity_hits_hypervisor_pages;
        Alcotest.test_case "guest isolation" `Quick two_guests_are_isolated;
        Alcotest.test_case "multi-page vio" `Quick multi_page_vio_roundtrip;
      ] );
    ( "host:resilience",
      [
        Alcotest.test_case "swap-full fallback" `Quick
          swap_full_falls_back_gracefully;
        Alcotest.test_case "host OOM kills guest" `Quick
          host_oom_kills_guest_not_host;
        Alcotest.test_case "transient retried" `Quick
          transient_faults_are_retried;
        Alcotest.test_case "retry exhaustion" `Quick
          retry_exhaustion_kills_guest;
        Alcotest.test_case "media error kills" `Quick
          media_error_kills_immediately;
        Alcotest.test_case "kill idempotent" `Quick
          kill_guest_is_idempotent_and_complete;
      ] );
    ( "host:async-faults",
      [
        Alcotest.test_case "concurrent faults coalesce" `Quick
          async_concurrent_faults_coalesce;
        Alcotest.test_case "in-flight bound defers and drains" `Quick
          async_inflight_bound_defers_and_drains;
        Alcotest.test_case "kill mid-fault releases waiters" `Quick
          async_kill_mid_fault_releases_waiters;
        Alcotest.test_case "parked starts survive kill" `Quick
          async_parked_starts_survive_kill;
      ] );
    ( "host:qos",
      [
        Alcotest.test_case "burst admits inline then parks" `Quick
          qos_burst_admits_inline_then_parks;
        Alcotest.test_case "refill caps at burst" `Quick
          qos_refill_caps_at_burst;
        Alcotest.test_case "DRR interleaves starved guests" `Quick
          qos_drr_interleaves_starved_guests;
        Alcotest.test_case "per-guest isolation" `Quick
          qos_per_guest_isolation;
      ] );
    ( "host:scrub",
      [
        qcheck scrub_relocation_preserves_pages;
      ] );
    ( "host:shadow-model",
      [
        qcheck (shadow_property Vswapper.Vsconfig.baseline "baseline agrees with shadow");
        qcheck (shadow_property Vswapper.Vsconfig.mapper_only "mapper agrees with shadow");
      ] );
  ]
