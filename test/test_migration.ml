(* Tests for the Mapper-aware migration transfer (the paper's Section 7
   future work). *)

let check = Alcotest.check
module M = Migration.Migrate

let tiny_machine ?(faults = Faults.Config.none) ~vs () =
  (* The workload runs on a clean disk; [faults] is installed only
     afterwards, so the drive "ages" between the run and the migration.
     Seeding faults at build time would let the workload's own swap-ins
     hit media errors, and hostmm kills guests on those. *)
  let workload =
    Workloads.Sysbench.workload ~iterations:1 ~file_mb:24 ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 48;
      resident_limit_mb = Some 24;
      warm_all = true;
      data_mb = 48;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      host_mem_mb = 128;
      host_swap_mb = 96;
    }
  in
  let machine = Vmm.Machine.build cfg in
  ignore (Vmm.Machine.run machine);
  Storage.Disk.set_faults (Vmm.Machine.disk machine)
    (Faults.Plan.create faults);
  machine

let migrate_outcome ?retry_limit ?retry_base_us machine link strategy =
  let result = ref None in
  M.migrate ?retry_limit ?retry_base_us ~machine ~guest:0 link strategy
    (fun r -> result := Some r);
  let engine = Vmm.Machine.engine machine in
  let steps = ref 0 in
  while !result = None && Sim.Engine.step engine && !steps < 1_000_000 do
    incr steps
  done;
  Option.get !result

let migrate machine link strategy =
  match migrate_outcome machine link strategy with
  | M.Completed r -> r
  | M.Aborted _ -> Alcotest.fail "unexpected abort on a clean disk"

let accounts_cover_all_pages () =
  let machine = tiny_machine ~vs:Vswapper.Vsconfig.vswapper () in
  let pages = Storage.Geom.pages_of_mb 48 in
  List.iter
    (fun strategy ->
      let machine = tiny_machine ~vs:Vswapper.Vsconfig.vswapper () in
      ignore machine;
      let r = migrate machine M.gbe strategy in
      check Alcotest.int "every page classified" pages
        (r.M.pages_copied + r.M.mappings_sent + r.M.pages_skipped))
    [ M.Full_copy; M.Mapper_aware ];
  ignore machine

let mapper_aware_sends_less () =
  let m1 = tiny_machine ~vs:Vswapper.Vsconfig.vswapper () in
  let full = migrate m1 M.gbe M.Full_copy in
  let m2 = tiny_machine ~vs:Vswapper.Vsconfig.vswapper () in
  let aware = migrate m2 M.gbe M.Mapper_aware in
  Alcotest.(check bool) "less traffic" true
    (aware.M.bytes_sent < full.M.bytes_sent);
  Alcotest.(check bool) "mappings used" true (aware.M.mappings_sent > 0);
  Alcotest.(check bool) "not slower" true
    (aware.M.duration <= full.M.duration)

let baseline_has_no_mappings () =
  let m = tiny_machine ~vs:Vswapper.Vsconfig.baseline () in
  let r = migrate m M.gbe M.Mapper_aware in
  (* Without the Mapper nothing is tracked, so even the aware strategy
     degenerates to copying (except zero pages). *)
  check Alcotest.int "no mappings" 0 r.M.mappings_sent

let faster_link_helps_when_wire_bound () =
  let m1 = tiny_machine ~vs:Vswapper.Vsconfig.baseline () in
  let slow = migrate m1 { M.bandwidth_mb_s = 10.0; rtt = Sim.Time.ms 1 } M.Full_copy in
  let m2 = tiny_machine ~vs:Vswapper.Vsconfig.baseline () in
  let fast = migrate m2 M.ten_gbe M.Full_copy in
  Alcotest.(check bool) "bandwidth matters" true
    (fast.M.duration < slow.M.duration)

let report_printable () =
  let m = tiny_machine ~vs:Vswapper.Vsconfig.vswapper () in
  let r = migrate m M.gbe M.Mapper_aware in
  let s = Format.asprintf "%a" M.pp_report r in
  Alcotest.(check bool) "mentions MB" true (Test_util.contains s "MB")

(* Transient faults at a moderate rate: every read-back eventually
   succeeds on a retried attempt (the fault hash keys on the attempt
   number), so the migration completes — but only because it retried. *)
let transient_reads_retry_to_completion () =
  (* The rate is per sector and a page read spans 8 sectors, so keep it
     low enough that a request's retries cannot plausibly exhaust. *)
  let faults = Faults.Config.make ~seed:7 ~transient_rate:0.02 () in
  let m = tiny_machine ~faults ~vs:Vswapper.Vsconfig.baseline () in
  match migrate_outcome ~retry_limit:10 m M.gbe M.Full_copy with
  | M.Aborted _ -> Alcotest.fail "transient faults must not abort"
  | M.Completed r ->
      Alcotest.(check bool) "reads happened" true (r.M.source_disk_reads > 0);
      Alcotest.(check bool) "retries happened" true (r.M.retries > 0)

(* Dirty-rate throttling: a source shedding transient errors makes the
   copy loop back off between read batches instead of slamming the
   struggling device — the migration still completes, it just paces
   itself.  A clean source must never be throttled. *)
let transient_faults_throttle_copy_rate () =
  let faults = Faults.Config.make ~seed:7 ~transient_rate:0.02 () in
  let m = tiny_machine ~faults ~vs:Vswapper.Vsconfig.baseline () in
  (match migrate_outcome ~retry_limit:10 m M.gbe M.Full_copy with
  | M.Aborted _ -> Alcotest.fail "transient faults must not abort"
  | M.Completed r ->
      Alcotest.(check bool) "dirty batches backed off" true
        (r.M.throttled_batches > 0));
  let clean = tiny_machine ~vs:Vswapper.Vsconfig.baseline () in
  let r = migrate clean M.gbe M.Full_copy in
  check Alcotest.int "clean source runs at full rate" 0 r.M.throttled_batches

(* Swapped pages are read back through the tier composite, not the raw
   disk: on a czram+disk machine the migration's swap reads land on the
   tier that holds each slot, and tier-level failures flow through the
   same retry/abort discipline as disk ones. *)
let tiny_tiered_machine ?(faults = Faults.Config.none) () =
  let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb:24 () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 48;
      resident_limit_mb = Some 24;
      warm_all = true;
      data_mb = 48;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Vswapper.Vsconfig.vswapper;
      host_mem_mb = 128;
      host_swap_mb = 96;
      tiers =
        {
          Storage.Tiers.disk_only with
          Storage.Tiers.fast = Storage.Tiers.Czram;
          czram_admit_ratio = 1.25;
          fast_share_percent = 50;
        };
    }
  in
  let machine = Vmm.Machine.build cfg in
  ignore (Vmm.Machine.run machine);
  Storage.Disk.set_faults (Vmm.Machine.disk machine)
    (Faults.Plan.create faults);
  machine

let tiered_swap_reads_route_through_tiers () =
  let m = tiny_tiered_machine () in
  let stats = Vmm.Machine.stats m in
  let fast0 = stats.Metrics.Stats.tier_fast_swapins in
  (match migrate_outcome m M.gbe M.Full_copy with
  | M.Aborted _ -> Alcotest.fail "clean tiers must not abort"
  | M.Completed r ->
      Alcotest.(check bool) "swapped pages were read" true
        (r.M.source_disk_reads > 0));
  Alcotest.(check bool) "fast-tier slots served migration reads" true
    (stats.Metrics.Stats.tier_fast_swapins > fast0)

let tiered_slow_reads_still_abort_on_media () =
  (* Disk faults installed after the run hit only the slow (disk) tier;
     the abort surfaces through the composite exactly as on a flat
     disk. *)
  let faults = Faults.Config.make ~seed:7 ~media_rate:0.5 () in
  let m = tiny_tiered_machine ~faults () in
  match migrate_outcome m M.gbe M.Full_copy with
  | M.Completed _ -> Alcotest.fail "media faults must abort the migration"
  | M.Aborted a ->
      Alcotest.(check bool) "typed as media" true
        (a.M.error = Storage.Disk.Media)

(* A media error is permanent for its sector no matter how often the
   read is retried, so the migration must abort and say why. *)
let media_error_aborts () =
  let faults = Faults.Config.make ~seed:7 ~media_rate:0.2 () in
  let m = tiny_machine ~faults ~vs:Vswapper.Vsconfig.baseline () in
  match migrate_outcome m M.gbe M.Full_copy with
  | M.Completed _ -> Alcotest.fail "media faults must abort the migration"
  | M.Aborted a ->
      Alcotest.(check bool) "typed as media" true (a.M.error = Storage.Disk.Media);
      Alcotest.(check bool) "sector identified" true (a.M.failed_sector >= 0)

let tests =
  [
    ( "migration:transfer",
      [
        Alcotest.test_case "covers all pages" `Quick accounts_cover_all_pages;
        Alcotest.test_case "mapper-aware sends less" `Quick mapper_aware_sends_less;
        Alcotest.test_case "baseline has no mappings" `Quick baseline_has_no_mappings;
        Alcotest.test_case "bandwidth matters" `Quick faster_link_helps_when_wire_bound;
        Alcotest.test_case "report printable" `Quick report_printable;
        Alcotest.test_case "transient retries complete" `Quick
          transient_reads_retry_to_completion;
        Alcotest.test_case "media error aborts" `Quick media_error_aborts;
        Alcotest.test_case "dirty source throttles copy rate" `Quick
          transient_faults_throttle_copy_rate;
        Alcotest.test_case "tiered reads route through tiers" `Quick
          tiered_swap_reads_route_through_tiers;
        Alcotest.test_case "tiered media abort" `Quick
          tiered_slow_reads_still_abort_on_media;
      ] );
  ]
