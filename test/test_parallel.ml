(* Tests for the domain pool and the parallel experiment runner:
   deterministic result ordering, per-job exception capture, and
   bit-equal outputs/stats between serial and parallel sweeps. *)

let check = Alcotest.check

let pool_maps_in_order () =
  let p = Parallel.Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown p)
    (fun () ->
      let xs = List.init 50 Fun.id in
      let out = Parallel.Pool.map p (fun x -> x * x) xs in
      check
        Alcotest.(list int)
        "squares in submission order"
        (List.map (fun x -> x * x) xs)
        (List.map Result.get_ok out))

let pool_captures_exceptions () =
  let out =
    Parallel.Pool.run ~jobs:4
      (fun x -> if x mod 7 = 0 then failwith ("boom " ^ string_of_int x) else x)
      (List.init 20 Fun.id)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "non-multiples survive" true (v = i && i mod 7 <> 0)
      | Error (Failure msg) ->
          Alcotest.(check bool) "multiples of 7 fail" true
            (i mod 7 = 0 && msg = "boom " ^ string_of_int i)
      | Error _ -> Alcotest.fail "unexpected exception")
    out

let pool_reusable_and_serial_equal () =
  let p = Parallel.Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown p)
    (fun () ->
      let xs = List.init 10 Fun.id in
      let a = Parallel.Pool.map p succ xs in
      let b = Parallel.Pool.map p succ xs in
      check Alcotest.(list int) "two maps agree"
        (List.map Result.get_ok a)
        (List.map Result.get_ok b);
      let serial = Parallel.Pool.run ~jobs:1 succ xs in
      check Alcotest.(list int) "parallel equals serial"
        (List.map Result.get_ok serial)
        (List.map Result.get_ok a))

let jobs_env_override () =
  let old = Sys.getenv_opt "VSWAPPER_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "VSWAPPER_JOBS" (Option.value old ~default:""))
    (fun () ->
      Unix.putenv "VSWAPPER_JOBS" "5";
      check Alcotest.int "override respected" 5 (Parallel.Pool.default_jobs ());
      Unix.putenv "VSWAPPER_JOBS" "not-a-number";
      Alcotest.(check bool) "garbage falls back to >= 1" true
        (Parallel.Pool.default_jobs () >= 1))

(* A small fig3-style machine; everything the run touches is built here,
   so concurrent copies must produce identical counters. *)
let tiny_machine_stats () =
  let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb:16 () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 24;
      resident_limit_mb = Some 16;
      warm_all = true;
      data_mb = 16 + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 48;
      host_swap_mb = 36;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  Format.asprintf "%a" Metrics.Stats.pp result.Vmm.Machine.stats

let stats_deterministic_under_domains () =
  let reference = tiny_machine_stats () in
  let outs =
    Parallel.Pool.run ~jobs:4 (fun _ -> tiny_machine_stats ()) [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i r ->
      check Alcotest.string
        (Printf.sprintf "copy %d matches serial counters" i)
        reference (Result.get_ok r))
    outs

(* ---- nesting-safe global pool ---- *)

(* Every outer job (one per pool slot, and then some) submits a nested
   map to the same pool; with a blocking scheduler this deadlocks as
   soon as all workers hold an outer job.  The work-sharing pool must
   terminate and keep both levels' ordering. *)
let global_nested_map_terminates () =
  Parallel.Pool.set_global_jobs 4;
  let p = Parallel.Pool.global () in
  let outer = List.init 8 Fun.id in
  let out =
    Parallel.Pool.map p
      (fun o ->
        Parallel.Pool.map p (fun i -> (o * 100) + i) (List.init 16 Fun.id)
        |> List.map Result.get_ok)
      outer
  in
  List.iteri
    (fun o r ->
      check
        Alcotest.(list int)
        (Printf.sprintf "outer %d inner results ordered" o)
        (List.init 16 (fun i -> (o * 100) + i))
        (Result.get_ok r))
    out

(* Three levels deep, from every worker at once. *)
let global_deep_nesting () =
  Parallel.Pool.set_global_jobs 4;
  let p = Parallel.Pool.global () in
  let sum l = List.fold_left ( + ) 0 l in
  let level3 o m =
    Parallel.Pool.map p (fun i -> o + m + i) [ 1; 2; 3 ]
    |> List.map Result.get_ok |> sum
  in
  let level2 o =
    Parallel.Pool.map p (level3 o) [ 10; 20 ] |> List.map Result.get_ok |> sum
  in
  let out = Parallel.Pool.map p level2 (List.init 6 (fun o -> o * 1000)) in
  List.iteri
    (fun i r ->
      (* level2 o = sum over m in {10,20} of (3o + 3m + 6) = 6o + 102 *)
      check Alcotest.int
        (Printf.sprintf "outer %d deep sum" i)
        ((6 * (i * 1000)) + 102)
        (Result.get_ok r))
    out

(* An exception in a nested job is captured for that inner element only:
   the inner map returns its Error, the outer job goes on and succeeds,
   and sibling outer jobs are untouched. *)
let global_inner_exception_isolated () =
  Parallel.Pool.set_global_jobs 4;
  let p = Parallel.Pool.global () in
  let out =
    Parallel.Pool.map p
      (fun o ->
        let inner =
          Parallel.Pool.map p
            (fun i -> if o = 2 && i = 3 then failwith "inner boom" else i)
            (List.init 6 Fun.id)
        in
        List.map (function Ok v -> v | Error _ -> -1) inner)
      (List.init 5 Fun.id)
  in
  List.iteri
    (fun o r ->
      let expected =
        List.init 6 (fun i -> if o = 2 && i = 3 then -1 else i)
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "outer %d survives inner failure" o)
        expected (Result.get_ok r))
    out

let clamp_and_stats () =
  (* Clamping is observable without spawning (a max_jobs-wide pool plus
     the global pool would exceed the runtime's 128-domain cap). *)
  let old = Sys.getenv_opt "VSWAPPER_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "VSWAPPER_JOBS" (Option.value old ~default:""))
    (fun () ->
      Unix.putenv "VSWAPPER_JOBS" (string_of_int (Parallel.Pool.max_jobs + 100));
      check Alcotest.int "width clamped to max_jobs" Parallel.Pool.max_jobs
        (Parallel.Pool.default_jobs ()));
  Parallel.Pool.set_global_jobs 4;
  let g = Parallel.Pool.global () in
  Parallel.Pool.reset_stats g;
  let n = 32 in
  ignore
    (Parallel.Pool.map g
       (fun _ -> Parallel.Pool.map g Fun.id (List.init 4 Fun.id))
       (List.init n Fun.id));
  let s = Parallel.Pool.stats g in
  check Alcotest.int "every job accounted once" (n + (n * 4))
    (s.Parallel.Pool.worker_jobs + s.Parallel.Pool.helper_jobs);
  Alcotest.(check bool) "peak queue depth observed" true
    (s.Parallel.Pool.peak_queue_depth >= 1);
  Alcotest.(check bool) "submitters helped" true
    (s.Parallel.Pool.helper_jobs > 0)

(* The sharded fig4 (four ten-guest machine runs fanned out over the
   global pool, nested under nothing here) must render byte-identically
   to the serial inline path, at any scale. *)
let fig4_sharded_equals_serial =
  QCheck.Test.make ~name:"parallel: sharded fig4 == serial fig4 (any scale)"
    ~count:3
    QCheck.(make Gen.(oneofl [ 0.02; 0.03; 0.04 ]))
    (fun scale ->
      let fig4 = Option.get (Experiments.Registry.find "fig4") in
      let render jobs =
        Parallel.Pool.set_global_jobs jobs;
        fig4.Experiments.Exp.run ~scale
      in
      let serial = render 1 in
      let sharded = render 4 in
      String.equal serial sharded)

let run_all_deterministic () =
  let chosen =
    List.filter_map Experiments.Registry.find [ "fig3"; "tab1" ]
  in
  let render jobs =
    Experiments.Registry.run_all ~jobs ~scale:0.05 chosen
    |> List.map (fun (o : Experiments.Registry.outcome) ->
           Alcotest.(check bool)
             (o.exp.Experiments.Exp.id ^ " wall time recorded")
             true (o.wall_s >= 0.0);
           Result.get_ok o.output)
    |> String.concat "\n"
  in
  let serial = render 1 in
  let parallel = render 4 in
  check Alcotest.string "jobs:4 output equals jobs:1" serial parallel

let tests =
  [
    ( "parallel:pool",
      [
        Alcotest.test_case "map preserves order" `Quick pool_maps_in_order;
        Alcotest.test_case "exceptions captured per job" `Quick
          pool_captures_exceptions;
        Alcotest.test_case "pool reusable, serial-equal" `Quick
          pool_reusable_and_serial_equal;
        Alcotest.test_case "VSWAPPER_JOBS override" `Quick jobs_env_override;
      ] );
    ( "parallel:nesting",
      [
        Alcotest.test_case "nested map on global pool terminates ordered"
          `Quick global_nested_map_terminates;
        Alcotest.test_case "three-level nesting from every worker" `Quick
          global_deep_nesting;
        Alcotest.test_case "inner exception isolated per element" `Quick
          global_inner_exception_isolated;
        Alcotest.test_case "clamp bound + scheduling stats" `Quick
          clamp_and_stats;
      ] );
    ( "parallel:determinism",
      [
        Alcotest.test_case "machine stats identical across domains" `Slow
          stats_deterministic_under_domains;
        Alcotest.test_case "run_all jobs:4 == jobs:1" `Slow
          run_all_deterministic;
        Test_util.qcheck fig4_sharded_equals_serial;
      ] );
  ]
