(* Tests for the domain pool and the parallel experiment runner:
   deterministic result ordering, per-job exception capture, and
   bit-equal outputs/stats between serial and parallel sweeps. *)

let check = Alcotest.check

let pool_maps_in_order () =
  let p = Parallel.Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown p)
    (fun () ->
      let xs = List.init 50 Fun.id in
      let out = Parallel.Pool.map p (fun x -> x * x) xs in
      check
        Alcotest.(list int)
        "squares in submission order"
        (List.map (fun x -> x * x) xs)
        (List.map Result.get_ok out))

let pool_captures_exceptions () =
  let out =
    Parallel.Pool.run ~jobs:4
      (fun x -> if x mod 7 = 0 then failwith ("boom " ^ string_of_int x) else x)
      (List.init 20 Fun.id)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "non-multiples survive" true (v = i && i mod 7 <> 0)
      | Error (Failure msg) ->
          Alcotest.(check bool) "multiples of 7 fail" true
            (i mod 7 = 0 && msg = "boom " ^ string_of_int i)
      | Error _ -> Alcotest.fail "unexpected exception")
    out

let pool_reusable_and_serial_equal () =
  let p = Parallel.Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown p)
    (fun () ->
      let xs = List.init 10 Fun.id in
      let a = Parallel.Pool.map p succ xs in
      let b = Parallel.Pool.map p succ xs in
      check Alcotest.(list int) "two maps agree"
        (List.map Result.get_ok a)
        (List.map Result.get_ok b);
      let serial = Parallel.Pool.run ~jobs:1 succ xs in
      check Alcotest.(list int) "parallel equals serial"
        (List.map Result.get_ok serial)
        (List.map Result.get_ok a))

let jobs_env_override () =
  let old = Sys.getenv_opt "VSWAPPER_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "VSWAPPER_JOBS" (Option.value old ~default:""))
    (fun () ->
      Unix.putenv "VSWAPPER_JOBS" "5";
      check Alcotest.int "override respected" 5 (Parallel.Pool.default_jobs ());
      Unix.putenv "VSWAPPER_JOBS" "not-a-number";
      Alcotest.(check bool) "garbage falls back to >= 1" true
        (Parallel.Pool.default_jobs () >= 1))

(* A small fig3-style machine; everything the run touches is built here,
   so concurrent copies must produce identical counters. *)
let tiny_machine_stats () =
  let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb:16 () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 24;
      resident_limit_mb = Some 16;
      warm_all = true;
      data_mb = 16 + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 48;
      host_swap_mb = 36;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  Format.asprintf "%a" Metrics.Stats.pp result.Vmm.Machine.stats

let stats_deterministic_under_domains () =
  let reference = tiny_machine_stats () in
  let outs =
    Parallel.Pool.run ~jobs:4 (fun _ -> tiny_machine_stats ()) [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i r ->
      check Alcotest.string
        (Printf.sprintf "copy %d matches serial counters" i)
        reference (Result.get_ok r))
    outs

let run_all_deterministic () =
  let chosen =
    List.filter_map Experiments.Registry.find [ "fig3"; "tab1" ]
  in
  let render jobs =
    Experiments.Registry.run_all ~jobs ~scale:0.05 chosen
    |> List.map (fun (o : Experiments.Registry.outcome) ->
           Alcotest.(check bool)
             (o.exp.Experiments.Exp.id ^ " wall time recorded")
             true (o.wall_s >= 0.0);
           Result.get_ok o.output)
    |> String.concat "\n"
  in
  let serial = render 1 in
  let parallel = render 4 in
  check Alcotest.string "jobs:4 output equals jobs:1" serial parallel

let tests =
  [
    ( "parallel:pool",
      [
        Alcotest.test_case "map preserves order" `Quick pool_maps_in_order;
        Alcotest.test_case "exceptions captured per job" `Quick
          pool_captures_exceptions;
        Alcotest.test_case "pool reusable, serial-equal" `Quick
          pool_reusable_and_serial_equal;
        Alcotest.test_case "VSWAPPER_JOBS override" `Quick jobs_env_override;
      ] );
    ( "parallel:determinism",
      [
        Alcotest.test_case "machine stats identical across domains" `Slow
          stats_deterministic_under_domains;
        Alcotest.test_case "run_all jobs:4 == jobs:1" `Slow
          run_all_deterministic;
      ] );
  ]
