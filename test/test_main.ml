(* Aggregated test runner: every library contributes a suite list. *)
let () =
  Alcotest.run "vswapper-repro"
    (Test_sim.tests @ Test_metrics.tests @ Test_faults.tests
   @ Test_storage.tests
   @ Test_mem.tests @ Test_core.tests @ Test_host.tests @ Test_guest.tests
   @ Test_vmm.tests @ Test_workloads.tests @ Test_balloon.tests
   @ Test_migration.tests @ Test_cluster.tests @ Test_experiments.tests
   @ Test_parallel.tests)
