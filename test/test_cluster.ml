(* Tests for the fleet simulator: pool-width determinism, controller
   invariants (overcommit bound, migration page accounting), and the
   purity of the synthetic traffic generator. *)

let check = Alcotest.check
module F = Cluster.Fleet
module T = Cluster.Traffic

(* A fleet small enough that a run costs well under a second but still
   crosses every controller path at the default seed: placements,
   rejections, departures and pressure-driven evacuations. *)
let small_config ?(overcommit = 1.5) seed =
  {
    F.default_config with
    F.hosts = 4;
    epochs = 5;
    seed;
    overcommit;
    mean_arrivals = 2.5 *. 4.0;
  }

let run_with_jobs cfg jobs =
  let pool = Parallel.Pool.create ~jobs () in
  let r = F.run ~pool cfg in
  Parallel.Pool.shutdown pool;
  r

(* The tentpole property: the pool only changes which wall-clock instant
   each shard steps at.  Stats, fingerprint and the rendered report must
   be byte-identical serially and at four workers, whatever the traffic
   seed. *)
let fleet_deterministic_across_pool_widths =
  QCheck.Test.make ~name:"cluster: fleet serial == --jobs 4 (any seed)"
    ~count:3
    QCheck.(make Gen.(oneofl [ 42; 7; 1234 ]))
    (fun seed ->
      let cfg = small_config seed in
      let serial = run_with_jobs cfg 1 in
      let jobs4 = run_with_jobs cfg 4 in
      String.equal (F.report serial) (F.report jobs4)
      && serial.F.fingerprint = jobs4.F.fingerprint
      && serial.F.guests_placed = jobs4.F.guests_placed
      && serial.F.migrations = jobs4.F.migrations)

(* Controller invariants, checked by the simulator itself at every
   placement, reservation and migration landing: no host is ever
   committed past the overcommit bound, and every completed evacuation
   classifies exactly its guest's pages (copied + mappings + skipped),
   so pages are neither lost nor duplicated by a rebalance. *)
let controller_invariants =
  QCheck.Test.make ~name:"cluster: overcommit bound + page accounting"
    ~count:4
    QCheck.(
      make
        Gen.(pair (oneofl [ 3; 11; 42; 99 ]) (oneofl [ 1.0; 1.25; 1.5; 2.0 ])))
    (fun (seed, overcommit) ->
      let cfg = small_config ~overcommit seed in
      let r = run_with_jobs cfg 1 in
      let bound_mb =
        int_of_float (float_of_int cfg.F.host_mem_mb *. cfg.F.overcommit)
      in
      r.F.committed_ok && r.F.migration_accounting_ok
      && List.for_all (fun row -> row.F.max_committed_mb <= bound_mb) r.F.rows)

(* The per-epoch rows must reconcile with the headline counters. *)
let rows_reconcile_with_totals () =
  let r = run_with_jobs (small_config 42) 1 in
  let sum f = List.fold_left (fun acc row -> acc + f row) 0 r.F.rows in
  check Alcotest.int "rows" 5 (List.length r.F.rows);
  check Alcotest.int "placed" r.F.guests_placed (sum (fun w -> w.F.placed));
  check Alcotest.int "rejected" r.F.guests_rejected
    (sum (fun w -> w.F.rejected));
  check Alcotest.int "migrations" r.F.migrations
    (sum (fun w -> w.F.migrations_done));
  check Alcotest.int "aborted" r.F.migrations_aborted
    (sum (fun w -> w.F.migrations_aborted));
  check Alcotest.int "oom" r.F.oom_kills (sum (fun w -> w.F.oom_killed));
  Alcotest.(check bool) "something ran" true
    (r.F.guests_placed > 0 && r.F.pages_placed > 0 && r.F.guest_seconds > 0);
  Alcotest.(check bool) "report mentions fingerprint" true
    (Test_util.contains (F.report r)
       (Printf.sprintf "%016x" r.F.fingerprint))

(* Traffic is a pure function of (seed, epoch): independent generators
   with the same seed replay the same history, and [load] can be probed
   any number of times without disturbing it. *)
let traffic_pure_and_deterministic () =
  let mk () = T.create ~seed:9 ~mean_arrivals:10.0 () in
  let a = mk () and b = mk () in
  for epoch = 0 to 9 do
    let la = T.load a ~epoch in
    check (Alcotest.float 0.0) "load pure" la (T.load a ~epoch);
    check (Alcotest.float 0.0) "load seed-determined" la (T.load b ~epoch);
    Alcotest.(check bool) "load in range" true (la >= 0.35 && la <= 1.6);
    let sa = T.arrivals a ~epoch and sb = T.arrivals b ~epoch in
    check Alcotest.int "same arrival count" (List.length sa) (List.length sb);
    List.iter2
      (fun (x : T.vm_spec) (y : T.vm_spec) ->
        check Alcotest.int "tenant" x.T.tenant y.T.tenant;
        check Alcotest.int "mem" x.T.mem_mb y.T.mem_mb;
        check Alcotest.int "lifetime" x.T.lifetime_epochs y.T.lifetime_epochs)
      sa sb
  done

(* Tenant ids are the arrival order: strictly increasing from 0 across
   epochs, never reused. *)
let traffic_tenant_ids_monotonic () =
  let t = T.create ~seed:4 ~mean_arrivals:12.0 () in
  let next = ref 0 in
  for epoch = 0 to 7 do
    List.iter
      (fun (s : T.vm_spec) ->
        check Alcotest.int "dense ids" !next s.T.tenant;
        incr next;
        Alcotest.(check bool) "sane size" true (s.T.mem_mb >= 4);
        Alcotest.(check bool) "sane lifetime" true (s.T.lifetime_epochs >= 2))
      (T.arrivals t ~epoch)
  done;
  Alcotest.(check bool) "tenants arrived" true (!next > 0)

let tests =
  [
    ( "cluster:traffic",
      [
        Alcotest.test_case "pure + seed-determined" `Quick
          traffic_pure_and_deterministic;
        Alcotest.test_case "tenant ids monotonic" `Quick
          traffic_tenant_ids_monotonic;
      ] );
    ( "cluster:fleet",
      [
        Alcotest.test_case "rows reconcile" `Slow rows_reconcile_with_totals;
        Test_util.qcheck fleet_deterministic_across_pool_widths;
        Test_util.qcheck controller_invariants;
      ] );
  ]
