(* Unit and property tests for the simulation substrate: virtual time,
   the deterministic PRNG, the stable binary heap, and the engine. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let time_units () =
  check Alcotest.int "ms" 5_000 (Sim.Time.ms 5);
  check Alcotest.int "sec" 3_000_000 (Sim.Time.sec 3);
  check Alcotest.int "us" 7 (Sim.Time.us 7);
  check (Alcotest.float 1e-9) "to_sec" 1.5 (Sim.Time.to_sec_float (Sim.Time.ms 1_500));
  check Alcotest.int "add" 11 (Sim.Time.add 5 6);
  check Alcotest.int "sub" 4 (Sim.Time.sub 10 6);
  check Alcotest.int "round" 3 (Sim.Time.of_float_us 2.6)

let time_pp () =
  check Alcotest.string "seconds" "2.5s" (Sim.Time.to_string (Sim.Time.us 2_500_000));
  check Alcotest.string "millis" "1.5ms" (Sim.Time.to_string (Sim.Time.us 1_500));
  check Alcotest.string "micros" "17us" (Sim.Time.to_string (Sim.Time.us 17))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Sim.Rng.of_int 42 and b = Sim.Rng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Sim.Rng.int a 1_000_000)
      (Sim.Rng.int b 1_000_000)
  done

let rng_split_independent () =
  let a = Sim.Rng.of_int 42 in
  let b = Sim.Rng.split a in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let rng_bounds =
  QCheck.Test.make ~name:"rng: int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.of_int seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"rng: shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Sim.Rng.of_int seed in
      let arr = Array.of_list l in
      Sim.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let rng_int_in_bounds =
  QCheck.Test.make ~name:"rng: int_in inclusive bounds" ~count:300
    QCheck.(triple small_int (int_range 0 100) (int_range 0 100))
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Sim.Rng.of_int seed in
      let v = Sim.Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let rng_exponential_positive () =
  let rng = Sim.Rng.of_int 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "non-negative" true
      (Sim.Rng.exponential rng ~mean:5.0 >= 0.0)
  done

let rng_float_bounds =
  QCheck.Test.make ~name:"rng: float stays within bounds" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Sim.Rng.of_int seed in
      let v = Sim.Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_basic () =
  let h = Sim.Heap.create () in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Sim.Heap.add h ~priority:5 "five";
  Sim.Heap.add h ~priority:1 "one";
  Sim.Heap.add h ~priority:3 "three";
  check Alcotest.int "length" 3 (Sim.Heap.length h);
  check Alcotest.(option (pair int string)) "peek" (Some (1, "one")) (Sim.Heap.peek_min h);
  check Alcotest.(option (pair int string)) "pop1" (Some (1, "one")) (Sim.Heap.pop_min h);
  check Alcotest.(option (pair int string)) "pop2" (Some (3, "three")) (Sim.Heap.pop_min h);
  check Alcotest.(option (pair int string)) "pop3" (Some (5, "five")) (Sim.Heap.pop_min h);
  check Alcotest.(option (pair int string)) "pop4" None (Sim.Heap.pop_min h)

let heap_stable_at_equal_priority () =
  let h = Sim.Heap.create () in
  List.iteri (fun i v -> Sim.Heap.add h ~priority:(i mod 2) v) [ "a"; "b"; "c"; "d"; "e" ];
  (* priorities: a:0 b:1 c:0 d:1 e:0 -> pops a,c,e (FIFO within 0), b,d *)
  let pops = List.init 5 (fun _ -> snd (Option.get (Sim.Heap.pop_min h))) in
  Alcotest.(check (list string)) "stable" [ "a"; "c"; "e"; "b"; "d" ] pops

let heap_clear () =
  let h = Sim.Heap.create () in
  Sim.Heap.add h ~priority:1 "x";
  Sim.Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Sim.Heap.is_empty h);
  check Alcotest.(option (pair int string)) "no peek" None (Sim.Heap.peek_min h)

let heap_sorts =
  QCheck.Test.make ~name:"heap: pops in sorted order" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = Sim.Heap.create () in
      List.iter (fun p -> Sim.Heap.add h ~priority:p p) l;
      let rec drain acc =
        match Sim.Heap.pop_min h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare l)

let heap_unboxed_accessors () =
  let h = Sim.Heap.create () in
  Alcotest.check_raises "top_priority on empty"
    (Invalid_argument "Heap.top_priority: empty heap") (fun () ->
      ignore (Sim.Heap.top_priority h));
  Alcotest.check_raises "top on empty" (Invalid_argument "Heap.top: empty heap")
    (fun () -> ignore (Sim.Heap.top h));
  Alcotest.check_raises "drop_min on empty"
    (Invalid_argument "Heap.drop_min: empty heap") (fun () -> Sim.Heap.drop_min h);
  Sim.Heap.add h ~priority:7 "seven";
  Sim.Heap.add h ~priority:2 "two";
  check Alcotest.int "top_priority" 2 (Sim.Heap.top_priority h);
  check Alcotest.string "top" "two" (Sim.Heap.top h);
  Sim.Heap.drop_min h;
  check Alcotest.(option (pair int string)) "drop removed the min"
    (Some (7, "seven"))
    (Sim.Heap.pop_min h)

(* Interleave pushes and pops in a random order against a sorted-list
   model.  Values record insertion order, so this also checks that ties
   drain FIFO-stably — including across pops that shrink and re-sift the
   backing arrays. *)
let heap_interleaved_stable =
  QCheck.Test.make
    ~name:"heap: random push/pop interleavings drain sorted and FIFO-stable"
    ~count:300
    (* Some None = pop; Some p = push with priority p (small range forces
       ties). *)
    QCheck.(list (option (int_range 0 8)))
    (fun ops ->
      let h = Sim.Heap.create () in
      let model = ref [] (* sorted (priority, insertion_seq) list *)
      and seq = ref 0
      and ok = ref true in
      let insert (p, s) =
        let rec go = function
          | [] -> [ (p, s) ]
          | (p', s') :: rest when p' < p || (p' = p && s' < s) ->
              (p', s') :: go rest
          | rest -> (p, s) :: rest
        in
        model := go !model
      in
      List.iter
        (fun op ->
          match op with
          | Some p ->
              Sim.Heap.add h ~priority:p !seq;
              insert (p, !seq);
              incr seq
          | None -> (
              match (Sim.Heap.pop_min h, !model) with
              | None, [] -> ()
              | Some got, expected :: rest ->
                  if got <> expected then ok := false;
                  model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      (* Drain whatever remains and compare against the model tail. *)
      let rec drain acc =
        match Sim.Heap.pop_min h with
        | None -> List.rev acc
        | Some pv -> drain (pv :: acc)
      in
      !ok && drain [] = !model)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

(* Every engine test runs against both event-queue backends: the default
   timing wheel and the `VSWAPPER_ENGINE=heap` binary heap.  Observable
   semantics must be identical. *)

let engine_ordering backend () =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 30) (fun () -> log := 30 :: !log));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> log := 10 :: !log));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> log := 20 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fires in order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Sim.Engine.now e)

let engine_cascade backend () =
  let e = Sim.Engine.create ~backend () in
  let count = ref 0 in
  let rec tick n () =
    if n > 0 then begin
      incr count;
      ignore (Sim.Engine.schedule_after e (Sim.Time.us 5) (tick (n - 1)))
    end
  in
  ignore (Sim.Engine.schedule_after e (Sim.Time.us 5) (tick 10));
  Sim.Engine.run e;
  check Alcotest.int "all ticks" 10 !count;
  check Alcotest.int "clock" 55 (Sim.Engine.now e)

let engine_cancel backend () =
  let e = Sim.Engine.create ~backend () in
  let fired = ref false in
  let ev = Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> fired := true) in
  Sim.Engine.cancel e ev;
  check Alcotest.int "pending drops" 0 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  (* double-cancel is a no-op *)
  Sim.Engine.cancel e ev

let engine_past_rejected backend () =
  let e = Sim.Engine.create ~backend () in
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 50) (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: 10 is in the past (now=50)")
    (fun () -> ignore (Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> ())))

let engine_run_until backend () =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  List.iter
    (fun t -> ignore (Sim.Engine.schedule_at e (Sim.Time.us t) (fun () -> log := t :: !log)))
    [ 10; 20; 30; 40 ];
  let remaining = Sim.Engine.run_until e (Sim.Time.us 25) in
  Alcotest.(check bool) "events remain" true remaining;
  Alcotest.(check (list int)) "only early" [ 10; 20 ] (List.rev !log);
  let remaining = Sim.Engine.run_until e (Sim.Time.us 100) in
  Alcotest.(check bool) "drained" false remaining;
  Alcotest.(check (list int)) "all" [ 10; 20; 30; 40 ] (List.rev !log)

(* Regression: an event scheduled exactly at the limit must fire during
   [run_until limit] (the cutoff is events *after* the limit), and the
   comparison must go through [Time.compare], not raw ints. *)
let engine_run_until_at_limit backend () =
  let e = Sim.Engine.create ~backend () in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule_at e (Sim.Time.us t) (fun () ->
             fired := t :: !fired)))
    [ 10; 25; 40 ];
  let remaining = Sim.Engine.run_until e (Sim.Time.us 25) in
  Alcotest.(check bool) "later event remains" true remaining;
  Alcotest.(check (list int)) "event at limit fires" [ 10; 25 ]
    (List.rev !fired);
  check Alcotest.int "clock advanced to limit event" 25 (Sim.Engine.now e);
  (* A limit landing exactly on the final event drains the queue. *)
  let remaining = Sim.Engine.run_until e (Sim.Time.us 40) in
  Alcotest.(check bool) "drained at exact limit" false remaining;
  Alcotest.(check (list int)) "all fired" [ 10; 25; 40 ] (List.rev !fired)

(* run_at/run_after events recycle through a freelist; interleave them
   with cancellable schedule_at handles to check neither corrupts the
   other. *)
let engine_recycled_events backend () =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  for round = 0 to 2 do
    let base = Sim.Engine.now e in
    for i = 1 to 50 do
      Sim.Engine.run_at e
        (Sim.Time.add base (Sim.Time.us i))
        (fun () -> log := ((round * 100) + i) :: !log)
    done;
    let h =
      Sim.Engine.schedule_at e
        (Sim.Time.add base (Sim.Time.us 10))
        (fun () -> log := (-1) :: !log)
    in
    Sim.Engine.cancel e h;
    Sim.Engine.run e
  done;
  let expected =
    List.concat_map
      (fun round -> List.init 50 (fun i -> (round * 100) + i + 1))
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "recycled events all fire in order" expected
    (List.rev !log);
  Alcotest.(check bool) "cancelled handle never fired" false
    (List.mem (-1) !log)

(* Handles are generation-counted: cancelling after the event fired is
   a no-op (it used to corrupt the pending count), and a stale handle
   never cancels the unrelated event that recycled its slot. *)
let engine_cancel_after_fire backend () =
  let e = Sim.Engine.create ~backend () in
  let fired = ref [] in
  let h1 = Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> fired := 1 :: !fired) in
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> fired := 2 :: !fired));
  Alcotest.(check bool) "stepped" true (Sim.Engine.step e);
  Sim.Engine.cancel e h1;
  check Alcotest.int "pending unchanged by stale cancel" 1 (Sim.Engine.pending e);
  Sim.Engine.cancel e Sim.Engine.null;
  check Alcotest.int "null cancel is a no-op" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "both fired" [ 1; 2 ] (List.rev !fired)

let engine_stale_handle_spares_slot_reuser backend () =
  let e = Sim.Engine.create ~backend () in
  let fired = ref [] in
  let h1 = Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> fired := 1 :: !fired) in
  Sim.Engine.run e;
  (* The new event recycles h1's slot with a bumped generation. *)
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> fired := 2 :: !fired));
  Sim.Engine.cancel e h1;
  check Alcotest.int "reused slot survives stale cancel" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "both fired" [ 1; 2 ] (List.rev !fired)

(* Cancelled records are reclaimed on both drain paths (run/run_until
   pops them off the top; step drops them on the way to the next live
   event) and their slots recycle cleanly. *)
let engine_cancelled_reclaimed_by_step backend () =
  let e = Sim.Engine.create ~backend () in
  let leaked = ref false in
  for _round = 1 to 3 do
    let h =
      Sim.Engine.schedule_after e (Sim.Time.us 5) (fun () -> leaked := true)
    in
    ignore (Sim.Engine.schedule_after e (Sim.Time.us 7) (fun () -> ()));
    Sim.Engine.cancel e h;
    while Sim.Engine.step e do
      ()
    done
  done;
  Alcotest.(check bool) "cancelled never fired" false !leaked;
  check Alcotest.int "queue empty" 0 (Sim.Engine.pending e)

let engine_monotone_time backend =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "engine(%s): callbacks fire in non-decreasing time"
         (Sim.Engine.backend_name backend))
    ~count:200
    QCheck.(list (int_range 0 10_000))
    (fun times ->
      let e = Sim.Engine.create ~backend () in
      let fired = ref [] in
      List.iter
        (fun t ->
          ignore
            (Sim.Engine.schedule_at e (Sim.Time.us t) (fun () ->
                 fired := Sim.Engine.now e :: !fired)))
        times;
      Sim.Engine.run e;
      let seq = List.rev !fired in
      List.length seq = List.length times
      && seq = List.sort compare seq)

exception Boom

(* A callback raising out of [step]/[run_until] must leave the engine
   consistent: the fired event's record is recycled before the callback
   runs, so nothing leaks, the clock stays where the raising event fired,
   and the remaining events still run afterwards. *)
let engine_exception_safety backend () =
  let e = Sim.Engine.create ~backend () in
  let fired = ref [] in
  ignore
    (Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> fired := 1 :: !fired));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> raise Boom));
  ignore
    (Sim.Engine.schedule_at e (Sim.Time.us 30) (fun () -> fired := 3 :: !fired));
  Alcotest.check_raises "raises through run_until" Boom (fun () ->
      ignore (Sim.Engine.run_until e (Sim.Time.us 100)));
  Alcotest.(check int) "clock at the raising event" 20
    (Sim.Time.to_us (Sim.Engine.now e));
  Alcotest.(check int) "raising record reclaimed, survivor pending" 1
    (Sim.Engine.pending e);
  (* The engine keeps working: the survivor and fresh events (reusing
     the recycled slots) all fire. *)
  for i = 4 to 40 do
    ignore
      (Sim.Engine.schedule_at e
         (Sim.Time.us (10 * i))
         (fun () -> fired := i :: !fired))
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "all survivors fired" 39 (List.length !fired);
  Alcotest.(check int) "none left" 0 (Sim.Engine.pending e)

let engine_same_time_fifo backend () =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  List.iter
    (fun v -> ignore (Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> log := v :: !log)))
    [ 1; 2; 3 ];
  Sim.Engine.run e;
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3 ] (List.rev !log)

(* An event scheduled for the current instant from inside a callback
   joins the tail of that instant: it fires after the events already
   queued at the same time and before any later time — identically on
   both backends (the heap by seq order; the wheel by draining the
   refilled current slot as a later batch at the same tick). *)
let engine_same_tick_reentry backend () =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule_at e (Sim.Time.us 50) (fun () ->
         log := 0 :: !log;
         ignore
           (Sim.Engine.schedule_at e (Sim.Time.us 50) (fun () ->
                log := 9 :: !log))));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 50) (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 51) (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "reentry after the batch, before the next tick"
    [ 0; 1; 9; 2 ] (List.rev !log)

(* [cancelled_pending] separates lazy cancellation (heap) from true
   removal (wheel): the wheel must report 0 after every cancel — no dead
   record is ever left queued — while the heap accumulates tombstones
   that the next drain reclaims. *)
let engine_cancelled_pending backend () =
  let e = Sim.Engine.create ~backend () in
  let hs =
    List.init 8 (fun i ->
        Sim.Engine.schedule_at e (Sim.Time.us (10 * (i + 1))) (fun () -> ()))
  in
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 500) (fun () -> ()));
  List.iteri
    (fun i h ->
      Sim.Engine.cancel e h;
      match backend with
      | Sim.Engine.Wheel ->
          check Alcotest.int "wheel: zero dead records queued" 0
            (Sim.Engine.cancelled_pending e)
      | Sim.Engine.Heap ->
          check Alcotest.int "heap: tombstones accumulate" (i + 1)
            (Sim.Engine.cancelled_pending e))
    hs;
  check Alcotest.int "pending counts live events only" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check Alcotest.int "drain reclaims every tombstone" 0
    (Sim.Engine.cancelled_pending e);
  check Alcotest.int "queue empty" 0 (Sim.Engine.pending e)

let engine_telemetry backend () =
  let e = Sim.Engine.create ~backend () in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule_at e (Sim.Time.us (i * 10)) (fun () -> ()))
  done;
  let h = Sim.Engine.schedule_at e (Sim.Time.us 500) (fun () -> ()) in
  Sim.Engine.cancel e h;
  Sim.Engine.run e;
  let tel = Sim.Engine.telemetry e in
  Alcotest.(check string) "backend recorded"
    (Sim.Engine.backend_name backend)
    (Sim.Engine.backend_name tel.Sim.Engine.tel_backend);
  Alcotest.(check int) "fired = callbacks invoked" 10 tel.Sim.Engine.events_fired;
  Alcotest.(check int) "cancelled record reclaimed exactly once" 1
    tel.Sim.Engine.cancels_reclaimed

(* ------------------------------------------------------------------ *)
(* Wheel-specific edge cases                                           *)
(* ------------------------------------------------------------------ *)

(* 64 = the first time resolved by wheel level 1, 4096 by level 2,
   262144 by level 3.  Aligned-window placement and cascading must fire
   boundary±1 times in exact order with exact clocks. *)
let wheel_level_boundary () =
  let e = Sim.Engine.create ~backend:Sim.Engine.Wheel () in
  let times = [ 65; 4096; 63; 262145; 4095; 64; 262143; 4097; 262144; 1; 0 ] in
  let log = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule_at e (Sim.Time.us t) (fun () ->
             log := Sim.Time.to_us (Sim.Engine.now e) :: !log)))
    times;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "boundary times fire in order"
    (List.sort compare times) (List.rev !log)

(* One event per wheel level plus two same-time events beyond the 2^24 us
   horizon (overflow list), scheduled out of order: everything must fire
   in time order with FIFO ties, and the far events must have cascaded
   down through the levels on the way. *)
let wheel_deep_cascade () =
  let e = Sim.Engine.create ~backend:Sim.Engine.Wheel () in
  let log = ref [] in
  let add t v =
    ignore (Sim.Engine.schedule_at e (Sim.Time.us t) (fun () -> log := v :: !log))
  in
  add 20_000_000 4;
  add 20_000_000 5;
  add 300_000 3;
  add 10 0;
  add 5_000 2;
  add 100 1;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "levels + overflow in order, FIFO at ties"
    [ 0; 1; 2; 3; 4; 5 ] (List.rev !log);
  Alcotest.(check int) "clock at the overflow events" 20_000_000
    (Sim.Time.to_us (Sim.Engine.now e));
  let tel = Sim.Engine.telemetry e in
  Alcotest.(check bool) "far events cascaded down the levels" true
    (tel.Sim.Engine.cascades > 0)

(* Cancelling from inside a callback while a cascaded batch is draining:
   a later same-tick event (already relocated into the current level-0
   slot), a cascaded-but-not-yet-due event one tick over, and an event
   still parked at level 1 must all unlink cleanly, leaving no dead
   record queued. *)
let wheel_cancel_during_cascade () =
  let e = Sim.Engine.create ~backend:Sim.Engine.Wheel () in
  let log = ref [] in
  (* Tick 100 lives on level 1 from wheel time 0, so reaching it forces a
     cascade; the handles below are all in flight mid-drain when event 0
     cancels them. *)
  let hc = ref Sim.Engine.null
  and hd = ref Sim.Engine.null
  and hf = ref Sim.Engine.null in
  ignore
    (Sim.Engine.schedule_at e (Sim.Time.us 100) (fun () ->
         log := 0 :: !log;
         Sim.Engine.cancel e !hc;
         Sim.Engine.cancel e !hd;
         Sim.Engine.cancel e !hf));
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 100) (fun () -> log := 1 :: !log));
  (* same tick, behind the canceller in the batch *)
  hc := Sim.Engine.schedule_at e (Sim.Time.us 100) (fun () -> log := 2 :: !log);
  (* same level-1 window, so cascaded to level 0 but one tick later *)
  hd := Sim.Engine.schedule_at e (Sim.Time.us 101) (fun () -> log := 3 :: !log);
  (* different level-1 slot: still parked above when cancelled *)
  hf := Sim.Engine.schedule_at e (Sim.Time.us 160) (fun () -> log := 4 :: !log);
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 170) (fun () -> log := 5 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "cancelled events skipped mid-batch" [ 0; 1; 5 ]
    (List.rev !log);
  Alcotest.(check int) "no dead records queued" 0
    (Sim.Engine.cancelled_pending e);
  Alcotest.(check int) "queue empty" 0 (Sim.Engine.pending e)

(* Peeking must not advance the wheel: after [run_until] returns with a
   far-future event still queued, a fresh event far earlier than it (but
   after the engine clock) must be accepted and fire first. *)
let wheel_peek_does_not_advance () =
  let e = Sim.Engine.create ~backend:Sim.Engine.Wheel () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule_at e (Sim.Time.us 1_000_000) (fun () ->
         log := 2 :: !log));
  let remaining = Sim.Engine.run_until e (Sim.Time.us 10) in
  Alcotest.(check bool) "far event still queued" true remaining;
  ignore (Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> log := 1 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "late earlier insert fires first" [ 1; 2 ]
    (List.rev !log)

(* The differential harness: random schedule / cancel / run_until traces
   replayed against both backends must produce the same observable
   outcome — firing order as (id, time) pairs, final clock, and final
   pending count.  Far schedules (x10000) push events past the wheel
   horizon so the overflow list is exercised too. *)
type trace_op = Sched of int | Sched_far of int | Cancel_nth of int | Run_for of int

let engine_differential =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun d -> Sched d) (int_range 0 2_000));
          (1, map (fun d -> Sched_far d) (int_range 0 4_000));
          (2, map (fun k -> Cancel_nth k) (int_range 0 30));
          (2, map (fun d -> Run_for d) (int_range 0 3_000));
        ])
  in
  let print_op = function
    | Sched d -> Printf.sprintf "Sched %d" d
    | Sched_far d -> Printf.sprintf "Sched_far %d" d
    | Cancel_nth k -> Printf.sprintf "Cancel_nth %d" k
    | Run_for d -> Printf.sprintf "Run_for %d" d
  in
  let arb =
    QCheck.make
      ~print:(QCheck.Print.list print_op)
      QCheck.Gen.(list_size (int_range 0 60) op_gen)
  in
  QCheck.Test.make ~name:"engine: wheel = heap on random traces" ~count:300 arb
    (fun ops ->
      let replay backend =
        let e = Sim.Engine.create ~backend () in
        let fired = ref [] in
        let handles = ref [] in
        let next_id = ref 0 in
        let sched d =
          let id = !next_id in
          incr next_id;
          let h =
            Sim.Engine.schedule_after e (Sim.Time.us d) (fun () ->
                fired := (id, Sim.Time.to_us (Sim.Engine.now e)) :: !fired)
          in
          handles := h :: !handles
        in
        List.iter
          (function
            | Sched d -> sched d
            | Sched_far d -> sched (d * 10_000)
            | Cancel_nth k -> (
                match List.nth_opt !handles k with
                | Some h -> Sim.Engine.cancel e h
                | None -> ())
            | Run_for d ->
                ignore
                  (Sim.Engine.run_until e
                     (Sim.Time.add (Sim.Engine.now e) (Sim.Time.us d))))
          ops;
        Sim.Engine.run e;
        ( List.rev !fired,
          Sim.Time.to_us (Sim.Engine.now e),
          Sim.Engine.pending e )
      in
      replay Sim.Engine.Wheel = replay Sim.Engine.Heap)

let engine_cases backend =
  let tc name f = Alcotest.test_case name `Quick (f backend) in
  ( Printf.sprintf "sim:engine(%s)" (Sim.Engine.backend_name backend),
    [
      tc "ordering" engine_ordering;
      tc "cascading events" engine_cascade;
      tc "cancellation" engine_cancel;
      tc "past rejected" engine_past_rejected;
      tc "run_until" engine_run_until;
      tc "run_until: event exactly at limit" engine_run_until_at_limit;
      tc "freelist event recycling" engine_recycled_events;
      tc "cancel after fire is a no-op" engine_cancel_after_fire;
      tc "stale handle spares slot reuser" engine_stale_handle_spares_slot_reuser;
      tc "step reclaims cancelled records" engine_cancelled_reclaimed_by_step;
      tc "same-time FIFO" engine_same_time_fifo;
      tc "same-tick reentry ordering" engine_same_tick_reentry;
      tc "exception safety" engine_exception_safety;
      tc "cancelled_pending accounting" engine_cancelled_pending;
      tc "telemetry counters" engine_telemetry;
      qcheck (engine_monotone_time backend);
    ] )

let tests =
    [
      ( "sim:time",
        [
          Alcotest.test_case "unit conversions" `Quick time_units;
          Alcotest.test_case "pretty printing" `Quick time_pp;
        ] );
      ( "sim:rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split independence" `Quick rng_split_independent;
          Alcotest.test_case "exponential positive" `Quick rng_exponential_positive;
          qcheck rng_bounds;
          qcheck rng_int_in_bounds;
          qcheck rng_shuffle_permutes;
          qcheck rng_float_bounds;
        ] );
      ( "sim:heap",
        [
          Alcotest.test_case "basic ops" `Quick heap_basic;
          Alcotest.test_case "stability" `Quick heap_stable_at_equal_priority;
          Alcotest.test_case "clear" `Quick heap_clear;
          Alcotest.test_case "unboxed accessors" `Quick heap_unboxed_accessors;
          qcheck heap_sorts;
          qcheck heap_interleaved_stable;
        ] );
      engine_cases Sim.Engine.Wheel;
      engine_cases Sim.Engine.Heap;
      ( "sim:wheel",
        [
          Alcotest.test_case "level-boundary scheduling" `Quick
            wheel_level_boundary;
          Alcotest.test_case "deep cascade + overflow" `Quick wheel_deep_cascade;
          Alcotest.test_case "cancel during cascade" `Quick
            wheel_cancel_during_cascade;
          Alcotest.test_case "peek does not advance the wheel" `Quick
            wheel_peek_does_not_advance;
          qcheck engine_differential;
        ] );
    ]
