(* Tests for the intrusive LRU list, including a model-based property
   test against a reference list implementation. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck

let lru_basic () =
  let l = Mem.Lru.create () in
  Alcotest.(check bool) "empty" true (Mem.Lru.is_empty l);
  let a = Mem.Lru.node "a" and b = Mem.Lru.node "b" and c = Mem.Lru.node "c" in
  Mem.Lru.push_front l a;
  Mem.Lru.push_front l b;
  Mem.Lru.push_back l c;
  (* order front->back: b a c *)
  Alcotest.(check (list string)) "order" [ "b"; "a"; "c" ] (Mem.Lru.to_list l);
  check Alcotest.int "length" 3 (Mem.Lru.length l);
  Alcotest.(check bool) "mem" true (Mem.Lru.mem l a);
  check Alcotest.(option string) "peek back" (Some "c")
    (Option.map Mem.Lru.value (Mem.Lru.peek_back l));
  Mem.Lru.move_front l c;
  Alcotest.(check (list string)) "after move" [ "c"; "b"; "a" ] (Mem.Lru.to_list l);
  check Alcotest.(option string) "pop back" (Some "a")
    (Option.map Mem.Lru.value (Mem.Lru.pop_back l));
  Mem.Lru.remove l b;
  Alcotest.(check (list string)) "after removals" [ "c" ] (Mem.Lru.to_list l);
  Alcotest.(check bool) "b detached" false (Mem.Lru.in_some_list b)

let lru_membership_errors () =
  let l1 = Mem.Lru.create () and l2 = Mem.Lru.create () in
  let n = Mem.Lru.node 1 in
  Mem.Lru.push_front l1 n;
  Alcotest.check_raises "double insert" (Invalid_argument "Lru: node already in a list")
    (fun () -> Mem.Lru.push_front l2 n);
  Alcotest.check_raises "wrong list" (Invalid_argument "Lru: node belongs to another list")
    (fun () -> Mem.Lru.remove l2 n);
  Mem.Lru.remove l1 n;
  Alcotest.check_raises "not in list" (Invalid_argument "Lru: node not in any list")
    (fun () -> Mem.Lru.remove l1 n);
  Alcotest.(check bool) "mem false" false (Mem.Lru.mem l1 n)

(* Model-based test: ops interpreted against both the Lru and a plain
   list model keyed by node index. *)
let lru_model =
  QCheck.Test.make ~name:"lru: agrees with a list model" ~count:300
    QCheck.(list (pair (int_range 0 4) (int_range 0 9)))
    (fun ops ->
      let l = Mem.Lru.create () in
      let nodes = Array.init 10 Mem.Lru.node in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          let inside = List.mem i !model in
          match op with
          | 0 (* push_front *) ->
              if not inside then begin
                Mem.Lru.push_front l nodes.(i);
                model := i :: !model
              end
          | 1 (* push_back *) ->
              if not inside then begin
                Mem.Lru.push_back l nodes.(i);
                model := !model @ [ i ]
              end
          | 2 (* remove *) ->
              if inside then begin
                Mem.Lru.remove l nodes.(i);
                model := List.filter (fun x -> x <> i) !model
              end
          | 3 (* move_front *) ->
              if inside then begin
                Mem.Lru.move_front l nodes.(i);
                model := i :: List.filter (fun x -> x <> i) !model
              end
          | _ (* pop_back *) -> (
              match (Mem.Lru.pop_back l, List.rev !model) with
              | None, [] -> ()
              | Some n, last :: _ ->
                  if Mem.Lru.value n <> last then ok := false
                  else
                    model := List.filter (fun x -> x <> last) !model
              | _ -> ok := false))
        ops;
      !ok && Mem.Lru.to_list l = !model)

(* Directed coverage for the sentinel-node representation: the edge
   cases are a single element (node's neighbours are both the sentinel)
   and head/tail churn, where a broken sentinel link would surface as a
   wrong to_list or a crash. *)
let lru_sentinel_edges () =
  let l = Mem.Lru.create () in
  let a = Mem.Lru.node "a" in
  (* Singleton: remove, re-insert, move_front (a no-op at the head). *)
  Mem.Lru.push_front l a;
  Mem.Lru.move_front l a;
  Alcotest.(check (list string)) "singleton move_front" [ "a" ]
    (Mem.Lru.to_list l);
  Mem.Lru.remove l a;
  Alcotest.(check bool) "empty again" true (Mem.Lru.is_empty l);
  check Alcotest.(option string) "pop_back on empty" None
    (Option.map Mem.Lru.value (Mem.Lru.pop_back l));
  (* Re-use the detached node: links must have been reset. *)
  Mem.Lru.push_back l a;
  Alcotest.(check (list string)) "detached node reusable" [ "a" ]
    (Mem.Lru.to_list l);
  (* Head/tail churn around the sentinel. *)
  let b = Mem.Lru.node "b" and c = Mem.Lru.node "c" in
  Mem.Lru.push_front l b;
  Mem.Lru.push_back l c;
  (* b a c *)
  Mem.Lru.move_front l c;
  (* c b a *)
  Mem.Lru.remove l b;
  (* c a *)
  Mem.Lru.move_front l a;
  (* a c *)
  check Alcotest.(option string) "tail after churn" (Some "c")
    (Option.map Mem.Lru.value (Mem.Lru.peek_back l));
  Alcotest.(check (list string)) "order after churn" [ "a"; "c" ]
    (Mem.Lru.to_list l);
  check Alcotest.int "length after churn" 2 (Mem.Lru.length l)

(* remove/move_front-heavy interleavings: every step revalidates the
   full front->back order, so a sentinel link broken by one operation is
   caught at the next step rather than only at the end. *)
let lru_sentinel_interleavings =
  QCheck.Test.make
    ~name:"lru: sentinel survives remove/move_front interleavings" ~count:300
    QCheck.(list (pair (int_range 0 2) (int_range 0 5)))
    (fun ops ->
      let l = Mem.Lru.create () in
      let nodes = Array.init 6 Mem.Lru.node in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          let inside = List.mem i !model in
          (match op with
          | 0 ->
              if inside then begin
                Mem.Lru.remove l nodes.(i);
                model := List.filter (fun x -> x <> i) !model
              end
              else begin
                Mem.Lru.push_front l nodes.(i);
                model := i :: !model
              end
          | 1 ->
              if inside then begin
                Mem.Lru.move_front l nodes.(i);
                model := i :: List.filter (fun x -> x <> i) !model
              end
          | _ -> (
              match (Mem.Lru.pop_back l, List.rev !model) with
              | None, [] -> ()
              | Some n, last :: _ when Mem.Lru.value n = last ->
                  model := List.filter (fun x -> x <> last) !model
              | _ -> ok := false));
          (* Invariants re-checked after *every* operation. *)
          if Mem.Lru.to_list l <> !model then ok := false;
          if Mem.Lru.length l <> List.length !model then ok := false)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Itbl: open-addressing int table                                      *)
(* ------------------------------------------------------------------ *)

let itbl_basic () =
  let t = Mem.Itbl.create () in
  check Alcotest.int "empty length" 0 (Mem.Itbl.length t);
  Mem.Itbl.set t 5 50;
  Mem.Itbl.set t 7 70;
  Mem.Itbl.set t 5 55;
  check Alcotest.int "replace keeps length" 2 (Mem.Itbl.length t);
  check Alcotest.int "find" 55 (Mem.Itbl.find t 5 ~default:(-1));
  check Alcotest.int "find absent" (-1) (Mem.Itbl.find t 99 ~default:(-1));
  check Alcotest.(option int) "find_opt" (Some 70) (Mem.Itbl.find_opt t 7);
  Alcotest.(check bool) "mem" true (Mem.Itbl.mem t 7);
  Mem.Itbl.remove t 7;
  Alcotest.(check bool) "removed" false (Mem.Itbl.mem t 7);
  Mem.Itbl.remove t 7;
  check Alcotest.int "idempotent remove" 1 (Mem.Itbl.length t);
  (* Negative keys are legal; only min_int is reserved. *)
  Mem.Itbl.set t (-3) 33;
  check Alcotest.int "negative key" 33 (Mem.Itbl.find t (-3) ~default:0);
  Alcotest.check_raises "reserved key"
    (Invalid_argument "Itbl.set: reserved key") (fun () ->
      Mem.Itbl.set t min_int 0);
  Mem.Itbl.clear t;
  check Alcotest.int "cleared" 0 (Mem.Itbl.length t);
  Alcotest.(check bool) "cleared mem" false (Mem.Itbl.mem t 5)

(* Differential test against the stdlib Hashtbl: random op streams with
   a small key range, starting from a deliberately tiny capacity so the
   stream grows the table several times past its initial size.  The op
   mix is delete-heavy (remove twice as likely as insert in half the
   streams via the op range), churning probe clusters enough that a
   backward-shift bug would leave an unreachable or duplicated key. *)
let itbl_model =
  QCheck.Test.make ~name:"itbl: agrees with Hashtbl under growth and churn"
    ~count:400
    QCheck.(list (pair (int_range 0 3) (int_range 0 199)))
    (fun ops ->
      let t = Mem.Itbl.create ~capacity:2 () in
      let h : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iteri
        (fun step (op, k) ->
          (match op with
          | 0 | 1 ->
              Mem.Itbl.set t k step;
              Hashtbl.replace h k step
          | 2 ->
              Mem.Itbl.remove t k;
              Hashtbl.remove h k
          | _ ->
              if Mem.Itbl.mem t k <> Hashtbl.mem h k then ok := false);
          if Mem.Itbl.length t <> Hashtbl.length h then ok := false;
          (* Spot-check a fixed probe of keys every step, so a key lost
             by a bad shift is caught near the op that lost it. *)
          for probe = 0 to 9 do
            let k = probe * 20 in
            let expect =
              match Hashtbl.find_opt h k with Some v -> v | None -> -1
            in
            if Mem.Itbl.find t k ~default:(-1) <> expect then ok := false
          done)
        ops;
      (* Full sweep at the end: every binding agrees in both directions. *)
      Hashtbl.iter
        (fun k v -> if Mem.Itbl.find t k ~default:(-1) <> v then ok := false)
        h;
      Mem.Itbl.iter
        (fun k v ->
          if Hashtbl.find_opt h k <> Some v then ok := false)
        t;
      !ok)

(* [keys_with_home t slot n] finds [n] distinct non-negative keys whose
   probe sequence starts at [slot] under [t]'s current capacity. *)
let keys_with_home t slot n =
  let rec go k acc found =
    if found = n then List.rev acc
    else if Mem.Itbl.home_slot t k = slot then go (k + 1) (k :: acc) (found + 1)
    else go (k + 1) acc found
  in
  go 0 [] 0

(* Backward-shift deletion across the wraparound boundary: keys homed at
   the last slot spill over index 0; removing the entry at the physical
   end of the array must shift the wrapped tail back correctly (the
   cyclic distance test `(j - h) land mask >= (j - hole) land mask`, not
   a plain comparison). *)
let itbl_wraparound_shift () =
  let t = Mem.Itbl.create ~capacity:8 () in
  let cap = Mem.Itbl.capacity t in
  let last = cap - 1 in
  (* Three keys homed at the last slot: they occupy last, 0, 1. *)
  let ks = keys_with_home t last 3 in
  List.iteri (fun i k -> Mem.Itbl.set t k (100 + i)) ks;
  (match ks with
  | [ k0; k1; k2 ] ->
      (* Remove the head of the cluster (physically at [last]): both
         wrapped entries must shift back across the boundary. *)
      Mem.Itbl.remove t k0;
      check Alcotest.int "wrapped k1 survives" 101
        (Mem.Itbl.find t k1 ~default:(-1));
      check Alcotest.int "wrapped k2 survives" 102
        (Mem.Itbl.find t k2 ~default:(-1));
      check Alcotest.int "length after wrap shift" 2 (Mem.Itbl.length t);
      (* Remove a middle element of the remaining wrapped cluster. *)
      Mem.Itbl.remove t k1;
      check Alcotest.int "k2 survives second shift" 102
        (Mem.Itbl.find t k2 ~default:(-1));
      Mem.Itbl.remove t k2;
      check Alcotest.int "empty again" 0 (Mem.Itbl.length t)
  | _ -> Alcotest.fail "expected 3 keys");
  (* Mixed homes around the boundary: one key homed at [last], one at 0.
     Removing the [last]-homed key must NOT pull the 0-homed key (which
     is already at its home slot) across the boundary. *)
  let t = Mem.Itbl.create ~capacity:8 () in
  let klast = List.hd (keys_with_home t last 1) in
  let kzero = List.hd (keys_with_home t 0 1) in
  Mem.Itbl.set t klast 1;
  Mem.Itbl.set t kzero 2;
  Mem.Itbl.remove t klast;
  check Alcotest.int "home-0 key not dragged" 2
    (Mem.Itbl.find t kzero ~default:(-1));
  check Alcotest.int "home slot preserved" 0 (Mem.Itbl.home_slot t kzero)

let itbl_growth () =
  let t = Mem.Itbl.create ~capacity:2 () in
  let cap0 = Mem.Itbl.capacity t in
  for k = 0 to 999 do
    Mem.Itbl.set t (k * 3) k
  done;
  Alcotest.(check bool) "grew" true (Mem.Itbl.capacity t > cap0);
  check Alcotest.int "length after growth" 1000 (Mem.Itbl.length t);
  let missing = ref 0 in
  for k = 0 to 999 do
    if Mem.Itbl.find t (k * 3) ~default:(-1) <> k then incr missing
  done;
  check Alcotest.int "no binding lost in rehash" 0 !missing

let slab_recycling () =
  let s = Mem.Itbl.Slab.create () in
  let a = Mem.Itbl.Slab.alloc s in
  let b = Mem.Itbl.Slab.alloc s in
  let c = Mem.Itbl.Slab.alloc s in
  check Alcotest.int "dense from zero" 0 a;
  check Alcotest.int "dense b" 1 b;
  check Alcotest.int "dense c" 2 c;
  check Alcotest.int "high" 3 (Mem.Itbl.Slab.high s);
  Mem.Itbl.Slab.release s b;
  check Alcotest.int "live after release" 2 (Mem.Itbl.Slab.live s);
  check Alcotest.int "LIFO recycle" b (Mem.Itbl.Slab.alloc s);
  check Alcotest.int "high unchanged by recycle" 3 (Mem.Itbl.Slab.high s)

(* ------------------------------------------------------------------ *)
(* Flru: flat arena-backed LRU lists                                    *)
(* ------------------------------------------------------------------ *)

let flru_basic () =
  let a = Mem.Flru.arena ~nodes:8 () in
  let l = Mem.Flru.list a in
  Alcotest.(check bool) "empty" true (Mem.Flru.is_empty l);
  Mem.Flru.push_front l 3;
  Mem.Flru.push_front l 1;
  Mem.Flru.push_back l 5;
  Alcotest.(check (list int)) "order" [ 1; 3; 5 ] (Mem.Flru.to_list l);
  check Alcotest.int "length" 3 (Mem.Flru.length l);
  Alcotest.(check bool) "mem" true (Mem.Flru.mem l 3);
  Alcotest.(check bool) "in_some_list" true (Mem.Flru.in_some_list a 3);
  Alcotest.(check bool) "detached node" false (Mem.Flru.in_some_list a 0);
  check Alcotest.(option int) "peek_back" (Some 5) (Mem.Flru.peek_back l);
  check Alcotest.(option int) "pop_back" (Some 5) (Mem.Flru.pop_back l);
  Mem.Flru.remove l 1;
  Alcotest.(check (list int)) "after removals" [ 3 ] (Mem.Flru.to_list l);
  Alcotest.(check bool) "1 detached" false (Mem.Flru.in_some_list a 1);
  (* Error discipline mirrors the boxed Lru. *)
  let l2 = Mem.Flru.list a in
  Alcotest.check_raises "double insert"
    (Invalid_argument "Flru: node already in a list") (fun () ->
      Mem.Flru.push_front l2 3);
  Alcotest.check_raises "wrong list"
    (Invalid_argument "Flru: node belongs to another list") (fun () ->
      Mem.Flru.remove l2 3);
  Alcotest.check_raises "not in any list"
    (Invalid_argument "Flru: node not in any list") (fun () ->
      Mem.Flru.remove l2 1)

(* Model test over two lists sharing one arena: moving nodes between
   lists is the cgroup promotion pattern, and a link bug in one list
   must not corrupt the other. *)
let flru_two_list_model =
  QCheck.Test.make ~name:"flru: two lists on one arena agree with models"
    ~count:300
    QCheck.(list (triple (int_range 0 3) (int_range 0 1) (int_range 0 7)))
    (fun ops ->
      let a = Mem.Flru.arena ~nodes:8 () in
      let lists = [| Mem.Flru.list a; Mem.Flru.list a |] in
      let models = [| ref []; ref [] |] in
      let ok = ref true in
      let where i =
        if List.mem i !(models.(0)) then Some 0
        else if List.mem i !(models.(1)) then Some 1
        else None
      in
      List.iter
        (fun (op, li, i) ->
          (match (op, where i) with
          | 0, None ->
              Mem.Flru.push_front lists.(li) i;
              models.(li) := i :: !(models.(li))
          | 1, None ->
              Mem.Flru.push_back lists.(li) i;
              models.(li) := !(models.(li)) @ [ i ]
          | 2, Some owner ->
              Mem.Flru.remove lists.(owner) i;
              models.(owner) := List.filter (fun x -> x <> i) !(models.(owner))
          | 3, _ -> (
              match (Mem.Flru.pop_back lists.(li), List.rev !(models.(li))) with
              | None, [] -> ()
              | Some n, last :: _ when n = last ->
                  models.(li) :=
                    List.filter (fun x -> x <> last) !(models.(li))
              | _ -> ok := false)
          | _ -> ());
          if Mem.Flru.to_list lists.(0) <> !(models.(0)) then ok := false;
          if Mem.Flru.to_list lists.(1) <> !(models.(1)) then ok := false;
          for n = 0 to 7 do
            if Mem.Flru.in_some_list a n <> (where n <> None) then ok := false
          done)
        ops;
      !ok)

let tests =
  [
    ( "mem:lru",
      [
        Alcotest.test_case "basic ops" `Quick lru_basic;
        Alcotest.test_case "membership errors" `Quick lru_membership_errors;
        Alcotest.test_case "sentinel edge cases" `Quick lru_sentinel_edges;
        qcheck lru_model;
        qcheck lru_sentinel_interleavings;
      ] );
    ( "mem:itbl",
      [
        Alcotest.test_case "basic ops" `Quick itbl_basic;
        Alcotest.test_case "wraparound backward shift" `Quick
          itbl_wraparound_shift;
        Alcotest.test_case "growth keeps bindings" `Quick itbl_growth;
        Alcotest.test_case "slab recycling" `Quick slab_recycling;
        qcheck itbl_model;
      ] );
    ( "mem:flru",
      [
        Alcotest.test_case "basic ops and errors" `Quick flru_basic;
        qcheck flru_two_list_model;
      ] );
  ]
