(* Tests for the intrusive LRU list, including a model-based property
   test against a reference list implementation. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck

let lru_basic () =
  let l = Mem.Lru.create () in
  Alcotest.(check bool) "empty" true (Mem.Lru.is_empty l);
  let a = Mem.Lru.node "a" and b = Mem.Lru.node "b" and c = Mem.Lru.node "c" in
  Mem.Lru.push_front l a;
  Mem.Lru.push_front l b;
  Mem.Lru.push_back l c;
  (* order front->back: b a c *)
  Alcotest.(check (list string)) "order" [ "b"; "a"; "c" ] (Mem.Lru.to_list l);
  check Alcotest.int "length" 3 (Mem.Lru.length l);
  Alcotest.(check bool) "mem" true (Mem.Lru.mem l a);
  check Alcotest.(option string) "peek back" (Some "c")
    (Option.map Mem.Lru.value (Mem.Lru.peek_back l));
  Mem.Lru.move_front l c;
  Alcotest.(check (list string)) "after move" [ "c"; "b"; "a" ] (Mem.Lru.to_list l);
  check Alcotest.(option string) "pop back" (Some "a")
    (Option.map Mem.Lru.value (Mem.Lru.pop_back l));
  Mem.Lru.remove l b;
  Alcotest.(check (list string)) "after removals" [ "c" ] (Mem.Lru.to_list l);
  Alcotest.(check bool) "b detached" false (Mem.Lru.in_some_list b)

let lru_membership_errors () =
  let l1 = Mem.Lru.create () and l2 = Mem.Lru.create () in
  let n = Mem.Lru.node 1 in
  Mem.Lru.push_front l1 n;
  Alcotest.check_raises "double insert" (Invalid_argument "Lru: node already in a list")
    (fun () -> Mem.Lru.push_front l2 n);
  Alcotest.check_raises "wrong list" (Invalid_argument "Lru: node belongs to another list")
    (fun () -> Mem.Lru.remove l2 n);
  Mem.Lru.remove l1 n;
  Alcotest.check_raises "not in list" (Invalid_argument "Lru: node not in any list")
    (fun () -> Mem.Lru.remove l1 n);
  Alcotest.(check bool) "mem false" false (Mem.Lru.mem l1 n)

(* Model-based test: ops interpreted against both the Lru and a plain
   list model keyed by node index. *)
let lru_model =
  QCheck.Test.make ~name:"lru: agrees with a list model" ~count:300
    QCheck.(list (pair (int_range 0 4) (int_range 0 9)))
    (fun ops ->
      let l = Mem.Lru.create () in
      let nodes = Array.init 10 Mem.Lru.node in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          let inside = List.mem i !model in
          match op with
          | 0 (* push_front *) ->
              if not inside then begin
                Mem.Lru.push_front l nodes.(i);
                model := i :: !model
              end
          | 1 (* push_back *) ->
              if not inside then begin
                Mem.Lru.push_back l nodes.(i);
                model := !model @ [ i ]
              end
          | 2 (* remove *) ->
              if inside then begin
                Mem.Lru.remove l nodes.(i);
                model := List.filter (fun x -> x <> i) !model
              end
          | 3 (* move_front *) ->
              if inside then begin
                Mem.Lru.move_front l nodes.(i);
                model := i :: List.filter (fun x -> x <> i) !model
              end
          | _ (* pop_back *) -> (
              match (Mem.Lru.pop_back l, List.rev !model) with
              | None, [] -> ()
              | Some n, last :: _ ->
                  if Mem.Lru.value n <> last then ok := false
                  else
                    model := List.filter (fun x -> x <> last) !model
              | _ -> ok := false))
        ops;
      !ok && Mem.Lru.to_list l = !model)

(* Directed coverage for the sentinel-node representation: the edge
   cases are a single element (node's neighbours are both the sentinel)
   and head/tail churn, where a broken sentinel link would surface as a
   wrong to_list or a crash. *)
let lru_sentinel_edges () =
  let l = Mem.Lru.create () in
  let a = Mem.Lru.node "a" in
  (* Singleton: remove, re-insert, move_front (a no-op at the head). *)
  Mem.Lru.push_front l a;
  Mem.Lru.move_front l a;
  Alcotest.(check (list string)) "singleton move_front" [ "a" ]
    (Mem.Lru.to_list l);
  Mem.Lru.remove l a;
  Alcotest.(check bool) "empty again" true (Mem.Lru.is_empty l);
  check Alcotest.(option string) "pop_back on empty" None
    (Option.map Mem.Lru.value (Mem.Lru.pop_back l));
  (* Re-use the detached node: links must have been reset. *)
  Mem.Lru.push_back l a;
  Alcotest.(check (list string)) "detached node reusable" [ "a" ]
    (Mem.Lru.to_list l);
  (* Head/tail churn around the sentinel. *)
  let b = Mem.Lru.node "b" and c = Mem.Lru.node "c" in
  Mem.Lru.push_front l b;
  Mem.Lru.push_back l c;
  (* b a c *)
  Mem.Lru.move_front l c;
  (* c b a *)
  Mem.Lru.remove l b;
  (* c a *)
  Mem.Lru.move_front l a;
  (* a c *)
  check Alcotest.(option string) "tail after churn" (Some "c")
    (Option.map Mem.Lru.value (Mem.Lru.peek_back l));
  Alcotest.(check (list string)) "order after churn" [ "a"; "c" ]
    (Mem.Lru.to_list l);
  check Alcotest.int "length after churn" 2 (Mem.Lru.length l)

(* remove/move_front-heavy interleavings: every step revalidates the
   full front->back order, so a sentinel link broken by one operation is
   caught at the next step rather than only at the end. *)
let lru_sentinel_interleavings =
  QCheck.Test.make
    ~name:"lru: sentinel survives remove/move_front interleavings" ~count:300
    QCheck.(list (pair (int_range 0 2) (int_range 0 5)))
    (fun ops ->
      let l = Mem.Lru.create () in
      let nodes = Array.init 6 Mem.Lru.node in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          let inside = List.mem i !model in
          (match op with
          | 0 ->
              if inside then begin
                Mem.Lru.remove l nodes.(i);
                model := List.filter (fun x -> x <> i) !model
              end
              else begin
                Mem.Lru.push_front l nodes.(i);
                model := i :: !model
              end
          | 1 ->
              if inside then begin
                Mem.Lru.move_front l nodes.(i);
                model := i :: List.filter (fun x -> x <> i) !model
              end
          | _ -> (
              match (Mem.Lru.pop_back l, List.rev !model) with
              | None, [] -> ()
              | Some n, last :: _ when Mem.Lru.value n = last ->
                  model := List.filter (fun x -> x <> last) !model
              | _ -> ok := false));
          (* Invariants re-checked after *every* operation. *)
          if Mem.Lru.to_list l <> !model then ok := false;
          if Mem.Lru.length l <> List.length !model then ok := false)
        ops;
      !ok)

let tests =
  [
    ( "mem:lru",
      [
        Alcotest.test_case "basic ops" `Quick lru_basic;
        Alcotest.test_case "membership errors" `Quick lru_membership_errors;
        Alcotest.test_case "sentinel edge cases" `Quick lru_sentinel_edges;
        qcheck lru_model;
        qcheck lru_sentinel_interleavings;
      ] );
  ]
