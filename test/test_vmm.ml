(* Tests for the workload combinators and the machine executor. *)

let check = Alcotest.check
module W = Vmm.Workload

(* ------------------------------------------------------------------ *)
(* Workload combinators                                                *)
(* ------------------------------------------------------------------ *)

let drain_thread th =
  let rec go acc =
    match th () with None -> List.rev acc | Some op -> go (op :: acc)
  in
  go []

let compute_n = function W.Compute n -> n | _ -> -1

let of_list_yields_in_order () =
  let th = W.of_list [ W.Compute 1; W.Compute 2 ] in
  Alcotest.(check (list int)) "order" [ 1; 2 ]
    (List.map compute_n (drain_thread th));
  Alcotest.(check bool) "stays finished" true (th () = None)

let of_fun_indexes () =
  let th = W.of_fun (fun i -> if i < 3 then Some (W.Compute i) else None) in
  Alcotest.(check (list int)) "indexed" [ 0; 1; 2 ]
    (List.map compute_n (drain_thread th))

let concat_sequences () =
  let th = W.concat (W.of_list [ W.Compute 1 ]) (W.of_list [ W.Compute 2 ]) in
  Alcotest.(check (list int)) "a then b" [ 1; 2 ]
    (List.map compute_n (drain_thread th))

let repeat_rebuilds () =
  let round = ref 0 in
  let make () =
    incr round;
    W.of_list [ W.Compute !round ]
  in
  let th = W.repeat 3 make in
  Alcotest.(check (list int)) "three rounds" [ 1; 2; 3 ]
    (List.map compute_n (drain_thread th));
  check Alcotest.int "zero repeat" 0 (List.length (drain_thread (W.repeat 0 make)))

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let tiny_workload ~marks =
  {
    W.name = "tiny";
    setup =
      (fun os _rng ->
        let f = Guest.Guestos.create_file os ~blocks:64 in
        let r = Guest.Guestos.alloc_region os ~pages:16 in
        let ops =
          List.concat
            [
              List.init 64 (fun i -> W.File_read (f, i));
              List.init 16 (fun i -> W.Overwrite (r, i));
              [ W.Compute 1_000; W.Mark (fun () -> marks := !marks + 1) ];
            ]
        in
        {
          W.threads = [ W.of_list ops ];
          cleanup = (fun () -> Guest.Guestos.free_region os r);
        });
  }

let machine_runs_tiny_workload () =
  let marks = ref 0 in
  let guest =
    {
      (Vmm.Config.default_guest ~workload:(tiny_workload ~marks)) with
      mem_mb = 32;
      data_mb = 16;
    }
  in
  let cfg =
    { (Vmm.Config.default ~guests:[ guest ]) with host_mem_mb = 128 }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  (match result.Vmm.Machine.guests.(0).Vmm.Machine.runtime with
  | Some rt -> Alcotest.(check bool) "positive runtime" true (rt > 0)
  | None -> Alcotest.fail "workload did not finish");
  check Alcotest.int "mark fired" 1 !marks;
  Alcotest.(check bool) "no time limit hit" false result.Vmm.Machine.hit_time_limit;
  Alcotest.(check bool) "not oomed" false result.Vmm.Machine.guests.(0).Vmm.Machine.oomed

let machine_two_guests_phased () =
  let marks = ref 0 in
  let mk start_after =
    {
      (Vmm.Config.default_guest ~workload:(tiny_workload ~marks)) with
      mem_mb = 32;
      data_mb = 16;
      start_after;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ mk Sim.Time.zero; mk (Sim.Time.sec 1) ]) with
      host_mem_mb = 256;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  check Alcotest.int "both marked" 2 !marks;
  Array.iter
    (fun g ->
      match g.Vmm.Machine.runtime with
      | Some _ -> ()
      | None -> Alcotest.fail "a guest did not finish")
    result.Vmm.Machine.guests

let machine_vcpus_overlap_io () =
  (* Two compute+I/O threads on 2 VCPUs overlap each other's disk waits
     and must beat the 1-VCPU serialization. *)
  let mk_workload () =
    {
      W.name = "2thr";
      setup =
        (fun os _rng ->
          let f = Guest.Guestos.create_file os ~blocks:512 in
          let mk_thread t =
            W.of_fun (fun i ->
                if i >= 32 then None
                else if i land 1 = 0 then
                  (* Strided reads in a private half of the file. *)
                  Some (W.File_read (f, (t * 256) + (i * 4)))
                else Some (W.Compute 3_000))
          in
          { W.threads = [ mk_thread 0; mk_thread 1 ]; cleanup = (fun () -> ()) });
    }
  in
  let run vcpus =
    let guest =
      {
        (Vmm.Config.default_guest ~workload:(mk_workload ())) with
        mem_mb = 32;
        data_mb = 16;
        vcpus;
      }
    in
    let cfg = { (Vmm.Config.default ~guests:[ guest ]) with host_mem_mb = 128 } in
    let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
    Option.get result.Vmm.Machine.guests.(0).Vmm.Machine.runtime
  in
  let t1 = run 1 and t2 = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 VCPUs (%d) not slower than 1 (%d)" t2 t1)
    true (t2 <= t1)

let machine_time_limit () =
  let forever =
    {
      W.name = "forever";
      setup =
        (fun _os _rng ->
          {
            W.threads = [ W.of_fun (fun _ -> Some (W.Compute 1_000_000)) ];
            cleanup = (fun () -> ());
          });
    }
  in
  let guest =
    { (Vmm.Config.default_guest ~workload:forever) with mem_mb = 32; data_mb = 16 }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      host_mem_mb = 128;
      time_limit = Sim.Time.sec 5;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  Alcotest.(check bool) "limit hit" true result.Vmm.Machine.hit_time_limit;
  Alcotest.(check bool) "no runtime" true
    (result.Vmm.Machine.guests.(0).Vmm.Machine.runtime = None)

let machine_runs_twice_rejected () =
  let marks = ref 0 in
  let guest =
    {
      (Vmm.Config.default_guest ~workload:(tiny_workload ~marks)) with
      mem_mb = 32;
      data_mb = 16;
    }
  in
  let cfg = { (Vmm.Config.default ~guests:[ guest ]) with host_mem_mb = 128 } in
  let machine = Vmm.Machine.build cfg in
  ignore (Vmm.Machine.run machine);
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Machine.run: already ran") (fun () ->
      ignore (Vmm.Machine.run machine))

let config_names () =
  let w = tiny_workload ~marks:(ref 0) in
  let g = Vmm.Config.default_guest ~workload:w in
  let base = Vmm.Config.default ~guests:[ g ] in
  check Alcotest.string "baseline" "baseline" (Vmm.Config.name_of base);
  check Alcotest.string "vswapper" "vswapper"
    (Vmm.Config.name_of { base with vs = Vswapper.Vsconfig.vswapper });
  check Alcotest.string "balloon" "balloon+baseline"
    (Vmm.Config.name_of
       { base with guests = [ { g with balloon_static_mb = Some 16 } ] })

(* Differential property: with the disk reduced to a single queue of
   depth 1 and the per-guest in-flight bound at 1 (in both modes — the
   bound serializes readahead-initiated target faults, so it must match
   on each side), the async page-fault path degenerates to the
   synchronous one: a single-threaded guest has nothing to overlap, so
   both modes must produce identical runtimes and identical I/O
   accounting for any workload shape. *)
let async_sync_differential =
  QCheck.Test.make
    ~name:"machine: async (inflight=1, 1 queue) = sync for 1-thread guests"
    ~count:15
    QCheck.(
      triple (int_range 16 32) (int_range 8 16) (int_range 1 2))
    (fun (file_mb, limit_mb, iterations) ->
      let run ~async =
        let workload = Workloads.Sysbench.workload ~iterations ~file_mb () in
        let guest =
          {
            (Vmm.Config.default_guest ~workload) with
            mem_mb = 48;
            resident_limit_mb = Some limit_mb;
            warm_all = true;
            data_mb = file_mb + 16;
          }
        in
        let cfg =
          {
            (Vmm.Config.default ~guests:[ guest ]) with
            host_mem_mb = 128;
            host_swap_mb = 96;
            async_faults = async;
            disk =
              {
                Storage.Disk.default_config with
                num_queues = 1;
                per_queue_depth = 1;
              };
            hbase =
              { Host.Hconfig.default with max_inflight_faults = 1 };
          }
        in
        let r = Vmm.Machine.run (Vmm.Machine.build cfg) in
        let s = r.Vmm.Machine.stats in
        ( Array.map (fun g -> g.Vmm.Machine.runtime) r.Vmm.Machine.guests,
          ( s.Metrics.Stats.disk_ops,
            s.Metrics.Stats.disk_sectors_read,
            s.Metrics.Stats.disk_sectors_written,
            s.Metrics.Stats.host_swapins,
            s.Metrics.Stats.host_swapouts ),
          ( s.Metrics.Stats.guest_context_faults,
            s.Metrics.Stats.host_context_faults,
            s.Metrics.Stats.stale_reads,
            s.Metrics.Stats.false_reads ) )
      in
      run ~async:false = run ~async:true)

let tests =
  [
    ( "vmm:workload",
      [
        Alcotest.test_case "of_list" `Quick of_list_yields_in_order;
        Alcotest.test_case "of_fun" `Quick of_fun_indexes;
        Alcotest.test_case "concat" `Quick concat_sequences;
        Alcotest.test_case "repeat" `Quick repeat_rebuilds;
      ] );
    ( "vmm:machine",
      [
        Alcotest.test_case "tiny workload" `Quick machine_runs_tiny_workload;
        Alcotest.test_case "two phased guests" `Quick machine_two_guests_phased;
        Alcotest.test_case "vcpu overlap" `Quick machine_vcpus_overlap_io;
        Alcotest.test_case "time limit" `Quick machine_time_limit;
        Alcotest.test_case "single run" `Quick machine_runs_twice_rejected;
        Alcotest.test_case "config names" `Quick config_names;
        Test_util.qcheck async_sync_differential;
      ] );
  ]
