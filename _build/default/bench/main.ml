(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation section, printing the same rows/series the paper reports
   (paper values alongside, for shape comparison):

     dune exec bench/main.exe                   # full scale
     VSWAPPER_BENCH_SCALE=0.25 dune exec bench/main.exe
     dune exec bench/main.exe -- fig9 fig10     # a subset

   `--micro` instead runs Bechamel microbenchmarks of the simulator's
   hot paths — one Test.make per experiment (a small-scale end-to-end
   run) plus the core data-structure operations — and prints their
   measured costs. *)

let scale () =
  match Sys.getenv_opt "VSWAPPER_BENCH_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

(* ------------------------------------------------------------------ *)
(* Experiment reproduction mode                                        *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let scale = scale () in
  let chosen =
    match ids with
    | [] -> Experiments.Registry.all
    | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S (try: %s)\n" id
                  (String.concat " " (Experiments.Registry.ids ()));
                None)
          ids
  in
  Printf.printf
    "VSwapper (ASPLOS'14) reproduction bench - scale %.2f, %d experiments\n\n"
    scale (List.length chosen);
  List.iter
    (fun e ->
      let t0 = Sys.time () in
      let out = e.Experiments.Exp.run ~scale in
      let dt = Sys.time () -. t0 in
      print_endline out;
      Printf.printf "[%s completed in %.1fs cpu time]\n\n%!"
        e.Experiments.Exp.id dt)
    chosen

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmark mode                                        *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let engine_bench =
  Test.make ~name:"sim: schedule+fire 1000 events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Sim.Engine.schedule_at e (Sim.Time.us i) (fun () -> ()))
         done;
         Sim.Engine.run e))

let heap_bench =
  Test.make ~name:"sim: heap push/pop 1000"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create () in
         for i = 1 to 1000 do
           Sim.Heap.add h ~priority:(i * 7919 mod 1000) i
         done;
         while Sim.Heap.pop_min h <> None do
           ()
         done))

let mapper_bench =
  Test.make ~name:"core: mapper track/untrack 1000"
    (Staged.stage (fun () ->
         let m = Vswapper.Mapper.create ~stats:(Metrics.Stats.create ()) () in
         for gpa = 0 to 999 do
           Vswapper.Mapper.track m ~gpa ~disk:0 ~block:gpa ~version:0
         done;
         for gpa = 0 to 999 do
           Vswapper.Mapper.untrack m ~gpa
         done))

let preventer_bench =
  Test.make ~name:"core: preventer 8-store page completion"
    (Staged.stage (fun () ->
         let p =
           Vswapper.Preventer.create ~stats:(Metrics.Stats.create ())
             ~window:(Sim.Time.ms 1) ~max_buffers:32
         in
         for gpa = 0 to 31 do
           for j = 0 to 7 do
             ignore
               (Vswapper.Preventer.on_write p ~now:0 ~gpa ~offset:(j * 512)
                  ~len:512)
           done
         done))

let swap_alloc_bench =
  Test.make ~name:"storage: swap alloc/free 1000"
    (Staged.stage (fun () ->
         let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:2048 in
         let slots =
           List.init 1000 (fun i ->
               Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon i)))
         in
         List.iter (Storage.Swap_area.free sa) slots))

(* One end-to-end Test.make per paper table/figure, at a tiny scale so
   Bechamel can iterate them. *)
let experiment_bench (e : Experiments.Exp.t) =
  Test.make ~name:("experiment: " ^ e.Experiments.Exp.id)
    (Staged.stage (fun () -> ignore (e.Experiments.Exp.run ~scale:0.06)))

let run_micro () =
  let tests =
    [
      engine_bench; heap_bench; mapper_bench; preventer_bench;
      swap_alloc_bench;
    ]
    @ List.map experiment_bench
        (List.filter
           (fun e ->
             (* The multi-guest sweeps are too heavy to iterate. *)
             not (List.mem e.Experiments.Exp.id [ "fig4"; "fig14" ]))
           Experiments.Registry.all)
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"micro" [ test ])
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] -> Printf.printf "%-52s %14.1f ns/run\n%!" name v
          | Some _ | None -> Printf.printf "%-52s (no estimate)\n%!" name)
        analyzed)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--micro" ] -> run_micro ()
  | ids -> run_experiments ids
