lib/host/hostmm.ml: Array Cgroup Float Frames Hashtbl Hconfig List Metrics Option Printf Sim Storage Vswapper
