lib/host/frames.ml: Array Bytes List Mem Printf Storage
