lib/host/cgroup.mli: Mem
