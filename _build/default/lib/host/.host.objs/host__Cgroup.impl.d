lib/host/cgroup.ml: Mem Option
