lib/host/hconfig.ml: Storage
