lib/host/frames.mli: Mem Storage
