lib/host/hconfig.mli:
