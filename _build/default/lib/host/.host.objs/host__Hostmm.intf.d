lib/host/hostmm.mli: Hconfig Metrics Sim Storage Vswapper
