lib/vmm/config.ml: Balloon Host List Sim Storage Vswapper Workload
