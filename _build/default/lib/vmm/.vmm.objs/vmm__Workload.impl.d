lib/vmm/workload.ml: Guest Sim
