lib/vmm/machine.mli: Config Guest Host Metrics Sim Storage
