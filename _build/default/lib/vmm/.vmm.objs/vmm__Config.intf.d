lib/vmm/config.mli: Balloon Host Sim Storage Vswapper Workload
