lib/vmm/workload.mli: Guest Sim
