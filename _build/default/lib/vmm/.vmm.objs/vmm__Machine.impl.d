lib/vmm/machine.ml: Array Balloon Config Guest Host List Metrics Option Queue Sim Storage Workload
