(** Machine assembly and execution.

    Builds the whole simulated testbed from a {!Config.t} — engine, one
    shared physical disk (hypervisor region, then one image per guest,
    then the host swap area), the hypervisor, the guests — and drives it:

    boot (+ optional full-memory warmup) -> static balloon convergence ->
    disk settle -> epoch -> each guest's workload at its offset ->
    run to completion (or the time limit).

    Per-guest VCPU scheduling gives Linux-style asynchronous page
    faults: a thread blocking on I/O frees its VCPU for the guest's
    other ready threads. *)

type t

type guest_result = {
  runtime : Sim.Time.t option;  (** None if the workload was OOM-killed *)
  oomed : bool;
}

type result = {
  guests : guest_result array;
  stats : Metrics.Stats.t;
  wall : Sim.Time.t;  (** virtual time when the run ended *)
  hit_time_limit : bool;
}

val build : Config.t -> t

(** {2 Accessors for probes and tests; valid after [build]} *)

val engine : t -> Sim.Engine.t
val stats : t -> Metrics.Stats.t
val host : t -> Host.Hostmm.t
val disk : t -> Storage.Disk.t

(** [os t i] is guest [i]'s OS (by index in the config's guest list). *)
val os : t -> int -> Guest.Guestos.t

val n_guests : t -> int

(** [run t] executes the machine to completion and returns the results.
    May be called once. *)
val run : t -> result
