let sector_bytes = 512
let page_bytes = 4096
let sectors_per_page = page_bytes / sector_bytes
let pages_of_mb mb = mb * 256
let sectors_of_pages n = n * sectors_per_page
let mb_of_pages n = n / 256
