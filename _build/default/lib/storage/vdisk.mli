(** Guest virtual-disk image.

    A raw image laid out contiguously on the physical disk, addressed in
    4 KiB blocks (the Mapper requires page-aligned disk requests, paper
    Section 4.1 "Page Alignment").  Every block stores a {!Content.t} tag
    and a version counter bumped on writes, so (a) staleness of tracked
    pages is detectable and (b) data written by the guest — including to
    its own swap partition, which is just a block range the guest
    reserves — reads back as exactly what was written, letting tests
    chain correctness through arbitrary I/O. *)

type t

(** [create ~id ~base_sector ~nblocks] makes an image whose blocks
    initially hold their pristine image data ([Content.Block] at version
    0). *)
val create : id:int -> base_sector:int -> nblocks:int -> t

val id : t -> int
val nblocks : t -> int

(** [sector_of_block t b] is the physical sector where block [b] starts. *)
val sector_of_block : t -> int -> int

(** [content t b] is the data currently stored in block [b]. *)
val content : t -> int -> Content.t

(** [version t b] is the number of writes block [b] has received. *)
val version : t -> int -> int

(** [write t b c] overwrites block [b] with [c]; returns the new version. *)
val write : t -> int -> Content.t -> int

(** [end_sector t] is the first physical sector past the image. *)
val end_sector : t -> int
