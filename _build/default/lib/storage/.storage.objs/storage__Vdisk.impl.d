lib/storage/vdisk.ml: Array Content Geom Printf
