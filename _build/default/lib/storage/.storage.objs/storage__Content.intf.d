lib/storage/content.mli: Format
