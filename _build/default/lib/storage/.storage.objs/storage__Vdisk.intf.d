lib/storage/vdisk.mli: Content
