lib/storage/swap_area.mli: Content
