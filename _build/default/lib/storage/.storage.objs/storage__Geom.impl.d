lib/storage/geom.ml:
