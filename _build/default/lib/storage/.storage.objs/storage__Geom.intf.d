lib/storage/geom.mli:
