lib/storage/disk.mli: Metrics Sim
