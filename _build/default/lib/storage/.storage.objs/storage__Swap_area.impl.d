lib/storage/swap_area.ml: Array Content Geom Printf
