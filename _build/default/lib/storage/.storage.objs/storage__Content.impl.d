lib/storage/content.ml: Format Hashtbl
