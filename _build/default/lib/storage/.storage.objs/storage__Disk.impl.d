lib/storage/disk.ml: Float List Metrics Queue Sim
