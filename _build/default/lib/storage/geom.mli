(** Disk and memory geometry constants.

    The whole simulator works in 4 KiB pages; the virtual-disk logical
    block size is also 4 KiB (the Mapper requires page-aligned disk
    requests, see paper Section 4.1 "Page Alignment").  Sector counts are
    only used for traffic statistics, matching the paper's figures that
    report sectors. *)

val sector_bytes : int  (* 512 *)
val page_bytes : int  (* 4096 *)
val sectors_per_page : int  (* 8 *)

(** [pages_of_mb mb] is the page count of [mb] mebibytes. *)
val pages_of_mb : int -> int

(** [sectors_of_pages n] is [n * sectors_per_page]. *)
val sectors_of_pages : int -> int

(** [mb_of_pages n] is the (rounded-down) MiB size of [n] pages. *)
val mb_of_pages : int -> int
