(** Abstract page/block contents.

    Instead of carrying real bytes, every memory frame, swap slot and disk
    block holds a small tag describing what data it logically contains.
    This is enough to (a) decide whether a page is identical to its origin
    disk block (the silent-write test), and (b) machine-check that the
    guest never observes stale or corrupted data — the property the
    Mapper's consistency protocol must preserve. *)

type t =
  | Zero  (** a zero-filled page *)
  | Anon of int  (** anonymous data; the int is a unique generation *)
  | Block of { disk : int; block : int; version : int }
      (** the contents of virtual-disk [disk], block [block], as of write
          [version] of that block *)

val equal : t -> t -> bool

(** [fresh_anon ()] returns a new, globally unique anonymous tag. *)
val fresh_anon : unit -> t

(** [fresh_gen ()] returns a new, globally unique write generation (same
    counter as [fresh_anon]). *)
val fresh_gen : unit -> int

(** [combine base gen] deterministically derives the tag of a page whose
    old content was [base] and which was then partially overwritten by
    write generation [gen].  A host that "merges" without actually
    reading the old content produces a different tag, so shadow-model
    tests catch the bug. *)
val combine : t -> int -> t

(** [reset_anon_counter ()] resets the generation counter (tests only). *)
val reset_anon_counter : unit -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
