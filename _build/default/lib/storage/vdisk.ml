type t = {
  id : int;
  base_sector : int;
  nblocks : int;
  versions : int array;
  (* [None] means the block still holds its pristine image data, which we
     represent as [Block {disk; block; version = 0}] without storing it. *)
  overwritten : Content.t option array;
}

let create ~id ~base_sector ~nblocks =
  if nblocks <= 0 then invalid_arg "Vdisk.create: nblocks must be positive";
  {
    id;
    base_sector;
    nblocks;
    versions = Array.make nblocks 0;
    overwritten = Array.make nblocks None;
  }

let id t = t.id
let nblocks t = t.nblocks

let check t b =
  if b < 0 || b >= t.nblocks then
    invalid_arg (Printf.sprintf "Vdisk %d: block %d out of range" t.id b)

let sector_of_block t b =
  check t b;
  t.base_sector + (b * Geom.sectors_per_page)

let content t b =
  check t b;
  match t.overwritten.(b) with
  | Some c -> c
  | None -> Content.Block { disk = t.id; block = b; version = 0 }

let version t b =
  check t b;
  t.versions.(b)

let write t b c =
  check t b;
  t.overwritten.(b) <- Some c;
  t.versions.(b) <- t.versions.(b) + 1;
  t.versions.(b)

let end_sector t = t.base_sector + (t.nblocks * Geom.sectors_per_page)
