(** Doubly-linked LRU list with O(1) insert/remove/move.

    Nodes are allocated once per page and can migrate between lists (e.g.
    the active and inactive lists of a reclaim pipeline).  The front of
    the list is the most-recently-used end; eviction pops from the back. *)

type 'a t
type 'a node

(** [node v] makes a detached node carrying [v]. *)
val node : 'a -> 'a node

val value : 'a node -> 'a

(** [in_some_list n] is true if some list currently holds [n]. *)
val in_some_list : 'a node -> bool

(** [mem t n] is true if [t] specifically holds [n]. O(1). *)
val mem : 'a t -> 'a node -> bool

val create : unit -> 'a t

(** [push_front t n] inserts a detached node at the MRU end.  Raises
    [Invalid_argument] if [n] is already in a list. *)
val push_front : 'a t -> 'a node -> unit

(** [push_back t n] inserts a detached node at the LRU end. *)
val push_back : 'a t -> 'a node -> unit

(** [remove t n] detaches [n] from [t].  Raises [Invalid_argument] if [n]
    is not in [t]. *)
val remove : 'a t -> 'a node -> unit

(** [move_front t n] is [remove] followed by [push_front]. *)
val move_front : 'a t -> 'a node -> unit

(** [pop_back t] removes and returns the LRU node, or [None] if empty. *)
val pop_back : 'a t -> 'a node option

(** [peek_back t] is the LRU node without removal. *)
val peek_back : 'a t -> 'a node option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [iter t f] visits values from MRU to LRU.  [f] must not mutate [t]. *)
val iter : 'a t -> ('a -> unit) -> unit

(** [to_list t] lists values from MRU to LRU. *)
val to_list : 'a t -> 'a list
