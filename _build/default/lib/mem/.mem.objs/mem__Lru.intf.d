lib/mem/lru.mli:
