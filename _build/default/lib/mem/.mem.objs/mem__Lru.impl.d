lib/mem/lru.ml: List
