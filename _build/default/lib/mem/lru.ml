type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable length : int;
  id : int;  (* distinguishes lists for membership checks *)
}

let next_id = ref 0

let create () =
  incr next_id;
  { front = None; back = None; length = 0; id = !next_id }

let node value = { value; prev = None; next = None; owner = None }
let value n = n.value
let in_some_list n = n.owner <> None

let same_list a b = a.id = b.id

let mem t n =
  match n.owner with Some o -> same_list o t | None -> false

let check_detached n =
  if n.owner <> None then invalid_arg "Lru: node already in a list"

let check_member t n =
  match n.owner with
  | Some o when same_list o t -> ()
  | Some _ -> invalid_arg "Lru: node belongs to another list"
  | None -> invalid_arg "Lru: node not in any list"

let push_front t n =
  check_detached n;
  n.owner <- Some t;
  n.prev <- None;
  n.next <- t.front;
  (match t.front with
  | Some f -> f.prev <- Some n
  | None -> t.back <- Some n);
  t.front <- Some n;
  t.length <- t.length + 1

let push_back t n =
  check_detached n;
  n.owner <- Some t;
  n.next <- None;
  n.prev <- t.back;
  (match t.back with
  | Some b -> b.next <- Some n
  | None -> t.front <- Some n);
  t.back <- Some n;
  t.length <- t.length + 1

let remove t n =
  check_member t n;
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.front <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- None;
  t.length <- t.length - 1

let move_front t n =
  remove t n;
  push_front t n

let pop_back t =
  match t.back with
  | None -> None
  | Some n ->
      remove t n;
      Some n

let peek_back t = t.back
let length t = t.length
let is_empty t = t.length = 0

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.value;
        go next
  in
  go t.front

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc
