(* Figure 12: Kernbench (kernel compile) across the memory sweep:
   (a) runtime; (b) pages the Preventer remapped (false reads avoided). *)

let configs =
  [ Exp.Baseline; Exp.Mapper_only; Exp.Vswapper_full; Exp.Balloon_baseline ]

let mems = [ 512; 448; 384; 320; 256; 192 ]

let run_point ~scale kind ~actual_mb =
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale actual_mb in
  let workload =
    Workloads.Kernbench.workload ~threads:2
      ~units:(Exp.scaled_int scale 800 ~min:60)
      ~tree_mb:(Exp.mb scale 280) ~compute_us:12_000 ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      vcpus = 2;
      resident_limit_mb = Some limit_mb;
      balloon_static_mb = (if Exp.ballooned kind then Some limit_mb else None);
      warm_all = true;
      data_mb = Exp.mb scale 280 + 128;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  (out.Exp.runtime_s, out.Exp.stats.Metrics.Stats.preventer_remaps)

let run ~scale =
  let results =
    List.map
      (fun kind ->
        (kind, List.map (fun m -> run_point ~scale kind ~actual_mb:m) mems))
      configs
  in
  let x = List.map (fun m -> string_of_int m ^ "MB") mems in
  let runtime_tbl =
    Metrics.Table.render_series
      ~title:
        "(a) runtime [s] -- paper at 192MB: baseline +15%, balloon +5%, \
         vswapper ~+1% over the 512MB runtime"
      ~x_label:"actual-mem" ~x
      ~cols:
        (List.map
           (fun (kind, outs) -> (Exp.config_name kind, List.map fst outs))
           results)
  in
  let remap_tbl =
    Metrics.Table.render_series
      ~title:
        "(b) Preventer remaps [count] -- paper: up to 80K false reads \
         eliminated, cutting guest major faults by up to 30%"
      ~x_label:"actual-mem" ~x
      ~cols:
        (List.map
           (fun (kind, outs) ->
             ( Exp.config_name kind,
               List.map (fun (_, r) -> Some (float_of_int r)) outs ))
           results)
  in
  "kernbench (2 threads) in a 512MB guest\n" ^ runtime_tbl ^ "\n" ^ remap_tbl

let exp : Exp.t =
  let title = "Kernel build under shrinking memory" in
  let paper_claim =
    "at 192MB: baseline 15% slower, ballooning 5%, vswapper ~1%; the \
     Preventer eliminates up to 80K false reads"
  in
  {
    id = "fig12";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig12" ~title ~paper_claim (run ~scale));
  }
