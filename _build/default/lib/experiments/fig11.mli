(** Figure 11: pbzip2 disk traffic and reclaim effort. *)

val exp : Exp.t
