(** Figure 14: scaling the phased MapReduce guests. *)

val exp : Exp.t
