(** Figure 5: pbzip2 under shrinking memory and over-ballooning. *)

val exp : Exp.t
