(** Figure 15: Mapper tracking vs the guest page cache. *)

val exp : Exp.t
