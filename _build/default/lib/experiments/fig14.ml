(* Figure 14: the same phased MapReduce experiment swept from 1 to 10
   guests; memory pressure (and the gap between configurations) appears
   once the host overcommits, around seven guests in the paper. *)

let ns = [ 2; 4; 6; 8; 10 ]

let run ~scale =
  let results = Metis_sweep.sweep ~scale ns in
  let x = List.map string_of_int ns in
  Metrics.Table.render_series
    ~title:
      "average guest runtime [s] vs number of guests -- paper: flat until \
       ~6 guests, then balloon-only and baseline degrade up to 1.84x/1.79x \
       of balloon+vswapper while vswapper stays within 1.11x"
    ~x_label:"guests" ~x
    ~cols:
      (List.map (fun (kind, outs) -> (Exp.config_name kind, outs)) results)

let exp : Exp.t =
  let title = "Scaling phased MapReduce guests (dynamic ballooning)" in
  let paper_claim =
    "pressure from ~7 guests; balloon-only 0.96-1.84x and baseline \
     0.96-1.79x of balloon+vswapper; vswapper alone 0.97-1.11x"
  in
  {
    id = "fig14";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig14" ~title ~paper_claim (run ~scale));
  }
