(** Table 1: implementation size. *)

val exp : Exp.t
