(** Figure 9: the anatomy of uncooperative swapping, per iteration. *)

val exp : Exp.t
