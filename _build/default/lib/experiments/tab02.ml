(* Table 2: sequential 1 GB file read on a VMware-Workstation-flavoured
   host (no named-page preference, single-page swap readahead), with the
   balloon enabled vs disabled. *)

let run ~scale =
  let guest_mb = Exp.mb scale 440 in
  let reserve_mb = Exp.mb scale 350 in
  let file_mb = Exp.mb scale 1024 in
  let run_one ~balloon =
    let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb () in
    let guest =
      {
        (Vmm.Config.default_guest ~workload) with
        mem_mb = guest_mb;
        resident_limit_mb = Some reserve_mb;
        (* Even with the balloon on, Workstation leaves the guest bigger
           than its reservation, so some host swapping remains (the
           paper's balloon-on row still shows 258K swapped sectors). *)
        balloon_static_mb =
          (if balloon then Some (reserve_mb + ((guest_mb - reserve_mb) / 3))
           else None);
        warm_all = true;
        data_mb = file_mb + 64;
      }
    in
    let cfg =
      {
        (Vmm.Config.default ~guests:[ guest ]) with
        vs = Vswapper.Vsconfig.baseline;
        hbase = Host.Hconfig.workstation_flavour Host.Hconfig.default;
        host_mem_mb = guest_mb * 2;
        host_swap_mb = guest_mb * 3 / 2;
      }
    in
    Exp.run_machine (Vmm.Machine.build cfg)
  in
  let enabled = run_one ~balloon:true in
  let disabled = run_one ~balloon:false in
  let cell = function Some v -> Metrics.Table.fmt_float v | None -> "-" in
  let faults o =
    o.Exp.stats.Metrics.Stats.guest_context_faults
    + o.Exp.stats.Metrics.Stats.host_context_faults
  in
  Metrics.Table.render
    ~title:
      (Printf.sprintf
         "sequential %dMB file read, %dMB guest reserved %dMB \
          (Workstation-flavoured host policy)"
         file_mb guest_mb reserve_mb)
    ~headers:[ "metric"; "paper balloon-on"; "paper balloon-off"; "on"; "off" ]
    [
      [ "runtime [s]"; "25"; "78"; cell enabled.Exp.runtime_s;
        cell disabled.Exp.runtime_s ];
      [ "swap read sectors"; "258912"; "1046344";
        string_of_int enabled.Exp.stats.Metrics.Stats.swap_sectors_read;
        string_of_int disabled.Exp.stats.Metrics.Stats.swap_sectors_read ];
      [ "swap write sectors"; "292760"; "1042920";
        string_of_int enabled.Exp.stats.Metrics.Stats.swap_sectors_written;
        string_of_int disabled.Exp.stats.Metrics.Stats.swap_sectors_written ];
      [ "major page faults"; "3659"; "16488";
        string_of_int (faults enabled); string_of_int (faults disabled) ];
    ]

let exp : Exp.t =
  let title = "Uncooperative swapping beyond KVM (VMware Workstation)" in
  let paper_claim =
    "disabling the balloon more than triples runtime (25s -> 78s) and \
     quadruples swap traffic and major faults"
  in
  {
    id = "tab2";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"tab2" ~title ~paper_claim (run ~scale));
  }
