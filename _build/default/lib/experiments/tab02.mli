(** Table 2: uncooperative swapping on a Workstation-flavoured host. *)

val exp : Exp.t
