(** Ablations of the design decisions (DESIGN.md D1-D4). *)

val exp : Exp.t
