(* Figure 9: Sysbench iteratively reads a 200 MB file in a 100 MB guest
   that believes it has 512 MB.  Four panels per iteration: (a) runtime,
   (b) page faults while host code runs (stale reads in iteration 1,
   false page anonymity later), (c) faults while guest code runs (decayed
   sequentiality), (d) sectors written to host swap (silent writes). *)

let configs = [ Exp.Baseline; Exp.Vswapper_full; Exp.Balloon_baseline ]

type per_iter = {
  runtime_s : float;
  host_faults : int;
  guest_faults : int;
  written_sectors : int;
}

let run_config ~scale kind ~iterations =
  let file_mb = Exp.mb scale 200 in
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 100 in
  let machine_ref = ref None in
  let on_mark, get_marks = Exp.mark_collector machine_ref in
  let workload =
    Workloads.Sysbench.workload ~iterations ~on_iteration:(fun i -> on_mark i)
      ~file_mb ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      balloon_static_mb = (if Exp.ballooned kind then Some limit_mb else None);
      warm_all = true;
      data_mb = file_mb + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  let machine = Vmm.Machine.build cfg in
  machine_ref := Some machine;
  let out = Exp.run_machine ~get_marks machine in
  (* Consecutive marks bracket the iterations (mark -1 = start). *)
  let rec diffs = function
    | a :: (b : Exp.mark) :: rest ->
        {
          runtime_s =
            Sim.Time.to_sec_float (Sim.Time.sub b.Exp.at a.Exp.at);
          host_faults =
            b.snapshot.Metrics.Stats.host_context_faults
            - a.Exp.snapshot.Metrics.Stats.host_context_faults;
          guest_faults =
            b.snapshot.Metrics.Stats.guest_context_faults
            - a.Exp.snapshot.Metrics.Stats.guest_context_faults;
          written_sectors =
            b.snapshot.Metrics.Stats.swap_sectors_written
            - a.Exp.snapshot.Metrics.Stats.swap_sectors_written;
        }
        :: diffs (b :: rest)
    | [ _ ] | [] -> []
  in
  (diffs out.Exp.marks, out)

let run ~scale =
  let iterations = 8 in
  let results =
    List.map (fun kind -> (kind, fst (run_config ~scale kind ~iterations))) configs
  in
  let x = List.init iterations (fun i -> string_of_int (i + 1)) in
  let col f =
    List.map
      (fun (kind, iters) ->
        ( Exp.config_name kind,
          List.map (fun it -> Some (f it)) iters ))
      results
  in
  let panel title f = Metrics.Table.render_series ~title ~x_label:"iter" ~x ~cols:(col f) in
  String.concat "\n"
    [
      panel "(a) runtime [s]  -- paper: baseline U-shaped 40->20->40s, vswapper flat ~4s, balloon ~3s"
        (fun it -> it.runtime_s);
      panel "(b) host-context faults [count] -- paper: huge in iter 1 (stale reads), then growing (false anonymity)"
        (fun it -> float_of_int it.host_faults);
      panel "(c) guest-context faults [count] -- paper: baseline grows with sequentiality decay; vswapper flat"
        (fun it -> float_of_int it.guest_faults);
      panel "(d) sectors written to host swap [count] -- paper: large & flat for baseline (silent writes); ~0 for vswapper"
        (fun it -> float_of_int it.written_sectors);
    ]

let exp : Exp.t =
  let title = "Iterated sequential read: anatomy of uncooperative swapping" in
  let paper_claim =
    "baseline runtime is U-shaped across 8 iterations while vswapper stays \
     flat; host faults show stale reads (iter 1) and false anonymity; guest \
     faults show decayed sequentiality; swap writes show silent writes"
  in
  {
    id = "fig9";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig9" ~title ~paper_claim (run ~scale));
  }
