(** Figure 10: the effect of false reads. *)

val exp : Exp.t
