(* Section 5.4, "Windows": VSwapper applied to a non-Linux guest.  The
   paper's Windows Server 2012 VM (a) needs the hypervisor to report a
   4 KiB logical sector size and a reformatted disk, and still issues
   sporadic 512-byte accesses; (b) shows large VSwapper wins anyway:
   Sysbench 2GB-file read in a 2GB guest given 1GB drops from 302s to
   79s, and bzip2 in the same guest given 512MB from 306s to 149s. *)

let run_one ~scale ~vs ~misaligned ~workload_kind =
  let guest_mb = Exp.mb scale 2048 in
  let limit_mb, workload, data =
    match workload_kind with
    | `Sysbench ->
        ( Exp.mb scale 1024,
          Workloads.Sysbench.workload ~iterations:1 ~file_mb:(Exp.mb scale 2048)
            (),
          Exp.mb scale 2048 + 64 )
    | `Bzip2 ->
        ( Exp.mb scale 512,
          Workloads.Pbzip.workload ~threads:1 ~compute_us_per_page:400
            ~anon_mb_per_thread:(Exp.scaled_int scale 8 ~min:2)
            ~queue_mb:(Exp.scaled_int scale 16 ~min:4)
            ~input_mb:(Exp.mb scale 512) (),
          Exp.mb scale 512 + (Exp.mb scale 512 / 4) + 64 )
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      warm_all = true;
      data_mb = data;
      misaligned_io_percent = misaligned;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  (Exp.run_machine (Vmm.Machine.build cfg)).Exp.runtime_s

let run ~scale =
  let cell = function
    | Some v -> Metrics.Table.fmt_float v
    | None -> "-"
  in
  let row name workload_kind paper_base paper_vs =
    let base =
      run_one ~scale ~vs:Vswapper.Vsconfig.baseline ~misaligned:10
        ~workload_kind
    in
    let vsw =
      run_one ~scale ~vs:Vswapper.Vsconfig.vswapper ~misaligned:10
        ~workload_kind
    in
    [ name; paper_base; paper_vs; cell base; cell vsw ]
  in
  let alignment_row =
    (* The misalignment sensitivity the paper explains: without the 4K
       reformat most requests bypass the Mapper. *)
    let aligned =
      run_one ~scale ~vs:Vswapper.Vsconfig.vswapper ~misaligned:10
        ~workload_kind:`Sysbench
    in
    let broken =
      run_one ~scale ~vs:Vswapper.Vsconfig.vswapper ~misaligned:90
        ~workload_kind:`Sysbench
    in
    [ "sysbench, 90% misaligned"; "-"; "-"; cell broken; cell aligned ]
  in
  Metrics.Table.render
    ~title:
      "Windows-style guest (sporadic misaligned I/O): runtime [s] \
       (last row: unformatted disk vs 4K-reformatted, both vswapper)"
    ~headers:[ "workload"; "paper base"; "paper vswap"; "base"; "vswap" ]
    [
      row "sysbench 2GB read in 1GB" `Sysbench "302" "79";
      row "bzip2 in 512MB" `Bzip2 "306" "149";
      alignment_row;
    ]

let exp : Exp.t =
  let title = "Non-Linux (Windows-style) guests" in
  let paper_claim =
    "Sysbench 2GB read: 302s -> 79s with VSwapper; bzip2: 306s -> 149s; \
     requires the hypervisor to report 4K sectors (misaligned requests \
     bypass the Mapper)"
  in
  {
    id = "win";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"win" ~title ~paper_claim (run ~scale));
  }
