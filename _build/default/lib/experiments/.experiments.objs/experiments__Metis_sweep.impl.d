lib/experiments/metis_sweep.ml: Array Balloon Exp List Sim Storage Vmm Workloads
