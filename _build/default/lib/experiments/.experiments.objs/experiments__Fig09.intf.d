lib/experiments/fig09.mli: Exp
