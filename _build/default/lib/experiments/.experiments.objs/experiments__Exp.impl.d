lib/experiments/exp.ml: Array List Metrics Option Printf Sim String Vmm Vswapper
