lib/experiments/fig11.ml: Exp Pbzip_sweep
