lib/experiments/fig09.ml: Exp List Metrics Sim String Vmm Workloads
