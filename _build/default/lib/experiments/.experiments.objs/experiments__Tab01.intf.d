lib/experiments/tab01.mli: Exp
