lib/experiments/fig13.mli: Exp
