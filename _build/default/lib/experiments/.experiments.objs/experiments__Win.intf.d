lib/experiments/win.mli: Exp
