lib/experiments/fig15.ml: Exp Guest Host List Metrics Printf Sim Vmm Vswapper Workloads
