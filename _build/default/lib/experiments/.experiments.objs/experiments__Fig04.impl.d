lib/experiments/fig04.ml: Exp List Metis_sweep Metrics Printf
