lib/experiments/fig10.ml: Exp List Metrics Printf Sim Vmm Workloads
