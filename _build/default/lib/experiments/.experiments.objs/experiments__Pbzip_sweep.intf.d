lib/experiments/pbzip_sweep.mli: Exp
