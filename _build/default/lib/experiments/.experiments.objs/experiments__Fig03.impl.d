lib/experiments/fig03.ml: Exp List Metrics Printf Vmm Workloads
