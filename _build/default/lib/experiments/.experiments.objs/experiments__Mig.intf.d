lib/experiments/mig.mli: Exp
