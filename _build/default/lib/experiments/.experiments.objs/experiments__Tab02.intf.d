lib/experiments/tab02.mli: Exp
