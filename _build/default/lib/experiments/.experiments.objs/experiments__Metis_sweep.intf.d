lib/experiments/metis_sweep.mli: Exp
