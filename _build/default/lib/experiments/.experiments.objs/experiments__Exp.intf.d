lib/experiments/exp.mli: Metrics Sim Vmm Vswapper
