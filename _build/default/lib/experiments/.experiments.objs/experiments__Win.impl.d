lib/experiments/win.ml: Exp Metrics Vmm Vswapper Workloads
