lib/experiments/fig12.ml: Exp List Metrics Vmm Workloads
