lib/experiments/fig14.ml: Exp List Metis_sweep Metrics
