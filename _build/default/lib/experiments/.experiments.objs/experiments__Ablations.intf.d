lib/experiments/ablations.mli: Exp
