lib/experiments/ablations.ml: Buffer Exp Guest Host List Metrics Printf Sim Storage Vmm Vswapper Workloads
