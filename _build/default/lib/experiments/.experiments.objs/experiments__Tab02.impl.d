lib/experiments/tab02.ml: Exp Host Metrics Printf Vmm Vswapper Workloads
