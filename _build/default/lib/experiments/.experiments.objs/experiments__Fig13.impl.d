lib/experiments/fig13.ml: Exp List Metrics Vmm Workloads
