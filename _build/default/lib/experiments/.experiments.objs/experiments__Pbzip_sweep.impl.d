lib/experiments/pbzip_sweep.ml: Exp List Metrics Printf String Sys Vmm Workloads
