lib/experiments/mig.ml: Exp List Metrics Migration Option Printf Sim Vmm Vswapper Workloads
