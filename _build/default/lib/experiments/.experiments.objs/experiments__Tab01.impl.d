lib/experiments/tab01.ml: Exp Filename List Metrics Sys
