lib/experiments/fig05.mli: Exp
