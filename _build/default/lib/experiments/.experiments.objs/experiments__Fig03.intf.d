lib/experiments/fig03.mli: Exp
