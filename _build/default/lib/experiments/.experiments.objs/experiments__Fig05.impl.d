lib/experiments/fig05.ml: Exp Pbzip_sweep
