lib/experiments/registry.ml: Ablations Exp Fig03 Fig04 Fig05 Fig09 Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 List Mig Tab01 Tab02 Win
