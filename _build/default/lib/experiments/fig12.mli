(** Figure 12: Kernbench runtimes and Preventer remaps. *)

val exp : Exp.t
