(* Figure 15: the Mapper tracks almost exactly the guest's clean page
   cache over time (Eclipse workload, sampled periodically). *)

let run ~scale =
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 256 in
  let workload =
    Workloads.Eclipse.workload
      ~heap_mb:(Exp.mb scale 128)
      ~classes_mb:(Exp.mb scale 48)
      ~iterations:(Exp.scaled_int scale 48 ~min:24)
      ~touches_per_iter:2400 ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      warm_all = false;
      data_mb = Exp.mb scale 48 + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Vswapper.Vsconfig.vswapper;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  let machine = Vmm.Machine.build cfg in
  let engine = Vmm.Machine.engine machine in
  let host = Vmm.Machine.host machine in
  let os = Vmm.Machine.os machine 0 in
  let mb_of_pages p = float_of_int p /. 256.0 in
  let series =
    Metrics.Series.create ~engine
      ~period:(Sim.Time.ms (max 50 (int_of_float (500.0 *. scale))))
      [
        ( "page-cache-clean",
          fun () ->
            mb_of_pages
              (Guest.Guestos.cache_pages os - Guest.Guestos.dirty_cache_pages os)
        );
        ("mapper-tracked", fun () -> mb_of_pages (Host.Hostmm.mapper_tracked host 0));
      ]
  in
  let out = Exp.run_machine machine in
  ignore out;
  Metrics.Series.stop series;
  let cache = Metrics.Series.points series "page-cache-clean" in
  let tracked = Metrics.Series.points series "mapper-tracked" in
  (* Downsample to ~12 rows. *)
  let n = List.length cache in
  let stride = max 1 (n / 12) in
  let sample l = List.filteri (fun i _ -> i mod stride = 0) l in
  let cache_s = sample cache and tracked_s = sample tracked in
  let x =
    List.map (fun (t, _) -> Printf.sprintf "%.1fs" (Sim.Time.to_sec_float t)) cache_s
  in
  let col l = List.map (fun (_, v) -> Some v) l in
  let table =
    Metrics.Table.render_series
      ~title:
        "guest clean page cache vs Mapper-tracked size [MB] over time -- \
         paper: the two curves coincide (dirty pages correctly excluded)"
      ~x_label:"time" ~x
      ~cols:
        [ ("cache-clean", col cache_s); ("mapper-tracked", col tracked_s) ]
  in
  let spark name l =
    Printf.sprintf "%-16s %s" name (Metrics.Table.spark (List.map snd l))
  in
  table ^ "\n" ^ spark "cache-clean" cache ^ "\n" ^ spark "mapper-tracked" tracked

let exp : Exp.t =
  let title = "Mapper tracking vs guest page cache over time" in
  let paper_claim =
    "the size tracked by the Mapper coincides with the guest page cache \
     excluding dirty pages; empirically the Mapper consumed <= 14MB of \
     metadata in all experiments"
  in
  {
    id = "fig15";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig15" ~title ~paper_claim (run ~scale));
  }
