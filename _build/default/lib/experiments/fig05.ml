(* Figure 5: pbzip2 runtime vs actual guest memory; ballooning is fastest
   while alive but over-ballooning kills the compressor below 240 MB. *)

let mems = [ 512; 240; 128 ]

let run ~scale =
  let results = Pbzip_sweep.sweep ~scale mems in
  Pbzip_sweep.render
    ~title:"pbzip2 (8 threads) in a 512MB guest; actual memory on the x-axis"
    ~mems
    ~panels:
      [
        ( "runtime [s] ('-' = workload OOM-killed by over-ballooning)",
          fun o -> o.Pbzip_sweep.runtime_s );
      ]
    results

let exp : Exp.t =
  let title = "pbzip2 under shrinking memory (over-ballooning)" in
  let paper_claim =
    "ballooning fastest but kills bzip2 below 240MB; baseline up to 1.66x \
     slower than ballooning; vswapper within 1.03-1.08x, mapper 1.03-1.13x"
  in
  {
    id = "fig5";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig5" ~title ~paper_claim (run ~scale));
  }
