(** Figure 4: ten phased MapReduce guests under dynamic ballooning. *)

val exp : Exp.t
