(* Figure 11: pbzip2 I/O anatomy across the memory sweep: (a) disk
   operations, (b) sectors written, (c) pages scanned by host reclaim. *)

let mems = [ 512; 448; 384; 320; 256; 192 ]

let run ~scale =
  let results = Pbzip_sweep.sweep ~scale mems in
  Pbzip_sweep.render
    ~title:"pbzip2 I/O anatomy (same setup as fig5)"
    ~mems
    ~panels:
      [
        ( "(a) disk operations [count] -- paper: vswapper needs far fewer",
          fun o -> Some (float_of_int o.Pbzip_sweep.disk_ops) );
        ( "(b) sectors written to host swap [count] -- paper: vswapper eliminates most writes",
          fun o -> Some (float_of_int o.Pbzip_sweep.written_sectors) );
        ( "(c) pages scanned by reclaim [count] -- paper: mapper up to doubles scans at low pressure",
          fun o -> Some (float_of_int o.Pbzip_sweep.pages_scanned) );
      ]
    results

let exp : Exp.t =
  let title = "pbzip2 disk traffic and reclaim effort" in
  let paper_claim =
    "vswapper greatly reduces disk operations and nearly eliminates swap \
     writes (good for SSDs); the mapper up to doubles reclaim scan length \
     when memory pressure is low"
  in
  {
    id = "fig11";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig11" ~title ~paper_claim (run ~scale));
  }
