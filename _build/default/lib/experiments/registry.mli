(** All reproducible experiments, keyed by the paper's figure/table ids. *)

val all : Exp.t list

(** [find id] looks an experiment up by id (e.g. "fig9"). *)
val find : string -> Exp.t option

val ids : unit -> string list
