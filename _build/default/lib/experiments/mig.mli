(** Section 7 extension: migration of Mapper records. *)

val exp : Exp.t
