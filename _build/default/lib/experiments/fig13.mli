(** Figure 13: Eclipse under shrinking memory. *)

val exp : Exp.t
