(* Figure 13: DaCapo Eclipse (GC-heavy Java) across the memory sweep;
   ballooning occasionally OOM-kills Eclipse below 448 MB. *)

let configs =
  [ Exp.Baseline; Exp.Mapper_only; Exp.Vswapper_full; Exp.Balloon_baseline ]

let mems = [ 512; 448; 384; 320; 256 ]

let run_point ~scale kind ~actual_mb =
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale actual_mb in
  let workload =
    (* GC-scanned heap plus the colder JVM overhead; total resident
       demand approaches 448MB in a 512MB guest, the paper's crash
       boundary for over-ballooning. *)
    Workloads.Eclipse.workload
      ~heap_mb:(Exp.mb scale 224)
      ~overhead_mb:(Exp.mb scale 176)
      ~classes_mb:(Exp.mb scale 48)
      ~burst_mb:(Exp.mb scale 64)
      ~iterations:(Exp.scaled_int scale 24 ~min:8)
      ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      balloon_static_mb = (if Exp.ballooned kind then Some limit_mb else None);
      warm_all = true;
      data_mb = Exp.mb scale 32 + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  out.Exp.runtime_s

let run ~scale =
  let results =
    List.map
      (fun kind ->
        (kind, List.map (fun m -> run_point ~scale kind ~actual_mb:m) mems))
      configs
  in
  let x = List.map (fun m -> string_of_int m ^ "MB") mems in
  Metrics.Table.render_series
    ~title:
      "Eclipse/DaCapo runtime [s] ('-' = killed by over-ballooning) -- \
       paper: balloon 1-4% faster while alive but kills Eclipse below \
       448MB; baseline 0.97-1.28x of vswapper"
    ~x_label:"guest-mem-limit" ~x
    ~cols:
      (List.map
         (fun (kind, outs) -> (Exp.config_name kind, outs))
         results)

let exp : Exp.t =
  let title = "Eclipse (GC-heavy Java) under shrinking memory" in
  let paper_claim =
    "ballooning slightly fastest but OOM-kills Eclipse below 448MB; \
     baseline up to 1.28x slower than vswapper; mapper within 1.00-1.08x"
  in
  {
    id = "fig13";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig13" ~title ~paper_claim (run ~scale));
  }
