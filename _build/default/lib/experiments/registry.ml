let all =
  [
    Fig03.exp;
    Fig04.exp;
    Fig05.exp;
    Fig09.exp;
    Fig10.exp;
    Fig11.exp;
    Fig12.exp;
    Fig13.exp;
    Fig14.exp;
    Fig15.exp;
    Tab01.exp;
    Tab02.exp;
    Win.exp;
    Mig.exp;
    Ablations.exp;
  ]

let find id = List.find_opt (fun e -> e.Exp.id = id) all
let ids () = List.map (fun e -> e.Exp.id) all
