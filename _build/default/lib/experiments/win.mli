(** Section 5.4: Windows-style guests with misaligned I/O. *)

val exp : Exp.t
