(* Table 1: lines of code of VSwapper.  We report the paper's numbers for
   the KVM implementation next to the line counts of this OCaml
   reproduction's core components (counted from the source tree when it
   is reachable from the working directory). *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  with Sys_error _ -> None

let rec find_root dir depth =
  if depth > 6 then None
  else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else find_root (Filename.concat dir Filename.parent_dir_name) (depth + 1)

let component_loc root files =
  List.fold_left
    (fun acc f ->
      match (acc, count_lines (Filename.concat root f)) with
      | Some a, Some b -> Some (a + b)
      | _ -> None)
    (Some 0) files

let run ~scale:_ =
  let root = find_root (Sys.getcwd ()) 0 in
  let loc files =
    match root with
    | None -> "n/a"
    | Some r -> (
        match component_loc r files with
        | Some n -> string_of_int n
        | None -> "n/a")
  in
  let mapper = loc [ "lib/core/mapper.ml"; "lib/core/mapper.mli" ] in
  let preventer = loc [ "lib/core/preventer.ml"; "lib/core/preventer.mli" ] in
  Metrics.Table.render
    ~title:"lines of code of the VSwapper components"
    ~headers:
      [ "component"; "paper user"; "paper kernel"; "paper sum"; "this repro" ]
    [
      [ "Swap Mapper"; "174"; "235"; "409"; mapper ];
      [ "False Reads Preventer"; "10"; "1964"; "1974"; preventer ];
    ]

let exp : Exp.t =
  let title = "VSwapper implementation size" in
  let paper_claim =
    "Mapper: 409 lines (174 user + 235 kernel); Preventer: 1974 lines (10 \
     user + 1964 kernel); total 2383"
  in
  {
    id = "tab1";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"tab1" ~title ~paper_claim (run ~scale));
  }
