(** Figure 3: sequential file read under overcommitment. *)

val exp : Exp.t
