type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : scale:float -> string;
}

type config_kind =
  | Baseline
  | Balloon_baseline
  | Mapper_only
  | Vswapper_full
  | Balloon_vswapper

let config_name = function
  | Baseline -> "baseline"
  | Balloon_baseline -> "balloon+base"
  | Mapper_only -> "mapper"
  | Vswapper_full -> "vswapper"
  | Balloon_vswapper -> "balloon+vswap"

let all_configs =
  [ Baseline; Balloon_baseline; Mapper_only; Vswapper_full; Balloon_vswapper ]

let vs_of = function
  | Baseline | Balloon_baseline -> Vswapper.Vsconfig.baseline
  | Mapper_only -> Vswapper.Vsconfig.mapper_only
  | Vswapper_full | Balloon_vswapper -> Vswapper.Vsconfig.vswapper

let ballooned = function
  | Balloon_baseline | Balloon_vswapper -> true
  | Baseline | Mapper_only | Vswapper_full -> false

let mb scale x = max 16 (int_of_float (float_of_int x *. scale))
let scaled_int scale x ~min:lo = max lo (int_of_float (float_of_int x *. scale))

type mark = { index : int; at : Sim.Time.t; snapshot : Metrics.Stats.t }

let mark_collector machine_ref =
  let acc = ref [] in
  let on_mark index =
    match !machine_ref with
    | None -> ()
    | Some m ->
        acc :=
          {
            index;
            at = Sim.Engine.now (Vmm.Machine.engine m);
            snapshot = Metrics.Stats.copy (Vmm.Machine.stats m);
          }
          :: !acc
  in
  (on_mark, fun () -> List.rev !acc)

type run_out = {
  runtime_s : float option;
  per_guest_s : float option array;
  stats : Metrics.Stats.t;
  oomed : bool;
  marks : mark list;
}

let run_machine ?(get_marks = fun () -> []) machine =
  let result = Vmm.Machine.run machine in
  let to_s = Option.map Sim.Time.to_sec_float in
  let per_guest_s =
    Array.map (fun g -> to_s g.Vmm.Machine.runtime) result.Vmm.Machine.guests
  in
  let oomed =
    Array.exists (fun g -> g.Vmm.Machine.oomed) result.Vmm.Machine.guests
  in
  {
    runtime_s = per_guest_s.(0);
    per_guest_s;
    stats = result.Vmm.Machine.stats;
    oomed;
    marks = get_marks ();
  }

let opt_s r = r.runtime_s

let header ~id ~title ~paper_claim body =
  let line = String.make 72 '=' in
  Printf.sprintf "%s\n%s: %s\npaper: %s\n%s\n%s" line (String.uppercase_ascii id)
    title paper_claim line body
