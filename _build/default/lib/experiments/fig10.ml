(* Figure 10: effect of false reads on a process that allocates and
   sequentially accesses 200 MB right after a 200 MB file read filled the
   page cache.  Compares VSwapper with and without the Preventer. *)

let configs =
  [ Exp.Baseline; Exp.Mapper_only; Exp.Vswapper_full; Exp.Balloon_baseline ]

let run ~scale =
  let mbs = Exp.mb scale 200 in
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 100 in
  let rows =
    List.map
      (fun kind ->
        let machine_ref = ref None in
        let on_mark, get_marks = Exp.mark_collector machine_ref in
        let workload =
          Workloads.Memhog.workload ~read_first_mb:mbs ~pattern:`Mixed
            ~on_alloc_phase:(fun () -> on_mark 0)
            ~on_done:(fun () -> on_mark 1)
            ~mb:mbs ()
        in
        let guest =
          {
            (Vmm.Config.default_guest ~workload) with
            mem_mb = guest_mb;
            resident_limit_mb = Some limit_mb;
            balloon_static_mb =
              (if Exp.ballooned kind then Some limit_mb else None);
            warm_all = true;
            data_mb = mbs + 64;
          }
        in
        let cfg =
          {
            (Vmm.Config.default ~guests:[ guest ]) with
            vs = Exp.vs_of kind;
            host_mem_mb = guest_mb * 2;
            host_swap_mb = guest_mb * 3 / 2;
          }
        in
        let machine = Vmm.Machine.build cfg in
        machine_ref := Some machine;
        let out = Exp.run_machine ~get_marks machine in
        match out.Exp.marks with
        | [ start; fin ] ->
            let dt =
              Sim.Time.to_sec_float (Sim.Time.sub fin.Exp.at start.Exp.at)
            in
            let dops =
              fin.Exp.snapshot.Metrics.Stats.disk_ops
              - start.Exp.snapshot.Metrics.Stats.disk_ops
            in
            let dfalse =
              fin.Exp.snapshot.Metrics.Stats.false_reads
              - start.Exp.snapshot.Metrics.Stats.false_reads
            in
            let dremaps =
              fin.Exp.snapshot.Metrics.Stats.preventer_remaps
              - start.Exp.snapshot.Metrics.Stats.preventer_remaps
            in
            [
              Exp.config_name kind;
              Metrics.Table.fmt_float dt;
              string_of_int dops;
              string_of_int dfalse;
              string_of_int dremaps;
            ]
        | _ ->
            (* OOM-killed before finishing (over-ballooning, like the
               paper's missing balloon bar). *)
            [ Exp.config_name kind; "crashed(OOM)"; "-"; "-"; "-" ])
      configs
  in
  Metrics.Table.render
    ~title:
      (Printf.sprintf
         "allocate+access %dMB after reading %dMB (alloc phase only)" mbs mbs)
    ~headers:[ "config"; "runtime[s]"; "disk-ops"; "false-reads"; "remaps" ]
    rows

let exp : Exp.t =
  let title = "Effect of false reads (allocate + access after file read)" in
  let paper_claim =
    "enabling the Preventer more than doubles performance; runtime tracks \
     disk ops (~20s/125k ops baseline-ish vs ~8s/40k with Preventer); \
     balloon crashed the workload (over-ballooning)"
  in
  {
    id = "fig10";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig10" ~title ~paper_claim (run ~scale));
  }
