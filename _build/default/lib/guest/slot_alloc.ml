type t = {
  nslots : int;
  used : Bytes.t;
  mutable cursor : int;
  mutable in_use : int;
}

let create ~nslots =
  if nslots <= 0 then invalid_arg "Slot_alloc.create: nslots must be positive";
  { nslots; used = Bytes.make nslots '\000'; cursor = 0; in_use = 0 }

let check t s =
  if s < 0 || s >= t.nslots then
    invalid_arg (Printf.sprintf "Slot_alloc: slot %d out of range" s)

let alloc t =
  if t.in_use = t.nslots then None
  else begin
    let rec find i remaining =
      if remaining = 0 then None
      else if Bytes.get t.used i = '\000' then Some i
      else find ((i + 1) mod t.nslots) (remaining - 1)
    in
    match find t.cursor t.nslots with
    | None -> None
    | Some s ->
        Bytes.set t.used s '\001';
        t.cursor <- (s + 1) mod t.nslots;
        t.in_use <- t.in_use + 1;
        Some s
  end

let free t s =
  check t s;
  if Bytes.get t.used s = '\000' then
    invalid_arg (Printf.sprintf "Slot_alloc.free: slot %d already free" s);
  Bytes.set t.used s '\000';
  t.in_use <- t.in_use - 1

let is_allocated t s =
  check t s;
  Bytes.get t.used s <> '\000'

let in_use t = t.in_use
let nslots t = t.nslots
