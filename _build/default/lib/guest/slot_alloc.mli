(** Simple rotating-cursor slot allocator for the guest's own swap
    partition (block indices only; the data itself lives in the virtual
    disk). *)

type t

val create : nslots:int -> t
val alloc : t -> int option
val free : t -> int -> unit
val is_allocated : t -> int -> bool
val in_use : t -> int
val nslots : t -> int
