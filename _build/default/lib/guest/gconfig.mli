(** Guest operating-system tunables and cost model. *)

type t = {
  mem_pages : int;  (** guest-physical memory the guest believes it has *)
  kernel_pages : int;  (** pinned kernel text/data, unevictable *)
  min_free_pages : int;  (** direct reclaim below this many free pages *)
  high_free_pages : int;  (** reclaim refills to this level *)
  reclaim_batch : int;
  readahead_min : int;  (** initial file readahead window, pages *)
  readahead_max : int;  (** max window; Linux default 128 KiB = 32 pages *)
  swap_cluster : int;  (** guest swap-in readahead, pages *)
  oom_min_free : int;  (** below this and nothing reclaimable => OOM kill *)
  oom_stress_limit : int;
      (** consecutive reclaim passes that end still starved before the
          low-memory killer fires (over-ballooning, paper Section 2.4) *)
  swap_blocks : int;  (** size of the guest swap partition, blocks *)
  balloon_poll : Sim.Time.t;  (** balloon driver poll period *)
  balloon_chunk : int;  (** pages inflated/deflated per poll *)
  misaligned_io_percent : int;
      (** percentage of guest disk requests that are not 4 KiB aligned
          (0 for Linux with 4K sectors; Windows without a reformatted
          disk issues sporadic 512-byte accesses, paper Section 5.4) *)
  (* CPU-side costs, microseconds. *)
  syscall_us : int;
  memcpy_us : int;  (** copying one page cache page to the user buffer *)
  guest_fault_us : int;  (** guest-side fault handling CPU cost *)
}

(** [default ~mem_mb] sizes a guest with [mem_mb] MiB of believed memory,
    a kernel working set of ~24 MiB and a 1 GiB swap partition. *)
val default : mem_mb:int -> t
