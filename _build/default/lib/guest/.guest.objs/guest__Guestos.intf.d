lib/guest/guestos.mli: Gconfig Host Metrics Sim
