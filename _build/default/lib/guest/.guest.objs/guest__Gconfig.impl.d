lib/guest/gconfig.ml: Sim Storage
