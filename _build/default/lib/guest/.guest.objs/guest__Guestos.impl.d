lib/guest/guestos.ml: Array Bytes Gconfig Hashtbl Host List Mem Metrics Printf Sim Slot_alloc Storage
