lib/guest/slot_alloc.mli:
