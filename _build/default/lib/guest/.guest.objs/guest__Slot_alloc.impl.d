lib/guest/slot_alloc.ml: Bytes Printf
