lib/guest/gconfig.mli: Sim
