(** The guest operating system.

    Models the memory-management behaviour of a general-purpose OS from
    the hypervisor's point of view: a page cache with sequential file
    readahead, anonymous process memory that is zeroed on first touch,
    active/inactive page reclaim with preferential eviction of clean file
    pages, a swap partition on the guest's own virtual disk, an OOM
    killer, and a balloon driver.

    The guest is *unaware* of host swapping: it addresses everything in
    guest-physical pages (gpas) and calls into {!Host.Hostmm} for every
    memory access and disk operation; host-level faults and their costs
    happen behind its back — which is the point of the paper.

    All potentially blocking operations are continuation-passing: the
    continuation runs at the virtual time the operation completes. *)

type t

(** A contiguous file on the guest filesystem. *)
type file

(** An anonymous memory region (heap/stack of a process). *)
type region

val create :
  engine:Sim.Engine.t ->
  host:Host.Hostmm.t ->
  gid:Host.Hostmm.guest_id ->
  stats:Metrics.Stats.t ->
  config:Gconfig.t ->
  t

val gid : t -> int
val config : t -> Gconfig.t

(** [boot t k] allocates and touches the kernel working set. *)
val boot : t -> (unit -> unit) -> unit

(** [warm_all_memory t k] touches every free guest page once and frees it
    again — the state of a guest that has been running for a while, which
    is the precondition for the paper's stale-read experiments (free
    guest pages whose frames the host has reclaimed). *)
val warm_all_memory : t -> (unit -> unit) -> unit

(** {2 Files} *)

(** [create_file t ~blocks] lays out a file of [blocks] 4 KiB blocks
    contiguously on the virtual disk. *)
val create_file : t -> blocks:int -> file

val file_blocks : file -> int

(** [read_file t f ~idx k] reads block [idx] of [f] through the page
    cache (sequential patterns trigger readahead). *)
val read_file : t -> file -> idx:int -> (unit -> unit) -> unit

(** [write_file t f ~idx k] overwrites block [idx] of [f] in the page
    cache, marking the page dirty (written back by reclaim). *)
val write_file : t -> file -> idx:int -> (unit -> unit) -> unit

(** [fsync_file t f k] writes back all dirty cached pages of [f]. *)
val fsync_file : t -> file -> (unit -> unit) -> unit

(** {2 Anonymous memory} *)

val alloc_region : t -> pages:int -> region
val region_pages : region -> int

(** [touch t r ~idx ~write k] accesses one page of the region with a load
    or a small (sub-page) store; first touch demand-allocates and zeroes
    the page, guest-swapped pages are faulted back in. *)
val touch : t -> region -> idx:int -> write:bool -> (unit -> unit) -> unit

(** [overwrite_page t r ~idx k] overwrites a whole page with a
    REP-prefixed store (memset-style). *)
val overwrite_page : t -> region -> idx:int -> (unit -> unit) -> unit

(** [memcpy_page t r ~idx k] overwrites a whole page with a sequence of
    eight sequential 512-byte stores (memcpy-style) — the pattern the
    False Reads Preventer must buffer to win. *)
val memcpy_page : t -> region -> idx:int -> (unit -> unit) -> unit

(** [free_region t r] releases the region; freed pages return to the
    guest free list {e without} notifying the host. *)
val free_region : t -> region -> unit

(** {2 Ballooning and services} *)

(** [set_balloon_target t ~pages] tells the balloon driver how many guest
    pages the host wants pinned; the driver converges at a bounded rate. *)
val set_balloon_target : t -> pages:int -> unit

val balloon_target : t -> int
val balloon_size : t -> int

(** [start_services t] starts the balloon driver poll loop and background
    kernel activity. *)
val start_services : t -> unit

(** {2 OOM} *)

(** [set_oom_handler t f] installs the process the OOM killer kills. *)
val set_oom_handler : t -> (unit -> unit) -> unit

val oomed : t -> bool

(** {2 Introspection} *)

val free_pages : t -> int
val cache_pages : t -> int
val dirty_cache_pages : t -> int

(** [check_invariants t] asserts internal consistency (free-list/kind
    agreement, cache maps, LRU residency); for tests. *)
val check_invariants : t -> unit
