type t = {
  mem_pages : int;
  kernel_pages : int;
  min_free_pages : int;
  high_free_pages : int;
  reclaim_batch : int;
  readahead_min : int;
  readahead_max : int;
  swap_cluster : int;
  oom_min_free : int;
  oom_stress_limit : int;
  swap_blocks : int;
  balloon_poll : Sim.Time.t;
  balloon_chunk : int;
  misaligned_io_percent : int;
  syscall_us : int;
  memcpy_us : int;
  guest_fault_us : int;
}

let default ~mem_mb =
  let mem_pages = Storage.Geom.pages_of_mb mem_mb in
  {
    mem_pages;
    kernel_pages = min (Storage.Geom.pages_of_mb 24) (mem_pages / 8);
    min_free_pages = max 64 (mem_pages / 100);
    high_free_pages = max 128 (mem_pages * 3 / 100);
    reclaim_batch = 32;
    readahead_min = 4;
    readahead_max = 32;
    swap_cluster = 8;
    oom_min_free = 16;
    oom_stress_limit = 60;
    swap_blocks = Storage.Geom.pages_of_mb 1024;
    balloon_poll = Sim.Time.ms 100;
    balloon_chunk = Storage.Geom.pages_of_mb 16;
    misaligned_io_percent = 0;
    syscall_us = 2;
    memcpy_us = 1;
    guest_fault_us = 2;
  }
