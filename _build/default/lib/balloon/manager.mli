(** MOM-like balloon manager (paper Section 5.2 uses MOM, the Memory
    Overcommitment Manager).

    A host daemon that periodically samples host free memory and each
    guest's memory statistics, then adjusts per-guest balloon targets:
    inflating balloons of guests with reclaimable slack when the host is
    under pressure, deflating when the host has surplus and a guest is
    squeezed.  Guests converge to the targets at the balloon driver's own
    bounded rate — the reaction latency that makes ballooning "take
    time" under changing load (paper Section 2.3). *)

type policy = {
  period : Sim.Time.t;  (** sampling/adjustment interval *)
  host_reserve_frames : int;  (** desired host free-frame cushion *)
  guest_min_pages : int;  (** never balloon a guest below this *)
  guest_free_low : float;
      (** deflate when a guest's free fraction drops below this *)
  guest_free_high : float;
      (** a guest with more free fraction than this is an inflation donor *)
  step_pages : int;  (** max target change per guest per period *)
}

val default_policy : policy

type t

val create :
  engine:Sim.Engine.t ->
  host:Host.Hostmm.t ->
  guests:Guest.Guestos.t list ->
  policy ->
  t

(** [start t] begins the periodic adjustment loop. *)
val start : t -> unit

(** [stop t] ceases adjustments (targets stay where they are). *)
val stop : t -> unit
