lib/balloon/manager.ml: Guest Host List Sim Storage
