lib/balloon/manager.mli: Guest Host Sim
