type buffer = { started_at : Sim.Time.t; mutable frontier : int }

type t = {
  stats : Metrics.Stats.t;
  window : Sim.Time.t;
  max_buffers : int;
  buffers : (int, buffer) Hashtbl.t;
}

type write_decision =
  | Completed
  | Buffered of { first_write : bool }
  | Needs_merge
  | Rejected

type read_decision = Served_from_buffer | Suspend

let create ~stats ~window ~max_buffers =
  { stats; window; max_buffers; buffers = Hashtbl.create 64 }

let active t = Hashtbl.length t.buffers
let is_buffered t ~gpa = Hashtbl.mem t.buffers gpa

let on_write t ~now ~gpa ~offset ~len =
  match Hashtbl.find_opt t.buffers gpa with
  | None ->
      if Hashtbl.length t.buffers >= t.max_buffers then begin
        t.stats.preventer_rejects <- t.stats.preventer_rejects + 1;
        Rejected
      end
      else if offset <> 0 then begin
        (* A buffer can only start at the page head; anything else cannot
           grow into full coverage under the sequential rule. *)
        t.stats.preventer_merges <- t.stats.preventer_merges + 1;
        Needs_merge
      end
      else if len >= Storage.Geom.page_bytes then begin
        t.stats.preventer_remaps <- t.stats.preventer_remaps + 1;
        Completed
      end
      else begin
        Hashtbl.replace t.buffers gpa { started_at = now; frontier = len };
        Buffered { first_write = true }
      end
  | Some buf ->
      if offset <> buf.frontier then begin
        Hashtbl.remove t.buffers gpa;
        t.stats.preventer_merges <- t.stats.preventer_merges + 1;
        Needs_merge
      end
      else begin
        buf.frontier <- buf.frontier + len;
        if buf.frontier >= Storage.Geom.page_bytes then begin
          Hashtbl.remove t.buffers gpa;
          t.stats.preventer_remaps <- t.stats.preventer_remaps + 1;
          Completed
        end
        else Buffered { first_write = false }
      end

let on_rep_write t ~gpa =
  Hashtbl.remove t.buffers gpa;
  t.stats.preventer_remaps <- t.stats.preventer_remaps + 1

let on_read t ~gpa ~offset ~len =
  match Hashtbl.find_opt t.buffers gpa with
  | Some buf when offset + len <= buf.frontier -> Served_from_buffer
  | Some _ | None -> Suspend

let expired t ~now =
  let gone = ref [] in
  Hashtbl.iter
    (fun gpa buf ->
      if Sim.Time.sub now buf.started_at >= t.window then gone := gpa :: !gone)
    t.buffers;
  List.iter
    (fun gpa ->
      Hashtbl.remove t.buffers gpa;
      t.stats.preventer_timeouts <- t.stats.preventer_timeouts + 1;
      t.stats.preventer_merges <- t.stats.preventer_merges + 1)
    !gone;
  !gone

let next_deadline t =
  Hashtbl.fold
    (fun _ buf acc ->
      let dl = Sim.Time.add buf.started_at t.window in
      match acc with
      | None -> Some dl
      | Some best -> Some (Sim.Time.min best dl))
    t.buffers None

let abandon t ~gpa = Hashtbl.remove t.buffers gpa
