type t = {
  mapper : bool;
  preventer : bool;
  preventer_window : Sim.Time.t;
  preventer_max_buffers : int;
  report_4k_sectors : bool;
}

let defaults =
  {
    mapper = false;
    preventer = false;
    preventer_window = Sim.Time.ms 1;
    preventer_max_buffers = 32;
    report_4k_sectors = true;
  }

let baseline = defaults
let mapper_only = { defaults with mapper = true }
let vswapper = { defaults with mapper = true; preventer = true }

let pp fmt t =
  Format.fprintf fmt
    "{mapper=%b; preventer=%b; window=%a; max_buffers=%d; 4k=%b}" t.mapper
    t.preventer Sim.Time.pp t.preventer_window t.preventer_max_buffers
    t.report_4k_sectors
