type backing = { disk : int; block : int; version : int }

type t = {
  stats : Metrics.Stats.t;
  by_gpa : (int, backing) Hashtbl.t;
  by_block : (int * int, int list) Hashtbl.t;  (* (disk, block) -> gpas *)
}

let create ~stats () =
  { stats; by_gpa = Hashtbl.create 1024; by_block = Hashtbl.create 1024 }

let gauge t = t.stats.mapper_tracked <- Hashtbl.length t.by_gpa

let untrack t ~gpa =
  match Hashtbl.find_opt t.by_gpa gpa with
  | None -> ()
  | Some b ->
      Hashtbl.remove t.by_gpa gpa;
      let key = (b.disk, b.block) in
      (match Hashtbl.find_opt t.by_block key with
      | None -> ()
      | Some gpas -> (
          match List.filter (fun g -> g <> gpa) gpas with
          | [] -> Hashtbl.remove t.by_block key
          | rest -> Hashtbl.replace t.by_block key rest));
      gauge t

let track t ~gpa ~disk ~block ~version =
  untrack t ~gpa;
  Hashtbl.replace t.by_gpa gpa { disk; block; version };
  let key = (disk, block) in
  let gpas =
    match Hashtbl.find_opt t.by_block key with None -> [] | Some l -> l
  in
  Hashtbl.replace t.by_block key (gpa :: gpas);
  gauge t

let lookup t ~gpa = Hashtbl.find_opt t.by_gpa gpa

let gpas_of_block t ~disk ~block =
  match Hashtbl.find_opt t.by_block (disk, block) with
  | None -> []
  | Some l -> l

let invalidate_block t ~disk ~block =
  match gpas_of_block t ~disk ~block with
  | [] -> []
  | gpas ->
      List.iter (fun gpa -> untrack t ~gpa) gpas;
      t.stats.mapper_invalidations <- t.stats.mapper_invalidations + 1;
      gpas

let tracked t = Hashtbl.length t.by_gpa

let readahead_window t ~disk ~block ~max =
  let rec go b acc =
    if b - block >= max then List.rev acc
    else
      match gpas_of_block t ~disk ~block:b with
      | [] -> List.rev acc
      | gpas -> go (b + 1) ((b, gpas) :: acc)
  in
  go block []

let iter t f = Hashtbl.iter (fun gpa b -> f gpa b) t.by_gpa
