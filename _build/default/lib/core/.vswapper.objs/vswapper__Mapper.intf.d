lib/core/mapper.mli: Metrics
