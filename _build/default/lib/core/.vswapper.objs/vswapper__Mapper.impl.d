lib/core/mapper.ml: Hashtbl List Metrics
