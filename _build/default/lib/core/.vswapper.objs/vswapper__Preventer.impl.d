lib/core/preventer.ml: Hashtbl List Metrics Sim Storage
