lib/core/preventer.mli: Metrics Sim
