lib/core/vsconfig.mli: Format Sim
