lib/core/vsconfig.ml: Format Sim
