(** VSwapper feature configuration.

    The paper evaluates five configurations; the two booleans here select
    the VSwapper half (ballooning is a machine-level option).  The
    Preventer's tunables default to the paper's empirically chosen values
    (Section 4.2): a 1 ms emulation window and at most 32 concurrently
    emulated pages. *)

type t = {
  mapper : bool;  (** enable the Swap Mapper *)
  preventer : bool;  (** enable the False Reads Preventer *)
  preventer_window : Sim.Time.t;  (** max time a write buffer may live *)
  preventer_max_buffers : int;  (** cap on concurrently emulated pages *)
  report_4k_sectors : bool;
      (** advertise a 4 KiB logical sector size to guests so their disk
          requests arrive page-aligned — the Mapper needs this (paper
          Section 4.1 "Page Alignment" and the Windows discussion in
          5.4).  Guests that ignore it (misaligned Windows installs)
          fall back to the non-Mapper path request by request. *)
}

(** Plain uncooperative swapping: both components off. *)
val baseline : t

(** Mapper only ("mapper" configuration / "vswapper w/o preventer"). *)
val mapper_only : t

(** Full VSwapper: Mapper + Preventer. *)
val vswapper : t

val pp : Format.formatter -> t -> unit
