(** The False Reads Preventer (paper Section 4.2).

    When the guest stores to a page the host has swapped out, the
    baseline must first read the stale page from disk — even though the
    guest may be about to overwrite all of it (page zeroing, COW copies,
    page migration).  The Preventer instead emulates the faulting writes
    into a page-sized buffer, betting the whole page will be overwritten
    shortly.  If the bet pays off (full coverage within the window) the
    buffer is remapped as the page and the disk read never happens; if
    not (timeout, non-sequential pattern, or buffer-cap pressure) the old
    content is read and merged with the buffered bytes.

    This module is the pure bookkeeping; disk reads, remapping and timer
    scheduling are the hypervisor's job, driven by the returned
    decisions. *)

type t

type write_decision =
  | Completed
      (** the page is now fully covered: remap the buffer, drop the
          entry, no disk read *)
  | Buffered of { first_write : bool }
      (** write absorbed into the buffer; on [first_write] the caller
          must arm the expiry timer *)
  | Needs_merge
      (** non-sequential pattern: stop emulating, read the old content
          asynchronously and merge *)
  | Rejected
      (** too many pages being emulated; fall back to a normal fault *)

type read_decision =
  | Served_from_buffer  (** the read hits buffered bytes: emulate it *)
  | Suspend  (** data not buffered: read + merge, guest suspends *)

val create : stats:Metrics.Stats.t -> window:Sim.Time.t -> max_buffers:int -> t

(** [on_write t ~now ~gpa ~offset ~len] processes an emulated store of
    [len] bytes at [offset] into swapped-out page [gpa].  Coverage is
    tracked as a strictly sequential frontier from offset 0, mirroring
    the paper's "stop if the write pattern is not sequential" rule. *)
val on_write :
  t -> now:Sim.Time.t -> gpa:int -> offset:int -> len:int -> write_decision

(** [on_rep_write t ~gpa] handles a whole-page REP-prefixed store: the
    Preventer recognizes outright that the entire page is rewritten and
    short-circuits buffering.  Always counts as a remap.  Any existing
    buffer for [gpa] is subsumed. *)
val on_rep_write : t -> gpa:int -> unit

(** [on_read t ~gpa ~offset ~len] classifies an emulated load. *)
val on_read : t -> gpa:int -> offset:int -> len:int -> read_decision

(** [expired t ~now] returns the gpas whose buffers have outlived the
    window, removing them; the caller must read + merge each. *)
val expired : t -> now:Sim.Time.t -> int list

(** [next_deadline t] is the earliest buffer expiry, for timer arming. *)
val next_deadline : t -> Sim.Time.t option

(** [abandon t ~gpa] drops a buffer without completing it (caller decided
    to read + merge, or the page went away). *)
val abandon : t -> gpa:int -> unit

(** [is_buffered t ~gpa] tests whether [gpa] is currently emulated. *)
val is_buffered : t -> gpa:int -> bool

val active : t -> int
