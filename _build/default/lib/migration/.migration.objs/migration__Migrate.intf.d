lib/migration/migrate.mli: Format Sim Vmm
