lib/migration/migrate.ml: Format Guest Host List Sim Storage Vmm
