(** Plain-text table and series rendering for the benchmark harness.

    The bench output mimics the rows/series of the paper's figures:
    [render] draws an aligned table, [render_series] draws one line per
    x-value with each configuration in a column, and [spark] gives a quick
    unicode trend glyph for a series. *)

(** [render ~title ~headers rows] is an aligned text table. *)
val render : title:string -> headers:string list -> string list list -> string

(** [render_series ~title ~x_label ~x ~cols] renders columns of floats
    against shared x values.  Each column is [(name, values)]; [values]
    must have the same length as [x].  [None] cells render as ["-"]
    (e.g. crashed/OOM configurations). *)
val render_series :
  title:string ->
  x_label:string ->
  x:string list ->
  cols:(string * float option list) list ->
  string

(** [spark values] is a compact unicode sparkline of the series. *)
val spark : float list -> string

(** [fmt_float v] formats with a sensible precision for table cells. *)
val fmt_float : float -> string
