(** Named time series, sampled on a fixed period from the engine.

    Used for Figure 15 (mapper-tracked size vs. guest page cache over
    time) and for any ad-hoc instrumentation of a run. *)

type t

(** [create ~engine ~period probes] starts sampling.  Each probe is a
    [(name, fn)] pair; [fn] is polled every [period] and its value recorded
    against the current virtual time.  Sampling stops when {!stop} is
    called or the engine runs out of events. *)
val create :
  engine:Sim.Engine.t -> period:Sim.Time.t -> (string * (unit -> float)) list -> t

val stop : t -> unit

(** [points t name] returns the samples of [name] in chronological order. *)
val points : t -> string -> (Sim.Time.t * float) list

val names : t -> string list
