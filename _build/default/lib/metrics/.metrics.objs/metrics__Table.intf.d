lib/metrics/table.mli:
