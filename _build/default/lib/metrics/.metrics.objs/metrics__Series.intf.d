lib/metrics/series.mli: Sim
