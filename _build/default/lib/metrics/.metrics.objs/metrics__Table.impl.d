lib/metrics/table.ml: Array Buffer Float List Printf String
