lib/metrics/series.ml: Hashtbl List Sim
