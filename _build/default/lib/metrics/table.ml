let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~title ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let add_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  add_row headers;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (max 1 ncols - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter add_row rows;
  Buffer.contents buf

let render_series ~title ~x_label ~x ~cols =
  let headers = x_label :: List.map fst cols in
  let nrows = List.length x in
  List.iter
    (fun (name, vs) ->
      if List.length vs <> nrows then
        invalid_arg
          (Printf.sprintf "Table.render_series: column %S has %d values, expected %d"
             name (List.length vs) nrows))
    cols;
  let cell = function None -> "-" | Some v -> fmt_float v in
  let rows =
    List.mapi
      (fun i xi -> xi :: List.map (fun (_, vs) -> cell (List.nth vs i)) cols)
      x
  in
  render ~title ~headers rows

let spark values =
  let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |]
  in
  match values with
  | [] -> ""
  | vs ->
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      let range = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
      let buf = Buffer.create (List.length vs * 3) in
      List.iter
        (fun v ->
          let idx = 1 + int_of_float ((v -. lo) /. range *. 7.0) in
          Buffer.add_string buf glyphs.(min 8 idx))
        vs;
      Buffer.contents buf
