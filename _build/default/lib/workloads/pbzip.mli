(** pbzip2-like parallel compressor (paper Figures 5 and 11): several
    worker threads claim fixed-size chunks of a shared input file, read
    them through the page cache, compress them (CPU burst plus a
    per-thread sorting buffer of anonymous memory), and write a smaller
    output.  Multi-threading lets Linux-style asynchronous page faults
    overlap host swap-ins with compute. *)

val workload :
  ?threads:int ->
  ?chunk_pages:int ->
  ?compute_us_per_page:int ->
  ?anon_mb_per_thread:int ->
  ?queue_mb:int ->
  input_mb:int ->
  unit ->
  Vmm.Workload.t
