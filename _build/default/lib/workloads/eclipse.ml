module W = Vmm.Workload

let workload ?(heap_mb = 160) ?(overhead_mb = 0) ?(classes_mb = 32)
    ?(burst_mb = 0) ?(iterations = 24) ?(touches_per_iter = 1200)
    ?(gc_every = 4) ?(compute_us = 400) () =
  let heap_pages = Storage.Geom.pages_of_mb heap_mb in
  let overhead_pages = Storage.Geom.pages_of_mb (max 1 overhead_mb) in
  let class_blocks = Storage.Geom.pages_of_mb classes_mb in
  let setup os rng =
    let classes = Guest.Guestos.create_file os ~blocks:class_blocks in
    let heap = Guest.Guestos.alloc_region os ~pages:heap_pages in
    (* Cold JVM overhead (JIT code cache, metaspace, buffers): large,
       resident, but touched only occasionally. *)
    let overhead = Guest.Guestos.alloc_region os ~pages:overhead_pages in
    let overhead_pos = ref 0 in
    let phase = ref `Load and pos = ref 0 and iter = ref 0 in
    let touches = ref 0 in
    let burst_pages = Storage.Geom.pages_of_mb (max 1 burst_mb) in
    let burst_region = ref None in
    let rec thread () =
      match !phase with
      | `Load ->
          if !pos < class_blocks then begin
            let op = W.File_read (classes, !pos) in
            incr pos;
            Some op
          end
          else begin
            phase := `Mutate;
            pos := 0;
            touches := 0;
            thread ()
          end
      | `Mutate ->
          if !iter >= iterations then None
          else if !touches < touches_per_iter then begin
            incr touches;
            if !touches land 7 = 0 then Some (W.Compute compute_us)
            else if overhead_mb > 0 && !touches land 31 = 0 then begin
              (* An occasional walk through the cold JVM area. *)
              overhead_pos := (!overhead_pos + 1) mod overhead_pages;
              Some (W.Touch (overhead, !overhead_pos, false))
            end
            else begin
              (* Mutator behaviour: mostly reads, with strong temporal
                 locality around a slowly drifting nursery window. *)
              let hot = max 1 (heap_pages / 4) in
              let hot_base = !iter * 131 mod heap_pages in
              let idx =
                if Sim.Rng.bool rng 0.8 then
                  (hot_base + Sim.Rng.int rng hot) mod heap_pages
                else Sim.Rng.int rng heap_pages
              in
              let write = Sim.Rng.int rng 4 = 0 in
              Some (W.Touch (heap, idx, write))
            end
          end
          else begin
            incr iter;
            touches := 0;
            if gc_every > 0 && !iter mod gc_every = 0 then begin
              phase := `Gc;
              pos := 0
            end
            else if burst_mb > 0 && !iter mod 2 = 1 then begin
              (* Transient allocation burst (harness/JIT activity): the
                 demand spike that triggers over-ballooning kills. *)
              phase := `Burst;
              pos := 0;
              burst_region := Some (Guest.Guestos.alloc_region os ~pages:burst_pages)
            end;
            thread ()
          end
      | `Burst -> (
          match !burst_region with
          | None ->
              phase := `Mutate;
              thread ()
          | Some r ->
              if !pos < burst_pages then begin
                let i = !pos in
                incr pos;
                Some (W.Overwrite (r, i))
              end
              else begin
                Guest.Guestos.free_region os r;
                burst_region := None;
                phase := `Mutate;
                thread ()
              end)
      | `Gc ->
          (* Full-heap mark pass; every 16th page is compacted (copied). *)
          if !pos < heap_pages then begin
            let i = !pos in
            incr pos;
            if i land 15 = 0 then Some (W.Memcpy (heap, i))
            else Some (W.Touch (heap, i, false))
          end
          else begin
            phase := `Mutate;
            touches := 0;
            thread ()
          end
    in
    let cleanup () =
      Guest.Guestos.free_region os heap;
      Guest.Guestos.free_region os overhead;
      match !burst_region with
      | Some r -> Guest.Guestos.free_region os r
      | None -> ()
    in
    { W.threads = [ thread ]; cleanup }
  in
  { W.name = Printf.sprintf "eclipse-heap%dMB" heap_mb; setup }
