(** Kernbench-like kernel build (paper Figure 12): a stream of short
    compiler jobs.  Each job reads a few source blocks (with a shared hot
    header set), allocates a fresh anonymous workspace, fills it (page
    zeroing and copying — the Preventer's prey), computes, writes an
    object file and exits, returning its memory to the guest free list. *)

val workload :
  ?threads:int ->
  ?units:int ->
  ?tree_mb:int ->
  ?job_anon_pages:int ->
  ?compute_us:int ->
  unit ->
  Vmm.Workload.t
