(** Sysbench sequential file-read benchmark (paper Sections 3.1, 5.4 and
    Figures 3 and 9): iteratively reads a file through the page cache.
    The first iteration does explicit disk I/O; later iterations hit the
    guest page cache — whose pages the host may have reclaimed. *)

val workload :
  ?iterations:int ->
  ?compute_us:int ->
  ?on_iteration:(int -> unit) ->
  file_mb:int ->
  unit ->
  Vmm.Workload.t
(** [on_iteration i] fires when iteration [i] (0-based) completes; it is
    also called with [-1] when the workload starts, so consecutive call
    times bracket each iteration. *)
