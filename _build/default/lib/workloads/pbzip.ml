module W = Vmm.Workload

let workload ?(threads = 8) ?(chunk_pages = 225) ?(compute_us_per_page = 600)
    ?(anon_mb_per_thread = 8) ?(queue_mb = 48) ~input_mb () =
  let input_blocks = Storage.Geom.pages_of_mb input_mb in
  let output_blocks = max 1 (input_blocks / 4) in
  let anon_pages = Storage.Geom.pages_of_mb anon_mb_per_thread in
  let queue_pages = Storage.Geom.pages_of_mb queue_mb in
  let setup os _rng =
    let input = Guest.Guestos.create_file os ~blocks:input_blocks in
    let output = Guest.Guestos.create_file os ~blocks:output_blocks in
    (* Shared producer/consumer block queue (pbzip2 keeps many blocks in
       flight between its reader and the compressors). *)
    let queue = Guest.Guestos.alloc_region os ~pages:queue_pages in
    let next_chunk = ref 0 in
    let nchunks = (input_blocks + chunk_pages - 1) / chunk_pages in
    let regions = ref [ queue ] in
    let make_thread tid =
      let region = Guest.Guestos.alloc_region os ~pages:anon_pages in
      regions := region :: !regions;
      let chunk = ref (-1) and j = ref 0 and step = ref 0 in
      let claim () =
        if !next_chunk >= nchunks then false
        else begin
          chunk := !next_chunk;
          incr next_chunk;
          j := 0;
          step := 0;
          true
        end
      in
      (* Per input page: read -> compress (CPU) -> buffer churn -> every
         fourth page, write one output page. *)
      let rec thread () =
        if !chunk < 0 && not (claim ()) then None
        else begin
          let start = !chunk * chunk_pages in
          let size = min chunk_pages (input_blocks - start) in
          if !j >= size then
            if claim () then thread () else None
          else begin
            let block = start + !j in
            match !step with
            | 0 ->
                step := 1;
                Some (W.File_read (input, block))
            | 1 ->
                step := 2;
                Some (W.Compute compute_us_per_page)
            | 2 ->
                step := 3;
                if block land 1 = 0 then
                  Some (W.Touch (queue, block mod queue_pages, true))
                else
                  Some (W.Touch (region, ((block * 7) + tid) mod anon_pages, true))
            | _ ->
                step := 0;
                incr j;
                let out = block / 4 in
                if block land 3 = 3 && out < output_blocks then
                  Some (W.File_write (output, out))
                else thread ()
          end
        end
      in
      thread
    in
    let ths = List.init threads make_thread in
    let cleanup () = List.iter (Guest.Guestos.free_region os) !regions in
    { W.threads = ths; cleanup }
  in
  { W.name = Printf.sprintf "pbzip-%dMB" input_mb; setup }
