module W = Vmm.Workload

let workload ?(threads = 2) ?(units = 1500) ?(tree_mb = 320)
    ?(job_anon_pages = 64) ?(compute_us = 15_000) () =
  let tree_blocks = Storage.Geom.pages_of_mb tree_mb in
  let fill = min 32 job_anon_pages in
  let setup os rng =
    let tree = Guest.Guestos.create_file os ~blocks:tree_blocks in
    let objs = Guest.Guestos.create_file os ~blocks:(max 1 (units * 2)) in
    let next_unit = ref 0 in
    let live_regions = ref [] in
    let make_thread _tid =
      let rng = Sim.Rng.split rng in
      (* Job phases: 2 hot header reads, 6 locality source reads, alloc
         workspace, fill 32 pages, compute, 2 object writes, exit. *)
      let unit_no = ref (-1) and step = ref 0 in
      let region = ref None in
      let claim () =
        if !next_unit >= units then false
        else begin
          unit_no := !next_unit;
          incr next_unit;
          step := 0;
          true
        end
      in
      let rec thread () =
        if !unit_no < 0 && not (claim ()) then None
        else begin
          let u = !unit_no in
          let s = !step in
          incr step;
          if s < 2 then
            (* Hot shared headers: first 2k blocks of the tree. *)
            Some (W.File_read (tree, Sim.Rng.int rng (min 2048 tree_blocks)))
          else if s < 8 then begin
            let base = u * 37 mod max 1 (tree_blocks - 8) in
            Some (W.File_read (tree, base + (s - 2)))
          end
          else if s = 8 then begin
            let r = Guest.Guestos.alloc_region os ~pages:job_anon_pages in
            region := Some r;
            live_regions := r :: !live_regions;
            thread ()
          end
          else if s < 9 + fill then begin
            let r = Option.get !region in
            let i = s - 9 in
            if i land 1 = 0 then Some (W.Overwrite (r, i))
            else Some (W.Memcpy (r, i))
          end
          else if s = 9 + fill then Some (W.Compute compute_us)
          else if s < 9 + fill + 3 then
            Some (W.File_write (objs, ((u * 2) + (s - (10 + fill))) mod (units * 2)))
          else begin
            (match !region with
            | Some r ->
                Guest.Guestos.free_region os r;
                live_regions := List.filter (fun x -> x != r) !live_regions;
                region := None
            | None -> ());
            if claim () then thread () else None
          end
        end
      in
      thread
    in
    let ths = List.init threads make_thread in
    let cleanup () =
      List.iter (Guest.Guestos.free_region os) !live_regions;
      live_regions := []
    in
    { W.threads = ths; cleanup }
  in
  { W.name = Printf.sprintf "kernbench-%du" units; setup }
