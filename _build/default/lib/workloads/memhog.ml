module W = Vmm.Workload

let workload ?(read_first_mb = 0) ?(pattern = `Mixed) ?(compute_us = 2)
    ?(on_alloc_phase = fun () -> ()) ?(on_done = fun () -> ()) ~mb () =
  let pages = Storage.Geom.pages_of_mb mb in
  let read_blocks = Storage.Geom.pages_of_mb read_first_mb in
  let setup os _rng =
    let file =
      if read_blocks > 0 then
        Some (Guest.Guestos.create_file os ~blocks:read_blocks)
      else None
    in
    let region = ref None in
    let phase = ref `Read in
    let pos = ref 0 in
    let write_pending = ref true in
    let thread () =
      match !phase with
      | `Read -> (
          match file with
          | Some f when !pos < read_blocks ->
              let op = W.File_read (f, !pos) in
              incr pos;
              Some op
          | Some _ | None ->
              phase := `Alloc;
              pos := 0;
              Some (W.Mark on_alloc_phase))
      | `Alloc ->
          let r =
            match !region with
            | Some r -> r
            | None ->
                let r = Guest.Guestos.alloc_region os ~pages in
                region := Some r;
                r
          in
          if !pos >= pages then begin
            phase := `Done;
            Some (W.Mark on_done)
          end
          else if !write_pending then begin
            write_pending := false;
            let i = !pos in
            match pattern with
            | `Rep -> Some (W.Overwrite (r, i))
            | `Memcpy -> Some (W.Memcpy (r, i))
            | `Mixed ->
                if i land 1 = 0 then Some (W.Overwrite (r, i))
                else Some (W.Memcpy (r, i))
          end
          else begin
            write_pending := true;
            incr pos;
            Some (W.Compute compute_us)
          end
      | `Done -> None
    in
    let cleanup () =
      match !region with
      | Some r -> Guest.Guestos.free_region os r
      | None -> ()
    in
    { W.threads = [ thread ]; cleanup }
  in
  { W.name = Printf.sprintf "memhog-%dMB" mb; setup }
