module W = Vmm.Workload

let workload ?(threads = 2) ?(table_mb = 512) ?(compute_us_per_block = 900)
    ?(writes_per_block = 4) ~input_mb () =
  let input_blocks = Storage.Geom.pages_of_mb input_mb in
  let table_pages = Storage.Geom.pages_of_mb table_mb in
  let setup os rng =
    let input = Guest.Guestos.create_file os ~blocks:input_blocks in
    let table = Guest.Guestos.alloc_region os ~pages:table_pages in
    let next_block = ref 0 in
    let slice = (table_pages + threads - 1) / threads in
    let make_thread tid =
      let rng = Sim.Rng.split rng in
      let block = ref (-1) and step = ref 0 in
      let reduce_pos = ref (tid * slice) in
      let reduce_end = min table_pages ((tid + 1) * slice) in
      let rec thread () =
        if !block >= 0 || !next_block < input_blocks then begin
          (* Map phase. *)
          if !block < 0 then begin
            block := !next_block;
            incr next_block;
            step := 0;
            thread ()
          end
          else begin
            let s = !step in
            incr step;
            if s = 0 then Some (W.File_read (input, !block))
            else if s = 1 then Some (W.Compute compute_us_per_block)
            else if s < 2 + writes_per_block then begin
              (* Word counts are zipfian: most updates hit hot buckets. *)
              let hot = max 1 (table_pages / 5) in
              let idx =
                if Sim.Rng.bool rng 0.75 then Sim.Rng.int rng hot
                else Sim.Rng.int rng table_pages
              in
              Some (W.Touch (table, idx, true))
            end
            else begin
              block := -1;
              thread ()
            end
          end
        end
        else if !reduce_pos < reduce_end then begin
          (* Reduce phase: sequential scan of this thread's table slice. *)
          let i = !reduce_pos in
          incr reduce_pos;
          if i land 31 = 0 then Some (W.Compute compute_us_per_block)
          else Some (W.Touch (table, i, false))
        end
        else None
      in
      thread
    in
    let ths = List.init threads make_thread in
    let cleanup () = Guest.Guestos.free_region os table in
    { W.threads = ths; cleanup }
  in
  { W.name = Printf.sprintf "metis-%dMB" input_mb; setup }
