(** Allocate-and-touch microbenchmark (paper Figure 10): optionally read
    a file first (to fill the page cache / push the system into
    overcommit), then allocate a region and overwrite it page by page —
    the workload whose swap-ins are all false reads. *)

val workload :
  ?read_first_mb:int ->
  ?pattern:[ `Rep | `Memcpy | `Mixed ] ->
  ?compute_us:int ->
  ?on_alloc_phase:(unit -> unit) ->
  ?on_done:(unit -> unit) ->
  mb:int ->
  unit ->
  Vmm.Workload.t
(** [pattern] selects how pages are overwritten: [`Rep] whole-page REP
    stores (recognized outright by the Preventer), [`Memcpy] sequences of
    512-byte stores (exercise the emulation buffers), [`Mixed]
    alternates.  [on_alloc_phase] fires when the read phase ends and the
    allocation phase begins; [on_done] when the touch pass completes. *)
