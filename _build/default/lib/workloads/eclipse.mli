(** DaCapo-Eclipse-like JVM workload (paper Figure 13): a managed heap
    whose garbage collector periodically walks and compacts everything —
    the LRU-pathological access pattern the paper calls out for Java in
    undersized guests. *)

val workload :
  ?heap_mb:int ->
  ?overhead_mb:int ->
  ?classes_mb:int ->
  ?burst_mb:int ->
  ?iterations:int ->
  ?touches_per_iter:int ->
  ?gc_every:int ->
  ?compute_us:int ->
  unit ->
  Vmm.Workload.t
