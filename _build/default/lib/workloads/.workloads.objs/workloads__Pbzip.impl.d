lib/workloads/pbzip.ml: Guest List Printf Storage Vmm
