lib/workloads/sysbench.mli: Vmm
