lib/workloads/kernbench.mli: Vmm
