lib/workloads/eclipse.ml: Guest Printf Sim Storage Vmm
