lib/workloads/kernbench.ml: Guest List Option Printf Sim Storage Vmm
