lib/workloads/memhog.ml: Guest Printf Storage Vmm
