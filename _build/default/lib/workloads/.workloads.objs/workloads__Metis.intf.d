lib/workloads/metis.mli: Vmm
