lib/workloads/memhog.mli: Vmm
