lib/workloads/sysbench.ml: Guest Printf Storage Vmm
