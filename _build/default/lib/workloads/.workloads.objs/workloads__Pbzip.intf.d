lib/workloads/pbzip.mli: Vmm
