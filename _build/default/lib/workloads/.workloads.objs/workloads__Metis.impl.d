lib/workloads/metis.ml: Guest List Printf Sim Storage Vmm
