lib/workloads/eclipse.mli: Vmm
