(** Metis MapReduce word count (paper Figures 4 and 14): map threads
    stream a large input file and scatter writes into big in-memory hash
    tables; a reduce pass then scans the tables.  Memory consumption is
    dominated by the tables, giving the bursty, growing working set that
    challenges balloon managers. *)

val workload :
  ?threads:int ->
  ?table_mb:int ->
  ?compute_us_per_block:int ->
  ?writes_per_block:int ->
  input_mb:int ->
  unit ->
  Vmm.Workload.t
