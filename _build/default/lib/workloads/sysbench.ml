module W = Vmm.Workload

let workload ?(iterations = 1) ?(compute_us = 3) ?(on_iteration = fun _ -> ())
    ~file_mb () =
  let blocks = Storage.Geom.pages_of_mb file_mb in
  let setup os _rng =
    let file = Guest.Guestos.create_file os ~blocks in
    let started = ref false in
    let iter = ref 0 and pos = ref 0 and read_phase = ref true in
    let thread () =
      if not !started then begin
        started := true;
        (* Mark -1: workload start, so iteration 0 has a baseline. *)
        Some (W.Mark (fun () -> on_iteration (-1)))
      end
      else if !iter >= iterations then None
      else if !pos < blocks then
        if !read_phase then begin
          read_phase := false;
          Some (W.File_read (file, !pos))
        end
        else begin
          read_phase := true;
          incr pos;
          Some (W.Compute compute_us)
        end
      else begin
        let i = !iter in
        incr iter;
        pos := 0;
        Some (W.Mark (fun () -> on_iteration i))
      end
    in
    { W.threads = [ thread ]; cleanup = (fun () -> ()) }
  in
  { W.name = Printf.sprintf "sysbench-read-%dMB" file_mb; setup }
