(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible bit-for-bit from their seed and
    independent streams can be split off for independent subsystems. *)

type t

(** [create seed] makes a generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create] on a native int seed. *)
val of_int : int -> t

(** [split t] derives an independent generator, advancing [t]. *)
val split : t -> t

(** [next_int64 t] draws 64 uniformly random bits. *)
val next_int64 : t -> int64

(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] draws uniformly from [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float
