(** Polymorphic binary min-heap, used as the event queue of the engine.

    Elements are ordered by an integer priority supplied at [add] time; ties
    are broken by insertion order, so the heap is stable — two events
    scheduled for the same instant fire in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t

(** [add t ~priority v] inserts [v]. O(log n). *)
val add : 'a t -> priority:int -> 'a -> unit

(** [pop_min t] removes and returns the minimum element with its priority,
    or [None] if the heap is empty. O(log n). *)
val pop_min : 'a t -> (int * 'a) option

(** [peek_min t] returns the minimum without removing it. O(1). *)
val peek_min : 'a t -> (int * 'a) option

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
