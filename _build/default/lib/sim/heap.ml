type 'a entry = { priority : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = Array.make 64 None; size = 0; next_seq = 0 }

let entry_exn = function
  | Some e -> e
  | None -> assert false

(* [lt a b] orders first by priority, then by insertion sequence. *)
let lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let ei = entry_exn t.data.(i) and ep = entry_exn t.data.(parent) in
    if lt ei ep then begin
      t.data.(i) <- Some ep;
      t.data.(parent) <- Some ei;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt (entry_exn t.data.(l)) (entry_exn t.data.(!smallest)) then
    smallest := l;
  if r < t.size && lt (entry_exn t.data.(r)) (entry_exn t.data.(!smallest)) then
    smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~priority value =
  if t.size = Array.length t.data then grow t;
  let e = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  t.data.(t.size) <- Some e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let e = entry_exn t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (e.priority, e.value)
  end

let peek_min t =
  if t.size = 0 then None
  else
    let e = entry_exn t.data.(0) in
    Some (e.priority, e.value)

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  Array.fill t.data 0 t.size None;
  t.size <- 0
