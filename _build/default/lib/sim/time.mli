(** Virtual time for the discrete-event simulator.

    Time is an integer count of microseconds since the start of the
    simulation.  All latencies in the system (disk seeks, page-fault
    overheads, compute bursts) are expressed in this unit, so a whole
    experiment is deterministic and independent of wall-clock speed. *)

type t = int

val zero : t

(** [us n] is [n] microseconds. *)
val us : int -> t

(** [ms n] is [n] milliseconds. *)
val ms : int -> t

(** [sec n] is [n] seconds. *)
val sec : int -> t

(** [of_float_us f] rounds a fractional microsecond count to a tick. *)
val of_float_us : float -> t

val to_us : t -> int
val to_ms_float : t -> float
val to_sec_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int

(** [pp] prints a human-readable duration, picking the unit by magnitude
    (e.g. ["38.7s"], ["1.2ms"], ["17us"]). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
