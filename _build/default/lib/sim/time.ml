type t = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let of_float_us f = int_of_float (Float.round f)
let to_us t = t
let to_ms_float t = float_of_int t /. 1e3
let to_sec_float t = float_of_int t /. 1e6
let add = ( + )
let sub = ( - )
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare

let pp fmt t =
  if t >= 1_000_000 then Format.fprintf fmt "%.1fs" (to_sec_float t)
  else if t >= 1_000 then Format.fprintf fmt "%.1fms" (to_ms_float t)
  else Format.fprintf fmt "%dus" t

let to_string t = Format.asprintf "%a" pp t
