type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix seed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in a native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped onto [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)
