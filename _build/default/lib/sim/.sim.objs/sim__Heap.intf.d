lib/sim/heap.mli:
