lib/sim/rng.mli:
