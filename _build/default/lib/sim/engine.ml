type event = { mutable cancelled : bool; fn : unit -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable live : int;
}

let create () = { clock = Time.zero; queue = Heap.create (); live = 0 }
let now t = t.clock

let schedule_at t time fn =
  if Time.compare time t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)"
         (Time.to_us time) (Time.to_us t.clock));
  let ev = { cancelled = false; fn } in
  Heap.add t.queue ~priority:(Time.to_us time) ev;
  t.live <- t.live + 1;
  ev

let schedule_after t delay fn = schedule_at t (Time.add t.clock delay) fn

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, ev) ->
      if ev.cancelled then step t
      else begin
        t.clock <- time;
        t.live <- t.live - 1;
        ev.fn ();
        true
      end

let run t = while step t do () done

let rec run_until t limit =
  match Heap.peek_min t.queue with
  | None -> false
  | Some (_, ev) when ev.cancelled ->
      ignore (Heap.pop_min t.queue);
      run_until t limit
  | Some (time, _) ->
      if time > Time.to_us limit then true
      else begin
        ignore (step t);
        run_until t limit
      end
