(* Consolidation: how many guests fit on one host before performance
   falls apart — and how much further VSwapper pushes the cliff.

     dune exec examples/consolidation.exe

   Guests run a GC-heavy in-memory workload with a ~96MB resident heap;
   the host has 640MB, so pressure starts around 6 guests.  The table
   reports average guest runtime as guests pile on. *)

let run_point ~vs ~n =
  let workload =
    Workloads.Eclipse.workload ~heap_mb:96 ~classes_mb:16 ~iterations:10
      ~touches_per_iter:600 ~gc_every:3 ()
  in
  let guests =
    List.init n (fun _ ->
        {
          (Vmm.Config.default_guest ~workload) with
          mem_mb = 256;
          vcpus = 1;
          data_mb = 64;
        })
  in
  let cfg =
    {
      (Vmm.Config.default ~guests) with
      vs;
      host_mem_mb = 640;
      host_swap_mb = 2048;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  let finished =
    Array.to_list result.Vmm.Machine.guests
    |> List.filter_map (fun g ->
           Option.map Sim.Time.to_sec_float g.Vmm.Machine.runtime)
  in
  match finished with
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

let () =
  let ns = [ 2; 4; 6; 8 ] in
  Printf.printf "%8s %14s %14s\n" "guests" "baseline[s]" "vswapper[s]";
  List.iter
    (fun n ->
      let cell = function
        | Some v -> Printf.sprintf "%14.1f" v
        | None -> Printf.sprintf "%14s" "-"
      in
      let b = run_point ~vs:Vswapper.Vsconfig.baseline ~n in
      let v = run_point ~vs:Vswapper.Vsconfig.vswapper ~n in
      Printf.printf "%8d %s %s\n%!" n (cell b) (cell v))
    ns
