(* Quickstart: one overcommitted guest sequentially reading a file, run
   under the four configurations of the paper's Figure 3.

     dune exec examples/quickstart.exe

   The guest believes it has 512 MB but the host caps its residency at
   100 MB; watch what uncooperative swapping costs and what each
   VSwapper component buys back. *)

let run_one ~label ~vs ~balloon =
  let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb:200 () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 512;
      resident_limit_mb = Some 100;
      balloon_static_mb = (if balloon then Some 100 else None);
      warm_all = true;
    }
  in
  let cfg =
    { (Vmm.Config.default ~guests:[ guest ]) with vs; host_mem_mb = 1024 }
  in
  let machine = Vmm.Machine.build cfg in
  let result = Vmm.Machine.run machine in
  let stats = result.Vmm.Machine.stats in
  (match result.Vmm.Machine.guests.(0).Vmm.Machine.runtime with
  | Some rt ->
      Printf.printf "%-20s %8.2fs   stale-reads %6d  false-reads %6d  silent-writes %6d\n%!"
        label (Sim.Time.to_sec_float rt) stats.Metrics.Stats.stale_reads
        stats.Metrics.Stats.false_reads stats.Metrics.Stats.silent_swap_writes
  | None -> Printf.printf "%-20s crashed (OOM)\n%!" label)

let () =
  print_endline "Sequential 200MB read; guest believes 512MB, has 100MB:";
  run_one ~label:"baseline" ~vs:Vswapper.Vsconfig.baseline ~balloon:false;
  run_one ~label:"mapper only" ~vs:Vswapper.Vsconfig.mapper_only ~balloon:false;
  run_one ~label:"vswapper" ~vs:Vswapper.Vsconfig.vswapper ~balloon:false;
  run_one ~label:"balloon+baseline" ~vs:Vswapper.Vsconfig.baseline ~balloon:true;
  run_one ~label:"balloon+vswapper" ~vs:Vswapper.Vsconfig.vswapper ~balloon:true
