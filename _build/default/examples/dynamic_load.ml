(* Dynamic load: a MOM-like balloon manager juggling phased guests, with
   and without VSwapper underneath — the paper's Section 2.3 story that
   "ballooning takes time".

     dune exec examples/dynamic_load.exe

   Four MapReduce guests start 10 seconds apart on an overcommitted
   host.  The manager samples every 4 seconds and moves balloon targets
   in bounded steps, so it always lags the load; VSwapper makes the
   inevitable uncooperative swapping survivable in the meantime. *)

let run ~label ~vs ~managed =
  let workload =
    Workloads.Metis.workload ~threads:2 ~table_mb:160
      ~compute_us_per_block:600 ~input_mb:96 ()
  in
  let guests =
    List.init 4 (fun i ->
        {
          (Vmm.Config.default_guest ~workload) with
          mem_mb = 384;
          vcpus = 2;
          start_after = Sim.Time.sec (10 * i);
          data_mb = 160;
        })
  in
  let manager =
    if managed then
      Some
        {
          Balloon.Manager.default_policy with
          period = Sim.Time.sec 4;
          host_reserve_frames = Storage.Geom.pages_of_mb 128;
          guest_min_pages = Storage.Geom.pages_of_mb 96;
        }
    else None
  in
  let cfg =
    {
      (Vmm.Config.default ~guests) with
      vs;
      manager;
      host_mem_mb = 768;
      host_swap_mb = 3072;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  let s = result.Vmm.Machine.stats in
  let times =
    Array.to_list result.Vmm.Machine.guests
    |> List.map (fun g ->
           match g.Vmm.Machine.runtime with
           | Some rt -> Printf.sprintf "%.0f" (Sim.Time.to_sec_float rt)
           | None -> "-")
  in
  Printf.printf "%-22s per-guest [s]: %-24s  balloon +%dMB/-%dMB  host swapins %d\n%!"
    label
    (String.concat " " times)
    (Storage.Geom.mb_of_pages s.Metrics.Stats.balloon_inflated_pages)
    (Storage.Geom.mb_of_pages s.Metrics.Stats.balloon_deflated_pages)
    s.Metrics.Stats.host_swapins

let () =
  print_endline "4 phased MapReduce guests, 4x384MB on a 768MB host:";
  run ~label:"baseline" ~vs:Vswapper.Vsconfig.baseline ~managed:false;
  run ~label:"balloon+baseline" ~vs:Vswapper.Vsconfig.baseline ~managed:true;
  run ~label:"vswapper" ~vs:Vswapper.Vsconfig.vswapper ~managed:false;
  run ~label:"balloon+vswapper" ~vs:Vswapper.Vsconfig.vswapper ~managed:true
