examples/quickstart.mli:
