examples/consolidation.mli:
