examples/dynamic_load.ml: Array Balloon List Metrics Printf Sim Storage String Vmm Vswapper Workloads
