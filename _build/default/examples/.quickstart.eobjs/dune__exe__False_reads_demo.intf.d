examples/false_reads_demo.mli:
