examples/false_reads_demo.ml: Array Metrics Printf Sim Vmm Vswapper Workloads
