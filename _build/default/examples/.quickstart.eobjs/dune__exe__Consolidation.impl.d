examples/consolidation.ml: Array List Option Printf Sim Vmm Vswapper Workloads
