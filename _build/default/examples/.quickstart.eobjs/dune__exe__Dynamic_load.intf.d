examples/dynamic_load.mli:
