examples/quickstart.ml: Array Metrics Printf Sim Vmm Vswapper Workloads
