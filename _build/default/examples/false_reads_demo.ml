(* False-reads demo: watch the False Reads Preventer at work.

     dune exec examples/false_reads_demo.exe

   A guest whose memory the host has quietly swapped out allocates a big
   buffer.  Every page it zeroes or fills would normally drag the dead
   old contents back from the host swap area first ("false reads",
   paper Section 3).  Compare the three configurations and the pattern
   split: REP-prefixed whole-page stores are recognized outright, while
   memcpy-style store sequences ride the emulation buffers. *)

let run ~label ~vs ~pattern =
  let workload =
    Workloads.Memhog.workload ~read_first_mb:64 ~pattern ~mb:64 ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 256;
      resident_limit_mb = Some 64;
      warm_all = true;
      data_mb = 128;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      host_mem_mb = 512;
      host_swap_mb = 384;
    }
  in
  let result = Vmm.Machine.run (Vmm.Machine.build cfg) in
  let s = result.Vmm.Machine.stats in
  let rt =
    match result.Vmm.Machine.guests.(0).Vmm.Machine.runtime with
    | Some rt -> Printf.sprintf "%6.2fs" (Sim.Time.to_sec_float rt)
    | None -> "crashed"
  in
  Printf.printf "%-28s %s  false-reads %6d  remaps %6d  merges %5d  timeouts %5d\n%!"
    label rt s.Metrics.Stats.false_reads s.Metrics.Stats.preventer_remaps
    s.Metrics.Stats.preventer_merges s.Metrics.Stats.preventer_timeouts

let () =
  print_endline "allocate+fill 64MB in a 64MB-resident guest (after a 64MB read):";
  run ~label:"baseline / rep" ~vs:Vswapper.Vsconfig.baseline ~pattern:`Rep;
  run ~label:"mapper-only / rep" ~vs:Vswapper.Vsconfig.mapper_only ~pattern:`Rep;
  run ~label:"vswapper / rep" ~vs:Vswapper.Vsconfig.vswapper ~pattern:`Rep;
  run ~label:"vswapper / memcpy" ~vs:Vswapper.Vsconfig.vswapper ~pattern:`Memcpy;
  run ~label:"vswapper / mixed" ~vs:Vswapper.Vsconfig.vswapper ~pattern:`Mixed
