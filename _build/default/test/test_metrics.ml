(* Tests for counters, time series and table rendering. *)

let check = Alcotest.check

let stats_copy_and_diff () =
  let s = Metrics.Stats.create () in
  s.Metrics.Stats.disk_ops <- 10;
  s.Metrics.Stats.stale_reads <- 3;
  let snap = Metrics.Stats.copy s in
  s.Metrics.Stats.disk_ops <- 25;
  s.Metrics.Stats.stale_reads <- 7;
  check Alcotest.int "copy is frozen" 10 snap.Metrics.Stats.disk_ops;
  let d = Metrics.Stats.diff s snap in
  check Alcotest.int "diff disk_ops" 15 d.Metrics.Stats.disk_ops;
  check Alcotest.int "diff stale" 4 d.Metrics.Stats.stale_reads;
  check Alcotest.int "diff untouched" 0 d.Metrics.Stats.false_reads

let stats_pp_nonzero_only () =
  let s = Metrics.Stats.create () in
  s.Metrics.Stats.silent_swap_writes <- 5;
  let out = Format.asprintf "%a" Metrics.Stats.pp s in
  Alcotest.(check bool) "mentions nonzero" true
    (Test_util.contains out "silent_swap_writes");
  Alcotest.(check bool) "omits zero" false
    (Test_util.contains out "false_reads")

let table_render () =
  let out =
    Metrics.Table.render ~title:"t" ~headers:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has title" true (Test_util.contains out "t\n");
  Alcotest.(check bool) "has cell" true (Test_util.contains out "333")

let table_series () =
  let out =
    Metrics.Table.render_series ~title:"s" ~x_label:"x" ~x:[ "1"; "2" ]
      ~cols:[ ("c", [ Some 1.0; None ]) ]
  in
  Alcotest.(check bool) "crash cell" true (Test_util.contains out "-")

let table_series_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Table.render_series: column \"c\" has 1 values, expected 2")
    (fun () ->
      ignore
        (Metrics.Table.render_series ~title:"s" ~x_label:"x" ~x:[ "1"; "2" ]
           ~cols:[ ("c", [ Some 1.0 ]) ]))

let fmt_float_cases () =
  check Alcotest.string "int-like" "3" (Metrics.Table.fmt_float 3.0);
  check Alcotest.string "large" "123" (Metrics.Table.fmt_float 123.4);
  check Alcotest.string "mid" "12.3" (Metrics.Table.fmt_float 12.34);
  check Alcotest.string "small" "1.23" (Metrics.Table.fmt_float 1.234)

let spark_cases () =
  check Alcotest.string "empty" "" (Metrics.Table.spark []);
  let s = Metrics.Table.spark [ 0.0; 1.0 ] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let series_sampling () =
  let engine = Sim.Engine.create () in
  let v = ref 0.0 in
  let series =
    Metrics.Series.create ~engine ~period:(Sim.Time.us 10)
      [ ("probe", fun () -> !v) ]
  in
  (* something to keep the engine alive for 35us *)
  ignore (Sim.Engine.schedule_at engine (Sim.Time.us 15) (fun () -> v := 5.0));
  ignore (Sim.Engine.schedule_at engine (Sim.Time.us 35) (fun () -> Metrics.Series.stop series));
  Sim.Engine.run engine;
  let pts = Metrics.Series.points series "probe" in
  check Alcotest.int "three samples" 3 (List.length pts);
  let values = List.map snd pts in
  Alcotest.(check (list (float 1e-9))) "values" [ 0.0; 5.0; 5.0 ] values;
  Alcotest.(check (list string)) "names" [ "probe" ] (Metrics.Series.names series)

let tests =
    [
      ( "metrics:stats",
        [
          Alcotest.test_case "copy and diff" `Quick stats_copy_and_diff;
          Alcotest.test_case "pp nonzero only" `Quick stats_pp_nonzero_only;
        ] );
      ( "metrics:table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "series" `Quick table_series;
          Alcotest.test_case "series mismatch" `Quick table_series_mismatch;
          Alcotest.test_case "fmt_float" `Quick fmt_float_cases;
          Alcotest.test_case "spark" `Quick spark_cases;
        ] );
      ( "metrics:series", [ Alcotest.test_case "sampling" `Quick series_sampling ]);
    ]
