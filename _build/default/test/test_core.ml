(* Tests for the paper's core contribution: the Swap Mapper's tracking
   and consistency bookkeeping and the False Reads Preventer's buffer
   state machine. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck
let page = Storage.Geom.page_bytes

(* ------------------------------------------------------------------ *)
(* Mapper                                                              *)
(* ------------------------------------------------------------------ *)

let mk_mapper () = Vswapper.Mapper.create ~stats:(Metrics.Stats.create ()) ()

let mapper_track_lookup () =
  let m = mk_mapper () in
  Vswapper.Mapper.track m ~gpa:10 ~disk:0 ~block:5 ~version:2;
  (match Vswapper.Mapper.lookup m ~gpa:10 with
  | Some { disk = 0; block = 5; version = 2 } -> ()
  | _ -> Alcotest.fail "lookup mismatch");
  Alcotest.(check (list int)) "reverse" [ 10 ]
    (Vswapper.Mapper.gpas_of_block m ~disk:0 ~block:5);
  check Alcotest.int "tracked" 1 (Vswapper.Mapper.tracked m)

let mapper_retrack_moves () =
  let m = mk_mapper () in
  Vswapper.Mapper.track m ~gpa:10 ~disk:0 ~block:5 ~version:0;
  Vswapper.Mapper.track m ~gpa:10 ~disk:0 ~block:9 ~version:0;
  Alcotest.(check (list int)) "old block empty" []
    (Vswapper.Mapper.gpas_of_block m ~disk:0 ~block:5);
  Alcotest.(check (list int)) "new block" [ 10 ]
    (Vswapper.Mapper.gpas_of_block m ~disk:0 ~block:9);
  check Alcotest.int "still one entry" 1 (Vswapper.Mapper.tracked m)

let mapper_multimap () =
  let m = mk_mapper () in
  Vswapper.Mapper.track m ~gpa:1 ~disk:0 ~block:5 ~version:0;
  Vswapper.Mapper.track m ~gpa:2 ~disk:0 ~block:5 ~version:0;
  check Alcotest.int "both tracked" 2 (Vswapper.Mapper.tracked m);
  check Alcotest.int "two gpas for block" 2
    (List.length (Vswapper.Mapper.gpas_of_block m ~disk:0 ~block:5));
  let victims = Vswapper.Mapper.invalidate_block m ~disk:0 ~block:5 in
  check Alcotest.int "both invalidated" 2 (List.length victims);
  check Alcotest.int "nothing tracked" 0 (Vswapper.Mapper.tracked m)

let mapper_untrack_idempotent () =
  let m = mk_mapper () in
  Vswapper.Mapper.untrack m ~gpa:99;
  Vswapper.Mapper.track m ~gpa:99 ~disk:1 ~block:0 ~version:3;
  Vswapper.Mapper.untrack m ~gpa:99;
  Vswapper.Mapper.untrack m ~gpa:99;
  check Alcotest.int "empty" 0 (Vswapper.Mapper.tracked m);
  Alcotest.(check (list int)) "reverse empty" []
    (Vswapper.Mapper.gpas_of_block m ~disk:1 ~block:0)

let mapper_readahead_window () =
  let m = mk_mapper () in
  (* blocks 4,5,6 tracked; 7 missing; 8 tracked *)
  List.iter
    (fun (gpa, b) -> Vswapper.Mapper.track m ~gpa ~disk:0 ~block:b ~version:0)
    [ (1, 4); (2, 5); (3, 6); (4, 8) ];
  let window = Vswapper.Mapper.readahead_window m ~disk:0 ~block:4 ~max:10 in
  Alcotest.(check (list int)) "stops at gap" [ 4; 5; 6 ] (List.map fst window);
  let window = Vswapper.Mapper.readahead_window m ~disk:0 ~block:4 ~max:2 in
  Alcotest.(check (list int)) "respects max" [ 4; 5 ] (List.map fst window)

let mapper_gauge_tracks () =
  let stats = Metrics.Stats.create () in
  let m = Vswapper.Mapper.create ~stats () in
  Vswapper.Mapper.track m ~gpa:1 ~disk:0 ~block:1 ~version:0;
  Vswapper.Mapper.track m ~gpa:2 ~disk:0 ~block:2 ~version:0;
  check Alcotest.int "gauge up" 2 stats.Metrics.Stats.mapper_tracked;
  Vswapper.Mapper.untrack m ~gpa:1;
  check Alcotest.int "gauge down" 1 stats.Metrics.Stats.mapper_tracked

let mapper_model =
  QCheck.Test.make ~name:"mapper: forward/reverse maps stay consistent"
    ~count:200
    QCheck.(list (pair (int_range 0 2) (pair (int_range 0 9) (int_range 0 9))))
    (fun ops ->
      let m = mk_mapper () in
      List.iter
        (fun (op, (gpa, block)) ->
          match op with
          | 0 -> Vswapper.Mapper.track m ~gpa ~disk:0 ~block ~version:0
          | 1 -> Vswapper.Mapper.untrack m ~gpa
          | _ -> ignore (Vswapper.Mapper.invalidate_block m ~disk:0 ~block))
        ops;
      (* Every forward entry appears in its reverse bucket and vice versa. *)
      let ok = ref true in
      Vswapper.Mapper.iter m (fun gpa b ->
          if
            not
              (List.mem gpa
                 (Vswapper.Mapper.gpas_of_block m ~disk:b.Vswapper.Mapper.disk
                    ~block:b.Vswapper.Mapper.block))
          then ok := false);
      for block = 0 to 9 do
        List.iter
          (fun gpa ->
            match Vswapper.Mapper.lookup m ~gpa with
            | Some b when b.Vswapper.Mapper.block = block -> ()
            | _ -> ok := false)
          (Vswapper.Mapper.gpas_of_block m ~disk:0 ~block)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Preventer                                                           *)
(* ------------------------------------------------------------------ *)

let mk_preventer ?(window = Sim.Time.ms 1) ?(max_buffers = 32) () =
  let stats = Metrics.Stats.create () in
  (stats, Vswapper.Preventer.create ~stats ~window ~max_buffers)

let preventer_sequential_completes () =
  let stats, p = mk_preventer () in
  let decisions =
    List.init 8 (fun i ->
        Vswapper.Preventer.on_write p ~now:0 ~gpa:1 ~offset:(i * 512) ~len:512)
  in
  (match List.rev decisions with
  | Vswapper.Preventer.Completed :: rest ->
      Alcotest.(check bool) "earlier buffered" true
        (List.for_all
           (function Vswapper.Preventer.Buffered _ -> true | _ -> false)
           rest)
  | _ -> Alcotest.fail "final write did not complete the page");
  check Alcotest.int "remap counted" 1 stats.Metrics.Stats.preventer_remaps;
  Alcotest.(check bool) "buffer gone" false (Vswapper.Preventer.is_buffered p ~gpa:1)

let preventer_full_first_write () =
  let stats, p = mk_preventer () in
  (match Vswapper.Preventer.on_write p ~now:0 ~gpa:2 ~offset:0 ~len:page with
  | Vswapper.Preventer.Completed -> ()
  | _ -> Alcotest.fail "full-page first write should complete");
  check Alcotest.int "remap" 1 stats.Metrics.Stats.preventer_remaps

let preventer_nonzero_start_merges () =
  let stats, p = mk_preventer () in
  (match Vswapper.Preventer.on_write p ~now:0 ~gpa:3 ~offset:1024 ~len:512 with
  | Vswapper.Preventer.Needs_merge -> ()
  | _ -> Alcotest.fail "mid-page start should merge");
  check Alcotest.int "merge counted" 1 stats.Metrics.Stats.preventer_merges

let preventer_nonsequential_merges () =
  let stats, p = mk_preventer () in
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:4 ~offset:0 ~len:512);
  (match Vswapper.Preventer.on_write p ~now:0 ~gpa:4 ~offset:2048 ~len:512 with
  | Vswapper.Preventer.Needs_merge -> ()
  | _ -> Alcotest.fail "non-sequential should merge");
  Alcotest.(check bool) "buffer dropped" false (Vswapper.Preventer.is_buffered p ~gpa:4);
  check Alcotest.int "merge counted" 1 stats.Metrics.Stats.preventer_merges

let preventer_capacity_rejects () =
  let stats, p = mk_preventer ~max_buffers:2 () in
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:1 ~offset:0 ~len:512);
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:2 ~offset:0 ~len:512);
  (match Vswapper.Preventer.on_write p ~now:0 ~gpa:3 ~offset:0 ~len:512 with
  | Vswapper.Preventer.Rejected -> ()
  | _ -> Alcotest.fail "over capacity should reject");
  check Alcotest.int "reject counted" 1 stats.Metrics.Stats.preventer_rejects;
  (* existing buffers still usable *)
  match Vswapper.Preventer.on_write p ~now:0 ~gpa:1 ~offset:512 ~len:512 with
  | Vswapper.Preventer.Buffered _ -> ()
  | _ -> Alcotest.fail "existing buffer should extend"

let preventer_expiry () =
  let stats, p = mk_preventer ~window:(Sim.Time.ms 1) () in
  ignore (Vswapper.Preventer.on_write p ~now:100 ~gpa:7 ~offset:0 ~len:512);
  ignore (Vswapper.Preventer.on_write p ~now:200 ~gpa:8 ~offset:0 ~len:512);
  check Alcotest.(option int) "deadline of oldest" (Some 1_100)
    (Vswapper.Preventer.next_deadline p);
  Alcotest.(check (list int)) "nothing expires early" []
    (Vswapper.Preventer.expired p ~now:1_000);
  let gone = Vswapper.Preventer.expired p ~now:1_150 in
  Alcotest.(check (list int)) "first expires" [ 7 ] gone;
  check Alcotest.int "timeout counted" 1 stats.Metrics.Stats.preventer_timeouts;
  let gone = Vswapper.Preventer.expired p ~now:2_000 in
  Alcotest.(check (list int)) "second expires" [ 8 ] gone;
  check Alcotest.(option int) "no deadline left" None
    (Vswapper.Preventer.next_deadline p)

let preventer_reads () =
  let _, p = mk_preventer () in
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:5 ~offset:0 ~len:1024);
  (match Vswapper.Preventer.on_read p ~gpa:5 ~offset:0 ~len:512 with
  | Vswapper.Preventer.Served_from_buffer -> ()
  | Vswapper.Preventer.Suspend -> Alcotest.fail "covered read should be served");
  match Vswapper.Preventer.on_read p ~gpa:5 ~offset:512 ~len:1024 with
  | Vswapper.Preventer.Suspend -> ()
  | Vswapper.Preventer.Served_from_buffer ->
      Alcotest.fail "uncovered read must suspend"

let preventer_rep_write () =
  let stats, p = mk_preventer () in
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:6 ~offset:0 ~len:512);
  Vswapper.Preventer.on_rep_write p ~gpa:6;
  Alcotest.(check bool) "buffer subsumed" false
    (Vswapper.Preventer.is_buffered p ~gpa:6);
  check Alcotest.int "remap counted" 1 stats.Metrics.Stats.preventer_remaps

let preventer_abandon () =
  let _, p = mk_preventer () in
  ignore (Vswapper.Preventer.on_write p ~now:0 ~gpa:9 ~offset:0 ~len:512);
  Vswapper.Preventer.abandon p ~gpa:9;
  Alcotest.(check bool) "gone" false (Vswapper.Preventer.is_buffered p ~gpa:9);
  check Alcotest.int "active" 0 (Vswapper.Preventer.active p)

let preventer_never_loses_track =
  QCheck.Test.make ~name:"preventer: active count matches live buffers"
    ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 7)))
    (fun ops ->
      let _, p = mk_preventer ~max_buffers:4 () in
      let now = ref 0 in
      List.iter
        (fun (op, gpa) ->
          now := !now + 50;
          match op with
          | 0 -> ignore (Vswapper.Preventer.on_write p ~now:!now ~gpa ~offset:0 ~len:512)
          | 1 -> Vswapper.Preventer.abandon p ~gpa
          | 2 -> ignore (Vswapper.Preventer.expired p ~now:!now)
          | _ -> Vswapper.Preventer.on_rep_write p ~gpa)
        ops;
      let live = ref 0 in
      for gpa = 0 to 7 do
        if Vswapper.Preventer.is_buffered p ~gpa then incr live
      done;
      !live = Vswapper.Preventer.active p && !live <= 4)

let vsconfig_presets () =
  let open Vswapper.Vsconfig in
  Alcotest.(check bool) "baseline off" true
    ((not baseline.mapper) && not baseline.preventer);
  Alcotest.(check bool) "mapper only" true
    (mapper_only.mapper && not mapper_only.preventer);
  Alcotest.(check bool) "vswapper both" true
    (vswapper.mapper && vswapper.preventer);
  check Alcotest.int "paper window" 1_000 (Sim.Time.to_us vswapper.preventer_window);
  check Alcotest.int "paper cap" 32 vswapper.preventer_max_buffers;
  Alcotest.(check bool) "4k sectors advertised" true vswapper.report_4k_sectors;
  let s = Format.asprintf "%a" Vswapper.Vsconfig.pp vswapper in
  Alcotest.(check bool) "printable" true (Test_util.contains s "mapper=true")

let tests =
  [
    ( "core:config",
      [ Alcotest.test_case "presets" `Quick vsconfig_presets ] );
    ( "core:mapper",
      [
        Alcotest.test_case "track and lookup" `Quick mapper_track_lookup;
        Alcotest.test_case "retrack moves" `Quick mapper_retrack_moves;
        Alcotest.test_case "multi-map per block" `Quick mapper_multimap;
        Alcotest.test_case "untrack idempotent" `Quick mapper_untrack_idempotent;
        Alcotest.test_case "readahead window" `Quick mapper_readahead_window;
        Alcotest.test_case "gauge" `Quick mapper_gauge_tracks;
        qcheck mapper_model;
      ] );
    ( "core:preventer",
      [
        Alcotest.test_case "sequential completes" `Quick preventer_sequential_completes;
        Alcotest.test_case "full first write" `Quick preventer_full_first_write;
        Alcotest.test_case "mid-page start merges" `Quick preventer_nonzero_start_merges;
        Alcotest.test_case "non-sequential merges" `Quick preventer_nonsequential_merges;
        Alcotest.test_case "capacity rejects" `Quick preventer_capacity_rejects;
        Alcotest.test_case "expiry" `Quick preventer_expiry;
        Alcotest.test_case "reads" `Quick preventer_reads;
        Alcotest.test_case "rep write" `Quick preventer_rep_write;
        Alcotest.test_case "abandon" `Quick preventer_abandon;
        qcheck preventer_never_loses_track;
      ] );
  ]
