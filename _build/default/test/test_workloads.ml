(* Tests for the synthetic workload generators: they must produce the
   right op mix and complete inside a small machine. *)

let check = Alcotest.check
module W = Vmm.Workload

(* Run a workload on a small uncontended machine; returns (result, ops
   observed indirectly via stats). *)
let run_workload ?(mem_mb = 64) ?(vcpus = 2) ?(data_mb = 64) workload =
  let guest =
    { (Vmm.Config.default_guest ~workload) with mem_mb; data_mb; vcpus }
  in
  let cfg = { (Vmm.Config.default ~guests:[ guest ]) with host_mem_mb = 256 } in
  Vmm.Machine.run (Vmm.Machine.build cfg)

let finished result =
  match result.Vmm.Machine.guests.(0).Vmm.Machine.runtime with
  | Some rt -> rt
  | None -> Alcotest.fail "workload did not finish"

let sysbench_runs_and_marks () =
  let iterations = ref [] in
  let w =
    Workloads.Sysbench.workload ~iterations:3
      ~on_iteration:(fun i -> iterations := i :: !iterations)
      ~file_mb:4 ()
  in
  let result = run_workload w in
  ignore (finished result);
  Alcotest.(check (list int)) "marks with leading start" [ -1; 0; 1; 2 ]
    (List.rev !iterations);
  (* 3 iterations of a 4MB file: roughly one read+compute per block. *)
  Alcotest.(check bool) "did real reads" true
    (result.Vmm.Machine.stats.Metrics.Stats.disk_ops > 0)

let memhog_phases () =
  let phases = ref [] in
  let w =
    Workloads.Memhog.workload ~read_first_mb:2 ~pattern:`Mixed
      ~on_alloc_phase:(fun () -> phases := "alloc" :: !phases)
      ~on_done:(fun () -> phases := "done" :: !phases)
      ~mb:2 ()
  in
  ignore (finished (run_workload w));
  Alcotest.(check (list string)) "phases in order" [ "alloc"; "done" ]
    (List.rev !phases)

let memhog_patterns_complete () =
  List.iter
    (fun pattern ->
      let w = Workloads.Memhog.workload ~pattern ~mb:2 () in
      ignore (finished (run_workload w)))
    [ `Rep; `Memcpy; `Mixed ]

let pbzip_completes_all_chunks () =
  let w =
    Workloads.Pbzip.workload ~threads:4 ~chunk_pages:32 ~compute_us_per_page:10
      ~anon_mb_per_thread:1 ~queue_mb:1 ~input_mb:4 ()
  in
  let result = run_workload ~vcpus:4 w in
  ignore (finished result);
  (* All 1024 input blocks got read (through readahead batching). *)
  Alcotest.(check bool) "read the input" true
    (result.Vmm.Machine.stats.Metrics.Stats.disk_sectors_read
    >= Storage.Geom.sectors_of_pages 1024)

let kernbench_allocates_and_frees () =
  let w =
    Workloads.Kernbench.workload ~threads:2 ~units:20 ~tree_mb:8
      ~job_anon_pages:16 ~compute_us:100 ()
  in
  let result = run_workload w in
  ignore (finished result);
  (* Object writes may still sit in the drive's write buffer when the
     run ends; reads are the reliable witness of real activity. *)
  Alcotest.(check bool) "did I/O" true
    (result.Vmm.Machine.stats.Metrics.Stats.disk_ops > 0)

let eclipse_gc_cycles () =
  let w =
    Workloads.Eclipse.workload ~heap_mb:4 ~classes_mb:2 ~iterations:6
      ~touches_per_iter:50 ~gc_every:2 ~compute_us:10 ()
  in
  ignore (finished (run_workload w))

let eclipse_with_overhead_and_bursts () =
  let w =
    Workloads.Eclipse.workload ~heap_mb:4 ~overhead_mb:4 ~classes_mb:2
      ~burst_mb:2 ~iterations:6 ~touches_per_iter:50 ~gc_every:3
      ~compute_us:10 ()
  in
  ignore (finished (run_workload w))

let metis_map_and_reduce () =
  let w =
    Workloads.Metis.workload ~threads:2 ~table_mb:4 ~compute_us_per_block:10
      ~writes_per_block:2 ~input_mb:2 ()
  in
  ignore (finished (run_workload w))

let deterministic_across_runs () =
  let run () =
    let w =
      Workloads.Eclipse.workload ~heap_mb:4 ~classes_mb:2 ~iterations:4
        ~touches_per_iter:40 ~gc_every:2 ()
    in
    let r = run_workload w in
    (finished r, r.Vmm.Machine.stats.Metrics.Stats.disk_ops)
  in
  let a = run () and b = run () in
  check Alcotest.(pair int int) "bit-identical reruns" a b

let tests =
  [
    ( "workloads:generators",
      [
        Alcotest.test_case "sysbench marks" `Quick sysbench_runs_and_marks;
        Alcotest.test_case "memhog phases" `Quick memhog_phases;
        Alcotest.test_case "memhog patterns" `Quick memhog_patterns_complete;
        Alcotest.test_case "pbzip chunks" `Quick pbzip_completes_all_chunks;
        Alcotest.test_case "kernbench jobs" `Quick kernbench_allocates_and_frees;
        Alcotest.test_case "eclipse gc" `Quick eclipse_gc_cycles;
        Alcotest.test_case "eclipse bursts" `Quick eclipse_with_overhead_and_bursts;
        Alcotest.test_case "metis phases" `Quick metis_map_and_reduce;
        Alcotest.test_case "determinism" `Quick deterministic_across_runs;
      ] );
  ]
