(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub haystack i nl = needle then found := true
    done;
    !found
  end

let qcheck t = QCheck_alcotest.to_alcotest t

(* Run an engine until it is quiet, with a safety bound. *)
let drain engine =
  let steps = ref 0 in
  while Sim.Engine.step engine && !steps < 10_000_000 do
    incr steps
  done;
  if !steps >= 10_000_000 then failwith "Test_util.drain: engine runaway"

(* Run an engine until [p ()] holds or events run out; fails otherwise. *)
let drain_until engine p =
  let steps = ref 0 in
  while (not (p ())) && Sim.Engine.step engine && !steps < 10_000_000 do
    incr steps
  done;
  if not (p ()) then failwith "Test_util.drain_until: condition never held"
