test/test_balloon.ml: Alcotest Array Balloon Guest Host List Metrics Sim Storage Test_util Vmm Vswapper
