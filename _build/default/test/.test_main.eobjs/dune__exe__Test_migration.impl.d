test/test_migration.ml: Alcotest Format List Migration Option Sim Storage Test_util Vmm Vswapper Workloads
