test/test_storage.ml: Alcotest Array Hashtbl List Metrics Option Printf QCheck Sim Storage Test_util
