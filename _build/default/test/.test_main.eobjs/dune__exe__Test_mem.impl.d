test/test_mem.ml: Alcotest Array List Mem Option QCheck Test_util
