test/test_experiments.ml: Alcotest Experiments List Test_util Vswapper
