test/test_util.ml: QCheck_alcotest Sim String
