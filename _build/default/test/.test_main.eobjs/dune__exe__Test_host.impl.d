test/test_host.ml: Alcotest Array Host List Metrics Option Printf QCheck Sim Storage String Test_util Vswapper
