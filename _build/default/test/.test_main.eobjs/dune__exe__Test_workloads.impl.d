test/test_workloads.ml: Alcotest Array List Metrics Storage Vmm Workloads
