test/test_sim.ml: Alcotest Array List Option QCheck Sim Test_util
