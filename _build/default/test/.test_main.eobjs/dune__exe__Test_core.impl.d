test/test_core.ml: Alcotest Format List Metrics QCheck Sim Storage Test_util Vswapper
