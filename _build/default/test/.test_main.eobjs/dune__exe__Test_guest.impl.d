test/test_guest.ml: Alcotest Guest Host Metrics Option Printf Sim Storage Test_util Vswapper
