test/test_metrics.ml: Alcotest Format List Metrics Sim String Test_util
