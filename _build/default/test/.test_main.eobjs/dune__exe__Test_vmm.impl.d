test/test_vmm.ml: Alcotest Array Guest List Option Printf Sim Vmm Vswapper
