(* Tests for the intrusive LRU list, including a model-based property
   test against a reference list implementation. *)

let check = Alcotest.check
let qcheck = Test_util.qcheck

let lru_basic () =
  let l = Mem.Lru.create () in
  Alcotest.(check bool) "empty" true (Mem.Lru.is_empty l);
  let a = Mem.Lru.node "a" and b = Mem.Lru.node "b" and c = Mem.Lru.node "c" in
  Mem.Lru.push_front l a;
  Mem.Lru.push_front l b;
  Mem.Lru.push_back l c;
  (* order front->back: b a c *)
  Alcotest.(check (list string)) "order" [ "b"; "a"; "c" ] (Mem.Lru.to_list l);
  check Alcotest.int "length" 3 (Mem.Lru.length l);
  Alcotest.(check bool) "mem" true (Mem.Lru.mem l a);
  check Alcotest.(option string) "peek back" (Some "c")
    (Option.map Mem.Lru.value (Mem.Lru.peek_back l));
  Mem.Lru.move_front l c;
  Alcotest.(check (list string)) "after move" [ "c"; "b"; "a" ] (Mem.Lru.to_list l);
  check Alcotest.(option string) "pop back" (Some "a")
    (Option.map Mem.Lru.value (Mem.Lru.pop_back l));
  Mem.Lru.remove l b;
  Alcotest.(check (list string)) "after removals" [ "c" ] (Mem.Lru.to_list l);
  Alcotest.(check bool) "b detached" false (Mem.Lru.in_some_list b)

let lru_membership_errors () =
  let l1 = Mem.Lru.create () and l2 = Mem.Lru.create () in
  let n = Mem.Lru.node 1 in
  Mem.Lru.push_front l1 n;
  Alcotest.check_raises "double insert" (Invalid_argument "Lru: node already in a list")
    (fun () -> Mem.Lru.push_front l2 n);
  Alcotest.check_raises "wrong list" (Invalid_argument "Lru: node belongs to another list")
    (fun () -> Mem.Lru.remove l2 n);
  Mem.Lru.remove l1 n;
  Alcotest.check_raises "not in list" (Invalid_argument "Lru: node not in any list")
    (fun () -> Mem.Lru.remove l1 n);
  Alcotest.(check bool) "mem false" false (Mem.Lru.mem l1 n)

(* Model-based test: ops interpreted against both the Lru and a plain
   list model keyed by node index. *)
let lru_model =
  QCheck.Test.make ~name:"lru: agrees with a list model" ~count:300
    QCheck.(list (pair (int_range 0 4) (int_range 0 9)))
    (fun ops ->
      let l = Mem.Lru.create () in
      let nodes = Array.init 10 Mem.Lru.node in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          let inside = List.mem i !model in
          match op with
          | 0 (* push_front *) ->
              if not inside then begin
                Mem.Lru.push_front l nodes.(i);
                model := i :: !model
              end
          | 1 (* push_back *) ->
              if not inside then begin
                Mem.Lru.push_back l nodes.(i);
                model := !model @ [ i ]
              end
          | 2 (* remove *) ->
              if inside then begin
                Mem.Lru.remove l nodes.(i);
                model := List.filter (fun x -> x <> i) !model
              end
          | 3 (* move_front *) ->
              if inside then begin
                Mem.Lru.move_front l nodes.(i);
                model := i :: List.filter (fun x -> x <> i) !model
              end
          | _ (* pop_back *) -> (
              match (Mem.Lru.pop_back l, List.rev !model) with
              | None, [] -> ()
              | Some n, last :: _ ->
                  if Mem.Lru.value n <> last then ok := false
                  else
                    model := List.filter (fun x -> x <> last) !model
              | _ -> ok := false))
        ops;
      !ok && Mem.Lru.to_list l = !model)

let tests =
  [
    ( "mem:lru",
      [
        Alcotest.test_case "basic ops" `Quick lru_basic;
        Alcotest.test_case "membership errors" `Quick lru_membership_errors;
        qcheck lru_model;
      ] );
  ]
