(* Command-line front end: run any of the paper's experiments, or an
   ad-hoc single-guest simulation, from the terminal.

     vswapper_sim list
     vswapper_sim run fig9 [--scale 0.25]
     vswapper_sim all [--scale 1.0]
     vswapper_sim adhoc --workload sysbench --mem 512 --limit 100 \
                        --config vswapper
*)

open Cmdliner

let list_cmd =
  let doc = "List the available experiments (one per paper figure/table)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-6s %s\n" e.Experiments.Exp.id e.Experiments.Exp.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let scale_arg =
  let doc = "Scale factor for memory/file sizes and workload lengths." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let run_cmd =
  let doc = "Run one experiment by id (e.g. fig9, tab2)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"experiment id")
  in
  let run id scale =
    match Experiments.Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try: %s\n" id
          (String.concat " " (Experiments.Registry.ids ()));
        exit 1
    | Some e -> print_endline (e.Experiments.Exp.run ~scale)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ id_arg $ scale_arg)

let all_cmd =
  let doc = "Run every experiment in sequence." in
  let run scale =
    List.iter
      (fun e -> print_endline (e.Experiments.Exp.run ~scale))
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ scale_arg)

let adhoc_cmd =
  let doc = "Run a single-guest ad-hoc simulation and dump all counters." in
  let workload_arg =
    let wconv =
      Arg.enum
        [ ("sysbench", `Sysbench); ("memhog", `Memhog); ("pbzip", `Pbzip);
          ("kernbench", `Kernbench); ("eclipse", `Eclipse); ("metis", `Metis) ]
    in
    Arg.(value & opt wconv `Sysbench & info [ "workload" ] ~docv:"W" ~doc:"workload")
  in
  let mem_arg =
    Arg.(value & opt int 512 & info [ "mem" ] ~docv:"MB" ~doc:"guest memory")
  in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "limit" ] ~docv:"MB" ~doc:"resident cap")
  in
  let config_arg =
    let cconv =
      Arg.enum
        [ ("baseline", `Baseline); ("mapper", `Mapper); ("vswapper", `Vswapper);
          ("balloon", `Balloon); ("balloon+vswapper", `Balloon_vs) ]
    in
    Arg.(value & opt cconv `Vswapper & info [ "config" ] ~docv:"C" ~doc:"configuration")
  in
  let run workload mem limit config =
    let w =
      match workload with
      | `Sysbench -> Workloads.Sysbench.workload ~iterations:2 ~file_mb:(mem * 2 / 5) ()
      | `Memhog -> Workloads.Memhog.workload ~read_first_mb:(mem / 4) ~mb:(mem / 4) ()
      | `Pbzip -> Workloads.Pbzip.workload ~input_mb:(mem / 3) ()
      | `Kernbench -> Workloads.Kernbench.workload ~units:300 ~tree_mb:(mem / 2) ()
      | `Eclipse -> Workloads.Eclipse.workload ~heap_mb:(mem / 3) ()
      | `Metis -> Workloads.Metis.workload ~input_mb:(mem / 4) ~table_mb:(mem / 3) ()
    in
    let vs =
      match config with
      | `Baseline | `Balloon -> Vswapper.Vsconfig.baseline
      | `Mapper -> Vswapper.Vsconfig.mapper_only
      | `Vswapper | `Balloon_vs -> Vswapper.Vsconfig.vswapper
    in
    let ballooned = match config with `Balloon | `Balloon_vs -> true | _ -> false in
    let guest =
      {
        (Vmm.Config.default_guest ~workload:w) with
        mem_mb = mem;
        resident_limit_mb = Some limit;
        balloon_static_mb = (if ballooned then Some limit else None);
        warm_all = true;
        data_mb = mem * 2;
      }
    in
    let cfg =
      { (Vmm.Config.default ~guests:[ guest ]) with vs; host_mem_mb = mem * 2 }
    in
    let machine = Vmm.Machine.build cfg in
    let result = Vmm.Machine.run machine in
    (match result.Vmm.Machine.guests.(0).Vmm.Machine.runtime with
    | Some rt -> Printf.printf "runtime: %.2fs\n" (Sim.Time.to_sec_float rt)
    | None -> print_endline "runtime: workload crashed (OOM)");
    Format.printf "%a" Metrics.Stats.pp result.Vmm.Machine.stats
  in
  Cmd.v (Cmd.info "adhoc" ~doc)
    Term.(const run $ workload_arg $ mem_arg $ limit_arg $ config_arg)

let () =
  let doc = "VSwapper (ASPLOS'14) reproduction simulator" in
  let info = Cmd.info "vswapper_sim" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; adhoc_cmd ]))
