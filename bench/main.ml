(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation section, printing the same rows/series the paper reports
   (paper values alongside, for shape comparison).  Experiments fan out
   across a domain pool; outputs are buffered and printed in registry
   order, so the sweep reads identically at any parallelism:

     dune exec bench/main.exe                   # full scale, all cores
     VSWAPPER_JOBS=1 dune exec bench/main.exe   # serial reference
     VSWAPPER_BENCH_SCALE=0.25 dune exec bench/main.exe
     dune exec bench/main.exe -- fig9 fig10     # a subset

   `--micro` instead runs Bechamel microbenchmarks of the simulator's
   hot paths — one Test.make per experiment (a small-scale end-to-end
   run) plus the core data-structure operations — and prints their
   measured costs.

   `--jobs N` overrides `VSWAPPER_JOBS` (and the core-count default);
   `--jobs 1` forces the serial inline path.  Both the experiment fan-out
   and the intra-experiment shards (fig3/fig4/fig5/fig11/fig14/abl) run
   on the same shared pool — its `map` is re-entrant, so the nesting is
   safe at any width.

   `--fault-seed N` / `--fault-rate R` parameterize the `resilience`
   experiment's deterministic disk-fault injection: the seed fixes the
   fault plan, and a non-zero rate replaces the built-in rate grid with
   [0; R].  The same seed produces byte-identical sweep output at any
   `--jobs` width.

   `--json [FILE]` additionally writes a machine-readable summary
   (per-experiment wall-clock with a history of the last runs, estimated
   speedup vs serial, pool scheduling counters, micro ns/run) to FILE,
   default `BENCH_<yyyy-mm-dd>.json`, so future changes have a perf
   trajectory to compare against. *)

let scale () =
  match Sys.getenv_opt "VSWAPPER_BENCH_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

type bench_record = {
  mutable experiments : (string * float * bool * float) list;
      (* id, wall_s, ok, alloc_words *)
  mutable total_wall_s : float;
  mutable micros : (string * float) list;  (* name, ns/run *)
  jobs : int;
}

(* How many past runs each experiment's wall-clock history keeps. *)
let history_depth = 5

(* [parse_history line] extracts the floats of a `"history": [..]`
   field, if the line has one. *)
let parse_history line =
  let key = "\"history\": [" in
  match
    (* Find the key by scanning; String.index-based search, no regex. *)
    let kl = String.length key and ll = String.length line in
    let rec find i =
      if i + kl > ll then None
      else if String.sub line i kl = key then Some (i + kl)
      else find (i + 1)
    in
    find 0
  with
  | None -> []
  | Some start -> (
      match String.index_from_opt line start ']' with
      | None -> []
      | Some stop ->
          String.sub line start (stop - start)
          |> String.split_on_char ','
          |> List.filter_map (fun s -> float_of_string_opt (String.trim s)))

(* Per-experiment wall-clocks (and their recorded history) of an earlier
   summary, for delta lines and history roll-forward.  Parses only the
   writer's own "id"/"wall_s" record format. *)
let prev_walls file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let acc = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         try
           Scanf.sscanf line "{\"id\": %S, \"wall_s\": %f" (fun id w ->
               acc := (id, (w, parse_history line)) :: !acc)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  end

(* Most recent BENCH_*.json other than [excluding]; dates sort
   lexicographically. *)
let latest_bench_file ~excluding =
  Sys.readdir "." |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json"
         && f <> Filename.basename excluding)
  |> List.sort compare |> List.rev
  |> function
  | [] -> None
  | f :: _ -> Some f

(* Timed schedule/cancel churn on one engine backend: a rolling window
   of cancellable timers (each slot's previous timer is cancelled when
   the slot is refilled, as the disk idle-flush and VCPU timeslices do),
   with periodic steps so the queue drains concurrently.  Deterministic
   op sequence; only the wall-clock varies.  Returns events per second
   (schedules + cancels + fires over elapsed time). *)
let churn_events_per_sec backend =
  let e = Sim.Engine.create ~backend () in
  let n = 200_000 in
  let handles = Array.make 64 Sim.Engine.null in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let slot = i land 63 in
    Sim.Engine.cancel e handles.(slot);
    handles.(slot) <-
      Sim.Engine.schedule_after e
        (Sim.Time.us (1 + ((i * 7) land 1023)))
        (fun () -> ());
    if i land 15 = 0 then ignore (Sim.Engine.step e)
  done;
  Sim.Engine.run e;
  let dt = Unix.gettimeofday () -. t0 in
  let tel = Sim.Engine.telemetry e in
  let ops = n + tel.Sim.Engine.cancels_reclaimed + tel.Sim.Engine.events_fired in
  if dt > 0.0 then float_of_int ops /. dt else 0.0

let write_json ~file ~scale r =
  (* Read the comparison baseline from the real file, then write to a
     temp file and rename over it: a crash mid-write never leaves a
     truncated summary behind. *)
  let prev =
    if Sys.file_exists file then prev_walls file
    else
      match latest_bench_file ~excluding:file with
      | Some f -> prev_walls f
      | None -> []
  in
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"date\": \"%s\",\n" (today ());
  out "  \"scale\": %g,\n" scale;
  out "  \"jobs\": %d,\n" r.jobs;
  let serial_s =
    List.fold_left (fun acc (_, s, _, _) -> acc +. s) 0.0 r.experiments
  in
  out "  \"total_wall_s\": %.3f,\n" r.total_wall_s;
  out "  \"serial_equivalent_s\": %.3f,\n" serial_s;
  out "  \"speedup_vs_serial\": %.3f,\n"
    (if r.total_wall_s > 0.0 then serial_s /. r.total_wall_s else 1.0);
  let d = Experiments.Exp.disk_totals () in
  out
    "  \"disk\": {\"read_batches\": %d, \"batched_reads\": %d, \
     \"coalesced_reads\": %d, \"mean_batch_sectors\": %.1f},\n"
    d.Experiments.Exp.batches d.Experiments.Exp.reads
    (d.Experiments.Exp.reads - d.Experiments.Exp.batches)
    (if d.Experiments.Exp.batches > 0 then
       float_of_int d.Experiments.Exp.batch_sectors
       /. float_of_int d.Experiments.Exp.batches
     else 0.0);
  let f = Experiments.Exp.fault_totals () in
  out
    "  \"faults\": {\"injected\": %d, \"retried\": %d, \"degraded\": %d, \
     \"killed\": %d, \"destage_lost\": %d, \"destage_retried\": %d},\n"
    f.Experiments.Exp.injected f.Experiments.Exp.retried
    f.Experiments.Exp.degraded f.Experiments.Exp.killed
    f.Experiments.Exp.destage_lost f.Experiments.Exp.destage_retried;
  let a = Experiments.Exp.async_totals () in
  out
    "  \"async\": {\"waiter_merges\": %d, \"faults_deferred\": %d, \
     \"inflight_highwater\": %d},\n"
    a.Experiments.Exp.waiter_merges a.Experiments.Exp.deferred
    a.Experiments.Exp.inflight_highwater;
  out
    "  \"queues\": {\"mq_batches\": %d, \"depth_highwater\": %d},\n"
    a.Experiments.Exp.mq_batches a.Experiments.Exp.queue_depth_highwater;
  let tt = Experiments.Exp.tier_totals () in
  out
    "  \"tiers\": {\"admissions\": %d, \"rejects\": %d, \"promotions\": %d, \
     \"demotions\": %d, \"writeback_sectors\": %d, \"fast_swapins\": %d, \
     \"slow_swapins\": %d, \"fast_swapin_us\": %d, \"slow_swapin_us\": %d},\n"
    tt.Experiments.Exp.admissions tt.Experiments.Exp.rejects
    tt.Experiments.Exp.promotions tt.Experiments.Exp.demotions
    tt.Experiments.Exp.writeback_sectors tt.Experiments.Exp.fast_swapins
    tt.Experiments.Exp.slow_swapins tt.Experiments.Exp.fast_swapin_us
    tt.Experiments.Exp.slow_swapin_us;
  let r2 = Experiments.Exp.resilience2_totals () in
  out
    "  \"resilience2\": {\"scrub_scans\": %d, \"scrub_verify_reads\": %d, \
     \"scrub_media_found\": %d, \"scrub_relocations\": %d, \
     \"scrub_reloc_failed\": %d, \"qos_throttled\": %d, \
     \"qos_throttle_wait_us\": %d, \"tier_degraded\": %d, \
     \"tier_recovered\": %d, \"tier_failover_routes\": %d, \
     \"media_reads\": %d, \"pages_lost\": %d},\n"
    r2.Experiments.Exp.scrub_scans r2.Experiments.Exp.scrub_verify_reads
    r2.Experiments.Exp.scrub_media_found r2.Experiments.Exp.scrub_relocations
    r2.Experiments.Exp.scrub_reloc_failed r2.Experiments.Exp.qos_throttled
    r2.Experiments.Exp.qos_throttle_wait_us
    r2.Experiments.Exp.tier_degraded_events
    r2.Experiments.Exp.tier_recovered_events
    r2.Experiments.Exp.tier_failover_routes r2.Experiments.Exp.media_reads
    r2.Experiments.Exp.pages_lost;
  (* Engine section: lifetime totals of the event engine's hot path, a
     schedule+cancel churn microbench on both backends (so every summary
     records the wheel-vs-heap throughput on this machine), and fired
     events per experiment normalized by its wall-clock. *)
  let et = Experiments.Exp.engine_totals () in
  let wheel_cps = churn_events_per_sec Sim.Engine.Wheel in
  let heap_cps = churn_events_per_sec Sim.Engine.Heap in
  out
    "  \"engine\": {\"backend\": \"%s\", \"events_fired\": %d, \
     \"cancels_reclaimed\": %d, \"cascades\": %d,\n"
    (Sim.Engine.backend_name (Sim.Engine.default_backend ()))
    et.Experiments.Exp.fired et.Experiments.Exp.cancels_reclaimed
    et.Experiments.Exp.cascades;
  out
    "    \"churn\": {\"wheel_events_per_sec\": %.0f, \
     \"heap_events_per_sec\": %.0f, \"wheel_speedup\": %.2f},\n"
    wheel_cps heap_cps
    (if heap_cps > 0.0 then wheel_cps /. heap_cps else 0.0);
  let per_exp = Experiments.Exp.exp_engine_events () in
  out "    \"per_experiment\": [";
  List.iteri
    (fun i (id, events) ->
      let wall =
        match
          List.find_opt (fun (id', _, _, _) -> id' = id) r.experiments
        with
        | Some (_, w, _, _) -> w
        | None -> 0.0
      in
      out "%s\n      {\"id\": \"%s\", \"events\": %d, \"events_per_sec\": %.0f}"
        (if i = 0 then "" else ",")
        (json_escape id) events
        (if wall > 0.0 then float_of_int events /. wall else 0.0))
    per_exp;
  out "\n    ]},\n";
  (* Memory section: the writing domain's GC counters (worker-domain
     allocation shows up per experiment below, not here) and the live /
     peak heap after a full major — the footprint the flat metadata
     plane is meant to keep down. *)
  let gq = Gc.quick_stat () in
  Gc.full_major ();
  let gs = Gc.stat () in
  out
    "  \"memory\": {\"minor_words\": %.0f, \"major_words\": %.0f, \
     \"promoted_words\": %.0f, \"top_heap_words\": %d, \"live_words\": %d},\n"
    gq.Gc.minor_words gq.Gc.major_words gq.Gc.promoted_words
    gs.Gc.top_heap_words gs.Gc.live_words;
  (* Fleet section: present only when the fleet experiment ran; the
     wall-clocks and speedups inside are this machine's, the counters
     are deterministic. *)
  (match Experiments.Exp.fleet_totals () with
  | None -> ()
  | Some ft ->
      out
        "  \"fleet\": {\"hosts\": %d, \"guests\": %d, \"rejected\": %d, \
         \"pages\": %d, \"epochs\": %d, \"migrations\": %d, \
         \"migrations_aborted\": %d, \"throttled_batches\": %d, \
         \"oom_kills\": %d, \"heap_words_per_page\": %.1f,\n"
        ft.Experiments.Exp.fleet_hosts ft.Experiments.Exp.fleet_guests
        ft.Experiments.Exp.fleet_rejected ft.Experiments.Exp.fleet_pages
        ft.Experiments.Exp.fleet_epochs ft.Experiments.Exp.fleet_migrations
        ft.Experiments.Exp.fleet_migrations_aborted
        ft.Experiments.Exp.fleet_throttled_batches
        ft.Experiments.Exp.fleet_oom_kills
        ft.Experiments.Exp.fleet_heap_words_per_page;
      out "    \"per_jobs\": [";
      List.iteri
        (fun i p ->
          out
            "%s\n      {\"jobs\": %d, \"wall_s\": %.3f, \
             \"guest_seconds_per_s\": %.0f, \"speedup\": %.2f}"
            (if i = 0 then "" else ",")
            p.Experiments.Exp.fj_jobs p.Experiments.Exp.fj_wall_s
            p.Experiments.Exp.fj_guest_seconds_per_s
            p.Experiments.Exp.fj_speedup)
        ft.Experiments.Exp.fleet_per_jobs;
      out "\n    ]},\n");
  let ps = Parallel.Pool.stats (Parallel.Pool.global ()) in
  out
    "  \"parallel\": {\"jobs\": %d, \"worker_jobs\": %d, \"helper_jobs\": \
     %d, \"peak_queue_depth\": %d},\n"
    ps.Parallel.Pool.jobs ps.Parallel.Pool.worker_jobs
    ps.Parallel.Pool.helper_jobs ps.Parallel.Pool.peak_queue_depth;
  out "  \"experiments\": [";
  List.iteri
    (fun i (id, wall_s, ok, alloc_words) ->
      (* [history] rolls the previous file's wall_s (plus its own
         history) forward, newest first, capped at [history_depth] past
         runs; [delta_s] stays the one-step comparison. *)
      let delta, history =
        match List.assoc_opt id prev with
        | Some (w, past) ->
            let rec cap n = function
              | x :: r when n > 0 -> x :: cap (n - 1) r
              | _ -> []
            in
            (* %.3f, not %+.3f: a leading '+' on a positive delta is not
               valid JSON and strict parsers reject the whole file. *)
            ( Printf.sprintf ", \"delta_s\": %.3f" (wall_s -. w),
              cap history_depth (w :: past) )
        | None -> ("", [])
      in
      let history =
        match history with
        | [] -> ""
        | hs ->
            Printf.sprintf ", \"history\": [%s]"
              (String.concat ", "
                 (List.map (Printf.sprintf "%.3f") hs))
      in
      (* alloc_mwords: millions of words the experiment allocated on
         its domain; alloc_mwords_per_s is the rate, the number the
         fault-path allocation work moves. *)
      out
        "%s\n    {\"id\": \"%s\", \"wall_s\": %.3f%s%s, \"alloc_mwords\": \
         %.1f, \"alloc_mwords_per_s\": %.1f, \"ok\": %b}"
        (if i = 0 then "" else ",")
        (json_escape id) wall_s delta history (alloc_words /. 1e6)
        (if wall_s > 0.0 then alloc_words /. 1e6 /. wall_s else 0.0)
        ok)
    r.experiments;
  out "\n  ],\n";
  out "  \"micros\": [";
  List.iteri
    (fun i (name, ns) ->
      out "%s\n    {\"name\": \"%s\", \"ns_per_run\": %.1f}"
        (if i = 0 then "" else ",")
        (json_escape name) ns)
    r.micros;
  out "\n  ]\n}\n";
  close_out oc;
  Sys.rename tmp file;
  Printf.printf "[bench summary written to %s]\n%!" file

(* ------------------------------------------------------------------ *)
(* Experiment reproduction mode                                        *)
(* ------------------------------------------------------------------ *)

let run_experiments ~record ids =
  let scale = scale () in
  let chosen =
    match ids with
    | [] -> Experiments.Registry.all
    | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S (try: %s)\n" id
                  (String.concat " " (Experiments.Registry.ids ()));
                None)
          ids
  in
  Printf.printf
    "VSwapper (ASPLOS'14) reproduction bench - scale %.2f, %d experiments, \
     %d jobs\n\n\
     %!"
    scale (List.length chosen) record.jobs;
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Experiments.Registry.run_all ~jobs:record.jobs ~scale chosen
  in
  record.total_wall_s <- Unix.gettimeofday () -. t0;
  List.iter
    (fun (o : Experiments.Registry.outcome) ->
      let id = o.exp.Experiments.Exp.id in
      (match o.output with
      | Ok out ->
          print_endline out;
          Printf.printf "[%s completed in %.1fs wall]\n\n%!" id o.wall_s
      | Error exn ->
          Printf.printf "[%s FAILED after %.1fs: %s]\n\n%!" id o.wall_s
            (Printexc.to_string exn));
      record.experiments <-
        record.experiments
        @ [
            ( id,
              o.wall_s,
              (match o.output with Ok _ -> true | Error _ -> false),
              o.Experiments.Registry.alloc_words );
          ])
    outcomes;
  let d = Experiments.Exp.disk_totals () in
  if d.Experiments.Exp.batches > 0 then
    Printf.printf
      "[disk queue: %d media reads served in %d batches (%d coalesced away), \
       mean span %.1f sectors]\n\n\
       %!"
      d.Experiments.Exp.reads d.Experiments.Exp.batches
      (d.Experiments.Exp.reads - d.Experiments.Exp.batches)
      (float_of_int d.Experiments.Exp.batch_sectors
      /. float_of_int d.Experiments.Exp.batches)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmark mode                                        *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let engine_bench =
  Test.make ~name:"sim: schedule+fire 1000 events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 1000 do
           Sim.Engine.run_at e (Sim.Time.us i) (fun () -> ())
         done;
         Sim.Engine.run e))

let heap_bench =
  Test.make ~name:"sim: heap push/pop 1000"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create () in
         for i = 1 to 1000 do
           Sim.Heap.add h ~priority:(i * 7919 mod 1000) i
         done;
         while Sim.Heap.pop_min h <> None do
           ()
         done))

(* Schedule+cancel churn per backend — the pattern the disk idle-flush,
   Preventer expiries, and VCPU timeslices hammer: most timers are
   cancelled and rearmed before they fire. *)
let engine_churn_bench backend =
  Test.make
    ~name:
      (Printf.sprintf "sim: engine(%s) schedule+cancel churn 1000"
         (Sim.Engine.backend_name backend))
    (Staged.stage (fun () ->
         let e = Sim.Engine.create ~backend () in
         let handles = Array.make 32 Sim.Engine.null in
         for i = 0 to 999 do
           let slot = i land 31 in
           Sim.Engine.cancel e handles.(slot);
           handles.(slot) <-
             Sim.Engine.schedule_after e
               (Sim.Time.us (1 + ((i * 7) land 255)))
               (fun () -> ());
           if i land 7 = 0 then ignore (Sim.Engine.step e)
         done;
         Sim.Engine.run e))

let mapper_bench =
  Test.make ~name:"core: mapper track/untrack 1000"
    (Staged.stage (fun () ->
         let m = Vswapper.Mapper.create ~stats:(Metrics.Stats.create ()) () in
         for gpa = 0 to 999 do
           Vswapper.Mapper.track m ~gpa ~disk:0 ~block:gpa ~version:0
         done;
         for gpa = 0 to 999 do
           Vswapper.Mapper.untrack m ~gpa
         done))

let preventer_bench =
  Test.make ~name:"core: preventer 8-store page completion"
    (Staged.stage (fun () ->
         let p =
           Vswapper.Preventer.create ~stats:(Metrics.Stats.create ())
             ~window:(Sim.Time.ms 1) ~max_buffers:32
         in
         for gpa = 0 to 31 do
           for j = 0 to 7 do
             ignore
               (Vswapper.Preventer.on_write p ~now:0 ~gpa ~offset:(j * 512)
                  ~len:512)
           done
         done))

(* The flat int table against the boxed stdlib table it replaced on the
   fault path, same key set and op mix, so the summary records the
   per-op win on this machine. *)
let itbl_bench =
  Test.make ~name:"mem: itbl set/find/remove 1000"
    (Staged.stage (fun () ->
         let t = Mem.Itbl.create () in
         for i = 0 to 999 do
           Mem.Itbl.set t (i * 7919) i
         done;
         let acc = ref 0 in
         for i = 0 to 999 do
           acc := !acc + Mem.Itbl.find t (i * 7919) ~default:0
         done;
         for i = 0 to 999 do
           Mem.Itbl.remove t (i * 7919)
         done;
         ignore (Sys.opaque_identity !acc)))

let hashtbl_ref_bench =
  Test.make ~name:"mem: hashtbl set/find/remove 1000 (boxed reference)"
    (Staged.stage (fun () ->
         let t : (int, int) Hashtbl.t = Hashtbl.create 16 in
         for i = 0 to 999 do
           Hashtbl.replace t (i * 7919) i
         done;
         let acc = ref 0 in
         for i = 0 to 999 do
           acc :=
             !acc + (match Hashtbl.find_opt t (i * 7919) with
                    | Some v -> v
                    | None -> 0)
         done;
         for i = 0 to 999 do
           Hashtbl.remove t (i * 7919)
         done;
         ignore (Sys.opaque_identity !acc)))

(* End-to-end fault-path churn on a small host: populate 512 guest pages
   through a 96-frame resident limit (every write past it evicts through
   the cgroup scan into host swap), then read them all back (major
   faults with cluster readahead through the in-flight registry).  The
   path this PR flattened — EPT dispatch, frame metadata, LRU moves,
   slot-owner/in-flight table ops — all in one loop. *)
let fault_path_bench =
  Test.make ~name:"host: fault-path churn 512 pages write/evict/swap-in"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let stats = Metrics.Stats.create () in
         let disk =
           Storage.Disk.create ~engine ~stats Storage.Disk.default_config
         in
         let vdisk =
           Storage.Vdisk.create ~id:0 ~base_sector:10_000 ~nblocks:1024
         in
         let swap =
           Storage.Swap_area.create ~base_sector:1_000_000 ~nslots:4096
         in
         let config =
           {
             Host.Hconfig.default with
             total_frames = 256;
             low_watermark_frames = 8;
             high_watermark_frames = 16;
             hv_pages_per_guest = 4;
           }
         in
         let host =
           Host.Hostmm.create ~engine ~disk ~stats
             ~config ~vsconfig:Vswapper.Vsconfig.baseline ~swap
             ~hv_base_sector:0 ()
         in
         let gid =
           Host.Hostmm.register_guest host ~vdisk ~gpa_pages:512
             ~resident_limit:(Some 96)
         in
         for gpa = 0 to 511 do
           Host.Hostmm.rep_write host ~guest:gid ~gpa
             ~content:(Storage.Content.fresh_anon ()) (fun () -> ())
         done;
         Sim.Engine.run engine;
         for gpa = 0 to 511 do
           Host.Hostmm.touch_read host ~guest:gid ~gpa (fun _ -> ())
         done;
         Sim.Engine.run engine))

let swap_alloc_bench =
  Test.make ~name:"storage: swap alloc/free 1000"
    (Staged.stage (fun () ->
         let sa = Storage.Swap_area.create ~base_sector:0 ~nslots:2048 in
         let slots =
           List.init 1000 (fun i ->
               Option.get (Storage.Swap_area.alloc sa (Storage.Content.Anon i)))
         in
         List.iter (Storage.Swap_area.free sa) slots))

(* One end-to-end Test.make per paper table/figure, at a tiny scale so
   Bechamel can iterate them. *)
let experiment_bench (e : Experiments.Exp.t) =
  Test.make ~name:("experiment: " ^ e.Experiments.Exp.id)
    (Staged.stage (fun () -> ignore (e.Experiments.Exp.run ~scale:0.06)))

let run_micro ~record () =
  let tests =
    [
      engine_bench; heap_bench;
      engine_churn_bench Sim.Engine.Wheel;
      engine_churn_bench Sim.Engine.Heap;
      mapper_bench; preventer_bench;
      itbl_bench; hashtbl_ref_bench; fault_path_bench;
      swap_alloc_bench;
    ]
    @ List.map experiment_bench
        (List.filter
           (fun e ->
             (* The multi-guest sweeps are too heavy to iterate. *)
             not
               (List.mem e.Experiments.Exp.id
                  [ "fig4"; "fig14"; "memscale"; "degradation"; "fleet" ]))
           Experiments.Registry.all)
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"micro" [ test ])
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] ->
              record.micros <- record.micros @ [ (name, v) ];
              Printf.printf "%-52s %14.1f ns/run\n%!" name v
          | Some _ | None -> Printf.printf "%-52s (no estimate)\n%!" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Argument parsing                                                    *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let micro = ref false in
  let json = ref None in
  let jobs_flag = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
        micro := true;
        parse rest
    | "--jobs" :: value :: rest -> (
        match int_of_string_opt value with
        | Some n when n >= 1 ->
            jobs_flag := Some n;
            parse rest
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" value;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs expects a positive integer\n";
        exit 2
    | "--fault-seed" :: value :: rest -> (
        match int_of_string_opt value with
        | Some n ->
            Experiments.Exp.set_fault_knobs ~seed:n ();
            parse rest
        | None ->
            Printf.eprintf "--fault-seed expects an integer, got %S\n" value;
            exit 2)
    | [ "--fault-seed" ] ->
        Printf.eprintf "--fault-seed expects an integer\n";
        exit 2
    | "--fault-rate" :: value :: rest -> (
        match float_of_string_opt value with
        | Some r when r >= 0.0 ->
            Experiments.Exp.set_fault_knobs ~rate:r ();
            parse rest
        | Some _ | None ->
            Printf.eprintf "--fault-rate expects a non-negative float, got %S\n"
              value;
            exit 2)
    | [ "--fault-rate" ] ->
        Printf.eprintf "--fault-rate expects a non-negative float\n";
        exit 2
    | "--json" :: value :: rest
      when String.length value > 0 && value.[0] <> '-'
           && Experiments.Registry.find value = None ->
        json := Some value;
        parse rest
    | "--json" :: rest ->
        json := Some (Printf.sprintf "BENCH_%s.json" (today ()));
        parse rest
    | id :: rest ->
        ids := !ids @ [ id ];
        parse rest
  in
  parse args;
  (* --jobs beats VSWAPPER_JOBS beats the core-count default; size the
     shared pool once, before anything submits to it. *)
  (match !jobs_flag with
  | Some n -> Parallel.Pool.set_global_jobs n
  | None -> ());
  let record =
    {
      experiments = [];
      total_wall_s = 0.0;
      micros = [];
      jobs = Parallel.Pool.jobs (Parallel.Pool.global ());
    }
  in
  if !micro then run_micro ~record () else run_experiments ~record !ids;
  match !json with
  | Some file -> write_json ~file ~scale:(scale ()) record
  | None -> ()
