(** Machine assembly and execution.

    Builds the whole simulated testbed from a {!Config.t} — engine, one
    shared physical disk (hypervisor region, then one image per guest,
    then the host swap area), the hypervisor, the guests — and drives it:

    boot (+ optional full-memory warmup) -> static balloon convergence ->
    disk settle -> epoch -> each guest's workload at its offset ->
    run to completion (or the time limit).

    Per-guest VCPU scheduling gives Linux-style asynchronous page
    faults: a thread blocking on I/O frees its VCPU for the guest's
    other ready threads. *)

type t

type guest_result = {
  runtime : Sim.Time.t option;  (** None if the workload was OOM-killed *)
  oomed : bool;
}

type result = {
  guests : guest_result array;
  stats : Metrics.Stats.t;
  wall : Sim.Time.t;  (** virtual time when the run ended *)
  hit_time_limit : bool;
}

val build : Config.t -> t

(** {2 Accessors for probes and tests; valid after [build]} *)

val engine : t -> Sim.Engine.t
val stats : t -> Metrics.Stats.t
val host : t -> Host.Hostmm.t
val disk : t -> Storage.Disk.t

(** The background scrubber, when [Hconfig.scrub_rate_pages_s > 0]
    (e.g. via [VSWAPPER_SCRUB_RATE]); [None] means no scrub ticks are
    ever scheduled.  Armed at the workload epoch — not at [build] — so
    its verify reads do not hold the boot sequence's disk-settle wait
    open.  Exposed so draining tests can [Host.Scrub.stop] the
    perpetual timer. *)
val scrub : t -> Host.Scrub.t option

(** [os t i] is guest [i]'s OS (by index in the config's guest list). *)
val os : t -> int -> Guest.Guestos.t

val n_guests : t -> int

(** [run t] executes the machine to completion and returns the results.
    May be called once. *)
val run : t -> result
