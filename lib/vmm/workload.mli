(** Workload model: a guest application as a set of threads, each a pull
    generator of operations.

    Generators are ordinary closures; the machine executor interprets the
    operations against {!Guest.Guestos} in continuation-passing style, so
    workload code stays direct-style and readable.  Synchronous guest
    calls (creating files, allocating/freeing regions) are made by the
    generator itself inside [setup] or lazily while generating. *)

type op =
  | Compute of int
      (** busy the VCPU for n microseconds (holds the VCPU) *)
  | File_read of Guest.Guestos.file * int  (** read block idx *)
  | File_write of Guest.Guestos.file * int  (** overwrite block idx *)
  | Fsync of Guest.Guestos.file
  | Touch of Guest.Guestos.region * int * bool  (** page idx, write? *)
  | Overwrite of Guest.Guestos.region * int  (** REP whole-page store *)
  | Memcpy of Guest.Guestos.region * int  (** whole page via 512 B stores *)
  | Mark of (unit -> unit)
      (** instrumentation callback (iteration boundaries); costs nothing *)

(** A thread yields its next operation, or [None] when finished. *)
type thread = unit -> op option

type setup_result = {
  threads : thread list;
  cleanup : unit -> unit;
      (** called by the OOM killer: release the process's memory *)
}

type t = {
  name : string;
  setup : Guest.Guestos.t -> Sim.Rng.t -> setup_result;
}

(** {2 Generator helpers} *)

(** [of_list ops] is a thread yielding a fixed operation list. *)
val of_list : op list -> thread

(** [of_fun f] wraps a stateful indexed generator: [f i] is the i-th
    operation, [None] ends the thread. *)
val of_fun : (int -> op option) -> thread

(** [concat a b] runs thread [a] to completion, then [b]. *)
val concat : thread -> thread -> thread

(** [repeat n make] runs [make ()]'s thread [n] times in sequence,
    reconstructing it for each round. *)
val repeat : int -> (unit -> thread) -> thread

(** [striped n make] builds [max 1 n] independent threads, thread [i]
    being [make i].  With more threads than VCPUs the guest always has
    runnable work to overlap an in-flight fault with — the payload of
    the async page-fault path. *)
val striped : int -> (int -> thread) -> thread list
