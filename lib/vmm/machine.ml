module Guestos = Guest.Guestos

(* A workload thread plus its currently armed VCPU timeslice event, so a
   kill can cancel pending compute bursts instead of letting them fire
   into a dead guest (stale handles are no-ops, so clearing on fire is
   cosmetic). *)
type thr = {
  run : Workload.thread;
  mutable timeslice : Sim.Engine.event;
}

type grun = {
  spec : Config.guest_spec;
  os : Guestos.t;
  gid : Host.Hostmm.guest_id;
  mutable idle_vcpus : int;
  ready : thr Queue.t;
  mutable threads : thr list;  (* every thread ever started, for kill *)
  mutable live_threads : int;
  mutable cleanup : unit -> unit;
  mutable killed : bool;
  mutable started_at : Sim.Time.t option;
  mutable finished_at : Sim.Time.t option;
  mutable ready_for_epoch : bool;
}

type t = {
  cfg : Config.t;
  engine : Sim.Engine.t;
  disk : Storage.Disk.t;
  stats : Metrics.Stats.t;
  host : Host.Hostmm.t;
  mutable scrub : Host.Scrub.t option;
  gruns : grun array;
  manager : Balloon.Manager.t option;
  mutable epoch : Sim.Time.t option;
  mutable ran : bool;
}

type guest_result = { runtime : Sim.Time.t option; oomed : bool }

type result = {
  guests : guest_result array;
  stats : Metrics.Stats.t;
  wall : Sim.Time.t;
  hit_time_limit : bool;
}

let build (cfg : Config.t) =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let faults = Faults.Plan.create cfg.faults in
  (* With [epoch_faults] the disk starts clean and the plan is installed
     when the workload epoch opens — boot-time image I/O never faults.
     Tier backends keep the plan from build in both modes: their error
     streams fire only on swap traffic, which is post-epoch anyway. *)
  let disk_faults = if cfg.epoch_faults then Faults.Plan.none else faults in
  let disk = Storage.Disk.create ~engine ~stats ~faults:disk_faults cfg.disk in
  (* Physical disk layout: [hv region | guest images ... | host swap]. *)
  let hv_base_sector = 0 in
  let cursor = ref (Storage.Geom.sectors_of_pages (Storage.Geom.pages_of_mb 64)) in
  let vdisks =
    List.mapi
      (fun i (g : Config.guest_spec) ->
        let gcfg =
          {
            (Guest.Gconfig.default ~mem_mb:g.mem_mb) with
            misaligned_io_percent = g.misaligned_io_percent;
          }
        in
        let nblocks =
          gcfg.Guest.Gconfig.swap_blocks + Storage.Geom.pages_of_mb g.data_mb
        in
        let vd =
          Storage.Vdisk.create ~id:i ~base_sector:!cursor ~nblocks
        in
        cursor := Storage.Vdisk.end_sector vd;
        (gcfg, vd))
      cfg.guests
  in
  let swap =
    Storage.Swap_area.create ~base_sector:!cursor
      ~nslots:(Storage.Geom.pages_of_mb cfg.host_swap_mb)
  in
  let hconfig = Host.Hconfig.with_memory_mb cfg.hbase cfg.host_mem_mb in
  let tiers =
    Storage.Tiers.create ~engine ~stats ~disk ~swap ~faults cfg.tiers
  in
  let host =
    Host.Hostmm.create ~engine ~disk ~tiers ~stats ~config:hconfig
      ~vsconfig:cfg.vs ~swap ~hv_base_sector ()
  in
  let gruns =
    Array.of_list
      (List.map2
         (fun (spec : Config.guest_spec) (gcfg, vd) ->
           let gid =
             Host.Hostmm.register_guest host ~vdisk:vd
               ~gpa_pages:gcfg.Guest.Gconfig.mem_pages
               ~resident_limit:
                 (Option.map Storage.Geom.pages_of_mb spec.resident_limit_mb)
           in
           let os =
             Guestos.create ~engine ~host ~gid ~stats ~config:gcfg
           in
           {
             spec;
             os;
             gid;
             idle_vcpus = max 1 spec.vcpus;
             ready = Queue.create ();
             threads = [];
             live_threads = 0;
             cleanup = (fun () -> ());
             killed = false;
             started_at = None;
             finished_at = None;
             ready_for_epoch = false;
           })
         cfg.guests vdisks)
  in
  let manager =
    Option.map
      (fun policy ->
        Balloon.Manager.create ~engine ~host
          ~guests:(Array.to_list (Array.map (fun g -> g.os) gruns))
          policy)
      cfg.manager
  in
  {
    cfg;
    engine;
    disk;
    stats;
    host;
    scrub = None;
    gruns;
    manager;
    epoch = None;
    ran = false;
  }

let engine (t : t) = t.engine
let stats (t : t) = t.stats
let host (t : t) = t.host
let scrub (t : t) = t.scrub
let disk (t : t) = t.disk
let os (t : t) i = t.gruns.(i).os
let n_guests (t : t) = Array.length t.gruns

(* ------------------------------------------------------------------ *)
(* VCPU scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let rec dispatch t g =
  if not g.killed then
    while g.idle_vcpus > 0 && not (Queue.is_empty g.ready) do
      g.idle_vcpus <- g.idle_vcpus - 1;
      let th = Queue.pop g.ready in
      run_thread t g th
    done

and run_thread t g th =
  if g.killed then ()
  else
    match th.run () with
    | None ->
        g.live_threads <- g.live_threads - 1;
        g.idle_vcpus <- g.idle_vcpus + 1;
        if g.live_threads = 0 && g.finished_at = None then
          g.finished_at <- Some (Sim.Engine.now t.engine);
        dispatch t g
    | Some (Workload.Mark f) ->
        f ();
        run_thread t g th
    | Some (Workload.Compute us) ->
        (* Compute holds the VCPU and continues the same thread; the
           timeslice event is cancellable so a kill can revoke it. *)
        th.timeslice <-
          (Sim.Engine.schedule_after t.engine (Sim.Time.us us) (fun () ->
               th.timeslice <- Sim.Engine.null;
               run_thread t g th))
    | Some op when t.cfg.async_faults ->
        (* Async page faults: the VCPU is released at issue, not at
           completion, so runnable sibling threads (or a later-started
           thread of the same guest) overlap the wait.  The operation's
           latency is charged only to the issuing thread, which re-enters
           the ready queue from the completion callback. *)
        let k () =
          if not g.killed then begin
            Queue.push th g.ready;
            dispatch t g
          end
        in
        exec_io t g op k;
        g.idle_vcpus <- g.idle_vcpus + 1;
        dispatch t g
    | Some op ->
        (* Sync: the VCPU is held for the whole operation and handed back
           at completion, together with the thread. *)
        let k () =
          g.idle_vcpus <- g.idle_vcpus + 1;
          if not g.killed then Queue.push th g.ready;
          dispatch t g
        in
        exec_io t g op k

and exec_io _t g op k =
  let os = g.os in
  match op with
  | Workload.Compute _ | Workload.Mark _ -> assert false
  | Workload.File_read (f, idx) -> Guestos.read_file os f ~idx k
  | Workload.File_write (f, idx) -> Guestos.write_file os f ~idx k
  | Workload.Fsync f -> Guestos.fsync_file os f k
  | Workload.Touch (r, idx, write) -> Guestos.touch os r ~idx ~write k
  | Workload.Overwrite (r, idx) -> Guestos.overwrite_page os r ~idx k
  | Workload.Memcpy (r, idx) -> Guestos.memcpy_page os r ~idx k

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let kill t g =
  if not g.killed then begin
    g.killed <- true;
    Queue.clear g.ready;
    (* Revoke pending VCPU timeslices; handles of already-fired events
       are stale and cancelling them is a no-op. *)
    List.iter
      (fun th ->
        Sim.Engine.cancel t.engine th.timeslice;
        th.timeslice <- Sim.Engine.null)
      g.threads;
    g.cleanup ()
  end

let start_workload t g () =
  if not g.killed then begin
    g.started_at <- Some (Sim.Engine.now t.engine);
    let rng = Sim.Rng.of_int (t.cfg.seed + (7919 * (g.gid + 1))) in
    let setup = g.spec.workload.Workload.setup g.os rng in
    g.cleanup <- setup.Workload.cleanup;
    Guestos.set_oom_handler g.os (fun () -> kill t g);
    let threads =
      List.map
        (fun run -> { run; timeslice = Sim.Engine.null })
        setup.Workload.threads
    in
    g.threads <- threads;
    g.live_threads <- List.length threads;
    if threads = [] then g.finished_at <- Some (Sim.Engine.now t.engine)
    else List.iter (fun th -> Queue.push th g.ready) threads;
    dispatch t g
  end

let all_ready t = Array.for_all (fun g -> g.ready_for_epoch) t.gruns

(* The background scrubber is armed at the workload epoch, not at
   build: its verify reads would otherwise keep the disk queue busy
   during the boot sequence's disk-settle wait (which polls for an idle
   queue) and the epoch would never open.  With the default rate of 0
   nothing is scheduled and the run is event-for-event identical to a
   scrubber-less build. *)
let arm_scrub t =
  let hconfig = Host.Hconfig.with_memory_mb t.cfg.hbase t.cfg.host_mem_mb in
  if hconfig.Host.Hconfig.scrub_rate_pages_s > 0 then
    match t.scrub with
    | Some _ -> ()
    | None ->
        t.scrub <-
          Some
            (Host.Scrub.start ~engine:t.engine ~stats:t.stats
               ~swap:(Host.Hostmm.swap_area t.host)
               ~tiers:(Host.Hostmm.tiers t.host)
               ~relocate:(fun slot -> Host.Hostmm.relocate_slot t.host slot)
               ~rate:hconfig.Host.Hconfig.scrub_rate_pages_s
               ~repair_budget:hconfig.Host.Hconfig.scrub_repair_budget)

let open_epoch t =
  if t.epoch = None && all_ready t then begin
    let now = Sim.Engine.now t.engine in
    t.epoch <- Some now;
    if t.cfg.epoch_faults then
      Storage.Disk.set_faults t.disk (Faults.Plan.create t.cfg.faults);
    arm_scrub t;
    (match t.manager with Some m -> Balloon.Manager.start m | None -> ());
    Array.iter
      (fun g ->
        (Sim.Engine.run_at t.engine
             (Sim.Time.add now g.spec.start_after)
             (start_workload t g)))
      t.gruns
  end

(* Boot sequence: kernel -> services -> static balloon convergence ->
   full-memory warmup (uncooperative configs only; a ballooned guest
   never dirties memory beyond its allowance) -> disk settle -> ready. *)
let rec wait_settled t g () =
  if Storage.Disk.queue_depth t.disk > 0 then
    (Sim.Engine.run_after t.engine (Sim.Time.ms 50) (wait_settled t g))
  else begin
    g.ready_for_epoch <- true;
    open_epoch t
  end

let rec wait_balloon t g k () =
  let os = g.os in
  if
    Guestos.balloon_size os < Guestos.balloon_target os
    && not (Guestos.oomed os)
  then
    (Sim.Engine.run_after t.engine (Sim.Time.ms 50) (wait_balloon t g k))
  else k ()

let boot_guest t g () =
  Guestos.boot g.os (fun () ->
      Guestos.start_services g.os;
      (match g.spec.balloon_static_mb with
      | Some usable_mb ->
          let gcfg = Guestos.config g.os in
          let target =
            gcfg.Guest.Gconfig.mem_pages - Storage.Geom.pages_of_mb usable_mb
          in
          Guestos.set_balloon_target g.os ~pages:(max 0 target)
      | None -> ());
      wait_balloon t g
        (fun () ->
          if g.spec.warm_all then
            Guestos.warm_all_memory g.os (wait_settled t g)
          else wait_settled t g ())
        ())

let run t =
  if t.ran then invalid_arg "Machine.run: already ran";
  t.ran <- true;
  (* When the host OOM-kills a guest or abandons it after unrecoverable
     I/O errors, stop scheduling its vCPUs too. *)
  Host.Hostmm.set_kill_handler t.host (fun gid ->
      Array.iter (fun g -> if g.gid = gid then kill t g) t.gruns);
  Array.iter
    (fun g -> (Sim.Engine.run_at t.engine Sim.Time.zero (boot_guest t g)))
    t.gruns;
  let all_done () =
    Array.for_all (fun g -> g.finished_at <> None || g.killed) t.gruns
  in
  let hit_limit = ref false in
  let continue_ = ref true in
  while !continue_ && not (all_done ()) do
    if Sim.Engine.now t.engine >= t.cfg.time_limit then begin
      hit_limit := true;
      continue_ := false
    end
    else if not (Sim.Engine.step t.engine) then continue_ := false
  done;
  let guests =
    Array.map
      (fun g ->
        let runtime =
          match (g.started_at, g.finished_at) with
          | Some s, Some f -> Some (Sim.Time.sub f s)
          | _ -> None
        in
        { runtime; oomed = Guestos.oomed g.os })
      t.gruns
  in
  (* Fold the engine's own counters into the machine stats, so telemetry
     flows to the bench summary through the same channel as every other
     counter. *)
  let tel = Sim.Engine.telemetry t.engine in
  t.stats.Metrics.Stats.engine_events_fired <- tel.Sim.Engine.events_fired;
  t.stats.Metrics.Stats.engine_cancels_reclaimed <-
    tel.Sim.Engine.cancels_reclaimed;
  t.stats.Metrics.Stats.engine_cascades <- tel.Sim.Engine.cascades;
  {
    guests;
    stats = t.stats;
    wall = Sim.Engine.now t.engine;
    hit_time_limit = !hit_limit;
  }
