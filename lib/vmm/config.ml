type guest_spec = {
  mem_mb : int;
  vcpus : int;
  resident_limit_mb : int option;
  balloon_static_mb : int option;
  warm_all : bool;
  workload : Workload.t;
  start_after : Sim.Time.t;
  data_mb : int;
  misaligned_io_percent : int;
}

type t = {
  host_mem_mb : int;
  vs : Vswapper.Vsconfig.t;
  hbase : Host.Hconfig.t;
  disk : Storage.Disk.config;
  manager : Balloon.Manager.policy option;
  host_swap_mb : int;
  guests : guest_spec list;
  time_limit : Sim.Time.t;
  seed : int;
  faults : Faults.Config.t;
}

let default_guest ~workload =
  {
    mem_mb = 512;
    vcpus = 1;
    resident_limit_mb = None;
    balloon_static_mb = None;
    warm_all = false;
    workload;
    start_after = Sim.Time.zero;
    data_mb = 1024;
    misaligned_io_percent = 0;
  }

let default ~guests =
  {
    host_mem_mb = 2048;
    vs = Vswapper.Vsconfig.baseline;
    hbase = Host.Hconfig.default;
    disk = Storage.Disk.default_config;
    manager = None;
    host_swap_mb = 8192;
    guests;
    time_limit = Sim.Time.sec 36_000;
    seed = 42;
    faults = Faults.Config.none;
  }

let name_of t =
  let vs_name =
    match (t.vs.mapper, t.vs.preventer) with
    | false, false -> "baseline"
    | true, false -> "mapper"
    | true, true -> "vswapper"
    | false, true -> "preventer-only"
  in
  let ballooned =
    t.manager <> None
    || List.exists (fun g -> g.balloon_static_mb <> None) t.guests
  in
  if ballooned then "balloon+" ^ vs_name else vs_name
