type guest_spec = {
  mem_mb : int;
  vcpus : int;
  resident_limit_mb : int option;
  balloon_static_mb : int option;
  warm_all : bool;
  workload : Workload.t;
  start_after : Sim.Time.t;
  data_mb : int;
  misaligned_io_percent : int;
}

type t = {
  host_mem_mb : int;
  vs : Vswapper.Vsconfig.t;
  hbase : Host.Hconfig.t;
  disk : Storage.Disk.config;
  manager : Balloon.Manager.policy option;
  host_swap_mb : int;
  guests : guest_spec list;
  time_limit : Sim.Time.t;
  seed : int;
  faults : Faults.Config.t;
  epoch_faults : bool;
  async_faults : bool;
  tiers : Storage.Tiers.config;
}

let default_guest ~workload =
  {
    mem_mb = 512;
    vcpus = 1;
    resident_limit_mb = None;
    balloon_static_mb = None;
    warm_all = false;
    workload;
    start_after = Sim.Time.zero;
    data_mb = 1024;
    misaligned_io_percent = 0;
  }

(* Environment overrides, so smoke tests and sweeps can flip a stock
   experiment into the async multi-queue regime without editing it.
   Unset (or unparsable) variables leave the defaults untouched. *)
let env_int name fallback =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | Some _ | None -> fallback)
  | None -> fallback

let env_flag name fallback =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> fallback

let env_float name fallback =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 -> v
      | Some _ | None -> fallback)
  | None -> fallback

(* VSWAPPER_TIERS picks the tier pair ("disk", "czram+disk",
   "disk+remote", "czram+remote"); the per-tier knobs refine it.  The
   default is the disk-only passthrough, so every run without these
   variables behaves exactly as before tiering existed. *)
let env_tiers () =
  let base = Storage.Tiers.disk_only in
  let base =
    match Sys.getenv_opt "VSWAPPER_TIERS" with
    | Some s -> (
        match Storage.Tiers.pair_of_string (String.lowercase_ascii (String.trim s)) with
        | Some (fast, slow) -> { base with Storage.Tiers.fast; slow }
        | None -> base)
    | None -> base
  in
  {
    base with
    Storage.Tiers.fast_share_percent =
      env_int "VSWAPPER_FAST_SHARE" base.Storage.Tiers.fast_share_percent;
    czram_admit_ratio =
      env_float "VSWAPPER_CZRAM_RATIO" base.Storage.Tiers.czram_admit_ratio;
    remote_rtt_us =
      env_int "VSWAPPER_REMOTE_RTT_US" base.Storage.Tiers.remote_rtt_us;
    remote_gbps =
      env_float "VSWAPPER_REMOTE_GBPS" base.Storage.Tiers.remote_gbps;
  }

let default ~guests =
  let disk =
    {
      Storage.Disk.default_config with
      num_queues =
        env_int "VSWAPPER_QUEUES" Storage.Disk.default_config.num_queues;
      per_queue_depth =
        env_int "VSWAPPER_QDEPTH" Storage.Disk.default_config.per_queue_depth;
    }
  in
  let hbase =
    match Sys.getenv_opt "VSWAPPER_MAX_INFLIGHT" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v >= 0 ->
            { Host.Hconfig.default with max_inflight_faults = v }
        | Some _ | None -> Host.Hconfig.default)
    | None -> Host.Hconfig.default
  in
  (* Degraded-media knobs: both layers default off (rate 0), so runs
     without these variables schedule no scrub ticks and no QoS layer. *)
  let hbase =
    {
      hbase with
      Host.Hconfig.scrub_rate_pages_s =
        env_int "VSWAPPER_SCRUB_RATE" hbase.Host.Hconfig.scrub_rate_pages_s;
      scrub_repair_budget =
        env_int "VSWAPPER_SCRUB_BUDGET" hbase.Host.Hconfig.scrub_repair_budget;
      qos_rate = env_int "VSWAPPER_QOS_RATE" hbase.Host.Hconfig.qos_rate;
      qos_burst = env_int "VSWAPPER_QOS_BURST" hbase.Host.Hconfig.qos_burst;
    }
  in
  {
    host_mem_mb = 2048;
    vs = Vswapper.Vsconfig.baseline;
    hbase;
    disk;
    manager = None;
    host_swap_mb = 8192;
    guests;
    time_limit = Sim.Time.sec 36_000;
    seed = 42;
    faults = Faults.Config.none;
    epoch_faults = false;
    async_faults = env_flag "VSWAPPER_ASYNC" false;
    tiers = env_tiers ();
  }

let name_of t =
  let vs_name =
    match (t.vs.mapper, t.vs.preventer) with
    | false, false -> "baseline"
    | true, false -> "mapper"
    | true, true -> "vswapper"
    | false, true -> "preventer-only"
  in
  let ballooned =
    t.manager <> None
    || List.exists (fun g -> g.balloon_static_mb <> None) t.guests
  in
  if ballooned then "balloon+" ^ vs_name else vs_name
