type op =
  | Compute of int
  | File_read of Guest.Guestos.file * int
  | File_write of Guest.Guestos.file * int
  | Fsync of Guest.Guestos.file
  | Touch of Guest.Guestos.region * int * bool
  | Overwrite of Guest.Guestos.region * int
  | Memcpy of Guest.Guestos.region * int
  | Mark of (unit -> unit)

type thread = unit -> op option
type setup_result = { threads : thread list; cleanup : unit -> unit }
type t = { name : string; setup : Guest.Guestos.t -> Sim.Rng.t -> setup_result }

let of_list ops =
  let remaining = ref ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
        remaining := rest;
        Some op

let of_fun f =
  let i = ref 0 in
  fun () ->
    let op = f !i in
    incr i;
    op

let concat a b =
  let first = ref true in
  let rec next () =
    if !first then
      match a () with
      | Some op -> Some op
      | None ->
          first := false;
          next ()
    else b ()
  in
  next

let striped n make = List.init (max 1 n) make

let repeat n make =
  if n <= 0 then fun () -> None
  else begin
    let rounds_left = ref n in
    let current = ref (make ()) in
    let rec next () =
      match !current () with
      | Some op -> Some op
      | None ->
          decr rounds_left;
          if !rounds_left <= 0 then None
          else begin
            current := make ();
            next ()
          end
    in
    next
  end
