(** Machine configuration: host sizing, VSwapper features, ballooning
    mode, disk model and the set of guests with their workloads. *)

type guest_spec = {
  mem_mb : int;  (** memory the guest believes it has *)
  vcpus : int;
  resident_limit_mb : int option;
      (** cgroup cap on the guest's host-resident set (paper Section 5:
          "we constrain guest memory size using cgroups") *)
  balloon_static_mb : int option;
      (** if set, pre-inflate the balloon at boot so the guest
          effectively has this many MiB (the paper's static "balloon"
          configurations) *)
  warm_all : bool;
      (** touch all guest memory once before the workload (the state of
          a long-running guest; precondition for stale-read effects) *)
  workload : Workload.t;
  start_after : Sim.Time.t;  (** workload start, relative to the epoch *)
  data_mb : int;  (** file-data area of the guest's virtual disk *)
  misaligned_io_percent : int;
      (** Windows-style guests issue some non-4K-aligned disk requests
          even after a 4K reformat (paper Section 5.4); those bypass the
          Mapper *)
}

type t = {
  host_mem_mb : int;
  vs : Vswapper.Vsconfig.t;
  hbase : Host.Hconfig.t;  (** memory-size fields are derived by [build] *)
  disk : Storage.Disk.config;
  manager : Balloon.Manager.policy option;  (** dynamic balloon manager *)
  host_swap_mb : int;
  guests : guest_spec list;
  time_limit : Sim.Time.t;
  seed : int;
  faults : Faults.Config.t;
      (** deterministic disk fault injection; [Faults.Config.none]
          (the default) injects nothing *)
  epoch_faults : bool;
      (** install the disk fault plan at the workload epoch instead of
          at build — the drive "ages" after boot, so the boot sequence's
          image I/O cannot kill a guest before its workload even starts.
          Tier backends (czram/remote) get the plan at build either way:
          their error streams only fire on swap traffic, which is
          post-epoch by construction.  Off by default. *)
  async_faults : bool;
      (** release a faulting VCPU at I/O issue instead of completion, so
          runnable sibling threads overlap the wait (async page faults).
          Off by default: the sync path reproduces historical output. *)
  tiers : Storage.Tiers.config;
      (** swap-backend tiering; {!Storage.Tiers.disk_only} (the
          default) is a pure passthrough to the disk *)
}

val default_guest : workload:Workload.t -> guest_spec

(** [default ~guests] reads optional environment overrides so smoke
    tests can flip a stock experiment into the async multi-queue regime:
    [VSWAPPER_ASYNC] (bool) sets [async_faults], [VSWAPPER_QUEUES] /
    [VSWAPPER_QDEPTH] (positive ints) set the disk's [num_queues] /
    [per_queue_depth], [VSWAPPER_MAX_INFLIGHT] (int >= 0) sets
    [Host.Hconfig.max_inflight_faults].  Tiering knobs:
    [VSWAPPER_TIERS] ("disk", "czram+disk", "disk+remote",
    "czram+remote") picks the tier pair; [VSWAPPER_FAST_SHARE]
    (percent), [VSWAPPER_CZRAM_RATIO] (max admitted compression
    ratio), [VSWAPPER_REMOTE_RTT_US] and [VSWAPPER_REMOTE_GBPS]
    refine it.  Degraded-media knobs: [VSWAPPER_SCRUB_RATE] (swap
    slots verified per simulated second; 0 = no scrubber) and
    [VSWAPPER_SCRUB_BUDGET] (relocations per scrub pass) arm the
    background scrubber; [VSWAPPER_QOS_RATE] (swap-in faults admitted
    per guest per simulated second; 0 = no QoS) and
    [VSWAPPER_QOS_BURST] (bucket depth) arm per-guest I/O admission
    control. *)
val default : guests:guest_spec list -> t

(** [name_of_vs cfg] is the paper's name for a configuration:
    "baseline", "mapper", "vswapper", optionally prefixed "balloon+". *)
val name_of : t -> string
