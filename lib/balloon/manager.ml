type policy = {
  period : Sim.Time.t;
  host_reserve_frames : int;
  guest_min_pages : int;
  guest_free_low : float;
  guest_free_high : float;
  step_pages : int;
}

let default_policy =
  {
    period = Sim.Time.sec 1;
    host_reserve_frames = Storage.Geom.pages_of_mb 64;
    guest_min_pages = Storage.Geom.pages_of_mb 96;
    guest_free_low = 0.05;
    guest_free_high = 0.25;
    step_pages = Storage.Geom.pages_of_mb 32;
  }

type t = {
  engine : Sim.Engine.t;
  host : Host.Hostmm.t;
  guests : Guest.Guestos.t list;
  policy : policy;
  mutable running : bool;
  mutable timer : Sim.Engine.event;  (* the armed tick, for stop *)
}

let create ~engine ~host ~guests policy =
  { engine; host; guests; policy; running = false; timer = Sim.Engine.null }

(* One adjustment round.  Roughly MOM's Balloon rule: compute each
   guest's "slack" (free + clean page cache); under host pressure, grow
   the balloons of slack-rich guests; with host surplus, shrink the
   balloon of any squeezed guest. *)
let adjust t =
  let p = t.policy in
  let host_free = Host.Hostmm.free_frames t.host in
  let pressure = p.host_reserve_frames - host_free in
  List.iter
    (fun os ->
      let cfg = Guest.Guestos.config os in
      let mem = cfg.Guest.Gconfig.mem_pages in
      let target = Guest.Guestos.balloon_target os in
      let free = Guest.Guestos.free_pages os in
      let cache = Guest.Guestos.cache_pages os in
      let usable = mem - target in
      let free_frac = float_of_int (free + cache) /. float_of_int (max 1 usable) in
      if pressure > 0 && free_frac > p.guest_free_high then begin
        (* Donor: grow its balloon by up to a step. *)
        let headroom = usable - p.guest_min_pages in
        let grow = min p.step_pages (min headroom pressure) in
        if grow > 0 then
          Guest.Guestos.set_balloon_target os ~pages:(target + grow)
      end
      else if free_frac < p.guest_free_low && target > 0 then begin
        (* Squeezed guest: deflate if the host can afford it. *)
        let surplus = host_free - (p.host_reserve_frames / 2) in
        let shrink = min p.step_pages (min target (max 0 surplus)) in
        if shrink > 0 then
          Guest.Guestos.set_balloon_target os ~pages:(target - shrink)
      end)
    t.guests

let rec tick t () =
  t.timer <- Sim.Engine.null;
  if t.running then begin
    adjust t;
    arm t
  end

and arm t =
  t.timer <- Sim.Engine.schedule_after t.engine t.policy.period (tick t)

let start t =
  if not t.running then begin
    t.running <- true;
    arm t
  end

(* Cancels the armed tick outright instead of leaving a dead event to
   fire into a stopped manager. *)
let stop t =
  t.running <- false;
  Sim.Engine.cancel t.engine t.timer;
  t.timer <- Sim.Engine.null
