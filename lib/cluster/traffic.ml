type vm_spec = { tenant : int; mem_mb : int; lifetime_epochs : int }

type t = {
  seed : int;
  period : int;
  mean_arrivals : float;
  mutable next_tenant : int;
}

let create ?(period = 12) ~seed ~mean_arrivals () =
  { seed; period = max 1 period; mean_arrivals; next_tenant = 0 }

(* One RNG per (seed, epoch, salt): every stochastic choice is a pure
   function of its coordinates, never of call order across epochs. *)
let epoch_rng t ~epoch ~salt =
  Sim.Rng.of_int
    ((t.seed * 0x9E3779B1) lxor ((epoch + 1) * 0x85EBCA77) lxor salt)

let load t ~epoch =
  let phase =
    float_of_int (epoch mod t.period) /. float_of_int t.period
  in
  (* Trough at the start of the "day", peak mid-day: 0.35 .. 1.0. *)
  let diurnal =
    0.35 +. (0.65 *. 0.5 *. (1.0 -. cos (2.0 *. Float.pi *. phase)))
  in
  let rng = epoch_rng t ~epoch ~salt:0x51F15E in
  let spike = if Sim.Rng.bool rng 0.12 then 1.5 else 1.0 in
  Float.min 1.6 (diurnal *. spike)

(* Heavy-tailed request sizes: mostly small tenants, a fat tail of
   64 MB ones (mean ~ 18 MB). *)
let sizes_mb =
  [| 4; 4; 4; 8; 8; 8; 8; 12; 12; 16; 16; 24; 24; 32; 48; 64 |]

let arrivals t ~epoch =
  let rng = epoch_rng t ~epoch ~salt:0xA221E5 in
  let expect = t.mean_arrivals *. load t ~epoch in
  let n =
    int_of_float expect
    + (if Sim.Rng.bool rng (expect -. Float.of_int (int_of_float expect))
       then 1
       else 0)
  in
  (* Explicit loop: the tenant counter and the RNG draws must advance
     in arrival order ([List.init]'s evaluation order is unspecified). *)
  let rec draw k acc =
    if k = 0 then List.rev acc
    else begin
      let tenant = t.next_tenant in
      t.next_tenant <- t.next_tenant + 1;
      let spec =
        {
          tenant;
          mem_mb = sizes_mb.(Sim.Rng.int rng (Array.length sizes_mb));
          lifetime_epochs = 2 + Sim.Rng.int rng 5;
        }
      in
      draw (k - 1) (spec :: acc)
    end
  in
  draw n []
