(** Fleet simulator: N independent host simulations stepped in parallel
    epochs under a cluster controller.

    Each host shard owns a full simulation stack — its own
    {!Sim.Engine}, {!Storage.Disk}, swap area, {!Host.Hostmm} and
    guests — and shares nothing mutable with any other shard, so an
    epoch steps all hosts concurrently on a {!Parallel.Pool} with zero
    cross-shard synchronization.  Between epochs a serial barrier runs
    the controller: it harvests OOM kills and tenant departures,
    resolves in-flight evacuations, places new arrivals (first-fit
    decreasing under a configurable overcommit ratio), and starts
    pressure-driven rebalancing migrations ({!Migration.Migrate} reads
    the source's pages back through its own tiers/disk, contending with
    the guests still running there).

    Determinism: every shard is a closed deterministic simulation in
    virtual time; the controller runs serially in host-index order; the
    epoch reduction folds per-host stats in host order with
    order-independent merges ({!Metrics.Stats.add}).  The pool only
    changes which wall-clock instant each shard steps at — stats,
    report and fingerprint are byte-identical at any pool width. *)

type config = {
  hosts : int;
  host_mem_mb : int;  (** physical memory per host *)
  host_swap_mb : int;  (** host swap area per host *)
  overcommit : float;
      (** placement bound: committed MB <= host_mem_mb * overcommit *)
  epoch_s : int;  (** simulated seconds per epoch *)
  epochs : int;
  seed : int;  (** traffic seed *)
  mean_arrivals : float;  (** expected tenant arrivals per epoch at load 1 *)
  base_load : float;
      (** fraction of a VM's pages touched per epoch at load 1 *)
  rebalance_swapin_rate : float;
      (** host swap-ins per simulated second above which the controller
          evacuates a VM from the host *)
  link : Migration.Migrate.link;  (** evacuation network link *)
}

(** 128 hosts x 96 MB, 1.5x overcommit, 12 epochs of 20 simulated
    seconds, ~2.5 arrivals per host-epoch at load 1. *)
val default_config : config

(** One barrier row, in epoch order. *)
type epoch_row = {
  epoch : int;
  load : float;  (** diurnal traffic intensity *)
  live : int;  (** VMs running after this barrier *)
  placed : int;
  rejected : int;  (** arrivals refused (no host within the bound) *)
  departed : int;
  oom_killed : int;
  migrations_started : int;
  migrations_done : int;
  migrations_aborted : int;
  swapins : int;  (** fleet-wide host swap-ins during the epoch *)
  swapouts : int;
  max_committed_mb : int;  (** most-committed host after placement *)
}

type result = {
  rows : epoch_row list;  (** one per epoch, in order *)
  guests_placed : int;  (** cumulative VMs placed *)
  guests_rejected : int;
  pages_placed : int;  (** cumulative pages of placed VMs *)
  peak_live_pages : int;  (** max concurrent live pages at a barrier *)
  guest_seconds : int;  (** integral of live VMs over simulated time *)
  migrations : int;  (** completed evacuations *)
  migrations_aborted : int;
  migration_throttled_batches : int;
      (** dirty-rate backoff delays across all evacuations *)
  oom_kills : int;
  totals : Metrics.Stats.t;
      (** all shards reduced in host order, engine telemetry included *)
  fingerprint : int;  (** hash of totals + headline counters *)
  committed_ok : bool;
      (** no host ever exceeded the overcommit bound (checked at every
          placement, reservation and migration landing) *)
  migration_accounting_ok : bool;
      (** every completed evacuation classified exactly its guest's
          pages: copied + mappings + skipped = gpa_pages *)
  live_heap_words : int;
      (** [Gc] live words at the last barrier, every shard still alive;
          wall-clock-free but allocator-dependent — keep out of
          deterministic output *)
}

(** [run ?pool config] simulates the fleet, stepping shards on [pool]
    (default {!Parallel.Pool.global}).  The result is independent of
    the pool width. *)
val run : ?pool:Parallel.Pool.t -> config -> result

(** [report r] renders the deterministic summary: per-epoch panel,
    headline counters, invariant checks and fingerprint.  Contains no
    wall-clock or heap quantities, so two runs of the same config
    produce byte-identical reports. *)
val report : result -> string
