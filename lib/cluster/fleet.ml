module H = Host.Hostmm

type config = {
  hosts : int;
  host_mem_mb : int;
  host_swap_mb : int;
  overcommit : float;
  epoch_s : int;
  epochs : int;
  seed : int;
  mean_arrivals : float;
  base_load : float;
  rebalance_swapin_rate : float;
  link : Migration.Migrate.link;
}

let default_config =
  {
    hosts = 128;
    host_mem_mb = 96;
    host_swap_mb = 256;
    overcommit = 1.5;
    epoch_s = 20;
    epochs = 12;
    seed = 42;
    mean_arrivals = 2.5 *. 128.0;
    base_load = 0.3;
    rebalance_swapin_rate = 50.0;
    link = Migration.Migrate.gbe;
  }

(* ------------------------------------------------------------------ *)
(* Shard-local state                                                   *)
(* ------------------------------------------------------------------ *)

type vm = {
  tenant : int;
  mem_mb : int;
  pages : int;
  born : int;  (* epoch placed *)
  lifetime : int;
  mutable gid : H.guest_id;  (* on the current host *)
  mutable host : int;  (* current host index *)
  mutable dead : bool;  (* OOM-killed by its host *)
  mutable migrating : bool;
  mutable parked : bool;  (* driver chain idle, safe to re-arm *)
  mutable populated : bool;  (* first write pass complete *)
  mutable quota : int;  (* touches remaining this epoch *)
  mutable cursor : int;  (* next gpa to touch *)
  mutable gap_us : int;  (* pacing between touches *)
  mutable anon_next : int;  (* deterministic Anon content ids *)
}

type shard = {
  hid : int;
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  disk : Storage.Disk.t;
  host : H.t;
  gid_vm : (int, vm) Hashtbl.t;  (* controller-maintained gid map *)
  mutable vms : vm list;  (* live VMs, stable placement order *)
  mutable committed_mb : int;
  mutable image_cursor : int;  (* next free sector for a vdisk *)
  mutable run_to : Sim.Time.t;  (* epoch boundary for the step thunk *)
  mutable swapins_prev : int;  (* barrier snapshots for rate deltas *)
  mutable swapouts_prev : int;
}

(* A rebalancing evacuation in flight.  [outcome] is written by the
   migration completion event inside the source shard's epoch; the
   controller reads it at barriers only. *)
type mig = {
  mvm : vm;
  src : int;
  dst : int;
  mutable outcome : Migration.Migrate.outcome option;
  mutable resolved : bool;
}

type epoch_row = {
  epoch : int;
  load : float;
  live : int;
  placed : int;
  rejected : int;
  departed : int;
  oom_killed : int;
  migrations_started : int;
  migrations_done : int;
  migrations_aborted : int;
  swapins : int;
  swapouts : int;
  max_committed_mb : int;
}

type result = {
  rows : epoch_row list;
  guests_placed : int;
  guests_rejected : int;
  pages_placed : int;
  peak_live_pages : int;
  guest_seconds : int;
  migrations : int;
  migrations_aborted : int;
  migration_throttled_batches : int;
  oom_kills : int;
  totals : Metrics.Stats.t;
  fingerprint : int;
  committed_ok : bool;
  migration_accounting_ok : bool;
  live_heap_words : int;
}

let hv_region_mb = 64

let build_shard (cfg : config) hid =
  let engine = Sim.Engine.create () in
  let stats = Metrics.Stats.create () in
  let disk =
    Storage.Disk.create ~engine ~stats Storage.Disk.default_config
  in
  (* Per-shard disk layout mirrors [Vmm.Machine]: hv region, host swap,
     then a cursor growing one image per placed VM (never reused —
     tenants are short-lived but sectors are cheap). *)
  let hv_base_sector = 0 in
  let swap_base =
    Storage.Geom.sectors_of_pages (Storage.Geom.pages_of_mb hv_region_mb)
  in
  let nslots = Storage.Geom.pages_of_mb cfg.host_swap_mb in
  let swap = Storage.Swap_area.create ~base_sector:swap_base ~nslots in
  let image_cursor =
    swap_base + Storage.Geom.sectors_of_pages nslots
  in
  let hconfig =
    Host.Hconfig.with_memory_mb Host.Hconfig.default cfg.host_mem_mb
  in
  let host =
    H.create ~engine ~disk ~stats ~config:hconfig
      ~vsconfig:Vswapper.Vsconfig.baseline ~swap ~hv_base_sector ()
  in
  let shard =
    {
      hid;
      engine;
      stats;
      disk;
      host;
      gid_vm = Hashtbl.create 64;
      vms = [];
      committed_mb = 0;
      image_cursor;
      run_to = Sim.Time.zero;
      swapins_prev = 0;
      swapouts_prev = 0;
    }
  in
  (* The host OOM-kills guests on its own during an epoch; the handler
     only flags the VM (shard-local state) — the controller harvests the
     flag at the next barrier.  Controller-initiated kills (departures,
     migration source release) remove the gid from [gid_vm] first, so
     the handler ignores them. *)
  H.set_kill_handler host (fun gid ->
      match Hashtbl.find_opt shard.gid_vm gid with
      | Some vm when vm.gid = gid -> vm.dead <- true
      | _ -> ());
  shard

(* Register [vm] on [shard]: a fresh vdisk region, a fresh guest id. *)
let admit shard vm =
  let nblocks = vm.pages in
  let vd =
    Storage.Vdisk.create ~id:vm.tenant ~base_sector:shard.image_cursor
      ~nblocks
  in
  shard.image_cursor <- Storage.Vdisk.end_sector vd;
  let gid =
    H.register_guest shard.host ~vdisk:vd ~gpa_pages:vm.pages
      ~resident_limit:None
  in
  vm.gid <- gid;
  vm.host <- shard.hid;
  vm.parked <- true;
  Hashtbl.replace shard.gid_vm gid vm;
  shard.vms <- shard.vms @ [ vm ];
  shard.committed_mb <- shard.committed_mb + vm.mem_mb

(* The per-VM driver chain: one self-rescheduling event that touches the
   guest's pages round-robin, paced by [gap_us], burning [quota].  The
   first pass over the address space writes (populating frames with
   deterministic Anon content — [Content.fresh_anon]'s global counter
   would leak domain interleaving into page contents); later passes
   read, so a page the host reclaimed costs a swap-in.  Every
   continuation is an engine event ([Hostmm] defers through the engine),
   so the chain never grows the OCaml stack.  The chain stops (parking
   or dying) when the quota is gone, the VM migrates away, or the host
   killed it; the controller re-arms parked chains at the barrier. *)
let arm shard vm ~at =
  let rec chain () =
    if vm.dead || vm.host <> shard.hid then ()
    else if vm.migrating || vm.quota <= 0 then vm.parked <- true
    else begin
      vm.quota <- vm.quota - 1;
      let gpa = vm.cursor in
      vm.cursor <- vm.cursor + 1;
      if vm.cursor >= vm.pages then begin
        vm.cursor <- 0;
        vm.populated <- true
      end;
      let next () =
        Sim.Engine.run_after shard.engine (Sim.Time.us vm.gap_us) chain
      in
      if not vm.populated then begin
        vm.anon_next <- vm.anon_next + 1;
        H.rep_write shard.host ~guest:vm.gid ~gpa
          ~content:(Storage.Content.Anon vm.anon_next) next
      end
      else H.touch_read shard.host ~guest:vm.gid ~gpa (fun _ -> next ())
    end
  in
  vm.parked <- false;
  Sim.Engine.run_at shard.engine at chain

(* Deterministic fingerprint: SplitMix64-style fold over the reduced
   counters, so "same everything" is one comparable int. *)
let mix h v =
  let h = h lxor (v * 0x9E3779B97F4A7C1) in
  let h = (h lxor (h lsr 30)) * 0xBF58476D1CE4E5B in
  (h lxor (h lsr 27)) * 0x94D049BB133111E land max_int

let run ?pool (cfg : config) =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
  let hosts = max 1 cfg.hosts in
  let bound_mb =
    int_of_float (float_of_int cfg.host_mem_mb *. cfg.overcommit)
  in
  let epoch_us = cfg.epoch_s * 1_000_000 in
  let shards = Array.init hosts (build_shard cfg) in
  let traffic =
    Traffic.create ~seed:cfg.seed ~mean_arrivals:cfg.mean_arrivals ()
  in
  (* Preallocated step thunks: the epoch hot loop submits these
     unchanged every round — per-shard flat state, no cross-shard
     allocation while the pool is stepping. *)
  let thunks =
    Array.map
      (fun shard -> fun () -> ignore (Sim.Engine.run_until shard.engine shard.run_to))
      shards
  in
  let committed_ok = ref true in
  let check_committed shard =
    if shard.committed_mb > bound_mb then committed_ok := false
  in
  let migration_accounting_ok = ref true in
  let migs : mig list ref = ref [] in
  let rows = ref [] in
  let guests_placed = ref 0 in
  let guests_rejected = ref 0 in
  let pages_placed = ref 0 in
  let peak_live_pages = ref 0 in
  let guest_seconds = ref 0 in
  let migrations_done = ref 0 in
  let migrations_aborted = ref 0 in
  let throttled = ref 0 in
  let oom_total = ref 0 in
  let live_heap_words = ref 0 in
  let release_vm shard vm =
    Hashtbl.remove shard.gid_vm vm.gid;
    shard.vms <- List.filter (fun v -> v != vm) shard.vms;
    shard.committed_mb <- shard.committed_mb - vm.mem_mb
  in
  for e = 0 to cfg.epochs - 1 do
    let t_start = Sim.Time.us (e * epoch_us) in
    let t_end = Sim.Time.us ((e + 1) * epoch_us) in
    let load = Traffic.load traffic ~epoch:e in
    let oom_killed = ref 0 in
    let departed = ref 0 in
    (* 1. Harvest host-initiated OOM kills, then voluntary departures.
       Serial, host-index order. *)
    Array.iter
      (fun shard ->
        List.iter
          (fun vm ->
            if vm.dead then begin
              incr oom_killed;
              release_vm shard vm
            end)
          shard.vms;
        List.iter
          (fun vm ->
            if (not vm.migrating) && vm.born + vm.lifetime <= e then begin
              incr departed;
              release_vm shard vm;
              H.kill_guest shard.host vm.gid
            end)
          shard.vms)
      shards;
    oom_total := !oom_total + !oom_killed;
    (* 2. Resolve evacuations that finished during the last epoch, in
       start order. *)
    let migs_done = ref 0 in
    let migs_aborted = ref 0 in
    List.iter
      (fun m ->
        match m.outcome with
        | None -> ()
        | Some _ when m.resolved -> ()
        | Some outcome ->
            m.resolved <- true;
            let vm = m.mvm in
            let dst = shards.(m.dst) in
            (match outcome with
            | Migration.Migrate.Completed r ->
                throttled := !throttled + r.throttled_batches;
                if
                  r.pages_copied + r.mappings_sent + r.pages_skipped
                  <> vm.pages
                then migration_accounting_ok := false;
                if vm.dead then
                  (* The source OOM-killed the VM mid-copy: the dead
                     harvest already released it; drop the
                     reservation. *)
                  dst.committed_mb <- dst.committed_mb - vm.mem_mb
                else begin
                  incr migs_done;
                  (* Land on the destination: release the source side
                     (unmapping the gid first so the kill handler knows
                     this is not an OOM), then register afresh.  The
                     copied pages arrive as swapped-out state would on a
                     real target — cold; the driver chain repopulates,
                     recreating the memory pressure the VM carries. *)
                  let src = shards.(m.src) in
                  Hashtbl.remove src.gid_vm vm.gid;
                  src.vms <- List.filter (fun v -> v != vm) src.vms;
                  src.committed_mb <- src.committed_mb - vm.mem_mb;
                  H.kill_guest src.host vm.gid;
                  dst.committed_mb <- dst.committed_mb - vm.mem_mb;
                  admit dst vm;
                  check_committed dst;
                  vm.populated <- false;
                  vm.cursor <- 0
                end
            | Migration.Migrate.Aborted _ ->
                incr migs_aborted;
                dst.committed_mb <- dst.committed_mb - vm.mem_mb);
            vm.migrating <- false)
      (List.rev !migs);
    migrations_done := !migrations_done + !migs_done;
    migrations_aborted := !migrations_aborted + !migs_aborted;
    (* 3. Place arrivals: first-fit decreasing by requested memory under
       the overcommit bound. *)
    let placed = ref 0 in
    let rejected = ref 0 in
    let specs =
      List.stable_sort
        (fun (a : Traffic.vm_spec) b -> compare (-a.mem_mb) (-b.mem_mb))
        (Traffic.arrivals traffic ~epoch:e)
    in
    List.iter
      (fun (spec : Traffic.vm_spec) ->
        let rec fit i =
          if i >= hosts then None
          else if shards.(i).committed_mb + spec.mem_mb <= bound_mb then
            Some shards.(i)
          else fit (i + 1)
        in
        match fit 0 with
        | None -> incr rejected
        | Some shard ->
            let pages = Storage.Geom.pages_of_mb spec.mem_mb in
            let vm =
              {
                tenant = spec.tenant;
                mem_mb = spec.mem_mb;
                pages;
                born = e;
                lifetime = spec.lifetime_epochs;
                gid = -1;
                host = shard.hid;
                dead = false;
                migrating = false;
                parked = true;
                populated = false;
                quota = 0;
                cursor = 0;
                gap_us = 1000;
                anon_next = spec.tenant lsl 24;
              }
            in
            admit shard vm;
            check_committed shard;
            incr placed;
            pages_placed := !pages_placed + pages)
      specs;
    guests_placed := !guests_placed + !placed;
    guests_rejected := !guests_rejected + !rejected;
    (* 4. Pressure-driven rebalancing: a host whose swap-in rate crossed
       the threshold (or that OOM-killed someone last epoch) evacuates
       its largest migratable VM to the least-committed host that can
       hold it.  At most one outbound evacuation per host per epoch. *)
    let migs_started = ref 0 in
    let swapins_epoch = ref 0 in
    let swapouts_epoch = ref 0 in
    Array.iter
      (fun shard ->
        let si = shard.stats.Metrics.Stats.host_swapins in
        let so = shard.stats.Metrics.Stats.host_swapouts in
        let d_si = si - shard.swapins_prev in
        swapins_epoch := !swapins_epoch + d_si;
        swapouts_epoch := !swapouts_epoch + (so - shard.swapouts_prev);
        shard.swapins_prev <- si;
        shard.swapouts_prev <- so;
        let rate = float_of_int d_si /. float_of_int cfg.epoch_s in
        if e > 0 && rate > cfg.rebalance_swapin_rate then begin
          (* Largest populated VM that is not migrating and will still
             be around to benefit (2+ epochs of life left). *)
          let candidate =
            List.fold_left
              (fun best vm ->
                if
                  vm.migrating || vm.dead || (not vm.populated)
                  || vm.born + vm.lifetime <= e + 2
                then best
                else
                  match best with
                  | Some b when b.mem_mb >= vm.mem_mb -> best
                  | _ -> Some vm)
              None shard.vms
          in
          match candidate with
          | None -> ()
          | Some vm ->
              let dest = ref None in
              Array.iter
                (fun d ->
                  if
                    d.hid <> shard.hid
                    && d.committed_mb + vm.mem_mb <= bound_mb
                  then
                    match !dest with
                    | Some (best : shard)
                      when best.committed_mb <= d.committed_mb ->
                        ()
                    | _ -> dest := Some d)
                shards;
              match !dest with
              | None -> ()
              | Some dst ->
                  vm.migrating <- true;
                  dst.committed_mb <- dst.committed_mb + vm.mem_mb;
                  check_committed dst;
                  let m =
                    { mvm = vm; src = shard.hid; dst = dst.hid;
                      outcome = None; resolved = false }
                  in
                  migs := m :: !migs;
                  incr migs_started;
                  (* The copy runs inside the source's epoch, its reads
                     contending with the guests still running there; the
                     dirty-rate throttle in [migrate_host] paces it if
                     the source disk is struggling. *)
                  Sim.Engine.run_at shard.engine t_start (fun () ->
                      Migration.Migrate.migrate_host ~engine:shard.engine
                        ~host:shard.host ~guest:vm.gid cfg.link
                        Migration.Migrate.Full_copy (fun o ->
                          m.outcome <- Some o))
        end)
      shards;
    (* 5. Grant touch quotas and re-arm parked driver chains. *)
    let live = ref 0 in
    let live_pages = ref 0 in
    let max_committed = ref 0 in
    Array.iter
      (fun shard ->
        shard.run_to <- t_end;
        if shard.committed_mb > !max_committed then
          max_committed := shard.committed_mb;
        List.iter
          (fun vm ->
            incr live;
            live_pages := !live_pages + vm.pages;
            if not vm.migrating then begin
              let full =
                max 32
                  (int_of_float (float_of_int vm.pages *. cfg.base_load))
              in
              (* A populating VM (fresh arrival, or re-landing after an
                 evacuation) writes its whole working set in about one
                 epoch — that is what creates the memory pressure; once
                 populated it re-touches [base_load] of its pages per
                 epoch, scaled by the diurnal load. *)
              let grant =
                if not vm.populated then vm.pages
                else
                  max 32
                    (int_of_float
                       (float_of_int vm.pages *. cfg.base_load *. load))
              in
              vm.quota <- min (vm.quota + grant) (vm.pages + (2 * full));
              vm.gap_us <- max 20 (min 50_000 (epoch_us / grant));
              if vm.parked then arm shard vm ~at:t_start
            end)
          shard.vms)
      shards;
    if !live_pages > !peak_live_pages then peak_live_pages := !live_pages;
    guest_seconds := !guest_seconds + (!live * cfg.epoch_s);
    (* 6. Step every shard to the epoch boundary, in parallel. *)
    Parallel.Pool.iter_all pool thunks;
    rows :=
      {
        epoch = e;
        load;
        live = !live;
        placed = !placed;
        rejected = !rejected;
        departed = !departed;
        oom_killed = !oom_killed;
        migrations_started = !migs_started;
        migrations_done = !migs_done;
        migrations_aborted = !migs_aborted;
        swapins = !swapins_epoch;
        swapouts = !swapouts_epoch;
        max_committed_mb = !max_committed;
      }
      :: !rows;
    if e = cfg.epochs - 1 then begin
      (* Last barrier: measure the live heap while every shard, frame
         table and EPT is still reachable (the memscale discipline). *)
      Gc.full_major ();
      live_heap_words := (Gc.stat ()).Gc.live_words
    end
  done;
  (* Final reduction, host-index order: per-shard stats plus engine
     telemetry fold into one fleet-wide [Stats.t]. *)
  let totals = Metrics.Stats.create () in
  Array.iter
    (fun shard ->
      let tel = Sim.Engine.telemetry shard.engine in
      shard.stats.Metrics.Stats.engine_events_fired <-
        shard.stats.Metrics.Stats.engine_events_fired + tel.events_fired;
      shard.stats.Metrics.Stats.engine_cancels_reclaimed <-
        shard.stats.Metrics.Stats.engine_cancels_reclaimed
        + tel.cancels_reclaimed;
      shard.stats.Metrics.Stats.engine_cascades <-
        shard.stats.Metrics.Stats.engine_cascades + tel.cascades;
      Metrics.Stats.add totals shard.stats)
    shards;
  let fingerprint =
    List.fold_left
      (fun h (_, v) -> mix h v)
      (mix (mix (mix 0x5EED !guests_placed) !pages_placed) !migrations_done)
      (Metrics.Stats.fields totals)
  in
  {
    rows = List.rev !rows;
    guests_placed = !guests_placed;
    guests_rejected = !guests_rejected;
    pages_placed = !pages_placed;
    peak_live_pages = !peak_live_pages;
    guest_seconds = !guest_seconds;
    migrations = !migrations_done;
    migrations_aborted = !migrations_aborted;
    migration_throttled_batches = !throttled;
    oom_kills = !oom_total;
    totals;
    fingerprint;
    committed_ok = !committed_ok;
    migration_accounting_ok = !migration_accounting_ok;
    live_heap_words = !live_heap_words;
  }

let report r =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "  %-5s %-5s %5s %6s %4s %4s %4s %5s %5s %5s %9s %9s %7s\n" "epoch"
    "load" "live" "placed" "rej" "dep" "oom" "migS" "migD" "migA" "swapins"
    "swapouts" "maxMB";
  List.iter
    (fun row ->
      p "  %-5d %-5.2f %5d %6d %4d %4d %4d %5d %5d %5d %9d %9d %7d\n"
        row.epoch row.load row.live row.placed row.rejected row.departed
        row.oom_killed row.migrations_started row.migrations_done
        row.migrations_aborted row.swapins row.swapouts row.max_committed_mb)
    r.rows;
  p "  guests: %d placed, %d rejected; %d pages placed (peak %d live)\n"
    r.guests_placed r.guests_rejected r.pages_placed r.peak_live_pages;
  p
    "  rebalance: %d evacuations completed, %d aborted, %d throttled \
     batches; %d OOM kills\n"
    r.migrations r.migrations_aborted r.migration_throttled_batches
    r.oom_kills;
  p "  swap traffic: %d swap-ins, %d swap-outs, %d sectors read\n"
    r.totals.Metrics.Stats.host_swapins r.totals.Metrics.Stats.host_swapouts
    r.totals.Metrics.Stats.disk_sectors_read;
  p "  invariants: overcommit bound %s, migration accounting %s\n"
    (if r.committed_ok then "held" else "VIOLATED")
    (if r.migration_accounting_ok then "held" else "VIOLATED");
  p "  fingerprint: %016x\n" r.fingerprint;
  Buffer.contents buf
