(** Seeded synthetic diurnal traffic for the fleet simulator.

    Tenants arrive with heavy-tailed memory requests, live for a few
    epochs, and depart; the arrival rate follows a smooth diurnal curve
    with occasional load spikes.  Everything is a pure function of
    [(seed, epoch)] — no global state, no wall clock — so the same seed
    replays the same fleet history at any [--jobs] width. *)

type vm_spec = {
  tenant : int;  (** unique, monotonically increasing arrival id *)
  mem_mb : int;  (** requested guest memory (heavy-tailed) *)
  lifetime_epochs : int;  (** epochs until voluntary departure *)
}

type t

(** [create ~seed ~mean_arrivals ()] builds a generator whose expected
    arrivals per epoch is [mean_arrivals * load].  [period] (default 12)
    is the diurnal cycle length in epochs. *)
val create : ?period:int -> seed:int -> mean_arrivals:float -> unit -> t

(** [load t ~epoch] is the traffic intensity for [epoch]: a diurnal
    curve in [0.35, 1.0], multiplied by an occasional seeded spike and
    capped at 1.6.  Pure — any caller sees the same value. *)
val load : t -> epoch:int -> float

(** [arrivals t ~epoch] draws the tenants arriving in [epoch].  Tenant
    ids are assigned from a counter internal to [t], so this must be
    called exactly once per epoch, in epoch order (the fleet controller
    does, at its serial barrier). *)
val arrivals : t -> epoch:int -> vm_spec list
