module H = Host.Hostmm

type strategy = Full_copy | Mapper_aware

type link = { bandwidth_mb_s : float; rtt : Sim.Time.t }

let gbe = { bandwidth_mb_s = 117.0; rtt = Sim.Time.ms 1 }
let ten_gbe = { bandwidth_mb_s = 1170.0; rtt = Sim.Time.ms 1 }

type report = {
  duration : Sim.Time.t;
  bytes_sent : int;
  pages_copied : int;
  mappings_sent : int;
  pages_skipped : int;
  source_disk_reads : int;
}

let mapping_record_bytes = 32

(* Plan the transfer: classify every guest page, collecting the disk
   sectors the source must read back before it can send them. *)
type plan = {
  mutable copy_pages : int;
  mutable mappings : int;
  mutable skipped : int;
  mutable reads : (int * int) list;  (* (sector, nsectors) *)
}

let classify ~host ~gid ~vdisk strategy plan ~gpa =
  match H.page_view host ~guest:gid ~gpa with
  | H.V_unbacked -> plan.skipped <- plan.skipped + 1
  | H.V_present { content; named; backing_block } -> (
      match strategy with
      | Mapper_aware when named && backing_block <> None ->
          (* Send the mapping; the destination refetches from the image. *)
          plan.mappings <- plan.mappings + 1
      | Mapper_aware when Storage.Content.equal content Storage.Content.Zero ->
          (* Wholly-overwritten avoidance: the destination zero-fills. *)
          plan.skipped <- plan.skipped + 1
      | Mapper_aware | Full_copy -> plan.copy_pages <- plan.copy_pages + 1)
  | H.V_in_swap { slot } ->
      (* Swapped anonymous data must be read back and copied either way. *)
      plan.reads <-
        (H.swap_slot_sector host slot, Storage.Geom.sectors_per_page)
        :: plan.reads;
      plan.copy_pages <- plan.copy_pages + 1
  | H.V_in_image { block } -> (
      match strategy with
      | Mapper_aware -> plan.mappings <- plan.mappings + 1
      | Full_copy ->
          plan.reads <-
            (Storage.Vdisk.sector_of_block vdisk block,
             Storage.Geom.sectors_per_page)
            :: plan.reads;
          plan.copy_pages <- plan.copy_pages + 1)

let migrate ~machine ~guest link strategy k =
  let engine = Vmm.Machine.engine machine in
  let host = Vmm.Machine.host machine in
  let disk = Vmm.Machine.disk machine in
  let os = Vmm.Machine.os machine guest in
  let gid = Guest.Guestos.gid os in
  let vdisk = H.vdisk host gid in
  let gpa_pages = (Guest.Guestos.config os).Guest.Gconfig.mem_pages in
  let plan = { copy_pages = 0; mappings = 0; skipped = 0; reads = [] } in
  for gpa = 0 to gpa_pages - 1 do
    classify ~host ~gid ~vdisk strategy plan ~gpa
  done;
  let bytes =
    (plan.copy_pages * Storage.Geom.page_bytes)
    + (plan.mappings * mapping_record_bytes)
  in
  let wire_us =
    Sim.Time.of_float_us (float_of_int bytes /. link.bandwidth_mb_s)
  in
  let started = Sim.Engine.now engine in
  (* Sort reads by sector so the source streams them like a real
     migration daemon would, and issue them through the shared disk. *)
  let reads = List.sort compare plan.reads in
  let n_reads = List.length reads in
  let finish_disk disk_done =
    if n_reads = 0 then disk_done ()
    else begin
      let remaining = ref n_reads in
      List.iter
        (fun (sector, nsectors) ->
          Storage.Disk.submit disk ~sector ~nsectors ~kind:Storage.Disk.Read
            (fun _ ->
              (* Migration sources re-read on their own schedule; no
                 faults are configured on migration experiments. *)
              decr remaining;
              if !remaining = 0 then disk_done ()))
        reads
    end
  in
  finish_disk (fun () ->
      (* The wire transfer overlaps the reads; whatever is longer, plus
         the link latency, bounds the migration. *)
      let disk_elapsed = Sim.Time.sub (Sim.Engine.now engine) started in
      let total = Sim.Time.add (Sim.Time.max disk_elapsed wire_us) link.rtt in
      let finish_at = Sim.Time.add started total in
      let fire =
        Sim.Time.max finish_at (Sim.Engine.now engine)
      in
      (Sim.Engine.run_at engine fire (fun () ->
             k
               {
                 duration = Sim.Time.sub (Sim.Engine.now engine) started;
                 bytes_sent = bytes;
                 pages_copied = plan.copy_pages;
                 mappings_sent = plan.mappings;
                 pages_skipped = plan.skipped;
                 source_disk_reads = n_reads;
               })))

let pp_report fmt r =
  Format.fprintf fmt
    "%a, %.1f MB on the wire (%d pages, %d mappings, %d skipped, %d disk reads)"
    Sim.Time.pp r.duration
    (float_of_int r.bytes_sent /. 1048576.0)
    r.pages_copied r.mappings_sent r.pages_skipped r.source_disk_reads
