module H = Host.Hostmm

type strategy = Full_copy | Mapper_aware

type link = { bandwidth_mb_s : float; rtt : Sim.Time.t }

let gbe = { bandwidth_mb_s = 117.0; rtt = Sim.Time.ms 1 }
let ten_gbe = { bandwidth_mb_s = 1170.0; rtt = Sim.Time.ms 1 }

type report = {
  duration : Sim.Time.t;
  bytes_sent : int;
  pages_copied : int;
  mappings_sent : int;
  pages_skipped : int;
  source_disk_reads : int;
  retries : int;
  throttled_batches : int;
}

type abort = {
  error : Storage.Disk.error;
  failed_sector : int;
  retries_before_abort : int;
}

type outcome = Completed of report | Aborted of abort

let mapping_record_bytes = 32

(* Plan the transfer: classify every guest page, collecting the reads
   the source must perform before it can send them.  Swapped pages
   carry their slot so the read is routed through the tier composite —
   a page resident in the compressed or remote tier must be fetched
   from that tier, not from the disk sector it would have occupied. *)
type plan = {
  mutable copy_pages : int;
  mutable mappings : int;
  mutable skipped : int;
  mutable reads : (int * int * int option) list;
      (* (sector, nsectors, swap slot if any) *)
}

let classify ~host ~gid ~vdisk strategy plan ~gpa =
  match H.page_view host ~guest:gid ~gpa with
  | H.V_unbacked -> plan.skipped <- plan.skipped + 1
  | H.V_present { content; named; backing_block } -> (
      match strategy with
      | Mapper_aware when named && backing_block <> None ->
          (* Send the mapping; the destination refetches from the image. *)
          plan.mappings <- plan.mappings + 1
      | Mapper_aware when Storage.Content.equal content Storage.Content.Zero ->
          (* Wholly-overwritten avoidance: the destination zero-fills. *)
          plan.skipped <- plan.skipped + 1
      | Mapper_aware | Full_copy -> plan.copy_pages <- plan.copy_pages + 1)
  | H.V_in_swap { slot } ->
      (* Swapped anonymous data must be read back and copied either way. *)
      plan.reads <-
        (H.swap_slot_sector host slot, Storage.Geom.sectors_per_page,
         Some slot)
        :: plan.reads;
      plan.copy_pages <- plan.copy_pages + 1
  | H.V_in_image { block } -> (
      match strategy with
      | Mapper_aware -> plan.mappings <- plan.mappings + 1
      | Full_copy ->
          plan.reads <-
            (Storage.Vdisk.sector_of_block vdisk block,
             Storage.Geom.sectors_per_page, None)
            :: plan.reads;
          plan.copy_pages <- plan.copy_pages + 1)

(* Machine-free transfer core: everything it needs (engine, disk, tiers,
   vdisk, address-space size) is resolved from the host memory manager,
   so the fleet rebalancer can evacuate a guest from a bare
   [Engine]+[Hostmm] shard with no [Vmm.Machine] wrapping it. *)
let migrate_host ?(retry_limit = 4) ?(retry_base_us = 500) ?(batch = 64)
    ?(max_stalled_batches = 8) ~engine ~host ~guest:gid link strategy k =
  let disk = H.disk host in
  let tiers = H.tiers host in
  let vdisk = H.vdisk host gid in
  let gpa_pages = H.gpa_pages host gid in
  let plan = { copy_pages = 0; mappings = 0; skipped = 0; reads = [] } in
  for gpa = 0 to gpa_pages - 1 do
    classify ~host ~gid ~vdisk strategy plan ~gpa
  done;
  let bytes =
    (plan.copy_pages * Storage.Geom.page_bytes)
    + (plan.mappings * mapping_record_bytes)
  in
  let wire_us =
    Sim.Time.of_float_us (float_of_int bytes /. link.bandwidth_mb_s)
  in
  let started = Sim.Engine.now engine in
  (* Sort reads by sector so the source streams them like a real
     migration daemon would, then issue them in bounded batches through
     the shared disk.  The batch is the throttling unit: a clean batch
     is followed immediately by the next one (a clean source runs at
     full copy rate), while a batch that saw transient errors doubles an
     inter-batch backoff — the dirty-rate adaptation that lets an
     evacuation survive a source tier degrading mid-iteration instead
     of slamming a struggling device with the full read stream.

     Typed-error discipline for the source's read-back traffic: a
     transient error is resubmitted with exponential backoff (the
     attempt number keys the fault hash, so a retry can succeed — for
     the disk and for a flapping remote tier alike); a read whose
     in-batch retry budget runs dry is *parked* and reissued with the
     next, slower batch rather than aborting — only a page parked
     [max_stalled_batches] times gives up.  A media error is permanent
     for its sector no matter the pacing, so it still abandons the
     migration at once.  Swapped pages read through the tier composite
     (the page lives wherever its slot's tier keeps it, possibly
     degraded mid-migration); image blocks read straight off the disk.
     The first fatal failure wins; reads already in flight are drained
     before the abort is reported, so the outcome and its ordering stay
     deterministic. *)
  let reads = Array.of_list (List.sort compare plan.reads) in
  let n_reads = Array.length reads in
  let batch = max 1 batch in
  let attempts = Array.make (max 1 n_reads) 0 in
  let stalls = Array.make (max 1 n_reads) 0 in
  let retries_total = ref 0 in
  let throttled_batches = ref 0 in
  let aborted = ref None in
  let finish_disk disk_done =
    if n_reads = 0 then disk_done ()
    else begin
      let parked = Queue.create () in
      let next = ref 0 in
      let consecutive_dirty = ref 0 in
      let rec run_batch () =
        let idxs = ref [] in
        let count = ref 0 in
        while !count < batch && not (Queue.is_empty parked) do
          idxs := Queue.pop parked :: !idxs;
          incr count
        done;
        while !count < batch && !next < n_reads do
          idxs := !next :: !idxs;
          incr next;
          incr count
        done;
        if !count = 0 then disk_done ()
        else begin
          let inflight = ref !count in
          let dirty = ref false in
          let one_done () =
            decr inflight;
            if !inflight = 0 then begin
              if
                !aborted <> None
                || (Queue.is_empty parked && !next >= n_reads)
              then disk_done ()
              else begin
                let delay =
                  if !dirty then begin
                    incr consecutive_dirty;
                    incr throttled_batches;
                    retry_base_us lsl min !consecutive_dirty 6
                  end
                  else begin
                    consecutive_dirty := 0;
                    0
                  end
                in
                if delay = 0 then run_batch ()
                else Sim.Engine.run_after engine (Sim.Time.us delay) run_batch
              end
            end
          in
          let issue i =
            let sector, nsectors, slot = reads.(i) in
            (* [pass_base] anchors this batch's retry budget; the
               absolute attempt counter keeps climbing across parks so
               every reissue rehashes the fault plan. *)
            let pass_base = attempts.(i) in
            let rec go () =
              let attempt = attempts.(i) in
              let complete (reply : Storage.Disk.reply) =
                match reply.result with
                | Ok () -> one_done ()
                | Error Storage.Disk.Transient when !aborted = None ->
                    dirty := true;
                    attempts.(i) <- attempt + 1;
                    if attempt - pass_base < retry_limit then begin
                      incr retries_total;
                      Sim.Engine.run_after engine
                        (Sim.Time.us (retry_base_us lsl (attempt - pass_base)))
                        go
                    end
                    else begin
                      stalls.(i) <- stalls.(i) + 1;
                      if stalls.(i) > max_stalled_batches then begin
                        aborted :=
                          Some
                            {
                              error = Storage.Disk.Transient;
                              failed_sector = sector;
                              retries_before_abort = !retries_total;
                            };
                        one_done ()
                      end
                      else begin
                        Queue.add i parked;
                        one_done ()
                      end
                    end
                | Error error ->
                    if !aborted = None then
                      aborted :=
                        Some
                          {
                            error;
                            failed_sector = sector;
                            retries_before_abort = !retries_total;
                          };
                    one_done ()
              in
              match slot with
              | Some slot ->
                  Storage.Tiers.swap_in tiers ~slot ~sector ~nsectors ~queue:0
                    ~attempt complete
              | None ->
                  Storage.Disk.submit disk ~sector ~nsectors
                    ~kind:Storage.Disk.Read ~attempt complete
            in
            go ()
          in
          List.iter issue (List.rev !idxs)
        end
      in
      run_batch ()
    end
  in
  finish_disk (fun () ->
      match !aborted with
      | Some a -> k (Aborted a)
      | None ->
          (* The wire transfer overlaps the reads; whatever is longer,
             plus the link latency, bounds the migration. *)
          let disk_elapsed = Sim.Time.sub (Sim.Engine.now engine) started in
          let total =
            Sim.Time.add (Sim.Time.max disk_elapsed wire_us) link.rtt
          in
          let finish_at = Sim.Time.add started total in
          let fire = Sim.Time.max finish_at (Sim.Engine.now engine) in
          Sim.Engine.run_at engine fire (fun () ->
              k
                (Completed
                   {
                     duration = Sim.Time.sub (Sim.Engine.now engine) started;
                     bytes_sent = bytes;
                     pages_copied = plan.copy_pages;
                     mappings_sent = plan.mappings;
                     pages_skipped = plan.skipped;
                     source_disk_reads = n_reads;
                     retries = !retries_total;
                     throttled_batches = !throttled_batches;
                   })))

let migrate ?retry_limit ?retry_base_us ?batch ?max_stalled_batches ~machine
    ~guest link strategy k =
  let engine = Vmm.Machine.engine machine in
  let host = Vmm.Machine.host machine in
  let os = Vmm.Machine.os machine guest in
  let gid = Guest.Guestos.gid os in
  migrate_host ?retry_limit ?retry_base_us ?batch ?max_stalled_batches ~engine
    ~host ~guest:gid link strategy k

let pp_report fmt r =
  Format.fprintf fmt
    "%a, %.1f MB on the wire (%d pages, %d mappings, %d skipped, %d disk reads)"
    Sim.Time.pp r.duration
    (float_of_int r.bytes_sent /. 1048576.0)
    r.pages_copied r.mappings_sent r.pages_skipped r.source_disk_reads
