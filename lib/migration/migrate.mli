(** Live-migration transfer using VSwapper's machinery — the paper's
    Section 7 future-work direction, implemented:

    "Hypervisors that migrate guests can migrate memory mappings instead
    of (named) memory pages; and hypervisors to which a guest is
    migrated can avoid requesting memory pages that are wholly
    overwritten by guests."

    This models the stop-and-copy transfer of a guest's memory image
    over a network link.  Under [Full_copy], every backed page crosses
    the wire as 4 KiB of data — pages the source host had swapped out or
    discarded must first be read back from its disk.  Under
    [Mapper_aware], Mapper-tracked pages (present-named or discarded to
    the image) travel as tiny mapping records that the destination can
    refetch locally from the shared/copied image, and zero pages are
    skipped entirely (the destination recreates them on touch, the
    Preventer-style "wholly overwritten" avoidance). *)

type strategy = Full_copy | Mapper_aware

type link = {
  bandwidth_mb_s : float;  (** sustained network throughput *)
  rtt : Sim.Time.t;  (** connection setup/teardown latency *)
}

(** A 1 GbE link. *)
val gbe : link

(** A 10 GbE link. *)
val ten_gbe : link

type report = {
  duration : Sim.Time.t;  (** transfer wall time, max(disk, wire) + rtt *)
  bytes_sent : int;
  pages_copied : int;  (** full 4 KiB pages on the wire *)
  mappings_sent : int;  (** 32-byte mapping records instead of pages *)
  pages_skipped : int;  (** zero/unbacked pages never transferred *)
  source_disk_reads : int;  (** swapped/discarded pages read back first *)
  retries : int;  (** transient read errors retried during the transfer *)
  throttled_batches : int;
      (** read batches that were delayed by the dirty-rate backoff
          because the previous batch saw transient errors *)
}

(** Why a migration was abandoned: the typed disk error that could not
    be recovered, the sector it struck, and how many transient retries
    had succeeded before it. *)
type abort = {
  error : Storage.Disk.error;
  failed_sector : int;
  retries_before_abort : int;
}

type outcome = Completed of report | Aborted of abort

(** [migrate ~machine ~guest link strategy k] computes the transfer on
    the machine's engine (the source's disk reads contend with whatever
    else the machine is doing) and passes the outcome to [k].  The guest
    is treated as paused for the duration; its memory state is not
    modified.

    Source read-back I/O is issued in bounded batches of [batch] reads
    and follows the typed-error discipline from {!Faults}: a
    [Transient] failure is retried up to [retry_limit] times with
    exponential backoff starting at [retry_base_us] microseconds.  When
    a read's in-batch retry budget runs dry it is parked and reissued
    with a later batch instead of aborting, and a batch that saw any
    transient error doubles an inter-batch delay (reset by the next
    clean batch) — the copy rate adapts to a source tier degrading
    mid-iteration, slowing down rather than giving up.  Only a page
    parked more than [max_stalled_batches] times, or a [Media] failure
    (permanent for its sector no matter the pacing — the source cannot
    fabricate a page its disk has lost), aborts the migration, after
    all outstanding reads drain, reporting [Aborted] with the first
    fatal error.  Swapped pages are read back through the host's
    {!Storage.Tiers} composite — a page resident in the compressed or
    remote tier is fetched from that tier — so tier-level failures (a
    flapping remote link, a degraded fast tier) flow through the same
    retry/throttle/abort discipline as raw disk errors. *)
val migrate :
  ?retry_limit:int ->
  ?retry_base_us:int ->
  ?batch:int ->
  ?max_stalled_batches:int ->
  machine:Vmm.Machine.t ->
  guest:int ->
  link ->
  strategy ->
  (outcome -> unit) ->
  unit

(** [migrate_host ~engine ~host ~guest …] is {!migrate} for a guest
    living on a bare [Engine] + {!Host.Hostmm} pair with no
    {!Vmm.Machine} around it — the shape of a fleet shard.  [guest] is
    the {!Host.Hostmm.guest_id} itself (not a VMM guest index); disk,
    tiers, vdisk and the address-space size are all resolved from
    [host].  Same semantics, same defaults. *)
val migrate_host :
  ?retry_limit:int ->
  ?retry_base_us:int ->
  ?batch:int ->
  ?max_stalled_batches:int ->
  engine:Sim.Engine.t ->
  host:Host.Hostmm.t ->
  guest:Host.Hostmm.guest_id ->
  link ->
  strategy ->
  (outcome -> unit) ->
  unit

val pp_report : Format.formatter -> report -> unit
