(** Striped swap-storm generator for the [scalability] experiment: a
    region larger than the guest's resident limit, written once and then
    re-read in passes by [threads] independent threads, each owning a
    disjoint stripe.  Every re-read pass is a train of major faults; the
    striping guarantees runnable sibling threads whenever one thread
    stalls, which is exactly the concurrency the async page-fault path
    converts into overlapped disk reads. *)

val workload :
  ?threads:int ->
  ?rounds:int ->
  ?compute_us:int ->
  mb:int ->
  unit ->
  Vmm.Workload.t
