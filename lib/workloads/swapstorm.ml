module W = Vmm.Workload

let workload ?(threads = 4) ?(rounds = 2) ?(compute_us = 2) ~mb () =
  let pages = Storage.Geom.pages_of_mb mb in
  let setup os _rng =
    let region = Guest.Guestos.alloc_region os ~pages in
    let stripe = (pages + threads - 1) / threads in
    let make i =
      let lo = i * stripe in
      let hi = min pages (lo + stripe) in
      let len = hi - lo in
      if len <= 0 then W.of_list []
      else
        (* Pass 0 writes the stripe to populate it; passes 1..rounds
           re-read it, faulting back whatever the resident limit pushed
           out in between.  Each page costs one touch plus a tiny
           compute, so a thread stalled on a swap-in always leaves its
           siblings runnable work. *)
        let total = (rounds + 1) * len * 2 in
        W.of_fun (fun n ->
            if n >= total then None
            else
              let step = n / 2 in
              let pass = step / len and off = step mod len in
              if n land 1 = 1 then Some (W.Compute compute_us)
              else Some (W.Touch (region, lo + off, pass = 0)))
    in
    {
      W.threads = W.striped threads make;
      cleanup = (fun () -> Guest.Guestos.free_region os region);
    }
  in
  { W.name = Printf.sprintf "swapstorm-%dMBx%dt" mb threads; setup }
