(** Shared runner for the pbzip2 memory sweeps (Figures 5 and 11). *)

val configs : Exp.config_kind list

type out = {
  runtime_s : float option;  (** None = OOM-killed *)
  disk_ops : int;
  written_sectors : int;
  pages_scanned : int;
}

(** [run_point ~scale kind ~actual_mb] runs pbzip2 in a 512 MB guest
    whose actual memory is [actual_mb], under configuration [kind]. *)
val run_point : scale:float -> Exp.config_kind -> actual_mb:int -> out

(** [sweep ~scale mems] runs every configuration over the memory list.
    The (config, mem) grid fans out over {!Parallel.Pool.global} (one
    pool job per machine run); results are regrouped in submission
    order, so the series are identical to a serial nested loop. *)
val sweep : scale:float -> int list -> (Exp.config_kind * out list) list

(** [render ~title ~mems ~panels results] draws one series table per
    panel; a panel is a (title, projection) pair. *)
val render :
  title:string ->
  mems:int list ->
  panels:(string * (out -> float option)) list ->
  (Exp.config_kind * out list) list ->
  string
