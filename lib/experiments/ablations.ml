(* Ablation benches for the design decisions DESIGN.md calls out:

   D2 — the Preventer's emulation window and buffer cap (the paper's
        empirically chosen 1 ms / 32);
   D3 — the host's named-page reclaim preference (false anonymity);
   D4 — the readahead windows (swap cluster vs Mapper image readahead);
   D1 — swap-area sizing, which controls how fast the cluster allocator
        runs out of whole-free clusters and decay sets in. *)

(* A partial-write storm: one 512-byte store per page of a large region
   whose pages the host has swapped out.  Nothing ever completes a page,
   so every buffer must either time out (window) or get rejected (cap) —
   exactly the Preventer tunables under test. *)
let partial_write_storm ~vs =
  let workload =
    {
      Vmm.Workload.name = "partial-storm";
      setup =
        (fun os _rng ->
          let region =
            Guest.Guestos.alloc_region os ~pages:(Storage.Geom.pages_of_mb 48)
          in
          let warm =
            List.init (Guest.Guestos.region_pages region) (fun i ->
                Vmm.Workload.Overwrite (region, i))
          in
          let storm =
            List.init (Guest.Guestos.region_pages region) (fun i ->
                Vmm.Workload.Touch (region, i, true))
          in
          {
            Vmm.Workload.threads = [ Vmm.Workload.of_list (warm @ storm) ];
            cleanup = (fun () -> Guest.Guestos.free_region os region);
          });
    }
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 256;
      resident_limit_mb = Some 48;
      warm_all = true;
      data_mb = 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      host_mem_mb = 512;
      host_swap_mb = 512;
    }
  in
  Exp.run_machine (Vmm.Machine.build cfg)

let sysbench_run ?(vs = Vswapper.Vsconfig.baseline) ~hbase ~host_swap_mb
    ~iterations () =
  let machine_ref = ref None in
  let on_mark, get_marks = Exp.mark_collector machine_ref in
  let workload =
    Workloads.Sysbench.workload ~iterations ~on_iteration:on_mark ~file_mb:100 ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = 256;
      resident_limit_mb = Some 50;
      warm_all = true;
      data_mb = 192;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      hbase;
      host_mem_mb = 512;
      host_swap_mb;
    }
  in
  let machine = Vmm.Machine.build cfg in
  machine_ref := Some machine;
  let out = Exp.run_machine ~get_marks machine in
  (* Return ((first-iteration, last-iteration) runtimes, stats). *)
  match out.Exp.marks with
  | start :: rest when rest <> [] ->
      let times = List.map (fun m -> m.Exp.at) (start :: rest) in
      let rec diffs = function
        | a :: (b :: _ as r) -> Sim.Time.to_sec_float (Sim.Time.sub b a) :: diffs r
        | _ -> []
      in
      let ds = diffs times in
      Some ((List.nth ds 0, List.nth ds (List.length ds - 1)), out)
  | _ -> None

let run ~scale =
  ignore scale;
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in

  (* Each ablation grid's points are independent machine runs, so every
     grid fans out over the shared pool; the jobs return the formatted
     rows, appended here in submission order, so the rendered block is
     identical to the old serial loops. *)

  (* D2: preventer window / cap sweep under a partial-write storm. *)
  addf "D2: Preventer window and buffer-cap sweep (partial-write storm)";
  addf "%-30s %10s %10s %10s %10s" "config" "time[s]" "timeouts" "rejects" "merges";
  List.iter (addf "%s")
    (Exp.shard
       (fun (label, window_us, cap) ->
         let vs =
           {
             Vswapper.Vsconfig.vswapper with
             preventer_window = Sim.Time.us window_us;
             preventer_max_buffers = cap;
           }
         in
         let out = partial_write_storm ~vs in
         Printf.sprintf "%-30s %10s %10d %10d %10d" label
           (match out.Exp.runtime_s with
           | Some v -> Printf.sprintf "%.2f" v
           | None -> "crash")
           out.Exp.stats.Metrics.Stats.preventer_timeouts
           out.Exp.stats.Metrics.Stats.preventer_rejects
           out.Exp.stats.Metrics.Stats.preventer_merges)
       [
         ("window=0.25ms cap=32", 250, 32);
         ("window=1ms    cap=32 (paper)", 1_000, 32);
         ("window=4ms    cap=32", 4_000, 32);
         ("window=1ms    cap=8", 1_000, 8);
         ("window=1ms    cap=128", 1_000, 128);
       ]);
  addf "";

  (* D3: named-page preference on/off under the Mapper, where guest page
     cache copies are actually named: without the preference the host
     swaps anonymous pages it could have avoided touching. *)
  addf "D3: named-page reclaim preference (mapper iterated sysbench)";
  addf "%-30s %12s %12s %14s" "config" "iter1[s]" "iter4[s]" "swap-writes-pg";
  List.iter (addf "%s")
    (Exp.shard
       (fun (label, pref) ->
         let hbase = { Host.Hconfig.default with named_preference = pref } in
         match
           sysbench_run ~vs:Vswapper.Vsconfig.mapper_only ~hbase
             ~host_swap_mb:384 ~iterations:4 ()
         with
         | Some ((first, last), out) ->
             Printf.sprintf "%-30s %12.2f %12.2f %14d" label first last
               out.Exp.stats.Metrics.Stats.host_swapouts
         | None -> Printf.sprintf "%-30s (incomplete)" label)
       [ ("preference on (linux)", true); ("preference off", false) ]);
  addf "";

  (* D4: swap cluster readahead size under the baseline. *)
  addf "D4: swap readahead cluster (baseline iterated sysbench, first/last iter)";
  addf "%-26s %12s %12s" "page-cluster" "iter1[s]" "iter4[s]";
  List.iter (addf "%s")
    (Exp.shard
       (fun pc ->
         let hbase = { Host.Hconfig.default with page_cluster = pc } in
         match sysbench_run ~hbase ~host_swap_mb:384 ~iterations:4 () with
         | Some ((first, last), _) ->
             Printf.sprintf "%-26s %12.2f %12.2f"
               (Printf.sprintf "2^%d = %d pages" pc (1 lsl pc))
               first last
         | None -> Printf.sprintf "2^%d (incomplete)" pc)
       [ 0; 3; 5 ]);
  addf "";

  (* D1: swap sizing controls how fast decay arrives. *)
  addf "D1: swap-area size vs sequentiality decay (baseline, first/last iter)";
  addf "%-26s %12s %12s" "swap size" "iter1[s]" "iter6[s]";
  List.iter (addf "%s")
    (Exp.shard
       (fun swap_mb ->
         match
           sysbench_run ~hbase:Host.Hconfig.default ~host_swap_mb:swap_mb
             ~iterations:6 ()
         with
         | Some ((first, last), _) ->
             Printf.sprintf "%-26s %12.2f %12.2f"
               (Printf.sprintf "%dMB" swap_mb) first last
         | None -> Printf.sprintf "%dMB (incomplete)" swap_mb)
       [ 256; 384; 1024 ]);
  Buffer.contents buf

let exp : Exp.t =
  let title = "Ablations of the design decisions (DESIGN.md D1-D4)" in
  let paper_claim =
    "the Preventer's 1ms/32 values were set empirically (Section 4.2); \
     named preference and readahead sizing drive false anonymity and \
     sequentiality decay"
  in
  {
    id = "abl";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"abl" ~title ~paper_claim (run ~scale));
  }
