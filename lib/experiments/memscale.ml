(* Memscale: metadata-plane footprint and fault throughput at
   million-page guest sizes.  Not a figure of the paper — a sweep
   validating this repo's flat struct-of-arrays page metadata: with the
   per-page plane held in packed int arrays (EPT entries, frame table,
   LRU links) and the int-keyed side tables in open-addressing
   {!Mem.Itbl}s, the live heap should stay at a handful of words per
   guest page and fault throughput should not sag as guests grow to
   2^20 pages (4 GiB) each.

   Each point builds [n] guests of [pages] pages, runs a swap storm
   whose working set exceeds the per-guest resident limit (so every
   pass after the first is a storm of major faults through the full
   fault path), and reports fault counts, fault rate in simulated time,
   and the measured live-heap delta attributable to the machine.

   The heap panels are measured with [Gc.full_major]/[Gc.stat] on the
   running domain, so their exact values vary with allocator state and
   job placement — every such line contains the word "heap", and the
   memscale-smoke rule filters those lines before comparing serial vs
   parallel stdout.  The fault panels are deterministic as usual.

   VSWAPPER_MEMSCALE_MAX_GUESTS caps the guest-count grid, and the
   shared VSWAPPER_SMOKE=1 cap (honored by every heavyweight sweep)
   clamps it to [1; 2]; VSWAPPER_BENCH_SCALE scales the per-guest page
   count, full scale being 2^20 pages. *)

let guest_counts () =
  let cap =
    match Sys.getenv_opt "VSWAPPER_MEMSCALE_MAX_GUESTS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
        | Some v when v >= 1 -> v
        | Some _ | None -> 8)
    | None -> 8
  in
  let cap = if Exp.smoke () then min cap 2 else cap in
  List.filter (fun n -> n <= cap) [ 1; 2; 4; 8 ]

(* Per-guest pages, rounded to whole MiB so guest construction (which
   thinks in MiB) reproduces the count exactly. *)
let pages_per_guest ~scale =
  let pages = Exp.scaled_int scale (1 lsl 20) ~min:(16 * 256) in
  let mb = max 16 ((pages + 255) / 256) in
  mb * 256

type point = {
  n : int;
  pages : int;  (* per guest *)
  faults : int;  (* major faults, host view (guest+host context) *)
  sim_wall : float option;  (* slowest guest's completion, simulated s *)
  live_words : int;  (* live-heap delta while the machine is reachable *)
}

let run_point ~scale n =
  let pages = pages_per_guest ~scale in
  let guest_mb = pages / 256 in
  (* The storm covers half of guest memory and the resident limit is a
     third of the storm, so every post-population pass refaults most of
     its stripe; one re-read round keeps the step count linear in the
     page count. *)
  let storm_mb = max 8 (guest_mb / 2) in
  let limit_mb = max 4 (storm_mb / 3) in
  let workload =
    Workloads.Swapstorm.workload ~threads:4 ~rounds:1 ~mb:storm_mb ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      data_mb = 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:(List.init n (fun _ -> guest))) with
      vs = Vswapper.Vsconfig.baseline;
      (* Half the aggregate guest memory: enough slack that reclaim is
         driven by the per-guest limits, not by host OOM. *)
      host_mem_mb = max 64 (n * guest_mb / 2) + 16;
      host_swap_mb = n * guest_mb;
      time_limit = Sim.Time.sec 360_000;
    }
  in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let machine = Vmm.Machine.build cfg in
  let out = Exp.run_machine machine in
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  (* Keep the machine reachable across the measurement, so [after]
     includes its whole metadata plane. *)
  ignore (Sys.opaque_identity machine);
  let s = out.Exp.stats in
  let sim_wall =
    Array.fold_left
      (fun acc g ->
        match (acc, g) with
        | Some a, Some b -> Some (Float.max a b)
        | _ -> None)
      (Some 0.0) out.Exp.per_guest_s
  in
  {
    n;
    pages;
    faults =
      s.Metrics.Stats.guest_context_faults
      + s.Metrics.Stats.host_context_faults;
    sim_wall;
    live_words = max 0 (after - before);
  }

let run ~scale =
  let counts = guest_counts () in
  (* Points run serially on the submitting domain, not via [Exp.shard]:
     the live-heap measurement must see exactly one machine at a time
     on this domain's heap. *)
  let points = List.map (fun n -> run_point ~scale n) counts in
  let x = List.map (fun p -> string_of_int p.n) points in
  let series name f = [ (name, List.map f points) ] in
  let panel title cols =
    Metrics.Table.render_series ~title ~x_label:"guests" ~x ~cols
  in
  let fault_rate p =
    match p.sim_wall with
    | Some w when w > 0.0 -> Some (float_of_int p.faults /. w)
    | _ -> None
  in
  let words_per_page p =
    float_of_int p.live_words /. float_of_int (p.n * p.pages)
  in
  let pages = (List.hd points).pages in
  let verdict =
    (* Printed worst-case words/page across the sweep; the boxed
       metadata plane (variant EPT + hashtables + per-node LRU records)
       sat well above 100 words/page, so anything in the low tens means
       the flat layout is doing its job.  Contains "heap", so the smoke
       filter drops it along with the other nondeterministic lines. *)
    let worst =
      List.fold_left (fun acc p -> Float.max acc (words_per_page p)) 0.0 points
    in
    Printf.sprintf
      "flat metadata verdict: worst-case %.1f live heap words per guest page \
       across the sweep (%d pages/guest; target < 64)"
      worst pages
  in
  String.concat "\n"
    [
      Printf.sprintf "per-guest pages: %d (%d MiB)" pages (pages / 256);
      "";
      panel "(a) major faults served [count] -- both contexts"
        (series "faults" (fun p -> Some (float_of_int p.faults)));
      panel "(b) fault throughput [faults/s of simulated time]"
        (series "faults/s" fault_rate);
      panel "(c) live heap delta attributable to the machine [words]"
        (series "heap-words" (fun p -> Some (float_of_int p.live_words)));
      panel "(d) live heap words per guest page"
        (series "heap-w/page" (fun p -> Some (words_per_page p)));
      verdict;
    ]

let exp : Exp.t =
  let title = "Metadata footprint and fault rate at million-page guest sizes" in
  let paper_claim =
    "not in the paper: this repo's perf work; struct-of-arrays page \
     metadata and open-addressing int tables should hold the live heap \
     to a few words per guest page and keep fault throughput flat as \
     guests scale to 2^20 pages"
  in
  {
    id = "memscale";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"memscale" ~title ~paper_claim (run ~scale));
  }
