type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : scale:float -> string;
}

type config_kind =
  | Baseline
  | Balloon_baseline
  | Mapper_only
  | Vswapper_full
  | Balloon_vswapper

let config_name = function
  | Baseline -> "baseline"
  | Balloon_baseline -> "balloon+base"
  | Mapper_only -> "mapper"
  | Vswapper_full -> "vswapper"
  | Balloon_vswapper -> "balloon+vswap"

let all_configs =
  [ Baseline; Balloon_baseline; Mapper_only; Vswapper_full; Balloon_vswapper ]

let vs_of = function
  | Baseline | Balloon_baseline -> Vswapper.Vsconfig.baseline
  | Mapper_only -> Vswapper.Vsconfig.mapper_only
  | Vswapper_full | Balloon_vswapper -> Vswapper.Vsconfig.vswapper

let ballooned = function
  | Balloon_baseline | Balloon_vswapper -> true
  | Baseline | Mapper_only | Vswapper_full -> false

let mb scale x = max 16 (int_of_float (float_of_int x *. scale))
let scaled_int scale x ~min:lo = max lo (int_of_float (float_of_int x *. scale))

type mark = { index : int; at : Sim.Time.t; snapshot : Metrics.Stats.t }

let mark_collector machine_ref =
  let acc = ref [] in
  let on_mark index =
    match !machine_ref with
    | None -> ()
    | Some m ->
        acc :=
          {
            index;
            at = Sim.Engine.now (Vmm.Machine.engine m);
            snapshot = Metrics.Stats.copy (Vmm.Machine.stats m);
          }
          :: !acc
  in
  (on_mark, fun () -> List.rev !acc)

type run_out = {
  runtime_s : float option;
  per_guest_s : float option array;
  stats : Metrics.Stats.t;
  oomed : bool;
  marks : mark list;
}

(* Cross-run disk-batching totals.  Machines run on worker domains under
   the parallel sweep, so the accumulators are atomics; sums are
   order-independent, keeping the totals deterministic at any job
   count. *)
type disk_totals = {
  reads : int;  (** individual read requests served from the media *)
  batches : int;  (** media accesses those reads were coalesced into *)
  batch_sectors : int;  (** total sectors spanned by read batches *)
}

let acc_reads = Atomic.make 0
let acc_batches = Atomic.make 0
let acc_batch_sectors = Atomic.make 0

let reset_disk_totals () =
  Atomic.set acc_reads 0;
  Atomic.set acc_batches 0;
  Atomic.set acc_batch_sectors 0

let disk_totals () =
  {
    reads = Atomic.get acc_reads;
    batches = Atomic.get acc_batches;
    batch_sectors = Atomic.get acc_batch_sectors;
  }

(* Fault-injection totals, same atomic discipline as the disk totals. *)
type fault_totals = {
  injected : int;
  retried : int;
  degraded : int;
  killed : int;
  destage_lost : int;
  destage_retried : int;
}

let acc_injected = Atomic.make 0
let acc_retried = Atomic.make 0
let acc_degraded = Atomic.make 0
let acc_killed = Atomic.make 0
let acc_destage_lost = Atomic.make 0
let acc_destage_retried = Atomic.make 0

let reset_fault_totals () =
  Atomic.set acc_injected 0;
  Atomic.set acc_retried 0;
  Atomic.set acc_degraded 0;
  Atomic.set acc_killed 0;
  Atomic.set acc_destage_lost 0;
  Atomic.set acc_destage_retried 0

let fault_totals () =
  {
    injected = Atomic.get acc_injected;
    retried = Atomic.get acc_retried;
    degraded = Atomic.get acc_degraded;
    killed = Atomic.get acc_killed;
    destage_lost = Atomic.get acc_destage_lost;
    destage_retried = Atomic.get acc_destage_retried;
  }

(* Tiered swap-backend totals, same atomic discipline.  All zero when
   every run used the disk-only passthrough. *)
type tier_totals = {
  admissions : int;
  rejects : int;
  promotions : int;
  demotions : int;
  writeback_sectors : int;
  fast_swapins : int;
  slow_swapins : int;
  fast_swapin_us : int;
  slow_swapin_us : int;
}

let acc_tier_admissions = Atomic.make 0
let acc_tier_rejects = Atomic.make 0
let acc_tier_promotions = Atomic.make 0
let acc_tier_demotions = Atomic.make 0
let acc_tier_writeback = Atomic.make 0
let acc_tier_fast_ins = Atomic.make 0
let acc_tier_slow_ins = Atomic.make 0
let acc_tier_fast_us = Atomic.make 0
let acc_tier_slow_us = Atomic.make 0

let reset_tier_totals () =
  Atomic.set acc_tier_admissions 0;
  Atomic.set acc_tier_rejects 0;
  Atomic.set acc_tier_promotions 0;
  Atomic.set acc_tier_demotions 0;
  Atomic.set acc_tier_writeback 0;
  Atomic.set acc_tier_fast_ins 0;
  Atomic.set acc_tier_slow_ins 0;
  Atomic.set acc_tier_fast_us 0;
  Atomic.set acc_tier_slow_us 0

let tier_totals () =
  {
    admissions = Atomic.get acc_tier_admissions;
    rejects = Atomic.get acc_tier_rejects;
    promotions = Atomic.get acc_tier_promotions;
    demotions = Atomic.get acc_tier_demotions;
    writeback_sectors = Atomic.get acc_tier_writeback;
    fast_swapins = Atomic.get acc_tier_fast_ins;
    slow_swapins = Atomic.get acc_tier_slow_ins;
    fast_swapin_us = Atomic.get acc_tier_fast_us;
    slow_swapin_us = Atomic.get acc_tier_slow_us;
  }

(* Degraded-media survival totals (scrubber, QoS, tier failover), same
   atomic discipline.  All zero when no run armed the scrubber, the QoS
   layer, or a fault-injecting tier pair. *)
type resilience2_totals = {
  scrub_scans : int;
  scrub_verify_reads : int;
  scrub_media_found : int;
  scrub_relocations : int;
  scrub_reloc_failed : int;
  qos_throttled : int;
  qos_throttle_wait_us : int;
  tier_degraded_events : int;
  tier_recovered_events : int;
  tier_failover_routes : int;
  media_reads : int;
  pages_lost : int;
}

let acc_scrub_scans = Atomic.make 0
let acc_scrub_verify = Atomic.make 0
let acc_scrub_found = Atomic.make 0
let acc_scrub_reloc = Atomic.make 0
let acc_scrub_reloc_failed = Atomic.make 0
let acc_qos_throttled = Atomic.make 0
let acc_qos_wait_us = Atomic.make 0
let acc_tier_degraded = Atomic.make 0
let acc_tier_recovered = Atomic.make 0
let acc_tier_failover = Atomic.make 0
let acc_media_reads = Atomic.make 0
let acc_pages_lost = Atomic.make 0

let reset_resilience2_totals () =
  Atomic.set acc_scrub_scans 0;
  Atomic.set acc_scrub_verify 0;
  Atomic.set acc_scrub_found 0;
  Atomic.set acc_scrub_reloc 0;
  Atomic.set acc_scrub_reloc_failed 0;
  Atomic.set acc_qos_throttled 0;
  Atomic.set acc_qos_wait_us 0;
  Atomic.set acc_tier_degraded 0;
  Atomic.set acc_tier_recovered 0;
  Atomic.set acc_tier_failover 0;
  Atomic.set acc_media_reads 0;
  Atomic.set acc_pages_lost 0

let resilience2_totals () =
  {
    scrub_scans = Atomic.get acc_scrub_scans;
    scrub_verify_reads = Atomic.get acc_scrub_verify;
    scrub_media_found = Atomic.get acc_scrub_found;
    scrub_relocations = Atomic.get acc_scrub_reloc;
    scrub_reloc_failed = Atomic.get acc_scrub_reloc_failed;
    qos_throttled = Atomic.get acc_qos_throttled;
    qos_throttle_wait_us = Atomic.get acc_qos_wait_us;
    tier_degraded_events = Atomic.get acc_tier_degraded;
    tier_recovered_events = Atomic.get acc_tier_recovered;
    tier_failover_routes = Atomic.get acc_tier_failover;
    media_reads = Atomic.get acc_media_reads;
    pages_lost = Atomic.get acc_pages_lost;
  }

(* Engine telemetry totals, same atomic discipline.  Per-experiment
   attribution rides on a domain-local tag: the registry tags the job
   running an experiment, and [shard] re-establishes the submitting
   experiment's tag around every sub-job — the pool's help-execution
   means a domain waiting in one experiment may execute another
   experiment's shard, so the tag must travel with the job, not the
   domain. *)
type engine_totals = { fired : int; cancels_reclaimed : int; cascades : int }

let acc_engine_fired = Atomic.make 0
let acc_engine_cancels = Atomic.make 0
let acc_engine_cascades = Atomic.make 0

let reset_engine_totals () =
  Atomic.set acc_engine_fired 0;
  Atomic.set acc_engine_cancels 0;
  Atomic.set acc_engine_cascades 0

let engine_totals () =
  {
    fired = Atomic.get acc_engine_fired;
    cancels_reclaimed = Atomic.get acc_engine_cancels;
    cascades = Atomic.get acc_engine_cascades;
  }

(* Async fault-path and multi-queue totals, same atomic discipline.
   Sums are order-independent; the two highwaters combine via a CAS max,
   which is equally order-independent. *)
type async_totals = {
  waiter_merges : int;
  deferred : int;
  inflight_highwater : int;
  mq_batches : int;
  queue_depth_highwater : int;
}

let acc_waiter_merges = Atomic.make 0
let acc_deferred = Atomic.make 0
let acc_inflight_hw = Atomic.make 0
let acc_mq_batches = Atomic.make 0
let acc_qdepth_hw = Atomic.make 0

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let reset_async_totals () =
  Atomic.set acc_waiter_merges 0;
  Atomic.set acc_deferred 0;
  Atomic.set acc_inflight_hw 0;
  Atomic.set acc_mq_batches 0;
  Atomic.set acc_qdepth_hw 0

let async_totals () =
  {
    waiter_merges = Atomic.get acc_waiter_merges;
    deferred = Atomic.get acc_deferred;
    inflight_highwater = Atomic.get acc_inflight_hw;
    mq_batches = Atomic.get acc_mq_batches;
    queue_depth_highwater = Atomic.get acc_qdepth_hw;
  }

(* Shared smoke cap: VSWAPPER_SMOKE=1 tells the heavyweight sweeps
   (fleet, memscale) to run a drastically reduced grid so the dune smoke
   aliases stay cheap.  One env var instead of one per experiment. *)
let smoke () =
  match Sys.getenv_opt "VSWAPPER_SMOKE" with
  | Some s ->
      let s = String.trim s in
      s <> "" && s <> "0"
  | None -> false

(* Fleet-experiment totals for the bench JSON summary.  Unlike the
   atomic counters above these are set wholesale, once, by the fleet
   experiment (both of its runs happen inside one experiment body), so
   a mutex'd option cell is enough. *)
type fleet_jobs_point = {
  fj_jobs : int;
  fj_wall_s : float;
  fj_guest_seconds_per_s : float;
  fj_speedup : float;
}

type fleet_totals = {
  fleet_hosts : int;
  fleet_guests : int;
  fleet_rejected : int;
  fleet_pages : int;
  fleet_epochs : int;
  fleet_migrations : int;
  fleet_migrations_aborted : int;
  fleet_throttled_batches : int;
  fleet_oom_kills : int;
  fleet_heap_words_per_page : float;
  fleet_per_jobs : fleet_jobs_point list;
}

let fleet_acc : fleet_totals option ref = ref None
let fleet_mu = Mutex.create ()

let reset_fleet_totals () =
  Mutex.protect fleet_mu (fun () -> fleet_acc := None)

let set_fleet_totals t = Mutex.protect fleet_mu (fun () -> fleet_acc := Some t)
let fleet_totals () = Mutex.protect fleet_mu (fun () -> !fleet_acc)

let exp_tag : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_exp_tag tag f =
  let saved = Domain.DLS.get exp_tag in
  Domain.DLS.set exp_tag tag;
  Fun.protect ~finally:(fun () -> Domain.DLS.set exp_tag saved) f

(* Per-experiment fired-event counts.  The table is guarded by a mutex
   (cells are created lazily from worker domains); the counts themselves
   are atomics, so sums stay order-independent and deterministic at any
   job count. *)
let exp_engine_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 31
let exp_engine_mu = Mutex.create ()

let bump_exp_engine_events id n =
  let cell =
    Mutex.protect exp_engine_mu (fun () ->
        match Hashtbl.find_opt exp_engine_tbl id with
        | Some c -> c
        | None ->
            let c = Atomic.make 0 in
            Hashtbl.add exp_engine_tbl id c;
            c)
  in
  ignore (Atomic.fetch_and_add cell n)

let exp_engine_events () =
  Mutex.protect exp_engine_mu (fun () ->
      Hashtbl.fold
        (fun id c acc -> (id, Atomic.get c) :: acc)
        exp_engine_tbl []
      |> List.sort compare)

(* Fault knobs (bench --fault-seed / --fault-rate): consumed by the
   resilience experiment.  Set once before the sweep starts, so worker
   domains only ever read them. *)
let fault_seed = Atomic.make 1
let fault_rate = Atomic.make 0.0

let set_fault_knobs ?seed ?rate () =
  (match seed with Some s -> Atomic.set fault_seed s | None -> ());
  match rate with Some r -> Atomic.set fault_rate r | None -> ()

let fault_seed_knob () = Atomic.get fault_seed
let fault_rate_knob () = Atomic.get fault_rate

let record_disk_stats (s : Metrics.Stats.t) =
  ignore (Atomic.fetch_and_add acc_reads s.Metrics.Stats.disk_batched_reads);
  ignore (Atomic.fetch_and_add acc_batches s.Metrics.Stats.disk_read_batches);
  ignore
    (Atomic.fetch_and_add acc_batch_sectors s.Metrics.Stats.disk_batch_sectors);
  ignore
    (Atomic.fetch_and_add acc_injected
       (s.Metrics.Stats.faults_injected_media
       + s.Metrics.Stats.faults_injected_transient));
  ignore (Atomic.fetch_and_add acc_retried s.Metrics.Stats.fault_retries);
  ignore
    (Atomic.fetch_and_add acc_degraded s.Metrics.Stats.faults_degraded_batches);
  ignore (Atomic.fetch_and_add acc_killed s.Metrics.Stats.fault_guest_kills);
  ignore
    (Atomic.fetch_and_add acc_destage_lost s.Metrics.Stats.destage_media_errors);
  ignore
    (Atomic.fetch_and_add acc_destage_retried
       s.Metrics.Stats.destage_transient_retries);
  ignore
    (Atomic.fetch_and_add acc_tier_admissions s.Metrics.Stats.tier_admissions);
  ignore (Atomic.fetch_and_add acc_tier_rejects s.Metrics.Stats.tier_rejects);
  ignore
    (Atomic.fetch_and_add acc_tier_promotions s.Metrics.Stats.tier_promotions);
  ignore
    (Atomic.fetch_and_add acc_tier_demotions s.Metrics.Stats.tier_demotions);
  ignore
    (Atomic.fetch_and_add acc_tier_writeback
       s.Metrics.Stats.tier_writeback_sectors);
  ignore
    (Atomic.fetch_and_add acc_tier_fast_ins s.Metrics.Stats.tier_fast_swapins);
  ignore
    (Atomic.fetch_and_add acc_tier_slow_ins s.Metrics.Stats.tier_slow_swapins);
  ignore
    (Atomic.fetch_and_add acc_tier_fast_us s.Metrics.Stats.tier_fast_swapin_us);
  ignore
    (Atomic.fetch_and_add acc_tier_slow_us s.Metrics.Stats.tier_slow_swapin_us);
  ignore (Atomic.fetch_and_add acc_scrub_scans s.Metrics.Stats.scrub_scans);
  ignore
    (Atomic.fetch_and_add acc_scrub_verify s.Metrics.Stats.scrub_verify_reads);
  ignore
    (Atomic.fetch_and_add acc_scrub_found s.Metrics.Stats.scrub_media_found);
  ignore
    (Atomic.fetch_and_add acc_scrub_reloc s.Metrics.Stats.scrub_relocations);
  ignore
    (Atomic.fetch_and_add acc_scrub_reloc_failed
       s.Metrics.Stats.scrub_reloc_failed);
  ignore (Atomic.fetch_and_add acc_qos_throttled s.Metrics.Stats.qos_throttled);
  ignore
    (Atomic.fetch_and_add acc_qos_wait_us s.Metrics.Stats.qos_throttle_wait_us);
  ignore
    (Atomic.fetch_and_add acc_tier_degraded
       s.Metrics.Stats.tier_degraded_events);
  ignore
    (Atomic.fetch_and_add acc_tier_recovered
       s.Metrics.Stats.tier_recovered_events);
  ignore
    (Atomic.fetch_and_add acc_tier_failover
       s.Metrics.Stats.tier_failover_routes);
  ignore
    (Atomic.fetch_and_add acc_media_reads s.Metrics.Stats.fault_media_reads);
  ignore
    (Atomic.fetch_and_add acc_pages_lost s.Metrics.Stats.fault_pages_lost);
  ignore
    (Atomic.fetch_and_add acc_engine_fired s.Metrics.Stats.engine_events_fired);
  ignore
    (Atomic.fetch_and_add acc_engine_cancels
       s.Metrics.Stats.engine_cancels_reclaimed);
  ignore
    (Atomic.fetch_and_add acc_engine_cascades s.Metrics.Stats.engine_cascades);
  ignore
    (Atomic.fetch_and_add acc_waiter_merges
       s.Metrics.Stats.async_waiter_merges);
  ignore
    (Atomic.fetch_and_add acc_deferred s.Metrics.Stats.async_faults_deferred);
  atomic_max acc_inflight_hw s.Metrics.Stats.async_inflight_highwater;
  ignore (Atomic.fetch_and_add acc_mq_batches s.Metrics.Stats.disk_mq_batches);
  atomic_max acc_qdepth_hw s.Metrics.Stats.disk_queue_depth_highwater;
  match Domain.DLS.get exp_tag with
  | Some id -> bump_exp_engine_events id s.Metrics.Stats.engine_events_fired
  | None -> ()

let run_machine ?(get_marks = fun () -> []) machine =
  let result = Vmm.Machine.run machine in
  record_disk_stats result.Vmm.Machine.stats;
  let to_s = Option.map Sim.Time.to_sec_float in
  let per_guest_s =
    Array.map (fun g -> to_s g.Vmm.Machine.runtime) result.Vmm.Machine.guests
  in
  let oomed =
    Array.exists (fun g -> g.Vmm.Machine.oomed) result.Vmm.Machine.guests
  in
  {
    runtime_s = per_guest_s.(0);
    per_guest_s;
    stats = result.Vmm.Machine.stats;
    oomed;
    marks = get_marks ();
  }

let opt_s r = r.runtime_s

(* Fan a per-configuration loop out over the shared global pool.  [map]
   on the global pool is re-entrant — the calling domain helps execute
   queued jobs instead of blocking — so experiments sharded here may
   themselves be jobs of the outer registry sweep.  Results come back in
   submission order, and a job's exception is re-raised here, so a
   failing point fails the whole experiment exactly as the serial loop
   did (the registry captures it per-experiment). *)
let shard f xs =
  (* Sub-jobs inherit the submitting experiment's telemetry tag: they may
     execute on any pool domain (including one that is itself running a
     different experiment and merely helping). *)
  let tag = Domain.DLS.get exp_tag in
  let f x = with_exp_tag tag (fun () -> f x) in
  Parallel.Pool.map (Parallel.Pool.global ()) f xs
  |> List.map (function Ok v -> v | Error e -> raise e)

(* [group k xs] splits [xs] into consecutive chunks of [k] — undoes the
   configs-major flattening the sweeps use to submit every (config,
   point) pair as one pool job. *)
let group k xs =
  let rec take i acc l =
    if i = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> (List.rev acc, [])
      | x :: r -> take (i - 1) (x :: acc) r
  in
  let rec go = function
    | [] -> []
    | l ->
        let c, rest = take k [] l in
        c :: go rest
  in
  if k <= 0 then invalid_arg "Exp.group" else go xs

let header ~id ~title ~paper_claim body =
  let line = String.make 72 '=' in
  Printf.sprintf "%s\n%s: %s\npaper: %s\n%s\n%s" line (String.uppercase_ascii id)
    title paper_claim line body
