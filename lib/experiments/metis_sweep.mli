(** Shared runner for the phased-MapReduce experiments (Figures 4, 14):
    [n_guests] Metis guests started 10 s apart under dynamic (MOM)
    ballooning when the configuration calls for it. *)

val configs : Exp.config_kind list

(** [run_point ~scale kind ~n_guests] returns the average runtime in
    seconds of the guests that finished, or [None] if none did. *)
val run_point : scale:float -> Exp.config_kind -> n_guests:int -> float option

(** [sweep ~scale ns] runs every configuration at every guest count.
    The (config, count) grid fans out over {!Parallel.Pool.global} (one
    pool job per machine run); results are regrouped in submission
    order, so the series are identical to a serial nested loop. *)
val sweep :
  scale:float -> int list -> (Exp.config_kind * float option list) list
