(* Figure 3: time for a guest to sequentially read a 200 MB file,
   believing it has 512 MB while actually having 100 MB. *)

let paper =
  [
    (Exp.Baseline, Some 38.7);
    (Exp.Balloon_baseline, Some 3.1);
    (Exp.Mapper_only, None);
    (Exp.Vswapper_full, Some 4.0);
    (Exp.Balloon_vswapper, Some 3.1);
  ]

let run ~scale =
  let file_mb = Exp.mb scale 200 in
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 100 in
  (* Five independent machine runs, one per configuration — sharded over
     the shared pool (this experiment is itself a job of the registry
     sweep; nested submission is safe). *)
  let rows =
    Exp.shard
      (fun (kind, paper_s) ->
        let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb () in
        let guest =
          {
            (Vmm.Config.default_guest ~workload) with
            mem_mb = guest_mb;
            resident_limit_mb = Some limit_mb;
            balloon_static_mb = (if Exp.ballooned kind then Some limit_mb else None);
            warm_all = true;
            data_mb = file_mb + 64;
          }
        in
        let cfg =
          {
            (Vmm.Config.default ~guests:[ guest ]) with
            vs = Exp.vs_of kind;
            host_mem_mb = guest_mb * 2;
            host_swap_mb = guest_mb * 3 / 2;
          }
        in
        let out = Exp.run_machine (Vmm.Machine.build cfg) in
        let cell = function
          | Some v -> Metrics.Table.fmt_float v
          | None -> "-"
        in
        [
          Exp.config_name kind;
          cell paper_s;
          cell out.Exp.runtime_s;
          string_of_int out.Exp.stats.Metrics.Stats.stale_reads;
          string_of_int out.Exp.stats.Metrics.Stats.silent_swap_writes;
        ])
      paper
  in
  Metrics.Table.render
    ~title:
      (Printf.sprintf "sequential %dMB file read; guest believes %dMB, has %dMB"
         file_mb guest_mb limit_mb)
    ~headers:[ "config"; "paper[s]"; "measured[s]"; "stale-reads"; "silent-writes" ]
    rows

let exp : Exp.t =
  let title = "Sequential file read under overcommitment" in
  let paper_claim =
    "baseline 38.7s; balloon 3.1s; vswapper 4.0s; balloon+vswapper 3.1s \
     (baseline ~12.5x slower than ballooning; vswapper within 1.3x)"
  in
  {
    id = "fig3";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig3" ~title ~paper_claim (run ~scale));
  }
