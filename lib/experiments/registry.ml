let all =
  [
    Fig03.exp;
    Fig04.exp;
    Fig05.exp;
    Fig09.exp;
    Fig10.exp;
    Fig11.exp;
    Fig12.exp;
    Fig13.exp;
    Fig14.exp;
    Fig15.exp;
    Tab01.exp;
    Tab02.exp;
    Win.exp;
    Mig.exp;
    Ablations.exp;
    Resilience.exp;
    Scalability.exp;
    Tiering.exp;
    Memscale.exp;
    Degradation.exp;
    Fleet.exp;
  ]

let find id = List.find_opt (fun e -> e.Exp.id = id) all
let ids () = List.map (fun e -> e.Exp.id) all

type outcome = {
  exp : Exp.t;
  output : (string, exn) result;
  wall_s : float;
  alloc_words : float;
}

(* Words allocated on the calling domain so far (minor + major, without
   double-counting promotions).  [run_one] executes on the same worker
   domain end to end, so the delta across a run is that experiment's own
   allocation — modulo shards it fanned out to sibling domains. *)
let domain_alloc_words () =
  let g = Gc.quick_stat () in
  g.Gc.minor_words +. g.Gc.major_words -. g.Gc.promoted_words

let run_one ~scale (e : Exp.t) =
  let t0 = Unix.gettimeofday () in
  let a0 = domain_alloc_words () in
  (* The tag scopes engine-telemetry attribution to this experiment; the
     sharded inner loops propagate it to their pool sub-jobs. *)
  let output =
    try Ok (Exp.with_exp_tag (Some e.Exp.id) (fun () -> e.Exp.run ~scale))
    with exn -> Error exn
  in
  {
    exp = e;
    output;
    wall_s = Unix.gettimeofday () -. t0;
    alloc_words = domain_alloc_words () -. a0;
  }

let run_all ?jobs ~scale chosen =
  (* Each experiment builds its own engine/RNG/disk and returns a buffered
     string, so whole experiments fan out across domains; collecting with
     [Pool.map] keeps the results in registry order, making the printed
     sweep byte-identical to a serial run.  The shared global pool is
     used (resized first when [jobs] is given) so that experiments which
     themselves shard their per-configuration runs — fig3/fig4/fig5/
     fig11/fig14/abl — submit to the same worker set; [map] is
     re-entrant, so the nesting cannot deadlock. *)
  (match jobs with Some j -> Parallel.Pool.set_global_jobs j | None -> ());
  let results =
    Parallel.Pool.map (Parallel.Pool.global ()) (run_one ~scale) chosen
  in
  (* [run_one] already converts an experiment's exception into an [Error]
     outcome; a pool-level [Error] here means the job died outside that
     guard (e.g. the worker domain was torn down).  Isolate it the same
     way instead of aborting the sweep: the failed experiment reports
     FAILED and the others still print. *)
  List.map2
    (fun e -> function
      | Ok o -> o
      | Error exn ->
          { exp = e; output = Error exn; wall_s = 0.0; alloc_words = 0.0 })
    chosen results
