let all =
  [
    Fig03.exp;
    Fig04.exp;
    Fig05.exp;
    Fig09.exp;
    Fig10.exp;
    Fig11.exp;
    Fig12.exp;
    Fig13.exp;
    Fig14.exp;
    Fig15.exp;
    Tab01.exp;
    Tab02.exp;
    Win.exp;
    Mig.exp;
    Ablations.exp;
    Resilience.exp;
    Scalability.exp;
    Tiering.exp;
  ]

let find id = List.find_opt (fun e -> e.Exp.id = id) all
let ids () = List.map (fun e -> e.Exp.id) all

type outcome = {
  exp : Exp.t;
  output : (string, exn) result;
  wall_s : float;
}

let run_one ~scale (e : Exp.t) =
  let t0 = Unix.gettimeofday () in
  (* The tag scopes engine-telemetry attribution to this experiment; the
     sharded inner loops propagate it to their pool sub-jobs. *)
  let output =
    try Ok (Exp.with_exp_tag (Some e.Exp.id) (fun () -> e.Exp.run ~scale))
    with exn -> Error exn
  in
  { exp = e; output; wall_s = Unix.gettimeofday () -. t0 }

let run_all ?jobs ~scale chosen =
  (* Each experiment builds its own engine/RNG/disk and returns a buffered
     string, so whole experiments fan out across domains; collecting with
     [Pool.map] keeps the results in registry order, making the printed
     sweep byte-identical to a serial run.  The shared global pool is
     used (resized first when [jobs] is given) so that experiments which
     themselves shard their per-configuration runs — fig3/fig4/fig5/
     fig11/fig14/abl — submit to the same worker set; [map] is
     re-entrant, so the nesting cannot deadlock. *)
  (match jobs with Some j -> Parallel.Pool.set_global_jobs j | None -> ());
  let results =
    Parallel.Pool.map (Parallel.Pool.global ()) (run_one ~scale) chosen
  in
  (* [run_one] already converts an experiment's exception into an [Error]
     outcome; a pool-level [Error] here means the job died outside that
     guard (e.g. the worker domain was torn down).  Isolate it the same
     way instead of aborting the sweep: the failed experiment reports
     FAILED and the others still print. *)
  List.map2
    (fun e -> function
      | Ok o -> o
      | Error exn -> { exp = e; output = Error exn; wall_s = 0.0 })
    chosen results
