(* Fleet: multi-host throughput scaling.  Not a figure of the paper — a
   sweep validating this repo's cluster simulator: N independent host
   simulations (each a full engine + host + guests stack) step in
   parallel epochs on a {!Parallel.Pool} under a serial controller that
   places arrivals with overcommit and rebalances pressured hosts by
   live migration.

   The experiment runs the SAME fleet twice, on private pools of width
   1 and 4, and self-checks determinism: the deterministic report (and
   the stats fingerprint) must be byte-identical — the pool width may
   only change which wall-clock instant each shard steps at.  It then
   prints the scaling table.  Wall-clock and heap lines contain the
   words "wall" / "heap" so the fleet-smoke rule can strip them before
   comparing serial vs --jobs 4 stdout; everything else is
   deterministic.

   Knobs: VSWAPPER_FLEET_HOSTS (default 128), VSWAPPER_OVERCOMMIT
   (default 1.5), VSWAPPER_TRAFFIC_SEED (default 42), and the shared
   VSWAPPER_SMOKE=1 cap (8 hosts, 6 epochs).  VSWAPPER_BENCH_SCALE
   scales the host count. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | Some _ | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 -> v
      | Some _ | None -> default)
  | None -> default

let config ~scale =
  let d = Cluster.Fleet.default_config in
  let per_host_arrivals =
    d.Cluster.Fleet.mean_arrivals /. float_of_int d.Cluster.Fleet.hosts
  in
  let hosts = env_int "VSWAPPER_FLEET_HOSTS" d.Cluster.Fleet.hosts in
  let hosts = if Exp.smoke () then min hosts 8 else hosts in
  let hosts = Exp.scaled_int scale hosts ~min:2 in
  let epochs =
    if Exp.smoke () then min d.Cluster.Fleet.epochs 6
    else d.Cluster.Fleet.epochs
  in
  {
    d with
    Cluster.Fleet.hosts;
    epochs;
    overcommit = env_float "VSWAPPER_OVERCOMMIT" d.Cluster.Fleet.overcommit;
    seed = env_int "VSWAPPER_TRAFFIC_SEED" d.Cluster.Fleet.seed;
    mean_arrivals = per_host_arrivals *. float_of_int hosts;
  }

let run_width cfg jobs =
  let pool = Parallel.Pool.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let r = Cluster.Fleet.run ~pool cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Parallel.Pool.shutdown pool;
  (r, wall)

let run ~scale =
  let cfg = config ~scale in
  (* Private pools, not the shared global one: the widths under test
     must be exact, and the global pool cannot be resized while the
     registry sweep has jobs in flight. *)
  let r1, wall1 = run_width cfg 1 in
  let r4, wall4 = run_width cfg 4 in
  let rep1 = Cluster.Fleet.report r1 in
  let rep4 = Cluster.Fleet.report r4 in
  let deterministic =
    rep1 = rep4
    && r1.Cluster.Fleet.fingerprint = r4.Cluster.Fleet.fingerprint
  in
  (* Only the serial run's stats feed the cross-experiment totals — the
     jobs=4 replay is the same simulation and would double-count. *)
  Exp.record_disk_stats r1.Cluster.Fleet.totals;
  let thr r wall =
    if wall > 0.0 then float_of_int r.Cluster.Fleet.guest_seconds /. wall
    else 0.0
  in
  let thr1 = thr r1 wall1 and thr4 = thr r4 wall4 in
  let speedup4 = if wall4 > 0.0 then wall1 /. wall4 else 0.0 in
  let heap_words_per_page =
    if r1.Cluster.Fleet.peak_live_pages > 0 then
      float_of_int r1.Cluster.Fleet.live_heap_words
      /. float_of_int r1.Cluster.Fleet.peak_live_pages
    else 0.0
  in
  Exp.set_fleet_totals
    {
      Exp.fleet_hosts = cfg.Cluster.Fleet.hosts;
      fleet_guests = r1.Cluster.Fleet.guests_placed;
      fleet_rejected = r1.Cluster.Fleet.guests_rejected;
      fleet_pages = r1.Cluster.Fleet.pages_placed;
      fleet_epochs = cfg.Cluster.Fleet.epochs;
      fleet_migrations = r1.Cluster.Fleet.migrations;
      fleet_migrations_aborted = r1.Cluster.Fleet.migrations_aborted;
      fleet_throttled_batches =
        r1.Cluster.Fleet.migration_throttled_batches;
      fleet_oom_kills = r1.Cluster.Fleet.oom_kills;
      fleet_heap_words_per_page = heap_words_per_page;
      fleet_per_jobs =
        [
          {
            Exp.fj_jobs = 1;
            fj_wall_s = wall1;
            fj_guest_seconds_per_s = thr1;
            fj_speedup = 1.0;
          };
          {
            Exp.fj_jobs = 4;
            fj_wall_s = wall4;
            fj_guest_seconds_per_s = thr4;
            fj_speedup = speedup4;
          };
        ];
    };
  let cores = Domain.recommended_domain_count () in
  let verdict =
    (* The >= 2x gate only means something when the machine actually has
       the cores; on small containers the table is recorded without a
       judgement (the determinism check above is the real invariant). *)
    if cores >= 4 then
      Printf.sprintf
        "parallel verdict: %s -- %.2fx wall speedup at --jobs 4 (target >= \
         2x on %d cores)"
        (if speedup4 >= 2.0 then "PASS" else "FAIL")
        speedup4 cores
    else
      Printf.sprintf
        "parallel verdict: skipped (only %d core%s) -- recorded %.2fx wall \
         speedup at --jobs 4"
        cores
        (if cores = 1 then "" else "s")
        speedup4
  in
  String.concat "\n"
    [
      Printf.sprintf
        "config: %d hosts x %d MB (overcommit %.2fx), %d epochs x %ds, \
         traffic seed %d"
        cfg.Cluster.Fleet.hosts cfg.Cluster.Fleet.host_mem_mb
        cfg.Cluster.Fleet.overcommit cfg.Cluster.Fleet.epochs
        cfg.Cluster.Fleet.epoch_s cfg.Cluster.Fleet.seed;
      "";
      rep1;
      "";
      Printf.sprintf
        "determinism: %s -- report and fingerprint at --jobs 1 vs --jobs 4"
        (if deterministic then "PASS (byte-identical)" else "FAIL (diverged)");
      Printf.sprintf
        "scaling: jobs 1: wall %6.2fs, %8.0f guest-s/wall-s, speedup 1.00"
        wall1 thr1;
      Printf.sprintf
        "scaling: jobs 4: wall %6.2fs, %8.0f guest-s/wall-s, speedup %.2f"
        wall4 thr4 speedup4;
      Printf.sprintf
        "heap: %.1f live words per guest page at the last barrier (peak %d \
         live pages; target < 64)"
        heap_words_per_page r1.Cluster.Fleet.peak_live_pages;
      verdict;
    ]

let exp : Exp.t =
  let title =
    "Fleet-scale parallel simulation: sharded hosts, overcommit placement, \
     diurnal traffic"
  in
  let paper_claim =
    "not in the paper: this repo's perf work; N independent host \
     simulations stepped in parallel epochs must produce byte-identical \
     stats at any --jobs width, and epoch stepping should scale with \
     cores (>= 2x at --jobs 4 on a 4-core machine)"
  in
  {
    id = "fleet";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fleet" ~title ~paper_claim (run ~scale));
  }
