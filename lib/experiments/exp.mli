(** Common experiment machinery: the five paper configurations, scaled
    runs, mark collection for per-iteration figures, and rendering of
    paper-vs-measured outputs. *)

(** One reproducible experiment (a figure or table of the paper). *)
type t = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  paper_claim : string;  (** what the paper reports, for side-by-side *)
  run : scale:float -> string;  (** returns the rendered result block *)
}

(** The paper's five configurations (Section 5): baseline, balloon +
    baseline, mapper (VSwapper without the Preventer), vswapper, and
    balloon + vswapper. *)
type config_kind =
  | Baseline
  | Balloon_baseline
  | Mapper_only
  | Vswapper_full
  | Balloon_vswapper

val config_name : config_kind -> string
val all_configs : config_kind list

(** [vs_of kind] is the VSwapper feature set of the configuration. *)
val vs_of : config_kind -> Vswapper.Vsconfig.t

(** [ballooned kind] tells whether the configuration pre-inflates a
    static balloon. *)
val ballooned : config_kind -> bool

(** [mb scale x] scales a MiB quantity, with a 16 MiB floor. *)
val mb : float -> int -> int

(** [scaled_int scale x ~min] scales a count. *)
val scaled_int : float -> int -> min:int -> int

(** Captured per-mark snapshot: mark index, virtual time, stats copy. *)
type mark = { index : int; at : Sim.Time.t; snapshot : Metrics.Stats.t }

(** [mark_collector machine_ref] returns [(on_mark, get_marks)]:
    [on_mark i] snapshots time and stats of the machine in the ref. *)
val mark_collector :
  Vmm.Machine.t option ref -> (int -> unit) * (unit -> mark list)

(** Result of one machine run, condensed. *)
type run_out = {
  runtime_s : float option;  (** guest 0; None if OOM-killed *)
  per_guest_s : float option array;
  stats : Metrics.Stats.t;
  oomed : bool;
  marks : mark list;
}

(** [run_config ?marks cfg] builds and runs a machine.  [marks] is the
    collector's getter, invoked after the run. *)
val run_machine : ?get_marks:(unit -> mark list) -> Vmm.Machine.t -> run_out

(** [record_disk_stats s] folds one run's stats into the cross-run
    totals below — [run_machine] does it automatically; experiments that
    drive simulations outside a {!Vmm.Machine} (the fleet) call it
    directly with their reduced totals. *)
val record_disk_stats : Metrics.Stats.t -> unit

(** Disk read-batching totals summed over every [run_machine] since the
    last [reset_disk_totals].  Accumulated with atomics so runs on
    parallel sweep domains count too; sums are order-independent, so the
    totals are deterministic at any job count. *)
type disk_totals = {
  reads : int;  (** individual read requests served from the media *)
  batches : int;  (** media accesses those reads were coalesced into *)
  batch_sectors : int;  (** total sectors spanned by read batches *)
}

val reset_disk_totals : unit -> unit
val disk_totals : unit -> disk_totals

(** Fault-injection totals summed over every [run_machine] since the last
    [reset_fault_totals], with the same atomic (order-independent)
    accumulation discipline as {!disk_totals}. *)
type fault_totals = {
  injected : int;  (** read requests completed with an injected error *)
  retried : int;  (** transparent retries after transient errors *)
  degraded : int;  (** media accesses slowed by a degraded-latency fault *)
  killed : int;  (** guests abandoned after unrecoverable I/O failures *)
  destage_lost : int;
      (** destaged sectors lost to media errors (or retry exhaustion) *)
  destage_retried : int;  (** destaged sectors re-queued after transients *)
}

val reset_fault_totals : unit -> unit
val fault_totals : unit -> fault_totals

(** Tiered swap-backend totals summed over every [run_machine] since the
    last [reset_tier_totals], with the same atomic accumulation
    discipline as {!disk_totals}.  All zero when every run used the
    disk-only passthrough. *)
type tier_totals = {
  admissions : int;  (** swap-outs accepted by the fast tier *)
  rejects : int;  (** swap-outs the fast tier refused (routed slow) *)
  promotions : int;  (** slow-tier swap-ins copied up to the fast tier *)
  demotions : int;  (** cold fast-tier slots written back to the slow tier *)
  writeback_sectors : int;  (** sectors moved by demotion writeback *)
  fast_swapins : int;
  slow_swapins : int;
  fast_swapin_us : int;  (** summed fast-tier swap-in service time *)
  slow_swapin_us : int;  (** summed slow-tier swap-in service time *)
}

val reset_tier_totals : unit -> unit
val tier_totals : unit -> tier_totals

(** Degraded-media survival totals (background scrubber, per-guest I/O
    QoS, tier failover) summed over every [run_machine] since the last
    [reset_resilience2_totals], with the same atomic accumulation
    discipline as {!disk_totals}.  All zero when no run armed the
    scrubber, the QoS layer, or a fault-injecting tier pair. *)
type resilience2_totals = {
  scrub_scans : int;  (** complete scrub passes over the swap area *)
  scrub_verify_reads : int;  (** low-priority verify reads issued *)
  scrub_media_found : int;  (** latent media errors the scrubber hit first *)
  scrub_relocations : int;  (** damaged live slots moved to healthy ones *)
  scrub_reloc_failed : int;  (** repairs skipped (budget / stale slot) *)
  qos_throttled : int;  (** swap-in faults parked by admission control *)
  qos_throttle_wait_us : int;  (** summed park time of released faults *)
  tier_degraded_events : int;  (** fast-tier trips into the degraded state *)
  tier_recovered_events : int;  (** successful probes back to healthy *)
  tier_failover_routes : int;  (** admissions re-routed off a degraded tier *)
  media_reads : int;  (** guest swap-in reads that hit a media error *)
  pages_lost : int;  (** swapped pages torn down with their killed guest *)
}

val reset_resilience2_totals : unit -> unit
val resilience2_totals : unit -> resilience2_totals

(** Event-engine telemetry totals summed over every [run_machine] since
    the last [reset_engine_totals], with the same atomic accumulation
    discipline as {!disk_totals}. *)
type engine_totals = {
  fired : int;  (** event callbacks invoked *)
  cancels_reclaimed : int;  (** cancelled event records recycled *)
  cascades : int;  (** timing-wheel slot redistributions *)
}

val reset_engine_totals : unit -> unit
val engine_totals : unit -> engine_totals

(** Async fault-path and multi-queue disk totals over every
    [run_machine] since the last [reset_async_totals].  Counts are
    atomic sums; the two highwaters combine via an order-independent
    max, so all five stay deterministic at any job count. *)
type async_totals = {
  waiter_merges : int;  (** faults that piggybacked on an in-flight key *)
  deferred : int;  (** fault starts parked by the per-guest bound *)
  inflight_highwater : int;  (** max concurrent target faults, any run *)
  mq_batches : int;  (** media batches served on queues other than 0 *)
  queue_depth_highwater : int;  (** max concurrent in-service batches *)
}

val reset_async_totals : unit -> unit
val async_totals : unit -> async_totals

(** [smoke ()] is true when VSWAPPER_SMOKE is set to anything but ""/"0":
    the heavyweight sweeps (fleet, memscale) cut their grids down so the
    dune smoke aliases stay cheap.  One env var shared by all of them. *)
val smoke : unit -> bool

(** One (jobs, throughput) point of the fleet scaling table. *)
type fleet_jobs_point = {
  fj_jobs : int;
  fj_wall_s : float;
  fj_guest_seconds_per_s : float;  (** simulated guest-seconds per wall second *)
  fj_speedup : float;  (** vs the jobs=1 run of the same sweep *)
}

(** Fleet-experiment totals for the bench JSON summary, set wholesale by
    the fleet experiment (both of its runs happen inside one experiment
    body).  [None] until the fleet experiment has run. *)
type fleet_totals = {
  fleet_hosts : int;
  fleet_guests : int;  (** VMs placed over the whole history *)
  fleet_rejected : int;
  fleet_pages : int;  (** pages of placed VMs *)
  fleet_epochs : int;
  fleet_migrations : int;  (** completed rebalance evacuations *)
  fleet_migrations_aborted : int;
  fleet_throttled_batches : int;  (** dirty-rate backoff delays *)
  fleet_oom_kills : int;
  fleet_heap_words_per_page : float;  (** live words / peak live pages *)
  fleet_per_jobs : fleet_jobs_point list;
}

val reset_fleet_totals : unit -> unit
val set_fleet_totals : fleet_totals -> unit
val fleet_totals : unit -> fleet_totals option

(** [with_exp_tag tag f] runs [f] with the engine-telemetry attribution
    tag set (and restores the previous tag after).  The registry tags
    each experiment's job with its id; {!shard} re-establishes the
    submitting experiment's tag around every sub-job, so help-executed
    shards attribute to the right experiment at any job count. *)
val with_exp_tag : string option -> (unit -> 'a) -> 'a

(** [exp_engine_events ()] is the per-experiment fired-event totals seen
    so far, sorted by experiment id. *)
val exp_engine_events : unit -> (string * int) list

(** Fault knobs for the resilience experiment, set once by the bench
    driver (--fault-seed / --fault-rate) before the sweep starts so
    worker domains only ever read them.  A [rate] of 0 (the default)
    keeps the experiment's built-in fault-rate grid. *)
val set_fault_knobs : ?seed:int -> ?rate:float -> unit -> unit

val fault_seed_knob : unit -> int
val fault_rate_knob : unit -> float

(** [opt_s r] is the runtime as an option-float cell for series tables. *)
val opt_s : run_out -> float option

(** [shard f xs] fans [f] over [xs] on the shared {!Parallel.Pool.global}
    pool and returns the results in the order of [xs].  Safe to call from
    inside an experiment already running as a pool job (the pool's [map]
    is re-entrant); a job's exception is re-raised, so a failing point
    fails the experiment exactly as a serial loop would. *)
val shard : ('a -> 'b) -> 'a list -> 'b list

(** [group k xs] splits [xs] into consecutive chunks of length [k] (the
    last chunk may be shorter). *)
val group : int -> 'a list -> 'a list list

(** [header ~id ~title ~paper_claim body] formats an experiment block. *)
val header : id:string -> title:string -> paper_claim:string -> string -> string
