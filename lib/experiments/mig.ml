(* Section 7 future work, implemented: migrating memory mappings instead
   of named pages.  A guest with a warm page cache is migrated after its
   workload settles; we compare wire traffic and transfer time for the
   classic full copy vs the Mapper-aware transfer, over 1 and 10 GbE. *)

let prepare ~scale ~vs =
  let file_mb = Exp.mb scale 384 in
  let guest_mb = Exp.mb scale 512 in
  let workload =
    Workloads.Sysbench.workload ~iterations:1 ~file_mb ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some (Exp.mb scale 256);
      warm_all = true;
      data_mb = file_mb + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
    }
  in
  let machine = Vmm.Machine.build cfg in
  ignore (Vmm.Machine.run machine);
  machine

let migrate_now machine link strategy =
  let result = ref None in
  Migration.Migrate.migrate ~machine ~guest:0 link strategy (fun r ->
      result := Some r);
  let engine = Vmm.Machine.engine machine in
  let steps = ref 0 in
  while !result = None && Sim.Engine.step engine && !steps < 10_000_000 do
    incr steps
  done;
  (* Migration experiments run on clean disks; an abort here means the
     harness itself regressed. *)
  match Option.get !result with
  | Migration.Migrate.Completed r -> r
  | Migration.Migrate.Aborted _ -> failwith "mig: unexpected disk abort"

let run ~scale =
  let rows = ref [] in
  List.iter
    (fun (src_name, vs) ->
      let strategies =
        match vs with
        | _ when vs == Vswapper.Vsconfig.baseline ->
            [ ("full copy", Migration.Migrate.Full_copy) ]
        | _ ->
            [
              ("full copy", Migration.Migrate.Full_copy);
              ("mapper-aware", Migration.Migrate.Mapper_aware);
            ]
      in
      List.iter
        (fun (strat_name, strategy) ->
          List.iter
            (fun (link_name, link) ->
              (* A fresh machine per measurement: migration shares the
                 source's disk, so runs must not interfere. *)
              let machine = prepare ~scale ~vs in
              let r = migrate_now machine link strategy in
              rows :=
                [
                  src_name;
                  strat_name;
                  link_name;
                  Printf.sprintf "%.2f" (Sim.Time.to_sec_float r.Migration.Migrate.duration);
                  Printf.sprintf "%.1f"
                    (float_of_int r.Migration.Migrate.bytes_sent /. 1048576.0);
                  string_of_int r.Migration.Migrate.pages_copied;
                  string_of_int r.Migration.Migrate.mappings_sent;
                  string_of_int r.Migration.Migrate.pages_skipped;
                ]
                :: !rows)
            [ ("1GbE", Migration.Migrate.gbe); ("10GbE", Migration.Migrate.ten_gbe) ])
        strategies)
    [
      ("baseline", Vswapper.Vsconfig.baseline);
      ("vswapper", Vswapper.Vsconfig.vswapper);
    ];
  Metrics.Table.render
    ~title:
      "stop-and-copy transfer of a 512MB guest with a warm page cache \
       (mappings are 32-byte records the destination refetches locally)"
    ~headers:
      [ "source"; "strategy"; "link"; "time[s]"; "MB-sent"; "pages";
        "mappings"; "skipped" ]
    (List.rev !rows)

let exp : Exp.t =
  let title = "Live-migration transfer via Mapper records (future work)" in
  let paper_claim =
    "Section 7: 'hypervisors that migrate guests can migrate memory \
     mappings instead of (named) memory pages ... and avoid requesting \
     pages that are wholly overwritten' — reducing migration time and \
     network traffic without guest cooperation"
  in
  {
    id = "mig";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"mig" ~title ~paper_claim (run ~scale));
  }
