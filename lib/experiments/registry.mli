(** All reproducible experiments, keyed by the paper's figure/table ids. *)

val all : Exp.t list

(** [find id] looks an experiment up by id (e.g. "fig9"). *)
val find : string -> Exp.t option

val ids : unit -> string list

(** Result of one experiment run: the rendered output block (or the
    exception the experiment raised, captured per job), its wall-clock
    cost in seconds, and the words it allocated on its worker domain
    (minor + major without double-counting promotions; shards fanned
    out to sibling domains are not included). *)
type outcome = {
  exp : Exp.t;
  output : (string, exn) result;
  wall_s : float;
  alloc_words : float;
}

(** [run_all ?jobs ~scale exps] runs the experiments, fanning them out
    over the shared {!Parallel.Pool.global} pool ([Pool.default_jobs ()]
    wide when [jobs] is omitted — the [VSWAPPER_JOBS] environment
    variable, else [Domain.recommended_domain_count () - 1]; when [jobs]
    is given the global pool is resized to it first).  The heavy
    experiments additionally shard their per-configuration machine runs
    onto the same pool from inside their jobs — the pool's [map] is
    re-entrant, so the nesting is safe.  Outcomes come back in the order
    of [exps] regardless of completion order, and every experiment is
    deterministic given its scale, so the rendered outputs are
    byte-identical for any [jobs]. *)
val run_all : ?jobs:int -> scale:float -> Exp.t list -> outcome list
