(* Degraded-media survival: the three robustness layers measured
   together.  Not a figure of the paper — the proactive-repair and
   isolation sweep the reactive fault handling (resilience) leaves
   open:

   (a,b) a background scrubber patrols the swap area with low-priority
   verify reads, catching latent media errors before a guest faults on
   them and relocating the live slots to healthy sectors — measured as
   the fraction of injected swap-area media errors the scrubber hits
   first and as the swapped pages lost with killed guests;

   (c) per-guest token-bucket QoS in front of the disk queues keeps a
   well-behaved guest's p99 swap-in latency bounded while a co-located
   guest hammers a degraded region;

   (d) a czram fast tier that trips its error budget fails over: new
   admissions route to the disk, resident slots drain back, and probes
   bring the tier back to healthy.

   Every point uses swap-storm guests (write once, re-read in passes),
   so nearly all injected read faults land on the swap area the
   scrubber patrols rather than on image I/O.  The whole grid is
   deterministic at any --jobs for a fixed --fault-seed. *)

let scrub_cols = [ ("scrub-off", 0); ("scrub-mid", 25_000); ("scrub-high", 100_000) ]
let mid_scrub_name = "scrub-mid"

(* Fault-rate grid for the scrubber/failover panels (media errors on
   swap reads); --fault-rate overrides it with a single point. *)
let media_rates () =
  let r = Exp.fault_rate_knob () in
  if r > 0.0 then [ r ] else [ 1e-4; 5e-4 ]

(* The QoS panel injects no media errors (a killed guest would quiet
   the disk and mask the contention being measured): the hammered
   region degrades via slow batches and retryable transients. *)
let qos_rate_grid = [ 0.0; 2e-3 ]

(* The failover panel needs enough czram pool corruption to burn the
   error budget: the corruption stream draws per page (not per sector),
   so it runs at higher rates than the scrubber panel's media grid. *)
let tier_rates = [ 2e-3; 1e-2 ]

(* Callers pass an already-scaled storm size and derive the resident
   limit from it, so the overcommit ratio survives [Exp.mb]'s 16 MiB
   floor at smoke scales (scaling the two independently collapses the
   ratio to 1 and nothing ever swaps). *)
let storm_guest ~threads ~rounds ~storm_mb ~limit_mb ~compute_us =
  let workload =
    Workloads.Swapstorm.workload ~threads ~rounds ~compute_us ~mb:storm_mb ()
  in
  {
    (Vmm.Config.default_guest ~workload) with
    mem_mb = 2 * storm_mb;
    vcpus = max 1 (threads / 2);
    resident_limit_mb = Some limit_mb;
    data_mb = 64;
  }

type spoint = { caught : int; hits : int; lost : int; relocated : int }

let run_scrub_point ~scale ~scrub_rate ~rate =
  let storm = Exp.mb scale 256 in
  (* compute_us spaces the storm's touches out so a scrub pass fits
     inside the re-read interval; a zero-compute storm re-reads its
     whole set before the scrubber can complete a single pass, and the
     race the panel measures degenerates to "guest always first". *)
  let guest =
    storm_guest ~threads:2 ~rounds:4 ~storm_mb:storm ~limit_mb:(storm / 2)
      ~compute_us:200
  in
  let base = Vmm.Config.default ~guests:[ guest ] in
  let cfg =
    {
      base with
      Vmm.Config.vs = Exp.vs_of Exp.Vswapper_full;
      host_mem_mb = Exp.mb scale 1024;
      (* A modest swap area keeps a scrub pass shorter than the storm's
         re-read interval — the race the catch rate measures. *)
      host_swap_mb = Exp.mb scale 512;
      faults =
        Faults.Config.make ~seed:(Exp.fault_seed_knob ()) ~media_rate:rate ();
      (* The drive ages after boot: faults start at the workload epoch,
         so the catch-rate race is between the scrubber and the guest's
         swap-ins — not between boot I/O and either. *)
      epoch_faults = true;
      hbase =
        {
          base.Vmm.Config.hbase with
          Host.Hconfig.scrub_rate_pages_s = scrub_rate;
          scrub_repair_budget = 64;
        };
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  let s = out.Exp.stats in
  {
    caught = s.Metrics.Stats.scrub_media_found;
    hits = s.Metrics.Stats.fault_media_reads;
    lost = s.Metrics.Stats.fault_pages_lost;
    relocated = s.Metrics.Stats.scrub_relocations;
  }

let catch_pct ~caught ~hits =
  if caught + hits = 0 then None
  else Some (100.0 *. float_of_int caught /. float_of_int (caught + hits))

type qpoint = { p99_ms : float option; throttled : int }

let p99_ms_of lats =
  match List.sort compare lats with
  | [] -> None
  | l ->
      let n = List.length l in
      let i = max 0 (min (n - 1) (((99 * n) + 99) / 100 - 1)) in
      Some (float_of_int (List.nth l i) /. 1000.)

let run_qos_point ~scale ~rate ~qos =
  let vstorm = Exp.mb scale 128 in
  (* The victim faults well below its own bucket rate, so the QoS layer
     only ever throttles the hammer; its p99 tail is queueing behind
     the hammer's (degraded, slow) batches — the thing QoS cuts. *)
  let victim =
    storm_guest ~threads:1 ~rounds:3 ~storm_mb:vstorm
      ~limit_mb:(vstorm * 3 / 4) ~compute_us:4000
  in
  (* Enough hammer rounds that it outlives the victim whether or not it
     is throttled: both columns then measure a fully-contended victim,
     not different mixes of contended and idle-disk samples. *)
  let hstorm = Exp.mb scale 384 in
  let hammer =
    storm_guest ~threads:8 ~rounds:40 ~storm_mb:hstorm ~limit_mb:(hstorm / 3)
      ~compute_us:3
  in
  let base = Vmm.Config.default ~guests:[ victim; hammer ] in
  let cfg =
    {
      base with
      Vmm.Config.vs = Exp.vs_of Exp.Vswapper_full;
      (* Ample host memory: swap traffic is driven by the per-guest
         resident limits alone, so the victim's fault count does not
         shift with the hammer's pace through host-level pressure. *)
      host_mem_mb = Exp.mb scale 4096;
      host_swap_mb = Exp.mb scale 1024;
      (* Async faults let the hammer keep several swap-ins in flight —
         the queue pressure QoS is there to arbitrate. *)
      async_faults = true;
      (* Degraded service only — no transients, no media kills: the
         victim's own reads must not pay retry latency the QoS layer
         cannot remove, or the verdict measures the fault model instead
         of the arbitration.  Big hammer batches that start in the
         degraded region clog the queues; the victim's own small reads
         that land there are individually cheap. *)
      faults =
        (if rate <= 0.0 then Faults.Config.none
         else
           Faults.Config.make ~seed:(Exp.fault_seed_knob ())
             ~degraded_rate:(rate *. 10.) ~degraded_mult:4.0 ());
      epoch_faults = true;
      hbase =
        {
          base.Vmm.Config.hbase with
          (* The cap must sit well under what the disk can absorb (the
             unthrottled hammer saturates it), and the victim's own
             demand well under the cap — so the hammer is squeezed hard
             while the victim always admits inline. *)
          Host.Hconfig.qos_rate = (if qos then 300 else 0);
          qos_burst = 16;
        };
    }
  in
  let machine = Vmm.Machine.build cfg in
  let victim_lats = ref [] in
  Host.Hostmm.set_swapin_probe (Vmm.Machine.host machine)
    (Some (fun ~gid ~us -> if gid = 0 then victim_lats := us :: !victim_lats));
  let out = Exp.run_machine machine in
  {
    p99_ms = p99_ms_of !victim_lats;
    throttled = out.Exp.stats.Metrics.Stats.qos_throttled;
  }

type tpoint = { degraded : int; recovered : int; rerouted : int }

let run_tier_point ~scale ~rate =
  let storm = Exp.mb scale 256 in
  (* Slowed like the scrubber panel's guest: the scrubber must trip the
     error budget on verify reads before the guest faults on a corrupt
     czram page, or the run ends in a kill instead of a failover. *)
  let guest =
    storm_guest ~threads:2 ~rounds:4 ~storm_mb:storm ~limit_mb:(storm / 2)
      ~compute_us:200
  in
  let base = Vmm.Config.default ~guests:[ guest ] in
  let cfg =
    {
      base with
      Vmm.Config.vs = Exp.vs_of Exp.Vswapper_full;
      host_mem_mb = Exp.mb scale 1024;
      host_swap_mb = Exp.mb scale 512;
      (* Corruption confined to the compressed pool: the disk tier must
         stay healthy to absorb the failover this panel measures. *)
      faults =
        Faults.Config.make ~seed:(Exp.fault_seed_knob ()) ~czram_rate:rate ();
      epoch_faults = true;
      tiers =
        {
          Storage.Tiers.disk_only with
          Storage.Tiers.fast = Storage.Tiers.Czram;
          fast_share_percent = 50;
          tier_error_budget = 4;
        };
      hbase =
        {
          base.Vmm.Config.hbase with
          Host.Hconfig.scrub_rate_pages_s = 25_000;
          scrub_repair_budget = 64;
        };
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  let s = out.Exp.stats in
  {
    degraded = s.Metrics.Stats.tier_degraded_events;
    recovered = s.Metrics.Stats.tier_recovered_events;
    rerouted = s.Metrics.Stats.tier_failover_routes;
  }

let run ~scale =
  let rates = media_rates () in
  let nrates = List.length rates in
  (* Scrubber grid: scrub-rate columns x media-rate points. *)
  let scrub_rows =
    Exp.shard
      (fun (scrub_rate, rate) -> run_scrub_point ~scale ~scrub_rate ~rate)
      (List.concat_map
         (fun (_, sr) -> List.map (fun r -> (sr, r)) rates)
         scrub_cols)
    |> Exp.group nrates
    |> List.map2 (fun (name, _) row -> (name, row)) scrub_cols
  in
  (* QoS grid: qos-off/qos-on columns x fault-rate points (0 = the
     fault-free baseline the verdict compares against). *)
  let qos_rows =
    Exp.shard
      (fun (qos, rate) -> run_qos_point ~scale ~rate ~qos)
      (List.concat_map
         (fun qos -> List.map (fun r -> (qos, r)) qos_rate_grid)
         [ false; true ])
    |> Exp.group (List.length qos_rate_grid)
    |> List.map2
         (fun name row -> (name, row))
         [ "qos-off"; "qos-on" ]
  in
  (* Czram failover: one tiered column over the media-rate points. *)
  let tier_row =
    Exp.shard (fun rate -> run_tier_point ~scale ~rate) tier_rates
  in
  let x = List.map (Printf.sprintf "%g") rates in
  let xt = List.map (Printf.sprintf "%g") tier_rates in
  let xq = List.map (Printf.sprintf "%g") qos_rate_grid in
  let scrub_col f =
    List.map (fun (name, row) -> (name, List.map f row)) scrub_rows
  in
  let qos_col f =
    List.map (fun (name, row) -> (name, List.map f row)) qos_rows
  in
  (* Verdict 1: aggregated over the media-rate points of the mid scrub
     column, the scrubber must hit at least half of the latent errors
     before a guest does. *)
  let mid = List.assoc mid_scrub_name scrub_rows in
  let agg_caught = List.fold_left (fun a p -> a + p.caught) 0 mid in
  let agg_hits = List.fold_left (fun a p -> a + p.hits) 0 mid in
  let verdict_scrub =
    match catch_pct ~caught:agg_caught ~hits:agg_hits with
    | None -> "scrub verdict: n/a (no media errors were injected)"
    | Some pct ->
        Printf.sprintf
          "scrub verdict: scrubber caught %.1f%% of latent media errors \
           before a guest fault at the mid scrub rate (%d scrubbed first vs \
           %d guest hits; >=50%% required)%s"
          pct agg_caught agg_hits
          (if pct >= 50.0 then "" else "  ** NOT >=50% **")
  in
  (* Verdict 2: with QoS on, the victim's p99 swap-in under the
     degraded hammer stays within 2x its fault-free baseline. *)
  let qpoint name rate =
    match List.assoc_opt name qos_rows with
    | None -> None
    | Some row -> (
        match
          List.find_opt (fun (r, _) -> r = rate) (List.combine qos_rate_grid row)
        with
        | Some (_, p) -> p.p99_ms
        | None -> None)
  in
  let hammer_rate = List.fold_left max 0.0 qos_rate_grid in
  let verdict_qos =
    match (qpoint "qos-off" 0.0, qpoint "qos-on" hammer_rate) with
    | Some base_ms, Some on_ms ->
        Printf.sprintf
          "qos verdict: victim p99 swap-in %.3f ms under a degraded hammer \
           with QoS vs %.3f ms fault-free baseline (<=2x required)%s"
          on_ms base_ms
          (if on_ms <= 2.0 *. base_ms then "" else "  ** NOT <=2x **")
    | _ -> "qos verdict: n/a (victim recorded no swap-ins)"
  in
  String.concat "\n"
    [
      Metrics.Table.render_series
        ~title:
          "(a) latent media errors the scrubber caught before a guest fault \
           [%] vs injected media rate"
        ~x_label:"rate" ~x
        ~cols:(scrub_col (fun p -> catch_pct ~caught:p.caught ~hits:p.hits));
      Metrics.Table.render_series
        ~title:
          "(b) swapped pages lost with killed guests [count] -- scrubbing \
           turns losses into relocations"
        ~x_label:"rate" ~x
        ~cols:(scrub_col (fun p -> Some (float_of_int p.lost)));
      Metrics.Table.render_series
        ~title:
          "(c) victim p99 swap-in latency [ms] while a co-located guest \
           hammers a degraded region (rate 0 = fault-free baseline)"
        ~x_label:"rate" ~x:xq
        ~cols:(qos_col (fun p -> p.p99_ms));
      Metrics.Table.render_series
        ~title:
          "(d) czram fast-tier failover under pool corruption (error budget \
           4, scrubber mid) [count]"
        ~x_label:"rate" ~x:xt
        ~cols:
          [
            ( "degraded",
              List.map (fun p -> Some (float_of_int p.degraded)) tier_row );
            ( "recovered",
              List.map (fun p -> Some (float_of_int p.recovered)) tier_row );
            ( "rerouted",
              List.map (fun p -> Some (float_of_int p.rerouted)) tier_row );
          ];
      verdict_scrub;
      verdict_qos;
    ]

let exp : Exp.t =
  let title = "Degraded media: scrubber, per-guest QoS and tier failover" in
  let paper_claim =
    "not in the paper: proactive repair and isolation under failing media \
     -- the background scrubber catches latent swap errors before guests \
     fault on them, token-bucket QoS keeps a victim's p99 swap-in bounded \
     under a noisy neighbor, and a czram tier that trips its error budget \
     fails over and recovers"
  in
  {
    id = "degradation";
    title;
    paper_claim;
    run =
      (fun ~scale ->
        Exp.header ~id:"degradation" ~title ~paper_claim (run ~scale));
  }
