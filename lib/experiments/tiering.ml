(* Tiered swap backends: the fig3 overcommitted sequential read, re-run
   with the host swap area split across a fast and a slow backend.  Not
   a figure of the paper — a sweep validating this repo's backend work:
   as the fast-tier share grows (compressed RAM or a low-RTT remote tier
   absorbing more of the swap traffic), swapping itself gets cheaper, so
   the baseline's penalty for its extra swap I/O (silent swap writes,
   false reads) shrinks and the baseline-vs-vswapper gap narrows. *)

let fast_shares = [ 0; 25; 50; 75; 100 ]
let admit_ratios = [ 0.30; 0.60; 0.90; 1.25 ]
let remote_rtts_us = [ 20; 100; 500; 2000 ]

(* Only baseline and full vswapper: the tier sweep multiplies runs, and
   these two bracket the gap the verdict tracks. *)
let configs = [ Exp.Baseline; Exp.Vswapper_full ]

(* The default admission ratio for panels (a)/(c) accepts every page
   (1.25 is the compressibility-hash ceiling): the share knob is then
   the only thing moving, so each panel sweeps one variable.  Panel (b)
   sweeps the ratio itself. *)
let tiers_cfg ~fast ~slow ?(share = 50) ?(ratio = 1.25) ?(rtt = 20) () =
  {
    Storage.Tiers.disk_only with
    Storage.Tiers.fast;
    slow;
    fast_share_percent = share;
    czram_admit_ratio = ratio;
    remote_rtt_us = rtt;
    (* Short enough that pages parked during the pre-workload warm-up
       count as cold while the workload runs, so the capacity-pressure
       demotion path is actually exercised at binding shares. *)
    writeback_idle_us = 250_000;
  }

let run_point ~scale kind tiers =
  let file_mb = Exp.mb scale 200 in
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 100 in
  let workload = Workloads.Sysbench.workload ~iterations:1 ~file_mb () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      warm_all = true;
      data_mb = file_mb + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      (* Every knob is pinned explicitly, so the VSWAPPER_* env
         overrides baked into [default] cannot leak into the sweep. *)
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      (* Sized to the swapped working set (guest minus resident limit)
         plus slack, not the usual 1.5x guest: the fast-tier share is a
         fraction of the swap area, and an oversized area would leave
         even a 25% share bigger than the live set — every sweep point
         would behave like share 100. *)
      host_swap_mb = max 16 (guest_mb - limit_mb + 8);
      disk = Storage.Disk.default_config;
      hbase = Host.Hconfig.default;
      async_faults = false;
      tiers;
    }
  in
  Exp.run_machine (Vmm.Machine.build cfg)

let runtime (o : Exp.run_out) = o.Exp.runtime_s

let run ~scale =
  (* One flat shard over every (panel, config, knob) point; the panels
     then slice the result list back apart. *)
  let share_pts =
    List.concat_map
      (fun kind ->
        List.map
          (fun share ->
            ( kind,
              tiers_cfg ~fast:Storage.Tiers.Czram ~slow:Storage.Tiers.Disk_tier
                ~share () ))
          fast_shares)
      configs
  in
  let ratio_pts =
    List.concat_map
      (fun kind ->
        List.map
          (fun ratio ->
            ( kind,
              tiers_cfg ~fast:Storage.Tiers.Czram ~slow:Storage.Tiers.Disk_tier
                ~ratio () ))
          admit_ratios)
      configs
  in
  let rtt_pts =
    List.concat_map
      (fun kind ->
        List.map
          (fun rtt ->
            ( kind,
              tiers_cfg ~fast:Storage.Tiers.Remote ~slow:Storage.Tiers.Disk_tier
                ~rtt () ))
          remote_rtts_us)
      configs
  in
  let all_pts = share_pts @ ratio_pts @ rtt_pts in
  let all_res =
    Exp.shard (fun (kind, tiers) -> run_point ~scale kind tiers) all_pts
  in
  let rec split n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: r ->
          let a, b = split (n - 1) r in
          (x :: a, b)
      | [] -> ([], [])
  in
  let share_res, rest = split (List.length share_pts) all_res in
  let ratio_res, rtt_res = split (List.length ratio_pts) rest in
  let rows per res =
    Exp.group per res
    |> List.map2 (fun kind row -> (Exp.config_name kind, row)) configs
  in
  let share_rows = rows (List.length fast_shares) share_res in
  let ratio_rows = rows (List.length admit_ratios) ratio_res in
  let rtt_rows = rows (List.length remote_rtts_us) rtt_res in
  let series ~title ~x_label ~x named_rows f =
    Metrics.Table.render_series ~title ~x_label ~x
      ~cols:(List.map (fun (name, row) -> (name, List.map f row)) named_rows)
  in
  (* Panel (d): the tier counters of the baseline runs of panel (a) —
     the baseline is the configuration with heavy swap churn (silent
     swap writes, false reads), so it is where admission, promotion and
     capacity-pressure demotion actually fire. *)
  let base_share_row =
    match List.assoc_opt (Exp.config_name Exp.Baseline) share_rows with
    | Some row -> row
    | None -> []
  in
  let counter name f =
    ( name,
      List.map
        (fun (o : Exp.run_out) ->
          Some (float_of_int (f o.Exp.stats)))
        base_share_row )
  in
  let counters =
    Metrics.Table.render_series
      ~title:
        "(d) baseline czram+disk tier counters vs fast-tier share [count]"
      ~x_label:"share%"
      ~x:(List.map string_of_int fast_shares)
      ~cols:
        [
          counter "admissions" (fun s -> s.Metrics.Stats.tier_admissions);
          counter "rejects" (fun s -> s.Metrics.Stats.tier_rejects);
          counter "promotions" (fun s -> s.Metrics.Stats.tier_promotions);
          counter "demotions" (fun s -> s.Metrics.Stats.tier_demotions);
          counter "wb-sectors" (fun s -> s.Metrics.Stats.tier_writeback_sectors);
          counter "fast-ins" (fun s -> s.Metrics.Stats.tier_fast_swapins);
          counter "slow-ins" (fun s -> s.Metrics.Stats.tier_slow_swapins);
        ]
  in
  (* Verdict, printed so the sweep documents its own acceptance check:
     the baseline/vswapper runtime ratio must shrink between the
     all-disk split (share 0) and the all-czram split (share 100). *)
  let gap at =
    let get name =
      match List.assoc_opt name share_rows with
      | Some row -> runtime (List.nth row at)
      | None -> None
    in
    match
      (get (Exp.config_name Exp.Baseline), get (Exp.config_name Exp.Vswapper_full))
    with
    | Some b, Some v when v > 0.0 -> Some (b /. v)
    | _ -> None
  in
  let verdict =
    match (gap 0, gap (List.length fast_shares - 1)) with
    | Some g0, Some g100 ->
        Printf.sprintf
          "baseline/vswapper runtime gap: %.2fx at share 0 -> %.2fx at share \
           100 (target: narrower as the fast tier grows)%s"
          g0 g100
          (if g100 < g0 then "" else "  ** NOT NARROWER **")
    | _ -> "gap: n/a (a run did not finish)"
  in
  String.concat "\n"
    [
      series
        ~title:
          "(a) runtime [s] vs fast-tier share, czram+disk -- lower is better"
        ~x_label:"share%"
        ~x:(List.map string_of_int fast_shares)
        share_rows runtime;
      series
        ~title:
          "(b) runtime [s] vs czram admission ratio cap, czram+disk at share \
           50 (pages compressing worse than the cap go to disk)"
        ~x_label:"ratio"
        ~x:(List.map (Printf.sprintf "%.2f") admit_ratios)
        ratio_rows runtime;
      series
        ~title:
          "(c) runtime [s] vs remote round-trip, remote+disk at share 50"
        ~x_label:"rtt_us"
        ~x:(List.map string_of_int remote_rtts_us)
        rtt_rows runtime;
      counters;
      verdict;
    ]

let exp : Exp.t =
  let title = "Tiered swap backends: compressed RAM and remote memory" in
  let paper_claim =
    "not in the paper: this repo's backend work; splitting the swap area \
     across a fast tier (compressed RAM or remote memory) and the disk \
     should shrink swap-in cost as the fast share grows, narrowing the \
     baseline-vs-vswapper gap the all-disk configuration shows"
  in
  {
    id = "tiering";
    title;
    paper_claim;
    run =
      (fun ~scale -> Exp.header ~id:"tiering" ~title ~paper_claim (run ~scale));
  }
