(* Scalability: swap-in throughput vs guest count under the async
   page-fault path and the NVMe-style multi-queue disk.  Not a figure of
   the paper — a sweep validating this repo's perf work: with faults
   dispatched asynchronously (VCPUs rescheduled onto runnable threads
   while a swap-in is in flight) and reads spread over per-guest
   submission queues served in parallel, aggregate swap-in throughput
   should scale with the number of guests instead of serializing behind
   one elevator.  The sync single-queue regime is the pre-existing
   stock configuration and doubles as the baseline. *)

type regime = {
  rname : string;
  async : bool;
  queues : int;
  qdepth : int;
  inflight : int;  (* per-guest in-flight fault bound; 0 = unbounded *)
}

let regimes =
  [
    { rname = "sync-1q"; async = false; queues = 1; qdepth = 1; inflight = 0 };
    { rname = "async-1q"; async = true; queues = 1; qdepth = 1; inflight = 8 };
    { rname = "async-4q"; async = true; queues = 4; qdepth = 2; inflight = 8 };
    { rname = "async-8q"; async = true; queues = 8; qdepth = 4; inflight = 16 };
  ]

let guest_counts = [ 1; 2; 4; 8 ]

type point = {
  wall : float option;  (* slowest guest's completion, simulated s *)
  swapins : int;
  mq_batches : int;
  inflight_hw : int;
}

let run_point ~scale regime n =
  let storm_mb = Exp.mb scale 512 in
  (* Derived, not Exp.mb-floored: at smoke scales the 16 MiB floor would
     otherwise make the limit as large as the region and nothing would
     swap.  A 3:1 region:resident ratio keeps every re-read pass a storm
     of major faults at any scale. *)
  let limit_mb = max 8 (storm_mb / 3) in
  let guest_mb = storm_mb + 16 in
  let workload =
    Workloads.Swapstorm.workload ~threads:4 ~rounds:2 ~mb:storm_mb ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      data_mb = storm_mb + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:(List.init n (fun _ -> guest))) with
      (* Every knob the sweep varies is pinned explicitly, so the
         VSWAPPER_* env overrides baked into [default] cannot leak in. *)
      vs = Vswapper.Vsconfig.baseline;
      host_mem_mb = n * guest_mb * 2;
      host_swap_mb = n * guest_mb;
      async_faults = regime.async;
      disk =
        {
          Storage.Disk.default_config with
          num_queues = regime.queues;
          per_queue_depth = regime.qdepth;
        };
      hbase =
        { Host.Hconfig.default with max_inflight_faults = regime.inflight };
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  let wall =
    Array.fold_left
      (fun acc g ->
        match (acc, g) with
        | Some a, Some b -> Some (Float.max a b)
        | _ -> None)
      (Some 0.0) out.Exp.per_guest_s
  in
  let s = out.Exp.stats in
  {
    wall;
    swapins = s.Metrics.Stats.host_swapins;
    mq_batches = s.Metrics.Stats.disk_mq_batches;
    inflight_hw = s.Metrics.Stats.async_inflight_highwater;
  }

let iops p =
  match p.wall with
  | Some w when w > 0.0 -> Some (float_of_int p.swapins /. w)
  | _ -> None

let run ~scale =
  let points =
    List.concat_map
      (fun regime -> List.map (fun n -> (regime, n)) guest_counts)
      regimes
  in
  let results =
    Exp.shard (fun (regime, n) -> run_point ~scale regime n) points
    |> Exp.group (List.length guest_counts)
    |> List.map2 (fun regime row -> (regime, row)) regimes
  in
  let x = List.map string_of_int guest_counts in
  let col f =
    List.map (fun (regime, row) -> (regime.rname, List.map f row)) results
  in
  let panel title f =
    Metrics.Table.render_series ~title ~x_label:"guests" ~x ~cols:(col f)
  in
  (* Acceptance check, printed so a sweep documents its own verdict: at
     the largest guest count the widest multi-queue regime must beat the
     sync single-queue baseline by >= 1.5x aggregate swap-in IOPS. *)
  let last row = List.nth row (List.length row - 1) in
  let verdict =
    match results with
    | (base, base_row) :: rest when rest <> [] ->
        let best, best_row = List.nth rest (List.length rest - 1) in
        let n = last guest_counts in
        (match (iops (last base_row), iops (last best_row)) with
        | Some b, Some m when b > 0.0 ->
            Printf.sprintf
              "%s vs %s aggregate swap-in throughput at %d guests: %.2fx \
               (target >= 1.5x)"
              best.rname base.rname n (m /. b)
        | _ ->
            Printf.sprintf
              "speedup at %d guests: n/a (a guest did not finish)" n)
    | _ -> "speedup: n/a"
  in
  String.concat "\n"
    [
      panel
        "(a) aggregate swap-in throughput [pages/s of simulated time] -- \
         higher is better"
        iops;
      panel "(b) completion time of the slowest guest [s]" (fun p -> p.wall);
      panel "(c) media batches served on queues other than 0 [count]"
        (fun p -> Some (float_of_int p.mq_batches));
      panel "(d) peak concurrent in-flight target faults [count]" (fun p ->
          Some (float_of_int p.inflight_hw));
      verdict;
    ]

let exp : Exp.t =
  let title =
    "Swap-in throughput scaling: async fault path x multi-queue disk"
  in
  let paper_claim =
    "not in the paper: this repo's perf work; rescheduling VCPUs during \
     in-flight faults and serving per-guest submission queues in \
     parallel should let aggregate swap-in throughput scale with guest \
     count, where the synchronous single-elevator stack serializes"
  in
  {
    id = "scalability";
    title;
    paper_claim;
    run =
      (fun ~scale ->
        Exp.header ~id:"scalability" ~title ~paper_claim (run ~scale));
  }
