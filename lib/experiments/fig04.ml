(* Figure 4: average completion time of ten phased MapReduce guests. *)

let run ~scale =
  let n = 10 in
  (* Four independent ten-guest machine runs — the sweep's single most
     expensive points — fan out over the shared pool. *)
  let avgs =
    Exp.shard
      (fun kind -> Metis_sweep.run_point ~scale kind ~n_guests:n)
      Metis_sweep.configs
  in
  let rows =
    List.map2
      (fun kind avg ->
        let paper =
          match kind with
          | Exp.Baseline -> "153"
          | Exp.Balloon_baseline -> "167"
          | Exp.Vswapper_full -> "88"
          | Exp.Balloon_vswapper -> "97"
          | Exp.Mapper_only -> "-"
        in
        [
          Exp.config_name kind;
          paper;
          (match avg with Some v -> Metrics.Table.fmt_float v | None -> "-");
        ])
      Metis_sweep.configs avgs
  in
  Metrics.Table.render
    ~title:
      (Printf.sprintf
         "average completion time of %d MapReduce guests started 10s apart" n)
    ~headers:[ "config"; "paper[s]"; "measured[s]" ]
    rows

let exp : Exp.t =
  let title = "Phased MapReduce guests (dynamic ballooning)" in
  let paper_claim =
    "avg runtime: balloon+baseline 167s > baseline 153s > balloon+vswapper \
     97s > vswapper 88s; ballooning alone is counterproductive because \
     balloon sizes lag the load"
  in
  {
    id = "fig4";
    title;
    paper_claim;
    run = (fun ~scale -> Exp.header ~id:"fig4" ~title ~paper_claim (run ~scale));
  }
