(* Shared runner for Figures 5 and 11: pbzip2 inside a 512 MB guest whose
   actual memory allocation sweeps downward. *)

let configs =
  [ Exp.Baseline; Exp.Mapper_only; Exp.Vswapper_full; Exp.Balloon_baseline ]

type out = {
  runtime_s : float option;  (* None = OOM-killed *)
  disk_ops : int;
  written_sectors : int;
  pages_scanned : int;
}

let run_point ~scale kind ~actual_mb =
  let guest_mb = Exp.mb scale 512 in
  let input_mb = Exp.mb scale 192 in
  let limit_mb = Exp.mb scale actual_mb in
  let workload =
    Workloads.Pbzip.workload ~threads:8 ~compute_us_per_page:400
      ~anon_mb_per_thread:(Exp.scaled_int scale 8 ~min:2)
      ~queue_mb:(Exp.scaled_int scale 48 ~min:12)
      ~input_mb ()
  in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      vcpus = 8;
      resident_limit_mb = Some limit_mb;
      balloon_static_mb = (if Exp.ballooned kind then Some limit_mb else None);
      warm_all = true;
      data_mb = input_mb + (input_mb / 4) + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3;
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  (if Sys.getenv_opt "VSWAP_DEBUG" <> None then
     Printf.eprintf "point %s mem=%d runtime=%s oomed=%b kills=%d\n%!"
       (Exp.config_name kind) actual_mb
       (match out.Exp.runtime_s with Some v -> string_of_float v | None -> "-")
       out.Exp.oomed out.Exp.stats.Metrics.Stats.oom_kills);
  {
    runtime_s = out.Exp.runtime_s;
    disk_ops = out.Exp.stats.Metrics.Stats.disk_ops;
    written_sectors = out.Exp.stats.Metrics.Stats.swap_sectors_written;
    pages_scanned = out.Exp.stats.Metrics.Stats.pages_scanned;
  }

(* Fan the whole configs x mems grid out over the shared pool in one
   submission; see Metis_sweep.sweep for the shape. *)
let sweep ~scale mems =
  let points =
    List.concat_map (fun kind -> List.map (fun m -> (kind, m)) mems) configs
  in
  let outs =
    Exp.shard (fun (kind, m) -> run_point ~scale kind ~actual_mb:m) points
  in
  List.map2
    (fun kind row -> (kind, row))
    configs
    (Exp.group (List.length mems) outs)

let render ~title ~mems ~panels results =
  let x = List.map (fun m -> string_of_int m ^ "MB") mems in
  let panel (name, f) =
    Metrics.Table.render_series ~title:name ~x_label:"actual-mem" ~x
      ~cols:
        (List.map
           (fun (kind, outs) -> (Exp.config_name kind, List.map f outs))
           results)
  in
  title ^ "\n" ^ String.concat "\n" (List.map panel panels)
