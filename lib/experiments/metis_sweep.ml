(* Shared runner for Figures 4 and 14: N guests running Metis MapReduce
   word count, dispatched 10 seconds apart, under a dynamic balloon
   manager (MOM).  Memory pressure builds as guests pile up. *)

let configs =
  [ Exp.Balloon_baseline; Exp.Baseline; Exp.Vswapper_full; Exp.Balloon_vswapper ]

(* In the dynamic experiments, ballooning means running MOM, not a
   static pre-inflation. *)
let run_point ~scale kind ~n_guests =
  let guest_mb = Exp.mb scale 1024 in
  let input_mb = Exp.mb scale 224 in
  let table_mb = Exp.mb scale 420 in
  let host_mb = Exp.mb scale 4096 in
  let workload =
    Workloads.Metis.workload ~threads:2 ~table_mb
      ~compute_us_per_block:1000 ~input_mb ()
  in
  let guests =
    List.init n_guests (fun i ->
        {
          (Vmm.Config.default_guest ~workload) with
          mem_mb = guest_mb;
          vcpus = 2;
          start_after = Sim.Time.sec (10 * i);
          data_mb = input_mb + 64;
        })
  in
  let manager =
    if Exp.ballooned kind then
      Some
        {
          (* MOM-like cadence: the balloon lags demand by design. *)
          Balloon.Manager.period = Sim.Time.sec 4;
          step_pages = Storage.Geom.pages_of_mb (max 8 (Exp.mb scale 24));
          host_reserve_frames = Storage.Geom.pages_of_mb (Exp.mb scale 256);
          guest_min_pages = Storage.Geom.pages_of_mb (Exp.mb scale 192);
          guest_free_high = 0.25;
          guest_free_low = 0.05;
        }
    else None
  in
  let cfg =
    {
      (Vmm.Config.default ~guests) with
      vs = Exp.vs_of kind;
      host_mem_mb = host_mb;
      host_swap_mb = 4 * host_mb;
      manager;
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  let finished =
    Array.to_list out.Exp.per_guest_s |> List.filter_map (fun x -> x)
  in
  if finished = [] then None
  else
    Some (List.fold_left ( +. ) 0.0 finished /. float_of_int (List.length finished))

(* Every (config, n_guests) machine run is independent, so the whole
   grid fans out over the shared pool in one submission — the sweep's
   critical path drops from configs x points serial runs to roughly the
   longest single machine run.  [Exp.shard] keeps submission order, and
   [Exp.group] undoes the configs-major flattening, so the rendered
   series are identical to the old nested loops. *)
let sweep ~scale ns =
  let points =
    List.concat_map (fun kind -> List.map (fun n -> (kind, n)) ns) configs
  in
  let outs =
    Exp.shard (fun (kind, n) -> run_point ~scale kind ~n_guests:n) points
  in
  List.map2 (fun kind row -> (kind, row)) configs (Exp.group (List.length ns) outs)
