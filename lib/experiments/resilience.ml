(* Resilience: throughput and failure containment under deterministic
   disk-fault injection.  Not a figure of the paper — a robustness sweep
   over the same iterated-sysbench setup as Figure 9, comparing baseline
   and vswapper as the injected fault rate rises.  Transient errors are
   retried with backoff inside the host; media errors (1% of the rate)
   and exhausted retries abandon the guest instead of crashing the
   sweep, so killed guests surface as missing runtime cells rather than
   a failed experiment. *)

let configs = [ Exp.Baseline; Exp.Vswapper_full ]

(* Per-point fault plan: mostly transient (retryable) errors, a sliver
   of hard media errors, and degraded-latency batches at 5x the error
   rate.  The seed comes from the --fault-seed knob so a sweep is
   reproducible end to end. *)
let plan_of_rate rate =
  if rate <= 0.0 then Faults.Config.none
  else
    Faults.Config.make ~seed:(Exp.fault_seed_knob ())
      ~media_rate:(rate /. 100.) ~transient_rate:rate
      ~degraded_rate:(rate *. 5.) ~degraded_mult:4.0 ()

type point = {
  out : Exp.run_out;
  injected : int;
  retried : int;
  kills : int;
}

let run_point ~scale kind rate =
  let file_mb = Exp.mb scale 200 in
  let guest_mb = Exp.mb scale 512 in
  let limit_mb = Exp.mb scale 100 in
  let workload = Workloads.Sysbench.workload ~iterations:3 ~file_mb () in
  let guest =
    {
      (Vmm.Config.default_guest ~workload) with
      mem_mb = guest_mb;
      resident_limit_mb = Some limit_mb;
      warm_all = true;
      data_mb = file_mb + 64;
    }
  in
  let cfg =
    {
      (Vmm.Config.default ~guests:[ guest ]) with
      vs = Exp.vs_of kind;
      host_mem_mb = guest_mb * 2;
      host_swap_mb = guest_mb * 3 / 2;
      faults = plan_of_rate rate;
    }
  in
  let out = Exp.run_machine (Vmm.Machine.build cfg) in
  let s = out.Exp.stats in
  {
    out;
    injected =
      s.Metrics.Stats.faults_injected_media
      + s.Metrics.Stats.faults_injected_transient;
    retried = s.Metrics.Stats.fault_retries;
    kills = s.Metrics.Stats.fault_guest_kills;
  }

let run ~scale =
  let rates =
    let r = Exp.fault_rate_knob () in
    if r > 0.0 then [ 0.0; r ] else [ 0.0; 1e-4; 1e-3; 5e-3 ]
  in
  let points =
    List.concat_map (fun kind -> List.map (fun r -> (kind, r)) rates) configs
  in
  let results =
    Exp.shard (fun (kind, rate) -> run_point ~scale kind rate) points
    |> Exp.group (List.length rates)
    |> List.map2 (fun kind row -> (kind, row)) configs
  in
  let x = List.map (Printf.sprintf "%g") rates in
  let col f =
    List.map
      (fun (kind, row) -> (Exp.config_name kind, List.map f row))
      results
  in
  let panel title f =
    Metrics.Table.render_series ~title ~x_label:"rate" ~x ~cols:(col f)
  in
  String.concat "\n"
    [
      panel
        "(a) runtime [s] -- degrades gracefully with fault rate; blank = \
         guest abandoned"
        (fun p -> p.out.Exp.runtime_s);
      panel "(b) injected I/O errors [count]" (fun p ->
          Some (float_of_int p.injected));
      panel "(c) transparent retries [count]" (fun p ->
          Some (float_of_int p.retried));
      panel "(d) guests killed [count] -- failures contained per guest"
        (fun p -> Some (float_of_int p.kills));
    ]

let exp : Exp.t =
  let title = "Fault injection: graceful degradation of the swap stack" in
  let paper_claim =
    "not in the paper: deterministic disk-fault sweep; transient errors \
     are retried transparently, media errors and retry exhaustion \
     abandon only the affected guest, and the sweep itself never fails"
  in
  {
    id = "resilience";
    title;
    paper_claim;
    run =
      (fun ~scale ->
        Exp.header ~id:"resilience" ~title ~paper_claim (run ~scale));
  }
