(** Background swap scrubber.

    A clock-rate scan over the host swap area issuing low-priority
    verify reads of allocated slots through the tier composite, so
    latent media errors surface before a guest faults on them; damaged
    live slots are repaired by relocation ({!Hostmm.relocate_slot},
    passed in as [relocate]).  Repairs are budgeted per full pass so
    scrubbing never turns into a write storm, and "low priority" is
    enforced as back-pressure: a bounded window of outstanding verify
    reads, pumped on completion — a rate the backends cannot absorb
    degrades instead of growing the disk queue behind foreground
    faults.  Scan order is slot order, a single wrapping cursor —
    deterministic at any [--jobs] width because every step runs in
    virtual time. *)

type t

(** [start ~engine ~stats ~swap ~tiers ~relocate ~rate ~repair_budget]
    arms the scan at [rate] slot positions per simulated second
    (examined in ~10 ms chunks), verifying allocated slots and calling
    [relocate] on media-damaged ones while the per-pass [repair_budget]
    lasts.  Callers gate on [rate > 0] — a disabled scrubber should
    schedule nothing. *)
val start :
  engine:Sim.Engine.t ->
  stats:Metrics.Stats.t ->
  swap:Storage.Swap_area.t ->
  tiers:Storage.Tiers.t ->
  relocate:(int -> bool) ->
  rate:int ->
  repair_budget:int ->
  t

(** [stop t] cancels the scan at the next tick (used by tests that
    drain the engine to quiescence). *)
val stop : t -> unit
