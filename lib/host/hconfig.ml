type t = {
  total_frames : int;
  low_watermark_frames : int;
  high_watermark_frames : int;
  page_cluster : int;
  image_readahead_pages : int;
  named_preference : bool;
  reclaim_batch : int;
  hv_pages_per_guest : int;
  hv_touch_per_vio : int;
  hv_touch_per_fault : int;
  hv_refault_us : int;
  minor_fault_us : int;
  major_fault_us : int;
  cow_exit_us : int;
  mapper_map_page_us : int;
  emulated_write_us : int;
  vio_overhead_us : int;
  writeback_throttle_sectors : int;
  writeback_throttle_us : int;
  reclaim_page_us : float;
  io_retry_limit : int;
  io_retry_base_us : int;
  io_error_budget : int;
  max_inflight_faults : int;
  scrub_rate_pages_s : int;
  scrub_repair_budget : int;
  qos_rate : int;
  qos_burst : int;
}

let default =
  {
    total_frames = Storage.Geom.pages_of_mb 1024;
    low_watermark_frames = 64;
    high_watermark_frames = 128;
    page_cluster = 3;
    image_readahead_pages = 32;
    named_preference = true;
    reclaim_batch = 32;
    hv_pages_per_guest = 64;
    hv_touch_per_vio = 2;
    hv_touch_per_fault = 1;
    hv_refault_us = 80;
    minor_fault_us = 1;
    major_fault_us = 4;
    cow_exit_us = 2;
    mapper_map_page_us = 12;
    emulated_write_us = 2;
    vio_overhead_us = 12;
    writeback_throttle_sectors = 49_152; (* 24 MiB of pending evictions *)
    writeback_throttle_us = 250;
    reclaim_page_us = 0.15;
    io_retry_limit = 4;
    io_retry_base_us = 500;
    io_error_budget = 256;
    max_inflight_faults = 0;
    scrub_rate_pages_s = 0;
    scrub_repair_budget = 8;
    qos_rate = 0;
    qos_burst = 32;
  }

let with_memory_mb t mb =
  let frames = Storage.Geom.pages_of_mb mb in
  let low = max 32 (frames * 6 / 1000) in
  let high = max 64 (frames * 12 / 1000) in
  {
    t with
    total_frames = frames;
    low_watermark_frames = low;
    high_watermark_frames = high;
  }

let workstation_flavour t =
  { t with named_preference = false; page_cluster = 0 }
