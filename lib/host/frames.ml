(* Flat struct-of-arrays frame table.  All per-frame state lives in
   packed int arrays / flag bytes indexed by the frame number, and the
   LRU links are slots of a shared {!Mem.Flru} arena keyed by the same
   frame number — so the whole metadata plane for a frame is a handful
   of unboxed loads, and churning a frame through fault-in/evict cycles
   allocates nothing.

   Packing:
   - [flags] byte: bit0 named, bit1 referenced, bits2-3 owner tag
     (0 free / 1 guest page / 2 hv page), bits4-5 content tag
     (0 zero / 1 anon / 2 block).
   - [owner_data]: [guest lsl owner_bits lor payload] where payload is
     the gpa (guest page) or the hv-page index.
   - [c_main]: anon generation, or the block number of block content.
   - [c_disk] / [c_version]: the remaining block-content fields.
   - [backing]: swap-cache slot, or -1 for none. *)

type owner =
  | Free
  | Guest_page of { guest : int; gpa : int }
  | Hv_page of { guest : int; idx : int }

let owner_bits = 40
let owner_mask = (1 lsl owner_bits) - 1

(* flag-byte layout *)
let f_named = 0x01
let f_referenced = 0x02
let tag_free = 0x00
let tag_guest = 0x04
let tag_hv = 0x08
let otag_mask = 0x0c
let ctag_zero = 0x00
let ctag_anon = 0x10
let ctag_block = 0x20
let ctag_mask = 0x30

type t = {
  flags : Bytes.t;
  owner_data : int array;
  c_main : int array;
  c_disk : int array;
  c_version : int array;
  backing : int array;
  arena : Mem.Flru.arena;
  free_stack : int array;
  mutable nfree : int;
}

let create ~nframes =
  if nframes <= 0 then invalid_arg "Frames.create: nframes must be positive";
  (* Stack ordered so the first pops return frames 0, 1, 2, ... —
     the same allocation order as the original list-based free list. *)
  let free_stack = Array.init nframes (fun i -> nframes - 1 - i) in
  {
    flags = Bytes.make nframes '\000';
    owner_data = Array.make nframes 0;
    c_main = Array.make nframes 0;
    c_disk = Array.make nframes 0;
    c_version = Array.make nframes 0;
    backing = Array.make nframes (-1);
    arena = Mem.Flru.arena ~nodes:nframes ();
    free_stack;
    nfree = nframes;
  }

let nframes t = Bytes.length t.flags
let nfree t = t.nfree
let arena t = t.arena
let flag_byte t f = Char.code (Bytes.unsafe_get t.flags f)

let set_flag_bits t f ~mask bits =
  Bytes.unsafe_set t.flags f
    (Char.unsafe_chr (flag_byte t f land lnot mask lor bits))

let alloc t =
  if t.nfree = 0 then None
  else begin
    t.nfree <- t.nfree - 1;
    Some t.free_stack.(t.nfree)
  end

let is_free t f = flag_byte t f land otag_mask = tag_free

let release t f =
  if is_free t f then
    invalid_arg (Printf.sprintf "Frames.release: frame %d is free" f);
  Bytes.unsafe_set t.flags f '\000';
  t.backing.(f) <- -1;
  t.free_stack.(t.nfree) <- f;
  t.nfree <- t.nfree + 1

let put_back t f =
  if not (is_free t f) then
    invalid_arg (Printf.sprintf "Frames.put_back: frame %d is installed" f);
  t.free_stack.(t.nfree) <- f;
  t.nfree <- t.nfree + 1

(* Boxed views, for callers off the hot path. *)
let owner t f =
  let d = t.owner_data.(f) in
  match flag_byte t f land otag_mask with
  | 0x04 -> Guest_page { guest = d lsr owner_bits; gpa = d land owner_mask }
  | 0x08 -> Hv_page { guest = d lsr owner_bits; idx = d land owner_mask }
  | _ -> Free

let set_owner t f o =
  match o with
  | Free -> set_flag_bits t f ~mask:otag_mask tag_free
  | Guest_page { guest; gpa } ->
      set_flag_bits t f ~mask:otag_mask tag_guest;
      t.owner_data.(f) <- (guest lsl owner_bits) lor gpa
  | Hv_page { guest; idx } ->
      set_flag_bits t f ~mask:otag_mask tag_hv;
      t.owner_data.(f) <- (guest lsl owner_bits) lor idx

(* Unboxed owner views: kind 0 = free, 1 = guest page, 2 = hv page. *)
let owner_kind t f = (flag_byte t f land otag_mask) lsr 2
let owner_guest t f = t.owner_data.(f) lsr owner_bits
let owner_payload t f = t.owner_data.(f) land owner_mask

let set_guest_owner t f ~guest ~gpa =
  set_flag_bits t f ~mask:otag_mask tag_guest;
  t.owner_data.(f) <- (guest lsl owner_bits) lor gpa

let set_hv_owner t f ~guest ~idx =
  set_flag_bits t f ~mask:otag_mask tag_hv;
  t.owner_data.(f) <- (guest lsl owner_bits) lor idx

let content t f =
  match flag_byte t f land ctag_mask with
  | 0x10 -> Storage.Content.Anon t.c_main.(f)
  | 0x20 ->
      Storage.Content.Block
        { disk = t.c_disk.(f); block = t.c_main.(f); version = t.c_version.(f) }
  | _ -> Storage.Content.Zero

let set_content t f c =
  match c with
  | Storage.Content.Zero -> set_flag_bits t f ~mask:ctag_mask ctag_zero
  | Storage.Content.Anon g ->
      set_flag_bits t f ~mask:ctag_mask ctag_anon;
      t.c_main.(f) <- g
  | Storage.Content.Block { disk; block; version } ->
      set_flag_bits t f ~mask:ctag_mask ctag_block;
      t.c_main.(f) <- block;
      t.c_disk.(f) <- disk;
      t.c_version.(f) <- version

let named t f = flag_byte t f land f_named <> 0

let set_named t f b =
  set_flag_bits t f ~mask:f_named (if b then f_named else 0)

let referenced t f = flag_byte t f land f_referenced <> 0

let set_referenced t f b =
  set_flag_bits t f ~mask:f_referenced (if b then f_referenced else 0)

let swap_backing t f = if t.backing.(f) < 0 then None else Some t.backing.(f)

let set_swap_backing t f b =
  t.backing.(f) <- (match b with None -> -1 | Some s -> s)

let backing_slot t f = t.backing.(f)
let set_backing_slot t f s = t.backing.(f) <- s
