type owner =
  | Free
  | Guest_page of { guest : int; gpa : int }
  | Hv_page of { guest : int; idx : int }

type t = {
  owners : owner array;
  contents : Storage.Content.t array;
  named_flags : Bytes.t;
  referenced_flags : Bytes.t;
  nodes : int Mem.Lru.node array;
  swap_backings : int option array;
  mutable free_list : int list;
  mutable nfree : int;
}

let create ~nframes =
  if nframes <= 0 then invalid_arg "Frames.create: nframes must be positive";
  let free_list = List.init nframes (fun i -> i) in
  {
    owners = Array.make nframes Free;
    contents = Array.make nframes Storage.Content.Zero;
    named_flags = Bytes.make nframes '\000';
    referenced_flags = Bytes.make nframes '\000';
    nodes = Array.init nframes Mem.Lru.node;
    swap_backings = Array.make nframes None;
    free_list;
    nfree = nframes;
  }

let nframes t = Array.length t.owners
let nfree t = t.nfree

let alloc t =
  match t.free_list with
  | [] -> None
  | f :: rest ->
      t.free_list <- rest;
      t.nfree <- t.nfree - 1;
      Some f

let release t f =
  (match t.owners.(f) with
  | Free -> invalid_arg (Printf.sprintf "Frames.release: frame %d is free" f)
  | Guest_page _ | Hv_page _ -> ());
  t.owners.(f) <- Free;
  t.contents.(f) <- Storage.Content.Zero;
  t.swap_backings.(f) <- None;
  Bytes.set t.named_flags f '\000';
  Bytes.set t.referenced_flags f '\000';
  t.free_list <- f :: t.free_list;
  t.nfree <- t.nfree + 1

let put_back t f =
  (match t.owners.(f) with
  | Free -> ()
  | Guest_page _ | Hv_page _ ->
      invalid_arg (Printf.sprintf "Frames.put_back: frame %d is installed" f));
  t.free_list <- f :: t.free_list;
  t.nfree <- t.nfree + 1

let owner t f = t.owners.(f)
let set_owner t f o = t.owners.(f) <- o
let content t f = t.contents.(f)
let set_content t f c = t.contents.(f) <- c
let named t f = Bytes.get t.named_flags f <> '\000'
let set_named t f b = Bytes.set t.named_flags f (if b then '\001' else '\000')
let referenced t f = Bytes.get t.referenced_flags f <> '\000'

let set_referenced t f b =
  Bytes.set t.referenced_flags f (if b then '\001' else '\000')

let swap_backing t f = t.swap_backings.(f)
let set_swap_backing t f b = t.swap_backings.(f) <- b
let node t f = t.nodes.(f)
