(** Per-guest memory control group: the four Linux-style LRU lists
    (anonymous/file x active/inactive), a resident-page count and an
    optional resident limit (the paper constrains guest memory with
    cgroups, Section 5).

    The lists are flat {!Mem.Flru} lists over a caller-supplied arena,
    and a "node" is just the arena node id (the frame number on the
    host side, the gpa on the guest side) — insertion, removal and
    promotion are allocation-free int-array link updates.

    Pages enter the inactive list of their type; a second reference
    promotes them to active during reclaim scans.  Reclaim pops from the
    inactive tails, file pages first when the host prefers named pages. *)

type list_id = Anon_active | Anon_inactive | File_active | File_inactive

type t

(** [create ~arena ~limit_frames] makes an empty cgroup whose lists
    draw nodes from [arena]; [limit_frames = None] means unlimited
    (global watermarks still apply). *)
val create : arena:Mem.Flru.arena -> limit_frames:int option -> t

val limit : t -> int option
val set_limit : t -> int option -> unit

(** [resident t] is the number of frames currently charged to the group. *)
val resident : t -> int

(** [over_limit t] is how many frames above its limit the group is. *)
val over_limit : t -> int

(** [insert t id node] charges a frame and places it at the MRU end of
    list [id].  The node must be detached. *)
val insert : t -> list_id -> int -> unit

(** [remove t node] detaches a charged frame (uncharging it).  The node
    must currently be in one of this group's lists. *)
val remove : t -> int -> unit

(** [move t id node] repositions a charged frame to the MRU end of [id]
    (e.g. inactive -> active promotion, or named -> anon retyping). *)
val move : t -> list_id -> int -> unit

(** [tail t id] is the LRU frame of list [id], if any. *)
val tail : t -> list_id -> int option

(** [pop t id] removes and returns the LRU frame of list [id]. *)
val pop : t -> list_id -> int option

val length : t -> list_id -> int

(** [inactive_low t ~file] tests whether the inactive list of the given
    type is small relative to its active list, signalling that reclaim
    should deactivate some active pages (Linux's inactive_is_low). *)
val inactive_low : t -> file:bool -> bool
