(** Hypervisor-side tunables and cost model.

    All CPU-side costs are in microseconds; they are calibrated so that
    the simulated testbed behaves like the paper's Dell R420 (Section 5).
    Disk costs live in {!Storage.Disk.config}. *)

type t = {
  total_frames : int;  (** host physical memory, in pages *)
  low_watermark_frames : int;  (** direct reclaim triggers below this *)
  high_watermark_frames : int;  (** reclaim refills free frames up to this *)
  page_cluster : int;
      (** log2 of the swap readahead cluster (Linux vm.page-cluster); 3
          means 8-page clusters *)
  image_readahead_pages : int;
      (** fault-time readahead window when the Mapper refetches named
          pages from the disk image *)
  named_preference : bool;
      (** reclaim prefers file-backed pages over anonymous ones, like
          Linux; turning this off is the D3 ablation *)
  reclaim_batch : int;  (** pages reclaimed per direct-reclaim episode *)
  hv_pages_per_guest : int;
      (** named pages of the hosted hypervisor (QEMU) serving each guest;
          the false-page-anonymity substrate *)
  hv_touch_per_vio : int;  (** hv pages touched by each virtual I/O *)
  hv_touch_per_fault : int;  (** hv pages touched by each major fault *)
  (* CPU-side costs, microseconds. *)
  hv_refault_us : int;
      (** cost of refaulting an evicted hypervisor page (usually still in
          the host's own file cache, so no disk read is charged) *)
  minor_fault_us : int;
  major_fault_us : int;  (** CPU part; disk latency comes on top *)
  cow_exit_us : int;  (** write to a present named page (Mapper COW) *)
  mapper_map_page_us : int;
      (** per-page cost of the Mapper's mmap+ioctl install path (the
          paper attributes VSwapper's residual slowdown to it) *)
  emulated_write_us : int;  (** Preventer per-store emulation cost *)
  vio_overhead_us : int;  (** exit + QEMU dispatch per virtual I/O req *)
  writeback_throttle_sectors : int;
      (** buffered eviction writes beyond this pace the allocator *)
  writeback_throttle_us : int;  (** per-allocation pacing delay when over *)
  reclaim_page_us : float;  (** CPU cost per page scanned by reclaim *)
  (* Typed I/O error handling (robustness PR). *)
  io_retry_limit : int;
      (** resubmissions of a transiently failed read before giving up *)
  io_retry_base_us : int;
      (** backoff before the first retry; doubles per attempt *)
  io_error_budget : int;
      (** per-guest cap on retries; exhausted => the guest is killed *)
  max_inflight_faults : int;
      (** per-guest bound on concurrently in-flight target faults; starts
          beyond it are queued and released as completions drain.  0 means
          unbounded (the default).  Prefetch markers never count. *)
  (* Degraded-media survival layer (robustness PR). *)
  scrub_rate_pages_s : int;
      (** background scrubber scan rate in allocated slots verified per
          simulated second; 0 disables the scrubber (the default) *)
  scrub_repair_budget : int;
      (** relocations the scrubber may perform per full pass over the
          swap area, so repair traffic cannot starve foreground I/O *)
  qos_rate : int;
      (** per-guest token-bucket refill rate, swap-in faults per
          simulated second; 0 disables QoS admission (the default) *)
  qos_burst : int;
      (** token-bucket depth: faults a guest may issue back-to-back
          before the rate limit bites *)
}

(** Defaults sized for experiments that cap a guest at a few hundred MB;
    [total_frames] and watermarks are meant to be overridden per
    experiment via [with_memory_mb]. *)
val default : t

(** [with_memory_mb t mb] sets [total_frames] and derives watermarks
    (0.6 % / 1.2 % of memory, with sane minima). *)
val with_memory_mb : t -> int -> t

(** "VMware-Workstation flavour" used by the Table 2 reproduction: no
    named preference, single-page swap readahead. *)
val workstation_flavour : t -> t
