(** Host physical frame table, stored struct-of-arrays.

    Each frame records who owns it, what it logically contains, whether
    the host considers it file-backed ("named") and its referenced bit —
    all bit-packed into flat int arrays and a flag byte indexed by the
    frame number, so the fault and reclaim paths never allocate to read
    or update frame metadata.  LRU placement is managed by {!Cgroup};
    the LRU links live in a shared {!Mem.Flru} arena whose node ids are
    the frame numbers themselves. *)

type owner =
  | Free
  | Guest_page of { guest : int; gpa : int }
  | Hv_page of { guest : int; idx : int }
      (** a page of the hosted hypervisor (QEMU) serving [guest] *)

type t

val create : nframes:int -> t
val nframes : t -> int
val nfree : t -> int

(** The shared LRU arena; {!Cgroup.create} lists draw nodes from it. *)
val arena : t -> Mem.Flru.arena

(** [alloc t] takes a frame off the free list.  The caller must have
    ensured free frames exist (reclaim is the caller's job).  The frame
    comes back with [owner = Free] still set; callers fill it in. *)
val alloc : t -> int option

(** [release t f] resets [f]'s metadata and returns it to the free
    list.  The frame must not be [Free] already (and the caller must
    have detached it from any LRU list). *)
val release : t -> int -> unit

(** [put_back t f] returns a frame obtained from [alloc] but never
    installed (owner still [Free]) straight to the free list; raises if
    the frame has an owner (use [release] for installed frames). *)
val put_back : t -> int -> unit

val owner : t -> int -> owner
(** Boxed view of the owner; allocates for non-free frames — hot paths
    use {!owner_kind}/{!owner_guest}/{!owner_payload} instead. *)

val set_owner : t -> int -> owner -> unit

val owner_kind : t -> int -> int
(** 0 = free, 1 = guest page, 2 = hv page; allocation-free. *)

val owner_guest : t -> int -> int
(** Owning guest id; meaningful only when [owner_kind] is non-zero. *)

val owner_payload : t -> int -> int
(** The gpa (guest page) or hv-page index; meaningful only when
    [owner_kind] is non-zero. *)

val set_guest_owner : t -> int -> guest:int -> gpa:int -> unit
(** Unboxed [set_owner (Guest_page _)]. *)

val set_hv_owner : t -> int -> guest:int -> idx:int -> unit
(** Unboxed [set_owner (Hv_page _)]. *)

val content : t -> int -> Storage.Content.t
val set_content : t -> int -> Storage.Content.t -> unit
val named : t -> int -> bool
val set_named : t -> int -> bool -> unit
val referenced : t -> int -> bool
val set_referenced : t -> int -> bool -> unit

(** Swap-cache backing: the still-allocated swap slot holding an
    identical copy of this (clean, anonymous) frame, if any.  Lets
    eviction drop the frame without rewriting it. *)
val swap_backing : t -> int -> int option

val set_swap_backing : t -> int -> int option -> unit

val backing_slot : t -> int -> int
(** Unboxed {!swap_backing}: the slot, or -1 for none. *)

val set_backing_slot : t -> int -> int -> unit
(** Unboxed {!set_swap_backing}; -1 clears. *)
