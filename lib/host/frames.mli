(** Host physical frame table.

    Each frame records who owns it, what it logically contains, whether
    the host considers it file-backed ("named") and its referenced bit.
    LRU placement is managed by {!Cgroup}; the per-frame LRU node lives
    here so a frame can move between lists in O(1). *)

type owner =
  | Free
  | Guest_page of { guest : int; gpa : int }
  | Hv_page of { guest : int; idx : int }
      (** a page of the hosted hypervisor (QEMU) serving [guest] *)

type t

val create : nframes:int -> t
val nframes : t -> int
val nfree : t -> int

(** [alloc t] takes a frame off the free list.  The caller must have
    ensured free frames exist (reclaim is the caller's job).  The frame
    comes back with [owner = Free] still set; callers fill it in. *)
val alloc : t -> int option

(** [release t f] detaches [f] from any LRU list and returns it to the
    free list.  The frame must not be [Free] already. *)
val release : t -> int -> unit

(** [put_back t f] returns a frame obtained from [alloc] but never
    installed (owner still [Free]) straight to the free list; raises if
    the frame has an owner (use [release] for installed frames). *)
val put_back : t -> int -> unit

val owner : t -> int -> owner
val set_owner : t -> int -> owner -> unit
val content : t -> int -> Storage.Content.t
val set_content : t -> int -> Storage.Content.t -> unit
val named : t -> int -> bool
val set_named : t -> int -> bool -> unit
val referenced : t -> int -> bool
val set_referenced : t -> int -> bool -> unit

(** Swap-cache backing: the still-allocated swap slot holding an
    identical copy of this (clean, anonymous) frame, if any.  Lets
    eviction drop the frame without rewriting it. *)
val swap_backing : t -> int -> int option

val set_swap_backing : t -> int -> int option -> unit

(** [node t f] is the frame's LRU node (carries the frame id). *)
val node : t -> int -> int Mem.Lru.node
