type list_id = Anon_active | Anon_inactive | File_active | File_inactive

type t = {
  anon_active : Mem.Flru.t;
  anon_inactive : Mem.Flru.t;
  file_active : Mem.Flru.t;
  file_inactive : Mem.Flru.t;
  mutable limit : int option;
  mutable resident : int;
}

let create ~arena ~limit_frames =
  {
    anon_active = Mem.Flru.list arena;
    anon_inactive = Mem.Flru.list arena;
    file_active = Mem.Flru.list arena;
    file_inactive = Mem.Flru.list arena;
    limit = limit_frames;
    resident = 0;
  }

let list t = function
  | Anon_active -> t.anon_active
  | Anon_inactive -> t.anon_inactive
  | File_active -> t.file_active
  | File_inactive -> t.file_inactive

let limit t = t.limit
let set_limit t l = t.limit <- l
let resident t = t.resident

let over_limit t =
  match t.limit with None -> 0 | Some l -> max 0 (t.resident - l)

let insert t id node =
  Mem.Flru.push_front (list t id) node;
  t.resident <- t.resident + 1

let remove_from_any t node =
  let try_list l =
    if Mem.Flru.mem l node then begin
      Mem.Flru.remove l node;
      true
    end
    else false
  in
  if
    try_list t.anon_active || try_list t.anon_inactive
    || try_list t.file_active || try_list t.file_inactive
  then ()
  else invalid_arg "Cgroup.remove: node not in this group"

let remove t node =
  remove_from_any t node;
  t.resident <- t.resident - 1

let move t id node =
  remove_from_any t node;
  Mem.Flru.push_front (list t id) node

let tail t id = Mem.Flru.peek_back (list t id)
let pop t id = Mem.Flru.pop_back (list t id)
let length t id = Mem.Flru.length (list t id)

let inactive_low t ~file =
  let active, inactive =
    if file then (t.file_active, t.file_inactive)
    else (t.anon_active, t.anon_inactive)
  in
  (* Keep roughly a 1:1 active:inactive balance, like Linux does for
     small memory sizes. *)
  Mem.Flru.length inactive < Mem.Flru.length active
