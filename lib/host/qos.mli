(** Per-guest swap-in I/O QoS: token-bucket admission in front of the
    disk queues, drained deficit-round-robin across guests.

    Each guest holds a bucket of [burst] tokens refilled at [rate]
    tokens per simulated second (integer micro-token arithmetic, exact
    in virtual microseconds).  A fault that finds a token — and no
    earlier parked fault of the same guest — runs immediately;
    otherwise it parks on the guest's FIFO and is released by an
    engine-timer drain that sweeps the guests round-robin, one token's
    worth each, from a rotating start position.  One guest thrashing a
    degraded region therefore exhausts its own bucket and queues on
    itself, while its neighbours' faults keep passing at full speed.

    All state advances in virtual time, so the admission schedule is
    deterministic at any [--jobs] width. *)

type t

(** [create ~engine ~stats ~rate ~burst] builds the admission layer;
    buckets materialize per guest on first sight, initially full
    ([burst] tokens), refilling at [rate] tokens per simulated second.
    Callers gate on [rate > 0] themselves — a disabled QoS layer should
    be no layer at all. *)
val create :
  engine:Sim.Engine.t ->
  stats:Metrics.Stats.t ->
  rate:int ->
  burst:int ->
  t

(** [admit t ~gid thunk] runs [thunk] now if guest [gid] holds a token
    and has nothing parked, else parks it (counted in [qos_throttled];
    the park duration accumulates into [qos_throttle_wait_us] when it
    is released). *)
val admit : t -> gid:int -> (unit -> unit) -> unit

(** Whole tokens currently in [gid]'s bucket (after any pending refill
    is accounted at the next admission — reads do not refill). *)
val tokens : t -> gid:int -> int

(** Parked faults on [gid]'s queue. *)
val queued : t -> gid:int -> int
