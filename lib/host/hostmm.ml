module Content = Storage.Content
module Mapper = Vswapper.Mapper
module Preventer = Vswapper.Preventer
module Itbl = Mem.Itbl

type guest_id = int

type page_state = Not_backed | Present | In_swap | In_image | Ballooned

(* EPT entries are packed ints — tag in the low 3 bits, payload (frame
   number, swap slot or image block) above — so a million-page guest's
   page table is one flat [int array] instead of a million boxed
   variants, and every fault-path dispatch is a mask and a shift:

     0 = not backed   1 = ballooned       2 = present (frame)
     3 = in swap (slot)   4 = in image (block)

   Tag values appear as literal patterns in matches below; the
   constructors keep construction sites readable. *)
let e_not_backed = 0
let e_ballooned = 1
let e_present frame = (frame lsl 3) lor 2
let e_in_swap slot = (slot lsl 3) lor 3
let e_in_image block = (block lsl 3) lor 4
let e_arg e = e lsr 3

type guest = {
  gid : int;
  vdisk : Storage.Vdisk.t;
  ept : int array;  (* packed entries; see above *)
  cgroup : Cgroup.t;
  mapper : Mapper.t;
  preventer : Preventer.t;
  hv_frames : int array;  (* frame backing hv page idx, or -1 *)
  mutable hv_rr : int;
  mutable timer : Sim.Engine.event option;
  (* gpa -> write generation of the currently buffered (Preventer)
     write; generations are drawn from [Content.fresh_gen] and thus
     nonzero, so 0 is the table's absent value. *)
  pending_gen : Itbl.t;
  mutable killed : bool;  (* torn down by the host; holds no resources *)
  mutable error_budget : int;  (* remaining I/O retries before giving up *)
  mutable inflight_faults : int;  (* target faults currently on the disk *)
  pending_faults : (unit -> unit) Queue.t;
      (* fault starters deferred by [max_inflight_faults]; drained FIFO as
         in-flight faults complete *)
}

type t = {
  engine : Sim.Engine.t;
  disk : Storage.Disk.t;
  tiers : Storage.Tiers.t;  (* swap traffic routes through this *)
  stats : Metrics.Stats.t;
  config : Hconfig.t;
  vs : Vswapper.Vsconfig.t;
  swap : Storage.Swap_area.t;
  hv_base_sector : int;
  frames : Frames.t;
  mutable guests : guest option array;  (* dense gids index directly *)
  mutable guest_ids : int array;  (* growable; first [nguests] are live *)
  mutable nguests : int;
  slot_owner : Itbl.t;  (* swap slot -> packed (guest, gpa) *)
  (* packed (guest, gpa) -> waiter-list index: continuations waiting for
     an in-flight fault live in [inflight_ws] at the index the slab
     assigned; the flat index table makes the per-fault existence checks
     allocation-free. *)
  inflight_idx : Itbl.t;
  mutable inflight_ws : (unit -> unit) list array;
  inflight_slab : Itbl.Slab.t;
  mutable inflight_targets : int;  (* machine-wide gauge, for the highwater *)
  mutable reclaim_toggle : bool;  (* fairness when named_preference is off *)
  mutable global_rr : int;  (* round-robin cursor for global reclaim *)
  mutable kill_handler : guest_id -> unit;  (* VMM notification on kill *)
  qos : Qos.t option;  (* per-guest swap-in admission; None = disabled *)
  mutable swapin_probe : (gid:int -> us:int -> unit) option;
      (* observer of per-guest swap-in fault latency (QoS wait included) *)
}

let page_sectors = Storage.Geom.sectors_per_page

(* (guest, gpa) pairs are packed into one int so the per-fault table
   lookups ([slot_owner], [inflight_idx]) hash and compare an immediate
   instead of allocating a tuple per probe.  40 bits of gpa covers a
   four-petabyte guest; gids are bounded by the guest table. *)
let owner_gpa_bits = 40
let owner_gpa_mask = (1 lsl owner_gpa_bits) - 1
let owner_key ~gid ~gpa = (gid lsl owner_gpa_bits) lor gpa
let owner_gid key = key lsr owner_gpa_bits
let owner_gpa key = key land owner_gpa_mask

(* Temporary debug hook: called with (gpa, slot) on each swap-out. *)
let debug_evict_hook : (int -> int -> unit) ref = ref (fun _ _ -> ())

let create ~engine ~disk ?tiers ~stats ~config ~vsconfig ~swap ~hv_base_sector
    () =
  (* Swap I/O always goes through a [Tiers]; without an explicit one we
     build the disk-only passthrough, which is call-for-call identical
     to hitting the disk directly. *)
  let tiers =
    match tiers with
    | Some tiers -> tiers
    | None ->
        Storage.Tiers.create ~engine ~stats ~disk ~swap
          Storage.Tiers.disk_only
  in
  {
    engine;
    disk;
    tiers;
    stats;
    config;
    vs = vsconfig;
    swap;
    hv_base_sector;
    frames = Frames.create ~nframes:config.Hconfig.total_frames;
    guests = Array.make 8 None;
    guest_ids = Array.make 8 0;
    nguests = 0;
    slot_owner = Itbl.create ~capacity:4096 ();
    inflight_idx = Itbl.create ~capacity:64 ();
    inflight_ws = Array.make 64 [];
    inflight_slab = Itbl.Slab.create ();
    inflight_targets = 0;
    reclaim_toggle = false;
    global_rr = 0;
    kill_handler = ignore;
    qos =
      (if config.Hconfig.qos_rate > 0 then
         Some
           (Qos.create ~engine ~stats ~rate:config.Hconfig.qos_rate
              ~burst:config.Hconfig.qos_burst)
       else None);
    swapin_probe = None;
  }

let set_kill_handler t f = t.kill_handler <- f

let register_guest t ~vdisk ~gpa_pages ~resident_limit =
  let gid = t.nguests in
  let g =
    {
      gid;
      vdisk;
      ept = Array.make gpa_pages e_not_backed;
      cgroup =
        Cgroup.create ~arena:(Frames.arena t.frames)
          ~limit_frames:resident_limit;
      mapper = Mapper.create ~stats:t.stats ();
      preventer =
        Preventer.create ~stats:t.stats ~window:t.vs.preventer_window
          ~max_buffers:t.vs.preventer_max_buffers;
      hv_frames = Array.make t.config.hv_pages_per_guest (-1);
      hv_rr = 0;
      timer = None;
      pending_gen = Itbl.create ~capacity:64 ();
      killed = false;
      error_budget = t.config.io_error_budget;
      inflight_faults = 0;
      pending_faults = Queue.create ();
    }
  in
  if t.nguests = Array.length t.guests then begin
    let bigger = Array.make (2 * t.nguests) None in
    Array.blit t.guests 0 bigger 0 t.nguests;
    t.guests <- bigger
  end;
  t.guests.(gid) <- Some g;
  if t.nguests = Array.length t.guest_ids then begin
    let bigger = Array.make (2 * t.nguests) 0 in
    Array.blit t.guest_ids 0 bigger 0 t.nguests;
    t.guest_ids <- bigger
  end;
  t.guest_ids.(t.nguests) <- gid;
  t.nguests <- t.nguests + 1;
  gid

let guest t gid =
  match if gid >= 0 && gid < t.nguests then t.guests.(gid) else None with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Hostmm: unknown guest %d" gid)

let set_resident_limit t gid limit = Cgroup.set_limit (guest t gid).cgroup limit

let after t cost_us k = Sim.Engine.run_after t.engine (Sim.Time.us cost_us) k

(* [join t n k] returns a thunk to be invoked [n] times; [k] runs after
   the n-th call.  With [n = 0], [k] is scheduled immediately. *)
let join t n k =
  if n = 0 then begin
    after t 0 k;
    fun () -> ()
  end
  else begin
    let remaining = ref n in
    fun () ->
      decr remaining;
      if !remaining = 0 then k ()
  end

(* In-flight fault registry helpers.  [inflight_add] registers a key and
   returns its waiter-list index; [inflight_take] unregisters it and
   hands back the accumulated waiters. *)
let inflight_mem t key = Itbl.mem t.inflight_idx key

let inflight_add t key =
  let idx = Itbl.Slab.alloc t.inflight_slab in
  if idx >= Array.length t.inflight_ws then begin
    let bigger = Array.make (2 * Array.length t.inflight_ws) [] in
    Array.blit t.inflight_ws 0 bigger 0 (Array.length t.inflight_ws);
    t.inflight_ws <- bigger
  end;
  t.inflight_ws.(idx) <- [];
  Itbl.set t.inflight_idx key idx;
  idx

let inflight_take t key idx =
  Itbl.remove t.inflight_idx key;
  let ws = t.inflight_ws.(idx) in
  t.inflight_ws.(idx) <- [];
  Itbl.Slab.release t.inflight_slab idx;
  ws

(* ------------------------------------------------------------------ *)
(* Reclaim                                                             *)
(* ------------------------------------------------------------------ *)

(* Is writing [content] of [g]'s page to host swap a silent write?  Yes
   when an identical copy already sits in the guest's disk image. *)
let is_silent_write g content =
  match content with
  | Content.Block { disk; block; version } ->
      disk = Storage.Vdisk.id g.vdisk
      && block >= 0
      && block < Storage.Vdisk.nblocks g.vdisk
      && version = Storage.Vdisk.version g.vdisk block
  | Content.Zero | Content.Anon _ -> false

(* Evict one frame: named guest pages are dropped (the Mapper remembers
   where to find them), hypervisor pages are dropped (refetchable),
   everything else goes to host swap — unconditionally written, because
   without EPT dirty bits the host must assume guest pages are dirty.
   Returns [false] — leaving the frame in place — when the page would
   need a swap slot and the swap area is full; callers must then skip
   this frame rather than abort. *)
let evict_frame t frame =
  match Frames.owner_kind t.frames frame with
  | 0 (* free *) -> assert false
  | 2 (* hv page *) ->
      let gid = Frames.owner_guest t.frames frame in
      let idx = Frames.owner_payload t.frames frame in
      let g = guest t gid in
      g.hv_frames.(idx) <- -1;
      Cgroup.remove g.cgroup frame;
      Frames.release t.frames frame;
      true
  | _ (* guest page *) ->
      let gid = Frames.owner_guest t.frames frame in
      let gpa = Frames.owner_payload t.frames frame in
      let g = guest t gid in
      let evicted =
        if Frames.named t.frames frame then begin
          let block = Mapper.tracked_block g.mapper ~gpa in
          if block >= 0 then begin
            assert (
              Storage.Vdisk.version g.vdisk block
              = Mapper.tracked_version g.mapper ~gpa);
            g.ept.(gpa) <- e_in_image block;
            t.stats.mapper_discards <- t.stats.mapper_discards + 1;
            true
          end
          else assert false
        end
        else begin
          let bslot = Frames.backing_slot t.frames frame in
          if bslot >= 0 then begin
            (* Swap cache hit: an identical copy already sits in the
               slot; drop the frame without any I/O. *)
            assert (
              Itbl.find t.slot_owner bslot ~default:(-1)
              = owner_key ~gid ~gpa);
            assert (
              Content.equal
                (Frames.content t.frames frame)
                (Storage.Swap_area.content t.swap bslot));
            g.ept.(gpa) <- e_in_swap bslot;
            true
          end
          else begin
            let content = Frames.content t.frames frame in
            match Storage.Swap_area.alloc t.swap content with
            | None ->
                (* Swap area full: this page cannot be evicted.  The
                   caller degrades (skips anon, prefers named discard)
                   instead of the old fatal failure. *)
                t.stats.swap_full_fallbacks <-
                  t.stats.swap_full_fallbacks + 1;
                false
            | Some slot ->
                !debug_evict_hook gpa slot;
                Itbl.set t.slot_owner slot (owner_key ~gid ~gpa);
                g.ept.(gpa) <- e_in_swap slot;
                t.stats.host_swapouts <- t.stats.host_swapouts + 1;
                t.stats.swap_sectors_written <-
                  t.stats.swap_sectors_written + page_sectors;
                if is_silent_write g content then
                  t.stats.silent_swap_writes <-
                    t.stats.silent_swap_writes + 1;
                (* Fire-and-forget: nobody awaits the swap-out ack, so
                   skip the completion event entirely.  The tier
                   composite picks where the page lands. *)
                Storage.Tiers.swap_out t.tiers ~slot ~queue:0;
                true
          end
        end
      in
      if evicted then begin
        Cgroup.remove g.cgroup frame;
        Frames.release t.frames frame
      end;
      evicted

(* Move pages from the active tail to the inactive head while the
   inactive list is low, clearing referenced bits (shrink_active_list). *)
let refill_inactive t g ~file ~scanned =
  let active = if file then Cgroup.File_active else Cgroup.Anon_active in
  let inactive = if file then Cgroup.File_inactive else Cgroup.Anon_inactive in
  let moved = ref 0 in
  while
    Cgroup.inactive_low g.cgroup ~file
    && Cgroup.length g.cgroup active > 0
    && !moved < t.config.reclaim_batch
  do
    match Cgroup.tail g.cgroup active with
    | None -> moved := t.config.reclaim_batch
    | Some frame ->
        incr scanned;
        incr moved;
        Frames.set_referenced t.frames frame false;
        Cgroup.move g.cgroup inactive frame
  done

(* Shrink one cgroup by up to [target] frames; returns (freed, scanned). *)
let shrink_cgroup t g ~target =
  let freed = ref 0 and scanned = ref 0 in
  let max_scan = (4 * Cgroup.resident g.cgroup) + 64 in
  (* With named preference, scan file pages seven times as often as
     anonymous ones (swappiness-like: under file streaming Linux
     reclaims almost exclusively from the page cache, but never starves
     either list absolutely); without it, alternate. *)
  let rotor = ref 0 in
  let victim_order () =
    incr rotor;
    let file_first =
      if t.config.named_preference then !rotor mod 8 <> 0
      else begin
        t.reclaim_toggle <- not t.reclaim_toggle;
        t.reclaim_toggle
      end
    in
    if file_first then [ Cgroup.File_inactive; Cgroup.Anon_inactive ]
    else [ Cgroup.Anon_inactive; Cgroup.File_inactive ]
  in
  let continue_ = ref true in
  while !continue_ && !freed < target do
    refill_inactive t g ~file:true ~scanned;
    refill_inactive t g ~file:false ~scanned;
    let victim =
      let rec try_lists = function
        | [] -> None
        | id :: rest -> (
            match Cgroup.tail g.cgroup id with
            | Some frame -> Some (id, frame)
            | None -> try_lists rest)
      in
      try_lists (victim_order ())
    in
    match victim with
    | None -> continue_ := false
    | Some (list_id, frame) ->
        incr scanned;
        t.stats.pages_scanned <- t.stats.pages_scanned + 1;
        let forced = !scanned > max_scan in
        let active_of_list =
          match list_id with
          | Cgroup.File_inactive | Cgroup.File_active -> Cgroup.File_active
          | Cgroup.Anon_inactive | Cgroup.Anon_active -> Cgroup.Anon_active
        in
        if Frames.referenced t.frames frame && not forced then begin
          (* Second chance: promote to the active list of its type. *)
          Frames.set_referenced t.frames frame false;
          Cgroup.move g.cgroup active_of_list frame
        end
        else if evict_frame t frame then incr freed
        else begin
          (* Unevictable right now (swap area full): park the page on
             its active list so the scan moves past it; once even
             forced eviction fails there is nothing left to free. *)
          Cgroup.move g.cgroup active_of_list frame;
          if forced then continue_ := false
        end
  done;
  (!freed, !scanned)

(* Make room for [need] frames for guest [g]: first enforce its cgroup
   limit, then the global watermarks (shrinking the largest cgroups).
   Returns the CPU cost in microseconds of the scanning performed. *)
let ensure_frames t g ~need =
  let scanned_total = ref 0 in
  (match Cgroup.limit g.cgroup with
  | Some lim when Cgroup.resident g.cgroup + need > lim ->
      let target =
        Cgroup.resident g.cgroup + need - lim + t.config.reclaim_batch
      in
      let _, scanned = shrink_cgroup t g ~target in
      scanned_total := !scanned_total + scanned
  | Some _ | None -> ());
  if Frames.nfree t.frames < t.config.low_watermark_frames + need then begin
    let goal = t.config.high_watermark_frames + need in
    (* Global reclaim visits cgroups round-robin (like Linux walking
       memcgs), skipping the small ones, so pressure is shared instead of
       convoying on one victim. *)
    let n = t.nguests in
    let consecutive_failures = ref 0 in
    while Frames.nfree t.frames < goal && !consecutive_failures < max 1 n do
      if n = 0 then consecutive_failures := 1
      else begin
        let gid = t.guest_ids.(t.global_rr mod n) in
        t.global_rr <- t.global_rr + 1;
        let victim = guest t gid in
        if Cgroup.resident victim.cgroup * n < t.config.total_frames / 4 then
          incr consecutive_failures
        else begin
          let freed, scanned =
            shrink_cgroup t victim ~target:t.config.reclaim_batch
          in
          scanned_total := !scanned_total + scanned;
          if freed = 0 then incr consecutive_failures
          else consecutive_failures := 0
        end
      end
    done
  end;
  int_of_float
    (Float.round (float_of_int !scanned_total *. t.config.reclaim_page_us))

(* Release the swap-cache slot backing a present frame, if any: called
   whenever the frame's content is about to change, so the stale copy in
   the swap area is never resurrected. *)
let drop_swap_backing t frame =
  let slot = Frames.backing_slot t.frames frame in
  if slot >= 0 then begin
    Frames.set_backing_slot t.frames frame (-1);
    Itbl.remove t.slot_owner slot;
    if Storage.Swap_area.is_allocated t.swap slot then
      Storage.Swap_area.free t.swap slot
  end

(* Drop whatever backs [gpa] — present frame, swap slot, image mapping,
   pending Preventer buffer — leaving the page [e_not_backed].  Used when
   the old content is dead (DMA overwrite, Preventer remap, balloon). *)
let discard_backing t g ~gpa =
  if t.vs.preventer then Preventer.abandon g.preventer ~gpa;
  Itbl.remove g.pending_gen gpa;
  (let e = g.ept.(gpa) in
   match e land 7 with
   | 2 (* present *) ->
       let frame = e_arg e in
       Mapper.untrack g.mapper ~gpa;
       drop_swap_backing t frame;
       Cgroup.remove g.cgroup frame;
       Frames.release t.frames frame
   | 3 (* in swap *) ->
       let slot = e_arg e in
       if Itbl.find t.slot_owner slot ~default:(-1) = owner_key ~gid:g.gid ~gpa
       then begin
         Itbl.remove t.slot_owner slot;
         Storage.Swap_area.free t.swap slot
       end
   | 4 (* in image *) -> Mapper.untrack g.mapper ~gpa
   | 0 (* not backed *) -> ()
   | _ -> invalid_arg "Hostmm.discard_backing: ballooned page");
  g.ept.(gpa) <- e_not_backed

(* ------------------------------------------------------------------ *)
(* Guest teardown and emergency reclaim                                 *)
(* ------------------------------------------------------------------ *)

(* Tear one guest down, releasing everything it holds: frames, swap
   slots, slot-owner entries, Preventer buffers, hypervisor pages.  The
   host's last-resort response to a failing disk or exhausted memory —
   the blast radius is one guest, never the machine. *)
let kill_guest t gid =
  let g = guest t gid in
  if not g.killed then begin
    g.killed <- true;
    t.stats.fault_guest_kills <- t.stats.fault_guest_kills + 1;
    (* Swapped-out pages die with the guest — count them before the
       teardown loop frees their slots (the scrubber's "pages lost"
       panel; everything still present or refetchable is not lost). *)
    Array.iter
      (fun e ->
        if e land 7 = 3 then
          t.stats.fault_pages_lost <- t.stats.fault_pages_lost + 1)
      g.ept;
    (match g.timer with
    | Some ev ->
        Sim.Engine.cancel t.engine ev;
        g.timer <- None
    | None -> ());
    Array.iteri
      (fun gpa e ->
        match e land 7 with
        | 0 (* not backed *) -> ()
        | 1 (* ballooned *) -> g.ept.(gpa) <- e_not_backed
        | _ -> discard_backing t g ~gpa)
      g.ept;
    Array.iteri
      (fun idx frame ->
        if frame >= 0 then begin
          g.hv_frames.(idx) <- -1;
          Cgroup.remove g.cgroup frame;
          Frames.release t.frames frame
        end)
      g.hv_frames;
    Itbl.clear g.pending_gen;
    (* Parked fault starters must not strand their continuations: each
       re-enters the fault path, sees [killed], and resolves inertly.
       Transfer first so a starter cannot mutate the queue mid-drain. *)
    let parked = Queue.create () in
    Queue.transfer g.pending_faults parked;
    Queue.iter (fun start -> start ()) parked;
    t.kill_handler gid
  end

let guest_killed t gid = (guest t gid).killed

(* Last-ditch memory recovery when ordinary reclaim freed nothing (all
   lists empty or unevictable with the swap area full).  Pass 1 steals
   any frame droppable without swap I/O — hypervisor pages, Mapper-named
   pages, swap-cache-backed anon — from every guest.  Pass 2 OOM-kills
   whole guests, largest resident first (preferring a guest other than
   the requester), until [need] frames are free or nobody is left. *)
let emergency_reclaim t ~requester ~need =
  let nframes = Frames.nframes t.frames in
  let frame = ref 0 in
  while Frames.nfree t.frames < need && !frame < nframes do
    (match Frames.owner_kind t.frames !frame with
    | 0 (* free *) -> ()
    | 2 (* hv page *) ->
        if evict_frame t !frame then
          t.stats.emergency_steals <- t.stats.emergency_steals + 1
    | _ (* guest page *) ->
        let droppable =
          Frames.named t.frames !frame
          || Frames.backing_slot t.frames !frame >= 0
        in
        if droppable && evict_frame t !frame then
          t.stats.emergency_steals <- t.stats.emergency_steals + 1);
    incr frame
  done;
  let rec kill_pass () =
    if Frames.nfree t.frames < need then begin
      let best = ref None in
      for i = 0 to t.nguests - 1 do
        let gid = t.guest_ids.(i) in
        let g = guest t gid in
        if (not g.killed) && Cgroup.resident g.cgroup > 0 then begin
          let cand = (gid <> requester, Cgroup.resident g.cgroup, -gid) in
          match !best with
          | None -> best := Some (cand, gid)
          | Some (b, _) -> if cand > b then best := Some (cand, gid)
        end
      done;
      match !best with
      | None -> ()
      | Some (_, gid) ->
          kill_guest t gid;
          kill_pass ()
    end
  in
  kill_pass ()

(* Allocate a frame for guest page [gpa]; returns (frame, reclaim cost).
   When the disk's write buffer is saturated by eviction traffic, the
   allocating context is paced at roughly the media write rate — the
   balance_dirty_pages effect. *)
let alloc_frame t g ~gpa ~content ~named ~active ~referenced =
  let throttle =
    if
      Storage.Disk.buffered_write_sectors t.disk
      > t.config.writeback_throttle_sectors
    then t.config.writeback_throttle_us
    else 0
  in
  let cost = throttle + ensure_frames t g ~need:1 in
  let frame =
    match Frames.alloc t.frames with
    | Some frame -> frame
    | None -> (
        emergency_reclaim t ~requester:g.gid ~need:1;
        match Frames.alloc t.frames with
        | Some frame -> frame
        | None ->
            (* Only reachable with zero usable frames in the whole
               machine (degenerate configuration, not a fault path). *)
            failwith "Hostmm: out of host memory (no frames configured)")
  in
  if g.killed then begin
    (* The emergency path above chose the requester itself as the OOM
       victim; its teardown already ran.  Installing now would resurrect
       a page inside a dead guest and leak the frame forever, so hand
       the frame back instead.  -1 is safe to return: every caller's
       continuation is inert once [killed] is set. *)
    Frames.put_back t.frames frame;
    (-1, cost)
  end
  else begin
    Frames.set_guest_owner t.frames frame ~guest:g.gid ~gpa;
    Frames.set_content t.frames frame content;
    Frames.set_named t.frames frame named;
    Frames.set_referenced t.frames frame referenced;
    let id =
      match (named, active) with
      | true, true -> Cgroup.File_active
      | true, false -> Cgroup.File_inactive
      | false, true -> Cgroup.Anon_active
      | false, false -> Cgroup.Anon_inactive
    in
    Cgroup.insert g.cgroup id frame;
    g.ept.(gpa) <- e_present frame;
    (frame, cost)
  end

(* ------------------------------------------------------------------ *)
(* Hypervisor (QEMU) named pages — the false-anonymity substrate        *)
(* ------------------------------------------------------------------ *)

(* Touch [n] hypervisor pages round-robin; refaults of evicted pages are
   charged [hv_refault_us] each and counted as host-context faults. *)
let hv_touch t g n =
  let cost = ref 0 in
  for _ = 1 to n do
    let idx = g.hv_rr mod t.config.hv_pages_per_guest in
    g.hv_rr <- g.hv_rr + 1;
    let hv_frame = g.hv_frames.(idx) in
    if hv_frame >= 0 then Frames.set_referenced t.frames hv_frame true
    else begin
      t.stats.host_context_faults <- t.stats.host_context_faults + 1;
      t.stats.hypervisor_code_faults <- t.stats.hypervisor_code_faults + 1;
      cost := !cost + t.config.hv_refault_us + ensure_frames t g ~need:1;
      let frame =
        match Frames.alloc t.frames with
        | Some frame -> Some frame
        | None ->
            emergency_reclaim t ~requester:g.gid ~need:1;
            Frames.alloc t.frames
      in
      match frame with
      | None -> failwith "Hostmm: out of host memory (no frames configured)"
      | Some frame when g.killed ->
          (* Emergency reclaim OOM-killed this guest mid-touch: its
             hv_frames were already torn down, so don't repopulate. *)
          Frames.put_back t.frames frame
      | Some frame ->
          Frames.set_hv_owner t.frames frame ~guest:g.gid ~idx;
          Frames.set_content t.frames frame Content.Zero;
          Frames.set_named t.frames frame true;
          Frames.set_referenced t.frames frame true;
          Cgroup.insert g.cgroup Cgroup.File_inactive frame;
          g.hv_frames.(idx) <- frame
    end
  done;
  !cost

(* ------------------------------------------------------------------ *)
(* Fault-in                                                            *)
(* ------------------------------------------------------------------ *)

let count_fault t ~host_context =
  if host_context then
    t.stats.host_context_faults <- t.stats.host_context_faults + 1
  else t.stats.guest_context_faults <- t.stats.guest_context_faults + 1

(* Policy for a failed guest read.  Transient errors are resubmitted
   with exponential backoff while attempts and the guest's error budget
   last; media errors and exhausted retries kill the guest (the host
   cannot fabricate the lost bytes) and then run [give_up] so the
   in-flight fault unwinds instead of hanging its waiters.  [swap_read]
   scopes the media-fault counter to swap-area reads — the only region
   the scrubber patrols, so the catch-rate denominator stays honest. *)
let handle_read_error t g ~swap_read ~err ~attempt ~retry ~give_up =
  match (err : Storage.Disk.error) with
  | Transient
    when attempt < t.config.io_retry_limit
         && g.error_budget > 0
         && not g.killed ->
      g.error_budget <- g.error_budget - 1;
      t.stats.fault_retries <- t.stats.fault_retries + 1;
      after t (t.config.io_retry_base_us lsl attempt) (fun () ->
          if g.killed then give_up () else retry ~attempt:(attempt + 1))
  | Transient ->
      t.stats.fault_retry_exhausted <- t.stats.fault_retry_exhausted + 1;
      kill_guest t g.gid;
      after t 0 give_up
  | Media ->
      (* A guest fault landed on a latent media error: the scrubber's
         miss (it relocates what it finds first). *)
      if swap_read then
        t.stats.fault_media_reads <- t.stats.fault_media_reads + 1;
      kill_guest t g.gid;
      after t 0 give_up

(* Install an anonymous page read back from swap slot [slot], if the
   world still looks like it did at submission time.  [owner] is a packed
   (guest, gpa) key. *)
let install_from_swap t ~slot ~owner ~target =
  let gid = owner_gid owner and gpa = owner_gpa owner in
  let g = guest t gid in
  let still_valid =
    Storage.Swap_area.is_allocated t.swap slot
    && Itbl.find t.slot_owner slot ~default:(-1) = owner
    &&
    let e = g.ept.(gpa) in
    e land 7 = 3 && e_arg e = slot
  in
  if still_valid then begin
    let content = Storage.Swap_area.content t.swap slot in
    (* Linux keeps swapped-in pages in the swap cache (slot retained, so
       a clean re-eviction is free) until the swap area is half full
       (vm_swap_full), after which slots are freed eagerly. *)
    let vm_swap_full =
      2 * Storage.Swap_area.in_use t.swap > Storage.Swap_area.nslots t.swap
    in
    let frame, _ =
      alloc_frame t g ~gpa ~content ~named:false ~active:target
        ~referenced:target
    in
    (* [alloc_frame]'s emergency path may have OOM-killed this very
       guest, releasing the slot along with everything else; touching it
       again would double-free. *)
    if not g.killed then begin
      (* Only the faulting (mapped) page frees its slot under swap
         pressure; readahead pages sit in the swap cache and always keep
         theirs, so unused prefetch never relocates anything. *)
      if target && vm_swap_full then begin
        Storage.Swap_area.free t.swap slot;
        Itbl.remove t.slot_owner slot
      end
      else Frames.set_backing_slot t.frames frame slot;
      t.stats.host_swapins <- t.stats.host_swapins + 1
    end
  end

(* Install a Mapper-tracked page re-read from the disk image. *)
let install_from_image t g ~gpa ~block ~target =
  let still_valid =
    let e = g.ept.(gpa) in
    e land 7 = 4 && e_arg e = block
  in
  if still_valid && Mapper.tracked_block g.mapper ~gpa = block then begin
    assert (
      Mapper.tracked_version g.mapper ~gpa
      = Storage.Vdisk.version g.vdisk block);
    let content = Storage.Vdisk.content g.vdisk block in
    ignore
      (alloc_frame t g ~gpa ~content ~named:true ~active:target
         ~referenced:target);
    t.stats.mapper_refetches <- t.stats.mapper_refetches + 1
  end

(* [fault_in t g ~gpa ~host_context k]: make [gpa] present, charging all
   latencies, then run [k].  [k] itself re-checks presence (the page can
   be re-evicted between the disk completion and the continuation), so
   callers typically pass a retry loop.

   The major-fault path is a completion-callback structure: the disk read
   is enqueued and the machine loop continues; [k] and every piggybacked
   waiter resume from the completion event.  [max_inflight_faults] (when
   nonzero) bounds how many target faults a guest may have on the disk at
   once — starts beyond it are parked in [g.pending_faults] and released
   FIFO as completions drain, modelling a bounded async-page-fault queue
   rather than an infinitely wide one. *)
let rec fault_in t g ~gpa ~host_context k =
  if g.killed then after t 0 k
  else
    match g.ept.(gpa) land 7 with
    | 2 (* present *) -> after t 0 k
    | 1 (* ballooned *) -> invalid_arg "Hostmm.fault_in: ballooned page"
    | 0 (* not backed *) ->
        let _, cost =
          alloc_frame t g ~gpa ~content:Content.Zero ~named:false ~active:true
            ~referenced:true
        in
        after t (t.config.minor_fault_us + cost) k
    | _ (* in swap / in image *) ->
        let key = owner_key ~gid:g.gid ~gpa in
        let widx = Itbl.find t.inflight_idx key ~default:(-1) in
        if widx >= 0 then begin
          (* Piggyback: when the in-flight read lands, try again (the
             retry will hit the fast path if the install succeeded). *)
          t.stats.async_waiter_merges <- t.stats.async_waiter_merges + 1;
          t.inflight_ws.(widx) <-
            (fun () -> fault_in t g ~gpa ~host_context k)
            :: t.inflight_ws.(widx)
        end
        else begin
          let bound = t.config.max_inflight_faults in
          if bound > 0 && g.inflight_faults >= bound then begin
            (* At the in-flight bound: park the start.  The starter
               re-enters [fault_in] from scratch, so any state change
               while parked (page installed by a prefetch, guest killed,
               another fault in flight on the same key) is handled by the
               normal dispatch above. *)
            t.stats.async_faults_deferred <- t.stats.async_faults_deferred + 1;
            Queue.add
              (fun () -> fault_in t g ~gpa ~host_context k)
              g.pending_faults
          end
          else start_fault t g ~gpa ~host_context k
        end

(* Issue the disk read for a target fault that holds an in-flight slot. *)
and start_fault t g ~gpa ~host_context k =
  let key = owner_key ~gid:g.gid ~gpa in
  let widx = inflight_add t key in
  g.inflight_faults <- g.inflight_faults + 1;
  t.inflight_targets <- t.inflight_targets + 1;
  if t.inflight_targets > t.stats.async_inflight_highwater then
    t.stats.async_inflight_highwater <- t.inflight_targets;
  (* Handling a major fault runs hypervisor code. *)
  let hv_cost = hv_touch t g t.config.hv_touch_per_fault in
  let t0 = Sim.Time.to_us (Sim.Engine.now t.engine) in
  let tag0 = g.ept.(gpa) land 7 in
  let finish0 () =
    (match t.swapin_probe with
    | Some probe when tag0 = 3 ->
        (* End-to-end swap-in fault latency, QoS park time included —
           what the guest's thread actually waited. *)
        probe ~gid:g.gid ~us:(Sim.Time.to_us (Sim.Engine.now t.engine) - t0)
    | _ -> ());
    let ws = inflight_take t key widx in
    g.inflight_faults <- g.inflight_faults - 1;
    t.inflight_targets <- t.inflight_targets - 1;
    (match g.ept.(gpa) land 7 with
    | 2 (* present *) -> k ()
    | _ -> fault_in t g ~gpa ~host_context k);
    List.iter (fun w -> w ()) ws;
    (* The freed slot may admit parked starts (of this guest). *)
    drain_pending t g
  in
  let finish () =
    if hv_cost = 0 then finish0 () else after t hv_cost finish0
  in
  let issue () =
    (* Re-read the entry: a QoS-parked fault can find the world changed
       by the time it is released (slot discarded by a DMA overwrite,
       guest killed).  [finish] re-dispatches through [fault_in], which
       handles every state. *)
    if g.killed then finish ()
    else
      let e = g.ept.(gpa) in
      match e land 7 with
      | 3 (* in swap *) ->
          swapin_cluster t g ~gpa ~slot:(e_arg e) ~host_context finish
      | 4 (* in image *) ->
          refetch_image t g ~gpa ~block:(e_arg e) ~host_context finish
      | _ -> finish ()
  in
  match t.qos with
  | Some qos when tag0 = 3 ->
      (* Token-bucket admission applies to swap-in faults: the traffic
         that competes for the (possibly degraded) swap backends. *)
      Qos.admit qos ~gid:g.gid issue
  | _ -> issue ()

(* Release parked fault starts while in-flight capacity lasts.  A popped
   starter that resolves without occupying a slot (page became present,
   piggyback on another key, guest killed) does not stop the drain. *)
and drain_pending t g =
  let bound = t.config.max_inflight_faults in
  while
    (bound = 0 || g.inflight_faults < bound)
    && not (Queue.is_empty g.pending_faults)
  do
    (Queue.pop g.pending_faults) ()
  done

(* Swap-in with cluster readahead: one request covers the naturally
   aligned cluster around [slot]; every slot in it that still backs a
   swapped-out page is installed.  Decayed sequentiality shows up here:
   when neighbouring slots hold unrelated pages, the prefetch wins
   nothing and every page pays a full random read. *)
and swapin_cluster t g ~gpa ~slot ~host_context k =
  count_fault t ~host_context;
  let cluster = max 1 (1 lsl t.config.page_cluster) in
  let s0 = slot - (slot mod cluster) in
  let s_end = min (s0 + cluster) (Storage.Swap_area.nslots t.swap) in
  let neighbours = ref [] in
  for s = s_end - 1 downto s0 do
    if s <> slot then begin
      let owner = Itbl.find t.slot_owner s ~default:(-1) in
      if
        owner >= 0
        && (not (inflight_mem t owner))
        (* One request has one latency model: readahead never spans
           backend tiers (constant-true in passthrough mode). *)
        && Storage.Tiers.same_tier t.tiers slot s
      then begin
        let e = (guest t (owner_gid owner)).ept.(owner_gpa owner) in
        if e land 7 = 3 && e_arg e = s then
          neighbours := (s, owner) :: !neighbours
      end
    end
  done;
  (* Prefetch at most the free-frame headroom beyond the target page. *)
  let headroom = max 0 (Frames.nfree t.frames - 1) in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  let neighbours = take headroom !neighbours in
  let marked =
    List.map (fun (s, owner) -> (s, owner, inflight_add t owner)) neighbours
  in
  let slots = slot :: List.map (fun (s, _) -> s) neighbours in
  let smin = List.fold_left min slot slots in
  let smax = List.fold_left max slot slots in
  let sector = Storage.Swap_area.sector_of_slot t.swap smin in
  let nsectors = (smax - smin + 1) * page_sectors in
  t.stats.swap_sectors_read <-
    t.stats.swap_sectors_read + (List.length slots * page_sectors);
  let finish_neighbours ~install =
    List.iter
      (fun (s, owner, widx) ->
        if install then install_from_swap t ~slot:s ~owner ~target:false;
        let waiters = inflight_take t owner widx in
        List.iter (fun w -> w ()) waiters)
      marked
  in
  let install_target () =
    install_from_swap t ~slot ~owner:(owner_key ~gid:g.gid ~gpa) ~target:true;
    after t t.config.major_fault_us k
  in
  (* Retries cover the faulting page only: the prefetched neighbours are
     best-effort and were already released on the first failure. *)
  let rec retry ~attempt =
    Storage.Tiers.swap_in t.tiers ~slot
      ~sector:(Storage.Swap_area.sector_of_slot t.swap slot)
      ~nsectors:page_sectors ~queue:g.gid ~attempt
      (fun (reply : Storage.Disk.reply) ->
        match reply.result with
        | Ok () -> install_target ()
        | Error err ->
            handle_read_error t g ~swap_read:true ~err ~attempt ~retry
              ~give_up:k)
  in
  Storage.Tiers.swap_in t.tiers ~slot ~sector ~nsectors ~queue:g.gid ~attempt:0
    (fun (reply : Storage.Disk.reply) ->
      match reply.result with
      | Ok () ->
          install_from_swap t ~slot
            ~owner:(owner_key ~gid:g.gid ~gpa)
            ~target:true;
          finish_neighbours ~install:true;
          after t t.config.major_fault_us k
      | Error err ->
          finish_neighbours ~install:false;
          if nsectors = page_sectors then
            (* The cluster was just the target page; the error is its. *)
            handle_read_error t g ~swap_read:true ~err ~attempt:0 ~retry
              ~give_up:k
          else
            (* The failing sector may belong to a prefetched neighbour;
               narrow to the target page before charging the guest a
               retry. *)
            retry ~attempt:0)

(* Fault on a Mapper-discarded page: re-read from the disk image, with
   readahead over the consecutive run of tracked blocks — which stays
   sequential forever, the Mapper's answer to decayed sequentiality. *)
and refetch_image t g ~gpa ~block ~host_context k =
  count_fault t ~host_context;
  let disk_id = Storage.Vdisk.id g.vdisk in
  let window =
    Mapper.readahead_window g.mapper ~disk:disk_id ~block
      ~max:t.config.image_readahead_pages
  in
  let headroom = ref (max 0 (Frames.nfree t.frames - 1)) in
  let installs = ref [] in
  List.iter
    (fun (b, gpas) ->
      List.iter
        (fun p ->
          if p <> gpa && !headroom > 0 then begin
            let e = g.ept.(p) in
            if
              e land 7 = 4
              && e_arg e = b
              && not (inflight_mem t (owner_key ~gid:g.gid ~gpa:p))
            then begin
              decr headroom;
              let widx = inflight_add t (owner_key ~gid:g.gid ~gpa:p) in
              installs := (b, p, widx) :: !installs
            end
          end)
        gpas)
    window;
  let installs = List.rev !installs in
  let last_block =
    List.fold_left (fun acc (b, _, _) -> max acc b) block installs
  in
  let nblocks = last_block - block + 1 in
  let sector = Storage.Vdisk.sector_of_block g.vdisk block in
  let finish_readahead ~install =
    List.iter
      (fun (b, p, widx) ->
        if install then install_from_image t g ~gpa:p ~block:b ~target:false;
        let waiters = inflight_take t (owner_key ~gid:g.gid ~gpa:p) widx in
        List.iter (fun w -> w ()) waiters)
      installs
  in
  (* Retries re-read the faulting block only; readahead is best-effort
     and was released on the first failure. *)
  let rec retry ~attempt =
    Storage.Disk.submit t.disk ~sector ~nsectors:page_sectors
      ~kind:Storage.Disk.Read ~queue:g.gid ~attempt
      (fun (reply : Storage.Disk.reply) ->
        match reply.result with
        | Ok () ->
            install_from_image t g ~gpa ~block ~target:true;
            after t (t.config.major_fault_us + t.config.mapper_map_page_us) k
        | Error err ->
            handle_read_error t g ~swap_read:false ~err ~attempt ~retry
              ~give_up:k)
  in
  Storage.Disk.submit t.disk ~sector ~nsectors:(nblocks * page_sectors)
    ~kind:Storage.Disk.Read ~queue:g.gid
    (fun (reply : Storage.Disk.reply) ->
      match reply.result with
      | Ok () ->
          install_from_image t g ~gpa ~block ~target:true;
          finish_readahead ~install:true;
          let map_cost =
            (1 + List.length installs) * t.config.mapper_map_page_us
          in
          after t (t.config.major_fault_us + map_cost) k
      | Error err ->
          finish_readahead ~install:false;
          if nblocks = 1 then
            handle_read_error t g ~swap_read:false ~err ~attempt:0 ~retry
              ~give_up:k
          else retry ~attempt:0)

(* ------------------------------------------------------------------ *)
(* Guest-context accesses                                              *)
(* ------------------------------------------------------------------ *)

(* Apply a CPU store to a present page: private-mapping COW semantics
   break the Mapper association and retype the page anonymous. *)
let apply_write_present t g ~gpa ~full ~gen =
  let e = g.ept.(gpa) in
  if e land 7 <> 2 then assert false
  else begin
    let frame = e_arg e in
    let base = Frames.content t.frames frame in
    let c = if full then Content.Anon gen else Content.combine base gen in
    let cost =
      if Frames.named t.frames frame then begin
        Mapper.untrack g.mapper ~gpa;
        Frames.set_named t.frames frame false;
        Cgroup.move g.cgroup Cgroup.Anon_active frame;
        t.config.cow_exit_us
      end
      else 0
    in
    drop_swap_backing t frame;
    Frames.set_content t.frames frame c;
    Frames.set_referenced t.frames frame true;
    cost
  end

(* Merge a (possibly expired/abandoned) Preventer buffer with the page's
   old content: fault the old bytes in, then overlay generation [gen]. *)
let rec apply_merge t g ~gpa ~gen ~host_context k =
  let e = g.ept.(gpa) in
  match e land 7 with
  | 2 (* present *) ->
      let frame = e_arg e in
      let base = Frames.content t.frames frame in
      if Frames.named t.frames frame then begin
        Mapper.untrack g.mapper ~gpa;
        Frames.set_named t.frames frame false;
        Cgroup.move g.cgroup Cgroup.Anon_active frame
      end;
      drop_swap_backing t frame;
      Frames.set_content t.frames frame (Content.combine base gen);
      Frames.set_referenced t.frames frame true;
      after t 0 k
  | 3 (* in swap *) | 4 (* in image *) ->
      fault_in t g ~gpa ~host_context (fun () ->
          apply_merge t g ~gpa ~gen ~host_context k)
  | 0 (* not backed *) ->
      ignore
        (alloc_frame t g ~gpa
           ~content:(Content.combine Content.Zero gen)
           ~named:false ~active:true ~referenced:true);
      after t 0 k
  | _ (* ballooned *) -> after t 0 k

(* Fetch-or-mint the pending write generation for [gpa]; generations are
   nonzero, so 0 reads as absent. *)
let pending_gen_of g gpa =
  let gen = Itbl.find g.pending_gen gpa ~default:0 in
  if gen = 0 then Content.fresh_gen () else gen

(* Expiry timer for Preventer buffers. *)
let rec arm_timer t g =
  (match g.timer with
  | Some ev ->
      Sim.Engine.cancel t.engine ev;
      g.timer <- None
  | None -> ());
  match Preventer.next_deadline g.preventer with
  | None -> ()
  | Some deadline ->
      let deadline = Sim.Time.max deadline (Sim.Engine.now t.engine) in
      g.timer <-
        Some
          (Sim.Engine.schedule_at t.engine deadline (fun () ->
               g.timer <- None;
               let gone =
                 Preventer.expired g.preventer ~now:(Sim.Engine.now t.engine)
               in
               List.iter
                 (fun gpa ->
                   let gen = pending_gen_of g gpa in
                   Itbl.remove g.pending_gen gpa;
                   apply_merge t g ~gpa ~gen ~host_context:true (fun () -> ()))
                 gone;
               arm_timer t g))

let touch_read t ~guest:gid ~gpa k =
  let g = guest t gid in
  let rec attempt () =
    if g.killed then after t 0 (fun () -> k Content.Zero)
    else
      let e = g.ept.(gpa) in
      match e land 7 with
      | 2 (* present *) ->
          let frame = e_arg e in
          Frames.set_referenced t.frames frame true;
          let c = Frames.content t.frames frame in
          after t 0 (fun () -> k c)
      | 1 (* ballooned *) -> invalid_arg "Hostmm.touch_read: ballooned page"
      | 0 (* not backed *) ->
          let _, cost =
            alloc_frame t g ~gpa ~content:Content.Zero ~named:false
              ~active:true ~referenced:true
          in
          after t (t.config.minor_fault_us + cost) (fun () -> k Content.Zero)
      | _ (* in swap / in image *) ->
          if t.vs.preventer && Preventer.is_buffered g.preventer ~gpa then begin
            (* Guest reads a page under write emulation.  Whole-page reads
               are never fully covered by a partial buffer, so this is the
               suspend-and-merge path. *)
            match
              Preventer.on_read g.preventer ~gpa ~offset:0
                ~len:Storage.Geom.page_bytes
            with
            | Preventer.Served_from_buffer ->
                let gen = pending_gen_of g gpa in
                after t t.config.emulated_write_us (fun () ->
                    k (Content.Anon gen))
            | Preventer.Suspend ->
                Preventer.abandon g.preventer ~gpa;
                t.stats.preventer_merges <- t.stats.preventer_merges + 1;
                let gen = pending_gen_of g gpa in
                Itbl.remove g.pending_gen gpa;
                apply_merge t g ~gpa ~gen ~host_context:false attempt
          end
          else fault_in t g ~gpa ~host_context:false attempt
  in
  attempt ()

let touch_write t ~guest:gid ~gpa ~offset ~len ~gen ~intent_full_page k =
  let g = guest t gid in
  let full = offset = 0 && len >= Storage.Geom.page_bytes in
  let false_read_counted = ref false in
  let rec attempt () =
    if g.killed then after t 0 k
    else
      match g.ept.(gpa) land 7 with
      | 2 (* present *) ->
          let cost = apply_write_present t g ~gpa ~full ~gen in
          after t cost k
      | 1 (* ballooned *) -> invalid_arg "Hostmm.touch_write: ballooned page"
      | 0 (* not backed *) ->
          let content =
            if full then Content.Anon gen else Content.combine Content.Zero gen
          in
          let _, cost =
            alloc_frame t g ~gpa ~content ~named:false ~active:true
              ~referenced:true
          in
          after t (t.config.minor_fault_us + cost) k
      | _ (* in swap / in image *) ->
          if t.vs.preventer then
            match
              Preventer.on_write g.preventer ~now:(Sim.Engine.now t.engine)
                ~gpa ~offset ~len
            with
            | Preventer.Completed ->
                discard_backing t g ~gpa;
                let _, cost =
                  alloc_frame t g ~gpa ~content:(Content.Anon gen) ~named:false
                    ~active:true ~referenced:true
                in
                after t (t.config.emulated_write_us + cost) k
            | Preventer.Buffered { first_write } ->
                Itbl.set g.pending_gen gpa gen;
                if first_write then arm_timer t g;
                after t t.config.emulated_write_us k
            | Preventer.Needs_merge ->
                Itbl.remove g.pending_gen gpa;
                apply_merge t g ~gpa ~gen ~host_context:false k
            | Preventer.Rejected -> baseline ()
          else baseline ()
  and baseline () =
    if intent_full_page && not !false_read_counted then begin
      false_read_counted := true;
      t.stats.false_reads <- t.stats.false_reads + 1
    end;
    fault_in t g ~gpa ~host_context:false attempt
  in
  attempt ()

let rep_write t ~guest:gid ~gpa ~content k =
  let g = guest t gid in
  let false_read_counted = ref false in
  let rec attempt () =
    if g.killed then after t 0 k
    else
      let e = g.ept.(gpa) in
      match e land 7 with
      | 2 (* present *) ->
          let frame = e_arg e in
          let cost =
            if Frames.named t.frames frame then begin
              Mapper.untrack g.mapper ~gpa;
              Frames.set_named t.frames frame false;
              Cgroup.move g.cgroup Cgroup.Anon_active frame;
              t.config.cow_exit_us
            end
            else 0
          in
          drop_swap_backing t frame;
          Frames.set_content t.frames frame content;
          Frames.set_referenced t.frames frame true;
          after t cost k
      | 1 (* ballooned *) -> invalid_arg "Hostmm.rep_write: ballooned page"
      | 0 (* not backed *) ->
          let _, cost =
            alloc_frame t g ~gpa ~content ~named:false ~active:true
              ~referenced:true
          in
          after t (t.config.minor_fault_us + cost) k
      | _ (* in swap / in image *) ->
          if t.vs.preventer then begin
            (* REP-prefixed whole-page store: recognized outright; the old
               content is never read (paper Section 4.2, last paragraph). *)
            Preventer.on_rep_write g.preventer ~gpa;
            Itbl.remove g.pending_gen gpa;
            discard_backing t g ~gpa;
            let _, cost =
              alloc_frame t g ~gpa ~content ~named:false ~active:true
                ~referenced:true
            in
            after t (t.config.emulated_write_us + cost) k
          end
          else begin
            if not !false_read_counted then begin
              false_read_counted := true;
              t.stats.false_reads <- t.stats.false_reads + 1
            end;
            fault_in t g ~gpa ~host_context:false attempt
          end
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* Virtual disk I/O (the QEMU emulation path)                          *)
(* ------------------------------------------------------------------ *)

(* Install a freshly read file page under the Mapper regime: the page
   becomes named, clean and tracked; any stale backing is dropped. *)
let install_file_page t g ~gpa ~block =
  let v = Storage.Vdisk.version g.vdisk block in
  let content = Storage.Vdisk.content g.vdisk block in
  let cost = ref 0 in
  (let e = g.ept.(gpa) in
   match e land 7 with
   | 2 (* present *) ->
       let frame = e_arg e in
       drop_swap_backing t frame;
       Frames.set_content t.frames frame content;
       if not (Frames.named t.frames frame) then begin
         Frames.set_named t.frames frame true;
         Cgroup.move g.cgroup Cgroup.File_inactive frame
       end
   | 1 (* ballooned *) -> ()
   | _ (* not backed / in swap / in image *) ->
       discard_backing t g ~gpa;
       let _, c =
         alloc_frame t g ~gpa ~content ~named:true ~active:false
           ~referenced:false
       in
       cost := c);
  if g.ept.(gpa) land 7 = 2 then
    Mapper.track g.mapper ~gpa ~disk:(Storage.Vdisk.id g.vdisk) ~block
      ~version:v;
  !cost + t.config.mapper_map_page_us

(* Baseline DMA landing: overwrite the (pinned) destination page. *)
let force_dma_install t g ~gpa ~block =
  let content = Storage.Vdisk.content g.vdisk block in
  let e = g.ept.(gpa) in
  match e land 7 with
  | 2 (* present *) ->
      let frame = e_arg e in
      drop_swap_backing t frame;
      Frames.set_content t.frames frame content;
      Frames.set_referenced t.frames frame true
  | 1 (* ballooned *) -> ()
  | _ (* not backed / in swap / in image *) ->
      discard_backing t g ~gpa;
      ignore
        (alloc_frame t g ~gpa ~content ~named:false ~active:false
           ~referenced:true)

let vio_read t ?(aligned = true) ~guest:gid ~block0 ~gpas k =
  let g = guest t gid in
  let n = Array.length gpas in
  if n = 0 || g.killed then after t 0 k
  else begin
    let base_cost =
      t.config.vio_overhead_us + hv_touch t g t.config.hv_touch_per_vio
    in
    let sector = Storage.Vdisk.sector_of_block g.vdisk block0 in
    let mapper_path = t.vs.mapper && t.vs.report_4k_sectors && aligned in
    if mapper_path then begin
      (* mmap path: destinations are simply remapped; no fault-in. *)
      Array.iter (fun gpa -> discard_backing t g ~gpa) gpas;
      let rec submit ~attempt =
        Storage.Disk.submit t.disk ~sector ~nsectors:(n * page_sectors)
          ~kind:Storage.Disk.Read ~queue:g.gid ~attempt
          (fun (reply : Storage.Disk.reply) ->
            match reply.result with
            | Ok () when g.killed -> after t 0 k
            | Ok () ->
                let cost = ref base_cost in
                Array.iteri
                  (fun i gpa ->
                    cost :=
                      !cost + install_file_page t g ~gpa ~block:(block0 + i))
                  gpas;
                after t !cost k
            | Error err ->
                handle_read_error t g ~swap_read:false ~err ~attempt
                  ~retry:(fun ~attempt -> submit ~attempt)
                  ~give_up:k)
      in
      submit ~attempt:0
    end
    else begin
      (* Baseline: the destination buffers must be resident before the
         device can DMA into them — the stale-read pathology. *)
      let cost = ref base_cost in
      let submit () =
        let rec go ~attempt =
          Storage.Disk.submit t.disk ~sector ~nsectors:(n * page_sectors)
            ~kind:Storage.Disk.Read ~queue:g.gid ~attempt
            (fun (reply : Storage.Disk.reply) ->
              match reply.result with
              | Ok () when g.killed -> after t 0 k
              | Ok () ->
                  Array.iteri
                    (fun i gpa ->
                      force_dma_install t g ~gpa ~block:(block0 + i))
                    gpas;
                  after t !cost k
              | Error err ->
                  handle_read_error t g ~swap_read:false ~err ~attempt
                    ~retry:(fun ~attempt -> go ~attempt)
                    ~give_up:k)
        in
        go ~attempt:0
      in
      let faults = ref [] in
      Array.iter
        (fun gpa ->
          let e = g.ept.(gpa) in
          match e land 7 with
          | 2 (* present *) -> Frames.set_referenced t.frames (e_arg e) true
          | 0 (* not backed *) ->
              let _, c =
                alloc_frame t g ~gpa ~content:Content.Zero ~named:false
                  ~active:false ~referenced:true
              in
              cost := !cost + t.config.minor_fault_us + c
          | 3 (* in swap *) ->
              t.stats.stale_reads <- t.stats.stale_reads + 1;
              faults := gpa :: !faults
          | 4 (* in image *) ->
              (* A misaligned request while the Mapper is active: the
                 discarded page must be faulted back in just to be
                 DMA-overwritten — still a stale read. *)
              t.stats.stale_reads <- t.stats.stale_reads + 1;
              faults := gpa :: !faults
          | _ (* ballooned *) ->
              invalid_arg "Hostmm.vio_read: ballooned page")
        gpas;
      let done_one = join t (List.length !faults) submit in
      List.iter
        (fun gpa -> fault_in t g ~gpa ~host_context:true done_one)
        !faults
    end
  end

(* Logical content of a vio-write source page.  Normally present (phase
   1 faulted it in); if it was re-evicted before the write executed we
   read the backing store directly — in reality the page would have been
   pinned for the duration of the I/O. *)
let source_content t g gpa =
  let e = g.ept.(gpa) in
  match e land 7 with
  | 2 (* present *) -> Frames.content t.frames (e_arg e)
  | 3 (* in swap *) -> Storage.Swap_area.content t.swap (e_arg e)
  | 4 (* in image *) -> Storage.Vdisk.content g.vdisk (e_arg e)
  | _ (* not backed / ballooned *) -> Content.Zero

(* Preserve-and-untrack one page whose backing block is about to be
   overwritten: the Mapper's data-consistency protocol (Section 4.1).
   A discarded page must be faulted back in before the block changes. *)
let rec preserve_victim t g ~gpa k =
  let e = g.ept.(gpa) in
  match e land 7 with
  | 2 (* present *) ->
      let frame = e_arg e in
      Mapper.untrack g.mapper ~gpa;
      if Frames.named t.frames frame then begin
        Frames.set_named t.frames frame false;
        Cgroup.move g.cgroup Cgroup.Anon_active frame
      end;
      after t 0 k
  | 4 (* in image *) ->
      fault_in t g ~gpa ~host_context:true (fun () ->
          preserve_victim t g ~gpa k)
  | 3 (* in swap *) ->
      (* Tracked pages are never in swap; the mapping must be gone. *)
      after t 0 k
  | _ (* not backed / ballooned *) ->
      Mapper.untrack g.mapper ~gpa;
      after t 0 k

let vio_write t ?(aligned = true) ~guest:gid ~block0 ~gpas k =
  let g = guest t gid in
  let n = Array.length gpas in
  if n = 0 || g.killed then after t 0 k
  else begin
    let base_cost =
      t.config.vio_overhead_us + hv_touch t g t.config.hv_touch_per_vio
    in
    let disk_id = Storage.Vdisk.id g.vdisk in
    let sector = Storage.Vdisk.sector_of_block g.vdisk block0 in
    let track_path = t.vs.mapper && t.vs.report_4k_sectors && aligned in
    (* Phase 3+4: bump versions, re-map sources, submit the write. *)
    let phase3 () =
      if g.killed then after t 0 k
      else begin
        Array.iteri
          (fun i gpa ->
            let block = block0 + i in
            let content = source_content t g gpa in
            let version = Storage.Vdisk.write g.vdisk block content in
            if track_path then begin
              (* Write-then-map: the page now mirrors the block. *)
              let e = g.ept.(gpa) in
              if e land 7 = 2 then begin
                let frame = e_arg e in
                Mapper.track g.mapper ~gpa ~disk:disk_id ~block ~version;
                if not (Frames.named t.frames frame) then begin
                  Frames.set_named t.frames frame true;
                  Cgroup.move g.cgroup Cgroup.File_inactive frame
                end;
                Frames.set_referenced t.frames frame true
              end
            end)
          gpas;
        Storage.Disk.submit t.disk ~sector ~nsectors:(n * page_sectors)
          ~kind:Storage.Disk.Write (fun _ -> after t base_cost k)
      end
    in
    (* Phase 2: consistency protocol for every overwritten block. *)
    let phase2 () =
      if not t.vs.mapper then phase3 ()
      else begin
        let victims = ref [] in
        for i = 0 to n - 1 do
          let block = block0 + i in
          match Mapper.gpas_of_block g.mapper ~disk:disk_id ~block with
          | [] -> ()
          | gpas_of_block ->
              t.stats.mapper_invalidations <-
                t.stats.mapper_invalidations + 1;
              victims := gpas_of_block @ !victims
        done;
        let done_one = join t (List.length !victims) phase3 in
        List.iter (fun gpa -> preserve_victim t g ~gpa done_one) !victims
      end
    in
    (* Phase 1: make all source pages readable. *)
    let faults = ref [] in
    Array.iter
      (fun gpa ->
        let e = g.ept.(gpa) in
        match e land 7 with
        | 2 (* present *) -> Frames.set_referenced t.frames (e_arg e) true
        | 0 (* not backed *) ->
            ignore
              (alloc_frame t g ~gpa ~content:Content.Zero ~named:false
                 ~active:false ~referenced:true)
        | 3 (* in swap *) | 4 (* in image *) -> faults := gpa :: !faults
        | _ (* ballooned *) -> invalid_arg "Hostmm.vio_write: ballooned page")
      gpas;
    let done_one = join t (List.length !faults) phase2 in
    List.iter (fun gpa -> fault_in t g ~gpa ~host_context:true done_one) !faults
  end

(* ------------------------------------------------------------------ *)
(* Ballooning                                                          *)
(* ------------------------------------------------------------------ *)

let balloon_steal t ~guest:gid ~gpa =
  let g = guest t gid in
  if g.ept.(gpa) = e_ballooned then
    invalid_arg "Hostmm.balloon_steal: already ballooned"
  else discard_backing t g ~gpa;
  g.ept.(gpa) <- e_ballooned;
  t.stats.balloon_inflated_pages <- t.stats.balloon_inflated_pages + 1

let balloon_return t ~guest:gid ~gpa =
  let g = guest t gid in
  if g.ept.(gpa) = e_ballooned then begin
    g.ept.(gpa) <- e_not_backed;
    t.stats.balloon_deflated_pages <- t.stats.balloon_deflated_pages + 1
  end
  else invalid_arg "Hostmm.balloon_return: page is not ballooned"

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let free_frames t = Frames.nfree t.frames
let total_frames t = Frames.nframes t.frames
let resident t gid = Cgroup.resident (guest t gid).cgroup
let mapper_tracked t gid = Mapper.tracked (guest t gid).mapper
let gpa_pages t gid = Array.length (guest t gid).ept

let page_state t ~guest:gid ~gpa =
  match (guest t gid).ept.(gpa) land 7 with
  | 0 -> Not_backed
  | 2 -> Present
  | 3 -> In_swap
  | 4 -> In_image
  | _ -> Ballooned

let frame_content t ~guest:gid ~gpa =
  let g = guest t gid in
  let e = g.ept.(gpa) in
  if e land 7 = 2 then Some (Frames.content t.frames (e_arg e)) else None

let vdisk t gid = (guest t gid).vdisk

type page_view =
  | V_unbacked
  | V_present of {
      content : Storage.Content.t;
      named : bool;
      backing_block : int option;
    }
  | V_in_swap of { slot : int }
  | V_in_image of { block : int }

let page_view t ~guest:gid ~gpa =
  let g = guest t gid in
  let e = g.ept.(gpa) in
  match e land 7 with
  | 2 ->
      V_present
        {
          content = Frames.content t.frames (e_arg e);
          named = Frames.named t.frames (e_arg e);
          backing_block =
            Option.map
              (fun (b : Mapper.backing) -> b.block)
              (Mapper.lookup g.mapper ~gpa);
        }
  | 3 -> V_in_swap { slot = e_arg e }
  | 4 -> V_in_image { block = e_arg e }
  | _ -> V_unbacked

let swap_slot_sector t slot = Storage.Swap_area.sector_of_slot t.swap slot
let disk t = t.disk
let tiers t = t.tiers
let swap_area t = t.swap
let set_swapin_probe t probe = t.swapin_probe <- probe

(* ------------------------------------------------------------------ *)
(* Scrubber repair: slot relocation                                    *)
(* ------------------------------------------------------------------ *)

(* Move the live page of [slot] to a freshly allocated slot — the
   scrubber's repair action when verify finds latent media damage.  The
   three views of the slot (swap area, slot-owner table, the owner's
   EPT entry or swap-cache backing pointer) are updated together, with
   no intervening event, so no fault can observe a half-moved slot; the
   content travels by reference (the surviving copy) and the new slot
   is written out through the ordinary tier write-back path.  Returns
   false — changing nothing — when the slot is not live, its read is in
   flight, its guest is gone, or the area has no free slot. *)
let relocate_slot t slot =
  let owner = Itbl.find t.slot_owner slot ~default:(-1) in
  if owner < 0 || not (Storage.Swap_area.is_allocated t.swap slot) then false
  else if inflight_mem t owner then false
  else begin
    let gid = owner_gid owner and gpa = owner_gpa owner in
    let g = guest t gid in
    if g.killed then false
    else begin
      let content = Storage.Swap_area.content t.swap slot in
      match Storage.Swap_area.alloc t.swap content with
      | None -> false
      | Some nslot ->
          let e = g.ept.(gpa) in
          let rewired =
            if e land 7 = 3 && e_arg e = slot then begin
              g.ept.(gpa) <- e_in_swap nslot;
              true
            end
            else if e land 7 = 2 then begin
              (* Swap-cache resident: the frame keeps a clean copy; only
                 the backing pointer moves. *)
              let frame = e_arg e in
              if Frames.backing_slot t.frames frame = slot then begin
                Frames.set_backing_slot t.frames frame nslot;
                true
              end
              else false
            end
            else false
          in
          if not rewired then begin
            (* Owner table and EPT disagree — the slot is being torn
               down concurrently; undo the allocation and walk away. *)
            Storage.Swap_area.free t.swap nslot;
            false
          end
          else begin
            Itbl.remove t.slot_owner slot;
            Itbl.set t.slot_owner nslot owner;
            Storage.Swap_area.free t.swap slot;
            Storage.Tiers.swap_out t.tiers ~slot:nslot ~queue:0;
            true
          end
    end
  end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  for gid = 0 to t.nguests - 1 do
    match t.guests.(gid) with
    | None -> ()
    | Some g ->
        Array.iteri
          (fun gpa e ->
            match e land 7 with
            | 0 (* not backed *) | 1 (* ballooned *) -> ()
            | 2 (* present *) -> (
                let frame = e_arg e in
                if
                  not
                    (Frames.owner_kind t.frames frame = 1
                    && Frames.owner_guest t.frames frame = gid
                    && Frames.owner_payload t.frames frame = gpa)
                then
                  fail "guest %d gpa %d: frame %d owner mismatch" gid gpa frame;
                (match Frames.swap_backing t.frames frame with
                | None -> ()
                | Some slot ->
                    if not (Storage.Swap_area.is_allocated t.swap slot) then
                      fail "guest %d gpa %d: backing slot %d free" gid gpa slot;
                    if
                      Itbl.find t.slot_owner slot ~default:(-1)
                      <> owner_key ~gid ~gpa
                    then
                      fail "guest %d gpa %d: backing slot %d owner" gid gpa slot;
                    if
                      not
                        (Content.equal
                           (Frames.content t.frames frame)
                           (Storage.Swap_area.content t.swap slot))
                    then fail "guest %d gpa %d: backing content diverged" gid gpa);
                if Frames.named t.frames frame then
                  match Mapper.lookup g.mapper ~gpa with
                  | None -> fail "guest %d gpa %d: named but untracked" gid gpa
                  | Some b ->
                      if Storage.Vdisk.version g.vdisk b.block <> b.version then
                        fail "guest %d gpa %d: tracked version stale" gid gpa;
                      if
                        not
                          (Content.equal
                             (Frames.content t.frames frame)
                             (Storage.Vdisk.content g.vdisk b.block))
                      then
                        fail "guest %d gpa %d: tracked content diverged" gid gpa)
            | 3 (* in swap *) ->
                let slot = e_arg e in
                if not (Storage.Swap_area.is_allocated t.swap slot) then
                  fail "guest %d gpa %d: swap slot %d not allocated" gid gpa
                    slot;
                if
                  Itbl.find t.slot_owner slot ~default:(-1)
                  <> owner_key ~gid ~gpa
                then
                  fail "guest %d gpa %d: swap slot %d owner mismatch" gid gpa
                    slot
            | _ (* in image *) -> (
                let block = e_arg e in
                match Mapper.lookup g.mapper ~gpa with
                | Some b when b.block = block ->
                    if Storage.Vdisk.version g.vdisk block <> b.version then
                      fail "guest %d gpa %d: in-image version stale" gid gpa
                | _ -> fail "guest %d gpa %d: in-image but untracked" gid gpa))
          g.ept
  done
