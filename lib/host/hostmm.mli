(** The hypervisor memory manager.

    Owns the host frame table, the per-guest GPA=>HPA tables, host-level
    reclaim (per-guest cgroup limits plus global watermarks), the host
    swap area, the QEMU-like virtual I/O path, and the wiring of the two
    VSwapper components.  Guests drive it through a handful of
    continuation-passing entry points; every latency (CPU overheads and
    disk waits) is delivered by calling the continuation at the right
    virtual time.

    Execution-context conventions, matching how the paper splits Figure 9
    panels (b) and (c):
    - [touch_*] and [rep_write] are guest-context accesses; faults they
      take are counted in [guest_context_faults];
    - [vio_*] runs hypervisor code; faults taken while preparing I/O
      buffers (stale reads, hypervisor-code refaults) are counted in
      [host_context_faults]. *)

type t
type guest_id = int

(** EPT-level state of a guest page, exposed for tests and examples. *)
type page_state =
  | Not_backed  (** never touched; faults in as a zero page *)
  | Present  (** mapped to a host frame *)
  | In_swap  (** reclaimed into the host swap area *)
  | In_image  (** Mapper-discarded; backed by a virtual-disk block *)
  | Ballooned  (** surrendered by the guest's balloon driver *)

(** [tiers] routes swap traffic (swap-out writes, swap-in reads); when
    omitted, a disk-only passthrough {!Storage.Tiers} is built
    internally, which is call-for-call identical to hitting [disk]
    directly.  Virtual-disk image I/O always goes straight to [disk] —
    only anonymous pages live on swap tiers. *)
val create :
  engine:Sim.Engine.t ->
  disk:Storage.Disk.t ->
  ?tiers:Storage.Tiers.t ->
  stats:Metrics.Stats.t ->
  config:Hconfig.t ->
  vsconfig:Vswapper.Vsconfig.t ->
  swap:Storage.Swap_area.t ->
  hv_base_sector:int ->
  unit ->
  t

(** [register_guest t ~vdisk ~gpa_pages ~resident_limit] admits a guest
    with [gpa_pages] of guest-physical memory, its disk image, and an
    optional cgroup resident-set cap (in frames, covering both guest
    memory and the per-guest hypervisor pages). *)
val register_guest :
  t ->
  vdisk:Storage.Vdisk.t ->
  gpa_pages:int ->
  resident_limit:int option ->
  guest_id

val set_resident_limit : t -> guest_id -> int option -> unit

(** {2 Failure containment} *)

(** [kill_guest t gid] tears the guest down, releasing every resource it
    holds — frames, swap slots and their slot-owner entries, Mapper
    trackings, Preventer buffers, hypervisor pages — and leaving every
    page [Not_backed].  Invoked by the host on unrecoverable I/O errors
    (media error, retry budget exhausted) and as the OOM last resort;
    also callable directly.  Idempotent.  [check_invariants] holds
    afterwards.  The registered kill handler (see {!set_kill_handler})
    is called exactly once, on the first kill. *)
val kill_guest : t -> guest_id -> unit

(** [set_kill_handler t f] registers the VMM callback invoked when the
    host kills a guest, so the scheduler can stop its vCPUs. *)
val set_kill_handler : t -> (guest_id -> unit) -> unit

val guest_killed : t -> guest_id -> bool

(** {2 Guest-context memory accesses} *)

(** [touch_read t ~guest ~gpa k] performs a CPU load; [k content] runs
    once the data is available (possibly after a major fault). *)
val touch_read :
  t -> guest:guest_id -> gpa:int -> (Storage.Content.t -> unit) -> unit

(** [touch_write t ~guest ~gpa ~offset ~len ~gen ~intent_full_page k]
    performs a CPU store of [len] bytes at [offset].  [gen] identifies
    the logical write (all stores of one full-page overwrite share it);
    [intent_full_page] marks stores that belong to a whole-page overwrite
    so the baseline can account false reads (it does not change
    behaviour). *)
val touch_write :
  t ->
  guest:guest_id ->
  gpa:int ->
  offset:int ->
  len:int ->
  gen:int ->
  intent_full_page:bool ->
  (unit -> unit) ->
  unit

(** [rep_write t ~guest ~gpa ~content k] is a whole-page REP-prefixed
    store (page zeroing, page-sized copies): the new page content is
    [content] and none of the old bytes survive. *)
val rep_write :
  t -> guest:guest_id -> gpa:int -> content:Storage.Content.t ->
  (unit -> unit) -> unit

(** {2 Virtual disk I/O (the QEMU emulation path)} *)

(** [vio_read t ~guest ~block0 ~gpas k] reads the contiguous blocks
    [block0 .. block0 + length gpas - 1] of the guest's image into the
    given guest pages.  The Mapper, when enabled, interposes here:
    destination pages are (re)mapped instead of faulted-in-and-DMA'd. *)
val vio_read :
  t ->
  ?aligned:bool ->
  guest:guest_id ->
  block0:int ->
  gpas:int array ->
  (unit -> unit) ->
  unit

(** [vio_write t ~guest ~block0 ~gpas k] writes the given guest pages to
    contiguous image blocks.  Runs the Mapper's data-consistency
    protocol (invalidate-then-write) and its write-then-map rule. *)
val vio_write :
  t ->
  ?aligned:bool ->
  guest:guest_id ->
  block0:int ->
  gpas:int array ->
  (unit -> unit) ->
  unit

(** [aligned] on the vio calls marks whether the guest issued the request
    on 4 KiB boundaries; misaligned requests (Windows guests without a
    reformatted disk, Section 5.4) bypass the Mapper's mmap machinery —
    though block invalidation still runs for consistency. *)

(** {2 Ballooning hooks} *)

(** [balloon_steal t ~guest ~gpa] transfers a guest-pinned page to the
    host: its frame/slot/mapping is released immediately. *)
val balloon_steal : t -> guest:guest_id -> gpa:int -> unit

(** [balloon_return t ~guest ~gpa] gives a ballooned page back to the
    guest; it faults back in as a zero page on next touch. *)
val balloon_return : t -> guest:guest_id -> gpa:int -> unit

(** {2 Introspection} *)

val free_frames : t -> int
val total_frames : t -> int
val resident : t -> guest_id -> int
val mapper_tracked : t -> guest_id -> int

(** [gpa_pages t gid] is the size of the guest's physical address space
    in pages (the [gpa_pages] it was registered with). *)
val gpa_pages : t -> guest_id -> int
val page_state : t -> guest:guest_id -> gpa:int -> page_state
val frame_content : t -> guest:guest_id -> gpa:int -> Storage.Content.t option
val vdisk : t -> guest_id -> Storage.Vdisk.t

(** Migration-oriented view of one guest page (used by [lib/migration],
    the paper's Section 7 future-work direction). *)
type page_view =
  | V_unbacked  (** never touched or ballooned: nothing to send *)
  | V_present of {
      content : Storage.Content.t;
      named : bool;
      backing_block : int option;  (** Mapper backing, if tracked *)
    }
  | V_in_swap of { slot : int }
  | V_in_image of { block : int }

val page_view : t -> guest:guest_id -> gpa:int -> page_view

(** [swap_slot_sector t slot] is the physical sector of a host swap slot
    (for a migration source reading swapped pages off its own disk). *)
val swap_slot_sector : t -> int -> int

val disk : t -> Storage.Disk.t

(** The tier composite routing this host's swap traffic (the internal
    passthrough when none was passed to {!create}). *)
val tiers : t -> Storage.Tiers.t

(** The host swap area (the region the background scrubber patrols). *)
val swap_area : t -> Storage.Swap_area.t

(** [set_swapin_probe t (Some f)] installs an observer called once per
    completed swap-in target fault with the faulting guest and the
    end-to-end latency in microseconds — QoS park time included, since
    that is what the guest's thread waited.  Used by experiments to
    build per-guest latency distributions; [None] (the default) costs
    nothing. *)
val set_swapin_probe : t -> (gid:guest_id -> us:int -> unit) option -> unit

(** {2 Scrubber repair} *)

(** [relocate_slot t slot] moves the live page stored in swap [slot] to
    a freshly allocated slot: the content is carried over, the
    slot-owner table and the owning guest's EPT entry (or swap-cache
    backing pointer) are rewired in the same event, the old slot is
    freed, and the new slot is written out through the tier write-back
    path.  Returns [false] — changing nothing — if the slot is not
    live, its read is currently in flight, its guest is gone, or the
    swap area has no free slot.  [check_invariants] holds afterwards
    either way. *)
val relocate_slot : t -> int -> bool

(** [check_invariants t] walks all guests asserting internal consistency
    (EPT <-> frame-owner agreement, Mapper version freshness, swap-slot
    ownership).  Raises [Failure] with a description on violation; meant
    for tests. *)
val check_invariants : t -> unit

(** Temporary debug hook: called with (gpa, slot) on each swap-out write. *)
val debug_evict_hook : (int -> int -> unit) ref
