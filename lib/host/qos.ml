(* Per-guest swap-in admission control: a token bucket per guest in
   front of the disk queues, drained deficit-round-robin.

   Tokens are kept in integer micro-tokens (one fault = [token] = 1e6)
   so refill is exact integer arithmetic in virtual microseconds:
   [rate] faults per simulated second is exactly [rate] micro-tokens
   per microsecond.  Everything runs in virtual time off the engine, so
   admission decisions are a pure function of the event order and the
   schedule stays byte-identical at any [--jobs] width. *)

let token = 1_000_000

type bucket = {
  mutable utokens : int;  (* micro-tokens available; the DRR deficit *)
  mutable last_us : int;  (* virtual time of the last refill *)
  q : (int * (unit -> unit)) Queue.t;  (* (enqueue µs, parked fault) *)
}

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  rate : int;  (* faults per simulated second, > 0 *)
  burst_utokens : int;
  mutable buckets : bucket array;  (* grows as guests register *)
  mutable rr : int;  (* round-robin start position, rotates per drain *)
  mutable timer_armed : bool;
}

(* Buckets start full: a guest's first [burst] faults pass untouched,
   which is also what keeps a workload slower than the rate limit
   entirely unaffected.  [last_us = 0] is safe — the first refill finds
   the bucket already at its cap. *)
let mk_bucket burst_utokens =
  { utokens = burst_utokens; last_us = 0; q = Queue.create () }

let create ~engine ~stats ~rate ~burst =
  {
    engine;
    stats;
    rate = max 1 rate;
    burst_utokens = max token (burst * token);
    buckets = [||];
    rr = 0;
    timer_armed = false;
  }

(* Guests register after the host is built, so the bucket array grows on
   first sight of a gid; growth is driven by admissions in virtual time
   and therefore deterministic. *)
let bucket t gid =
  let n = Array.length t.buckets in
  if gid >= n then begin
    let m = max 8 (max (gid + 1) (2 * n)) in
    t.buckets <-
      Array.init m (fun i ->
          if i < n then t.buckets.(i) else mk_bucket t.burst_utokens)
  end;
  t.buckets.(gid)

let now_us t = Sim.Time.to_us (Sim.Engine.now t.engine)

let refill t b now =
  if now > b.last_us then begin
    b.utokens <- min t.burst_utokens (b.utokens + ((now - b.last_us) * t.rate));
    b.last_us <- now
  end

(* Arm (or re-arm) the drain timer for the earliest instant any guest
   with parked work holds a full token. *)
let rec rearm t =
  let next = ref max_int in
  Array.iter
    (fun b ->
      if not (Queue.is_empty b.q) then begin
        let need = token - b.utokens in
        let wait = if need <= 0 then 1 else (need + t.rate - 1) / t.rate in
        if wait < !next then next := wait
      end)
    t.buckets;
  if !next = max_int then t.timer_armed <- false
  else begin
    t.timer_armed <- true;
    Sim.Engine.run_after t.engine (Sim.Time.us !next) (fun () -> drain t)
  end

(* Deficit round robin, quantum one token: sweep the guests from the
   rotating start position, each releasing one parked fault per sweep
   while it holds a full token — so when several starved guests gain
   tokens at once, release interleaves instead of letting the
   lowest-numbered guest burst first. *)
and drain t =
  let n = Array.length t.buckets in
  let now = now_us t in
  let progress = ref true in
  while !progress do
    progress := false;
    for i = 0 to n - 1 do
      let b = t.buckets.((t.rr + i) mod n) in
      if not (Queue.is_empty b.q) then begin
        refill t b now;
        if b.utokens >= token then begin
          b.utokens <- b.utokens - token;
          let t_enq, thunk = Queue.pop b.q in
          t.stats.Metrics.Stats.qos_throttle_wait_us <-
            t.stats.Metrics.Stats.qos_throttle_wait_us + (now - t_enq);
          thunk ();
          progress := true
        end
      end
    done
  done;
  t.rr <- (t.rr + 1) mod n;
  rearm t

let admit t ~gid thunk =
  let b = bucket t gid in
  let now = now_us t in
  refill t b now;
  if Queue.is_empty b.q && b.utokens >= token then begin
    b.utokens <- b.utokens - token;
    thunk ()
  end
  else begin
    (* Park behind the guest's earlier faults (FIFO per guest even when
       a token frees up mid-queue — reordering a guest against itself
       would invert its swap-in completion order). *)
    Queue.push (now, thunk) b.q;
    t.stats.Metrics.Stats.qos_throttled <-
      t.stats.Metrics.Stats.qos_throttled + 1;
    if not t.timer_armed then rearm t
  end

let tokens t ~gid = (bucket t gid).utokens / token
let queued t ~gid = Queue.length (bucket t gid).q
