(* Background swap scrubber: an engine-driven clock-rate scan over the
   swap area that issues low-priority verify reads of allocated slots,
   so latent media errors are found — and their live pages relocated —
   before a guest faults on them.

   The scan runs in chunks: [chunk] consecutive slot positions are
   examined per tick, with the tick period chosen so the long-run pace
   is [rate] slots per simulated second.  Repairs are budgeted per full
   pass over the area ([repair_budget]), so a badly decayed region
   costs bounded repair writes per pass instead of a write storm that
   starves foreground I/O.  Everything advances in virtual time off the
   engine, so the scan schedule is deterministic at any [--jobs]
   width — and a machine run that completes simply abandons the pending
   tick ([Machine.run] exits on completion, not on queue drain). *)

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  swap : Storage.Swap_area.t;
  tiers : Storage.Tiers.t;
  relocate : int -> bool;
  chunk : int;  (* slot positions examined per tick *)
  tick_us : int;
  repair_budget : int;
  mutable cursor : int;
  mutable repairs_left : int;
  mutable budget : int;  (* slot positions this tick may still examine *)
  mutable inflight : int;  (* verify reads awaiting completion *)
  mutable stopped : bool;
}

(* "Low priority" is enforced as back-pressure, not queue position: at
   most this many verify reads may be outstanding.  When the window is
   full the remaining tick budget is parked, and each completion pumps
   the scan again — so a requested rate the backends cannot absorb
   degrades to whatever they can sustain at this depth, instead of
   growing the disk queue without bound behind the guests' own
   faults. *)
let max_inflight = 8

let rec verify t slot =
  t.stats.Metrics.Stats.scrub_verify_reads <-
    t.stats.Metrics.Stats.scrub_verify_reads + 1;
  t.inflight <- t.inflight + 1;
  Storage.Tiers.verify_read t.tiers ~slot ~queue:0 ~attempt:0
    (fun (reply : Storage.Backend.reply) ->
      t.inflight <- t.inflight - 1;
      (match reply.result with
      | Ok () | Error Faults.Error.Transient ->
          (* A transient blip is not media damage; the next pass will
             look again. *)
          ()
      | Error Faults.Error.Media ->
          t.stats.Metrics.Stats.scrub_media_found <-
            t.stats.Metrics.Stats.scrub_media_found + 1;
          if t.repairs_left > 0 && t.relocate slot then begin
            t.repairs_left <- t.repairs_left - 1;
            t.stats.Metrics.Stats.scrub_relocations <-
              t.stats.Metrics.Stats.scrub_relocations + 1
          end
          else
            (* Budget exhausted, or the slot went stale between verify
               and repair (freed, re-faulted, guest killed). *)
            t.stats.Metrics.Stats.scrub_reloc_failed <-
              t.stats.Metrics.Stats.scrub_reloc_failed + 1);
      if not t.stopped then pump t)

and pump t =
  let n = Storage.Swap_area.nslots t.swap in
  while t.budget > 0 && t.inflight < max_inflight do
    t.budget <- t.budget - 1;
    let slot = t.cursor in
    t.cursor <- t.cursor + 1;
    if t.cursor >= n then begin
      (* Pass complete: the repair budget renews with the wrap. *)
      t.cursor <- 0;
      t.repairs_left <- t.repair_budget;
      t.stats.Metrics.Stats.scrub_scans <-
        t.stats.Metrics.Stats.scrub_scans + 1
    end;
    if Storage.Swap_area.is_allocated t.swap slot then verify t slot
  done

let tick t =
  (* A fresh chunk, not an accumulating debt: budget the window could
     not absorb last tick is dropped, so a saturated backend degrades
     the pace instead of building an unbounded backlog. *)
  t.budget <- t.chunk;
  pump t

let rec arm t =
  Sim.Engine.run_after t.engine (Sim.Time.us t.tick_us) (fun () ->
      if not t.stopped then begin
        tick t;
        arm t
      end)

let start ~engine ~stats ~swap ~tiers ~relocate ~rate ~repair_budget =
  let rate = max 1 rate in
  (* Examine ~1% of the per-second rate per tick, so the scan is spread
     over ~100 ticks a second instead of one burst. *)
  let chunk = max 1 (rate / 100) in
  let tick_us = max 1 (chunk * 1_000_000 / rate) in
  let t =
    {
      engine;
      stats;
      swap;
      tiers;
      relocate;
      chunk;
      tick_us;
      repair_budget = max 0 repair_budget;
      cursor = 0;
      repairs_left = max 0 repair_budget;
      budget = 0;
      inflight = 0;
      stopped = false;
    }
  in
  arm t;
  t

let stop t = t.stopped <- true
