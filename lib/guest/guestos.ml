module Hostmm = Host.Hostmm
module Cgroup = Host.Cgroup
module Content = Storage.Content

type slot_state = S_unmapped | S_mapped of int | S_swapped of int

type region = {
  rid : int;
  slots : slot_state array;
  mutable live : bool;
}

type file = { fid : int; start_block : int; nblocks : int }

type ra_state = { mutable expected : int; mutable window : int }

type kind =
  | K_free
  | K_kernel
  | K_cache of int  (* backing block *)
  | K_anon of region * int
  | K_balloon

type t = {
  engine : Sim.Engine.t;
  host : Hostmm.t;
  gid : int;
  stats : Metrics.Stats.t;
  cfg : Gconfig.t;
  kinds : kind array;
  referenced : Bytes.t;
  arena : Mem.Flru.arena;  (* node id = gpa *)
  lru : Cgroup.t;  (* guest-side active/inactive lists *)
  mutable free : int list;
  mutable nfree : int;
  cache : (int, int) Hashtbl.t;  (* block -> gpa *)
  dirty : (int, unit) Hashtbl.t;  (* gpa set *)
  pending_blocks : (int, (unit -> unit) list ref) Hashtbl.t;
  ra : (int, ra_state) Hashtbl.t;  (* per-file readahead state *)
  swap_alloc : Slot_alloc.t;
  swap_rev : (int, region * int) Hashtbl.t;  (* slot -> (region, idx) *)
  mutable fs_cursor : int;  (* next unallocated data block *)
  mutable next_rid : int;
  mutable next_fid : int;
  kernel_gpas : int array;
  mutable kernel_rr : int;
  mutable balloon_pages : int list;
  mutable nballoon : int;
  mutable balloon_target_ : int;
  mutable balloon_busy : bool;
  mutable reclaiming : bool;
  mutable reclaim_waiters : (unit -> unit) list;
  mutable reclaim_stress : int;
  mutable futility_stress : int;
  mutable swap_window_start : Sim.Time.t;
  mutable swapped_in_window : int;
  mutable thrash_windows : int;
  mutable on_oom : unit -> unit;
  mutable oomed_ : bool;
  mutable services_started : bool;
  rng : Sim.Rng.t;
}

let create ~engine ~host ~gid ~stats ~config =
  let n = config.Gconfig.mem_pages in
  let arena = Mem.Flru.arena ~nodes:n () in
  {
    engine;
    host;
    gid;
    stats;
    cfg = config;
    kinds = Array.make n K_free;
    referenced = Bytes.make n '\000';
    arena;
    lru = Cgroup.create ~arena ~limit_frames:None;
    free = List.init n (fun i -> i);
    nfree = n;
    cache = Hashtbl.create 4096;
    dirty = Hashtbl.create 256;
    pending_blocks = Hashtbl.create 64;
    ra = Hashtbl.create 8;
    swap_alloc = Slot_alloc.create ~nslots:config.Gconfig.swap_blocks;
    swap_rev = Hashtbl.create 4096;
    fs_cursor = config.Gconfig.swap_blocks;
    next_rid = 0;
    next_fid = 0;
    kernel_gpas = Array.make config.Gconfig.kernel_pages (-1);
    kernel_rr = 0;
    balloon_pages = [];
    nballoon = 0;
    balloon_target_ = 0;
    balloon_busy = false;
    reclaiming = false;
    reclaim_waiters = [];
    reclaim_stress = 0;
    futility_stress = 0;
    swap_window_start = Sim.Time.zero;
    swapped_in_window = 0;
    thrash_windows = 0;
    on_oom = (fun () -> ());
    oomed_ = false;
    services_started = false;
    rng = Sim.Rng.of_int (0x5eed + (31 * gid));
  }

let gid t = t.gid
let config t = t.cfg
let after t cost_us k = (Sim.Engine.run_after t.engine (Sim.Time.us cost_us) k)

let set_ref t gpa = Bytes.set t.referenced gpa '\001'
let clear_ref t gpa = Bytes.set t.referenced gpa '\000'
let is_ref t gpa = Bytes.get t.referenced gpa <> '\000'

(* ------------------------------------------------------------------ *)
(* Free list / kinds                                                   *)
(* ------------------------------------------------------------------ *)

(* Caller must already have detached the gpa from the LRU. *)
let free_gpa t gpa =
  t.kinds.(gpa) <- K_free;
  clear_ref t gpa;
  t.free <- gpa :: t.free;
  t.nfree <- t.nfree + 1

let pop_free t =
  match t.free with
  | [] -> None
  | gpa :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      Some gpa

(* ------------------------------------------------------------------ *)
(* Reclaim (guest kswapd / direct reclaim)                             *)
(* ------------------------------------------------------------------ *)

let swap_block_of_slot slot = slot  (* swap partition occupies blocks 0.. *)

(* Does this disk request honor 4 KiB alignment?  Linux guests with a 4K
   logical sector always do; Windows-style guests issue a configurable
   fraction of sporadic sub-page accesses (paper Section 5.4). *)
let draw_aligned t =
  t.cfg.misaligned_io_percent = 0
  || Sim.Rng.int t.rng 100 >= t.cfg.misaligned_io_percent

let drop_cache_page t gpa block =
  Hashtbl.remove t.cache block;
  Hashtbl.remove t.dirty gpa;
  free_gpa t gpa

let maybe_oom t =
  if t.nfree < t.cfg.oom_min_free && not t.oomed_ then begin
    t.oomed_ <- true;
    t.stats.oom_kills <- t.stats.oom_kills + 1;
    t.on_oom ()
  end

(* Swap-storm detector: a ballooned guest that swaps anonymous memory
   faster than a large fraction of its usable memory per second is
   thrashing against a demand spike it cannot satisfy — the situation in
   which the paper's guests invoked the OOM/low-memory killers
   (Section 2.4).  Unballooned guests never trigger this: the host hides
   the pressure from them. *)
let note_swap_pressure t =
  let now = Sim.Engine.now t.engine in
  let usable =
    max 1 (t.cfg.mem_pages - t.nballoon - Array.length t.kernel_gpas)
  in
  if Sim.Time.sub now t.swap_window_start > Sim.Time.sec 1 then begin
    (* Window rollover: a window with substantial swap-out traffic is a
       thrash window; several in a row mean the working set durably
       exceeds usable memory, which only happens to ballooned guests
       (unballooned ones never feel host pressure) and is when their
       OOM/low-memory killers strike (paper Section 2.4). *)
    if t.swapped_in_window > usable * 2 / 100 then
      t.thrash_windows <- t.thrash_windows + 1
    else t.thrash_windows <- 0;
    t.swap_window_start <- now;
    t.swapped_in_window <- 0
  end;
  t.swapped_in_window <- t.swapped_in_window + 1;
  if t.nballoon > 0 && t.thrash_windows >= 5 && not t.oomed_ then begin
    t.oomed_ <- true;
    t.stats.oom_kills <- t.stats.oom_kills + 1;
    t.on_oom ()
  end

(* Evict one page chosen by the scan; [k] runs when the page is free (a
   dirty or anonymous page must be written to the virtual disk first). *)
let evict_page t gpa k =
  match t.kinds.(gpa) with
  | K_cache block when Hashtbl.mem t.pending_blocks block ->
      (* Page locked for in-flight I/O: unevictable until it completes. *)
      Cgroup.move t.lru Cgroup.File_active gpa;
      k false
  | K_cache block when not (Hashtbl.mem t.dirty gpa) ->
      Cgroup.remove t.lru gpa;
      drop_cache_page t gpa block;
      k true
  | K_cache block ->
      Cgroup.remove t.lru gpa;
      Hostmm.vio_write t.host ~aligned:(draw_aligned t) ~guest:t.gid
        ~block0:block ~gpas:[| gpa |] (fun () ->
          drop_cache_page t gpa block;
          k true)
  | K_anon (r, idx) -> (
      match Slot_alloc.alloc t.swap_alloc with
      | None ->
          (* Guest swap full: page is effectively unevictable; park it on
             the active list so the scan stops revisiting it. *)
          Cgroup.move t.lru Cgroup.Anon_active gpa;
          k false
      | Some slot ->
          Cgroup.remove t.lru gpa;
          t.stats.guest_swapouts <- t.stats.guest_swapouts + 1;
          note_swap_pressure t;
          Hashtbl.replace t.swap_rev slot (r, idx);
          Hostmm.vio_write t.host ~aligned:(draw_aligned t) ~guest:t.gid
            ~block0:(swap_block_of_slot slot) ~gpas:[| gpa |] (fun () ->
              if r.live && r.slots.(idx) = S_mapped gpa then begin
                r.slots.(idx) <- S_swapped slot;
                free_gpa t gpa
              end
              else begin
                (* Region died or page was repurposed mid-writeback. *)
                Hashtbl.remove t.swap_rev slot;
                if Slot_alloc.is_allocated t.swap_alloc slot then
                  Slot_alloc.free t.swap_alloc slot;
                if t.kinds.(gpa) = K_anon (r, idx) then free_gpa t gpa
              end;
              k true))
  | K_free | K_kernel | K_balloon -> assert false

let refill_inactive t ~file =
  let active = if file then Cgroup.File_active else Cgroup.Anon_active in
  let inactive = if file then Cgroup.File_inactive else Cgroup.Anon_inactive in
  let moved = ref 0 in
  while
    Cgroup.inactive_low t.lru ~file
    && Cgroup.length t.lru active > 0
    && !moved < t.cfg.reclaim_batch
  do
    match Cgroup.tail t.lru active with
    | None -> moved := t.cfg.reclaim_batch
    | Some gpa ->
        incr moved;
        clear_ref t gpa;
        Cgroup.move t.lru inactive gpa
  done

let shrink t ~target ?(on_done = fun ~freed:_ ~scanned:_ -> ()) k =
  let freed = ref 0 and scanned = ref 0 in
  let max_scan = (4 * Cgroup.resident t.lru) + 64 in
  let finish () =
    on_done ~freed:!freed ~scanned:!scanned;
    k ()
  in
  let rec loop () =
    if !freed >= target || t.nfree >= t.cfg.high_free_pages then finish ()
    else begin
      refill_inactive t ~file:true;
      refill_inactive t ~file:false;
      let victim =
        let rec try_lists = function
          | [] -> None
          | id :: rest -> (
              match Cgroup.tail t.lru id with
              | Some gpa -> Some gpa
              | None -> try_lists rest)
        in
        try_lists [ Cgroup.File_inactive; Cgroup.Anon_inactive ]
      in
      match victim with
      | None ->
          maybe_oom t;
          finish ()
      | Some gpa ->
          incr scanned;
          if is_ref t gpa && !scanned <= max_scan then begin
            clear_ref t gpa;
            let active =
              match t.kinds.(gpa) with
              | K_cache _ -> Cgroup.File_active
              | K_anon _ -> Cgroup.Anon_active
              | K_free | K_kernel | K_balloon -> assert false
            in
            Cgroup.move t.lru active gpa;
            loop ()
          end
          else
            evict_page t gpa (fun did_free ->
                if did_free then incr freed;
                if !scanned > max_scan * 2 then begin
                  maybe_oom t;
                  finish ()
                end
                else loop ())
    end
  in
  loop ()

let reclaim t k =
  if t.reclaiming then t.reclaim_waiters <- k :: t.reclaim_waiters
  else begin
    t.reclaiming <- true;
    let target = max t.cfg.reclaim_batch (t.cfg.high_free_pages - t.nfree) in
    let on_done ~freed ~scanned =
      (* Reclaim futility: scanning mountains of referenced pages for a
         handful of frees means the working set exceeds usable memory —
         a ballooned guest in this state OOM-kills (Section 2.4). *)
      if t.nballoon > 0 && scanned > 8 * max 1 freed && scanned > 64 then begin
        t.futility_stress <- t.futility_stress + 1;
        if t.futility_stress > t.cfg.oom_stress_limit / 2 && not t.oomed_ then begin
          t.oomed_ <- true;
          t.stats.oom_kills <- t.stats.oom_kills + 1;
          t.on_oom ()
        end
      end
      else t.futility_stress <- 0
    in
    shrink t ~target ~on_done (fun () ->
        t.reclaiming <- false;
        (* Sustained starvation triggers the low-memory killer: reclaim
           keeps running but cannot lift free pages off the floor — the
           over-ballooning failure mode of Section 2.4. *)
        if t.nfree < t.cfg.min_free_pages / 2 then begin
          t.reclaim_stress <- t.reclaim_stress + 1;
          if t.reclaim_stress > t.cfg.oom_stress_limit then begin
            t.reclaim_stress <- 0;
            if not t.oomed_ then begin
              t.oomed_ <- true;
              t.stats.oom_kills <- t.stats.oom_kills + 1;
              t.on_oom ()
            end
          end
        end
        else t.reclaim_stress <- 0;
        let ws = t.reclaim_waiters in
        t.reclaim_waiters <- [];
        k ();
        List.iter (fun w -> w ()) ws)
  end

(* Allocate one guest page, reclaiming if the free list runs low. *)
let rec gpa_alloc t k =
  if t.nfree > t.cfg.min_free_pages then
    match pop_free t with Some gpa -> k gpa | None -> assert false
  else
    reclaim t (fun () ->
        match pop_free t with
        | Some gpa -> k gpa
        | None ->
            maybe_oom t;
            if t.nfree = 0 then
              (* OOM freed nothing: stall briefly and retry; the balloon
                 or another thread may release memory. *)
              after t 1000 (fun () -> gpa_alloc t k)
            else gpa_alloc t k)

(* ------------------------------------------------------------------ *)
(* Boot / warmup                                                       *)
(* ------------------------------------------------------------------ *)

let boot t k =
  let n = Array.length t.kernel_gpas in
  let rec go i =
    if i >= n then k ()
    else
      match pop_free t with
      | None -> failwith "Guestos.boot: no memory for kernel"
      | Some gpa ->
          t.kinds.(gpa) <- K_kernel;
          t.kernel_gpas.(i) <- gpa;
          Hostmm.rep_write t.host ~guest:t.gid ~gpa
            ~content:(Content.fresh_anon ()) (fun () -> go (i + 1))
  in
  go 0

let warm_all_memory t k =
  let gpas = ref [] in
  let rec grab () =
    match pop_free t with
    | Some gpa ->
        gpas := gpa :: !gpas;
        grab ()
    | None -> ()
  in
  grab ();
  let all = List.rev !gpas in
  (* Free the pages back in small runs of 8 in a shuffled run order: a
     long-running guest's buddy allocator hands out pages whose host
     swap slots correlate only at small-run granularity, not globally
     (this drives the cost of stale reads in the paper's experiments). *)
  let arr = Array.of_list all in
  let nruns = (Array.length arr + 7) / 8 in
  let order = Array.init nruns (fun i -> i) in
  Sim.Rng.shuffle t.rng order;
  let rec go = function
    | [] ->
        Array.iter
          (fun run ->
            for j = 0 to 7 do
              let i = (run * 8) + j in
              if i < Array.length arr then free_gpa t arr.(i)
            done)
          order;
        k ()
    | gpa :: rest ->
        Hostmm.rep_write t.host ~guest:t.gid ~gpa
          ~content:(Content.fresh_anon ()) (fun () -> go rest)
  in
  go all

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let create_file t ~blocks =
  let vdisk = Hostmm.vdisk t.host t.gid in
  if t.fs_cursor + blocks > Storage.Vdisk.nblocks vdisk then
    invalid_arg "Guestos.create_file: virtual disk full";
  let f = { fid = t.next_fid; start_block = t.fs_cursor; nblocks = blocks } in
  t.next_fid <- t.next_fid + 1;
  t.fs_cursor <- t.fs_cursor + blocks;
  Hashtbl.replace t.ra f.fid { expected = -1; window = t.cfg.readahead_min };
  f

let file_blocks f = f.nblocks

let ra_of t f = Hashtbl.find t.ra f.fid

(* Wait until a block under I/O becomes readable. *)
let wait_block t block k =
  match Hashtbl.find_opt t.pending_blocks block with
  | None -> k ()
  | Some waiters -> waiters := k :: !waiters

let read_file t f ~idx k =
  if idx < 0 || idx >= f.nblocks then invalid_arg "Guestos.read_file: idx";
  let block = f.start_block + idx in
  let finish_hit gpa =
    set_ref t gpa;
    Hostmm.touch_read t.host ~guest:t.gid ~gpa (fun _content ->
        after t (t.cfg.syscall_us + t.cfg.memcpy_us) k)
  in
  match Hashtbl.find_opt t.cache block with
  | Some gpa -> wait_block t block (fun () -> finish_hit gpa)
  | None ->
      (* Miss: read a readahead window of consecutive uncached blocks. *)
      let ra = ra_of t f in
      if block = ra.expected then
        ra.window <- min (ra.window * 2) t.cfg.readahead_max
      else ra.window <- t.cfg.readahead_min;
      let max_count =
        let rec scan j =
          if
            j < ra.window
            && idx + j < f.nblocks
            && not (Hashtbl.mem t.cache (block + j))
          then scan (j + 1)
          else j
        in
        scan 1
      in
      ra.expected <- block + max_count;
      let gpas = Array.make max_count (-1) in
      let rec alloc_all i kk =
        if i >= max_count then kk ()
        else
          gpa_alloc t (fun gpa ->
              gpas.(i) <- gpa;
              alloc_all (i + 1) kk)
      in
      alloc_all 0 (fun () ->
          (* Register cache entries and pending state before the I/O. *)
          Array.iteri
            (fun i gpa ->
              let b = block + i in
              t.kinds.(gpa) <- K_cache b;
              Hashtbl.replace t.cache b gpa;
              Hashtbl.replace t.pending_blocks b (ref []);
              Cgroup.insert t.lru Cgroup.File_inactive gpa)
            gpas;
          Hostmm.vio_read t.host ~aligned:(draw_aligned t) ~guest:t.gid
            ~block0:block ~gpas (fun () ->
              Array.iteri
                (fun i _gpa ->
                  let b = block + i in
                  match Hashtbl.find_opt t.pending_blocks b with
                  | None -> ()
                  | Some waiters ->
                      Hashtbl.remove t.pending_blocks b;
                      let ws = !waiters in
                      waiters := [];
                      List.iter (fun w -> w ()) ws)
                gpas;
              finish_hit gpas.(0)))

let write_file t f ~idx k =
  if idx < 0 || idx >= f.nblocks then invalid_arg "Guestos.write_file: idx";
  let block = f.start_block + idx in
  let overwrite gpa =
    set_ref t gpa;
    Hashtbl.replace t.dirty gpa ();
    Hostmm.rep_write t.host ~guest:t.gid ~gpa ~content:(Content.fresh_anon ())
      (fun () -> after t t.cfg.syscall_us k)
  in
  match Hashtbl.find_opt t.cache block with
  | Some gpa -> wait_block t block (fun () -> overwrite gpa)
  | None ->
      gpa_alloc t (fun gpa ->
          t.kinds.(gpa) <- K_cache block;
          Hashtbl.replace t.cache block gpa;
          Cgroup.insert t.lru Cgroup.File_inactive gpa;
          overwrite gpa)

let fsync_file t f k =
  let dirty_blocks = ref [] in
  for idx = f.nblocks - 1 downto 0 do
    let block = f.start_block + idx in
    match Hashtbl.find_opt t.cache block with
    | Some gpa when Hashtbl.mem t.dirty gpa ->
        dirty_blocks := (block, gpa) :: !dirty_blocks
    | Some _ | None -> ()
  done;
  let rec go = function
    | [] -> after t t.cfg.syscall_us k
    | (block, gpa) :: rest ->
        Hostmm.vio_write t.host ~aligned:(draw_aligned t) ~guest:t.gid
          ~block0:block ~gpas:[| gpa |] (fun () ->
            Hashtbl.remove t.dirty gpa;
            go rest)
  in
  go !dirty_blocks

(* ------------------------------------------------------------------ *)
(* Anonymous memory                                                    *)
(* ------------------------------------------------------------------ *)

let alloc_region t ~pages =
  let r =
    { rid = t.next_rid; slots = Array.make pages S_unmapped; live = true }
  in
  t.next_rid <- t.next_rid + 1;
  r

let region_pages r = Array.length r.slots

(* Demand-allocate and zero an anonymous page (first touch). *)
let map_anon t r ~idx k =
  gpa_alloc t (fun gpa ->
      r.slots.(idx) <- S_mapped gpa;
      t.kinds.(gpa) <- K_anon (r, idx);
      set_ref t gpa;
      Cgroup.insert t.lru Cgroup.Anon_active gpa;
      Hostmm.rep_write t.host ~guest:t.gid ~gpa ~content:Content.Zero (fun () ->
          after t t.cfg.guest_fault_us (fun () -> k gpa)))

(* Guest-level swap-in with a small cluster readahead over consecutive
   swap slots. *)
let swap_in t r ~idx ~slot k =
  t.stats.guest_major_faults <- t.stats.guest_major_faults + 1;
  let rec run_len j =
    if j >= t.cfg.swap_cluster then j
    else
      let s = slot + j in
      if
        s < Slot_alloc.nslots t.swap_alloc
        && Slot_alloc.is_allocated t.swap_alloc s
        &&
        match Hashtbl.find_opt t.swap_rev s with
        | Some (r', idx') -> r'.live && r'.slots.(idx') = S_swapped s
        | None -> false
      then run_len (j + 1)
      else j
  in
  let n = max 1 (run_len 1) in
  let gpas = Array.make n (-1) in
  let rec alloc_all i kk =
    if i >= n then kk ()
    else
      gpa_alloc t (fun gpa ->
          gpas.(i) <- gpa;
          alloc_all (i + 1) kk)
  in
  alloc_all 0 (fun () ->
      Hostmm.vio_read t.host ~aligned:(draw_aligned t) ~guest:t.gid
        ~block0:(swap_block_of_slot slot) ~gpas (fun () ->
          for j = 0 to n - 1 do
            let s = slot + j in
            match Hashtbl.find_opt t.swap_rev s with
            | Some (r', idx') when r'.live && r'.slots.(idx') = S_swapped s ->
                t.stats.guest_swapins <- t.stats.guest_swapins + 1;
                Hashtbl.remove t.swap_rev s;
                Slot_alloc.free t.swap_alloc s;
                r'.slots.(idx') <- S_mapped gpas.(j);
                t.kinds.(gpas.(j)) <- K_anon (r', idx');
                Cgroup.insert t.lru
                  (if j = 0 then Cgroup.Anon_active else Cgroup.Anon_inactive)
                  gpas.(j);
                if j = 0 then set_ref t gpas.(j)
            | Some _ | None ->
                (* Slot was released mid-read; return the spare page. *)
                free_gpa t gpas.(j)
          done;
          after t t.cfg.guest_fault_us (fun () ->
              if r.live && r.slots.(idx) = S_mapped gpas.(0) then k gpas.(0)
              else
                (* Lost a race; retry the touch path. *)
                k gpas.(0))))

(* Accesses to a freed region drop their continuation silently: this
   only happens after the OOM killer tore the process down, when the
   machine executor has already stopped caring about the thread. *)
let rec with_mapped t r ~idx k =
  if not r.live then ()
  else
    match r.slots.(idx) with
  | S_mapped gpa -> k gpa
  | S_unmapped -> map_anon t r ~idx k
  | S_swapped slot ->
      swap_in t r ~idx ~slot (fun _gpa ->
          (* Re-dispatch: the fault may have raced with reclaim. *)
          with_mapped t r ~idx k)

let touch t r ~idx ~write k =
  with_mapped t r ~idx (fun gpa ->
      set_ref t gpa;
      if write then
        Hostmm.touch_write t.host ~guest:t.gid ~gpa ~offset:0 ~len:512
          ~gen:(Content.fresh_gen ()) ~intent_full_page:false k
      else Hostmm.touch_read t.host ~guest:t.gid ~gpa (fun _ -> k ()))

let rec overwrite_page t r ~idx k =
  if not r.live then ()
  else
    match r.slots.(idx) with
  | S_mapped gpa ->
      set_ref t gpa;
      Hostmm.rep_write t.host ~guest:t.gid ~gpa
        ~content:(Content.fresh_anon ()) k
  | S_unmapped ->
      (* First touch: allocation + full overwrite collapse into one
         REP store of the new contents. *)
      gpa_alloc t (fun gpa ->
          r.slots.(idx) <- S_mapped gpa;
          t.kinds.(gpa) <- K_anon (r, idx);
          set_ref t gpa;
          Cgroup.insert t.lru Cgroup.Anon_active gpa;
          Hostmm.rep_write t.host ~guest:t.gid ~gpa
            ~content:(Content.fresh_anon ()) k)
  | S_swapped slot ->
      (* The guest kernel does not know the store will cover the whole
         page; it faults the old contents in first (the host-level
         Preventer is what avoids the *host* read in this situation). *)
      swap_in t r ~idx ~slot (fun _ -> overwrite_page t r ~idx k)

let rec memcpy_page t r ~idx k =
  if not r.live then ()
  else
  let gen = Content.fresh_gen () in
  let chunk = 512 in
  let nchunks = Storage.Geom.page_bytes / chunk in
  let store gpa j kk =
    Hostmm.touch_write t.host ~guest:t.gid ~gpa ~offset:(j * chunk) ~len:chunk
      ~gen ~intent_full_page:true kk
  in
  match r.slots.(idx) with
  | S_mapped gpa ->
      set_ref t gpa;
      let rec go j = if j >= nchunks then k () else store gpa j (fun () -> go (j + 1)) in
      go 0
  | S_unmapped ->
      gpa_alloc t (fun gpa ->
          r.slots.(idx) <- S_mapped gpa;
          t.kinds.(gpa) <- K_anon (r, idx);
          set_ref t gpa;
          Cgroup.insert t.lru Cgroup.Anon_active gpa;
          let rec go j =
            if j >= nchunks then k () else store gpa j (fun () -> go (j + 1))
          in
          go 0)
  | S_swapped slot -> swap_in t r ~idx ~slot (fun _ -> memcpy_page t r ~idx k)

let free_region t r =
  if r.live then begin
    r.live <- false;
    Array.iteri
      (fun idx st ->
        match st with
        | S_unmapped -> ()
        | S_mapped gpa ->
            if Mem.Flru.in_some_list t.arena gpa then
              Cgroup.remove t.lru gpa;
            free_gpa t gpa
        | S_swapped slot ->
            Hashtbl.remove t.swap_rev slot;
            if Slot_alloc.is_allocated t.swap_alloc slot then
              Slot_alloc.free t.swap_alloc slot;
            r.slots.(idx) <- S_unmapped)
      r.slots
  end

(* ------------------------------------------------------------------ *)
(* Balloon driver and background services                              *)
(* ------------------------------------------------------------------ *)

let set_balloon_target t ~pages = t.balloon_target_ <- max 0 pages
let balloon_target t = t.balloon_target_
let balloon_size t = t.nballoon

let inflate_step t k =
  let want = min t.cfg.balloon_chunk (t.balloon_target_ - t.nballoon) in
  let rec go i =
    if i >= want || t.oomed_ then k ()
    else
      gpa_alloc t (fun gpa ->
          t.kinds.(gpa) <- K_balloon;
          Hostmm.balloon_steal t.host ~guest:t.gid ~gpa;
          t.balloon_pages <- gpa :: t.balloon_pages;
          t.nballoon <- t.nballoon + 1;
          go (i + 1))
  in
  go 0

let deflate_step t =
  let want = min t.cfg.balloon_chunk (t.nballoon - t.balloon_target_) in
  for _ = 1 to want do
    match t.balloon_pages with
    | [] -> ()
    | gpa :: rest ->
        t.balloon_pages <- rest;
        t.nballoon <- t.nballoon - 1;
        Hostmm.balloon_return t.host ~guest:t.gid ~gpa;
        free_gpa t gpa
  done

let rec balloon_loop t () =
  if t.balloon_busy then ()
  else if t.nballoon < t.balloon_target_ then begin
    t.balloon_busy <- true;
    inflate_step t (fun () ->
        t.balloon_busy <- false;
        schedule_balloon t)
  end
  else begin
    if t.nballoon > t.balloon_target_ then deflate_step t;
    schedule_balloon t
  end

and schedule_balloon t =
  (Sim.Engine.run_after t.engine t.cfg.balloon_poll (balloon_loop t))

(* Light periodic kernel activity: the guest kernel touches a few of its
   own pages (timers, daemons).  Under host pressure these generate
   background major faults, as on a real idle guest. *)
let rec kernel_activity t () =
  let n = Array.length t.kernel_gpas in
  if n > 0 then begin
    let touched = ref 0 in
    let rec touch_next () =
      if !touched >= 4 then
        (Sim.Engine.run_after t.engine (Sim.Time.ms 100)
             (kernel_activity t))
      else begin
        incr touched;
        let gpa = t.kernel_gpas.(t.kernel_rr mod n) in
        t.kernel_rr <- t.kernel_rr + 1;
        if gpa >= 0 then
          Hostmm.touch_read t.host ~guest:t.gid ~gpa (fun _ -> touch_next ())
        else touch_next ()
      end
    in
    touch_next ()
  end

let start_services t =
  if not t.services_started then begin
    t.services_started <- true;
    schedule_balloon t;
    (Sim.Engine.run_after t.engine (Sim.Time.ms 100) (kernel_activity t))
  end

(* ------------------------------------------------------------------ *)
(* OOM / introspection                                                 *)
(* ------------------------------------------------------------------ *)

let set_oom_handler t f = t.on_oom <- f
let oomed t = t.oomed_
let free_pages t = t.nfree
let cache_pages t = Hashtbl.length t.cache
let dirty_cache_pages t = Hashtbl.length t.dirty

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let free_count = List.length t.free in
  if free_count <> t.nfree then
    fail "free list length %d <> nfree %d" free_count t.nfree;
  List.iter
    (fun gpa ->
      if t.kinds.(gpa) <> K_free then fail "gpa %d on free list but not K_free" gpa)
    t.free;
  Hashtbl.iter
    (fun block gpa ->
      match t.kinds.(gpa) with
      | K_cache b when b = block -> ()
      | _ -> fail "cache entry block %d -> gpa %d kind mismatch" block gpa)
    t.cache;
  Hashtbl.iter
    (fun slot (r, idx) ->
      if r.live && not (Slot_alloc.is_allocated t.swap_alloc slot) then
        fail "swap_rev slot %d not allocated" slot;
      if r.live then
        match r.slots.(idx) with
        | S_swapped s when s = slot -> ()
        | _ -> fail "swap_rev slot %d region state mismatch" slot)
    t.swap_rev
