(** Nesting-safe, work-sharing pool of OCaml 5 domains.

    The pool is built for fan-out over independent jobs — each bench
    experiment owns its engine, RNG and disk, so whole experiments run on
    separate domains, and the heavy experiments in turn fan their
    per-configuration machine runs out over the same pool.  Results always
    come back in submission order and per-job exceptions are captured
    rather than tearing down the pool, so a parallel sweep is observably
    identical to the serial one (modulo wall-clock).

    Jobs MAY call {!map} on the same pool: [map] is re-entrant.  A caller
    whose jobs are not yet done does not sleep on the fixed worker set —
    it pops and executes queued jobs itself (including other callers'
    jobs, since the shared queue is FIFO) until its own are done, and
    blocks only for jobs of its own that another domain is actively
    executing.  Every submitter therefore guarantees progress for
    everything it enqueued, and nested submissions cannot deadlock no
    matter how deep they go or how few workers exist.

    Most code should share one pool rather than spawning private worker
    sets: {!global} returns the process-wide instance (sized by
    [VSWAPPER_JOBS] at first use; resize with {!set_global_jobs}). *)

type t

(** Upper bound on the pool width.  The OCaml runtime supports at most
    128 simultaneous domains; requested widths are clamped to
    [1 .. max_jobs] (with a once-per-process warning on stderr when an
    explicitly requested width is clamped). *)
val max_jobs : int

(** [default_jobs ()] is the pool width used when [?jobs] is omitted: the
    [VSWAPPER_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count () - 1], floored at 1. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains ([jobs] counts the
    submitting domain, which also executes work during {!map}).  With
    [jobs <= 1] no domains are spawned and [map] degenerates to an inline
    serial loop — bit-identical to running the jobs by hand. *)
val create : ?jobs:int -> unit -> t

(** [jobs t] is the effective parallelism (clamped to [1 .. max_jobs]). *)
val jobs : t -> int

(** [map t f xs] applies [f] to every element of [xs], fanning the calls
    out across the pool, and returns the results in the order of [xs].
    An exception raised by [f x] is captured as [Error exn] for that
    element only; other jobs — including those of an enclosing [map] that
    the failing job was nested under — are unaffected.  Safe to call from
    inside a job running on the same pool (see the header). *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Cumulative execution counters of a pool, for observability (surfaced
    as the bench JSON's ["parallel"] section).  [worker_jobs] were
    executed by dedicated worker domains; [helper_jobs] by a submitter
    inside {!map} — its own jobs, another caller's, or the inline serial
    path; [peak_queue_depth] is the deepest the shared queue has been. *)
type stats = {
  jobs : int;
  worker_jobs : int;
  helper_jobs : int;
  peak_queue_depth : int;
}

(** [iter_all t thunks] runs every thunk to completion before returning —
    a barrier fan-out for callers that step preallocated shards every
    epoch.  Unlike {!map} there is no per-job result boxing and no list
    conversion: the caller owns (and reuses) the thunk array, so the
    steady-state epoch loop allocates only queue nodes.  The submitter
    helps execute queued work exactly as in [map], so nested use is
    safe.  If thunks raise, every thunk still runs and the first
    exception (in completion order) is re-raised after the barrier.
    With [jobs t <= 1] the thunks run inline, in array order. *)
val iter_all : t -> (unit -> unit) array -> unit

val stats : t -> stats

(** [reset_stats t] zeroes the counters (not [jobs]). *)
val reset_stats : t -> unit

(** [shutdown t] drains nothing (no jobs may be in flight), stops the
    workers and joins their domains.  The pool is unusable afterwards.
    Idempotent.  Do not shut down the {!global} pool directly — use
    {!set_global_jobs} to replace it. *)
val shutdown : t -> unit

(** [run ?jobs f xs] is [create ?jobs ()], {!map}, {!shutdown} — a
    private throwaway pool.  Prefer [map (global ()) f xs] unless the
    jobs must not share workers with the rest of the process. *)
val run : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [global ()] is the process-wide shared pool, created on first use
    with {!default_jobs} width.  Nested [map] calls on it are safe, so
    both the experiment sweep and the per-configuration shards inside
    individual experiments submit here. *)
val global : unit -> t

(** [set_global_jobs j] resizes the global pool (shutting the previous
    instance down and spawning a fresh one) — a no-op when the width is
    unchanged.  Must not be called while jobs are in flight on it.
    [j = 1] forces the serial inline path for every subsequent [map]. *)
val set_global_jobs : int -> unit
