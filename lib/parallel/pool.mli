(** Fixed-size pool of OCaml 5 domains with a shared work queue.

    The pool is built for fan-out over independent jobs — each bench
    experiment owns its engine, RNG and disk, so whole experiments can run
    on separate domains.  Results always come back in submission order and
    per-job exceptions are captured rather than tearing down the pool, so
    a parallel sweep is observably identical to the serial one (modulo
    wall-clock).

    Jobs must not themselves call {!map} on the same pool (workers do not
    steal, so nested submissions can deadlock once all workers block). *)

type t

(** [default_jobs ()] is the pool width used when [?jobs] is omitted: the
    [VSWAPPER_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count () - 1], floored at 1. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains ([jobs] counts the
    submitting domain, which also executes work during {!map}).  With
    [jobs <= 1] no domains are spawned and [map] degenerates to an inline
    serial loop — bit-identical to running the jobs by hand. *)
val create : ?jobs:int -> unit -> t

(** [jobs t] is the effective parallelism (clamped to [1 .. 126]). *)
val jobs : t -> int

(** [map t f xs] applies [f] to every element of [xs], fanning the calls
    out across the pool, and returns the results in the order of [xs].
    An exception raised by [f x] is captured as [Error exn] for that
    element only; other jobs are unaffected. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [shutdown t] drains nothing (no jobs may be in flight), stops the
    workers and joins their domains.  The pool is unusable afterwards.
    Idempotent. *)
val shutdown : t -> unit

(** [run ?jobs f xs] is [create ?jobs ()], {!map}, {!shutdown}. *)
val run : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
