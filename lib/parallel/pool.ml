type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* The OCaml runtime supports at most 128 simultaneous domains; stay
   comfortably below, counting the submitting domain. *)
let max_jobs = 126

let clamp_jobs j = max 1 (min max_jobs j)

let default_jobs () =
  let fallback () = clamp_jobs (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "VSWAPPER_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> clamp_jobs n
      | Some _ | None -> fallback ())
  | None -> fallback ()

(* Worker loop: block for work, run it, repeat until closed and drained.
   Tasks never raise — [map] wraps each job in its own exception capture —
   so a worker only exits via [shutdown]. *)
let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.mutex (* closed *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    task ();
    worker t
  end

let create ?jobs () =
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  if t.jobs <= 1 || n <= 1 then
    (* Serial reference path: same code the workers run, same order the
       results come back in. *)
    Array.iteri
      (fun i x -> results.(i) <- Some (try Ok (f x) with e -> Error e))
      arr
  else begin
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref n in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i x ->
        Queue.add
          (fun () ->
            let r = try Ok (f x) with e -> Error e in
            Mutex.lock done_mutex;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal done_cond;
            Mutex.unlock done_mutex)
          t.tasks)
      arr;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The submitting domain works too, then waits for the stragglers. *)
    let rec drain () =
      Mutex.lock t.mutex;
      if Queue.is_empty t.tasks then Mutex.unlock t.mutex
      else begin
        let task = Queue.pop t.tasks in
        Mutex.unlock t.mutex;
        task ();
        drain ()
      end
    in
    drain ();
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex
  end;
  Array.to_list (Array.map Option.get results)

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let run ?jobs f xs =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
