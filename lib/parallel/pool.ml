type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  (* Execution accounting (read cross-domain by [stats]):
     [worked]  jobs executed by dedicated worker domains,
     [helped]  jobs executed by a submitter inside [map] (the inline
               serial path counts here too — the submitter ran them),
     [peak]    deepest the shared queue has been (updated under
               [mutex] at enqueue time, so the max is exact). *)
  worked : int Atomic.t;
  helped : int Atomic.t;
  peak : int Atomic.t;
}

(* The OCaml runtime supports at most 128 simultaneous domains; stay
   comfortably below, counting the submitting domain. *)
let max_jobs = 126

let clamp_jobs j = max 1 (min max_jobs j)

(* Explicitly requested widths (the [?jobs] argument, [VSWAPPER_JOBS],
   bench [--jobs]) warn the first time one is clamped.  The derived
   fallback [recommended_domain_count () - 1] clamps silently — it hits
   the floor on every 1-core box and is not a user request. *)
let clamp_warned = Atomic.make false

let clamp_jobs_requested j =
  let clamped = clamp_jobs j in
  if clamped <> j && not (Atomic.exchange clamp_warned true) then
    Printf.eprintf
      "[parallel] warning: requested %d jobs clamped to %d (valid range 1..%d)\n%!"
      j clamped max_jobs;
  clamped

let default_jobs () =
  let fallback () = clamp_jobs (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "VSWAPPER_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> clamp_jobs_requested n
      | Some _ | None -> fallback ())
  | None -> fallback ()

(* Worker loop: block for work, run it, repeat until closed and drained.
   Tasks never raise — [map] wraps each job in its own exception capture —
   so a worker only exits via [shutdown]. *)
let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.mutex (* closed *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    Atomic.incr t.worked;
    task ();
    worker t
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> clamp_jobs_requested j
    | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      closed = false;
      workers = [];
      worked = Atomic.make 0;
      helped = Atomic.make 0;
      peak = Atomic.make 0;
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

type stats = {
  jobs : int;
  worker_jobs : int;
  helper_jobs : int;
  peak_queue_depth : int;
}

let stats (t : t) =
  {
    jobs = t.jobs;
    worker_jobs = Atomic.get t.worked;
    helper_jobs = Atomic.get t.helped;
    peak_queue_depth = Atomic.get t.peak;
  }

let reset_stats t =
  Atomic.set t.worked 0;
  Atomic.set t.helped 0;
  Atomic.set t.peak 0

(* Re-entrant map.  The caller enqueues its jobs, then *helps*: it pops
   and executes queued jobs — its own or any other caller's — until its
   own jobs are all done, and blocks only when the queue is empty while
   jobs of its own are still in flight on other domains.  Because a
   submitter keeps popping for as long as any job of its own is
   un-started, every queued job always has at least one non-blocked
   domain (its submitter, or a dedicated worker) that will pop it, so
   nested submissions cannot deadlock the fixed worker set: a worker
   whose job calls [map] executes the nested jobs itself instead of
   sleeping on an occupied pool. *)
let map (t : t) f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  if t.jobs <= 1 || n <= 1 then begin
    (* Serial reference path: same code the workers run, same order the
       results come back in; the submitter executed them, so they count
       as helper jobs. *)
    Array.iteri
      (fun i x -> results.(i) <- Some (try Ok (f x) with e -> Error e))
      arr;
    ignore (Atomic.fetch_and_add t.helped n)
  end
  else begin
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref n in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i x ->
        Queue.add
          (fun () ->
            let r = try Ok (f x) with e -> Error e in
            Mutex.lock done_mutex;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal done_cond;
            Mutex.unlock done_mutex)
          t.tasks)
      arr;
    let depth = Queue.length t.tasks in
    if depth > Atomic.get t.peak then Atomic.set t.peak depth;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Help until this call's own jobs are done.  The queue is shared
       FIFO, so helping can execute another caller's job — that is what
       makes nesting safe: our un-started jobs can only sit behind work
       someone submitted earlier, and that submitter is likewise helping,
       not sleeping.  We stop as soon as [remaining] hits 0 (any leftover
       queue is other callers' business — their submitters and the
       workers drain it), so a caller's latency covers its own jobs plus
       at most the foreign job it is currently executing, not the whole
       backlog.  We block only when the queue is empty while stragglers
       of ours are in flight: whoever holds them is executing, not
       sleeping, so waiting cannot deadlock. *)
    let rec help () =
      Mutex.lock done_mutex;
      let mine_done = !remaining = 0 in
      Mutex.unlock done_mutex;
      if not mine_done then begin
        Mutex.lock t.mutex;
        match Queue.take_opt t.tasks with
        | Some task ->
            Mutex.unlock t.mutex;
            Atomic.incr t.helped;
            task ();
            help ()
        | None ->
            Mutex.unlock t.mutex;
            Mutex.lock done_mutex;
            while !remaining > 0 do
              Condition.wait done_cond done_mutex
            done;
            Mutex.unlock done_mutex
      end
    in
    help ()
  end;
  Array.to_list (Array.map Option.get results)

(* Barrier fan-out over preallocated thunks — the epoch hot path of the
   fleet simulator.  Same help-while-waiting discipline as [map], but
   the caller owns the thunk array (reused every epoch), so beyond the
   queue nodes themselves nothing is allocated per call: no list
   conversion, no per-job result boxing.  Exceptions are captured
   (first one wins, under [done_mutex] so the choice is well-defined)
   and re-raised after the barrier — every thunk still runs, keeping
   shard state consistent before the caller sees the failure. *)
let iter_all (t : t) (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else if t.jobs <= 1 || n = 1 then begin
    Array.iter (fun f -> f ()) thunks;
    ignore (Atomic.fetch_and_add t.helped n)
  end
  else begin
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref n in
    let first_exn = ref None in
    let finish exn =
      Mutex.lock done_mutex;
      (match (exn, !first_exn) with
      | Some e, None -> first_exn := Some e
      | _ -> ());
      decr remaining;
      if !remaining = 0 then Condition.signal done_cond;
      Mutex.unlock done_mutex
    in
    Mutex.lock t.mutex;
    Array.iter
      (fun f ->
        Queue.add
          (fun () ->
            match f () with
            | () -> finish None
            | exception e -> finish (Some e))
          t.tasks)
      thunks;
    let depth = Queue.length t.tasks in
    if depth > Atomic.get t.peak then Atomic.set t.peak depth;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    let rec help () =
      Mutex.lock done_mutex;
      let mine_done = !remaining = 0 in
      Mutex.unlock done_mutex;
      if not mine_done then begin
        Mutex.lock t.mutex;
        match Queue.take_opt t.tasks with
        | Some task ->
            Mutex.unlock t.mutex;
            Atomic.incr t.helped;
            task ();
            help ()
        | None ->
            Mutex.unlock t.mutex;
            Mutex.lock done_mutex;
            while !remaining > 0 do
              Condition.wait done_cond done_mutex
            done;
            Mutex.unlock done_mutex
      end
    in
    help ();
    match !first_exn with Some e -> raise e | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let run ?jobs f xs =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)

(* ------------------------------------------------------------------ *)
(* The process-global shared pool                                      *)
(* ------------------------------------------------------------------ *)

let global_mutex = Mutex.create ()
let global_pool : t option ref = ref None

let global () =
  Mutex.lock global_mutex;
  let t =
    match !global_pool with
    | Some t -> t
    | None ->
        let t = create () in
        global_pool := Some t;
        t
  in
  Mutex.unlock global_mutex;
  t

let set_global_jobs j =
  let j = clamp_jobs_requested j in
  Mutex.lock global_mutex;
  (match !global_pool with
  | Some t when t.jobs = j -> ()
  | prev ->
      (match prev with Some t -> shutdown t | None -> ());
      global_pool := Some (create ~jobs:j ()));
  Mutex.unlock global_mutex
