(* Strict RFC 8259 JSON parser used to lint the bench summary files.

   The point of strictness: the bench writer once emitted positive
   deltas as [+2.943] (printf %+.3f), which stock parsers reject, so a
   permissive hand-rolled checker would have waved the bug through.
   This parser accepts exactly the RFC grammar — no leading '+', no
   leading zeros, no trailing commas, no comments, one top-level
   value. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let fail pos msg = raise (Bad (pos, msg))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | Some _ | None -> continue_ := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st.pos (Printf.sprintf "expected %C, got %C" c c')
  | None -> fail st.pos (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let is_digit = function '0' .. '9' -> true | _ -> false

let parse_number st =
  let start = st.pos in
  (match peek st with Some '-' -> advance st | _ -> ());
  (* int part: '0' alone, or [1-9] digits — no leading zeros, and a
     leading '+' never reaches here (it is not a value start). *)
  (match peek st with
  | Some '0' -> (
      advance st;
      match peek st with
      | Some c when is_digit c -> fail st.pos "leading zero"
      | _ -> ())
  | Some c when is_digit c ->
      while match peek st with Some c -> is_digit c | None -> false do
        advance st
      done
  | _ -> fail st.pos "malformed number");
  (match peek st with
  | Some '.' -> (
      advance st;
      match peek st with
      | Some c when is_digit c ->
          while match peek st with Some c -> is_digit c | None -> false do
            advance st
          done
      | _ -> fail st.pos "digit required after decimal point")
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') -> (
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      match peek st with
      | Some c when is_digit c ->
          while match peek st with Some c -> is_digit c | None -> false do
            advance st
          done
      | _ -> fail st.pos "digit required in exponent")
  | _ -> ());
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail start ("unreadable number " ^ s)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some (('"' | '\\' | '/') as c) ->
            advance st;
            Buffer.add_char b c;
            go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'u' ->
            advance st;
            for _ = 1 to 4 do
              match peek st with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance st
              | _ -> fail st.pos "bad \\u escape"
            done;
            Buffer.add_char b '?';
            go ()
        | Some c -> fail st.pos (Printf.sprintf "bad escape \\%C" c)
        | None -> fail st.pos "unterminated escape")
    | Some c when Char.code c < 0x20 ->
        fail st.pos "unescaped control character in string"
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  String (Buffer.contents b)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> parse_string st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)
  | None -> fail st.pos "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Obj []
  | _ ->
      let rec members acc =
        skip_ws st;
        let key =
          match parse_string st with String s -> s | _ -> assert false
        in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ((key, v) :: acc)
        | Some '}' ->
            advance st;
            Obj (List.rev ((key, v) :: acc))
        | _ -> fail st.pos "expected ',' or '}' in object"
      in
      members []

and parse_list st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      List []
  | _ ->
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            elements (v :: acc)
        | Some ']' ->
            advance st;
            List (List.rev (v :: acc))
        | _ -> fail st.pos "expected ',' or ']' in array"
      in
      elements []

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "at byte %d: %s" pos msg)

let validate s = Result.map (fun _ -> ()) (parse s)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
