type t = {
  engine : Sim.Engine.t;
  period : Sim.Time.t;
  probes : (string * (unit -> float)) list;
  samples : (string, (Sim.Time.t * float) list ref) Hashtbl.t;
  mutable stopped : bool;
}

let rec tick t () =
  if not t.stopped then begin
    let now = Sim.Engine.now t.engine in
    List.iter
      (fun (name, fn) ->
        let cell = Hashtbl.find t.samples name in
        cell := (now, fn ()) :: !cell)
      t.probes;
    (Sim.Engine.run_after t.engine t.period (tick t))
  end

let create ~engine ~period probes =
  let samples = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace samples name (ref [])) probes;
  let t = { engine; period; probes; samples; stopped = false } in
  (Sim.Engine.run_after engine period (tick t));
  t

let stop t = t.stopped <- true

let points t name =
  match Hashtbl.find_opt t.samples name with
  | None -> []
  | Some cell -> List.rev !cell

let names t = List.map fst t.probes
