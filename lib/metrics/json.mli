(** Strict RFC 8259 JSON parser, for linting the bench summary files.

    Strictness is the point: the bench writer once emitted positive
    deltas as [+2.943] (printf [%+.3f]), which every stock parser
    rejects — a permissive checker would have waved the bug through.
    This parser accepts exactly the RFC grammar: no leading ['+'] or
    leading zeros on numbers, no trailing commas, no comments, one
    top-level value.  [\u] escapes are validated but decoded as ['?']
    (the linter never needs the code points). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

(** [parse s] parses the whole string as one JSON value. *)
val parse : string -> (t, string) result

(** [validate s] is [parse] with the value dropped. *)
val validate : string -> (unit, string) result

(** [member key v] looks a field up in an [Obj]; [None] on missing keys
    and non-objects. *)
val member : string -> t -> t option
