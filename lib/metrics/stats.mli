(** Simulation-wide event counters.

    One [Stats.t] is shared by every layer of a simulated machine (disk,
    host, guests, VSwapper components).  The fields mirror the quantities
    the paper plots: page faults split by the context they fire in, swap
    sector traffic, the pathology counters (silent writes, stale reads,
    false reads), reclaim scan effort, and VSwapper bookkeeping. *)

type t = {
  (* Physical disk. *)
  mutable disk_ops : int;  (** physical requests issued *)
  mutable disk_sectors_read : int;
  mutable disk_sectors_written : int;
  mutable disk_seq_reads : int;
      (** read batches that started at/just past the head (no seek) *)
  mutable disk_read_batches : int;
      (** coalesced media read accesses (one seek+transfer each) *)
  mutable disk_batched_reads : int;
      (** read requests completed via media batches (>= batches) *)
  mutable disk_batch_sectors : int;
      (** media sectors transferred by read batches (mean = /batches) *)
  mutable disk_mq_batches : int;
      (** media batches served on submission queues other than queue 0 *)
  mutable disk_queue_depth_highwater : int;
      (** gauge: max concurrent in-service batches across all queues *)
  (* Host swap traffic (subset of disk traffic). *)
  mutable swap_sectors_read : int;
  mutable swap_sectors_written : int;
  mutable host_swapins : int;  (** pages faulted in from host swap *)
  mutable host_swapouts : int;  (** pages written out to host swap *)
  (* Pathology counters (Section 3 of the paper). *)
  mutable silent_swap_writes : int;
      (** clean pages written to host swap although identical to image *)
  mutable stale_reads : int;
      (** swap-ins whose content was instantly DMA-overwritten *)
  mutable false_reads : int;
      (** swap-ins whose content was instantly CPU-overwritten *)
  mutable hypervisor_code_faults : int;
      (** faults on the hypervisor's own named pages (false anonymity) *)
  (* Fault counters split by execution context (Figure 9b vs 9c). *)
  mutable host_context_faults : int;
      (** faults while host/QEMU code runs in service of the guest *)
  mutable guest_context_faults : int;
      (** EPT violations while guest code runs *)
  (* Host reclaim effort (Figure 11c). *)
  mutable pages_scanned : int;
  (* Guest-side swapping (ballooning makes the guest do the work). *)
  mutable guest_swapins : int;
  mutable guest_swapouts : int;
  mutable guest_major_faults : int;
  mutable oom_kills : int;
  (* Swap Mapper. *)
  mutable mapper_tracked : int;  (** gauge: currently tracked pages *)
  mutable mapper_discards : int;  (** reclaims that dropped a named page *)
  mutable mapper_refetches : int;  (** faults served from the disk image *)
  mutable mapper_invalidations : int;
  (* False Reads Preventer. *)
  mutable preventer_remaps : int;  (** buffers promoted to pages, read avoided *)
  mutable preventer_merges : int;  (** buffers that needed a read + merge *)
  mutable preventer_timeouts : int;
  mutable preventer_rejects : int;  (** writes not emulated (cap reached) *)
  (* Ballooning. *)
  mutable balloon_inflated_pages : int;
  mutable balloon_deflated_pages : int;
  (* Fault injection and degradation (robustness PR). *)
  mutable faults_injected_media : int;
      (** read requests completed with a permanent media error *)
  mutable faults_injected_transient : int;
      (** read requests completed with a transient error *)
  mutable faults_degraded_batches : int;
      (** disk accesses served at a degraded (multiplied) latency *)
  mutable fault_retries : int;  (** transient-error resubmissions *)
  mutable fault_retry_exhausted : int;
      (** reads abandoned after the retry limit / error budget *)
  mutable fault_guest_kills : int;
      (** guests killed by the host (I/O failure or OOM last resort) *)
  mutable destage_media_errors : int;
      (** buffered sectors lost while destaging — media error, or
          transient retries exhausted (the write ack had already
          succeeded — write-back fault truth) *)
  mutable destage_transient_retries : int;
      (** buffered sectors re-queued after a transient destage error *)
  mutable swap_full_fallbacks : int;
      (** anon evictions skipped because the swap area was full *)
  mutable emergency_steals : int;
      (** frames reclaimed by the emergency (cross-cgroup) scan *)
  (* Async page-fault path (completion-callback fault dedup). *)
  mutable async_waiter_merges : int;
      (** faults that piggybacked on an already in-flight (guest, gpa) *)
  mutable async_faults_deferred : int;
      (** fault starts delayed by the per-guest in-flight bound *)
  mutable async_inflight_highwater : int;
      (** gauge: max concurrent in-flight target faults, machine-wide *)
  (* Event-engine telemetry, copied from [Sim.Engine.telemetry] when the
     machine run finishes. *)
  mutable engine_events_fired : int;  (** callbacks the engine invoked *)
  mutable engine_cancels_reclaimed : int;
      (** cancelled event records whose storage was recycled *)
  mutable engine_cascades : int;
      (** timing-wheel slot redistributions (0 under the heap backend) *)
  (* Tiered swap backends (all 0 in the default single-disk mode). *)
  mutable tier_admissions : int;  (** swap-outs accepted by the fast tier *)
  mutable tier_rejects : int;
      (** swap-outs the fast tier refused (incompressible page or tier
          full); the page went to the slow tier instead *)
  mutable tier_promotions : int;
      (** slow-tier slots copied into the fast tier on swap-in *)
  mutable tier_demotions : int;
      (** cold fast-tier slots written back to the slow tier *)
  mutable tier_writeback_sectors : int;
      (** sectors moved by demotion writeback *)
  mutable tier_fast_swapins : int;  (** swap-in reads served by the fast tier *)
  mutable tier_slow_swapins : int;  (** swap-in reads served by the slow tier *)
  mutable tier_fast_swapin_us : int;
      (** summed service time of fast-tier swap-ins (mean = /count) *)
  mutable tier_slow_swapin_us : int;
      (** summed service time of slow-tier swap-ins (mean = /count) *)
  (* Degraded-media survival layer (all 0 with scrubber/QoS/failover
     disabled — the default). *)
  mutable scrub_scans : int;  (** full passes the scrubber completed *)
  mutable scrub_verify_reads : int;
      (** low-priority verify reads issued over allocated slots *)
  mutable scrub_media_found : int;
      (** latent media errors the scrubber detected before any guest
          faulted on the slot *)
  mutable scrub_relocations : int;
      (** live slots moved to a healthy sector (content preserved) *)
  mutable scrub_reloc_failed : int;
      (** relocations abandoned (no free slot, raced with a fault, or
          the per-pass repair budget was exhausted) *)
  mutable qos_throttled : int;
      (** swap-in faults parked by a guest's token bucket *)
  mutable qos_throttle_wait_us : int;
      (** summed park time of throttled faults (mean = /throttled) *)
  mutable tier_degraded_events : int;
      (** fast-tier trips of the error budget (Healthy -> Degraded) *)
  mutable tier_recovered_events : int;
      (** successful probes back to Healthy *)
  mutable tier_failover_routes : int;
      (** swap-outs routed to the slow tier because the fast tier was
          degraded (counted on top of [tier_rejects]) *)
  mutable fault_media_reads : int;
      (** guest faults that hit a permanent media error (the scrubber's
          misses; catch rate = scrub_media_found / (found + these)) *)
  mutable fault_pages_lost : int;
      (** swapped-out pages irrecoverable when their guest was killed *)
}

val create : unit -> t

(** [copy t] snapshots all counters. *)
val copy : t -> t

(** [diff a b] is the field-wise [a - b]; useful for per-phase deltas. *)
val diff : t -> t -> t

(** [add dst src] accumulates [src] into [dst] in place: counters sum,
    the highwater gauges ([disk_queue_depth_highwater],
    [async_inflight_highwater]) merge with [max].  Both operations are
    commutative and associative, so a reduction over per-host stats is
    independent of merge order. *)
val add : t -> t -> unit

(** [fields t] lists every counter as [(name, value)], in declaration
    order — the stable feed for JSON emitters and fingerprint hashes. *)
val fields : t -> (string * int) list

(** [pp] prints every nonzero counter, one per line. *)
val pp : Format.formatter -> t -> unit
