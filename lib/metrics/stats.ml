type t = {
  mutable disk_ops : int;
  mutable disk_sectors_read : int;
  mutable disk_sectors_written : int;
  mutable disk_seq_reads : int;
  mutable disk_read_batches : int;
  mutable disk_batched_reads : int;
  mutable disk_batch_sectors : int;
  mutable disk_mq_batches : int;
  mutable disk_queue_depth_highwater : int;
  mutable swap_sectors_read : int;
  mutable swap_sectors_written : int;
  mutable host_swapins : int;
  mutable host_swapouts : int;
  mutable silent_swap_writes : int;
  mutable stale_reads : int;
  mutable false_reads : int;
  mutable hypervisor_code_faults : int;
  mutable host_context_faults : int;
  mutable guest_context_faults : int;
  mutable pages_scanned : int;
  mutable guest_swapins : int;
  mutable guest_swapouts : int;
  mutable guest_major_faults : int;
  mutable oom_kills : int;
  mutable mapper_tracked : int;
  mutable mapper_discards : int;
  mutable mapper_refetches : int;
  mutable mapper_invalidations : int;
  mutable preventer_remaps : int;
  mutable preventer_merges : int;
  mutable preventer_timeouts : int;
  mutable preventer_rejects : int;
  mutable balloon_inflated_pages : int;
  mutable balloon_deflated_pages : int;
  mutable faults_injected_media : int;
  mutable faults_injected_transient : int;
  mutable faults_degraded_batches : int;
  mutable fault_retries : int;
  mutable fault_retry_exhausted : int;
  mutable fault_guest_kills : int;
  mutable destage_media_errors : int;
  mutable destage_transient_retries : int;
  mutable swap_full_fallbacks : int;
  mutable emergency_steals : int;
  mutable async_waiter_merges : int;
  mutable async_faults_deferred : int;
  mutable async_inflight_highwater : int;
  mutable engine_events_fired : int;
  mutable engine_cancels_reclaimed : int;
  mutable engine_cascades : int;
  mutable tier_admissions : int;
  mutable tier_rejects : int;
  mutable tier_promotions : int;
  mutable tier_demotions : int;
  mutable tier_writeback_sectors : int;
  mutable tier_fast_swapins : int;
  mutable tier_slow_swapins : int;
  mutable tier_fast_swapin_us : int;
  mutable tier_slow_swapin_us : int;
  mutable scrub_scans : int;
  mutable scrub_verify_reads : int;
  mutable scrub_media_found : int;
  mutable scrub_relocations : int;
  mutable scrub_reloc_failed : int;
  mutable qos_throttled : int;
  mutable qos_throttle_wait_us : int;
  mutable tier_degraded_events : int;
  mutable tier_recovered_events : int;
  mutable tier_failover_routes : int;
  mutable fault_media_reads : int;
  mutable fault_pages_lost : int;
}

let create () =
  {
    disk_ops = 0;
    disk_sectors_read = 0;
    disk_sectors_written = 0;
    disk_seq_reads = 0;
    disk_read_batches = 0;
    disk_batched_reads = 0;
    disk_batch_sectors = 0;
    disk_mq_batches = 0;
    disk_queue_depth_highwater = 0;
    swap_sectors_read = 0;
    swap_sectors_written = 0;
    host_swapins = 0;
    host_swapouts = 0;
    silent_swap_writes = 0;
    stale_reads = 0;
    false_reads = 0;
    hypervisor_code_faults = 0;
    host_context_faults = 0;
    guest_context_faults = 0;
    pages_scanned = 0;
    guest_swapins = 0;
    guest_swapouts = 0;
    guest_major_faults = 0;
    oom_kills = 0;
    mapper_tracked = 0;
    mapper_discards = 0;
    mapper_refetches = 0;
    mapper_invalidations = 0;
    preventer_remaps = 0;
    preventer_merges = 0;
    preventer_timeouts = 0;
    preventer_rejects = 0;
    balloon_inflated_pages = 0;
    balloon_deflated_pages = 0;
    faults_injected_media = 0;
    faults_injected_transient = 0;
    faults_degraded_batches = 0;
    fault_retries = 0;
    fault_retry_exhausted = 0;
    fault_guest_kills = 0;
    destage_media_errors = 0;
    destage_transient_retries = 0;
    swap_full_fallbacks = 0;
    emergency_steals = 0;
    async_waiter_merges = 0;
    async_faults_deferred = 0;
    async_inflight_highwater = 0;
    engine_events_fired = 0;
    engine_cancels_reclaimed = 0;
    engine_cascades = 0;
    tier_admissions = 0;
    tier_rejects = 0;
    tier_promotions = 0;
    tier_demotions = 0;
    tier_writeback_sectors = 0;
    tier_fast_swapins = 0;
    tier_slow_swapins = 0;
    tier_fast_swapin_us = 0;
    tier_slow_swapin_us = 0;
    scrub_scans = 0;
    scrub_verify_reads = 0;
    scrub_media_found = 0;
    scrub_relocations = 0;
    scrub_reloc_failed = 0;
    qos_throttled = 0;
    qos_throttle_wait_us = 0;
    tier_degraded_events = 0;
    tier_recovered_events = 0;
    tier_failover_routes = 0;
    fault_media_reads = 0;
    fault_pages_lost = 0;
  }

let copy t = { t with disk_ops = t.disk_ops }

let diff a b =
  {
    disk_ops = a.disk_ops - b.disk_ops;
    disk_sectors_read = a.disk_sectors_read - b.disk_sectors_read;
    disk_sectors_written = a.disk_sectors_written - b.disk_sectors_written;
    disk_seq_reads = a.disk_seq_reads - b.disk_seq_reads;
    disk_read_batches = a.disk_read_batches - b.disk_read_batches;
    disk_batched_reads = a.disk_batched_reads - b.disk_batched_reads;
    disk_batch_sectors = a.disk_batch_sectors - b.disk_batch_sectors;
    disk_mq_batches = a.disk_mq_batches - b.disk_mq_batches;
    disk_queue_depth_highwater =
      a.disk_queue_depth_highwater - b.disk_queue_depth_highwater;
    swap_sectors_read = a.swap_sectors_read - b.swap_sectors_read;
    swap_sectors_written = a.swap_sectors_written - b.swap_sectors_written;
    host_swapins = a.host_swapins - b.host_swapins;
    host_swapouts = a.host_swapouts - b.host_swapouts;
    silent_swap_writes = a.silent_swap_writes - b.silent_swap_writes;
    stale_reads = a.stale_reads - b.stale_reads;
    false_reads = a.false_reads - b.false_reads;
    hypervisor_code_faults =
      a.hypervisor_code_faults - b.hypervisor_code_faults;
    host_context_faults = a.host_context_faults - b.host_context_faults;
    guest_context_faults = a.guest_context_faults - b.guest_context_faults;
    pages_scanned = a.pages_scanned - b.pages_scanned;
    guest_swapins = a.guest_swapins - b.guest_swapins;
    guest_swapouts = a.guest_swapouts - b.guest_swapouts;
    guest_major_faults = a.guest_major_faults - b.guest_major_faults;
    oom_kills = a.oom_kills - b.oom_kills;
    mapper_tracked = a.mapper_tracked - b.mapper_tracked;
    mapper_discards = a.mapper_discards - b.mapper_discards;
    mapper_refetches = a.mapper_refetches - b.mapper_refetches;
    mapper_invalidations = a.mapper_invalidations - b.mapper_invalidations;
    preventer_remaps = a.preventer_remaps - b.preventer_remaps;
    preventer_merges = a.preventer_merges - b.preventer_merges;
    preventer_timeouts = a.preventer_timeouts - b.preventer_timeouts;
    preventer_rejects = a.preventer_rejects - b.preventer_rejects;
    balloon_inflated_pages =
      a.balloon_inflated_pages - b.balloon_inflated_pages;
    balloon_deflated_pages =
      a.balloon_deflated_pages - b.balloon_deflated_pages;
    faults_injected_media = a.faults_injected_media - b.faults_injected_media;
    faults_injected_transient =
      a.faults_injected_transient - b.faults_injected_transient;
    faults_degraded_batches =
      a.faults_degraded_batches - b.faults_degraded_batches;
    fault_retries = a.fault_retries - b.fault_retries;
    fault_retry_exhausted = a.fault_retry_exhausted - b.fault_retry_exhausted;
    fault_guest_kills = a.fault_guest_kills - b.fault_guest_kills;
    destage_media_errors = a.destage_media_errors - b.destage_media_errors;
    destage_transient_retries =
      a.destage_transient_retries - b.destage_transient_retries;
    swap_full_fallbacks = a.swap_full_fallbacks - b.swap_full_fallbacks;
    emergency_steals = a.emergency_steals - b.emergency_steals;
    async_waiter_merges = a.async_waiter_merges - b.async_waiter_merges;
    async_faults_deferred = a.async_faults_deferred - b.async_faults_deferred;
    async_inflight_highwater =
      a.async_inflight_highwater - b.async_inflight_highwater;
    engine_events_fired = a.engine_events_fired - b.engine_events_fired;
    engine_cancels_reclaimed =
      a.engine_cancels_reclaimed - b.engine_cancels_reclaimed;
    engine_cascades = a.engine_cascades - b.engine_cascades;
    tier_admissions = a.tier_admissions - b.tier_admissions;
    tier_rejects = a.tier_rejects - b.tier_rejects;
    tier_promotions = a.tier_promotions - b.tier_promotions;
    tier_demotions = a.tier_demotions - b.tier_demotions;
    tier_writeback_sectors =
      a.tier_writeback_sectors - b.tier_writeback_sectors;
    tier_fast_swapins = a.tier_fast_swapins - b.tier_fast_swapins;
    tier_slow_swapins = a.tier_slow_swapins - b.tier_slow_swapins;
    tier_fast_swapin_us = a.tier_fast_swapin_us - b.tier_fast_swapin_us;
    tier_slow_swapin_us = a.tier_slow_swapin_us - b.tier_slow_swapin_us;
    scrub_scans = a.scrub_scans - b.scrub_scans;
    scrub_verify_reads = a.scrub_verify_reads - b.scrub_verify_reads;
    scrub_media_found = a.scrub_media_found - b.scrub_media_found;
    scrub_relocations = a.scrub_relocations - b.scrub_relocations;
    scrub_reloc_failed = a.scrub_reloc_failed - b.scrub_reloc_failed;
    qos_throttled = a.qos_throttled - b.qos_throttled;
    qos_throttle_wait_us = a.qos_throttle_wait_us - b.qos_throttle_wait_us;
    tier_degraded_events = a.tier_degraded_events - b.tier_degraded_events;
    tier_recovered_events = a.tier_recovered_events - b.tier_recovered_events;
    tier_failover_routes = a.tier_failover_routes - b.tier_failover_routes;
    fault_media_reads = a.fault_media_reads - b.fault_media_reads;
    fault_pages_lost = a.fault_pages_lost - b.fault_pages_lost;
  }

(* In-place [dst += src].  Every counter is a plain sum except the two
   highwater gauges, which merge with max: "deepest queue on any host"
   is the meaningful fleet-wide reading, and max keeps the merge
   order-independent so barrier reductions stay deterministic. *)
let add dst src =
  dst.disk_ops <- dst.disk_ops + src.disk_ops;
  dst.disk_sectors_read <- dst.disk_sectors_read + src.disk_sectors_read;
  dst.disk_sectors_written <-
    dst.disk_sectors_written + src.disk_sectors_written;
  dst.disk_seq_reads <- dst.disk_seq_reads + src.disk_seq_reads;
  dst.disk_read_batches <- dst.disk_read_batches + src.disk_read_batches;
  dst.disk_batched_reads <- dst.disk_batched_reads + src.disk_batched_reads;
  dst.disk_batch_sectors <- dst.disk_batch_sectors + src.disk_batch_sectors;
  dst.disk_mq_batches <- dst.disk_mq_batches + src.disk_mq_batches;
  dst.disk_queue_depth_highwater <-
    max dst.disk_queue_depth_highwater src.disk_queue_depth_highwater;
  dst.swap_sectors_read <- dst.swap_sectors_read + src.swap_sectors_read;
  dst.swap_sectors_written <-
    dst.swap_sectors_written + src.swap_sectors_written;
  dst.host_swapins <- dst.host_swapins + src.host_swapins;
  dst.host_swapouts <- dst.host_swapouts + src.host_swapouts;
  dst.silent_swap_writes <- dst.silent_swap_writes + src.silent_swap_writes;
  dst.stale_reads <- dst.stale_reads + src.stale_reads;
  dst.false_reads <- dst.false_reads + src.false_reads;
  dst.hypervisor_code_faults <-
    dst.hypervisor_code_faults + src.hypervisor_code_faults;
  dst.host_context_faults <- dst.host_context_faults + src.host_context_faults;
  dst.guest_context_faults <-
    dst.guest_context_faults + src.guest_context_faults;
  dst.pages_scanned <- dst.pages_scanned + src.pages_scanned;
  dst.guest_swapins <- dst.guest_swapins + src.guest_swapins;
  dst.guest_swapouts <- dst.guest_swapouts + src.guest_swapouts;
  dst.guest_major_faults <- dst.guest_major_faults + src.guest_major_faults;
  dst.oom_kills <- dst.oom_kills + src.oom_kills;
  dst.mapper_tracked <- dst.mapper_tracked + src.mapper_tracked;
  dst.mapper_discards <- dst.mapper_discards + src.mapper_discards;
  dst.mapper_refetches <- dst.mapper_refetches + src.mapper_refetches;
  dst.mapper_invalidations <-
    dst.mapper_invalidations + src.mapper_invalidations;
  dst.preventer_remaps <- dst.preventer_remaps + src.preventer_remaps;
  dst.preventer_merges <- dst.preventer_merges + src.preventer_merges;
  dst.preventer_timeouts <- dst.preventer_timeouts + src.preventer_timeouts;
  dst.preventer_rejects <- dst.preventer_rejects + src.preventer_rejects;
  dst.balloon_inflated_pages <-
    dst.balloon_inflated_pages + src.balloon_inflated_pages;
  dst.balloon_deflated_pages <-
    dst.balloon_deflated_pages + src.balloon_deflated_pages;
  dst.faults_injected_media <-
    dst.faults_injected_media + src.faults_injected_media;
  dst.faults_injected_transient <-
    dst.faults_injected_transient + src.faults_injected_transient;
  dst.faults_degraded_batches <-
    dst.faults_degraded_batches + src.faults_degraded_batches;
  dst.fault_retries <- dst.fault_retries + src.fault_retries;
  dst.fault_retry_exhausted <-
    dst.fault_retry_exhausted + src.fault_retry_exhausted;
  dst.fault_guest_kills <- dst.fault_guest_kills + src.fault_guest_kills;
  dst.destage_media_errors <-
    dst.destage_media_errors + src.destage_media_errors;
  dst.destage_transient_retries <-
    dst.destage_transient_retries + src.destage_transient_retries;
  dst.swap_full_fallbacks <- dst.swap_full_fallbacks + src.swap_full_fallbacks;
  dst.emergency_steals <- dst.emergency_steals + src.emergency_steals;
  dst.async_waiter_merges <- dst.async_waiter_merges + src.async_waiter_merges;
  dst.async_faults_deferred <-
    dst.async_faults_deferred + src.async_faults_deferred;
  dst.async_inflight_highwater <-
    max dst.async_inflight_highwater src.async_inflight_highwater;
  dst.engine_events_fired <- dst.engine_events_fired + src.engine_events_fired;
  dst.engine_cancels_reclaimed <-
    dst.engine_cancels_reclaimed + src.engine_cancels_reclaimed;
  dst.engine_cascades <- dst.engine_cascades + src.engine_cascades;
  dst.tier_admissions <- dst.tier_admissions + src.tier_admissions;
  dst.tier_rejects <- dst.tier_rejects + src.tier_rejects;
  dst.tier_promotions <- dst.tier_promotions + src.tier_promotions;
  dst.tier_demotions <- dst.tier_demotions + src.tier_demotions;
  dst.tier_writeback_sectors <-
    dst.tier_writeback_sectors + src.tier_writeback_sectors;
  dst.tier_fast_swapins <- dst.tier_fast_swapins + src.tier_fast_swapins;
  dst.tier_slow_swapins <- dst.tier_slow_swapins + src.tier_slow_swapins;
  dst.tier_fast_swapin_us <- dst.tier_fast_swapin_us + src.tier_fast_swapin_us;
  dst.tier_slow_swapin_us <- dst.tier_slow_swapin_us + src.tier_slow_swapin_us;
  dst.scrub_scans <- dst.scrub_scans + src.scrub_scans;
  dst.scrub_verify_reads <- dst.scrub_verify_reads + src.scrub_verify_reads;
  dst.scrub_media_found <- dst.scrub_media_found + src.scrub_media_found;
  dst.scrub_relocations <- dst.scrub_relocations + src.scrub_relocations;
  dst.scrub_reloc_failed <- dst.scrub_reloc_failed + src.scrub_reloc_failed;
  dst.qos_throttled <- dst.qos_throttled + src.qos_throttled;
  dst.qos_throttle_wait_us <-
    dst.qos_throttle_wait_us + src.qos_throttle_wait_us;
  dst.tier_degraded_events <-
    dst.tier_degraded_events + src.tier_degraded_events;
  dst.tier_recovered_events <-
    dst.tier_recovered_events + src.tier_recovered_events;
  dst.tier_failover_routes <-
    dst.tier_failover_routes + src.tier_failover_routes;
  dst.fault_media_reads <- dst.fault_media_reads + src.fault_media_reads;
  dst.fault_pages_lost <- dst.fault_pages_lost + src.fault_pages_lost

let fields t =
  [
    ("disk_ops", t.disk_ops);
    ("disk_sectors_read", t.disk_sectors_read);
    ("disk_sectors_written", t.disk_sectors_written);
    ("disk_seq_reads", t.disk_seq_reads);
    ("disk_read_batches", t.disk_read_batches);
    ("disk_batched_reads", t.disk_batched_reads);
    ("disk_batch_sectors", t.disk_batch_sectors);
    ("disk_mq_batches", t.disk_mq_batches);
    ("disk_queue_depth_highwater", t.disk_queue_depth_highwater);
    ("swap_sectors_read", t.swap_sectors_read);
    ("swap_sectors_written", t.swap_sectors_written);
    ("host_swapins", t.host_swapins);
    ("host_swapouts", t.host_swapouts);
    ("silent_swap_writes", t.silent_swap_writes);
    ("stale_reads", t.stale_reads);
    ("false_reads", t.false_reads);
    ("hypervisor_code_faults", t.hypervisor_code_faults);
    ("host_context_faults", t.host_context_faults);
    ("guest_context_faults", t.guest_context_faults);
    ("pages_scanned", t.pages_scanned);
    ("guest_swapins", t.guest_swapins);
    ("guest_swapouts", t.guest_swapouts);
    ("guest_major_faults", t.guest_major_faults);
    ("oom_kills", t.oom_kills);
    ("mapper_tracked", t.mapper_tracked);
    ("mapper_discards", t.mapper_discards);
    ("mapper_refetches", t.mapper_refetches);
    ("mapper_invalidations", t.mapper_invalidations);
    ("preventer_remaps", t.preventer_remaps);
    ("preventer_merges", t.preventer_merges);
    ("preventer_timeouts", t.preventer_timeouts);
    ("preventer_rejects", t.preventer_rejects);
    ("balloon_inflated_pages", t.balloon_inflated_pages);
    ("balloon_deflated_pages", t.balloon_deflated_pages);
    ("faults_injected_media", t.faults_injected_media);
    ("faults_injected_transient", t.faults_injected_transient);
    ("faults_degraded_batches", t.faults_degraded_batches);
    ("fault_retries", t.fault_retries);
    ("fault_retry_exhausted", t.fault_retry_exhausted);
    ("fault_guest_kills", t.fault_guest_kills);
    ("destage_media_errors", t.destage_media_errors);
    ("destage_transient_retries", t.destage_transient_retries);
    ("swap_full_fallbacks", t.swap_full_fallbacks);
    ("emergency_steals", t.emergency_steals);
    ("async_waiter_merges", t.async_waiter_merges);
    ("async_faults_deferred", t.async_faults_deferred);
    ("async_inflight_highwater", t.async_inflight_highwater);
    ("engine_events_fired", t.engine_events_fired);
    ("engine_cancels_reclaimed", t.engine_cancels_reclaimed);
    ("engine_cascades", t.engine_cascades);
    ("tier_admissions", t.tier_admissions);
    ("tier_rejects", t.tier_rejects);
    ("tier_promotions", t.tier_promotions);
    ("tier_demotions", t.tier_demotions);
    ("tier_writeback_sectors", t.tier_writeback_sectors);
    ("tier_fast_swapins", t.tier_fast_swapins);
    ("tier_slow_swapins", t.tier_slow_swapins);
    ("tier_fast_swapin_us", t.tier_fast_swapin_us);
    ("tier_slow_swapin_us", t.tier_slow_swapin_us);
    ("scrub_scans", t.scrub_scans);
    ("scrub_verify_reads", t.scrub_verify_reads);
    ("scrub_media_found", t.scrub_media_found);
    ("scrub_relocations", t.scrub_relocations);
    ("scrub_reloc_failed", t.scrub_reloc_failed);
    ("qos_throttled", t.qos_throttled);
    ("qos_throttle_wait_us", t.qos_throttle_wait_us);
    ("tier_degraded_events", t.tier_degraded_events);
    ("tier_recovered_events", t.tier_recovered_events);
    ("tier_failover_routes", t.tier_failover_routes);
    ("fault_media_reads", t.fault_media_reads);
    ("fault_pages_lost", t.fault_pages_lost);
  ]

let pp fmt t =
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf fmt "%-26s %d@." name v)
    (fields t)
