(** Pluggable swap-backend interface.

    A backend is where swapped-out pages live: the mechanical {!Disk},
    a compressed-RAM pool (zswap-style), or a far-memory node behind a
    network link.  Each implementation supplies the same five
    operations — read, fire-and-forget write, admission test, per-page
    release, and a used-bytes gauge — so the {!Tiers} composite can
    route pages between them without knowing their latency models.

    All three models are deterministic: the disk is the existing
    event-driven elevator; the compressed and remote tiers keep their
    state as integer microsecond cursors in virtual time (a busy
    compressor CPU, a busy network link), making service times a pure
    function of the event order. *)

(** Completion payload, identical to {!Disk.reply}: the outcome and the
    service duration. *)
type reply = Disk.reply = {
  result : (unit, Faults.Error.t) Stdlib.result;
  service : Sim.Time.t;
}

type t

val name : t -> string

(** Addressable size; [max_int] for the RAM-backed tiers, which are
    capacity-limited by admission (pool bytes / tier share) instead. *)
val capacity_sectors : t -> int

(** [read t ~sector ~nsectors ~queue ~attempt k] fetches sectors and
    calls [k] at the virtual completion time.  [queue] is meaningful
    for the disk backend (submission-queue steering); [attempt] keys
    transient-fault retries on the disk and remote backends.  The
    compressed and remote tiers fail only when built with a fault
    plan (pool corruption / link timeouts). *)
val read :
  t ->
  sector:int ->
  nsectors:int ->
  queue:int ->
  attempt:int ->
  (reply -> unit) ->
  unit

(** [write t ~queue ~sector ~nsectors] stores sectors, fire-and-forget
    (swap-out traffic awaits no ack).  The disk buffers and destages;
    the compressed tier charges compression CPU; the remote tier
    consumes link bandwidth. *)
val write : t -> queue:int -> sector:int -> nsectors:int -> unit

(** [admit t ~sector] asks whether the backend accepts the page at
    [sector].  The compressed tier rejects incompressible pages and
    pages that would overflow its pool; the others always accept. *)
val admit : t -> sector:int -> bool

(** [release t ~sector ~nsectors] returns per-page resources (pool
    bytes) when a slot is freed or its page moves to another tier. *)
val release : t -> sector:int -> nsectors:int -> unit

(** Current pool occupancy in bytes (0 for stateless backends). *)
val used_bytes : t -> int

(** [of_disk d] wraps the drive: reads are [Disk.submit ~kind:Read],
    writes are [Disk.write_buffered] (so they feed the destage path and
    its fault injection), admission always succeeds. *)
val of_disk : Disk.t -> t

(** [czram ~engine ~seed ~admit_ratio ~pool_bytes ~compress_us
    ~decompress_us] is a compressed-RAM tier.  Each page's
    compressed/uncompressed ratio is a pure hash of (seed, page index)
    in [0.15, 1.25); pages with ratio above [admit_ratio] — or that
    would push the pool past [pool_bytes] — are rejected.  Service is
    CPU time, [compress_us]/[decompress_us] per page, serialized on one
    compressor cursor: no seek, but concurrent requests queue.  When a
    [faults] plan is given, reads consult {!Faults.Plan.czram_error} —
    pool corruption, a persistent [Media] error keyed on the page. *)
val czram :
  ?faults:Faults.Plan.t ->
  engine:Sim.Engine.t ->
  seed:int ->
  admit_ratio:float ->
  pool_bytes:int ->
  compress_us:int ->
  decompress_us:int ->
  unit ->
  t

(** [remote ~engine ~rtt_us ~bytes_per_us ()] is a far-memory tier:
    every request pays a fixed [rtt_us] round-trip, and payloads
    serialize on a link of [bytes_per_us] bandwidth (a one-transfer
    token bucket), so concurrent swap-ins queue on link capacity.  When
    a [faults] plan is given, reads consult {!Faults.Plan.remote_error}
    — link timeouts, [Transient] errors that a retry can clear. *)
val remote :
  ?faults:Faults.Plan.t ->
  engine:Sim.Engine.t ->
  rtt_us:int ->
  bytes_per_us:float ->
  unit ->
  t
