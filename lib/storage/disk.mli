(** Mechanical hard-drive model with a write-back cache and batching
    request queues, optionally NVMe-style multi-queue.

    A single-spindle 7200 RPM drive (the paper's testbed has one Seagate
    Constellation 2 TB).  The service time of a media access is

    - a per-request command overhead, plus
    - a seek whose cost grows with the square root of the distance from
      the current head position (zero if the request starts exactly where
      the head rests, i.e. sequential I/O), plus
    - half a rotation of rotational latency whenever a seek occurred, plus
    - transfer time proportional to the sector count.

    Reads land in a sorted pending set.  A C-LOOK elevator picks the next
    request at or past the head position (wrapping to the lowest sector
    when nothing is ahead), and every queued request within
    [forward_skip_sectors] of the growing span end is coalesced into the
    same media access — one seek plus one transfer covering the whole
    span, the way a real NCQ/elevator queue merges adjacent requests.
    The single batch-completion event dispatches every member's
    completion callback in (sector, submission-order) position, so
    requests to the same sector still complete in submission order.  A
    batch of one behaves exactly like an unbatched read.

    Writes are acknowledged almost immediately into a write buffer (the
    drive cache plus host writeback behaves this way); buffered writes
    are merged into contiguous runs and flushed to the media when no read
    is waiting — or eagerly once the buffer exceeds its cap, at which
    point writes do delay reads, which is how heavy swap-out traffic
    hurts swap-in latency.  Destaging flushes from the head position when
    the head sits inside the chosen run (continuing the sweep instead of
    seeking back to the run start).  A read overlapping a buffered write
    is served from the buffer at RAM speed.

    The asymmetry between sequential and random access — about 200x at
    page granularity — is what makes every phenomenon in the paper
    matter, so it is the one thing this model must (and does) get right.

    {2 Multi-queue mode}

    With [num_queues > 1] the device exposes NVMe-style submission
    queues: each read is steered to a queue (the [?queue] argument to
    {!submit}, reduced mod [num_queues]), every queue runs its own
    C-LOOK elevator with a private head cursor, and queues service
    batches in parallel — up to [per_queue_depth] concurrent batches
    per queue — like independent flash channels.  The first
    [destage_queues] queues (default: just queue 0) double as destage
    channels for the shared write buffer, each with its own
    destage-in-flight flag.  Completion
    ordering stays deterministic: every batch completion is one engine
    event, same-tick events fire in schedule order, and no code path
    depends on hashtable iteration, so a sweep's output is
    byte-identical at any [--jobs] width.  With [num_queues = 1] and
    [per_queue_depth = 1] (the defaults) the device is exactly the
    single-spindle elevator described above. *)

type kind = Read | Write

(** Typed read failure, re-exported from {!Faults.Error}. *)
type error = Faults.Error.t = Media | Transient

(** What a completion callback receives: the request's outcome and the
    duration of the disk access that completed it (the degraded-latency
    multiplier, when injected, is visible here). *)
type reply = { result : (unit, error) Stdlib.result; service : Sim.Time.t }

type config = {
  min_seek_us : int;  (** track-to-track seek *)
  max_seek_us : int;  (** full-stroke seek *)
  full_stroke_sectors : int;  (** distance over which seek saturates *)
  capacity_sectors : int;  (** addressable size; requests past it are rejected *)
  half_rotation_us : int;  (** average rotational delay, 7200 RPM -> 4.17 ms *)
  us_per_sector : float;  (** media transfer rate, 140 MB/s -> 3.66 us *)
  request_overhead_us : int;  (** controller + virtualization-exit cost *)
  write_ack_us : int;  (** latency of a buffered-write acknowledgment *)
  write_buffer_sectors : int;  (** cap before writes push back on reads *)
  max_flush_sectors : int;  (** destaging chunk; bounds read-behind-flush waits *)
  max_batch_sectors : int;  (** cap on a coalesced read batch's media span *)
  idle_flush_delay_us : int;  (** idle time before background destaging starts *)
  num_queues : int;  (** NVMe-style submission queues; 1 = classic elevator *)
  per_queue_depth : int;  (** concurrent in-service batches per queue *)
  destage_queues : int;
      (** how many of the first queues double as destage channels for the
          shared write buffer (clamped to [1, num_queues]).  The default 1
          preserves the classic behaviour where only queue 0 destages; a
          writeback-heavy workload can raise it so flushing no longer
          serializes behind one channel. *)
}

(** A 7200 RPM enterprise drive, roughly the paper's Constellation. *)
val default_config : config

type t

(** [create ~engine ~stats ?faults config] builds a drive.  [faults]
    (default {!Faults.Plan.none}) injects deterministic read errors and
    degraded-latency episodes; write acks are never failed (the
    write-back cache absorbs them, as on a real drive). *)
val create :
  engine:Sim.Engine.t ->
  stats:Metrics.Stats.t ->
  ?faults:Faults.Plan.t ->
  config ->
  t

(** [submit t ~sector ~nsectors ~kind k] enqueues a request and calls [k]
    at its virtual completion time (for writes: when the buffer accepts
    it, not when the media is updated).  Each submitted request's [k] runs
    exactly once, even when the request is coalesced into a batch.
    [queue] (default 0) steers a read to a submission queue (reduced mod
    [num_queues]).  Writes land in the shared buffer regardless of
    [queue] and the ack latency is queue-independent; the argument
    instead selects which destage channel is kicked (reduced mod
    [destage_queues], so with the default single channel every value is
    equivalent to 0 rather than silently dropped).
    [attempt] (default 0) is the resubmission count of a retried read; it
    keys the transient-fault hash, so a retry of a transiently failed
    sector can succeed while media errors persist.  Raises [Invalid_arg]
    when [nsectors <= 0], [sector < 0], or the request extends past
    [capacity_sectors]. *)
val submit :
  t ->
  sector:int ->
  nsectors:int ->
  kind:kind ->
  ?queue:int ->
  ?attempt:int ->
  (reply -> unit) ->
  unit

(** [write_buffered t ~sector ~nsectors] is [submit ~kind:Write] without a
    completion: the sectors enter the write buffer and no acknowledgment
    event is scheduled.  For fire-and-forget destaging traffic (swap-out)
    whose ack nobody awaits.  [queue] selects the destage channel exactly
    as in {!submit}.  Bounds-checked like {!submit}. *)
val write_buffered : ?queue:int -> t -> sector:int -> nsectors:int -> unit

(** [queue_depth t] counts waiting reads (all queues), plus buffered
    write runs, plus every batch or flush currently occupying the
    media. *)
val queue_depth : t -> int

(** [num_queues t] is the (clamped, >= 1) submission-queue count. *)
val num_queues : t -> int

(** [config t] is the drive's (clamped) configuration, as stored at
    {!create} time.  Lets composite backends reuse a drive's geometry. *)
val config : t -> config

(** Snapshot of one submission queue, for tests and the scalability
    experiment's per-queue reporting. *)
type queue_stat = {
  q_pending : int;  (** reads waiting in this queue *)
  q_in_service : int;  (** batches currently on the media *)
  q_batches : int;  (** lifetime media batches served here *)
  q_depth_highwater : int;  (** max concurrent in-service batches seen *)
}

val queue_stats : t -> queue_stat array

(** [buffered_write_sectors t] is the current write-buffer occupancy. *)
val buffered_write_sectors : t -> int

(** [service_time t ~sector ~nsectors] is the hypothetical media service
    time of an access starting at the current head position.  Exposed for
    tests and calibration. *)
val service_time : t -> sector:int -> nsectors:int -> Sim.Time.t

(** [set_trace t f] installs a hook called on every media access (read
    batches and flushes, not buffered-write acks) with the pre-access head
    position; a coalesced batch is one access spanning its whole extent.
    For tests and debugging. *)
val set_trace :
  t -> (kind -> head:int -> sector:int -> nsectors:int -> unit) option -> unit

(** [set_faults t plan] replaces the drive's fault plan.  Requests
    submitted after the swap consult the new plan; a drive can thus age
    mid-run (e.g. develop media errors after a workload has populated
    it).  For tests and fault-injection harnesses. *)
val set_faults : t -> Faults.Plan.t -> unit
