type kind = Disk_tier | Czram | Remote

type config = {
  fast : kind;
  slow : kind;
  fast_share_percent : int;
  czram_seed : int;
  czram_admit_ratio : float;
  czram_compress_us : int;
  czram_decompress_us : int;
  remote_rtt_us : int;
  remote_gbps : float;
  writeback_idle_us : int;
  writeback_batch : int;
}

let disk_only =
  {
    fast = Disk_tier;
    slow = Disk_tier;
    fast_share_percent = 50;
    czram_seed = 0;
    czram_admit_ratio = 0.75;
    czram_compress_us = 10;
    czram_decompress_us = 5;
    remote_rtt_us = 20;
    remote_gbps = 10.0;
    writeback_idle_us = 2_000_000;
    writeback_batch = 64;
  }

let kind_to_string = function
  | Disk_tier -> "disk"
  | Czram -> "czram"
  | Remote -> "remote"

let kind_of_string = function
  | "disk" -> Some Disk_tier
  | "czram" -> Some Czram
  | "remote" -> Some Remote
  | _ -> None

(* "fast+slow" ("czram+disk", "disk+remote", ...); a single kind puts
   everything on that tier over a disk slow tier, except the plain
   "disk" which is the passthrough default. *)
let pair_of_string s =
  match String.index_opt s '+' with
  | Some i -> (
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      match (kind_of_string a, kind_of_string b) with
      | Some f, Some sl -> Some (f, sl)
      | _ -> None)
  | None -> (
      match kind_of_string s with
      | Some Disk_tier -> Some (Disk_tier, Disk_tier)
      | Some k -> Some (k, Disk_tier)
      | None -> None)

let pair_to_string cfg =
  if cfg.fast = Disk_tier && cfg.slow = Disk_tier then "disk"
  else kind_to_string cfg.fast ^ "+" ^ kind_to_string cfg.slow

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  disk : Disk.t;
  swap : Swap_area.t;
  cfg : config;
  passthrough : bool;
  fast : Backend.t;
  slow : Backend.t;
  fast_cap : int;  (* slot share of the fast tier *)
  mutable fast_slots : int;
  last_access : int array;  (* per-slot µs timestamp; [||] in passthrough *)
  mutable hand : int;  (* demotion clock hand *)
}

let page_sectors = Geom.sectors_per_page
let now_us t = Sim.Time.to_us (Sim.Engine.now t.engine)

let create ~engine ~stats ~disk ~swap (cfg : config) =
  let passthrough = cfg.fast = Disk_tier && cfg.slow = Disk_tier in
  let nslots = Swap_area.nslots swap in
  let share = max 0 (min 100 cfg.fast_share_percent) in
  let fast_cap = nslots * share / 100 in
  let mk = function
    | Disk_tier -> Backend.of_disk disk
    | Czram ->
        (* Pool sized to the fast share at a typical compressed ratio;
           admission rejects both incompressible pages and overflow. *)
        Backend.czram ~engine ~seed:cfg.czram_seed
          ~admit_ratio:cfg.czram_admit_ratio
          ~pool_bytes:(max Geom.page_bytes (fast_cap * Geom.page_bytes * 3 / 5))
          ~compress_us:cfg.czram_compress_us
          ~decompress_us:cfg.czram_decompress_us
    | Remote ->
        Backend.remote ~engine ~rtt_us:cfg.remote_rtt_us
          ~bytes_per_us:(cfg.remote_gbps *. 125.0)
  in
  let t =
    {
      engine;
      stats;
      disk;
      swap;
      cfg;
      passthrough;
      fast = mk cfg.fast;
      slow = mk cfg.slow;
      fast_cap;
      fast_slots = 0;
      last_access = (if passthrough then [||] else Array.make nslots 0);
      hand = 0;
    }
  in
  if not passthrough then
    Swap_area.set_on_free swap
      (Some
         (fun ~slot ~tier ->
           let sector = Swap_area.sector_of_slot swap slot in
           if tier = 0 then begin
             t.fast_slots <- t.fast_slots - 1;
             Backend.release t.fast ~sector ~nsectors:page_sectors
           end
           else Backend.release t.slow ~sector ~nsectors:page_sectors));
  t

(* Writeback of cold fast-tier slots, driven by capacity pressure (the
   zswap shrinker runs under allocation pressure, not on a timer — and
   a timer here would also stretch every run's final drain).  Only when
   the fast tier is at its slot cap does a swap-out advance a clock
   hand over [writeback_batch] slots and demote the fast-tier ones
   idle for [writeback_idle_us] or more; an under-capacity fast tier
   keeps its pages, however cold — demoting a RAM-resident page costs a
   disk write and buys nothing until the slots are needed. *)
let demote_cold t =
  let n = Swap_area.nslots t.swap in
  let now = now_us t in
  for _ = 1 to min n t.cfg.writeback_batch do
    let slot = t.hand in
    t.hand <- (t.hand + 1) mod n;
    if
      Swap_area.is_allocated t.swap slot
      && Swap_area.tier t.swap slot = 0
      && now - t.last_access.(slot) >= t.cfg.writeback_idle_us
    then begin
      let sector = Swap_area.sector_of_slot t.swap slot in
      Backend.release t.fast ~sector ~nsectors:page_sectors;
      Backend.write t.slow ~queue:0 ~sector ~nsectors:page_sectors;
      Swap_area.set_tier t.swap slot 1;
      t.fast_slots <- t.fast_slots - 1;
      t.stats.Metrics.Stats.tier_demotions <-
        t.stats.Metrics.Stats.tier_demotions + 1;
      t.stats.Metrics.Stats.tier_writeback_sectors <-
        t.stats.Metrics.Stats.tier_writeback_sectors + page_sectors
    end
  done

let swap_out t ~slot ~queue =
  let sector = Swap_area.sector_of_slot t.swap slot in
  if t.passthrough then
    Disk.write_buffered ~queue t.disk ~sector ~nsectors:page_sectors
  else begin
    if t.fast_slots >= t.fast_cap && t.fast_cap > 0 then demote_cold t;
    if t.fast_slots < t.fast_cap && Backend.admit t.fast ~sector then begin
      Swap_area.set_tier t.swap slot 0;
      t.fast_slots <- t.fast_slots + 1;
      t.last_access.(slot) <- now_us t;
      t.stats.Metrics.Stats.tier_admissions <-
        t.stats.Metrics.Stats.tier_admissions + 1;
      Backend.write t.fast ~queue ~sector ~nsectors:page_sectors
    end
    else begin
      Swap_area.set_tier t.swap slot 1;
      t.stats.Metrics.Stats.tier_rejects <-
        t.stats.Metrics.Stats.tier_rejects + 1;
      Backend.write t.slow ~queue ~sector ~nsectors:page_sectors
    end
  end

(* Copy a just-read slow-tier page into the fast tier (target pages
   only — readahead neighbours stay put until they prove hot). *)
let promote t ~slot =
  if
    Swap_area.is_allocated t.swap slot
    && Swap_area.tier t.swap slot = 1
    && t.fast_slots < t.fast_cap
  then begin
    let sector = Swap_area.sector_of_slot t.swap slot in
    if Backend.admit t.fast ~sector then begin
      Backend.release t.slow ~sector ~nsectors:page_sectors;
      Backend.write t.fast ~queue:0 ~sector ~nsectors:page_sectors;
      Swap_area.set_tier t.swap slot 0;
      t.fast_slots <- t.fast_slots + 1;
      t.last_access.(slot) <- now_us t;
      t.stats.Metrics.Stats.tier_promotions <-
        t.stats.Metrics.Stats.tier_promotions + 1
    end
  end

let swap_in t ~slot ~sector ~nsectors ~queue ~attempt k =
  if t.passthrough then
    Disk.submit t.disk ~sector ~nsectors ~kind:Disk.Read ~queue ~attempt k
  else begin
    let tier = Swap_area.tier t.swap slot in
    t.last_access.(slot) <- now_us t;
    let backend = if tier = 0 then t.fast else t.slow in
    Backend.read backend ~sector ~nsectors ~queue ~attempt
      (fun (reply : Backend.reply) ->
        let us = Sim.Time.to_us reply.service in
        let s = t.stats in
        if tier = 0 then begin
          s.Metrics.Stats.tier_fast_swapins <-
            s.Metrics.Stats.tier_fast_swapins + 1;
          s.Metrics.Stats.tier_fast_swapin_us <-
            s.Metrics.Stats.tier_fast_swapin_us + us
        end
        else begin
          s.Metrics.Stats.tier_slow_swapins <-
            s.Metrics.Stats.tier_slow_swapins + 1;
          s.Metrics.Stats.tier_slow_swapin_us <-
            s.Metrics.Stats.tier_slow_swapin_us + us;
          match reply.result with
          | Ok () -> promote t ~slot
          | Error _ -> ()
        end;
        k reply)
  end

let same_tier t a b =
  t.passthrough || Swap_area.tier t.swap a = Swap_area.tier t.swap b

let is_passthrough t = t.passthrough
let fast_slots t = t.fast_slots
let fast_capacity t = t.fast_cap
let fast_used_bytes t = Backend.used_bytes t.fast
let config t = t.cfg
let describe t = pair_to_string t.cfg
