type kind = Disk_tier | Czram | Remote

type config = {
  fast : kind;
  slow : kind;
  fast_share_percent : int;
  czram_seed : int;
  czram_admit_ratio : float;
  czram_compress_us : int;
  czram_decompress_us : int;
  remote_rtt_us : int;
  remote_gbps : float;
  writeback_idle_us : int;
  writeback_batch : int;
  tier_error_budget : int;
  tier_probe_us : int;
}

let disk_only =
  {
    fast = Disk_tier;
    slow = Disk_tier;
    fast_share_percent = 50;
    czram_seed = 0;
    czram_admit_ratio = 0.75;
    czram_compress_us = 10;
    czram_decompress_us = 5;
    remote_rtt_us = 20;
    remote_gbps = 10.0;
    writeback_idle_us = 2_000_000;
    writeback_batch = 64;
    tier_error_budget = 0;
    tier_probe_us = 500_000;
  }

let kind_to_string = function
  | Disk_tier -> "disk"
  | Czram -> "czram"
  | Remote -> "remote"

let kind_of_string = function
  | "disk" -> Some Disk_tier
  | "czram" -> Some Czram
  | "remote" -> Some Remote
  | _ -> None

(* "fast+slow" ("czram+disk", "disk+remote", ...); a single kind puts
   everything on that tier over a disk slow tier, except the plain
   "disk" which is the passthrough default. *)
let pair_of_string s =
  match String.index_opt s '+' with
  | Some i -> (
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      match (kind_of_string a, kind_of_string b) with
      | Some f, Some sl -> Some (f, sl)
      | _ -> None)
  | None -> (
      match kind_of_string s with
      | Some Disk_tier -> Some (Disk_tier, Disk_tier)
      | Some k -> Some (k, Disk_tier)
      | None -> None)

let pair_to_string cfg =
  if cfg.fast = Disk_tier && cfg.slow = Disk_tier then "disk"
  else kind_to_string cfg.fast ^ "+" ^ kind_to_string cfg.slow

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  disk : Disk.t;
  swap : Swap_area.t;
  cfg : config;
  passthrough : bool;
  faults : Faults.Plan.t;
  fast : Backend.t;
  slow : Backend.t;
  fast_cap : int;  (* slot share of the fast tier *)
  mutable fast_slots : int;
  last_access : int array;  (* per-slot µs timestamp; [||] in passthrough *)
  mutable hand : int;  (* demotion clock hand *)
  (* Fast-tier health (Healthy <-> Degraded), active only when
     [tier_error_budget > 0] and the fast tier is not the disk. *)
  mutable fast_errors : int;  (* errors since the last recovery *)
  mutable fast_degraded : bool;
  mutable probe_attempt : int;  (* keys the remote probe's fault hash *)
}

let page_sectors = Geom.sectors_per_page
let now_us t = Sim.Time.to_us (Sim.Engine.now t.engine)

let create ?(faults = Faults.Plan.none) ~engine ~stats ~disk ~swap
    (cfg : config) =
  let passthrough = cfg.fast = Disk_tier && cfg.slow = Disk_tier in
  let nslots = Swap_area.nslots swap in
  let share = max 0 (min 100 cfg.fast_share_percent) in
  let fast_cap = nslots * share / 100 in
  let mk = function
    | Disk_tier -> Backend.of_disk disk
    | Czram ->
        (* Pool sized to the fast share at a typical compressed ratio;
           admission rejects both incompressible pages and overflow. *)
        Backend.czram ~faults ~engine ~seed:cfg.czram_seed
          ~admit_ratio:cfg.czram_admit_ratio
          ~pool_bytes:(max Geom.page_bytes (fast_cap * Geom.page_bytes * 3 / 5))
          ~compress_us:cfg.czram_compress_us
          ~decompress_us:cfg.czram_decompress_us ()
    | Remote ->
        Backend.remote ~faults ~engine ~rtt_us:cfg.remote_rtt_us
          ~bytes_per_us:(cfg.remote_gbps *. 125.0) ()
  in
  let t =
    {
      engine;
      stats;
      disk;
      swap;
      cfg;
      passthrough;
      faults;
      fast = mk cfg.fast;
      slow = mk cfg.slow;
      fast_cap;
      fast_slots = 0;
      last_access = (if passthrough then [||] else Array.make nslots 0);
      hand = 0;
      fast_errors = 0;
      fast_degraded = false;
      probe_attempt = 0;
    }
  in
  if not passthrough then
    Swap_area.set_on_free swap
      (Some
         (fun ~slot ~tier ->
           let sector = Swap_area.sector_of_slot swap slot in
           if tier = 0 then begin
             t.fast_slots <- t.fast_slots - 1;
             Backend.release t.fast ~sector ~nsectors:page_sectors
           end
           else Backend.release t.slow ~sector ~nsectors:page_sectors));
  t

(* Writeback of cold fast-tier slots, driven by capacity pressure (the
   zswap shrinker runs under allocation pressure, not on a timer — and
   a timer here would also stretch every run's final drain).  Only when
   the fast tier is at its slot cap does a swap-out advance a clock
   hand over [writeback_batch] slots and demote the fast-tier ones
   idle for [writeback_idle_us] or more; an under-capacity fast tier
   keeps its pages, however cold — demoting a RAM-resident page costs a
   disk write and buys nothing until the slots are needed. *)
let demote_slot t slot =
  let sector = Swap_area.sector_of_slot t.swap slot in
  Backend.release t.fast ~sector ~nsectors:page_sectors;
  Backend.write t.slow ~queue:0 ~sector ~nsectors:page_sectors;
  Swap_area.set_tier t.swap slot 1;
  t.fast_slots <- t.fast_slots - 1;
  t.stats.Metrics.Stats.tier_demotions <-
    t.stats.Metrics.Stats.tier_demotions + 1;
  t.stats.Metrics.Stats.tier_writeback_sectors <-
    t.stats.Metrics.Stats.tier_writeback_sectors + page_sectors

let demote_cold t =
  let n = Swap_area.nslots t.swap in
  let now = now_us t in
  for _ = 1 to min n t.cfg.writeback_batch do
    let slot = t.hand in
    t.hand <- (t.hand + 1) mod n;
    if
      Swap_area.is_allocated t.swap slot
      && Swap_area.tier t.swap slot = 0
      && now - t.last_access.(slot) >= t.cfg.writeback_idle_us
    then demote_slot t slot
  done

(* ------------------------------------------------------------------ *)
(* Fast-tier health: Healthy <-> Degraded                              *)
(* ------------------------------------------------------------------ *)

(* Failover watches the fast tier only — it is the only tier with a
   "next tier" to route to.  Slow-tier errors still count in the fault
   stats and surface to the caller, who retries or kills as usual. *)
let failover_enabled t =
  (not t.passthrough) && t.cfg.tier_error_budget > 0 && t.cfg.fast <> Disk_tier

(* While degraded, resident fast-tier slots drain back to the slow tier
   through the ordinary writeback path, [writeback_batch] slots per
   interval, ignoring idle age — the tier is being evacuated, not
   shrunk.  The interval keeps the evacuation from monopolizing the
   slow tier's write bandwidth in one burst. *)
let drain_interval_us = 10_000

let drain_batch t =
  let n = Swap_area.nslots t.swap in
  let budget = ref t.cfg.writeback_batch in
  let scanned = ref 0 in
  while !budget > 0 && !scanned < n && t.fast_slots > 0 do
    let slot = t.hand in
    t.hand <- (t.hand + 1) mod n;
    incr scanned;
    if Swap_area.is_allocated t.swap slot && Swap_area.tier t.swap slot = 0
    then begin
      demote_slot t slot;
      decr budget
    end
  done

let rec arm_drain t =
  Sim.Engine.run_after t.engine (Sim.Time.us drain_interval_us) (fun () ->
      if t.fast_degraded && t.fast_slots > 0 then begin
        drain_batch t;
        arm_drain t
      end)

(* Probe the degraded tier back to health.  The remote link re-hashes
   its transient stream under a fresh attempt number — a flapping link
   comes back when the hash clears.  A corrupted czram pool is treated
   as reinitialized after one probe interval (its pages were already
   evacuated by the drain), so it recovers on the first probe. *)
let rec arm_probe t =
  Sim.Engine.run_after t.engine (Sim.Time.us t.cfg.tier_probe_us) (fun () ->
      if t.fast_degraded then begin
        t.probe_attempt <- t.probe_attempt + 1;
        let healthy =
          match t.cfg.fast with
          | Remote ->
              Faults.Plan.remote_error t.faults ~sector:0
                ~attempt:t.probe_attempt
              = None
          | Czram | Disk_tier -> true
        in
        if healthy then begin
          t.fast_degraded <- false;
          t.fast_errors <- 0;
          t.stats.Metrics.Stats.tier_recovered_events <-
            t.stats.Metrics.Stats.tier_recovered_events + 1
        end
        else arm_probe t
      end)

let note_fast_error t =
  if failover_enabled t && not t.fast_degraded then begin
    t.fast_errors <- t.fast_errors + 1;
    if t.fast_errors >= t.cfg.tier_error_budget then begin
      t.fast_degraded <- true;
      t.stats.Metrics.Stats.tier_degraded_events <-
        t.stats.Metrics.Stats.tier_degraded_events + 1;
      arm_probe t;
      if t.fast_slots > 0 then arm_drain t
    end
  end

(* Non-disk backends don't own a stats handle, so the composite accounts
   their injected errors here (the disk self-counts in [Disk.submit]);
   fast-tier errors also feed the failover budget. *)
let account_read t ~tier (reply : Backend.reply) =
  match reply.result with
  | Ok () -> ()
  | Error e ->
      let kind = if tier = 0 then t.cfg.fast else t.cfg.slow in
      if kind <> Disk_tier then begin
        let s = t.stats in
        match e with
        | Faults.Error.Media ->
            s.Metrics.Stats.faults_injected_media <-
              s.Metrics.Stats.faults_injected_media + 1
        | Faults.Error.Transient ->
            s.Metrics.Stats.faults_injected_transient <-
              s.Metrics.Stats.faults_injected_transient + 1
      end;
      if tier = 0 then note_fast_error t

let swap_out t ~slot ~queue =
  let sector = Swap_area.sector_of_slot t.swap slot in
  if t.passthrough then
    Disk.write_buffered ~queue t.disk ~sector ~nsectors:page_sectors
  else if t.fast_degraded then begin
    (* Failover: the fast tier is evacuating; every new admission goes
       straight to the healthy tier. *)
    Swap_area.set_tier t.swap slot 1;
    t.stats.Metrics.Stats.tier_rejects <-
      t.stats.Metrics.Stats.tier_rejects + 1;
    t.stats.Metrics.Stats.tier_failover_routes <-
      t.stats.Metrics.Stats.tier_failover_routes + 1;
    Backend.write t.slow ~queue ~sector ~nsectors:page_sectors
  end
  else begin
    if t.fast_slots >= t.fast_cap && t.fast_cap > 0 then demote_cold t;
    if t.fast_slots < t.fast_cap && Backend.admit t.fast ~sector then begin
      Swap_area.set_tier t.swap slot 0;
      t.fast_slots <- t.fast_slots + 1;
      t.last_access.(slot) <- now_us t;
      t.stats.Metrics.Stats.tier_admissions <-
        t.stats.Metrics.Stats.tier_admissions + 1;
      Backend.write t.fast ~queue ~sector ~nsectors:page_sectors
    end
    else begin
      Swap_area.set_tier t.swap slot 1;
      t.stats.Metrics.Stats.tier_rejects <-
        t.stats.Metrics.Stats.tier_rejects + 1;
      Backend.write t.slow ~queue ~sector ~nsectors:page_sectors
    end
  end

(* Copy a just-read slow-tier page into the fast tier (target pages
   only — readahead neighbours stay put until they prove hot). *)
let promote t ~slot =
  if
    Swap_area.is_allocated t.swap slot
    && Swap_area.tier t.swap slot = 1
    && t.fast_slots < t.fast_cap
    && not t.fast_degraded
  then begin
    let sector = Swap_area.sector_of_slot t.swap slot in
    if Backend.admit t.fast ~sector then begin
      Backend.release t.slow ~sector ~nsectors:page_sectors;
      Backend.write t.fast ~queue:0 ~sector ~nsectors:page_sectors;
      Swap_area.set_tier t.swap slot 0;
      t.fast_slots <- t.fast_slots + 1;
      t.last_access.(slot) <- now_us t;
      t.stats.Metrics.Stats.tier_promotions <-
        t.stats.Metrics.Stats.tier_promotions + 1
    end
  end

let swap_in t ~slot ~sector ~nsectors ~queue ~attempt k =
  if t.passthrough then
    Disk.submit t.disk ~sector ~nsectors ~kind:Disk.Read ~queue ~attempt k
  else begin
    let tier = Swap_area.tier t.swap slot in
    t.last_access.(slot) <- now_us t;
    let backend = if tier = 0 then t.fast else t.slow in
    Backend.read backend ~sector ~nsectors ~queue ~attempt
      (fun (reply : Backend.reply) ->
        let us = Sim.Time.to_us reply.service in
        let s = t.stats in
        if tier = 0 then begin
          s.Metrics.Stats.tier_fast_swapins <-
            s.Metrics.Stats.tier_fast_swapins + 1;
          s.Metrics.Stats.tier_fast_swapin_us <-
            s.Metrics.Stats.tier_fast_swapin_us + us
        end
        else begin
          s.Metrics.Stats.tier_slow_swapins <-
            s.Metrics.Stats.tier_slow_swapins + 1;
          s.Metrics.Stats.tier_slow_swapin_us <-
            s.Metrics.Stats.tier_slow_swapin_us + us;
          match reply.result with
          | Ok () -> promote t ~slot
          | Error _ -> ()
        end;
        account_read t ~tier reply;
        k reply)
  end

(* A scrubber verify read: served by the slot's tier like a swap-in,
   but it neither refreshes the slot's last-access time nor promotes —
   scrubbing every slot must not look like the whole area turning hot.
   Errors still count (and feed the fast tier's failover budget). *)
let verify_read t ~slot ~queue ~attempt k =
  let sector = Swap_area.sector_of_slot t.swap slot in
  if t.passthrough then
    Disk.submit t.disk ~sector ~nsectors:page_sectors ~kind:Disk.Read ~queue
      ~attempt k
  else begin
    let tier = Swap_area.tier t.swap slot in
    let backend = if tier = 0 then t.fast else t.slow in
    Backend.read backend ~sector ~nsectors:page_sectors ~queue ~attempt
      (fun (reply : Backend.reply) ->
        account_read t ~tier reply;
        k reply)
  end

let same_tier t a b =
  t.passthrough || Swap_area.tier t.swap a = Swap_area.tier t.swap b

let is_passthrough t = t.passthrough
let fast_degraded t = t.fast_degraded
let fast_slots t = t.fast_slots
let fast_capacity t = t.fast_cap
let fast_used_bytes t = Backend.used_bytes t.fast
let config t = t.cfg
let describe t = pair_to_string t.cfg
