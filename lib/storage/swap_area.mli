(** Host swap area with a Linux-style cluster slot allocator.

    Linux carves the swap device into 256-slot clusters.  Consecutive
    swap-outs fill the current cluster sequentially, so reclaim batches
    land contiguously and swap readahead works; when the current cluster
    is exhausted the allocator grabs the next wholly-free cluster.  Only
    when no free cluster remains does it degrade to scanning for
    individual free slots — and that regime produces exactly the
    scattered layout the paper calls "decayed swap sequentiality": the
    longer the system swaps, the fewer whole clusters survive, the more
    fragmented new swap-outs become. *)

type t

(** [create ~base_sector ~nslots] builds an area of exactly [nslots]
    slots (at least 1).  The cluster count rounds up, so the last
    cluster may be partial. *)
val create : base_sector:int -> nslots:int -> t

val cluster_slots : int

(** [alloc t content] claims a free slot storing [content] and returns
    its index, or [None] if the area is full. *)
val alloc : t -> Content.t -> int option

(** [free t slot] releases a slot, first invoking the {!set_on_free}
    hook (if any) with the slot's tier.  Freeing a free slot is an
    error. *)
val free : t -> int -> unit

(** {2 Backend-tier metadata}

    A tiered swap backend ({!Tiers}) stores each page on one of its
    tiers; the area records which, so swap-in, readahead grouping and
    release all agree without shadow tables. *)

(** [set_tier t slot tier] records the backend tier holding [slot]'s
    page.  [alloc] resets a slot's tier to 0 (the fast tier / sole
    disk). *)
val set_tier : t -> int -> int -> unit

(** [tier t slot] is the backend tier recorded for [slot] (0 unless a
    tiered backend set it). *)
val tier : t -> int -> int

(** [set_on_free t (Some f)] installs a hook called by {!free} with the
    slot index and its recorded tier, before the slot is reset.  Lets a
    tiered backend release per-slot resources (compressed-pool bytes,
    fast-tier share) at every free site without each caller knowing
    about tiers. *)
val set_on_free : t -> (slot:int -> tier:int -> unit) option -> unit

(** [content t slot] is the content stored in an allocated slot. *)
val content : t -> int -> Content.t

val is_allocated : t -> int -> bool

(** [sector_of_slot t slot] is the physical sector of the slot. *)
val sector_of_slot : t -> int -> int

val nslots : t -> int
val in_use : t -> int

(** [free_clusters t] counts wholly-free clusters — the health metric of
    the layout (0 means the allocator is in scatter mode). *)
val free_clusters : t -> int

(** [fragmented_allocs t] counts allocations that had to fall back to
    the slot-scan path (each one is a future random read). *)
val fragmented_allocs : t -> int
