type kind = Read | Write

type error = Faults.Error.t = Media | Transient

type reply = { result : (unit, error) Stdlib.result; service : Sim.Time.t }

type config = {
  min_seek_us : int;
  max_seek_us : int;
  full_stroke_sectors : int;
  capacity_sectors : int;
  half_rotation_us : int;
  us_per_sector : float;
  request_overhead_us : int;
  write_ack_us : int;
  write_buffer_sectors : int;
  max_flush_sectors : int;
  max_batch_sectors : int;
  idle_flush_delay_us : int;
  num_queues : int;
  per_queue_depth : int;
  destage_queues : int;
}

let default_config =
  {
    min_seek_us = 600;
    max_seek_us = 15_000;
    full_stroke_sectors = 3_906_250_000; (* ~2 TB in 512 B sectors *)
    capacity_sectors = 3_906_250_000;
    half_rotation_us = 4_170;
    us_per_sector = 3.66;
    request_overhead_us = 40;
    write_ack_us = 25;
    write_buffer_sectors = 65_536; (* 32 MiB *)
    max_flush_sectors = 8_192; (* 4 MiB destaging chunks *)
    max_batch_sectors = 8_192; (* 4 MiB read batches *)
    idle_flush_delay_us = 3_000;
    num_queues = 1;
    per_queue_depth = 1;
    destage_queues = 1;
  }

type request = {
  sector : int;
  nsectors : int;
  seq : int;  (* submission order; ties same-sector completions *)
  attempt : int;  (* 0-based resubmission count, keys transient faults *)
  completion : reply -> unit;
}

(* One NVMe-style submission queue with its own service channel: a
   private sorted pending set, C-LOOK cursor (head), and up to
   [per_queue_depth] batches on the media at once.  The first
   [destage_queues] queues double as destage channels for the shared
   write buffer — each with its own [flushing] flag, so a
   writeback-heavy workload no longer serializes destaging behind
   queue 0 while the other channels idle.  With the default
   [destage_queues = 1], a single-queue device degenerates to the
   classic one-spindle elevator. *)
type queue = {
  qid : int;
  mutable reads : request list;  (* sorted by (sector, seq) *)
  mutable nreads : int;
  mutable head : int;  (* sector just past this channel's last transfer *)
  mutable in_service : int;  (* batches currently on the media *)
  mutable flushing : bool;  (* a destage chunk occupies this channel *)
  mutable batches : int;  (* lifetime media batches served here *)
  mutable depth_highwater : int;
}

type queue_stat = { q_pending : int; q_in_service : int; q_batches : int; q_depth_highwater : int }

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  config : config;
  mutable faults : Faults.Plan.t;
  queues : queue array;
  mutable next_seq : int;
  (* Sorted, disjoint (start, len) runs of dirty sectors. *)
  mutable write_runs : (int * int) list;
  mutable write_buf_sectors : int;
  mutable flush_epoch : int;  (* destage count; keys transient write faults *)
  destage_attempts : (int, int) Hashtbl.t;
      (* sector -> failed destage count; never iterated (determinism) *)
  mutable idle_timer : Sim.Engine.event;
  mutable trace :
    (kind -> head:int -> sector:int -> nsectors:int -> unit) option;
}

let create ~engine ~stats ?(faults = Faults.Plan.none) config =
  let nq = max 1 config.num_queues in
  {
    engine;
    stats;
    config = { config with num_queues = nq;
               per_queue_depth = max 1 config.per_queue_depth;
               destage_queues = max 1 (min nq config.destage_queues) };
    faults;
    queues =
      Array.init nq (fun qid ->
          {
            qid;
            reads = [];
            nreads = 0;
            head = 0;
            in_service = 0;
            flushing = false;
            batches = 0;
            depth_highwater = 0;
          });
    next_seq = 0;
    write_runs = [];
    write_buf_sectors = 0;
    flush_epoch = 0;
    destage_attempts = Hashtbl.create 64;
    idle_timer = Sim.Engine.null;
    trace = None;
  }

let seek_time t distance =
  if distance = 0 then 0
  else
    let c = t.config in
    let frac =
      sqrt (float_of_int distance /. float_of_int c.full_stroke_sectors)
    in
    let frac = Float.min 1.0 frac in
    c.min_seek_us
    + int_of_float (frac *. float_of_int (c.max_seek_us - c.min_seek_us))

(* A short forward gap is crossed by letting the platter spin past it
   (cost: the gap's transfer time), not by a seek + rotational wait. *)
let forward_skip_sectors = 4_096 (* ~2 MiB, a couple of tracks *)

(* Give up re-destaging a transiently failing sector after this many
   attempts; the buffered copy is then dropped (counted as lost). *)
let destage_retry_limit = 6

let service_time_from t ~head ~sector ~nsectors =
  let c = t.config in
  let gap = sector - head in
  let positioning =
    if gap = 0 then 0
    else if gap > 0 && gap <= forward_skip_sectors then
      int_of_float (Float.round (float_of_int gap *. c.us_per_sector))
    else seek_time t (abs gap) + c.half_rotation_us
  in
  let transfer =
    int_of_float (Float.round (float_of_int nsectors *. c.us_per_sector))
  in
  Sim.Time.us (c.request_overhead_us + positioning + transfer)

let service_time t ~sector ~nsectors =
  service_time_from t ~head:t.queues.(0).head ~sector ~nsectors

(* Insert a dirty run, merging with overlapping/adjacent runs; the buffer
   occupancy is maintained incrementally (placed minus merged-away). *)
let add_write_run t sector nsectors =
  let s0 = sector and e0 = sector + nsectors in
  let merged = ref 0 in
  let placed = ref 0 in
  let rec insert acc s e = function
    | [] ->
        placed := e - s;
        List.rev ((s, e - s) :: acc)
    | ((rs, rl) as run) :: rest ->
        let re = rs + rl in
        if re < s then insert (run :: acc) s e rest
        else if rs > e then begin
          placed := e - s;
          List.rev_append acc ((s, e - s) :: run :: rest)
        end
        else begin
          merged := !merged + rl;
          insert acc (min s rs) (max e re) rest
        end
  in
  t.write_runs <- insert [] s0 e0 t.write_runs;
  t.write_buf_sectors <- t.write_buf_sectors + !placed - !merged

(* Is [sector, sector+n) fully inside some buffered run? *)
let covered_by_buffer t sector nsectors =
  List.exists
    (fun (rs, rl) -> sector >= rs && sector + nsectors <= rs + rl)
    t.write_runs

(* Take up to [max_flush_sectors] from the buffered run closest to the
   destage head (a one-step elevator with bounded chunks).  When the head
   sits inside the chosen run the chunk starts at the head — continuing
   the current sweep — rather than paying a backward seek to the run
   start; the sectors behind the head stay buffered for a later pass. *)
let pop_flush_chunk t ~head =
  match t.write_runs with
  | [] -> None
  | runs ->
      let best =
        List.fold_left
          (fun acc ((rs, rl) as run) ->
            let re = rs + rl in
            let dist =
              if head >= rs && head <= re then 0
              else min (abs (rs - head)) (abs (re - head))
            in
            match acc with
            | None -> Some (dist, run)
            | Some (bd, _) -> if dist < bd then Some (dist, run) else acc)
          None runs
      in
      (match best with
      | None -> None
      | Some (_, ((rs, rl) as run)) ->
          let re = rs + rl in
          let start = if head > rs && head < re then head else rs in
          let chunk = min (re - start) t.config.max_flush_sectors in
          let left = start - rs in
          let right = re - (start + chunk) in
          t.write_runs <-
            List.concat_map
              (fun r ->
                if r = run then
                  (if left > 0 then [ (rs, left) ] else [])
                  @ (if right > 0 then [ (start + chunk, right) ] else [])
                else [ r ])
              t.write_runs;
          t.write_buf_sectors <- t.write_buf_sectors - chunk;
          Some (start, chunk))

(* ------------------------------------------------------------------ *)
(* Read batching                                                       *)
(* ------------------------------------------------------------------ *)

(* The next unit of read service: either one request served from the
   write buffer at RAM speed, or a batch of media requests coalesced
   into a single seek+transfer. *)
type batch =
  | From_buffer of request
  | Media of { span_start : int; span_end : int; members : request list }

let insert_read q (r : request) =
  let rec go = function
    | [] -> [ r ]
    | (x : request) :: rest as l ->
        if x.sector < r.sector || (x.sector = r.sector && x.seq < r.seq) then
          x :: go rest
        else r :: l
  in
  q.reads <- go q.reads;
  q.nreads <- q.nreads + 1

(* C-LOOK pick on one queue: serve the lowest-sector request at or past
   the queue's head, wrapping to the lowest-sector request overall when
   none is ahead.  Starting from the pick, coalesce every later request
   within [forward_skip_sectors] of the running span end (overlaps
   included) into one media transfer, bounded by [max_batch_sectors].
   Requests covered by the write buffer never join a media batch: they
   are served from RAM when their turn as pick comes. *)
let take_batch t q =
  match q.reads with
  | [] -> None
  | reads ->
      let pick =
        match List.find_opt (fun (r : request) -> r.sector >= q.head) reads with
        | Some r -> r
        | None -> List.hd reads
      in
      if covered_by_buffer t pick.sector pick.nsectors then begin
        q.reads <- List.filter (fun r -> r != pick) q.reads;
        q.nreads <- q.nreads - 1;
        Some (From_buffer pick)
      end
      else begin
        let span_start = pick.sector in
        let span_end = ref (pick.sector + pick.nsectors) in
        let members = ref [ pick ] in
        let nmembers = ref 1 in
        (* [reads] is sorted, so candidates are visited in ascending
           sector order and the span only ever grows forward. *)
        let rec sweep = function
          | [] -> []
          | (r : request) :: rest ->
              if r == pick then sweep rest
              else if
                r.sector >= span_start
                && r.sector <= !span_end + forward_skip_sectors
                && max !span_end (r.sector + r.nsectors) - span_start
                   <= t.config.max_batch_sectors
                && not (covered_by_buffer t r.sector r.nsectors)
              then begin
                span_end := max !span_end (r.sector + r.nsectors);
                members := r :: !members;
                incr nmembers;
                sweep rest
              end
              else r :: sweep rest
        in
        q.reads <- sweep reads;
        q.nreads <- q.nreads - !nmembers;
        Some
          (Media
             {
               span_start;
               span_end = !span_end;
               members = List.rev !members;
             })
      end

let total_in_service t =
  Array.fold_left
    (fun acc q -> acc + q.in_service + if q.flushing then 1 else 0)
    0 t.queues

let total_reads t = Array.fold_left (fun acc q -> acc + q.nreads) 0 t.queues

let account_batch t q ~span_start ~span_end ~nrequests =
  let nsectors = span_end - span_start in
  (match t.trace with
  | Some f -> f Read ~head:q.head ~sector:span_start ~nsectors
  | None -> ());
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_sectors_read <- t.stats.disk_sectors_read + nsectors;
  if span_start >= q.head && span_start - q.head <= forward_skip_sectors then
    t.stats.disk_seq_reads <- t.stats.disk_seq_reads + 1;
  t.stats.disk_read_batches <- t.stats.disk_read_batches + 1;
  t.stats.disk_batched_reads <- t.stats.disk_batched_reads + nrequests;
  t.stats.disk_batch_sectors <- t.stats.disk_batch_sectors + nsectors;
  q.batches <- q.batches + 1;
  if q.qid > 0 then t.stats.disk_mq_batches <- t.stats.disk_mq_batches + 1

let account_flush t ~head ~sector nsectors =
  (match t.trace with
  | Some f -> f Write ~head ~sector ~nsectors
  | None -> ());
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_sectors_written <- t.stats.disk_sectors_written + nsectors

(* Mark one more batch in service on [q], maintaining the per-queue and
   device-wide depth highwaters. *)
let enter_service t q =
  q.in_service <- q.in_service + 1;
  if q.in_service > q.depth_highwater then q.depth_highwater <- q.in_service;
  let total = total_in_service t in
  if total > t.stats.disk_queue_depth_highwater then
    t.stats.disk_queue_depth_highwater <- total

(* ------------------------------------------------------------------ *)
(* Service loops                                                       *)
(* ------------------------------------------------------------------ *)

(* Each queue runs its own service pump.  Queue 0 additionally owns the
   write buffer: it destages eagerly when the buffer is over capacity
   (writes push back that channel's reads, exactly like the single-queue
   drive), and arms the background idle-flush timer when it goes quiet.
   Completion ordering is deterministic: every batch completion is an
   engine event, same-tick events fire in schedule order, and nothing
   here iterates a hashtable — so output is byte-identical at any
   [--jobs] width. *)
let rec pump t q =
  if q.qid < t.config.destage_queues then pump0 t q else pump_reads t q

and pump_reads t q =
  if q.in_service < t.config.per_queue_depth && q.reads <> [] then
    match take_batch t q with
    | None -> ()
    | Some b ->
        start_batch t q b;
        pump_reads t q

and pump0 t q =
  let over_cap = t.write_buf_sectors > t.config.write_buffer_sectors in
  if over_cap then begin
    if (not q.flushing) && q.in_service = 0 then flush_chunk t q
  end
  else if q.reads = [] then begin
    if t.write_runs <> [] && (not q.flushing) && q.in_service = 0 then
      arm_idle_timer t
  end
  else if (not q.flushing) && q.in_service < t.config.per_queue_depth then
    match take_batch t q with
    | None -> ()
    | Some b ->
        start_batch t q b;
        pump0 t q

and flush_chunk t q =
  match pop_flush_chunk t ~head:q.head with
  | None -> pump0 t q
  | Some (sector, nsectors) ->
      q.flushing <- true;
      (* Each destage draws a fresh epoch; transient write faults hash
         the epoch, so a re-queued sector re-rolls on its next destage
         and the retry loop converges geometrically. *)
      let epoch = t.flush_epoch in
      t.flush_epoch <- epoch + 1;
      account_flush t ~head:q.head ~sector nsectors;
      let dt = service_time_from t ~head:q.head ~sector ~nsectors in
      q.head <- sector + nsectors;
      (Sim.Engine.run_after t.engine dt (fun () ->
             q.flushing <- false;
             inject_destage_faults t ~sector ~nsectors ~epoch;
             pump0 t q))

(* The write ack already succeeded when the data entered the cache, so
   faults discovered while destaging cannot be reported to the
   submitter — exactly the write-back lie this layer models.  Media
   errors drop the buffered copy (counted, lost); transient errors
   re-queue the affected sectors as coalesced runs for a later destage
   pass under a fresh epoch.  A sector whose re-destages keep failing
   transiently is abandoned after [destage_retry_limit] attempts and
   counted as lost alongside the media errors — mirroring how the read
   path exhausts its retry budget, and bounding the work even at a
   transient rate of 1.0. *)
and inject_destage_faults t ~sector ~nsectors ~epoch =
  let c = Faults.Plan.config t.faults in
  if c.Faults.Config.media_rate > 0.0 || c.Faults.Config.transient_rate > 0.0
  then begin
    let run_start = ref (-1) in
    let flush_run e =
      if !run_start >= 0 then begin
        add_write_run t !run_start (e - !run_start);
        run_start := -1
      end
    in
    for s = sector to sector + nsectors - 1 do
      match Faults.Plan.write_error t.faults ~sector:s ~attempt:epoch with
      | Some Faults.Error.Media ->
          Hashtbl.remove t.destage_attempts s;
          t.stats.destage_media_errors <- t.stats.destage_media_errors + 1;
          flush_run s
      | Some Faults.Error.Transient ->
          let tries =
            (match Hashtbl.find_opt t.destage_attempts s with
            | Some n -> n
            | None -> 0)
            + 1
          in
          if tries >= destage_retry_limit then begin
            Hashtbl.remove t.destage_attempts s;
            t.stats.destage_media_errors <- t.stats.destage_media_errors + 1;
            flush_run s
          end
          else begin
            Hashtbl.replace t.destage_attempts s tries;
            t.stats.destage_transient_retries <-
              t.stats.destage_transient_retries + 1;
            if !run_start < 0 then run_start := s
          end
      | None ->
          Hashtbl.remove t.destage_attempts s;
          flush_run s
    done;
    flush_run (sector + nsectors)
  end

and arm_idle_timer t =
  (* Fire-and-check, deliberately not disarmed when service resumes:
     the timer samples the queue 3 ms after the disk last went idle and
     destages if that instant happens to be quiet.  Cancelling it on
     every new read would demand a full idle window — under a steady
     trickle of reads the buffer would never destage at all. *)
  if t.idle_timer = Sim.Engine.null then
    t.idle_timer <-
      (Sim.Engine.schedule_after t.engine
           (Sim.Time.us t.config.idle_flush_delay_us)
           (fun () ->
             t.idle_timer <- Sim.Engine.null;
             (* Destage in the background only if idle right now; with
                several destage channels, start one chunk on each. *)
             if total_in_service t = 0 && total_reads t = 0 then
               for qid = 0 to t.config.destage_queues - 1 do
                 if t.write_runs <> [] then flush_chunk t t.queues.(qid)
               done))

and start_batch t q = function
  | From_buffer req ->
      enter_service t q;
      (* Served from the write buffer at RAM speed; the content never
         touched the media, so no media/transient fault can fire. *)
      let dt = Sim.Time.us t.config.write_ack_us in
      (Sim.Engine.run_after t.engine dt (fun () ->
             (* The slot is released only after the completion callback:
                reads it submits are gathered by the trailing pump (one
                batching decision per completion event), never serviced
                mid-callback. *)
             req.completion { result = Ok (); service = dt };
             q.in_service <- q.in_service - 1;
             pump t q))
  | Media { span_start; span_end; members } ->
      enter_service t q;
      account_batch t q ~span_start ~span_end
        ~nrequests:(List.length members);
      let dt =
        service_time_from t ~head:q.head ~sector:span_start
          ~nsectors:(span_end - span_start)
      in
      let dt =
        match Faults.Plan.degraded_mult t.faults ~sector:span_start with
        | None -> dt
        | Some m ->
            t.stats.faults_degraded_batches <-
              t.stats.faults_degraded_batches + 1;
            Sim.Time.of_float_us (float_of_int (Sim.Time.to_us dt) *. m)
      in
      q.head <- span_end;
      (Sim.Engine.run_after t.engine dt (fun () ->
             (* One media event completes the whole batch; completions run
                in (sector, submission) order.  The service slot is held
                until every member's callback has run, so resubmissions
                from inside a callback wait for the trailing pump. *)
             List.iter
               (fun (r : request) ->
                 let result =
                   match
                     Faults.Plan.read_error t.faults ~sector:r.sector
                       ~nsectors:r.nsectors ~attempt:r.attempt
                   with
                   | None -> Ok ()
                   | Some Faults.Error.Media ->
                       t.stats.faults_injected_media <-
                         t.stats.faults_injected_media + 1;
                       Error Faults.Error.Media
                   | Some Faults.Error.Transient ->
                       t.stats.faults_injected_transient <-
                         t.stats.faults_injected_transient + 1;
                       Error Faults.Error.Transient
                 in
                 r.completion { result; service = dt })
               members;
             q.in_service <- q.in_service - 1;
             pump t q))

let check_bounds t ~who ~sector ~nsectors =
  if nsectors <= 0 then
    invalid_arg (Printf.sprintf "Disk.%s: nsectors must be positive" who);
  if sector < 0 then
    invalid_arg (Printf.sprintf "Disk.%s: negative sector %d" who sector);
  if sector + nsectors > t.config.capacity_sectors then
    invalid_arg
      (Printf.sprintf "Disk.%s: [%d, %d) past capacity %d" who sector
         (sector + nsectors) t.config.capacity_sectors)

let submit t ~sector ~nsectors ~kind ?(queue = 0) ?(attempt = 0) completion =
  check_bounds t ~who:"submit" ~sector ~nsectors;
  match kind with
  | Read ->
      let q =
        t.queues.(((queue mod t.config.num_queues) + t.config.num_queues)
                  mod t.config.num_queues)
      in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      insert_read q { sector; nsectors; seq; attempt; completion };
      pump t q
  | Write ->
      add_write_run t sector nsectors;
      let dt = Sim.Time.us t.config.write_ack_us in
      (* Buffered-write acks always succeed: the cache absorbed the data
         (media errors on destage are invisible to the submitter, as on
         a real write-back drive).  The data lands in the shared buffer
         regardless of [queue]; the argument picks which destage channel
         gets kicked, folded into [0, destage_queues). *)
      (Sim.Engine.run_after t.engine dt (fun () ->
             completion { result = Ok (); service = dt }));
      let dqs = t.config.destage_queues in
      pump0 t t.queues.(((queue mod dqs) + dqs) mod dqs)

(* Buffered write without a completion event: for fire-and-forget
   destaging traffic (e.g. swap-out) whose ack nobody awaits. *)
let write_buffered ?(queue = 0) t ~sector ~nsectors =
  check_bounds t ~who:"write_buffered" ~sector ~nsectors;
  add_write_run t sector nsectors;
  let dqs = t.config.destage_queues in
  pump0 t t.queues.(((queue mod dqs) + dqs) mod dqs)

let queue_depth t =
  total_reads t + List.length t.write_runs + total_in_service t

let num_queues t = t.config.num_queues
let config t = t.config

let queue_stats t =
  Array.map
    (fun q ->
      {
        q_pending = q.nreads;
        q_in_service = q.in_service;
        q_batches = q.batches;
        q_depth_highwater = q.depth_highwater;
      })
    t.queues

let buffered_write_sectors t = t.write_buf_sectors
let set_trace t f = t.trace <- f
let set_faults t plan = t.faults <- plan
