type kind = Read | Write

type config = {
  min_seek_us : int;
  max_seek_us : int;
  full_stroke_sectors : int;
  half_rotation_us : int;
  us_per_sector : float;
  request_overhead_us : int;
  write_ack_us : int;
  write_buffer_sectors : int;
  max_flush_sectors : int;
  idle_flush_delay_us : int;
}

let default_config =
  {
    min_seek_us = 600;
    max_seek_us = 15_000;
    full_stroke_sectors = 3_906_250_000; (* ~2 TB in 512 B sectors *)
    half_rotation_us = 4_170;
    us_per_sector = 3.66;
    request_overhead_us = 40;
    write_ack_us = 25;
    write_buffer_sectors = 65_536; (* 32 MiB *)
    max_flush_sectors = 8_192; (* 4 MiB destaging chunks *)
    idle_flush_delay_us = 3_000;
  }

type request = { sector : int; nsectors : int; completion : unit -> unit }

type t = {
  engine : Sim.Engine.t;
  stats : Metrics.Stats.t;
  config : config;
  reads : request Queue.t;
  (* Sorted, disjoint (start, len) runs of dirty sectors. *)
  mutable write_runs : (int * int) list;
  mutable write_buf_sectors : int;
  mutable head : int;  (* sector just past the last transfer *)
  mutable in_service : bool;
  mutable idle_timer_armed : bool;
  mutable trace :
    (kind -> head:int -> sector:int -> nsectors:int -> unit) option;
}

let create ~engine ~stats config =
  {
    engine;
    stats;
    config;
    reads = Queue.create ();
    write_runs = [];
    write_buf_sectors = 0;
    head = 0;
    in_service = false;
    idle_timer_armed = false;
    trace = None;
  }

let seek_time t distance =
  if distance = 0 then 0
  else
    let c = t.config in
    let frac =
      sqrt (float_of_int distance /. float_of_int c.full_stroke_sectors)
    in
    let frac = Float.min 1.0 frac in
    c.min_seek_us
    + int_of_float (frac *. float_of_int (c.max_seek_us - c.min_seek_us))

(* A short forward gap is crossed by letting the platter spin past it
   (cost: the gap's transfer time), not by a seek + rotational wait. *)
let forward_skip_sectors = 4_096 (* ~2 MiB, a couple of tracks *)

let service_time_from t ~head ~sector ~nsectors =
  let c = t.config in
  let gap = sector - head in
  let positioning =
    if gap = 0 then 0
    else if gap > 0 && gap <= forward_skip_sectors then
      int_of_float (Float.round (float_of_int gap *. c.us_per_sector))
    else seek_time t (abs gap) + c.half_rotation_us
  in
  let transfer =
    int_of_float (Float.round (float_of_int nsectors *. c.us_per_sector))
  in
  Sim.Time.us (c.request_overhead_us + positioning + transfer)

let service_time t ~sector ~nsectors =
  service_time_from t ~head:t.head ~sector ~nsectors

(* Insert a dirty run, merging with overlapping/adjacent runs. *)
let add_write_run t sector nsectors =
  let s0 = sector and e0 = sector + nsectors in
  let rec insert acc s e = function
    | [] -> List.rev ((s, e - s) :: acc)
    | ((rs, rl) as run) :: rest ->
        let re = rs + rl in
        if re < s then insert (run :: acc) s e rest
        else if rs > e then List.rev_append acc ((s, e - s) :: run :: rest)
        else insert acc (min s rs) (max e re) rest
  in
  let before = t.write_buf_sectors in
  t.write_runs <- insert [] s0 e0 t.write_runs;
  let after = List.fold_left (fun n (_, l) -> n + l) 0 t.write_runs in
  ignore before;
  t.write_buf_sectors <- after

(* Is [sector, sector+n) fully inside some buffered run? *)
let covered_by_buffer t sector nsectors =
  List.exists
    (fun (rs, rl) -> sector >= rs && sector + nsectors <= rs + rl)
    t.write_runs

(* Take up to [max_flush_sectors] from the buffered run closest to the
   head (a one-step elevator with bounded chunks). *)
let pop_flush_chunk t =
  match t.write_runs with
  | [] -> None
  | runs ->
      let best =
        List.fold_left
          (fun acc ((rs, rl) as run) ->
            let re = rs + rl in
            let dist =
              if t.head >= rs && t.head <= re then 0
              else min (abs (rs - t.head)) (abs (re - t.head))
            in
            match acc with
            | None -> Some (dist, run)
            | Some (bd, _) -> if dist < bd then Some (dist, run) else acc)
          None runs
      in
      (match best with
      | None -> None
      | Some (_, ((rs, rl) as run)) ->
          let chunk = min rl t.config.max_flush_sectors in
          let rest = rl - chunk in
          t.write_runs <-
            (if rest = 0 then List.filter (fun r -> r <> run) t.write_runs
             else
               List.map (fun r -> if r = run then (rs + chunk, rest) else r)
                 t.write_runs);
          t.write_buf_sectors <- t.write_buf_sectors - chunk;
          Some (rs, chunk))

let account_read t ~sector nsectors =
  (match t.trace with
  | Some f -> f Read ~head:t.head ~sector ~nsectors
  | None -> ());
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_sectors_read <- t.stats.disk_sectors_read + nsectors;
  if sector >= t.head && sector - t.head <= forward_skip_sectors then
    t.stats.disk_seq_reads <- t.stats.disk_seq_reads + 1

let account_flush t ~sector nsectors =
  (match t.trace with
  | Some f -> f Write ~head:t.head ~sector ~nsectors
  | None -> ());
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_sectors_written <- t.stats.disk_sectors_written + nsectors

let rec start_next t =
  let over_cap = t.write_buf_sectors > t.config.write_buffer_sectors in
  if over_cap || Queue.is_empty t.reads then
    if over_cap then flush_chunk t
    else if t.write_runs <> [] then arm_idle_timer t
    else t.in_service <- false
  else serve_read t

and flush_chunk t =
  match pop_flush_chunk t with
  | None -> start_next t
  | Some (sector, nsectors) ->
      t.in_service <- true;
      account_flush t ~sector nsectors;
      let dt = service_time t ~sector ~nsectors in
      t.head <- sector + nsectors;
      (Sim.Engine.run_after t.engine dt (fun () -> start_next t))

and arm_idle_timer t =
  t.in_service <- false;
  if not t.idle_timer_armed then begin
    t.idle_timer_armed <- true;
    (Sim.Engine.run_after t.engine
         (Sim.Time.us t.config.idle_flush_delay_us)
         (fun () ->
           t.idle_timer_armed <- false;
           (* Destage in the background only if still idle. *)
           if (not t.in_service) && Queue.is_empty t.reads then
             if t.write_runs <> [] then flush_chunk t))
  end

and serve_read t =
  let req = Queue.pop t.reads in
  t.in_service <- true;
  if covered_by_buffer t req.sector req.nsectors then
    (* Served from the write buffer at RAM speed. *)
    (Sim.Engine.run_after t.engine
         (Sim.Time.us t.config.write_ack_us)
         (fun () ->
           req.completion ();
           start_next t))
  else begin
    account_read t ~sector:req.sector req.nsectors;
    let dt = service_time t ~sector:req.sector ~nsectors:req.nsectors in
    t.head <- req.sector + req.nsectors;
    (Sim.Engine.run_after t.engine dt (fun () ->
           req.completion ();
           start_next t))
  end

let submit t ~sector ~nsectors ~kind completion =
  if nsectors <= 0 then invalid_arg "Disk.submit: nsectors must be positive";
  match kind with
  | Read ->
      Queue.add { sector; nsectors; completion } t.reads;
      if not t.in_service then start_next t
  | Write ->
      add_write_run t sector nsectors;
      (Sim.Engine.run_after t.engine
           (Sim.Time.us t.config.write_ack_us)
           completion);
      if not t.in_service then start_next t

let queue_depth t =
  Queue.length t.reads + List.length t.write_runs
  + if t.in_service then 1 else 0

let buffered_write_sectors t = t.write_buf_sectors
let set_trace t f = t.trace <- f
