type t =
  | Zero
  | Anon of int
  | Block of { disk : int; block : int; version : int }

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | Anon x, Anon y -> x = y
  | Block a, Block b ->
      a.disk = b.disk && a.block = b.block && a.version = b.version
  | (Zero | Anon _ | Block _), _ -> false

(* Atomic so that simulations running on different domains (the parallel
   bench runner) still draw globally unique generations: behaviour depends
   only on generation (in)equality, and a cross-domain duplicate would
   make two unrelated writes spuriously equal. *)
let anon_counter = Atomic.make 0

let fresh_anon () = Anon (Atomic.fetch_and_add anon_counter 1 + 1)
let fresh_gen () = Atomic.fetch_and_add anon_counter 1 + 1

(* Deterministic tag derivation without boxing: instead of building a
   tuple for [Hashtbl.hash], fold the constructor tag and fields through
   the SplitMix mix one packed int at a time.  Behaviour elsewhere
   depends only on tag (in)equality, so any injective-in-practice mix
   works; chaining the finalizer keeps it collision-resistant. *)
let combine base gen =
  let mix = Faults.Plan.mix_int in
  let h =
    match base with
    | Zero -> mix 0
    | Anon g -> mix (mix 1 lxor g)
    | Block { disk; block; version } ->
        mix (mix (mix (mix 2 lxor disk) lxor block) lxor version)
  in
  Anon (mix (h lxor gen))

let reset_anon_counter () = Atomic.set anon_counter 0

let pp fmt = function
  | Zero -> Format.pp_print_string fmt "zero"
  | Anon g -> Format.fprintf fmt "anon#%d" g
  | Block { disk; block; version } ->
      Format.fprintf fmt "disk%d:block%d:v%d" disk block version

let to_string t = Format.asprintf "%a" pp t
