type t =
  | Zero
  | Anon of int
  | Block of { disk : int; block : int; version : int }

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | Anon x, Anon y -> x = y
  | Block a, Block b ->
      a.disk = b.disk && a.block = b.block && a.version = b.version
  | (Zero | Anon _ | Block _), _ -> false

(* Atomic so that simulations running on different domains (the parallel
   bench runner) still draw globally unique generations: behaviour depends
   only on generation (in)equality, and a cross-domain duplicate would
   make two unrelated writes spuriously equal. *)
let anon_counter = Atomic.make 0

let fresh_anon () = Anon (Atomic.fetch_and_add anon_counter 1 + 1)
let fresh_gen () = Atomic.fetch_and_add anon_counter 1 + 1

let combine base gen =
  let base_key =
    match base with
    | Zero -> (0, 0, 0, 0)
    | Anon g -> (1, g, 0, 0)
    | Block { disk; block; version } -> (2, disk, block, version)
  in
  Anon (Hashtbl.hash (base_key, gen))

let reset_anon_counter () = Atomic.set anon_counter 0

let pp fmt = function
  | Zero -> Format.pp_print_string fmt "zero"
  | Anon g -> Format.fprintf fmt "anon#%d" g
  | Block { disk; block; version } ->
      Format.fprintf fmt "disk%d:block%d:v%d" disk block version

let to_string t = Format.asprintf "%a" pp t
