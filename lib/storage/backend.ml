(* A swap backend as a record of closures: the Disk module stays the
   canonical implementation, and the compressed-RAM and remote-memory
   tiers model only what distinguishes them — their latency source.
   Every model keeps its clock as an integer microsecond cursor in
   virtual time, so behaviour is a pure function of the event order and
   sweeps stay byte-identical at any [--jobs] width. *)

type reply = Disk.reply = {
  result : (unit, Faults.Error.t) Stdlib.result;
  service : Sim.Time.t;
}

type t = {
  name : string;
  capacity_sectors : int;
  read :
    sector:int ->
    nsectors:int ->
    queue:int ->
    attempt:int ->
    (reply -> unit) ->
    unit;
  write : queue:int -> sector:int -> nsectors:int -> unit;
  admit : sector:int -> bool;
  release : sector:int -> nsectors:int -> unit;
  used_bytes : unit -> int;
}

let name t = t.name
let capacity_sectors t = t.capacity_sectors
let read t = t.read
let write t = t.write
let admit t ~sector = t.admit ~sector
let release t = t.release
let used_bytes t = t.used_bytes ()

(* ------------------------------------------------------------------ *)
(* Disk passthrough                                                    *)
(* ------------------------------------------------------------------ *)

let of_disk disk =
  {
    name = "disk";
    capacity_sectors = (Disk.config disk).Disk.capacity_sectors;
    read =
      (fun ~sector ~nsectors ~queue ~attempt k ->
        Disk.submit disk ~sector ~nsectors ~kind:Disk.Read ~queue ~attempt k);
    write =
      (fun ~queue ~sector ~nsectors ->
        Disk.write_buffered ~queue disk ~sector ~nsectors);
    admit = (fun ~sector:_ -> true);
    release = (fun ~sector:_ ~nsectors:_ -> ());
    used_bytes = (fun () -> 0);
  }

(* ------------------------------------------------------------------ *)
(* Compressed-RAM tier (zswap-style)                                   *)
(* ------------------------------------------------------------------ *)

(* Each page has an intrinsic compressed/uncompressed ratio drawn from
   the same pure-hash family as the fault plans: a deterministic
   function of (seed, page index), independent of request order.  The
   range [0.15, 1.25) covers zero pages through already-compressed
   data; pages whose ratio exceeds [admit_ratio] are rejected as
   incompressible, like zswap refusing pages that compress badly. *)
let czram_ratio key page = 0.15 +. (1.10 *. Faults.Plan.hash01 key page 0)

let czram ?(faults = Faults.Plan.none) ~engine ~seed ~admit_ratio ~pool_bytes
    ~compress_us ~decompress_us () =
  let key = Sim.Rng.next_int64 (Sim.Rng.of_int (0x5a + seed)) in
  let used = ref 0 in
  (* The (de)compressor is one CPU: requests serialize on this cursor
     rather than seeking — the tier's entire latency model. *)
  let busy_until_us = ref 0 in
  let page_of sector = sector / Geom.sectors_per_page in
  let page_bytes sector =
    int_of_float
      (czram_ratio key (page_of sector) *. float_of_int Geom.page_bytes)
  in
  let npages nsectors =
    (nsectors + Geom.sectors_per_page - 1) / Geom.sectors_per_page
  in
  (* Occupy the compressor for [cost] microseconds starting now (or when
     it frees up); returns the absolute finish time in microseconds. *)
  let occupy_cpu cost =
    let now = Sim.Time.to_us (Sim.Engine.now engine) in
    let start = max now !busy_until_us in
    busy_until_us := start + cost;
    !busy_until_us
  in
  {
    name = "czram";
    capacity_sectors = max_int;
    read =
      (fun ~sector ~nsectors ~queue:_ ~attempt:_ k ->
        let now = Sim.Time.to_us (Sim.Engine.now engine) in
        let finish = occupy_cpu (decompress_us * npages nsectors) in
        let dt = Sim.Time.us (finish - now) in
        (* Pool corruption: a Media error keyed on the page alone, so it
           persists across attempts.  The decompressor CPU is charged
           either way — the failure is discovered at the end of the
           decompress, not before it. *)
        let result =
          match Faults.Plan.czram_error faults ~page:(page_of sector) with
          | Some e -> Error e
          | None -> Ok ()
        in
        Sim.Engine.run_after engine dt (fun () -> k { result; service = dt }));
    write =
      (fun ~queue:_ ~sector ~nsectors ->
        (* Fire-and-forget like a buffered disk write; compression still
           consumes the CPU, delaying concurrent decompressions. *)
        ignore (occupy_cpu (compress_us * npages nsectors));
        used := !used + page_bytes sector);
    admit =
      (fun ~sector ->
        czram_ratio key (page_of sector) <= admit_ratio
        && !used + page_bytes sector <= pool_bytes);
    release =
      (fun ~sector ~nsectors:_ ->
        (* The compressed size is a pure hash of the page, so release
           recomputes it instead of keeping a side table. *)
        used := !used - page_bytes sector);
    used_bytes = (fun () -> !used);
  }

(* ------------------------------------------------------------------ *)
(* Remote-memory tier                                                  *)
(* ------------------------------------------------------------------ *)

(* A far-memory node behind a network link: every transfer pays a fixed
   round-trip and the payload serializes on link bandwidth.  The
   [link_free_at] cursor is a degenerate token bucket (capacity = one
   transfer): concurrent swap-ins queue on it exactly as they would on
   a saturated NIC, while the RTT is paid in parallel by every request. *)
let remote ?(faults = Faults.Plan.none) ~engine ~rtt_us ~bytes_per_us () =
  let link_free_at_us = ref 0 in
  let transfer_us nsectors =
    max 1
      (int_of_float
         (Float.round
            (float_of_int (nsectors * Geom.sector_bytes) /. bytes_per_us)))
  in
  let occupy_link nsectors =
    let now = Sim.Time.to_us (Sim.Engine.now engine) in
    let start = max now !link_free_at_us in
    link_free_at_us := start + transfer_us nsectors;
    !link_free_at_us
  in
  {
    name = "remote";
    capacity_sectors = max_int;
    read =
      (fun ~sector ~nsectors ~queue:_ ~attempt k ->
        let now = Sim.Time.to_us (Sim.Engine.now engine) in
        let dt = Sim.Time.us (occupy_link nsectors + rtt_us - now) in
        (* Link timeout: Transient keyed on (sector, attempt), so a
           retry re-hashes and can succeed.  The full RTT + transfer is
           paid before the timeout is noticed, like a real timeout. *)
        let result =
          match Faults.Plan.remote_error faults ~sector ~attempt with
          | Some e -> Error e
          | None -> Ok ()
        in
        Sim.Engine.run_after engine dt (fun () -> k { result; service = dt }));
    write =
      (fun ~queue:_ ~sector:_ ~nsectors ->
        (* Outbound pages consume the same link; nobody awaits the ack. *)
        ignore (occupy_link nsectors));
    admit = (fun ~sector:_ -> true);
    release = (fun ~sector:_ ~nsectors:_ -> ());
    used_bytes = (fun () -> 0);
  }
