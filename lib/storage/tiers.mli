(** Tiered swap-backend composite.

    Routes host swap traffic between a fast and a slow {!Backend}:
    swap-outs go to the fast tier while its slot share and admission
    policy allow (the compressed tier rejects incompressible pages),
    and to the slow tier otherwise; a slow-tier page is promoted to the
    fast tier when it proves hot (a target swap-in); cold fast-tier
    slots are written back to the slow tier by a clock-hand sweep run
    only when the fast tier is at its slot cap (capacity pressure, like
    the zswap shrinker).  The {!Swap_area} records each slot's tier
    so swap-in, readahead grouping and release all agree.

    The default {!disk_only} configuration is a pure passthrough to the
    {!Disk}: identical calls, no extra events, no per-slot metadata, no
    counters — a machine built with it behaves byte-for-byte like one
    that never heard of tiers. *)

type kind = Disk_tier | Czram | Remote

type config = {
  fast : kind;
  slow : kind;
  fast_share_percent : int;
      (** slot share of the fast tier, clamped to [0, 100] *)
  czram_seed : int;  (** seeds the per-page compressibility hash *)
  czram_admit_ratio : float;
      (** max compressed/uncompressed ratio the pool accepts *)
  czram_compress_us : int;  (** CPU cost per page swapped out *)
  czram_decompress_us : int;  (** CPU cost per page swapped in *)
  remote_rtt_us : int;  (** network round-trip per request *)
  remote_gbps : float;  (** link bandwidth, gigabits per second *)
  writeback_idle_us : int;
      (** idle age beyond which a fast-tier slot is demotion-cold *)
  writeback_batch : int;
      (** clock-hand slots swept per swap-out *)
  tier_error_budget : int;
      (** fast-tier read errors tolerated before the tier is marked
          degraded (failover); 0 disables health tracking entirely *)
  tier_probe_us : int;
      (** interval between probes of a degraded fast tier *)
}

(** Both tiers on the disk: the passthrough default. *)
val disk_only : config

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** [pair_of_string "czram+disk"] parses a VSWAPPER_TIERS value:
    ["fast+slow"], or a single kind (over a disk slow tier; plain
    ["disk"] is the passthrough pair). *)
val pair_of_string : string -> (kind * kind) option

(** [pair_to_string cfg] renders the tier pair (["disk"],
    ["czram+disk"], ...). *)
val pair_to_string : config -> string

type t

(** [create ~engine ~stats ~disk ~swap cfg] builds the composite and —
    unless [cfg] is the passthrough pair — installs a
    {!Swap_area.set_on_free} hook that returns per-slot tier resources
    on every free.  The [faults] plan feeds the czram/remote backends'
    per-tier error streams and the failover probe; omitting it (or
    passing {!Faults.Plan.none}) makes those tiers error-free, exactly
    the pre-fault-injection behaviour. *)
val create :
  ?faults:Faults.Plan.t ->
  engine:Sim.Engine.t ->
  stats:Metrics.Stats.t ->
  disk:Disk.t ->
  swap:Swap_area.t ->
  config ->
  t

(** [swap_out t ~slot ~queue] stores the page of a freshly allocated
    slot, picking the tier by admission policy and recording it in the
    swap area.  Fire-and-forget, like {!Disk.write_buffered}. *)
val swap_out : t -> slot:int -> queue:int -> unit

(** [swap_in t ~slot ~sector ~nsectors ~queue ~attempt k] reads a span
    whose pages all live on [slot]'s tier (callers keep readahead
    homogeneous via {!same_tier}) and calls [k] on completion.  In
    tiered mode it also accounts per-tier swap-in latency and promotes
    the target slot after a successful slow-tier read. *)
val swap_in :
  t ->
  slot:int ->
  sector:int ->
  nsectors:int ->
  queue:int ->
  attempt:int ->
  (Backend.reply -> unit) ->
  unit

(** [verify_read t ~slot ~queue ~attempt k] is the scrubber's
    low-priority read of one allocated slot: served by the slot's tier
    like a swap-in, but it neither refreshes the slot's last-access
    time nor promotes it — a scrub pass over the whole area must not
    look like every page turning hot.  Errors count in the fault stats
    and feed the fast tier's failover budget. *)
val verify_read :
  t -> slot:int -> queue:int -> attempt:int -> (Backend.reply -> unit) -> unit

(** [same_tier t a b] — whether slots [a] and [b] live on the same tier
    (always true in passthrough).  Readahead must not span tiers: one
    request has one latency model. *)
val same_tier : t -> int -> int -> bool

val is_passthrough : t -> bool

(** Whether the fast tier is currently marked degraded.

    With [tier_error_budget > 0] and a non-disk fast tier, read errors
    beyond the budget trip the tier into a degraded state: new
    admissions route to the slow tier ([tier_failover_routes]),
    promotion stops, and resident slots drain back through the
    writeback path in [writeback_batch] bursts.  A degraded tier is
    probed every [tier_probe_us]: the remote link re-hashes its
    transient stream per probe (the flap clears when the hash does), a
    corrupted czram pool counts as reinitialized after one interval.
    Recovery resets the error count and re-opens admission. *)
val fast_degraded : t -> bool

(** Current fast-tier slot count and its cap. *)
val fast_slots : t -> int

val fast_capacity : t -> int

(** Fast-tier pool occupancy in bytes (compressed tier only; 0 else). *)
val fast_used_bytes : t -> int

val config : t -> config

(** ["disk"], ["czram+disk"], ... — for experiment headers. *)
val describe : t -> string
