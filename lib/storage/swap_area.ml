let cluster_slots = 256

type t = {
  base_sector : int;
  nslots : int;
  contents : Content.t option array;
  tiers : int array;  (* backend tier of each allocated slot; 0 = fast *)
  free_in_cluster : int array;  (* free-slot count per cluster *)
  (* Current allocation cluster and the next offset to try within it;
     -1 means no current cluster. *)
  mutable cur_cluster : int;
  mutable cur_offset : int;
  mutable scan_cursor : int;  (* fallback first-free scan position *)
  mutable in_use : int;
  mutable fragmented_allocs : int;
  mutable on_free : (slot:int -> tier:int -> unit) option;
      (* called by [free] before the slot is reset, so a tiered backend
         can release per-slot resources without shadow bookkeeping *)
}

(* The area holds exactly the requested number of slots: the cluster
   count rounds *up*, and the last cluster may be partial.  (Truncating
   division silently resized the area — ~nslots:300 gave 256 slots.) *)
let create ~base_sector ~nslots =
  let nslots = max 1 nslots in
  let nclusters = (nslots + cluster_slots - 1) / cluster_slots in
  let cluster_free c =
    min cluster_slots (nslots - (c * cluster_slots))
  in
  {
    base_sector;
    nslots;
    contents = Array.make nslots None;
    tiers = Array.make nslots 0;
    free_in_cluster = Array.init nclusters cluster_free;
    cur_cluster = -1;
    cur_offset = 0;
    scan_cursor = 0;
    in_use = 0;
    fragmented_allocs = 0;
    on_free = None;
  }

let nclusters t = Array.length t.free_in_cluster

(* Slot capacity of cluster [c]; only the last cluster can be partial. *)
let cluster_capacity t c = min cluster_slots (t.nslots - (c * cluster_slots))

let check t slot =
  if slot < 0 || slot >= t.nslots then
    invalid_arg (Printf.sprintf "Swap_area: slot %d out of range" slot)

let take t slot content =
  t.contents.(slot) <- Some content;
  t.tiers.(slot) <- 0;
  t.free_in_cluster.(slot / cluster_slots) <-
    t.free_in_cluster.(slot / cluster_slots) - 1;
  t.in_use <- t.in_use + 1;
  Some slot

(* Find the next wholly-free cluster, round-robin from cur_cluster. *)
let find_free_cluster t =
  let n = nclusters t in
  let start = if t.cur_cluster < 0 then 0 else (t.cur_cluster + 1) mod n in
  let rec go i remaining =
    if remaining = 0 then None
    else if t.free_in_cluster.(i) = cluster_capacity t i then Some i
    else go ((i + 1) mod n) (remaining - 1)
  in
  go start n

let rec alloc t content =
  if t.in_use = t.nslots then None
  else if
    t.cur_cluster >= 0 && t.cur_offset < cluster_capacity t t.cur_cluster
  then begin
    let slot = (t.cur_cluster * cluster_slots) + t.cur_offset in
    t.cur_offset <- t.cur_offset + 1;
    if t.contents.(slot) = None then take t slot content
    else alloc t content
  end
  else
    match find_free_cluster t with
    | Some c ->
        t.cur_cluster <- c;
        t.cur_offset <- 0;
        alloc t content
    | None ->
        (* Fragmented regime: scan for any free slot. *)
        t.cur_cluster <- -1;
        t.fragmented_allocs <- t.fragmented_allocs + 1;
        let rec find i remaining =
          if remaining = 0 then None
          else if t.contents.(i) = None then Some i
          else find ((i + 1) mod t.nslots) (remaining - 1)
        in
        (match find t.scan_cursor t.nslots with
        | None -> None
        | Some slot ->
            t.scan_cursor <- (slot + 1) mod t.nslots;
            take t slot content)

let free t slot =
  check t slot;
  match t.contents.(slot) with
  | None -> invalid_arg (Printf.sprintf "Swap_area.free: slot %d is free" slot)
  | Some _ ->
      (match t.on_free with
      | Some f -> f ~slot ~tier:t.tiers.(slot)
      | None -> ());
      t.contents.(slot) <- None;
      t.free_in_cluster.(slot / cluster_slots) <-
        t.free_in_cluster.(slot / cluster_slots) + 1;
      t.in_use <- t.in_use - 1

let set_tier t slot tier =
  check t slot;
  t.tiers.(slot) <- tier

let tier t slot =
  check t slot;
  t.tiers.(slot)

let set_on_free t f = t.on_free <- f

let content t slot =
  check t slot;
  match t.contents.(slot) with
  | Some c -> c
  | None ->
      invalid_arg (Printf.sprintf "Swap_area.content: slot %d is free" slot)

let is_allocated t slot =
  check t slot;
  t.contents.(slot) <> None

let sector_of_slot t slot =
  check t slot;
  t.base_sector + (slot * Geom.sectors_per_page)

let nslots t = t.nslots
let in_use t = t.in_use

let free_clusters t =
  let n = ref 0 in
  Array.iteri
    (fun c f -> if f = cluster_capacity t c then incr n)
    t.free_in_cluster;
  !n

let fragmented_allocs t = t.fragmented_allocs
