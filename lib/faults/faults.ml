module Error = struct
  type t = Media | Transient

  let to_string = function Media -> "media" | Transient -> "transient"
end

module Config = struct
  type t = {
    seed : int;
    media_rate : float;
    transient_rate : float;
    degraded_rate : float;
    degraded_mult : float;
    czram_rate : float;
  }

  let none =
    {
      seed = 0;
      media_rate = 0.0;
      transient_rate = 0.0;
      degraded_rate = 0.0;
      degraded_mult = 1.0;
      czram_rate = 0.0;
    }

  let is_none c =
    c.media_rate = 0.0 && c.transient_rate = 0.0 && c.degraded_rate = 0.0
    && c.czram_rate = 0.0

  (* [czram_rate] follows [media_rate] unless given explicitly: a
     config that corrodes the disk corrodes the compressed pool at the
     same rate, but an experiment can corrupt just one domain. *)
  let make ?(seed = 0) ?(media_rate = 0.0) ?(transient_rate = 0.0)
      ?(degraded_rate = 0.0) ?(degraded_mult = 4.0) ?czram_rate () =
    let czram_rate =
      match czram_rate with Some r -> r | None -> media_rate
    in
    { seed; media_rate; transient_rate; degraded_rate; degraded_mult;
      czram_rate }
end

module Plan = struct
  type t = {
    cfg : Config.t;
    media_key : int64;
    transient_key : int64;
    degraded_key : int64;
    destage_media_key : int64;
    destage_transient_key : int64;
    czram_key : int64;
    remote_key : int64;
    none : bool;
  }

  (* SplitMix64 finalizer.  Fault decisions are pure hashes of the
     request coordinates under a per-stream key, never draws from a
     shared mutable stream, so the pattern is independent of request
     interleaving (and hence of the worker-pool schedule). *)
  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let golden = 0x9E3779B97F4A7C15L

  (* Hash (key, a, b) to a float in [0, 1). *)
  let hash01 key a b =
    let z = Int64.add key (Int64.mul (Int64.of_int a) golden) in
    let z = mix64 z in
    let z = mix64 (Int64.add z (Int64.mul (Int64.of_int b) golden)) in
    let bits = Int64.to_int (Int64.shift_right_logical z 11) in
    float_of_int bits /. 9007199254740992.0

  (* [mix64]'s allocation-free native-int sibling.  The 64-bit
     multipliers above don't fit a 63-bit OCaml int, so these use
     smaller odd constants of the same character; overflow wraps, and
     the final mask keeps the result non-negative. *)
  let mix_int z =
    let z = z lxor (z lsr 30) in
    let z = z * 0x2545F4914F6CDD1D in
    let z = z lxor (z lsr 27) in
    let z = z * 0x1B03738712FAD5C9 in
    (z lxor (z lsr 31)) land max_int

  let create cfg =
    let rng = Sim.Rng.of_int cfg.Config.seed in
    let media_key = Sim.Rng.next_int64 rng in
    let transient_key = Sim.Rng.next_int64 rng in
    let degraded_key = Sim.Rng.next_int64 rng in
    (* Destage keys are drawn after the read-path keys, so adding the
       write-path streams left every pre-existing read-fault pattern of a
       given seed untouched. *)
    let destage_media_key = Sim.Rng.next_int64 rng in
    let destage_transient_key = Sim.Rng.next_int64 rng in
    (* Per-tier keys come last, same discipline: the czram/remote error
       domains were added after the destage streams, so older seeds keep
       their exact disk-fault patterns. *)
    let czram_key = Sim.Rng.next_int64 rng in
    let remote_key = Sim.Rng.next_int64 rng in
    {
      cfg;
      media_key;
      transient_key;
      degraded_key;
      destage_media_key;
      destage_transient_key;
      czram_key;
      remote_key;
      none = Config.is_none cfg;
    }

  let none = create Config.none

  let config t = t.cfg

  let is_none t = t.none

  let read_error t ~sector ~nsectors ~attempt =
    if t.none then None
    else begin
      let cfg = t.cfg in
      let err = ref None in
      let s = ref sector in
      let last = sector + nsectors - 1 in
      while !err <> Some Error.Media && !s <= last do
        if cfg.media_rate > 0.0 && hash01 t.media_key !s 0 < cfg.media_rate
        then err := Some Error.Media
        else if
          !err = None && cfg.transient_rate > 0.0
          && hash01 t.transient_key !s attempt < cfg.transient_rate
        then err := Some Error.Transient;
        incr s
      done;
      !err
    end

  let write_error t ~sector ~attempt =
    if t.none then None
    else begin
      let cfg = t.cfg in
      if
        cfg.media_rate > 0.0
        && hash01 t.destage_media_key sector 0 < cfg.media_rate
      then Some Error.Media
      else if
        cfg.transient_rate > 0.0
        && hash01 t.destage_transient_key sector attempt < cfg.transient_rate
      then Some Error.Transient
      else None
    end

  let czram_error t ~page =
    if t.none then None
    else begin
      let cfg = t.cfg in
      if cfg.czram_rate > 0.0 && hash01 t.czram_key page 0 < cfg.czram_rate
      then Some Error.Media
      else None
    end

  let remote_error t ~sector ~attempt =
    if t.none then None
    else begin
      let cfg = t.cfg in
      if
        cfg.transient_rate > 0.0
        && hash01 t.remote_key sector attempt < cfg.transient_rate
      then Some Error.Transient
      else None
    end

  let degraded_mult t ~sector =
    if t.none || t.cfg.degraded_rate = 0.0 then None
    else if hash01 t.degraded_key sector 1 < t.cfg.degraded_rate then
      Some t.cfg.degraded_mult
    else None
end
