(** Deterministic disk fault injection.

    A {!Plan.t} is a pure function from (sector, attempt) to a fault
    decision, derived from a single integer seed.  Because decisions
    are hashes of the request coordinates rather than draws from a
    shared mutable stream, the same plan produces the same faults no
    matter how requests interleave — which is what keeps experiment
    sweeps byte-identical at any [--jobs] count. *)

module Error : sig
  (** Typed disk read failure. *)
  type t =
    | Media  (** permanent: the sector is bad on every attempt *)
    | Transient  (** may succeed when retried (distinct attempt number) *)

  val to_string : t -> string
end

module Config : sig
  type t = {
    seed : int;  (** stream seed; same seed => same fault pattern *)
    media_rate : float;  (** per-sector probability of a permanent error *)
    transient_rate : float;
        (** per-sector, per-attempt probability of a transient error *)
    degraded_rate : float;
        (** per-batch probability of a degraded (slow) service *)
    degraded_mult : float;  (** latency multiplier for degraded service *)
    czram_rate : float;
        (** per-page probability of compressed-pool corruption; [make]
            defaults it to [media_rate], so a config that corrodes the
            disk corrodes the pool too unless told otherwise *)
  }

  val none : t
  (** All rates zero: injects nothing. *)

  val is_none : t -> bool

  val make :
    ?seed:int ->
    ?media_rate:float ->
    ?transient_rate:float ->
    ?degraded_rate:float ->
    ?degraded_mult:float ->
    ?czram_rate:float ->
    unit ->
    t
end

module Plan : sig
  type t

  val none : t
  (** Plan that never injects a fault (fast path, no hashing). *)

  val create : Config.t -> t

  val config : t -> Config.t

  val is_none : t -> bool

  val read_error :
    t -> sector:int -> nsectors:int -> attempt:int -> Error.t option
  (** Fault decision for a read covering [sector .. sector+nsectors-1]
      on its [attempt]-th submission (0-based).  Media errors depend
      only on the sector, so they persist across retries; transient
      errors also hash the attempt number, so a retry can succeed.
      Media takes precedence when both fire. *)

  val write_error : t -> sector:int -> attempt:int -> Error.t option
  (** Fault decision for destaging one buffered sector to the media on
      its [attempt]-th destage.  Drawn from write-path hash streams that
      are independent of the read-path streams, so enabling write faults
      does not reshuffle where read faults land for a given seed.  Media
      errors depend only on the sector (they persist); transient errors
      also hash the attempt, so a re-destage can succeed. *)

  val czram_error : t -> page:int -> Error.t option
  (** Fault decision for decompressing one page out of the compressed-RAM
      pool: pool corruption, modelled as a {!Error.Media} error keyed on
      the page number alone (it persists across attempts).  Fires with
      probability [czram_rate] from a stream independent of the disk's,
      so enabling czram faults does not move where disk faults land. *)

  val remote_error : t -> sector:int -> attempt:int -> Error.t option
  (** Fault decision for fetching one swap slot over the remote-memory
      link: a link timeout, modelled as {!Error.Transient} keyed on
      (sector, attempt) so a retry can succeed.  Fires with probability
      [transient_rate] from its own stream, independent of the disk's. *)

  val degraded_mult : t -> sector:int -> float option
  (** [Some m] when service starting at [sector] should be slowed by
      factor [m]; decided per starting sector, independent of time. *)

  val hash01 : int64 -> int -> int -> float
  (** [hash01 key a b] is the pure SplitMix64-style hash of [(key, a,
      b)] mapped to [0, 1) — the primitive behind every fault decision.
      Exposed so other deterministic per-sector models (e.g. the
      compressed-RAM tier's compressibility ratio) can draw from the
      same family without sharing a mutable stream. *)

  val mix_int : int -> int
  (** SplitMix-style finalizer over the native int, always
      non-negative.  The allocation-free sibling of the [int64] mix
      behind {!hash01} (the classic 64-bit constants do not fit OCaml's
      63-bit int, so the multipliers differ): used where a well-mixed
      deterministic tag must be derived from packed int fields without
      boxing — e.g. {!Storage.Content.combine} and the flat
      metadata-table hash. *)
end
