(* Open-addressing int->int table: linear probing over two parallel
   [int array]s, power-of-two capacity, backward-shift deletion.  See
   the .mli for the design rationale. *)

type t = {
  mutable keys : int array; (* [empty] marks a free slot *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let empty = min_int

(* SplitMix-style finalizer over the native int.  The classic 64-bit
   constants do not fit OCaml's 63-bit int, so we use odd multipliers
   that do; overflow wraps, which is exactly what the mix wants.  The
   final [lsr] folds high entropy down into the bits the mask keeps. *)
let hash k =
  let h = k lxor (k lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B03738712FAD5C9 in
  h lxor (h lsr 32)

let rec ceil_pow2 c n = if c >= n then c else ceil_pow2 (c * 2) n

let create ?(capacity = 16) () =
  (* Size so [capacity] bindings fit under the 3/4 load limit. *)
  let cap = ceil_pow2 8 (max 8 ((capacity * 4 / 3) + 1)) in
  {
    keys = Array.make cap empty;
    vals = Array.make cap 0;
    mask = cap - 1;
    size = 0;
  }

let length t = t.size
let capacity t = Array.length t.keys
let home_slot t k = hash k land t.mask

(* Index of [k]'s slot, or -1.  The probe loop touches only the two
   flat arrays; no allocation, no exceptions. *)
let slot_of t k =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash k land mask) in
  let r = ref (-2) in
  while !r = -2 do
    let kk = Array.unsafe_get keys !i in
    if kk = k then r := !i
    else if kk = empty then r := -1
    else i := (!i + 1) land mask
  done;
  !r

let mem t k = k <> empty && slot_of t k >= 0

let find t k ~default =
  let i = slot_of t k in
  if i < 0 then default else Array.unsafe_get t.vals i

let find_opt t k =
  let i = slot_of t k in
  if i < 0 then None else Some t.vals.(i)

(* Insert assuming the table has room and [k] may or may not be
   present; never grows (callers ensure headroom). *)
let put t k v =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash k land mask) in
  let stop = ref false in
  while not !stop do
    let kk = Array.unsafe_get keys !i in
    if kk = k then begin
      Array.unsafe_set t.vals !i v;
      stop := true
    end
    else if kk = empty then begin
      Array.unsafe_set keys !i k;
      Array.unsafe_set t.vals !i v;
      t.size <- t.size + 1;
      stop := true
    end
    else i := (!i + 1) land mask
  done

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap empty;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.size <- 0;
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k <> empty then put t k old_vals.(i)
  done

let set t k v =
  if k = empty then invalid_arg "Itbl.set: reserved key";
  (* Keep load <= 3/4 so probe clusters stay short. *)
  if 4 * (t.size + 1) > 3 * (t.mask + 1) then grow t;
  put t k v

(* Backward-shift deletion: after emptying slot [i], walk the cluster
   that follows.  An entry at [j] whose home slot [h] is *not*
   cyclically inside (i, j] was pushed past [i] by collisions, so it
   must move back into the hole (otherwise a later probe for it would
   stop early at the empty slot).  Entries whose home lies strictly
   after the hole stay put.  The walk ends at the first empty slot. *)
let remove t k =
  let i = slot_of t k in
  if i >= 0 then begin
    let keys = t.keys and vals = t.vals and mask = t.mask in
    let hole = ref i in
    let j = ref ((i + 1) land mask) in
    let stop = ref false in
    while not !stop do
      let kj = keys.(!j) in
      if kj = empty then stop := true
      else begin
        let h = hash kj land mask in
        (* cyclic "h in (hole, j]" <=> (j - h) mod cap < (j - hole) mod cap *)
        if (!j - h) land mask >= (!j - !hole) land mask then begin
          keys.(!hole) <- kj;
          vals.(!hole) <- vals.(!j);
          hole := !j
        end;
        j := (!j + 1) land mask
      end
    done;
    keys.(!hole) <- empty;
    t.size <- t.size - 1
  end

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = keys.(i) in
    if k <> empty then f k vals.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty;
  t.size <- 0

module Slab = struct
  type t = {
    mutable free : int array; (* LIFO stack of recycled indices *)
    mutable nfree : int;
    mutable hi : int; (* next never-used index *)
  }

  let create () = { free = Array.make 16 0; nfree = 0; hi = 0 }

  let alloc t =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      t.free.(t.nfree)
    end
    else begin
      let i = t.hi in
      t.hi <- t.hi + 1;
      i
    end

  let release t i =
    if t.nfree = Array.length t.free then begin
      let bigger = Array.make (2 * t.nfree) 0 in
      Array.blit t.free 0 bigger 0 t.nfree;
      t.free <- bigger
    end;
    t.free.(t.nfree) <- i;
    t.nfree <- t.nfree + 1

  let high t = t.hi
  let live t = t.hi - t.nfree
end
