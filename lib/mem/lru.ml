(* Sentinel-node representation: every list owns one circular sentinel,
   and a node's [prev]/[next] always point at a node (never an option), so
   insert/remove/move allocate nothing and branch on nothing.  A detached
   node self-loops.  Membership is tracked by an unboxed [owner_id]
   (0 = detached); list ids are drawn from an atomic counter so lists can
   be created from any domain. *)

type 'a node = {
  value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable owner_id : int;  (* 0 when detached, else the owning list's id *)
}

type 'a t = { sentinel : 'a node; mutable length : int; id : int }

let next_id = Atomic.make 1

let node value =
  let rec n = { value; prev = n; next = n; owner_id = 0 } in
  n

let create () =
  let id = Atomic.fetch_and_add next_id 1 in
  (* The sentinel's value is never exposed: it is an immediate dummy, and
     every accessor below checks emptiness (or walks back to the sentinel)
     before touching [value]. *)
  let rec s = { value = Obj.magic 0; prev = s; next = s; owner_id = 0 } in
  { sentinel = s; length = 0; id }

let value n = n.value
let in_some_list n = n.owner_id <> 0
let mem t n = n.owner_id = t.id

let check_detached n =
  if n.owner_id <> 0 then invalid_arg "Lru: node already in a list"

let check_member t n =
  if n.owner_id <> t.id then
    if n.owner_id = 0 then invalid_arg "Lru: node not in any list"
    else invalid_arg "Lru: node belongs to another list"

let link_front t n =
  let s = t.sentinel in
  n.prev <- s;
  n.next <- s.next;
  s.next.prev <- n;
  s.next <- n

let push_front t n =
  check_detached n;
  n.owner_id <- t.id;
  link_front t n;
  t.length <- t.length + 1

let push_back t n =
  check_detached n;
  n.owner_id <- t.id;
  let s = t.sentinel in
  n.next <- s;
  n.prev <- s.prev;
  s.prev.next <- n;
  s.prev <- n;
  t.length <- t.length + 1

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let remove t n =
  check_member t n;
  unlink n;
  n.owner_id <- 0;
  t.length <- t.length - 1

let move_front t n =
  check_member t n;
  unlink n;
  link_front t n

let pop_back t =
  if t.length = 0 then None
  else begin
    let n = t.sentinel.prev in
    unlink n;
    n.owner_id <- 0;
    t.length <- t.length - 1;
    Some n
  end

let peek_back t = if t.length = 0 then None else Some t.sentinel.prev
let length t = t.length
let is_empty t = t.length = 0

let iter t f =
  let s = t.sentinel in
  let rec go n =
    if n != s then begin
      let next = n.next in
      f n.value;
      go next
    end
  in
  go s.next

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc
