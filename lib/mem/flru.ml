(* Flat LRU arena: links live in parallel int arrays indexed by node
   id.  A detached node self-loops (prev = next = self, owner 0); each
   list's sentinel occupies a slot above the node region, so the link
   invariants are identical to the boxed [Lru] — insert/remove/move
   never branch on emptiness. *)

type arena = {
  mutable prev : int array;
  mutable next : int array;
  mutable owner : int array; (* 0 = detached, else owning list id *)
  mutable nslots : int;
  mutable next_sentinel : int; (* first free sentinel slot *)
  mutable next_list_id : int;
}

type t = { a : arena; s : int; (* sentinel slot *) id : int; mutable length : int }

let init_detached a lo hi =
  for i = lo to hi - 1 do
    a.prev.(i) <- i;
    a.next.(i) <- i;
    a.owner.(i) <- 0
  done

let arena ?(extra_lists = 8) ~nodes () =
  let nslots = nodes + max 1 extra_lists in
  let a =
    {
      prev = Array.make nslots 0;
      next = Array.make nslots 0;
      owner = Array.make nslots 0;
      nslots;
      next_sentinel = nodes;
      next_list_id = 1;
    }
  in
  init_detached a 0 nslots;
  a

let grow a =
  let nslots = 2 * a.nslots in
  let extend arr =
    let bigger = Array.make nslots 0 in
    Array.blit arr 0 bigger 0 a.nslots;
    bigger
  in
  a.prev <- extend a.prev;
  a.next <- extend a.next;
  a.owner <- extend a.owner;
  let old = a.nslots in
  a.nslots <- nslots;
  init_detached a old nslots

let list a =
  if a.next_sentinel >= a.nslots then grow a;
  let s = a.next_sentinel in
  a.next_sentinel <- s + 1;
  let id = a.next_list_id in
  a.next_list_id <- id + 1;
  (* The sentinel carries the list id so [in_some_list] stays a plain
     owner check for node slots. *)
  a.owner.(s) <- id;
  { a; s; id; length = 0 }

let length t = t.length
let is_empty t = t.length = 0
let mem t n = t.a.owner.(n) = t.id
let in_some_list a n = a.owner.(n) <> 0

let check_detached t n =
  if t.a.owner.(n) <> 0 then invalid_arg "Flru: node already in a list"

let check_member t n =
  if t.a.owner.(n) <> t.id then
    if t.a.owner.(n) = 0 then invalid_arg "Flru: node not in any list"
    else invalid_arg "Flru: node belongs to another list"

let push_front t n =
  check_detached t n;
  let a = t.a and s = t.s in
  a.owner.(n) <- t.id;
  let first = a.next.(s) in
  a.prev.(n) <- s;
  a.next.(n) <- first;
  a.prev.(first) <- n;
  a.next.(s) <- n;
  t.length <- t.length + 1

let push_back t n =
  check_detached t n;
  let a = t.a and s = t.s in
  a.owner.(n) <- t.id;
  let last = a.prev.(s) in
  a.next.(n) <- s;
  a.prev.(n) <- last;
  a.next.(last) <- n;
  a.prev.(s) <- n;
  t.length <- t.length + 1

let unlink a n =
  let p = a.prev.(n) and nx = a.next.(n) in
  a.next.(p) <- nx;
  a.prev.(nx) <- p;
  a.prev.(n) <- n;
  a.next.(n) <- n

let remove t n =
  check_member t n;
  unlink t.a n;
  t.a.owner.(n) <- 0;
  t.length <- t.length - 1

let pop_back t =
  if t.length = 0 then None
  else begin
    let n = t.a.prev.(t.s) in
    unlink t.a n;
    t.a.owner.(n) <- 0;
    t.length <- t.length - 1;
    Some n
  end

let peek_back t = if t.length = 0 then None else Some t.a.prev.(t.s)

let iter f t =
  let a = t.a and s = t.s in
  let n = ref a.next.(s) in
  while !n <> s do
    let next = a.next.(!n) in
    f !n;
    n := next
  done

let to_list t =
  let acc = ref [] in
  iter (fun n -> acc := n :: !acc) t;
  List.rev !acc
