(** Open-addressing int->int hash table for the flat page-metadata plane.

    The table is two parallel [int array]s (keys and values) probed
    linearly under a SplitMix-style finalizer, with power-of-two
    capacity.  Deletion uses backward-shift compaction instead of
    tombstones, so probe chains never rot and a long-lived table keeps
    its steady-state lookup cost no matter how much churn it has seen.
    Lookup, insert and remove allocate nothing once the table has grown
    to its working size, which is the point: these tables sit on the
    swap-in fault path where a million-page guest would otherwise pay a
    boxed [Hashtbl] bucket allocation per touch.

    One key is reserved as the empty-slot marker: [min_int] cannot be
    stored.  Every key actually used by the callers (packed
    [owner_key]s, swap slots, gpas, packed [(disk, block)] pairs) is
    non-negative, so the reservation costs nothing. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] makes an empty table sized for at least
    [capacity] bindings before the first grow (default 16). *)

val length : t -> int
(** Number of live bindings.  O(1). *)

val capacity : t -> int
(** Current slot-array size (a power of two); exposed for tests and
    gauges. *)

val mem : t -> int -> bool

val find : t -> int -> default:int -> int
(** [find t k ~default] returns the binding of [k], or [default] when
    absent.  Allocation-free. *)

val find_opt : t -> int -> int option
(** Allocating convenience wrapper; avoid on hot paths. *)

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding.
    Raises [Invalid_argument] on the reserved key [min_int]. *)

val remove : t -> int -> unit
(** Remove [k]'s binding if present, backward-shifting the tail of its
    probe cluster so no tombstone is left behind. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterates in slot order.  The order is a deterministic function of
    the operation history but otherwise unspecified. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val clear : t -> unit

val home_slot : t -> int -> int
(** [home_slot t k] is the index where [k]'s probe sequence starts at
    the current capacity.  Exposed so tests can construct colliding keys
    and exercise backward-shift deletion across the wraparound
    boundary. *)

(** Dense payload-index allocator for record-valued tables.

    An [Itbl] maps int keys to int payload *indices*; the payload fields
    themselves live in parallel arrays owned by the caller, indexed by
    the slots this slab hands out.  Freed indices are recycled LIFO, so
    the dense region never exceeds the historical peak of live
    payloads. *)
module Slab : sig
  type t

  val create : unit -> t

  val alloc : t -> int
  (** Smallest-available dense index; grows the high-water mark when the
      free list is empty. *)

  val release : t -> int -> unit

  val high : t -> int
  (** High-water mark: caller arrays must accommodate indices
      [0 .. high - 1]. *)

  val live : t -> int
end
