(** Flat intrusive LRU lists over a shared int-array arena.

    Where {!Lru} boxes one record per node, [Flru] keeps every link in
    three parallel [int array]s — [prev], [next], [owner] — indexed by
    the node id itself.  The host frame table uses the frame number as
    the node id, so all the cgroup LRU lists and the frame metadata live
    in the same flat slab, and moving a frame between lists is a few int
    stores with zero allocation.

    Multiple lists share one arena; each list gets a sentinel slot
    carved from the region above the caller's node ids and a non-zero
    owner id, so [mem] is an O(1) array read. *)

type arena
type t

val arena : ?extra_lists:int -> nodes:int -> unit -> arena
(** [arena ~nodes ()] builds an arena whose node ids are
    [0 .. nodes - 1], all initially detached.  [extra_lists] reserves
    sentinel headroom (the sentinel region also grows on demand). *)

val list : arena -> t
(** A new empty list drawing nodes from [arena]. *)

val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
(** Is node [n] currently on this particular list?  O(1). *)

val in_some_list : arena -> int -> bool
(** Is node [n] on any list of the arena? *)

val push_front : t -> int -> unit
(** Insert a detached node at the MRU end.  Raises [Invalid_argument]
    if [n] is already on a list. *)

val push_back : t -> int -> unit
(** Insert a detached node at the LRU end. *)

val remove : t -> int -> unit
(** Detach [n].  Raises [Invalid_argument] if [n] is not on this
    list. *)

val pop_back : t -> int option
(** Remove and return the LRU node, or [None] if empty. *)

val peek_back : t -> int option
(** The LRU node without removal. *)

val iter : (int -> unit) -> t -> unit
(** Front (MRU) to back (LRU).  [f] must not mutate the list. *)

val to_list : t -> int list
(** Front-to-back; for tests and debug dumps. *)
