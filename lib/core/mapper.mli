(** The Swap Mapper (paper Section 4.1).

    Tracks, per guest, which memory pages are unmodified copies of
    virtual-disk blocks.  The hypervisor consults the Mapper at three
    points:

    - when serving guest disk I/O (to establish/refresh mappings and to
      run the data-consistency protocol on writes);
    - when the guest CPU stores to a tracked page (private-mapping COW
      semantics: the mapping breaks and the page becomes anonymous);
    - when reclaiming or faulting a guest page (named pages are dropped
      on reclaim and re-read from the image on fault, instead of
      round-tripping through the host swap area).

    The Mapper holds only the association; presence/absence of the page
    is the hypervisor's business.  An invariant checked throughout: a
    tracked page's recorded version always equals the current version of
    its backing block — the consistency protocol exists precisely to
    preserve this. *)

type t

(** Backing-store location of a tracked page. *)
type backing = { disk : int; block : int; version : int }

(** [create ~stats ()] makes an empty per-guest mapper.  [stats]'s
    [mapper_tracked] gauge is kept in sync. *)
val create : stats:Metrics.Stats.t -> unit -> t

(** [track t ~gpa ~disk ~block ~version] records that guest page [gpa]
    now holds block [block] of [disk] at [version].  Any previous mapping
    of [gpa] is dropped first.  Several pages may map the same block
    (like several private mmaps of one file page); they are all
    invalidated together when the block is overwritten. *)
val track : t -> gpa:int -> disk:int -> block:int -> version:int -> unit

(** [untrack t ~gpa] drops the mapping of [gpa] (guest stored to the
    page, or the page was repurposed).  No-op if untracked. *)
val untrack : t -> gpa:int -> unit

(** [lookup t ~gpa] is the backing of [gpa] if tracked.  Allocates; the
    fault/evict paths use the unboxed accessors below. *)
val lookup : t -> gpa:int -> backing option

(** [tracked_block t ~gpa] is the backing block of [gpa], or -1 if
    untracked.  Allocation-free. *)
val tracked_block : t -> gpa:int -> int

(** [tracked_disk t ~gpa] is the backing disk of [gpa], or -1. *)
val tracked_disk : t -> gpa:int -> int

(** [tracked_version t ~gpa] is the backing version of [gpa], or -1. *)
val tracked_version : t -> gpa:int -> int

(** [gpas_of_block t ~disk ~block] are the guest pages tracked as holding
    the block. *)
val gpas_of_block : t -> disk:int -> block:int -> int list

(** [invalidate_block t ~disk ~block] runs the write-side consistency
    protocol: every mapping of the block is destroyed and the affected
    gpas returned so the hypervisor can preserve their old content
    (fault them in) {e before} letting the disk write proceed. *)
val invalidate_block : t -> disk:int -> block:int -> int list

(** [tracked t] is the number of tracked pages. *)
val tracked : t -> int

(** [readahead_window t ~disk ~block ~max] lists up to [max] blocks
    [block, block+1, ...] (consecutive, starting at [block]) that are
    tracked by this mapper, each paired with one tracked gpa.  Fault-time
    image readahead uses this: consecutive file blocks are contiguous in
    the image, so prefetching them is nearly free. *)
val readahead_window :
  t -> disk:int -> block:int -> max:int -> (int * int list) list

(** [iter t f] visits all (gpa, backing) pairs. *)
val iter : t -> (int -> backing -> unit) -> unit
