(* Flat representation: the (at most [max_buffers], default 32) live
   buffers sit in three fixed parallel int arrays — gpa (-1 = free),
   start time, coverage frontier — scanned linearly.  The cap is tiny,
   so the scan is a handful of cache-resident int compares and every
   operation is allocation-free; the old boxed Hashtbl paid a record
   allocation per buffered page on the emulated-write path. *)

type t = {
  stats : Metrics.Stats.t;
  window : Sim.Time.t;
  max_buffers : int;
  p_gpa : int array;
  p_started : int array;
  p_frontier : int array;
  mutable live : int;
}

type write_decision =
  | Completed
  | Buffered of { first_write : bool }
  | Needs_merge
  | Rejected

type read_decision = Served_from_buffer | Suspend

let create ~stats ~window ~max_buffers =
  let n = max 1 max_buffers in
  {
    stats;
    window;
    max_buffers;
    p_gpa = Array.make n (-1);
    p_started = Array.make n 0;
    p_frontier = Array.make n 0;
    live = 0;
  }

let active t = t.live
let n_slots t = Array.length t.p_gpa

let slot_of t gpa =
  let n = n_slots t in
  let rec go i =
    if i >= n then -1 else if t.p_gpa.(i) = gpa then i else go (i + 1)
  in
  go 0

let free_slot t =
  let n = n_slots t in
  let rec go i =
    if i >= n then -1 else if t.p_gpa.(i) < 0 then i else go (i + 1)
  in
  go 0

let is_buffered t ~gpa = slot_of t gpa >= 0

let drop t i =
  t.p_gpa.(i) <- -1;
  t.live <- t.live - 1

let on_write t ~now ~gpa ~offset ~len =
  let i = slot_of t gpa in
  if i < 0 then
    if t.live >= t.max_buffers then begin
      t.stats.preventer_rejects <- t.stats.preventer_rejects + 1;
      Rejected
    end
    else if offset <> 0 then begin
      (* A buffer can only start at the page head; anything else cannot
         grow into full coverage under the sequential rule. *)
      t.stats.preventer_merges <- t.stats.preventer_merges + 1;
      Needs_merge
    end
    else if len >= Storage.Geom.page_bytes then begin
      t.stats.preventer_remaps <- t.stats.preventer_remaps + 1;
      Completed
    end
    else begin
      let i = free_slot t in
      t.p_gpa.(i) <- gpa;
      t.p_started.(i) <- now;
      t.p_frontier.(i) <- len;
      t.live <- t.live + 1;
      Buffered { first_write = true }
    end
  else if offset <> t.p_frontier.(i) then begin
    drop t i;
    t.stats.preventer_merges <- t.stats.preventer_merges + 1;
    Needs_merge
  end
  else begin
    t.p_frontier.(i) <- t.p_frontier.(i) + len;
    if t.p_frontier.(i) >= Storage.Geom.page_bytes then begin
      drop t i;
      t.stats.preventer_remaps <- t.stats.preventer_remaps + 1;
      Completed
    end
    else Buffered { first_write = false }
  end

let on_rep_write t ~gpa =
  let i = slot_of t gpa in
  if i >= 0 then drop t i;
  t.stats.preventer_remaps <- t.stats.preventer_remaps + 1

let on_read t ~gpa ~offset ~len =
  let i = slot_of t gpa in
  if i >= 0 && offset + len <= t.p_frontier.(i) then Served_from_buffer
  else Suspend

let expired t ~now =
  (* Scanned high-to-low so the returned list comes out in ascending
     slot order.  Which buffers expire is a pure time comparison; only
     the caller's merge issue order follows this list. *)
  let gone = ref [] in
  for i = n_slots t - 1 downto 0 do
    let gpa = t.p_gpa.(i) in
    if gpa >= 0 && Sim.Time.sub now t.p_started.(i) >= t.window then begin
      drop t i;
      t.stats.preventer_timeouts <- t.stats.preventer_timeouts + 1;
      t.stats.preventer_merges <- t.stats.preventer_merges + 1;
      gone := gpa :: !gone
    end
  done;
  !gone

let next_deadline t =
  let best = ref None in
  for i = 0 to n_slots t - 1 do
    if t.p_gpa.(i) >= 0 then begin
      let dl = Sim.Time.add t.p_started.(i) t.window in
      match !best with
      | None -> best := Some dl
      | Some b -> best := Some (Sim.Time.min b dl)
    end
  done;
  !best

let abandon t ~gpa =
  let i = slot_of t gpa in
  if i >= 0 then drop t i
