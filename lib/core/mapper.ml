(* Flat representation: the per-gpa backing records live in parallel
   int arrays indexed by a dense payload slot ({!Mem.Itbl.Slab}), the
   gpa -> slot and packed (disk, block) -> chain-head indexes are
   open-addressing {!Mem.Itbl}s, and the pages sharing one block form a
   singly-linked chain threaded through [b_next].  Track/untrack/lookup
   on the fault and I/O paths are allocation-free; chains are consed at
   the head so [gpas_of_block] still lists most-recently-tracked
   first, exactly like the old [gpa :: gpas] association lists. *)

type backing = { disk : int; block : int; version : int }

(* Packed (disk, block) key, same idiom as the host's owner_key. *)
let block_bits = 40
let block_key ~disk ~block = (disk lsl block_bits) lor block

type t = {
  stats : Metrics.Stats.t;
  by_gpa : Mem.Itbl.t; (* gpa -> payload slot *)
  by_block : Mem.Itbl.t; (* block_key -> head payload slot *)
  slab : Mem.Itbl.Slab.t;
  mutable b_gpa : int array;
  mutable b_disk : int array;
  mutable b_block : int array;
  mutable b_version : int array;
  mutable b_next : int array; (* chain link; -1 terminates *)
  mutable count : int; (* incrementally-tracked live mappings *)
}

let create ~stats () =
  {
    stats;
    by_gpa = Mem.Itbl.create ~capacity:1024 ();
    by_block = Mem.Itbl.create ~capacity:1024 ();
    slab = Mem.Itbl.Slab.create ();
    b_gpa = Array.make 1024 0;
    b_disk = Array.make 1024 0;
    b_block = Array.make 1024 0;
    b_version = Array.make 1024 0;
    b_next = Array.make 1024 (-1);
    count = 0;
  }

let ensure_capacity t slot =
  if slot >= Array.length t.b_gpa then begin
    let n = 2 * Array.length t.b_gpa in
    let extend a =
      let bigger = Array.make n 0 in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.b_gpa <- extend t.b_gpa;
    t.b_disk <- extend t.b_disk;
    t.b_block <- extend t.b_block;
    t.b_version <- extend t.b_version;
    t.b_next <- extend t.b_next
  end

let gauge t =
  (* The incremental count must agree with the index; checked in dev
     builds, compiled out in release. *)
  assert (t.count = Mem.Itbl.length t.by_gpa);
  t.stats.mapper_tracked <- t.count

let untrack t ~gpa =
  let slot = Mem.Itbl.find t.by_gpa gpa ~default:(-1) in
  if slot >= 0 then begin
    Mem.Itbl.remove t.by_gpa gpa;
    let key = block_key ~disk:t.b_disk.(slot) ~block:t.b_block.(slot) in
    (* Unlink [slot] from its block chain, preserving the order of the
       remaining entries (the old code List.filter'ed). *)
    let head = Mem.Itbl.find t.by_block key ~default:(-1) in
    if head = slot then begin
      let next = t.b_next.(slot) in
      if next < 0 then Mem.Itbl.remove t.by_block key
      else Mem.Itbl.set t.by_block key next
    end
    else begin
      let p = ref head in
      while !p >= 0 && t.b_next.(!p) <> slot do
        p := t.b_next.(!p)
      done;
      if !p >= 0 then t.b_next.(!p) <- t.b_next.(slot)
    end;
    Mem.Itbl.Slab.release t.slab slot;
    t.count <- t.count - 1;
    gauge t
  end

let track t ~gpa ~disk ~block ~version =
  untrack t ~gpa;
  let slot = Mem.Itbl.Slab.alloc t.slab in
  ensure_capacity t slot;
  t.b_gpa.(slot) <- gpa;
  t.b_disk.(slot) <- disk;
  t.b_block.(slot) <- block;
  t.b_version.(slot) <- version;
  let key = block_key ~disk ~block in
  t.b_next.(slot) <- Mem.Itbl.find t.by_block key ~default:(-1);
  Mem.Itbl.set t.by_block key slot;
  Mem.Itbl.set t.by_gpa gpa slot;
  t.count <- t.count + 1;
  gauge t

let lookup t ~gpa =
  let slot = Mem.Itbl.find t.by_gpa gpa ~default:(-1) in
  if slot < 0 then None
  else
    Some
      {
        disk = t.b_disk.(slot);
        block = t.b_block.(slot);
        version = t.b_version.(slot);
      }

(* Unboxed lookups for the host's fault/evict paths. *)
let tracked_block t ~gpa =
  let slot = Mem.Itbl.find t.by_gpa gpa ~default:(-1) in
  if slot < 0 then -1 else t.b_block.(slot)

let tracked_disk t ~gpa =
  let slot = Mem.Itbl.find t.by_gpa gpa ~default:(-1) in
  if slot < 0 then -1 else t.b_disk.(slot)

let tracked_version t ~gpa =
  let slot = Mem.Itbl.find t.by_gpa gpa ~default:(-1) in
  if slot < 0 then -1 else t.b_version.(slot)

let gpas_of_block t ~disk ~block =
  let rec go slot acc =
    if slot < 0 then List.rev acc else go t.b_next.(slot) (t.b_gpa.(slot) :: acc)
  in
  go (Mem.Itbl.find t.by_block (block_key ~disk ~block) ~default:(-1)) []

let invalidate_block t ~disk ~block =
  match gpas_of_block t ~disk ~block with
  | [] -> []
  | gpas ->
      List.iter (fun gpa -> untrack t ~gpa) gpas;
      t.stats.mapper_invalidations <- t.stats.mapper_invalidations + 1;
      gpas

let tracked t = t.count

let readahead_window t ~disk ~block ~max =
  let rec go b acc =
    if b - block >= max then List.rev acc
    else
      match gpas_of_block t ~disk ~block:b with
      | [] -> List.rev acc
      | gpas -> go (b + 1) ((b, gpas) :: acc)
  in
  go block []

let iter t f =
  Mem.Itbl.iter
    (fun gpa slot ->
      f gpa
        {
          disk = t.b_disk.(slot);
          block = t.b_block.(slot);
          version = t.b_version.(slot);
        })
    t.by_gpa
