type event = {
  mutable cancelled : bool;
  mutable fn : unit -> unit;
  recyclable : bool;
      (* [run_at]/[run_after] events: no handle escapes, so the record can
         go back on the freelist the moment it fires. *)
  mutable next_free : event;  (* freelist link; self-loop terminates *)
}

(* Freelist terminator.  Shared across engines (and domains) but never
   mutated: [next_free] of a live record always points into its own
   engine's list or at [nil]. *)
let nil =
  let rec e = { cancelled = false; fn = ignore; recyclable = false; next_free = e } in
  e

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable live : int;
  mutable free : event;  (* head of the recycled-record freelist *)
}

let create () = { clock = Time.zero; queue = Heap.create (); live = 0; free = nil }
let now t = t.clock

let check_not_past t time =
  if Time.compare time t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)"
         (Time.to_us time) (Time.to_us t.clock))

let schedule_at t time fn =
  check_not_past t time;
  let ev = { cancelled = false; fn; recyclable = false; next_free = nil } in
  Heap.add t.queue ~priority:(Time.to_us time) ev;
  t.live <- t.live + 1;
  ev

let schedule_after t delay fn = schedule_at t (Time.add t.clock delay) fn

let run_at t time fn =
  check_not_past t time;
  let ev =
    if t.free != nil then begin
      let e = t.free in
      t.free <- e.next_free;
      e.next_free <- nil;
      e.fn <- fn;
      e
    end
    else { cancelled = false; fn; recyclable = true; next_free = nil }
  in
  Heap.add t.queue ~priority:(Time.to_us time) ev;
  t.live <- t.live + 1

let run_after t delay fn = run_at t (Time.add t.clock delay) fn

let release t ev =
  ev.fn <- ignore;  (* drop the closure so the freelist retains nothing *)
  ev.next_free <- t.free;
  t.free <- ev

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.top_priority t.queue in
    let ev = Heap.top t.queue in
    Heap.drop_min t.queue;
    if ev.cancelled then step t
    else begin
      t.clock <- time;
      t.live <- t.live - 1;
      let fn = ev.fn in
      (* Recycle before firing: the callback may schedule and can reuse
         this very record.  Only handle-less events are recyclable, so
         no stale [cancel] can reach a reused record. *)
      if ev.recyclable then release t ev;
      fn ();
      true
    end
  end

let run t = while step t do () done

let rec run_until t limit =
  if Heap.is_empty t.queue then false
  else begin
    let ev = Heap.top t.queue in
    if ev.cancelled then begin
      Heap.drop_min t.queue;
      if ev.recyclable then release t ev;
      run_until t limit
    end
    else if Time.compare (Time.us (Heap.top_priority t.queue)) limit > 0 then
      true
    else begin
      ignore (step t);
      run_until t limit
    end
  end
