(* The engine dispatches over two interchangeable event-queue backends
   with identical observable semantics (firing order, clock, handle
   lifecycle, counters visible through [pending]):

   - [Wheel] (default): hierarchical timing wheel — O(1) schedule and
     cancel, true removal on cancel, whole-tick batch dispatch.
   - [Heap]: the original binary heap over a freelist slab, kept as the
     `VSWAPPER_ENGINE=heap` escape hatch and as the reference
     implementation for the differential test harness.  Cancellation is
     lazy: cancelled records stay queued until a drain pops them.

   Heap-backend event records live in a slab indexed by the heap, and
   every record — cancellable or not — recycles through a freelist.  A
   handle is a packed (slot index, generation) immediate: releasing a
   slot bumps its generation, so stale handles (fired or long-cancelled
   events) are detected and ignored instead of corrupting a reused
   record.  The wheel backend applies the same handle discipline inside
   [Wheel]. *)

type backend = Heap | Wheel

let backend_name = function Heap -> "heap" | Wheel -> "wheel"

let default_backend =
  let warned = ref false in
  fun () ->
    match Sys.getenv_opt "VSWAPPER_ENGINE" with
    | Some "heap" -> Heap
    | None | Some "wheel" -> Wheel
    | Some other ->
        if not !warned then begin
          warned := true;
          Printf.eprintf
            "[engine] unknown VSWAPPER_ENGINE=%S (expected \"heap\" or \
             \"wheel\"); using the wheel\n\
             %!"
            other
        end;
        Wheel

type slot = {
  mutable fn : unit -> unit;
  mutable gen : int;  (* bumped on release; low [gen_bits] of a handle *)
  mutable cancelled : bool;
  mutable next_free : int;  (* freelist link; -1 terminates; unused when live *)
}

type event = int
(* [(idx lsl gen_bits) lor (gen land gen_mask)]; negative = null. *)

let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1
let null = -1

type heap_state = {
  queue : int Heap.t;  (* slot indices, prioritized by firing time *)
  mutable live : int;
  mutable cancelled_queued : int;  (* cancelled records not yet drained *)
  mutable slots : slot array;
  mutable free_head : int;  (* head of the free-slot index chain; -1 = none *)
  mutable h_fired : int;
  mutable h_reclaimed : int;  (* cancelled records released by a drain *)
}

type impl = H of heap_state | W of (unit -> unit) Wheel.t

type t = { mutable clock : Time.t; impl : impl }

let fresh_slot i = { fn = ignore; gen = 0; cancelled = false; next_free = i }

(* Chain slots [lo, hi) onto the freelist in ascending order. *)
let chain slots lo hi tail =
  for i = lo to hi - 1 do
    slots.(i).next_free <- (if i = hi - 1 then tail else i + 1)
  done;
  lo

let create ?backend () =
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  let impl =
    match backend with
    | Wheel -> W (Wheel.create ())
    | Heap ->
        let n = 64 in
        let slots = Array.init n (fun i -> fresh_slot i) in
        let free_head = chain slots 0 n (-1) in
        H
          {
            queue = Heap.create ();
            live = 0;
            cancelled_queued = 0;
            slots;
            free_head;
            h_fired = 0;
            h_reclaimed = 0;
          }
  in
  { clock = Time.zero; impl }

let backend t = match t.impl with H _ -> Heap | W _ -> Wheel
let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Heap backend slab                                                   *)
(* ------------------------------------------------------------------ *)

let grow h =
  let n = Array.length h.slots in
  let slots =
    Array.init (2 * n) (fun i -> if i < n then h.slots.(i) else fresh_slot i)
  in
  h.slots <- slots;
  h.free_head <- chain slots n (2 * n) h.free_head

let alloc_slot h fn =
  if h.free_head < 0 then grow h;
  let i = h.free_head in
  let s = h.slots.(i) in
  h.free_head <- s.next_free;
  s.fn <- fn;
  s.cancelled <- false;
  i

(* Release a popped slot: bump the generation (outstanding handles go
   stale), drop the closure so the freelist retains nothing, and push the
   slot back for reuse. *)
let release h i =
  let s = h.slots.(i) in
  s.fn <- ignore;
  s.gen <- (s.gen + 1) land gen_mask;
  s.cancelled <- false;
  s.next_free <- h.free_head;
  h.free_head <- i

(* Drop a cancelled record found at the top of the heap. *)
let reclaim_cancelled h i =
  Heap.drop_min h.queue;
  release h i;
  h.cancelled_queued <- h.cancelled_queued - 1;
  h.h_reclaimed <- h.h_reclaimed + 1

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let check_not_past t time =
  if Time.compare time t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)"
         (Time.to_us time) (Time.to_us t.clock))

let schedule_at t time fn =
  check_not_past t time;
  match t.impl with
  | H h ->
      let i = alloc_slot h fn in
      Heap.add h.queue ~priority:(Time.to_us time) i;
      h.live <- h.live + 1;
      (i lsl gen_bits) lor h.slots.(i).gen
  | W w -> Wheel.add w ~time:(Time.to_us time) fn

let schedule_after t delay fn = schedule_at t (Time.add t.clock delay) fn
let run_at t time fn = ignore (schedule_at t time fn : event)
let run_after t delay fn = run_at t (Time.add t.clock delay) fn

let cancel t ev =
  if ev >= 0 then
    match t.impl with
    | H h ->
        let s = h.slots.(ev lsr gen_bits) in
        (* The generation check makes cancelling a fired (or fired-and-
           reused) event a no-op instead of sabotaging the slot's new
           occupant.  The record stays queued until a drain pops it. *)
        if s.gen = ev land gen_mask && not s.cancelled then begin
          s.cancelled <- true;
          h.live <- h.live - 1;
          h.cancelled_queued <- h.cancelled_queued + 1
        end
    | W w -> ignore (Wheel.cancel w ev : bool)

let pending t = match t.impl with H h -> h.live | W w -> Wheel.length w

let cancelled_pending t =
  match t.impl with H h -> h.cancelled_queued | W _ -> 0

(* ------------------------------------------------------------------ *)
(* Draining                                                            *)
(* ------------------------------------------------------------------ *)

let rec heap_step t h =
  if Heap.is_empty h.queue then false
  else begin
    let time = Heap.top_priority h.queue in
    let i = Heap.top h.queue in
    let s = h.slots.(i) in
    if s.cancelled then begin
      (* Cancelled records are reclaimed on every drain path. *)
      reclaim_cancelled h i;
      heap_step t h
    end
    else begin
      Heap.drop_min h.queue;
      t.clock <- Time.us time;
      h.live <- h.live - 1;
      h.h_fired <- h.h_fired + 1;
      let fn = s.fn in
      (* Recycle before firing: the callback may schedule and can reuse
         this very slot; any handle to the fired event is now stale. *)
      release h i;
      fn ();
      true
    end
  end

let wheel_step t w =
  let nt = Wheel.next_time w in
  if nt < 0 then false
  else begin
    (* [pop] recycles the record before handing back the callback, so a
       handle to the fired event is stale by the time it runs. *)
    let fn = Wheel.pop w in
    t.clock <- Time.us nt;
    fn ();
    true
  end

let step t = match t.impl with H h -> heap_step t h | W w -> wheel_step t w
let run t = while step t do () done

(* One [top]/[top_priority] read per iteration: the record index decides
   whether this is a reclaim, and its priority is read once and reused
   for both the limit check and the clock. *)
let rec heap_run_until t h limit =
  if Heap.is_empty h.queue then false
  else begin
    let i = Heap.top h.queue in
    let s = h.slots.(i) in
    if s.cancelled then begin
      reclaim_cancelled h i;
      heap_run_until t h limit
    end
    else begin
      let time = Time.us (Heap.top_priority h.queue) in
      if Time.compare time limit > 0 then true
      else begin
        Heap.drop_min h.queue;
        t.clock <- time;
        h.live <- h.live - 1;
        h.h_fired <- h.h_fired + 1;
        let fn = s.fn in
        release h i;
        fn ();
        heap_run_until t h limit
      end
    end
  end

(* The wheel's [next_time] is pure and cached, so the next-event time is
   read once per iteration; the first pop of a tick pays the slot search
   and the rest of the batch drains at O(1) per event. *)
let rec wheel_run_until t w limit =
  let nt = Wheel.next_time w in
  if nt < 0 then false
  else if Time.compare (Time.us nt) limit > 0 then true
  else begin
    let fn = Wheel.pop w in
    t.clock <- Time.us nt;
    fn ();
    wheel_run_until t w limit
  end

let run_until t limit =
  match t.impl with
  | H h -> heap_run_until t h limit
  | W w -> wheel_run_until t w limit

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

type telemetry = {
  tel_backend : backend;
  events_fired : int;
  cancels_reclaimed : int;
  cascades : int;
}

let telemetry t =
  match t.impl with
  | H h ->
      {
        tel_backend = Heap;
        events_fired = h.h_fired;
        cancels_reclaimed = h.h_reclaimed;
        cascades = 0;
      }
  | W w ->
      {
        tel_backend = Wheel;
        events_fired = Wheel.fired w;
        cancels_reclaimed = Wheel.cancelled w;
        cascades = Wheel.cascades w;
      }
