(* Event records live in a slab indexed by the heap, and every record —
   cancellable or not — recycles through a freelist.  A handle is a
   packed (slot index, generation) immediate: releasing a slot bumps its
   generation, so stale handles (fired or long-cancelled events) are
   detected and ignored instead of corrupting a reused record. *)

type slot = {
  mutable fn : unit -> unit;
  mutable gen : int;  (* bumped on release; low [gen_bits] of a handle *)
  mutable cancelled : bool;
  mutable next_free : int;  (* freelist link; -1 terminates; unused when live *)
}

type event = int
(* [(idx lsl gen_bits) lor (gen land gen_mask)]; negative = null. *)

let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1
let null = -1

type t = {
  mutable clock : Time.t;
  queue : int Heap.t;  (* slot indices, prioritized by firing time *)
  mutable live : int;
  mutable slots : slot array;
  mutable free_head : int;  (* head of the free-slot index chain; -1 = none *)
}

let fresh_slot i = { fn = ignore; gen = 0; cancelled = false; next_free = i }

(* Chain slots [lo, hi) onto the freelist in ascending order. *)
let chain slots lo hi tail =
  for i = lo to hi - 1 do
    slots.(i).next_free <- (if i = hi - 1 then tail else i + 1)
  done;
  lo

let create () =
  let n = 64 in
  let slots = Array.init n (fun i -> fresh_slot i) in
  let free_head = chain slots 0 n (-1) in
  { clock = Time.zero; queue = Heap.create (); live = 0; slots; free_head }

let now t = t.clock

let grow t =
  let n = Array.length t.slots in
  let slots = Array.init (2 * n) (fun i -> if i < n then t.slots.(i) else fresh_slot i) in
  t.slots <- slots;
  t.free_head <- chain slots n (2 * n) t.free_head

let alloc_slot t fn =
  if t.free_head < 0 then grow t;
  let i = t.free_head in
  let s = t.slots.(i) in
  t.free_head <- s.next_free;
  s.fn <- fn;
  s.cancelled <- false;
  i

(* Release a popped slot: bump the generation (outstanding handles go
   stale), drop the closure so the freelist retains nothing, and push the
   slot back for reuse. *)
let release t i =
  let s = t.slots.(i) in
  s.fn <- ignore;
  s.gen <- (s.gen + 1) land gen_mask;
  s.cancelled <- false;
  s.next_free <- t.free_head;
  t.free_head <- i

let check_not_past t time =
  if Time.compare time t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)"
         (Time.to_us time) (Time.to_us t.clock))

let schedule_at t time fn =
  check_not_past t time;
  let i = alloc_slot t fn in
  Heap.add t.queue ~priority:(Time.to_us time) i;
  t.live <- t.live + 1;
  (i lsl gen_bits) lor t.slots.(i).gen

let schedule_after t delay fn = schedule_at t (Time.add t.clock delay) fn

let run_at t time fn =
  check_not_past t time;
  let i = alloc_slot t fn in
  Heap.add t.queue ~priority:(Time.to_us time) i;
  t.live <- t.live + 1

let run_after t delay fn = run_at t (Time.add t.clock delay) fn

let cancel t ev =
  if ev >= 0 then begin
    let s = t.slots.(ev lsr gen_bits) in
    (* The generation check makes cancelling a fired (or fired-and-reused)
       event a no-op instead of sabotaging the slot's new occupant. *)
    if s.gen = ev land gen_mask && not s.cancelled then begin
      s.cancelled <- true;
      t.live <- t.live - 1
    end
  end

let pending t = t.live

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.top_priority t.queue in
    let i = Heap.top t.queue in
    Heap.drop_min t.queue;
    let s = t.slots.(i) in
    if s.cancelled then begin
      (* Cancelled records are reclaimed on every drain path. *)
      release t i;
      step t
    end
    else begin
      t.clock <- time;
      t.live <- t.live - 1;
      let fn = s.fn in
      (* Recycle before firing: the callback may schedule and can reuse
         this very slot; any handle to the fired event is now stale. *)
      release t i;
      fn ();
      true
    end
  end

let run t = while step t do () done

let rec run_until t limit =
  if Heap.is_empty t.queue then false
  else begin
    let i = Heap.top t.queue in
    if t.slots.(i).cancelled then begin
      Heap.drop_min t.queue;
      release t i;
      run_until t limit
    end
    else if Time.compare (Time.us (Heap.top_priority t.queue)) limit > 0 then
      true
    else begin
      ignore (step t);
      run_until t limit
    end
  end
