(** Discrete-event simulation engine.

    The engine owns the virtual clock and a stable priority queue of
    events.  All activity in the simulated machine — disk completions,
    compute bursts finishing, balloon-manager ticks — is an event; running
    the engine pops events in time order and invokes their callbacks, which
    in turn schedule more events.

    Two event-queue backends share identical observable semantics (firing
    order including same-time FIFO stability, clock behaviour, handle
    lifecycle): the default hierarchical {!Wheel} (O(1) schedule and
    cancel with true removal, whole-tick batch dispatch) and the original
    binary {!Heap} (O(log n) operations, lazy cancellation), selectable
    with [VSWAPPER_ENGINE=heap|wheel] or per instance via {!create}. *)

type t

(** Event-queue backend.  {!create} defaults to {!default_backend}. *)
type backend = Heap | Wheel

(** The process-wide default: [Heap] when [VSWAPPER_ENGINE=heap] is set,
    otherwise [Wheel].  An unknown value warns once on stderr and falls
    back to the wheel. *)
val default_backend : unit -> backend

val backend_name : backend -> string

(** Handle to a scheduled event, usable with {!cancel}.  Handles are
    generation-counted: the underlying event record is recycled through a
    freelist the moment the event fires (or is cancelled — immediately
    under the wheel, at the next drain under the heap), and a handle held
    past that point goes stale — cancelling a stale handle is a
    guaranteed no-op. *)
type event

(** A handle that designates no event; {!cancel} ignores it.  Useful as
    the rest state of a [mutable] timer field without boxing an option. *)
val null : event

val create : ?backend:backend -> unit -> t

(** [backend t] is the backend this engine was created with. *)
val backend : t -> backend

(** [now t] is the current virtual time. *)
val now : t -> Time.t

(** [schedule_at t time fn] runs [fn] at absolute [time].  Scheduling in the
    past raises [Invalid_argument]. *)
val schedule_at : t -> Time.t -> (unit -> unit) -> event

(** [schedule_after t delay fn] runs [fn] [delay] microseconds from now. *)
val schedule_after : t -> Time.t -> (unit -> unit) -> event

(** [run_at t time fn] is [schedule_at] without a handle, for call sites
    that would [ignore] it anyway.  Every event record — handled or not —
    comes from the engine's internal freelist, so neither form allocates
    on the steady-state hot path. *)
val run_at : t -> Time.t -> (unit -> unit) -> unit

(** [run_after t delay fn] is [schedule_after] without a handle. *)
val run_after : t -> Time.t -> (unit -> unit) -> unit

(** [cancel t ev] prevents a pending event from firing.  Cancelling an
    already-fired, already-cancelled, stale, or {!null} handle is a
    no-op.  Under the wheel backend this is O(1) true removal: the
    record is unlinked and recycled immediately, so
    {!cancelled_pending} stays 0. *)
val cancel : t -> event -> unit

(** [pending t] is the number of not-yet-fired, not-cancelled events. *)
val pending : t -> int

(** [cancelled_pending t] is the number of cancelled-but-still-queued
    records awaiting lazy reclamation.  Identically 0 under the wheel
    backend; under the heap backend it grows with cancels and shrinks as
    drains pop the dead records. *)
val cancelled_pending : t -> int

(** [step t] fires the next event, advancing the clock.  Returns [false] if
    no events remain. *)
val step : t -> bool

(** [run t] fires events until none remain. *)
val run : t -> unit

(** [run_until t limit] fires events with time [<= limit]; the clock ends at
    [min limit time-of-last-event].  Returns [true] if events remain. *)
val run_until : t -> Time.t -> bool

(** {2 Telemetry} *)

(** Counters accumulated over the engine's lifetime. *)
type telemetry = {
  tel_backend : backend;
  events_fired : int;  (** callbacks actually invoked *)
  cancels_reclaimed : int;
      (** cancelled records whose storage was recycled: every cancel under
          the wheel (removal is immediate), drained tombstones under the
          heap *)
  cascades : int;
      (** wheel-level slot redistributions while advancing; 0 for heap *)
}

val telemetry : t -> telemetry
