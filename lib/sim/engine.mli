(** Discrete-event simulation engine.

    The engine owns the virtual clock and a stable priority queue of
    events.  All activity in the simulated machine — disk completions,
    compute bursts finishing, balloon-manager ticks — is an event; running
    the engine pops events in time order and invokes their callbacks, which
    in turn schedule more events. *)

type t

(** Handle to a scheduled event, usable with {!cancel}.  Handles are
    generation-counted: the underlying event record is recycled through a
    freelist the moment the event fires (or its cancelled record is
    drained), and a handle held past that point goes stale — cancelling a
    stale handle is a guaranteed no-op. *)
type event

(** A handle that designates no event; {!cancel} ignores it.  Useful as
    the rest state of a [mutable] timer field without boxing an option. *)
val null : event

val create : unit -> t

(** [now t] is the current virtual time. *)
val now : t -> Time.t

(** [schedule_at t time fn] runs [fn] at absolute [time].  Scheduling in the
    past raises [Invalid_argument]. *)
val schedule_at : t -> Time.t -> (unit -> unit) -> event

(** [schedule_after t delay fn] runs [fn] [delay] microseconds from now. *)
val schedule_after : t -> Time.t -> (unit -> unit) -> event

(** [run_at t time fn] is [schedule_at] without a handle, for call sites
    that would [ignore] it anyway.  Every event record — handled or not —
    comes from the engine's internal freelist, so neither form allocates
    on the steady-state hot path. *)
val run_at : t -> Time.t -> (unit -> unit) -> unit

(** [run_after t delay fn] is [schedule_after] without a handle. *)
val run_after : t -> Time.t -> (unit -> unit) -> unit

(** [cancel t ev] prevents a pending event from firing.  Cancelling an
    already-fired, already-cancelled, stale, or {!null} handle is a
    no-op. *)
val cancel : t -> event -> unit

(** [pending t] is the number of not-yet-fired, not-cancelled events. *)
val pending : t -> int

(** [step t] fires the next event, advancing the clock.  Returns [false] if
    no events remain. *)
val step : t -> bool

(** [run t] fires events until none remain. *)
val run : t -> unit

(** [run_until t limit] fires events with time [<= limit]; the clock ends at
    [min limit time-of-last-event].  Returns [true] if events remain. *)
val run_until : t -> Time.t -> bool
