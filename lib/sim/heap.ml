(* Parallel-array layout: priorities and sequence numbers live in plain
   [int array]s (no per-element box, no option), values in a companion
   array.  The value array is seeded with an immediate dummy, so it is
   always a generic (never flat-float) array and the polymorphic accesses
   below stay representation-safe even at ['a = float]. *)

type 'a t = {
  mutable prio : int array;
  mutable seq : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy : unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    prio = Array.make 64 0;
    seq = Array.make 64 0;
    vals = Array.make 64 (dummy ());
    size = 0;
    next_seq = 0;
  }

(* [lt t i j] orders slot [i] before slot [j]: first by priority, then by
   insertion sequence (stability). *)
let lt t i j =
  let pi = t.prio.(i) and pj = t.prio.(j) in
  pi < pj || (pi = pj && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let grow t =
  let cap = 2 * Array.length t.prio in
  let prio = Array.make cap 0 in
  Array.blit t.prio 0 prio 0 t.size;
  t.prio <- prio;
  let seq = Array.make cap 0 in
  Array.blit t.seq 0 seq 0 t.size;
  t.seq <- seq;
  let vals = Array.make cap (dummy ()) in
  Array.blit t.vals 0 vals 0 t.size;
  t.vals <- vals

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~priority value =
  if t.size = Array.length t.prio then grow t;
  let i = t.size in
  t.prio.(i) <- priority;
  t.seq.(i) <- t.next_seq;
  t.vals.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  sift_up t i

let top_priority t =
  if t.size = 0 then invalid_arg "Heap.top_priority: empty heap";
  t.prio.(0)

let top t =
  if t.size = 0 then invalid_arg "Heap.top: empty heap";
  t.vals.(0)

let drop_min t =
  if t.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  let last = t.size - 1 in
  t.size <- last;
  t.prio.(0) <- t.prio.(last);
  t.seq.(0) <- t.seq.(last);
  t.vals.(0) <- t.vals.(last);
  t.vals.(last) <- dummy ();
  if last > 0 then sift_down t 0

let pop_min t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and v = t.vals.(0) in
    drop_min t;
    Some (p, v)
  end

let peek_min t = if t.size = 0 then None else Some (t.prio.(0), t.vals.(0))
let length t = t.size
let is_empty t = t.size = 0

let clear t =
  Array.fill t.vals 0 t.size (dummy ());
  t.size <- 0
