(** Hierarchical timing wheel — the engine's O(1) event queue.

    Four levels of 64 slots at 1 µs base resolution cover a 2^24 µs
    (~16.8 s) horizon; events beyond it wait in an overflow list and are
    folded into the wheel when the top level wraps.  Each slot is an
    intrusive doubly-linked chain threaded through a freelist slab, so:

    - [add] links at the chain tail: O(1) for any in-horizon time;
    - [cancel] unlinks the record and recycles it immediately: O(1) true
      removal, never a lazy tombstone;
    - [pop] drains a whole due slot as a batch — the slot-search and
      cascade cost is paid once per distinct tick, and every level-0
      slot holds exactly one tick's events, already in FIFO order.

    Two events queued for the same time always pop in the order they
    were added — cascades walk chains head-to-tail and re-link at the
    tail, so the wheel is stable exactly like the binary {!Heap} with
    its insertion sequence numbers.

    Records are handle-addressed like the engine's slab: a handle packs
    (slot index, generation); releasing a record bumps its generation so
    stale handles are detected and ignored.  Steady-state operation
    allocates nothing: records recycle through the slab's freelist and
    all bookkeeping lives in the records themselves. *)

type 'a t

(** Geometry, exposed for boundary tests: [bits] index bits per level
    (slots = [2^bits]), [nlevels] levels, [horizon = 2^(bits*nlevels)]
    ticks covered before the overflow list takes over. *)

val bits : int
val slots_per_level : int
val nlevels : int
val horizon : int

val create : unit -> 'a t

(** [add t ~time v] queues [v] to pop at [time] and returns its handle
    (non-negative).  Raises [Invalid_argument] if [time] is earlier than
    the wheel's current tick. *)
val add : 'a t -> time:int -> 'a -> int

(** [cancel t handle] unlinks and recycles the record if the handle is
    live; returns whether a record was removed.  A negative, stale, or
    already-cancelled handle is a no-op returning [false].  Removal is
    immediate — a cancelled record never lingers in a slot. *)
val cancel : 'a t -> int -> bool

(** [next_time t] is the earliest queued firing time, or [-1] when the
    wheel is empty.  Pure: never advances the wheel or cascades, so it
    is safe to peek, decline, and later [add] an earlier event. *)
val next_time : 'a t -> int

(** [pop t] advances the wheel to the earliest queued tick (cascading
    higher levels down as needed), unlinks that tick's first record —
    FIFO among same-time records — releases it, and returns its value.
    The tick popped is what {!next_time} reported.  Raises
    [Invalid_argument] when empty. *)
val pop : 'a t -> 'a

val length : 'a t -> int
val is_empty : 'a t -> bool

(** {2 Telemetry} *)

(** [fired t] counts records returned by {!pop}. *)
val fired : 'a t -> int

(** [cancelled t] counts records removed by {!cancel}. *)
val cancelled : 'a t -> int

(** [cascades t] counts slot redistributions: a higher-level (or
    overflow) chain re-placed into lower levels while advancing. *)
val cascades : 'a t -> int
