(* Records are slab-allocated and carry their own doubly-linked chain
   links; every slot (and the overflow list) is a circular chain hung on
   a sentinel record, so link/unlink never touches a head pointer and
   cancellation needs no knowledge of which slot holds the record.

   Level membership is decided by aligned windows: an event lives at the
   lowest level whose parent window (the enclosing aligned block of
   64^(l+1) ticks) still contains both the event time and the wheel's
   current tick.  Two invariants follow and are relied on below:

   - a level-0 slot holds exactly one tick's events (slot index is
     [time land 63] within the current 64-tick window), so draining a
     slot is draining a tick;
   - the wheel only ever advances to the minimum queued time, and the
     advance cascades the one chain containing that minimum, so no
     occupied slot is ever skipped past. *)

type 'a record = {
  mutable value : 'a;
  mutable time : int;
  mutable gen : int;  (* bumped on release; low [gen_bits] of a handle *)
  mutable queued : bool;
  mutable prev : 'a record;  (* chain links; self-linked when loose *)
  mutable next : 'a record;
  idx : int;  (* slab index; -1 for sentinels *)
  mutable next_free : int;  (* freelist link; -1 terminates *)
}

let bits = 6
let slots_per_level = 1 lsl bits
let nlevels = 4
let horizon = 1 lsl (bits * nlevels)
let slot_mask = slots_per_level - 1
let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1

type 'a t = {
  mutable wtime : int;  (* current tick: no queued event is earlier *)
  levels : 'a record array array;  (* nlevels x slots_per_level sentinels *)
  overflow : 'a record;  (* sentinel for beyond-horizon events *)
  mutable size : int;
  mutable slab : 'a record array;
  mutable free_head : int;
  (* Cached result of the last pure scan, so a [next_time] peek followed
     by [pop] does not search twice.  [scan_level = nlevels] denotes the
     overflow list. *)
  mutable scan_valid : bool;
  mutable scan_time : int;
  mutable scan_level : int;
  mutable scan_slot : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  mutable n_cascades : int;
}

(* The value array trick from [Heap]: an immediate dummy keeps the slab
   generic and lets released records drop their payloads. *)
let dummy : unit -> 'a = fun () -> Obj.magic 0

let sentinel () =
  let rec r =
    {
      value = dummy ();
      time = 0;
      gen = 0;
      queued = false;
      prev = r;
      next = r;
      idx = -1;
      next_free = -1;
    }
  in
  r

let fresh i =
  let rec r =
    {
      value = dummy ();
      time = 0;
      gen = 0;
      queued = false;
      prev = r;
      next = r;
      idx = i;
      next_free = -1;
    }
  in
  r

(* Chain slab entries [lo, hi) onto the freelist in ascending order. *)
let chain slab lo hi tail =
  for i = lo to hi - 1 do
    slab.(i).next_free <- (if i = hi - 1 then tail else i + 1)
  done;
  lo

let create () =
  let n = 64 in
  let slab = Array.init n fresh in
  let free_head = chain slab 0 n (-1) in
  {
    wtime = 0;
    levels =
      Array.init nlevels (fun _ ->
          Array.init slots_per_level (fun _ -> sentinel ()));
    overflow = sentinel ();
    size = 0;
    slab;
    free_head;
    scan_valid = false;
    scan_time = 0;
    scan_level = 0;
    scan_slot = 0;
    n_fired = 0;
    n_cancelled = 0;
    n_cascades = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let fired t = t.n_fired
let cancelled t = t.n_cancelled
let cascades t = t.n_cascades

(* ------------------------------------------------------------------ *)
(* Intrusive chains                                                    *)
(* ------------------------------------------------------------------ *)

let chain_empty s = s.next == s

let link_tail s r =
  let last = s.prev in
  last.next <- r;
  r.prev <- last;
  r.next <- s;
  s.prev <- r;
  r.queued <- true

let unlink r =
  r.prev.next <- r.next;
  r.next.prev <- r.prev;
  r.prev <- r;
  r.next <- r;
  r.queued <- false

(* ------------------------------------------------------------------ *)
(* Slab                                                                *)
(* ------------------------------------------------------------------ *)

let grow t =
  let n = Array.length t.slab in
  let slab = Array.init (2 * n) (fun i -> if i < n then t.slab.(i) else fresh i) in
  t.slab <- slab;
  t.free_head <- chain slab n (2 * n) t.free_head

let alloc t ~time v =
  if t.free_head < 0 then grow t;
  let i = t.free_head in
  let r = t.slab.(i) in
  t.free_head <- r.next_free;
  r.value <- v;
  r.time <- time;
  r

(* Bump the generation (outstanding handles go stale), drop the payload
   so the freelist retains nothing, recycle the slab entry. *)
let release t r =
  r.value <- dummy ();
  r.gen <- (r.gen + 1) land gen_mask;
  r.next_free <- t.free_head;
  t.free_head <- r.idx

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

(* Link [r] at the lowest level whose parent aligned window contains
   both [r.time] and the current tick; beyond the horizon it waits in
   the overflow chain. *)
let place t r =
  let time = r.time and w = t.wtime in
  let rec go l =
    if l >= nlevels then link_tail t.overflow r
    else if time lsr (bits * (l + 1)) = w lsr (bits * (l + 1)) then
      link_tail t.levels.(l).((time lsr (bits * l)) land slot_mask) r
    else go (l + 1)
  in
  go 0

let add t ~time v =
  if time < t.wtime then
    invalid_arg
      (Printf.sprintf "Wheel.add: time %d is before the current tick %d" time
         t.wtime);
  let r = alloc t ~time v in
  place t r;
  t.size <- t.size + 1;
  (* A new event can only move the minimum down. *)
  if t.scan_valid && time < t.scan_time then t.scan_valid <- false;
  (r.idx lsl gen_bits) lor r.gen

let cancel t handle =
  if handle < 0 then false
  else begin
    let i = handle lsr gen_bits in
    if i >= Array.length t.slab then false
    else begin
      let r = t.slab.(i) in
      if r.gen = handle land gen_mask && r.queued then begin
        unlink r;
        release t r;
        t.size <- t.size - 1;
        t.n_cancelled <- t.n_cancelled + 1;
        (* The removed record may have been the cached minimum. *)
        t.scan_valid <- false;
        true
      end
      else false
    end
  end

(* ------------------------------------------------------------------ *)
(* Search and advance                                                  *)
(* ------------------------------------------------------------------ *)

let rec first_occupied row s =
  if s >= slots_per_level then -1
  else if not (chain_empty row.(s)) then s
  else first_occupied row (s + 1)

let min_time_of sent =
  let rec go r best =
    if r == sent then best else go r.next (if r.time < best then r.time else best)
  in
  go sent.next max_int

(* Pure search for the earliest queued event, memoized in the scan
   cache.  Level 0 slots map one-to-one onto the ticks of the current
   64-tick window, so the first occupied slot at or after the cursor is
   the global minimum; each higher level holds strictly later aligned
   windows than everything below it (and the overflow list later still),
   so the first occupied slot per level bounds the search, with only
   that one chain scanned for its earliest record. *)
let scan t =
  let c0 = t.wtime land slot_mask in
  let s0 = first_occupied t.levels.(0) c0 in
  if s0 >= 0 then begin
    t.scan_time <- (t.wtime land lnot slot_mask) + s0;
    t.scan_level <- 0;
    t.scan_slot <- s0;
    t.scan_valid <- true
  end
  else begin
    let rec up l =
      if l >= nlevels then begin
        (* All wheel levels drained ahead: the minimum (if any) is in
           the overflow list, which holds only later top-level windows. *)
        if not (chain_empty t.overflow) then begin
          t.scan_time <- min_time_of t.overflow;
          t.scan_level <- nlevels;
          t.scan_slot <- 0;
          t.scan_valid <- true
        end
      end
      else begin
        (* The cursor slot itself was cascaded when the wheel entered
           its window, so only strictly later slots can be occupied. *)
        let c = (t.wtime lsr (bits * l)) land slot_mask in
        let s = first_occupied t.levels.(l) (c + 1) in
        if s >= 0 then begin
          t.scan_time <- min_time_of t.levels.(l).(s);
          t.scan_level <- l;
          t.scan_slot <- s;
          t.scan_valid <- true
        end
        else up (l + 1)
      end
    in
    up 1
  end

(* Move the wheel to the scanned minimum tick.  When the minimum sits in
   a higher level (or overflow), re-place that one chain against the new
   current tick: records of the due tick land in level 0 — in their
   original FIFO order, because the chain is walked head to tail and
   re-linked at tails — and the rest sink to whatever level now holds
   their window. *)
let advance t =
  let time = t.scan_time and l = t.scan_level in
  t.wtime <- time;
  if l > 0 then begin
    t.n_cascades <- t.n_cascades + 1;
    if l >= nlevels then begin
      (* Overflow: only records whose top-level window the wheel just
         entered move; later windows keep waiting. *)
      let sent = t.overflow in
      let top = bits * nlevels in
      let rec walk r =
        if r != sent then begin
          let nr = r.next in
          if r.time lsr top = time lsr top then begin
            unlink r;
            place t r
          end;
          walk nr
        end
      in
      walk sent.next
    end
    else begin
      let sent = t.levels.(l).(t.scan_slot) in
      let first = sent.next in
      sent.next <- sent;
      sent.prev <- sent;
      let rec walk r =
        if r != sent then begin
          let nr = r.next in
          place t r;
          walk nr
        end
      in
      walk first
    end
  end;
  t.scan_valid <- false

let next_time t =
  if t.size = 0 then -1
  else begin
    if not t.scan_valid then scan t;
    t.scan_time
  end

let pop t =
  if t.size = 0 then invalid_arg "Wheel.pop: empty wheel";
  if not t.scan_valid then scan t;
  advance t;
  let sent = t.levels.(0).(t.wtime land slot_mask) in
  let r = sent.next in
  unlink r;
  let v = r.value in
  release t r;
  t.size <- t.size - 1;
  t.n_fired <- t.n_fired + 1;
  (* The rest of the batch is still chained in the current slot: keep
     the cache pointing at it so draining a tick stays O(1) per pop. *)
  if chain_empty sent then t.scan_valid <- false
  else begin
    t.scan_time <- t.wtime;
    t.scan_level <- 0;
    t.scan_slot <- t.wtime land slot_mask;
    t.scan_valid <- true
  end;
  v
