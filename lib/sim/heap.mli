(** Polymorphic binary min-heap, used as the event queue of the engine.

    Elements are ordered by an integer priority supplied at [add] time; ties
    are broken by insertion order, so the heap is stable — two events
    scheduled for the same instant fire in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t

(** [add t ~priority v] inserts [v]. O(log n). *)
val add : 'a t -> priority:int -> 'a -> unit

(** [pop_min t] removes and returns the minimum element with its priority,
    or [None] if the heap is empty. O(log n). *)
val pop_min : 'a t -> (int * 'a) option

(** [peek_min t] returns the minimum without removing it. O(1). *)
val peek_min : 'a t -> (int * 'a) option

(** Allocation-free access to the minimum, for hot loops that would
    otherwise box an option and a tuple per event.  All three raise
    [Invalid_argument] on an empty heap. *)

(** [top_priority t] is the priority of the minimum. O(1). *)
val top_priority : 'a t -> int

(** [top t] is the minimum element. O(1). *)
val top : 'a t -> 'a

(** [drop_min t] removes the minimum without returning it. O(log n). *)
val drop_min : 'a t -> unit

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
